package streamcover

// Guards for the performance architecture (DESIGN.md "Performance
// architecture"): the batched driver must be observably identical to the
// per-edge driver, and the steady-state edge loop of every algorithm must be
// allocation-free. Together with golden_test.go these hold the hot-path
// representation work to "faster, not different".

import (
	"reflect"
	"slices"
	"testing"

	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// perEdgeOnly hides ProcessBatch from the driver, forcing stream.Run down
// the per-edge Process path while still exposing the space report.
type perEdgeOnly struct {
	stream.Algorithm
	space.Reporter
}

// perfCase builds one (algorithm, order) run. The concrete algorithm is
// returned alongside so tests can reach Trace and coverage accessors.
func perfCase(alg string, order Order) (Algorithm, []Edge) {
	const n, m, opt = 300, 4000, 8
	w := PlantedWorkload(NewRand(11), n, m, opt, 0)
	edges := Arrange(w.Inst, order, NewRand(23))
	switch alg {
	case "kk":
		return NewKK(n, m, NewRand(42)), edges
	case "alg1":
		return NewRandomOrder(n, m, len(edges), NewRand(42)), edges
	case "alg2":
		return NewAdversarial(n, m, 40, NewRand(42)), edges
	default:
		panic("unknown algorithm " + alg)
	}
}

// TestBatchedMatchesPerEdge drives every algorithm over every arrival order
// twice — once through ProcessBatch, once edge at a time — with identical
// seeds and asserts byte-identical observable output: chosen sets,
// certificate, edge count, space report, and (for Algorithm 1) the full
// execution trace.
func TestBatchedMatchesPerEdge(t *testing.T) {
	for _, algName := range []string{"kk", "alg1", "alg2"} {
		for _, order := range Orders() {
			t.Run(algName+"/"+order.String(), func(t *testing.T) {
				batchedAlg, edges := perfCase(algName, order)
				if _, ok := batchedAlg.(stream.BatchProcessor); !ok {
					t.Fatalf("%s does not implement stream.BatchProcessor", algName)
				}
				batched := RunEdges(batchedAlg, edges)

				perEdgeAlg, _ := perfCase(algName, order)
				wrapped := perEdgeOnly{perEdgeAlg, perEdgeAlg.(space.Reporter)}
				if _, ok := Algorithm(wrapped).(stream.BatchProcessor); ok {
					t.Fatal("perEdgeOnly wrapper leaks ProcessBatch")
				}
				perEdge := RunEdges(wrapped, edges)

				if !slices.Equal(batched.Cover.Sets, perEdge.Cover.Sets) {
					t.Errorf("cover sets differ: batched %v, per-edge %v",
						batched.Cover.Sets, perEdge.Cover.Sets)
				}
				if !slices.Equal(batched.Cover.Certificate, perEdge.Cover.Certificate) {
					t.Error("certificates differ")
				}
				if batched.Edges != perEdge.Edges {
					t.Errorf("edge counts differ: batched %d, per-edge %d", batched.Edges, perEdge.Edges)
				}
				if batched.Space != perEdge.Space {
					t.Errorf("space reports differ: batched %+v, per-edge %+v", batched.Space, perEdge.Space)
				}
				if algName == "alg1" {
					ta := batchedAlg.(*RandomOrderAlg).Trace()
					tb := perEdgeAlg.(*RandomOrderAlg).Trace()
					if !reflect.DeepEqual(ta, tb) {
						t.Errorf("traces differ:\nbatched:  %+v\nper-edge: %+v", ta, tb)
					}
				}
			})
		}
	}
}

// coverageReporter is the part of the algorithms the alloc guard uses to
// detect the steady state (every element holds a witness).
type coverageReporter interface{ CoveredCount() int }

// TestSteadyStateProcessBatchAllocs asserts the per-edge hot loop of every
// algorithm performs zero heap allocations once warm: after the stream has
// been absorbed (and, where coverage converges, every element is covered),
// replaying the whole edge sequence through ProcessBatch must not allocate.
// This is the property the pooled scratch + dense-state representation
// exists to provide — violating it is a performance regression even when
// the output is still correct.
func TestSteadyStateProcessBatchAllocs(t *testing.T) {
	const n, m, opt = 100, 600, 6
	w := PlantedWorkload(NewRand(5), n, m, opt, 0)
	edges := Arrange(w.Inst, RandomOrder, NewRand(9))

	for _, tc := range []struct {
		name string
		alg  Algorithm
		// wantFullCoverage: the algorithm keeps sampling on replays, so it
		// must reach CoveredCount == n (after which replays are pure reads).
		wantFullCoverage bool
	}{
		{"kk", NewKK(n, m, NewRand(1)), true},
		{"alg1", NewRandomOrder(n, m, len(edges), NewRand(2)), false},
		{"alg2", NewAdversarial(n, m, 20, NewRand(3)), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bp := tc.alg.(stream.BatchProcessor)
			for pass := 0; pass < 500; pass++ {
				bp.ProcessBatch(edges)
				if !tc.wantFullCoverage {
					break
				}
				if cr := tc.alg.(coverageReporter); cr.CoveredCount() == n {
					break
				}
			}
			if tc.wantFullCoverage {
				if got := tc.alg.(coverageReporter).CoveredCount(); got != n {
					t.Fatalf("warm-up never converged: %d/%d elements covered", got, n)
				}
			}
			if allocs := testing.AllocsPerRun(20, func() {
				bp.ProcessBatch(edges)
			}); allocs != 0 {
				t.Errorf("steady-state ProcessBatch allocates %.2f times per replay, want 0", allocs)
			}
		})
	}
}
