package streamcover

// Guards for the performance architecture (DESIGN.md "Performance
// architecture"): the batched driver must be observably identical to the
// per-edge driver, and the steady-state edge loop of every algorithm must be
// allocation-free. Together with golden_test.go these hold the hot-path
// representation work to "faster, not different".

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"streamcover/internal/obs"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// attachSink points alg's decision-event emissions at a sink from hub (every
// streaming algorithm implements SetObs; tests use private hubs, never the
// process-global one).
func attachSink(t *testing.T, hub *obs.Hub, alg Algorithm) {
	t.Helper()
	a, ok := alg.(interface{ SetObs(*obs.Sink) })
	if !ok {
		t.Fatalf("%T does not implement SetObs", alg)
	}
	a.SetObs(hub.Sink(obs.AlgoOf(alg)))
}

// perEdgeOnly hides ProcessBatch from the driver, forcing stream.Run down
// the per-edge Process path while still exposing the space report.
type perEdgeOnly struct {
	stream.Algorithm
	space.Reporter
}

// perfCase builds one (algorithm, order) run. The concrete algorithm is
// returned alongside so tests can reach Trace and coverage accessors.
func perfCase(alg string, order Order) (Algorithm, []Edge) {
	const n, m, opt = 300, 4000, 8
	w := PlantedWorkload(NewRand(11), n, m, opt, 0)
	edges := Arrange(w.Inst, order, NewRand(23))
	switch alg {
	case "kk":
		return NewKK(n, m, NewRand(42)), edges
	case "alg1":
		return NewRandomOrder(n, m, len(edges), NewRand(42)), edges
	case "alg2":
		return NewAdversarial(n, m, 40, NewRand(42)), edges
	default:
		panic("unknown algorithm " + alg)
	}
}

// TestBatchedMatchesPerEdge drives every algorithm over every arrival order
// twice — once through ProcessBatch, once edge at a time — with identical
// seeds and asserts byte-identical observable output: chosen sets,
// certificate, edge count, space report, and (for Algorithm 1) the full
// execution trace.
func TestBatchedMatchesPerEdge(t *testing.T) {
	for _, algName := range []string{"kk", "alg1", "alg2"} {
		for _, order := range Orders() {
			t.Run(algName+"/"+order.String(), func(t *testing.T) {
				// Each run gets a private hub so the decision-event streams
				// (which the batched contract also covers) can be compared.
				const ringCap = 1 << 18
				batchedAlg, edges := perfCase(algName, order)
				if _, ok := batchedAlg.(stream.BatchProcessor); !ok {
					t.Fatalf("%s does not implement stream.BatchProcessor", algName)
				}
				batchedHub := obs.NewHub(ringCap)
				attachSink(t, batchedHub, batchedAlg)
				batched := RunEdges(batchedAlg, edges)

				perEdgeAlg, _ := perfCase(algName, order)
				perEdgeHub := obs.NewHub(ringCap)
				attachSink(t, perEdgeHub, perEdgeAlg)
				wrapped := perEdgeOnly{perEdgeAlg, perEdgeAlg.(space.Reporter)}
				if _, ok := Algorithm(wrapped).(stream.BatchProcessor); ok {
					t.Fatal("perEdgeOnly wrapper leaks ProcessBatch")
				}
				perEdge := RunEdges(wrapped, edges)

				if !slices.Equal(batched.Cover.Sets, perEdge.Cover.Sets) {
					t.Errorf("cover sets differ: batched %v, per-edge %v",
						batched.Cover.Sets, perEdge.Cover.Sets)
				}
				if !slices.Equal(batched.Cover.Certificate, perEdge.Cover.Certificate) {
					t.Error("certificates differ")
				}
				if batched.Edges != perEdge.Edges {
					t.Errorf("edge counts differ: batched %d, per-edge %d", batched.Edges, perEdge.Edges)
				}
				if batched.Space != perEdge.Space {
					t.Errorf("space reports differ: batched %+v, per-edge %+v", batched.Space, perEdge.Space)
				}
				if algName == "alg1" {
					ta := batchedAlg.(*RandomOrderAlg).Trace()
					tb := perEdgeAlg.(*RandomOrderAlg).Trace()
					if !reflect.DeepEqual(ta, tb) {
						t.Errorf("traces differ:\nbatched:  %+v\nper-edge: %+v", ta, tb)
					}
				}
				// The decision-event streams must match event for event.
				if a, b := batchedHub.Ring().Recorded(), perEdgeHub.Ring().Recorded(); a != b {
					t.Errorf("decision-event counts differ: batched %d, per-edge %d", a, b)
				}
				evA, evB := batchedHub.Ring().Events(), perEdgeHub.Ring().Events()
				if !reflect.DeepEqual(evA, evB) {
					n := min(len(evA), len(evB))
					for i := 0; i < n; i++ {
						if evA[i] != evB[i] {
							t.Fatalf("decision event %d differs:\nbatched:  %+v\nper-edge: %+v", i, evA[i], evB[i])
						}
					}
					t.Fatalf("decision traces differ in length: batched %d, per-edge %d", len(evA), len(evB))
				}
			})
		}
	}
}

// coverageReporter is the part of the algorithms the alloc guard uses to
// detect the steady state (every element holds a witness).
type coverageReporter interface{ CoveredCount() int }

// TestSteadyStateProcessBatchAllocs asserts the per-edge hot loop of every
// algorithm performs zero heap allocations once warm: after the stream has
// been absorbed (and, where coverage converges, every element is covered),
// replaying the whole edge sequence through ProcessBatch must not allocate.
// This is the property the pooled scratch + dense-state representation
// exists to provide — violating it is a performance regression even when
// the output is still correct.
func TestSteadyStateProcessBatchAllocs(t *testing.T) {
	// The guard runs twice: bare (no sink, the nil fast path) and with a
	// live decision sink attached, which must be just as allocation-free —
	// emissions are atomic adds plus writes into the preallocated ring, even
	// when the ring wraps (DESIGN.md §4c).
	for _, withObs := range []bool{false, true} {
		name := "bare"
		if withObs {
			name = "obs"
		}
		t.Run(name, func(t *testing.T) {
			testSteadyStateAllocs(t, withObs)
		})
	}
}

func testSteadyStateAllocs(t *testing.T, withObs bool) {
	const n, m, opt = 100, 600, 6
	w := PlantedWorkload(NewRand(5), n, m, opt, 0)
	edges := Arrange(w.Inst, RandomOrder, NewRand(9))

	for _, tc := range []struct {
		name string
		alg  Algorithm
		// wantFullCoverage: the algorithm keeps sampling on replays, so it
		// must reach CoveredCount == n (after which replays are pure reads).
		wantFullCoverage bool
	}{
		{"kk", NewKK(n, m, NewRand(1)), true},
		{"alg1", NewRandomOrder(n, m, len(edges), NewRand(2)), false},
		{"alg2", NewAdversarial(n, m, 20, NewRand(3)), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if withObs {
				attachSink(t, obs.NewHub(0), tc.alg)
			}
			bp := tc.alg.(stream.BatchProcessor)
			for pass := 0; pass < 500; pass++ {
				bp.ProcessBatch(edges)
				if !tc.wantFullCoverage {
					break
				}
				if cr := tc.alg.(coverageReporter); cr.CoveredCount() == n {
					break
				}
			}
			if tc.wantFullCoverage {
				if got := tc.alg.(coverageReporter).CoveredCount(); got != n {
					t.Fatalf("warm-up never converged: %d/%d elements covered", got, n)
				}
			}
			if allocs := testing.AllocsPerRun(20, func() {
				bp.ProcessBatch(edges)
			}); allocs != 0 {
				t.Errorf("steady-state ProcessBatch allocates %.2f times per replay, want 0", allocs)
			}
		})
	}
}

// TestPrefetchedDecisionTraceMatchesDirect runs every algorithm over the
// same stream twice — directly from the edge slice and through a prefetched
// File — with private obs hubs, and asserts the decision-event streams are
// identical event for event. Pipelined ingestion must not change what the
// algorithm observes, only when the bytes were decoded.
func TestPrefetchedDecisionTraceMatchesDirect(t *testing.T) {
	const ringCap = 1 << 18
	dir := t.TempDir()
	for _, algName := range []string{"kk", "alg1", "alg2"} {
		t.Run(algName, func(t *testing.T) {
			directAlg, edges := perfCase(algName, RandomOrder)
			directHub := obs.NewHub(ringCap)
			attachSink(t, directHub, directAlg)
			direct := RunEdges(directAlg, edges)

			var buf bytes.Buffer
			if err := EncodeStream(&buf, StreamHeader{N: 300, M: 4000, E: len(edges)}, edges); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, algName+".scstrm")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			fs, err := OpenStreamFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close()
			pf := NewStreamPrefetcher(fs)
			defer pf.Close()

			prefAlg, _ := perfCase(algName, RandomOrder)
			prefHub := obs.NewHub(ringCap)
			attachSink(t, prefHub, prefAlg)
			pref := Run(prefAlg, pf)
			if pref.Err != nil {
				t.Fatal(pref.Err)
			}

			if !slices.Equal(direct.Cover.Sets, pref.Cover.Sets) || direct.Space != pref.Space {
				t.Fatalf("prefetched result differs: %v/%+v vs %v/%+v",
					direct.Cover.Sets, direct.Space, pref.Cover.Sets, pref.Space)
			}
			evA, evB := directHub.Ring().Events(), prefHub.Ring().Events()
			if !reflect.DeepEqual(evA, evB) {
				t.Fatalf("decision traces differ: direct %d events, prefetched %d", len(evA), len(evB))
			}
		})
	}
}

// TestSteadyStateFileReplayAllocs extends the allocation guard to the full
// on-disk ingestion pipeline: a lazily-verified stream File wrapped in a
// background Prefetcher, drained batch-by-batch into ProcessBatch. After the
// first pass (which pays the CRC fold and warms every ring buffer), a whole
// replay — Reset, background decode, NextBatch hand-off, algorithm — must
// perform zero heap allocations. This is the property the reusable decode
// window and the fixed buffer ring exist to provide.
func TestSteadyStateFileReplayAllocs(t *testing.T) {
	const n, m, opt = 100, 600, 6
	w := PlantedWorkload(NewRand(5), n, m, opt, 0)
	edges := Arrange(w.Inst, RandomOrder, NewRand(9))

	var buf bytes.Buffer
	if err := EncodeStream(&buf, StreamHeader{N: n, M: m, E: len(edges)}, edges); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "replay.scstrm")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	fs, err := OpenStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	pf := NewStreamPrefetcher(fs)
	defer pf.Close()

	alg := NewKK(n, m, NewRand(1))
	var bp stream.BatchProcessor = alg
	replay := func() {
		pf.Reset()
		for {
			b := pf.NextBatch(1 << 20)
			if len(b) == 0 {
				break
			}
			bp.ProcessBatch(b)
		}
	}
	// Warm up: converge coverage (replays become pure reads) and let the
	// File finish its verifying pass and the ring settle.
	for pass := 0; pass < 500; pass++ {
		replay()
		if alg.CoveredCount() == n {
			break
		}
	}
	if got := alg.CoveredCount(); got != n {
		t.Fatalf("warm-up never converged: %d/%d elements covered", got, n)
	}
	if err := StreamErr(pf); err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if allocs := testing.AllocsPerRun(20, replay); allocs != 0 {
		t.Errorf("steady-state on-disk replay allocates %.2f times per pass, want 0", allocs)
	}
}
