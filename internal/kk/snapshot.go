package kk

import (
	"errors"
	"fmt"
	"io"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
)

// snapVersion is the SCSTATE1 layout version of this package's snapshots.
const snapVersion = 1

// Snapshot implements stream.Snapshotter: the complete mid-stream state —
// generator, degree counters, sampled solution, coverage bookkeeping and
// space meters — so a restored run finishes bit-identically. Valid only
// before Finish (Finish releases the working arrays to the pool).
func (a *Algorithm) Snapshot(wr io.Writer) error {
	if a.finished {
		return errors.New("kk: Snapshot after Finish")
	}
	w := snap.NewWriter(wr, "kk", snapVersion)
	w.Int(a.n)
	w.Int(a.m)
	w.I64(a.pos)
	a.rng.Save(w)
	w.I32s(a.deg)
	a.sol.Save(w)
	w.Int(a.solCount)
	w.Bools(a.covered)
	w.Int(a.coveredCount)
	snap.SaveSetIDs(w, a.first)
	snap.SaveSetIDs(w, a.cert)
	w.Int(a.patched)
	snap.SaveTracked(w, &a.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance with the same (n, m); a failed restore leaves it in
// an unspecified state that must be discarded.
func (a *Algorithm) Restore(rd io.Reader) error {
	if a.finished {
		return errors.New("kk: Restore after Finish")
	}
	r, err := snap.NewReader(rd, "kk")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: kk snapshot v%d", snap.ErrVersion, v)
	}
	n, m := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != a.n || m != a.m {
		return fmt.Errorf("%w: snapshot shape n=%d m=%d, receiver has n=%d m=%d",
			snap.ErrMismatch, n, m, a.n, a.m)
	}
	a.pos = r.I64()
	a.rng.Load(r)
	r.I32sInto(a.deg)
	a.sol.Load(r)
	a.solCount = r.Int()
	r.BoolsInto(a.covered)
	a.coveredCount = r.Int()
	snap.LoadSetIDsInto(r, a.first, a.m)
	snap.LoadSetIDsInto(r, a.cert, a.m)
	a.patched = r.Int()
	snap.LoadTracked(r, &a.Tracked)
	// firstFree is derived state (the batch kernels' fast-path counter), not
	// part of the SCSTATE1 layout: recompute it from the restored records.
	a.firstFree = 0
	for _, s := range a.first {
		if s == setcover.NoSet {
			a.firstFree++
		}
	}
	return r.Close()
}
