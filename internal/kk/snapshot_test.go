package kk

import (
	"bytes"
	"errors"
	"testing"

	"streamcover/internal/snap"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// TestSnapshotResumeEquivalence is the package's resume contract: snapshot
// mid-stream, restore into a fresh (differently seeded) instance, finish the
// stream, and the cover, certificate and space report must be byte-identical
// to the uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(11), 200, 1500, 12, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(5))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()

	ref := New(n, m, xrand.New(42))
	refRes := stream.RunEdges(ref, edges)

	for _, cut := range []int{0, 1, len(edges) / 3, len(edges) / 2, len(edges) - 1, len(edges)} {
		a := New(n, m, xrand.New(42))
		a.ProcessBatch(edges[:cut])
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatalf("cut=%d: Snapshot: %v", cut, err)
		}
		b := New(n, m, xrand.New(999)) // seed must not matter after Restore
		if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("cut=%d: Restore: %v", cut, err)
		}
		b.ProcessBatch(edges[cut:])
		got := b.Finish()
		if !refRes.Cover.Equal(got) {
			t.Fatalf("cut=%d: resumed cover differs from uninterrupted run", cut)
		}
		if gs := b.Space(); gs != refRes.Space {
			t.Fatalf("cut=%d: space %+v, want %+v", cut, gs, refRes.Space)
		}
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	a := New(50, 100, xrand.New(1))
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(50, 101, xrand.New(1))
	if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, snap.ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

func TestSnapshotAfterFinishFails(t *testing.T) {
	a := New(10, 10, xrand.New(1))
	a.Finish()
	if err := a.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("Snapshot after Finish must fail (scratch is back in the pool)")
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	w := workload.Planted(xrand.New(3), 60, 300, 6, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(4))
	a := New(60, 300, xrand.New(7))
	a.ProcessBatch(edges[:len(edges)/2])
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	flipped := bytes.Clone(raw)
	flipped[len(flipped)/2] ^= 0x10
	b := New(60, 300, xrand.New(8))
	if err := b.Restore(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
}

var _ stream.Snapshotter = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
