package kk

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Statistical validation of the probabilistic inclusion process itself
// (paper §1.2): when a set's uncovered-degree crosses i·√n, it must join
// the solution with probability min(1, 2^i·√n/m). The test fixes a stream
// in which exactly one set accumulates uncovered-degree and measures the
// empirical inclusion frequency at the first threshold over many seeds.
func TestInclusionFrequencyMatchesSchedule(t *testing.T) {
	const (
		n      = 100 // √n = 10
		m      = 1000
		trials = 4000
	)
	// A stream of exactly √n = 10 edges of set 0 to distinct elements: the
	// set reaches level 1 exactly once, so P(included) = 2·√n/m = 0.02.
	var edges []stream.Edge
	for u := 0; u < 10; u++ {
		edges = append(edges, stream.Edge{Set: 0, Elem: setcover.Element(u)})
	}
	included := 0
	for seed := uint64(0); seed < trials; seed++ {
		alg := New(n, m, xrand.New(seed))
		for _, e := range edges {
			alg.Process(e)
		}
		if alg.SampledSets() == 1 {
			included++
		} else if alg.SampledSets() > 1 {
			t.Fatalf("seed %d: %d sets included, only one ever crossed a threshold", seed, alg.SampledSets())
		}
	}
	want := 2.0 * 10 / float64(m) // 0.02
	got := float64(included) / trials
	sd := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*sd {
		t.Fatalf("level-1 inclusion frequency %.4f, want %.4f ± %.4f", got, want, 5*sd)
	}
}

// A set whose degree crosses several thresholds must be included with the
// union probability 1 − Π(1 − p_i); verify the empirical rate after three
// levels.
func TestCumulativeInclusionAcrossLevels(t *testing.T) {
	const (
		n      = 100
		m      = 200
		trials = 3000
	)
	var edges []stream.Edge
	for u := 0; u < 30; u++ { // three thresholds at degrees 10, 20, 30
		edges = append(edges, stream.Edge{Set: 0, Elem: setcover.Element(u)})
	}
	included := 0
	for seed := uint64(0); seed < trials; seed++ {
		alg := New(n, m, xrand.New(seed))
		for _, e := range edges {
			alg.Process(e)
		}
		if alg.SampledSets() >= 1 {
			included++
		}
	}
	// p_i = min(1, 2^i·10/200): 0.1, 0.2, 0.4 — but once included, later
	// edges are witness hits and the degree stops rising, so the union
	// bound only applies to the not-yet-included trajectory, which is
	// exactly 1 − 0.9·0.8·0.6.
	want := 1 - 0.9*0.8*0.6
	got := float64(included) / trials
	sd := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*sd {
		t.Fatalf("cumulative inclusion %.3f, want %.3f ± %.3f", got, want, 5*sd)
	}
}
