package kk_test

import (
	"fmt"

	"streamcover/internal/kk"
	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// The KK-algorithm end to end: one pass over an edge-arrival stream, then a
// verified cover. The degree array makes its Θ(m) state visible in the
// space report.
func Example() {
	inst := setcover.MustNewInstance(4, [][]setcover.Element{
		{0, 1}, {2, 3}, {0, 1, 2, 3},
	})
	alg := kk.New(4, 3, xrand.New(1))
	res := stream.RunEdges(alg, stream.EdgesOf(inst))

	fmt.Println("valid cover:", res.Cover.Verify(inst) == nil)
	fmt.Println("state ≥ m:", res.Space.State >= 3)
	// Output:
	// valid cover: true
	// state ≥ m: true
}
