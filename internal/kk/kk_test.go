package kk

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func runOn(t testing.TB, w workload.Workload, order stream.Order, seed uint64) (stream.Result, *Algorithm) {
	t.Helper()
	rng := xrand.New(seed)
	edges := stream.Arrange(w.Inst, order, rng.Split())
	alg := New(w.Inst.UniverseSize(), w.Inst.NumSets(), rng.Split())
	res := stream.RunEdges(alg, edges)
	return res, alg
}

func TestCoverValidOnAllWorkloadsAndOrders(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		for _, o := range stream.Orders() {
			res, _ := runOn(t, w, o, 99)
			if err := res.Cover.Verify(w.Inst); err != nil {
				t.Errorf("%s/%v: %v", w.Name, o, err)
			}
		}
	}
}

func TestApproximationWithinSqrtNBound(t *testing.T) {
	// Planted instance: OPT known. KK guarantees Õ(√n); allow constant·√n·log.
	w := workload.Planted(xrand.New(2), 400, 4000, 20, 0)
	opt := w.PlantedOPT
	slack := 4.0
	bound := slack * math.Sqrt(400) * math.Log2(4000) * float64(opt)
	for seed := uint64(0); seed < 3; seed++ {
		for _, o := range stream.Orders() {
			res, _ := runOn(t, w, o, seed)
			if float64(res.Cover.Size()) > bound {
				t.Errorf("%v seed %d: cover %d exceeds Õ(√n)·OPT bound %.0f", o, seed, res.Cover.Size(), bound)
			}
		}
	}
}

func TestSpaceLinearInM(t *testing.T) {
	// The defining property: state space ≈ m words (the degree array),
	// regardless of stream order. Doubling m must double peak state.
	n := 200
	var peaks []int64
	for _, m := range []int{1000, 2000, 4000} {
		w := workload.Planted(xrand.New(3), n, m, 10, 0)
		res, _ := runOn(t, w, stream.Random, 7)
		peaks = append(peaks, res.Space.State)
		if res.Space.State < int64(m) {
			t.Errorf("m=%d: state %d below m (degree array must be charged)", m, res.Space.State)
		}
		if res.Space.State > int64(m)+3*int64(n) {
			t.Errorf("m=%d: state %d far above m words", m, res.Space.State)
		}
	}
	if ratio := float64(peaks[2]) / float64(peaks[0]); ratio < 3.2 || ratio > 4.8 {
		t.Errorf("state should scale ~linearly in m: peaks %v (4x m gave %.2fx)", peaks, ratio)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := workload.Planted(xrand.New(4), 100, 500, 10, 0)
	a, _ := runOn(t, w, stream.Random, 5)
	b, _ := runOn(t, w, stream.Random, 5)
	if a.Cover.Size() != b.Cover.Size() {
		t.Fatalf("same seed, different covers: %d vs %d", a.Cover.Size(), b.Cover.Size())
	}
	for i := range a.Cover.Sets {
		if a.Cover.Sets[i] != b.Cover.Sets[i] {
			t.Fatal("same seed, different chosen sets")
		}
	}
}

func TestLevelDecay(t *testing.T) {
	// [19]'s key invariant: the number of level-i sets decays geometrically.
	// Use a dominating-set workload (m = n) with enough density for several
	// levels, and check the aggregate decay from level 1 onward.
	w := workload.DominatingSet(xrand.New(5), 900, 0.2)
	_, alg := runOn(t, w, stream.Random, 11)
	counts := alg.LevelCounts()
	if len(counts) < 3 {
		t.Skipf("only %d levels materialised; decay unobservable", len(counts))
	}
	// Sum of levels ≥ 2 must not exceed level-1 count (geometric decay sums
	// to ≤ the first term); allow 2x slack for randomness.
	tail := 0
	for _, c := range counts[2:] {
		tail += c
	}
	if counts[1] > 0 && tail > 2*counts[1] {
		t.Errorf("no geometric decay: level1=%d, tail=%d (counts %v)", counts[1], tail, counts)
	}
}

func TestLevelCountsPartitionSets(t *testing.T) {
	w := workload.UniformRandom(xrand.New(6), 50, 300, 2, 10)
	_, alg := runOn(t, w, stream.Random, 3)
	total := 0
	for _, c := range alg.LevelCounts() {
		total += c
	}
	if total != w.Inst.NumSets() {
		t.Fatalf("level counts sum to %d, want m=%d", total, w.Inst.NumSets())
	}
}

func TestSingletonUniverse(t *testing.T) {
	inst := setcover.MustNewInstance(1, [][]setcover.Element{{0}})
	alg := New(1, 1, xrand.New(1))
	res := stream.RunEdges(alg, stream.EdgesOf(inst))
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if res.Cover.Size() != 1 {
		t.Fatalf("size %d", res.Cover.Size())
	}
}

func TestPatchedPlusSampledConsistent(t *testing.T) {
	w := workload.UniformRandom(xrand.New(7), 80, 200, 2, 8)
	res, alg := runOn(t, w, stream.RoundRobin, 13)
	if alg.Patched() < 0 || alg.Patched() > w.Inst.UniverseSize() {
		t.Fatalf("patched=%d", alg.Patched())
	}
	if res.Cover.Size() > alg.SampledSets()+alg.Patched() {
		t.Fatalf("cover %d > sampled %d + patched %d", res.Cover.Size(), alg.SampledSets(), alg.Patched())
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{0, 5}, {5, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.n, tc.m)
				}
			}()
			New(tc.n, tc.m, xrand.New(1))
		}()
	}
}

func TestInclusionProbMonotone(t *testing.T) {
	a := New(100, 1000, xrand.New(1))
	prev := 0.0
	for lvl := 1; lvl < 40; lvl++ {
		p := a.inclusionProb(lvl)
		if p < prev {
			t.Fatalf("inclusion probability not monotone at level %d", lvl)
		}
		prev = p
	}
	if a.inclusionProb(200) < 1 {
		t.Fatal("huge level should clamp to certainty")
	}
}

func BenchmarkKKProcess(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 10000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := New(w.Inst.UniverseSize(), w.Inst.NumSets(), xrand.New(uint64(i)))
		stream.RunEdges(alg, edges)
	}
}
