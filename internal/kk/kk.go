// Package kk implements the KK-algorithm (paper Theorem 1, due to Khanna
// and Konrad, ITCS'22 [19]): a randomized one-pass Õ(√n)-approximation
// streaming algorithm for edge-arrival Set Cover using Õ(m) space in
// adversarially ordered streams.
//
// The key device (paper §1.2) is the uncovered-degree counter: every tuple
// (S, u) with u not yet covered increments d(S). Whenever d(S) reaches i·√n
// for integral i ≥ 1, the set is included in the solution with probability
// min(1, 2^i·√n/m); once included it covers all its elements arriving from
// that moment onward. The analysis shows the number of level-i sets halves
// per level, so each level contributes only Õ(√n) sets.
//
// The paper proves this Õ(m) space bound optimal for α = Θ̃(√n) in
// adversarial order (Theorem 2), which is what makes the algorithm the
// baseline every other regime is measured against.
package kk

import (
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Algorithm is one run of the KK-algorithm. Create with New, feed the stream
// with Process, and call Finish once at the end.
type Algorithm struct {
	space.Tracked

	n, m  int
	sqrtN int
	rng   *xrand.Rand

	deg          []int32 // uncovered-degree d(S) for every set: the Θ(m) term
	sol          map[setcover.SetID]struct{}
	covered      []bool           // u covered by a set in sol (witness recorded)
	coveredCount int              // running count of covered elements
	first        []setcover.SetID // R(u): first set seen containing u
	cert         []setcover.SetID // output certificate

	patched int // sets added by the patching phase, for reporting
}

// New returns a KK-algorithm run for an instance with n elements and m sets,
// drawing coins from rng.
func New(n, m int, rng *xrand.Rand) *Algorithm {
	if n <= 0 || m <= 0 {
		panic("kk: need n > 0 and m > 0")
	}
	a := &Algorithm{
		n:       n,
		m:       m,
		sqrtN:   int(math.Max(1, math.Round(math.Sqrt(float64(n))))),
		rng:     rng,
		deg:     make([]int32, m),
		sol:     make(map[setcover.SetID]struct{}),
		covered: make([]bool, n),
		first:   make([]setcover.SetID, n),
		cert:    make([]setcover.SetID, n),
	}
	for u := range a.first {
		a.first[u] = setcover.NoSet
		a.cert[u] = setcover.NoSet
	}
	// The degree array is the algorithm's defining Θ(m) state; the three
	// per-element structures are the Õ(n) bookkeeping every regime carries.
	a.StateMeter.Add(int64(m))
	a.AuxMeter.Add(3 * int64(n))
	return a
}

// inclusionProb is the level-i inclusion probability min(1, 2^i·√n/m).
// Ldexp keeps large i finite (+Inf), which Coin clamps to certainty.
func (a *Algorithm) inclusionProb(level int) float64 {
	return math.Ldexp(float64(a.sqrtN)/float64(a.m), level)
}

// Process implements stream.Algorithm.
func (a *Algorithm) Process(e stream.Edge) {
	u, s := e.Elem, e.Set
	if a.first[u] == setcover.NoSet {
		a.first[u] = s
	}
	if _, in := a.sol[s]; in {
		if !a.covered[u] {
			a.covered[u] = true
			a.coveredCount++
			a.cert[u] = s
		}
		return
	}
	if a.covered[u] {
		return
	}
	a.deg[s]++
	if int(a.deg[s])%a.sqrtN != 0 {
		return
	}
	level := int(a.deg[s]) / a.sqrtN
	if a.rng.Coin(a.inclusionProb(level)) {
		a.sol[s] = struct{}{}
		a.StateMeter.Add(space.SetEntryWords)
		a.covered[u] = true
		a.coveredCount++
		a.cert[u] = s
	}
}

// Finish implements stream.Algorithm: the patching phase covers every
// element without a witness using its stored first set R(u).
func (a *Algorithm) Finish() *setcover.Cover {
	chosen := make([]setcover.SetID, 0, len(a.sol)+16)
	for s := range a.sol {
		chosen = append(chosen, s)
	}
	for u := range a.cert {
		if a.cert[u] == setcover.NoSet && a.first[u] != setcover.NoSet {
			a.cert[u] = a.first[u]
			chosen = append(chosen, a.first[u])
			a.patched++
		}
	}
	return setcover.NewCover(chosen, a.cert)
}

// Patched returns how many elements the patching phase covered, available
// after Finish.
func (a *Algorithm) Patched() int { return a.patched }

// SampledSets returns how many sets the probabilistic inclusion process
// added (excluding patching), available at any time.
func (a *Algorithm) SampledSets() int { return len(a.sol) }

// CoveredCount implements stream.CoverageReporter: the number of elements
// currently holding a covering witness.
func (a *Algorithm) CoveredCount() int { return a.coveredCount }

// LevelCounts returns |S_i| for i = 0..max: the number of sets whose final
// uncovered-degree lies in [i·√n, (i+1)·√n). The analysis of [19] shows
// E|S_i| ≤ ½·E|S_{i-1}|; the E-ABL-KK ablation verifies this decay
// empirically.
func (a *Algorithm) LevelCounts() []int {
	var counts []int
	for _, d := range a.deg {
		lvl := int(d) / a.sqrtN
		for len(counts) <= lvl {
			counts = append(counts, 0)
		}
		counts[lvl]++
	}
	return counts
}

var _ stream.Algorithm = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
