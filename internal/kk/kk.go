// Package kk implements the KK-algorithm (paper Theorem 1, due to Khanna
// and Konrad, ITCS'22 [19]): a randomized one-pass Õ(√n)-approximation
// streaming algorithm for edge-arrival Set Cover using Õ(m) space in
// adversarially ordered streams.
//
// The key device (paper §1.2) is the uncovered-degree counter: every tuple
// (S, u) with u not yet covered increments d(S). Whenever d(S) reaches i·√n
// for integral i ≥ 1, the set is included in the solution with probability
// min(1, 2^i·√n/m); once included it covers all its elements arriving from
// that moment onward. The analysis shows the number of level-i sets halves
// per level, so each level contributes only Õ(√n) sets.
//
// The paper proves this Õ(m) space bound optimal for α = Θ̃(√n) in
// adversarial order (Theorem 2), which is what makes the algorithm the
// baseline every other regime is measured against.
//
// Hot-path representation: the solution membership test — executed once per
// edge — is a dense bitset instead of a map, and the per-run arrays are
// recycled through a pool (released on Finish), so the steady-state edge
// loop performs no hashing and no allocation. The space meter still charges
// the logical words of the paper's accounting: m for the degree array plus
// one word per chosen set.
package kk

import (
	"math"
	"math/bits"
	"sync"

	"streamcover/internal/dense"
	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Algorithm is one run of the KK-algorithm. Create with New, feed the stream
// with Process, and call Finish once at the end.
type Algorithm struct {
	space.Tracked

	n, m  int
	sqrtN int
	rng   *xrand.Rand

	sink *obs.Sink // decision-event sink; nil (inert) unless a hub is installed
	pos  int64     // edges processed, stamped on emitted events

	sc *kkScratch

	// deg packs each set's uncovered-degree state as level<<16 | low, where
	// the true degree is level·√n + low and 0 ≤ low < √n. The packing makes
	// the per-edge threshold test "low reached √n" a mask-and-compare
	// instead of an integer modulo, which profiling shows would otherwise
	// dominate the edge loop. Both fields are bounded by ~√n ≤ 2^16 (the
	// uncovered-degree never exceeds n).
	deg          []int32
	sol          dense.Bits // membership of the sampled solution
	solCount     int
	covered      []bool           // u covered by a set in sol (witness recorded)
	coveredCount int              // running count of covered elements
	first        []setcover.SetID // R(u): first set seen containing u
	firstFree    int              // elements with no first-set record yet
	cert         []setcover.SetID // output certificate

	patched     int   // sets added by the patching phase, for reporting
	levelCounts []int // cached at Finish, when deg is recycled
	finished    bool
}

// kkScratch bundles the recyclable per-run arrays (everything but the
// certificate, which escapes into the Cover) plus the batch-kernel staging
// blocks: the per-element id block and the activity mask words (see
// internal/dense batch kernels). The staging blocks have fixed capacity, so
// reuse never needs to clear them — every kernel pass overwrites exactly the
// prefix it reads.
type kkScratch struct {
	n, m    int
	deg     []int32
	sol     dense.Bits
	covered []bool
	first   []setcover.SetID

	stageElems []int32
	maskC      []uint64 // covered-element gather
	maskF      []uint64 // first-set-needed gather
}

var kkPool sync.Pool

func getKKScratch(n, m int) *kkScratch {
	if v := kkPool.Get(); v != nil {
		sc := v.(*kkScratch)
		if sc.n == n && sc.m == m {
			clear(sc.deg)
			sc.sol.Reset()
			clear(sc.covered)
			return sc
		}
	}
	return &kkScratch{
		n:          n,
		m:          m,
		deg:        make([]int32, m),
		sol:        dense.NewBits(m),
		covered:    make([]bool, n),
		first:      make([]setcover.SetID, n),
		stageElems: make([]int32, dense.KernelBlockEdges),
		maskC:      make([]uint64, dense.MaskWords(dense.KernelBlockEdges)),
		maskF:      make([]uint64, dense.MaskWords(dense.KernelBlockEdges)),
	}
}

// New returns a KK-algorithm run for an instance with n elements and m sets,
// drawing coins from rng.
func New(n, m int, rng *xrand.Rand) *Algorithm {
	if n <= 0 || m <= 0 {
		panic("kk: need n > 0 and m > 0")
	}
	sc := getKKScratch(n, m)
	a := &Algorithm{
		n:       n,
		m:       m,
		sqrtN:   int(math.Max(1, math.Round(math.Sqrt(float64(n))))),
		rng:     rng,
		sc:      sc,
		deg:     sc.deg,
		sol:     sc.sol,
		covered: sc.covered,
		first:   sc.first,
		cert:    make([]setcover.SetID, n),
		sink:    obs.SinkFor(obs.AlgoKK),
	}
	for u := range a.first {
		a.first[u] = setcover.NoSet
		a.cert[u] = setcover.NoSet
	}
	a.firstFree = n
	// The degree array is the algorithm's defining Θ(m) state; the three
	// per-element structures are the Õ(n) bookkeeping every regime carries.
	a.StateMeter.Add(int64(m))
	a.AuxMeter.Add(3 * int64(n))
	return a
}

// inclusionProb is the level-i inclusion probability min(1, 2^i·√n/m).
// Ldexp keeps large i finite (+Inf), which Coin clamps to certainty.
func (a *Algorithm) inclusionProb(level int) float64 {
	return math.Ldexp(float64(a.sqrtN)/float64(a.m), level)
}

// Process implements stream.Algorithm.
func (a *Algorithm) Process(e stream.Edge) { a.process(e) }

// ProcessBatch implements stream.BatchProcessor via the word-parallel batch
// kernels (internal/dense): edges are staged into a per-element id block,
// two gather passes pack "still uncovered" and "first set unrecorded" into
// mask words — 64 edges per word — and only the set bits run the per-edge
// body. An edge is a guaranteed no-op exactly when its element is covered
// AND has a first-set record; both predicates are monotone, so stage-time
// masks over-approximate activity and the body's exact re-checks keep the
// batched path byte-identical to per-edge Process (same writes, coin flips,
// events — the equivalence tests in the repository root hold the two paths
// together). A fully saturated block (coveredCount == n, no missing first
// records) is skipped with one compare.
//
// The kernel only pays off once the activity masks are mostly zero: while
// coverage is still sparse, nearly every edge carries work and the staging
// and gather passes are pure overhead on top of the body. processBlock
// therefore runs the plain hoisted loop below kkDenseCoverage and switches
// to the word-parallel path above it — a schedule choice between two
// byte-identical computations, driven only by the algorithm's own state.
func (a *Algorithm) ProcessBatch(edges []stream.Edge) {
	for len(edges) > 0 {
		k := len(edges)
		if k > dense.KernelBlockEdges {
			k = dense.KernelBlockEdges
		}
		a.processBlock(edges[:k])
		edges = edges[k:]
	}
}

// kkDenseCoverage is the covered fraction (in 1/64ths of n) above which the
// word-parallel mask path beats the plain loop: below it an activity word is
// rarely zero, so the 64-edges-per-compare skip cannot recoup the gathers.
const kkDenseCoverage = 63 // ≈ 98%

func (a *Algorithm) processBlock(edges []stream.Edge) {
	k := len(edges)
	if a.coveredCount == a.n && a.firstFree == 0 {
		a.pos += int64(k)
		return
	}
	if a.coveredCount*64 < a.n*kkDenseCoverage {
		a.plainBlock(edges)
		return
	}
	sc := a.sc
	elems := sc.stageElems[:k]
	for i, e := range edges {
		elems[i] = e.Elem
	}
	words := dense.MaskWords(k)
	act := sc.maskC[:words]
	dense.BoolMask(a.covered, elems, act)
	tail := dense.TailMask(k)
	for w := range act {
		act[w] = ^act[w] // uncovered elements still have work
	}
	act[words-1] &= tail
	if a.firstFree > 0 {
		fneed := sc.maskF[:words]
		dense.EqMask32(a.first, elems, setcover.NoSet, fneed)
		for w := range act {
			act[w] |= fneed[w]
		}
	}

	first, covered, cert, deg := a.first, a.covered, a.cert, a.deg
	sol := a.sol
	sqrtN := a.sqrtN
	base := a.pos
	for w := 0; w < words; w++ {
		m := act[w]
		for m != 0 {
			i := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			pos := base + int64(i) + 1
			u, s := elems[i], edges[i].Set
			if first[u] == setcover.NoSet {
				first[u] = s
				a.firstFree--
			}
			if sol.Test(s) {
				if !covered[u] {
					covered[u] = true
					a.coveredCount++
					cert[u] = s
					a.sink.Emit(obs.KindCertWrite, pos, int64(u), int64(s), -1)
				}
				continue
			}
			if covered[u] {
				continue
			}
			d := deg[s] + 1
			if int(d&degLowMask) != sqrtN {
				deg[s] = d
				continue
			}
			level := int(d>>degLevelShift) + 1
			deg[s] = int32(level) << degLevelShift
			a.sink.Emit(obs.KindLevelUp, pos, int64(s), int64(level), int64(level-1))
			if a.rng.Coin(a.inclusionProb(level)) {
				sol.Set(s)
				a.solCount++
				a.StateMeter.Add(space.SetEntryWords)
				covered[u] = true
				a.coveredCount++
				cert[u] = s
				a.sink.Emit(obs.KindSetSelected, pos, int64(s), int64(a.solCount), int64(level))
				a.sink.Emit(obs.KindCertWrite, pos, int64(u), int64(s), -1)
			} else {
				a.sink.Emit(obs.KindSampleDrop, pos, int64(s), int64(level), 0)
			}
		}
	}
	a.pos = base + int64(k)
}

// plainBlock is the sparse-coverage schedule: the per-edge body with the
// arrays hoisted into locals (one bounds-checked slice header load each
// instead of a pointer chase per edge), identical write-for-write and
// coin-for-coin to the mask path above.
func (a *Algorithm) plainBlock(edges []stream.Edge) {
	first, covered, cert, deg := a.first, a.covered, a.cert, a.deg
	sol := a.sol
	sqrtN := a.sqrtN
	pos := a.pos
	for _, e := range edges {
		pos++
		u, s := e.Elem, e.Set
		if first[u] == setcover.NoSet {
			first[u] = s
			a.firstFree--
		}
		if sol.Test(s) {
			if !covered[u] {
				covered[u] = true
				a.coveredCount++
				cert[u] = s
				a.sink.Emit(obs.KindCertWrite, pos, int64(u), int64(s), -1)
			}
			continue
		}
		if covered[u] {
			continue
		}
		d := deg[s] + 1
		if int(d&degLowMask) != sqrtN {
			deg[s] = d
			continue
		}
		level := int(d>>degLevelShift) + 1
		deg[s] = int32(level) << degLevelShift
		a.sink.Emit(obs.KindLevelUp, pos, int64(s), int64(level), int64(level-1))
		if a.rng.Coin(a.inclusionProb(level)) {
			sol.Set(s)
			a.solCount++
			a.StateMeter.Add(space.SetEntryWords)
			covered[u] = true
			a.coveredCount++
			cert[u] = s
			a.sink.Emit(obs.KindSetSelected, pos, int64(s), int64(a.solCount), int64(level))
			a.sink.Emit(obs.KindCertWrite, pos, int64(u), int64(s), -1)
		} else {
			a.sink.Emit(obs.KindSampleDrop, pos, int64(s), int64(level), 0)
		}
	}
	a.pos = pos
}

func (a *Algorithm) process(e stream.Edge) {
	a.pos++
	u, s := e.Elem, e.Set
	if a.first[u] == setcover.NoSet {
		a.first[u] = s
		a.firstFree--
	}
	if a.sol.Test(s) {
		if !a.covered[u] {
			a.covered[u] = true
			a.coveredCount++
			a.cert[u] = s
			a.sink.Emit(obs.KindCertWrite, a.pos, int64(u), int64(s), -1)
		}
		return
	}
	if a.covered[u] {
		return
	}
	d := a.deg[s] + 1
	if int(d&degLowMask) != a.sqrtN {
		a.deg[s] = d
		return
	}
	// d(S) reached the next multiple of √n: bump the level, reset low.
	level := int(d>>degLevelShift) + 1
	a.deg[s] = int32(level) << degLevelShift
	a.sink.Emit(obs.KindLevelUp, a.pos, int64(s), int64(level), int64(level-1))
	if a.rng.Coin(a.inclusionProb(level)) {
		a.sol.Set(s)
		a.solCount++
		a.StateMeter.Add(space.SetEntryWords)
		a.covered[u] = true
		a.coveredCount++
		a.cert[u] = s
		a.sink.Emit(obs.KindSetSelected, a.pos, int64(s), int64(a.solCount), int64(level))
		a.sink.Emit(obs.KindCertWrite, a.pos, int64(u), int64(s), -1)
	} else {
		a.sink.Emit(obs.KindSampleDrop, a.pos, int64(s), int64(level), 0)
	}
}

// deg packing: low 16 bits count within the current level, high bits hold
// the level d(S)/√n.
const (
	degLevelShift = 16
	degLowMask    = 1<<degLevelShift - 1
)

// Finish implements stream.Algorithm: the patching phase covers every
// element without a witness using its stored first set R(u). It must be
// called exactly once; the recyclable working arrays are released here.
func (a *Algorithm) Finish() *setcover.Cover {
	if a.finished {
		panic("kk: Finish called twice")
	}
	a.finished = true
	patch := 0
	for u := range a.cert {
		if a.cert[u] == setcover.NoSet && a.first[u] != setcover.NoSet {
			patch++
		}
	}
	chosen := make([]setcover.SetID, 0, a.solCount+patch)
	a.sol.ForEach(func(s int32) { chosen = append(chosen, s) })
	for u := range a.cert {
		if a.cert[u] == setcover.NoSet && a.first[u] != setcover.NoSet {
			a.cert[u] = a.first[u]
			chosen = append(chosen, a.first[u])
			a.patched++
		}
	}
	a.sink.Count(obs.KindPatch, int64(a.patched))
	a.levelCounts = a.computeLevelCounts()
	cov := setcover.NewCover(chosen, a.cert)
	sc := a.sc
	a.sc, a.deg, a.covered, a.first = nil, nil, nil, nil
	a.sol = dense.Bits{}
	kkPool.Put(sc)
	return cov
}

// Patched returns how many elements the patching phase covered, available
// after Finish.
func (a *Algorithm) Patched() int { return a.patched }

// SampledSets returns how many sets the probabilistic inclusion process
// added (excluding patching), available at any time.
func (a *Algorithm) SampledSets() int { return a.solCount }

// CoveredCount implements stream.CoverageReporter: the number of elements
// currently holding a covering witness.
func (a *Algorithm) CoveredCount() int { return a.coveredCount }

// SetObs replaces the decision-event sink (tests attach private hubs here;
// nil detaches).
func (a *Algorithm) SetObs(s *obs.Sink) { a.sink = s }

// ObsAlgo implements obs.Identified.
func (a *Algorithm) ObsAlgo() obs.AlgoID { return obs.AlgoKK }

// LevelCounts returns |S_i| for i = 0..max: the number of sets whose final
// uncovered-degree lies in [i·√n, (i+1)·√n). The analysis of [19] shows
// E|S_i| ≤ ½·E|S_{i-1}|; the E-ABL-KK ablation verifies this decay
// empirically. Available both mid-stream and after Finish (the counts are
// snapshotted when the degree array is released).
func (a *Algorithm) LevelCounts() []int {
	if a.finished {
		return a.levelCounts
	}
	return a.computeLevelCounts()
}

func (a *Algorithm) computeLevelCounts() []int {
	maxLvl := -1
	for _, d := range a.deg {
		if lvl := int(d >> degLevelShift); lvl > maxLvl {
			maxLvl = lvl
		}
	}
	counts := make([]int, maxLvl+1)
	for _, d := range a.deg {
		counts[int(d>>degLevelShift)]++
	}
	return counts
}

var _ stream.Algorithm = (*Algorithm)(nil)
var _ stream.BatchProcessor = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
