package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Median != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Fatal("empty string")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConversions(t *testing.T) {
	fi := Ints([]int{1, 2, 3})
	f64 := Int64s([]int64{4, 5})
	if fi[2] != 3 || f64[1] != 5 {
		t.Fatal("conversion wrong")
	}
}

func TestGeometricFitSlope(t *testing.T) {
	// y = 4·x² must fit slope 2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4 * x * x
	}
	if got := GeometricFitSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope %v want 2", got)
	}
	// y = 8/x must fit slope −1.
	for i, x := range xs {
		ys[i] = 8 / x
	}
	if got := GeometricFitSlope(xs, ys); math.Abs(got+1) > 1e-9 {
		t.Fatalf("slope %v want -1", got)
	}
}

func TestGeometricFitSlopeDegenerate(t *testing.T) {
	if !math.IsNaN(GeometricFitSlope([]float64{1}, []float64{2})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(GeometricFitSlope([]float64{-1, -2}, []float64{1, 2})) {
		t.Fatal("nonpositive xs should be NaN")
	}
	if !math.IsNaN(GeometricFitSlope([]float64{3, 3}, []float64{1, 2})) {
		t.Fatal("zero x-variance should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	GeometricFitSlope([]float64{1}, []float64{1, 2})
}
