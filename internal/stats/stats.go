// Package stats provides the small summary-statistics toolkit the
// experiment harness uses to aggregate repeated randomized runs.
package stats

import (
	"fmt"
	"math"
	"slices"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varsum / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f±%.2f median=%.2f range=[%.2f,%.2f]",
		s.N, s.Mean, s.Stddev, s.Median, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty sample or
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := slices.Clone(xs)
	slices.Sort(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts an int sample for Summarize/Quantile.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Int64s converts an int64 sample.
func Int64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// GeometricFitSlope fits log2(y) = a + slope·log2(x) by least squares and
// returns the slope — the tool experiments use to verify power-law space
// scalings (e.g. peak-space vs m should have slope ≈ 1 for the
// KK-algorithm and for Algorithm 1 at fixed n, and vs α slope ≈ −2 for
// Algorithm 2). Points with non-positive coordinates are skipped; fewer
// than two usable points yield NaN.
func GeometricFitSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: GeometricFitSlope length mismatch")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log2(xs[i]))
			ly = append(ly, math.Log2(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	mx := mean(lx)
	my := mean(ly)
	num, den := 0.0, 0.0
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
