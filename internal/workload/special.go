package workload

import (
	"fmt"
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

// GreedyWorstCase builds the classical tight instance for the greedy
// algorithm (Johnson's construction): a universe of 2^{k+1}−2 elements
// partitioned into bait blocks B_1..B_k with |B_j| = 2^{k+1−j}, plus two
// optimal sets each holding half of every block. Greedy strictly prefers
// the baits (|B_1| = 2^k beats each optimal set's 2^k−1) and takes all k of
// them, so greedy/OPT = k/2 = Θ(log n) while OPT = 2.
//
// Experiments use it to exercise the regime where even the offline
// reference is far from OPT — streaming ratios are measured against OPT,
// not greedy, on such instances. PlantedOPT is set to the true optimum 2.
func GreedyWorstCase(k int) Workload {
	if k < 1 || k > 30 {
		panic(fmt.Sprintf("workload: GreedyWorstCase k=%d out of [1,30]", k))
	}
	n := (1 << (k + 1)) - 2
	var baits [][]setcover.Element
	opt1 := make([]setcover.Element, 0, n/2)
	opt2 := make([]setcover.Element, 0, n/2)
	next := setcover.Element(0)
	for j := 1; j <= k; j++ {
		blockSize := 1 << (k + 1 - j)
		bait := make([]setcover.Element, 0, blockSize)
		for i := 0; i < blockSize; i++ {
			bait = append(bait, next)
			if i < blockSize/2 {
				opt1 = append(opt1, next)
			} else {
				opt2 = append(opt2, next)
			}
			next++
		}
		baits = append(baits, bait)
	}
	sets := append([][]setcover.Element{opt1, opt2}, baits...)
	return Workload{
		Name:       fmt.Sprintf("greedy-worst(k=%d,n=%d)", k, n),
		Inst:       setcover.MustNewInstance(n, sets),
		PlantedOPT: 2,
	}
}

// GeometricDisks builds a geometric covering instance: the universe is a
// g×g grid of points and each set is the disk of radius r around a random
// center — the "sensor placement" flavour of Set Cover. Feasibility is
// patched by inserting uncovered points into their nearest disk's set.
func GeometricDisks(rng *xrand.Rand, g, m int, r float64) Workload {
	if g < 1 || m < 1 || r <= 0 {
		panic(fmt.Sprintf("workload: GeometricDisks g=%d m=%d r=%v invalid", g, m, r))
	}
	n := g * g
	type pt struct{ x, y int }
	centers := make([]pt, m)
	sets := make([][]setcover.Element, m)
	covered := make([]bool, n)
	r2 := r * r
	for i := 0; i < m; i++ {
		c := pt{rng.IntN(g), rng.IntN(g)}
		centers[i] = c
		lo := func(v int) int { return max(0, v-int(r)-1) }
		hi := func(v int) int { return min(g-1, v+int(r)+1) }
		for x := lo(c.x); x <= hi(c.x); x++ {
			for y := lo(c.y); y <= hi(c.y); y++ {
				dx, dy := float64(x-c.x), float64(y-c.y)
				if dx*dx+dy*dy <= r2 {
					u := setcover.Element(x*g + y)
					sets[i] = append(sets[i], u)
					covered[u] = true
				}
			}
		}
	}
	// Patch: each uncovered point joins the disk with the nearest center.
	for u := 0; u < n; u++ {
		if covered[u] {
			continue
		}
		x, y := u/g, u%g
		best, bestD := 0, math.Inf(1)
		for i, c := range centers {
			dx, dy := float64(x-c.x), float64(y-c.y)
			if d := dx*dx + dy*dy; d < bestD {
				bestD = d
				best = i
			}
		}
		sets[best] = append(sets[best], setcover.Element(u))
	}
	return Workload{
		Name: fmt.Sprintf("disks(g=%d,m=%d,r=%.1f)", g, m, r),
		Inst: setcover.MustNewInstance(n, sets),
	}
}
