// Package workload generates the synthetic Set Cover instances the
// experiments run on.
//
// The paper's evaluation landscape (Table 1) is about approximation-vs-space
// trade-offs relative to OPT, so most experiments use planted-cover
// instances where OPT is known by construction. The remaining generators
// exercise specific behaviours: Zipf-skewed element degrees (the high-degree
// elements epoch 0 of Algorithm 1 must detect), dominating-set graphs (the
// m = n special case the KK-algorithm was designed for, [19]), and the
// m = Ω̃(n²) regime Theorem 3 requires.
//
// Every generator returns a feasible instance (each element in ≥ 1 set).
package workload

import (
	"fmt"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

// Workload couples an instance with what is known about its optimum.
type Workload struct {
	// Name identifies the generator and parameters, for reports.
	Name string
	// Inst is the generated, feasible instance.
	Inst *setcover.Instance
	// PlantedOPT is a known upper bound on OPT when the generator planted a
	// cover (the true OPT can only be smaller if noise sets happen to form a
	// better cover, which the generators make unlikely); 0 when unknown.
	PlantedOPT int
}

// OptEstimate returns the best available stand-in for OPT: the planted value
// when present, otherwise the greedy cover size (an (ln n+1)-approximation).
func (w Workload) OptEstimate() (int, error) {
	if w.PlantedOPT > 0 {
		return w.PlantedOPT, nil
	}
	return setcover.GreedySize(w.Inst)
}

// Planted builds an instance whose optimum is (essentially) known: the
// universe is partitioned into opt equal blocks, one planted set per block,
// and the remaining m-opt sets are noise sets of size noiseSize drawn
// uniformly at random. Since every noise set is much smaller than a block,
// no cover can use fewer than opt sets unless noiseSize·k ≥ n for small k;
// callers keep noiseSize ≤ n/(2·opt) for a sharp bound — the default used
// when noiseSize <= 0.
//
// Planted panics on invalid parameters (opt < 1, opt > n, m < opt).
func Planted(rng *xrand.Rand, n, m, opt, noiseSize int) Workload {
	if opt < 1 || opt > n {
		panic(fmt.Sprintf("workload: Planted opt=%d out of range [1,%d]", opt, n))
	}
	if m < opt {
		panic(fmt.Sprintf("workload: Planted m=%d < opt=%d", m, opt))
	}
	if noiseSize <= 0 {
		noiseSize = n / (2 * opt)
		if noiseSize < 1 {
			noiseSize = 1
		}
	}
	sets := make([][]setcover.Element, 0, m)
	// Planted blocks: contiguous ranges, element u in block u·opt/n.
	block := make([][]setcover.Element, opt)
	for u := 0; u < n; u++ {
		b := u * opt / n
		block[b] = append(block[b], setcover.Element(u))
	}
	sets = append(sets, block...)
	for len(sets) < m {
		sz := noiseSize
		if sz > n {
			sz = n
		}
		sets = append(sets, rng.SampleK32(n, sz))
	}
	// Shuffle set ids so planted sets are not a recognisable prefix.
	rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
	return Workload{
		Name:       fmt.Sprintf("planted(n=%d,m=%d,opt=%d,noise=%d)", n, m, opt, noiseSize),
		Inst:       setcover.MustNewInstance(n, sets),
		PlantedOPT: opt,
	}
}

// UniformRandom builds m sets whose sizes are uniform in [minSize, maxSize]
// and whose elements are uniform without replacement, then patches
// feasibility by inserting every uncovered element into one random set.
func UniformRandom(rng *xrand.Rand, n, m, minSize, maxSize int) Workload {
	if minSize < 1 || maxSize < minSize || maxSize > n {
		panic(fmt.Sprintf("workload: UniformRandom sizes [%d,%d] invalid for n=%d", minSize, maxSize, n))
	}
	sets := make([][]setcover.Element, m)
	covered := make([]bool, n)
	for i := range sets {
		sz := minSize + rng.IntN(maxSize-minSize+1)
		sets[i] = rng.SampleK32(n, sz)
		for _, u := range sets[i] {
			covered[u] = true
		}
	}
	for u := 0; u < n; u++ {
		if !covered[u] {
			i := rng.IntN(m)
			sets[i] = append(sets[i], setcover.Element(u))
		}
	}
	return Workload{
		Name: fmt.Sprintf("uniform(n=%d,m=%d,size=[%d,%d])", n, m, minSize, maxSize),
		Inst: setcover.MustNewInstance(n, sets),
	}
}

// ZipfSkewed builds sets whose elements follow a Zipf law with exponent s,
// producing the heavy-tailed element degrees (a few elements in very many
// sets) that exercise the high-degree detection of Algorithm 1's epoch 0 and
// Lemma 6's tracking. Feasibility is patched as in UniformRandom.
func ZipfSkewed(rng *xrand.Rand, n, m, meanSize int, s float64) Workload {
	if meanSize < 1 || meanSize > n {
		panic(fmt.Sprintf("workload: ZipfSkewed meanSize=%d invalid for n=%d", meanSize, n))
	}
	z := xrand.NewZipf(rng, n, s)
	sets := make([][]setcover.Element, m)
	covered := make([]bool, n)
	for i := range sets {
		seen := make(map[setcover.Element]struct{}, meanSize)
		// Draw until meanSize distinct elements (bounded retries keep the
		// generator fast even under extreme skew).
		for tries := 0; len(seen) < meanSize && tries < 20*meanSize; tries++ {
			seen[setcover.Element(z.Draw())] = struct{}{}
		}
		for u := range seen {
			sets[i] = append(sets[i], u)
			covered[u] = true
		}
	}
	for u := 0; u < n; u++ {
		if !covered[u] {
			sets[rng.IntN(m)] = append(sets[rng.IntN(m)], setcover.Element(u))
		}
	}
	return Workload{
		Name: fmt.Sprintf("zipf(n=%d,m=%d,mean=%d,s=%.2f)", n, m, meanSize, s),
		Inst: setcover.MustNewInstance(n, sets),
	}
}

// DominatingSet builds the Dominating Set special case of edge-arrival Set
// Cover ([19]): an Erdős–Rényi graph G(n, p) where set i is the closed
// neighbourhood N[i] of vertex i, so m = n and the instance is feasible by
// construction (i ∈ N[i]).
func DominatingSet(rng *xrand.Rand, n int, p float64) Workload {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("workload: DominatingSet p=%v out of [0,1]", p))
	}
	sets := make([][]setcover.Element, n)
	for i := 0; i < n; i++ {
		sets[i] = append(sets[i], setcover.Element(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Coin(p) {
				sets[i] = append(sets[i], setcover.Element(j))
				sets[j] = append(sets[j], setcover.Element(i))
			}
		}
	}
	return Workload{
		Name: fmt.Sprintf("domset(n=%d,p=%.3f)", n, p),
		Inst: setcover.MustNewInstance(n, sets),
	}
}

// QuadraticPlanted is Planted in the m = Ω̃(n²) regime Theorem 3 assumes:
// m = factor·n². Noise sets are kept small so the planted optimum stays
// sharp even with quadratically many sets.
func QuadraticPlanted(rng *xrand.Rand, n, opt, factor int) Workload {
	if factor < 1 {
		panic("workload: QuadraticPlanted factor < 1")
	}
	m := factor * n * n
	w := Planted(rng, n, m, opt, 0)
	w.Name = fmt.Sprintf("quadratic-planted(n=%d,m=%d,opt=%d)", n, m, opt)
	return w
}

// HeavyElements builds an instance where heavyCount elements are contained
// in nearly every set (degree ≈ m) while the rest have small uniform degree.
// This is the stress case for epoch 0 of Algorithm 1 (degree ≥ 1.1·m/√n
// detection) and for Lemma 6's forward-degree tracking.
func HeavyElements(rng *xrand.Rand, n, m, heavyCount, lightSize int) Workload {
	if heavyCount < 0 || heavyCount > n {
		panic(fmt.Sprintf("workload: HeavyElements heavyCount=%d invalid", heavyCount))
	}
	sets := make([][]setcover.Element, m)
	covered := make([]bool, n)
	for i := range sets {
		for h := 0; h < heavyCount; h++ {
			if rng.Coin(0.9) {
				sets[i] = append(sets[i], setcover.Element(h))
				covered[h] = true
			}
		}
		if lightSize > 0 && heavyCount < n {
			for _, u := range rng.SampleK(n-heavyCount, min(lightSize, n-heavyCount)) {
				sets[i] = append(sets[i], setcover.Element(heavyCount+u))
				covered[heavyCount+u] = true
			}
		}
	}
	for u := 0; u < n; u++ {
		if !covered[u] {
			sets[rng.IntN(m)] = append(sets[rng.IntN(m)], setcover.Element(u))
		}
	}
	return Workload{
		Name: fmt.Sprintf("heavy(n=%d,m=%d,heavy=%d,light=%d)", n, m, heavyCount, lightSize),
		Inst: setcover.MustNewInstance(n, sets),
	}
}

// Catalog returns a representative small workload of each kind, used by
// cross-cutting integration tests that must hold on every generator.
func Catalog(rng *xrand.Rand) []Workload {
	return []Workload{
		Planted(rng.Split(), 100, 400, 10, 0),
		UniformRandom(rng.Split(), 80, 200, 2, 20),
		ZipfSkewed(rng.Split(), 100, 300, 8, 1.1),
		DominatingSet(rng.Split(), 120, 0.05),
		HeavyElements(rng.Split(), 90, 250, 5, 4),
	}
}
