package workload

import (
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

func TestGreedyWorstCaseShape(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		w := GreedyWorstCase(k)
		n := (1 << (k + 1)) - 2
		if w.Inst.UniverseSize() != n {
			t.Fatalf("k=%d: n=%d want %d", k, w.Inst.UniverseSize(), n)
		}
		if w.Inst.NumSets() != k+2 {
			t.Fatalf("k=%d: m=%d want %d", k, w.Inst.NumSets(), k+2)
		}
		if err := w.Inst.Validate(); err != nil {
			t.Fatal(err)
		}
		// Sets 0 and 1 are the optimal pair.
		if w.Inst.SetSize(0) != n/2 || w.Inst.SetSize(1) != n/2 {
			t.Fatalf("k=%d: optimal sets sized %d/%d", k, w.Inst.SetSize(0), w.Inst.SetSize(1))
		}
	}
}

func TestGreedyWorstCaseFoolsGreedy(t *testing.T) {
	k := 6
	w := GreedyWorstCase(k)
	g, err := setcover.GreedySize(w.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if g != k {
		t.Fatalf("greedy picked %d sets, want exactly the %d baits", g, k)
	}
	// Exact solver confirms OPT = 2 for small k.
	small := GreedyWorstCase(4)
	opt, err := setcover.ExactSize(small.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("exact OPT = %d want 2", opt)
	}
}

func TestGreedyWorstCasePanics(t *testing.T) {
	for _, k := range []int{0, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GreedyWorstCase(%d) did not panic", k)
				}
			}()
			GreedyWorstCase(k)
		}()
	}
}

func TestGeometricDisksFeasibleAndLocal(t *testing.T) {
	w := GeometricDisks(xrand.New(1), 20, 60, 3.0)
	if w.Inst.UniverseSize() != 400 {
		t.Fatalf("n=%d", w.Inst.UniverseSize())
	}
	if err := w.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Disk sets (before patching) are geometrically local: their size is at
	// most the number of grid points in a radius-3 disk (~29) plus patched
	// strays; demand a loose cap.
	for s := 0; s < w.Inst.NumSets(); s++ {
		if w.Inst.SetSize(setcover.SetID(s)) > 80 {
			t.Fatalf("disk %d has %d points; not local", s, w.Inst.SetSize(setcover.SetID(s)))
		}
	}
}

func TestGeometricDisksDeterministic(t *testing.T) {
	a := GeometricDisks(xrand.New(2), 15, 40, 2.5)
	b := GeometricDisks(xrand.New(2), 15, 40, 2.5)
	if a.Inst.NumEdges() != b.Inst.NumEdges() {
		t.Fatal("not deterministic")
	}
}

func TestGeometricDisksPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GeometricDisks(xrand.New(1), 0, 5, 1) },
		func() { GeometricDisks(xrand.New(1), 5, 0, 1) },
		func() { GeometricDisks(xrand.New(1), 5, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
