package workload

import (
	"strings"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

func TestAllGeneratorsFeasible(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range Catalog(rng) {
		t.Run(w.Name, func(t *testing.T) {
			if err := w.Inst.Validate(); err != nil {
				t.Fatalf("infeasible: %v", err)
			}
		})
	}
}

func TestAllGeneratorsDeterministic(t *testing.T) {
	a := Catalog(xrand.New(42))
	b := Catalog(xrand.New(42))
	for i := range a {
		if !a[i].Inst.Equal(b[i].Inst) {
			t.Fatalf("%s: not deterministic", a[i].Name)
		}
	}
}

func TestPlantedShape(t *testing.T) {
	w := Planted(xrand.New(2), 100, 400, 10, 0)
	if w.Inst.UniverseSize() != 100 || w.Inst.NumSets() != 400 {
		t.Fatalf("shape n=%d m=%d", w.Inst.UniverseSize(), w.Inst.NumSets())
	}
	if w.PlantedOPT != 10 {
		t.Fatalf("PlantedOPT=%d", w.PlantedOPT)
	}
	// Greedy must find a cover no larger than ~opt·ln(n); in practice it
	// finds the planted blocks, so allow a small margin.
	g, err := setcover.GreedySize(w.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if g > 3*w.PlantedOPT {
		t.Fatalf("greedy=%d far above planted OPT=%d; planting broken?", g, w.PlantedOPT)
	}
}

func TestPlantedOPTTight(t *testing.T) {
	// Small instance where the exact solver can confirm the planted OPT.
	w := Planted(xrand.New(3), 40, 80, 4, 0)
	opt, err := setcover.ExactSize(w.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt != w.PlantedOPT {
		t.Fatalf("exact OPT=%d, planted=%d", opt, w.PlantedOPT)
	}
}

func TestPlantedPanics(t *testing.T) {
	for _, tc := range []struct{ n, m, opt int }{
		{10, 20, 0}, {10, 20, 11}, {10, 3, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Planted(n=%d,m=%d,opt=%d) did not panic", tc.n, tc.m, tc.opt)
				}
			}()
			Planted(xrand.New(1), tc.n, tc.m, tc.opt, 0)
		}()
	}
}

func TestUniformRandomSizes(t *testing.T) {
	w := UniformRandom(xrand.New(4), 50, 100, 3, 7)
	for s := 0; s < w.Inst.NumSets(); s++ {
		sz := w.Inst.SetSize(setcover.SetID(s))
		// +patching can push a set slightly above maxSize.
		if sz < 1 || sz > 7+50 {
			t.Fatalf("set %d size %d", s, sz)
		}
	}
	if err := w.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRandomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformRandom(xrand.New(1), 10, 5, 8, 3) // min > max
}

func TestZipfSkewedDegrees(t *testing.T) {
	w := ZipfSkewed(xrand.New(5), 200, 500, 10, 1.3)
	deg := w.Inst.ElementDegrees()
	// Element 0 (most popular under Zipf) should far exceed the median.
	lo, hi := 0, 0
	for u := 0; u < 10; u++ {
		hi += deg[u]
	}
	for u := 100; u < 110; u++ {
		lo += deg[u]
	}
	if hi <= lo {
		t.Fatalf("no skew: head degree %d vs tail %d", hi, lo)
	}
}

func TestDominatingSetShape(t *testing.T) {
	w := DominatingSet(xrand.New(6), 50, 0.1)
	if w.Inst.NumSets() != 50 {
		t.Fatalf("m=%d want n=50", w.Inst.NumSets())
	}
	// Every vertex is in its own closed neighbourhood.
	for i := 0; i < 50; i++ {
		if !w.Inst.Contains(setcover.SetID(i), setcover.Element(i)) {
			t.Fatalf("vertex %d missing from own neighbourhood", i)
		}
	}
	// Symmetry: j ∈ N[i] ⟺ i ∈ N[j].
	for i := 0; i < 50; i++ {
		for _, j := range w.Inst.Set(setcover.SetID(i)) {
			if !w.Inst.Contains(setcover.SetID(j), setcover.Element(i)) {
				t.Fatalf("adjacency not symmetric: %d in N[%d] but not vice versa", j, i)
			}
		}
	}
}

func TestDominatingSetEdgeProbabilities(t *testing.T) {
	// p=0: only self loops. p=1: complete graph.
	w0 := DominatingSet(xrand.New(7), 20, 0)
	if w0.Inst.NumEdges() != 20 {
		t.Fatalf("p=0 edges=%d want 20", w0.Inst.NumEdges())
	}
	w1 := DominatingSet(xrand.New(7), 20, 1)
	if w1.Inst.NumEdges() != 20*20 {
		t.Fatalf("p=1 edges=%d want 400", w1.Inst.NumEdges())
	}
}

func TestQuadraticPlantedRegime(t *testing.T) {
	w := QuadraticPlanted(xrand.New(8), 30, 5, 2)
	if w.Inst.NumSets() != 2*30*30 {
		t.Fatalf("m=%d want %d", w.Inst.NumSets(), 2*30*30)
	}
	if w.PlantedOPT != 5 {
		t.Fatalf("PlantedOPT=%d", w.PlantedOPT)
	}
	if err := w.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyElementsDegrees(t *testing.T) {
	w := HeavyElements(xrand.New(9), 100, 400, 3, 2)
	deg := w.Inst.ElementDegrees()
	for h := 0; h < 3; h++ {
		if deg[h] < 300 {
			t.Fatalf("heavy element %d degree %d, want ≈ 0.9·400", h, deg[h])
		}
	}
	light := 0
	for u := 3; u < 100; u++ {
		light += deg[u]
	}
	if light/97 > 50 {
		t.Fatalf("light elements too heavy: mean %d", light/97)
	}
}

func TestOptEstimate(t *testing.T) {
	w := Planted(xrand.New(10), 50, 100, 5, 0)
	opt, err := w.OptEstimate()
	if err != nil || opt != 5 {
		t.Fatalf("opt=%d err=%v", opt, err)
	}
	u := UniformRandom(xrand.New(11), 30, 60, 2, 10)
	opt, err = u.OptEstimate()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := setcover.GreedySize(u.Inst)
	if opt != g {
		t.Fatalf("unplanted OptEstimate=%d, greedy=%d", opt, g)
	}
}

func TestWorkloadNames(t *testing.T) {
	for _, w := range Catalog(xrand.New(12)) {
		if w.Name == "" || !strings.Contains(w.Name, "n=") {
			t.Errorf("uninformative name %q", w.Name)
		}
	}
}
