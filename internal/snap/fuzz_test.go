package snap_test

// Fuzz targets for the SCSTATE1 container and the SCCKPT1 checkpoint
// envelope, driven through the real consumers: every algorithm's
// Restore and stream.ReadCheckpoint. The contract under test is the one
// resume correctness depends on — arbitrary bytes must either be
// rejected with a typed error (snap.ErrCorrupt / ErrTruncated /
// ErrMismatch / ErrVersion) or produce a state that is coherent: it
// re-snapshots cleanly, the re-snapshot restores into another fresh
// instance, and the bytes are stable across that round trip. Panics,
// untyped errors and unbounded allocations are all failures.
//
// This file lives in the external test package so it can exercise the
// algorithm packages, which themselves import snap.

import (
	"bytes"
	"errors"
	"testing"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/kk"
	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

const (
	fuzzN    = 12
	fuzzM    = 6
	fuzzSeed = 42
)

// fuzzEdges is a small fixed instance: enough edges to move every
// algorithm off its initial state, small enough to keep fuzz iterations
// cheap.
func fuzzEdges() []stream.Edge {
	sets := [][]setcover.Element{
		{0, 1, 2, 3},
		{2, 3, 4, 5},
		{5, 6, 7},
		{7, 8, 9, 10},
		{0, 4, 8, 11},
		{1, 6, 10, 11},
	}
	return stream.EdgesOf(setcover.MustNewInstance(fuzzN, sets))
}

var fuzzKinds = []string{"kk", "alg1", "alg2", "es", "ensemble"}

// fuzzBuild returns a deterministic fresh instance of one of the five
// snapshotters, mirroring the serve registry's constructor arguments.
func fuzzBuild(kind byte) (string, stream.Algorithm) {
	name := fuzzKinds[int(kind)%len(fuzzKinds)]
	streamLen := len(fuzzEdges())
	rng := xrand.New(fuzzSeed)
	switch name {
	case "kk":
		return name, kk.New(fuzzN, fuzzM, rng)
	case "alg1":
		return name, core.New(fuzzN, fuzzM, streamLen, core.DefaultParams(fuzzN, fuzzM), rng)
	case "alg2":
		return name, adversarial.New(fuzzN, fuzzM, 4, rng)
	case "es":
		return name, elementsampling.New(fuzzN, fuzzM, 4, rng)
	default: // ensemble of two kk copies, split like the serve registry
		return name, stream.NewEnsemble(
			kk.New(fuzzN, fuzzM, rng.Split()),
			kk.New(fuzzN, fuzzM, rng.Split()),
		)
	}
}

// typedSnapErr reports whether err belongs to one of snap's sentinel
// families — the only errors a decoder is allowed to return for bad bytes.
func typedSnapErr(err error) bool {
	return errors.Is(err, snap.ErrCorrupt) || errors.Is(err, snap.ErrTruncated) ||
		errors.Is(err, snap.ErrMismatch) || errors.Is(err, snap.ErrVersion)
}

// seedSnapshots produces real mid-stream snapshots of every kind, at the
// start of the stream and partway through.
func seedSnapshots(f *testing.F) map[byte][]byte {
	f.Helper()
	edges := fuzzEdges()
	out := make(map[byte][]byte)
	for kind := byte(0); int(kind) < len(fuzzKinds); kind++ {
		name, alg := fuzzBuild(kind)
		for i := 0; i < len(edges)/2; i++ {
			alg.Process(edges[i])
		}
		var buf bytes.Buffer
		if err := alg.(stream.Snapshotter).Snapshot(&buf); err != nil {
			f.Fatalf("%s: seed snapshot: %v", name, err)
		}
		out[kind] = buf.Bytes()
	}
	return out
}

// FuzzRestore feeds arbitrary bytes to every algorithm's Restore.
func FuzzRestore(f *testing.F) {
	for kind, valid := range seedSnapshots(f) {
		f.Add(valid, kind)
		f.Add(valid[:len(valid)/2], kind)           // truncation
		f.Add(valid, (kind+1)%byte(len(fuzzKinds))) // wrong algorithm
		mutated := append([]byte(nil), valid...)
		mutated[len(mutated)/3] ^= 0x40
		f.Add(mutated, kind) // bit flip
	}
	f.Add([]byte{}, byte(0))
	f.Add([]byte("SCSTATE1"), byte(2))

	f.Fuzz(func(t *testing.T, data []byte, kind byte) {
		name, alg := fuzzBuild(kind)
		sn := alg.(stream.Snapshotter)
		if err := sn.Restore(bytes.NewReader(data)); err != nil {
			if !typedSnapErr(err) {
				t.Fatalf("%s: untyped restore error: %v", name, err)
			}
			return
		}
		// Accepted input: the restored state must re-snapshot, restore
		// into a second fresh instance, and be byte-stable.
		var first bytes.Buffer
		if err := sn.Snapshot(&first); err != nil {
			t.Fatalf("%s: snapshot of accepted state failed: %v", name, err)
		}
		_, alg2 := fuzzBuild(kind)
		sn2 := alg2.(stream.Snapshotter)
		if err := sn2.Restore(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("%s: re-restore of accepted state failed: %v", name, err)
		}
		var second bytes.Buffer
		if err := sn2.Snapshot(&second); err != nil {
			t.Fatalf("%s: second snapshot failed: %v", name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%s: accepted state is not byte-stable across a snapshot round trip", name)
		}
	})
}

// FuzzReadCheckpoint feeds arbitrary bytes through the SCCKPT1 envelope
// decoder and, when accepted, demands a faithful re-encode.
func FuzzReadCheckpoint(f *testing.F) {
	edges := fuzzEdges()
	for kind := byte(0); int(kind) < len(fuzzKinds); kind++ {
		name, alg := fuzzBuild(kind)
		pos := len(edges) / 2
		for i := 0; i < pos; i++ {
			alg.Process(edges[i])
		}
		var buf bytes.Buffer
		if err := stream.WriteCheckpoint(&buf, pos, alg); err != nil {
			f.Fatalf("%s: seed checkpoint: %v", name, err)
		}
		valid := buf.Bytes()
		f.Add(valid, kind)
		f.Add(valid[:len(valid)-1], kind)           // lost trailer byte
		f.Add(valid, (kind+2)%byte(len(fuzzKinds))) // wrong algorithm
		mutated := append([]byte(nil), valid...)
		mutated[len(mutated)/2] ^= 0x01
		f.Add(mutated, kind)

		// Trace-stamped envelope seeds: a valid traced checkpoint, one with a
		// corrupted trace section mark, and one truncated mid-trace.
		var tb bytes.Buffer
		trace := obs.TraceID{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
		if err := stream.WriteCheckpointTraced(&tb, pos, trace, alg); err != nil {
			f.Fatalf("%s: traced seed checkpoint: %v", name, err)
		}
		traced := tb.Bytes()
		f.Add(traced, kind)
		f.Add(traced[:len(traced)-10], kind) // truncated inside the trace section
		badMark := append([]byte(nil), traced...)
		badMark[len(badMark)-22] ^= 0xff // corrupt the "TI" mark
		f.Add(badMark, kind)
	}
	f.Add([]byte{}, byte(0))
	f.Add([]byte("SCCKPT1\n"), byte(1))

	f.Fuzz(func(t *testing.T, data []byte, kind byte) {
		name, alg := fuzzBuild(kind)
		pos, trace, err := stream.ReadCheckpointTraced(bytes.NewReader(data), alg)
		if err != nil {
			if !typedSnapErr(err) {
				t.Fatalf("%s: untyped checkpoint error: %v", name, err)
			}
			return
		}
		if pos < 0 {
			t.Fatalf("%s: accepted negative position %d", name, pos)
		}
		var buf bytes.Buffer
		if err := stream.WriteCheckpointTraced(&buf, pos, trace, alg); err != nil {
			t.Fatalf("%s: re-checkpoint of accepted state failed: %v", name, err)
		}
		_, alg2 := fuzzBuild(kind)
		pos2, trace2, err := stream.ReadCheckpointTraced(bytes.NewReader(buf.Bytes()), alg2)
		if err != nil {
			t.Fatalf("%s: re-read of re-checkpoint failed: %v", name, err)
		}
		if pos2 != pos || trace2 != trace {
			t.Fatalf("%s: identity drifted (%d,%v) -> (%d,%v) across round trip", name, pos, trace, pos2, trace2)
		}
	})
}
