// Package snap implements the SCSTATE1 serialized-state codec: the versioned,
// checksummed binary container every streaming algorithm's Snapshot/Restore
// (stream.Snapshotter) is built on.
//
// The format mirrors the SCTRACE1 trace-file discipline (internal/obs): an
// 8-byte magic, a self-describing header, a varint-encoded payload, and a
// CRC-32 (IEEE) trailer over everything before it. The header names the
// algorithm the state belongs to and a per-algorithm version number, so a
// snapshot restored into the wrong algorithm — or a future incompatible
// layout — fails loudly with a typed error instead of silently producing a
// scrambled run.
//
// Containers are self-delimiting: Restore reads exactly the bytes Snapshot
// wrote (the field sequences are mirror images) plus the 4-byte trailer, so
// containers can be nested (an ensemble snapshot embeds one container per
// copy) or embedded in an outer envelope (a checkpoint file) without length
// prefixes.
//
// Both Writer and Reader use sticky errors: the first failure latches and
// every later call is a no-op, so call sites serialize whole structs without
// per-field error plumbing and check once at Close.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a serialized-state container.
const Magic = "SCSTATE1"

var (
	// ErrCorrupt is returned when a snapshot fails its checksum or is
	// structurally invalid (bad magic, out-of-range field).
	ErrCorrupt = errors.New("snap: corrupt snapshot")
	// ErrTruncated is returned when the underlying reader ends before the
	// container does.
	ErrTruncated = errors.New("snap: truncated snapshot")
	// ErrMismatch is returned when a snapshot's algorithm tag or shape does
	// not match the instance it is being restored into.
	ErrMismatch = errors.New("snap: snapshot does not match receiver")
	// ErrVersion is returned when a snapshot's version is not supported by
	// the running code.
	ErrVersion = errors.New("snap: unsupported snapshot version")
)

// maxLen bounds every length prefix read from a container, so corrupt data
// cannot provoke a pathological allocation before the checksum is verified.
const maxLen = 1 << 30

// sliceChunk caps how many elements a slice reader allocates ahead of the
// data actually decoding. A corrupt length prefix near maxLen then costs at
// most one chunk before the stream runs out and fails typed, instead of a
// multi-gigabyte up-front make.
const sliceChunk = 1 << 16

// Writer serializes one SCSTATE1 container. Create with NewWriter, write the
// payload with the typed field methods, and call Close exactly once to emit
// the checksum trailer.
type Writer struct {
	w   io.Writer // the destination NewWriter was given
	mw  io.Writer // payload writer: destination + CRC
	crc hash.Hash32
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter starts a container for the given algorithm tag and layout
// version, writing the magic and header immediately.
func NewWriter(w io.Writer, algo string, version uint64) *Writer {
	sw := &Writer{w: w, crc: crc32.NewIEEE()}
	sw.mw = io.MultiWriter(w, sw.crc)
	sw.write([]byte(Magic))
	sw.String(algo)
	sw.U64(version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.mw.Write(p)
}

// Raw returns the checksummed payload writer, for embedding a nested
// container (its bytes are covered by this container's CRC).
func (w *Writer) Raw() io.Writer { return w.mw }

// Fail latches err (if the writer has not already failed). Close returns it.
func (w *Writer) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// I64 writes a signed (zigzag) varint.
func (w *Writer) I64(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a single byte 0/1.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// F64 writes a float64 as its IEEE-754 bits, fixed 8 bytes little-endian
// (bit-exact round trip, including NaN payloads).
func (w *Writer) F64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[:8], math.Float64bits(v))
	w.write(w.buf[:8])
}

// U64Fixed writes v as fixed 8 bytes little-endian (used for dense bitset
// words, where varint encoding would bloat high-entropy values).
func (w *Writer) U64Fixed(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.write([]byte(s))
}

// I64s writes a length-prefixed slice of signed varints.
func (w *Writer) I64s(v []int64) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.I64(x)
	}
}

// I32s writes a length-prefixed slice of signed varints.
func (w *Writer) I32s(v []int32) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.I64(int64(x))
	}
}

// Ints writes a length-prefixed slice of signed varints.
func (w *Writer) Ints(v []int) {
	w.U64(uint64(len(v)))
	for _, x := range v {
		w.I64(int64(x))
	}
}

// Bools writes a length-prefixed bit-packed bool slice (8 per byte).
func (w *Writer) Bools(v []bool) {
	w.U64(uint64(len(v)))
	var acc byte
	for i, b := range v {
		if b {
			acc |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			w.write([]byte{acc})
			acc = 0
		}
	}
	if len(v)&7 != 0 {
		w.write([]byte{acc})
	}
}

// Err returns the writer's sticky error.
func (w *Writer) Err() error { return w.err }

// Close emits the CRC-32 trailer and returns the first error encountered.
// The trailer itself is not covered by the checksum (SCTRACE1 discipline).
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], w.crc.Sum32())
	_, w.err = w.w.Write(trailer[:])
	return w.err
}

// Reader deserializes one SCSTATE1 container. Create with NewReader (which
// consumes and validates the header), read the payload with the typed field
// methods — mirror images of the Writer's — and call Close exactly once to
// consume and verify the checksum trailer.
//
// Reader never reads past the container's own trailer, so the underlying
// reader is left positioned exactly after the container.
type Reader struct {
	raw  io.Reader // the source NewReader was given
	tee  io.Reader // payload reader: source teed into the CRC
	crc  hash.Hash32
	err  error
	algo string
	ver  uint64
	one  [1]byte
	buf  [8]byte
}

// NewReader consumes the magic and header. If algo is non-empty, a container
// tagged with a different algorithm fails with ErrMismatch; pass "" to accept
// any tag (inspection tools) and read it back with Algo.
func NewReader(r io.Reader, algo string) (*Reader, error) {
	sr := &Reader{raw: r, crc: crc32.NewIEEE()}
	sr.tee = io.TeeReader(r, sr.crc)
	var gotMagic [len(Magic)]byte
	if _, err := io.ReadFull(sr.tee, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrTruncated, err)
	}
	if string(gotMagic[:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, gotMagic[:])
	}
	sr.algo = sr.StringV()
	sr.ver = sr.U64()
	if sr.err != nil {
		return nil, sr.err
	}
	if algo != "" && sr.algo != algo {
		return nil, fmt.Errorf("%w: snapshot is for algorithm %q, restoring into %q", ErrMismatch, sr.algo, algo)
	}
	return sr, nil
}

// Algo returns the container's algorithm tag.
func (r *Reader) Algo() string { return r.algo }

// Version returns the container's layout version.
func (r *Reader) Version() uint64 { return r.ver }

// Raw returns the checksummed payload reader, for extracting a nested
// container (its bytes are covered by this container's CRC).
func (r *Reader) Raw() io.Reader { return r.tee }

// Fail latches err (if the reader has not already failed).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf latches a formatted error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf(format, args...))
}

// ReadByte implements io.ByteReader over the checksummed payload.
func (r *Reader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(r.tee, r.one[:]); err != nil {
		return 0, err
	}
	return r.one[0], nil
}

func (r *Reader) readErr(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		r.Fail(fmt.Errorf("%w: %v", ErrTruncated, err))
	} else {
		r.Fail(err)
	}
}

// varintErr classifies a binary.ReadVarint/ReadUvarint failure: EOF means
// the container ended early; anything else (e.g. a varint overflowing 64
// bits) is a malformed encoding, not an I/O condition.
func (r *Reader) varintErr(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		r.Fail(fmt.Errorf("%w: %v", ErrTruncated, err))
	} else {
		r.Fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r)
	if err != nil {
		r.varintErr(err)
		return 0
	}
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r)
	if err != nil {
		r.varintErr(err)
		return 0
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// I32 reads an int32, failing if the stored value overflows.
func (r *Reader) I32() int32 {
	v := r.I64()
	if v < -1<<31 || v >= 1<<31 {
		r.Failf("%w: value %d overflows int32", ErrCorrupt, v)
		return 0
	}
	return int32(v)
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	b, err := r.ReadByte()
	if err != nil {
		r.readErr(err)
		return false
	}
	if b > 1 {
		r.Failf("%w: bool byte %#x", ErrCorrupt, b)
		return false
	}
	return b == 1
}

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.tee, r.buf[:8]); err != nil {
		r.readErr(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(r.buf[:8]))
}

// U64Fixed reads a fixed 8-byte little-endian value.
func (r *Reader) U64Fixed() uint64 {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.tee, r.buf[:8]); err != nil {
		r.readErr(err)
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// Len reads a length prefix, failing if it exceeds the allocation bound.
func (r *Reader) Len() int {
	v := r.U64()
	if v > maxLen {
		r.Failf("%w: length %d exceeds bound", ErrCorrupt, v)
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte slice, growing the result as bytes
// actually arrive so a corrupt length cannot allocate far beyond the data.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, 0, min(n, sliceChunk))
	for len(p) < n {
		k := min(n-len(p), sliceChunk)
		start := len(p)
		p = append(p, make([]byte, k)...)
		if _, err := io.ReadFull(r.tee, p[start:]); err != nil {
			r.readErr(err)
			return nil
		}
	}
	return p
}

// StringV reads a length-prefixed string.
func (r *Reader) StringV() string { return string(r.Bytes()) }

// I64s reads a length-prefixed slice of signed varints. Like Bytes it
// grows the slice chunkwise as elements decode, bounding what a corrupt
// length can allocate.
func (r *Reader) I64s() []int64 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int64, 0, min(n, sliceChunk))
	for i := 0; i < n; i++ {
		x := r.I64()
		if r.err != nil {
			return nil
		}
		v = append(v, x)
	}
	return v
}

// I32s reads a length-prefixed slice of signed varints.
func (r *Reader) I32s() []int32 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, 0, min(n, sliceChunk))
	for i := 0; i < n; i++ {
		x := r.I32()
		if r.err != nil {
			return nil
		}
		v = append(v, x)
	}
	return v
}

// Ints reads a length-prefixed slice of signed varints.
func (r *Reader) Ints() []int {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int, 0, min(n, sliceChunk))
	for i := 0; i < n; i++ {
		x := r.Int()
		if r.err != nil {
			return nil
		}
		v = append(v, x)
	}
	return v
}

// I32sInto reads a slice written by I32s into dst, failing unless the
// stored length matches exactly.
func (r *Reader) I32sInto(dst []int32) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("%w: int32 slice length %d, receiver holds %d", ErrMismatch, n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.I32()
		if r.err != nil {
			return
		}
	}
}

// Bools reads a length-prefixed bit-packed bool slice.
func (r *Reader) Bools() []bool {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]bool, 0, min(n, sliceChunk))
	var acc byte
	for i := 0; i < n; i++ {
		if i&7 == 0 {
			b, err := r.ReadByte()
			if err != nil {
				r.readErr(err)
				return nil
			}
			acc = b
		}
		v = append(v, acc&(1<<(uint(i)&7)) != 0)
	}
	return v
}

// BoolsInto reads a bit-packed bool slice into dst, failing unless the
// stored length matches exactly.
func (r *Reader) BoolsInto(dst []bool) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("%w: bool slice length %d, receiver holds %d", ErrMismatch, n, len(dst))
		return
	}
	var acc byte
	for i := range dst {
		if i&7 == 0 {
			b, err := r.ReadByte()
			if err != nil {
				r.readErr(err)
				return
			}
			acc = b
		}
		dst[i] = acc&(1<<(uint(i)&7)) != 0
	}
}

// Err returns the reader's sticky error.
func (r *Reader) Err() error { return r.err }

// Close consumes the 4-byte CRC trailer (read from the raw source — the
// trailer is outside the checksum) and verifies it against the payload.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r.raw, trailer[:]); err != nil {
		r.readErr(fmt.Errorf("trailer: %w", err))
		return r.err
	}
	if got, want := r.crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
		r.err = fmt.Errorf("%w: checksum %#x, trailer says %#x", ErrCorrupt, got, want)
	}
	return r.err
}
