package snap

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// roundTrip encodes one of every primitive and decodes it back.
func TestRoundTripAllPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "test", 7)
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-1)
	w.I64(math.MinInt64)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.U64Fixed(0xdeadbeefcafef00d)
	w.Bytes([]byte("payload"))
	w.Bytes(nil)
	w.String("schedule")
	w.I64s([]int64{-3, 0, 9})
	w.I32s([]int32{1, -2})
	w.Ints([]int{7, 8, 9})
	w.Bools([]bool{true, false, true})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), "test")
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Algo() != "test" || r.Version() != 7 {
		t.Fatalf("header: algo=%q ver=%d", r.Algo(), r.Version())
	}
	if got := r.U64(); got != 0 {
		t.Errorf("U64: %d", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 max: %d", got)
	}
	if got := r.I64(); got != -1 {
		t.Errorf("I64: %d", got)
	}
	if got := r.I64(); got != math.MinInt64 {
		t.Errorf("I64 min: %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int: %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool sequence wrong")
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64: %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -inf: %v", got)
	}
	if got := r.U64Fixed(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64Fixed: %#x", got)
	}
	if got := r.Bytes(); string(got) != "payload" {
		t.Errorf("Bytes: %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("nil Bytes: %q", got)
	}
	if got := r.StringV(); got != "schedule" {
		t.Errorf("StringV: %q", got)
	}
	if got := r.I64s(); len(got) != 3 || got[0] != -3 || got[2] != 9 {
		t.Errorf("I64s: %v", got)
	}
	if got := r.I32s(); len(got) != 2 || got[1] != -2 {
		t.Errorf("I32s: %v", got)
	}
	if got := r.Ints(); len(got) != 3 || got[2] != 9 {
		t.Errorf("Ints: %v", got)
	}
	if got := r.Bools(); len(got) != 3 || !got[0] || got[1] || !got[2] {
		t.Errorf("Bools: %v", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reader Close: %v", err)
	}
}

func encode(t *testing.T, algo string, ver uint64, fill func(*Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, algo, ver)
	fill(w)
	if err := w.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestAlgoTagMismatch(t *testing.T) {
	b := encode(t, "kk", 1, func(w *Writer) { w.Int(5) })
	_, err := NewReader(bytes.NewReader(b), "alg1")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

func TestCorruptPayloadFailsChecksum(t *testing.T) {
	b := encode(t, "kk", 1, func(w *Writer) { w.Ints([]int{1, 2, 3}) })
	// Flip one payload byte (not in the trailer).
	b2 := bytes.Clone(b)
	b2[len(b2)-6] ^= 0x40
	r, err := NewReader(bytes.NewReader(b2), "kk")
	if err != nil {
		// Acceptable: corruption hit the header.
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMismatch) {
			t.Fatalf("header error not typed: %v", err)
		}
		return
	}
	r.Ints()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt from checksum, got %v", err)
	}
}

func TestTruncatedSnapshot(t *testing.T) {
	b := encode(t, "kk", 1, func(w *Writer) { w.Bytes(make([]byte, 64)) })
	for _, cut := range []int{4, len(b) / 2, len(b) - 2} {
		r, err := NewReader(bytes.NewReader(b[:cut]), "kk")
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: header error not typed: %v", cut, err)
			}
			continue
		}
		r.Bytes()
		err = r.Close()
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: want ErrTruncated/ErrCorrupt, got %v", cut, err)
		}
	}
}

func TestReaderIsSelfDelimiting(t *testing.T) {
	// Two snapshots back to back on one reader: the first decode must not
	// consume a single byte of the second — that property is what makes
	// nested snapshots (ensemble members through Raw) work.
	var buf bytes.Buffer
	w1 := NewWriter(&buf, "a", 1)
	w1.Ints([]int{10, 20})
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(&buf, "b", 2)
	w2.String("second")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	src := bytes.NewReader(buf.Bytes())
	r1, err := NewReader(src, "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Ints(); len(got) != 2 || got[1] != 20 {
		t.Fatalf("first: %v", got)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(src, "b")
	if err != nil {
		t.Fatalf("second snapshot unreadable (first over-read): %v", err)
	}
	if got := r2.StringV(); got != "second" {
		t.Fatalf("second: %q", got)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if src.Len() != 0 {
		t.Fatalf("%d trailing bytes unread", src.Len())
	}
}

func TestHugeLengthRejectedWithoutAllocating(t *testing.T) {
	// Hand-craft a snapshot whose Bytes length claims 2^40: the reader must
	// reject it as corrupt instead of attempting the allocation.
	var buf bytes.Buffer
	w := NewWriter(&buf, "x", 1)
	w.U64(1 << 40) // poses as a Bytes length prefix
	_ = w.Close()
	r, err := NewReader(bytes.NewReader(buf.Bytes()), "x")
	if err != nil {
		t.Fatal(err)
	}
	r.Bytes()
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for huge length, got %v", err)
	}
}

func TestStickyErrorShortCircuits(t *testing.T) {
	r, err := NewReader(bytes.NewReader(encode(t, "x", 1, func(w *Writer) { w.Int(1) })), "x")
	if err != nil {
		t.Fatal(err)
	}
	r.Fail(io.ErrClosedPipe)
	if got := r.Int(); got != 0 {
		t.Fatalf("read after Fail returned %d, want zero value", got)
	}
	if got := r.Bools(); got != nil {
		t.Fatalf("slice read after Fail returned %v", got)
	}
	if !errors.Is(r.Close(), io.ErrClosedPipe) {
		t.Fatal("first error not sticky")
	}
}

func TestWriterErrorPropagation(t *testing.T) {
	w := NewWriter(failWriter{}, "x", 1)
	w.Int(3)
	if w.Err() == nil {
		t.Fatal("write to failing sink reported no error")
	}
	if w.Close() == nil {
		t.Fatal("Close swallowed the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrShortWrite }

func TestVersionRoundTrips(t *testing.T) {
	b := encode(t, "kk", 3, func(w *Writer) {})
	r, err := NewReader(bytes.NewReader(b), "kk")
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 3 {
		t.Fatalf("version %d, want 3", r.Version())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestI32sIntoLengthMismatch(t *testing.T) {
	b := encode(t, "x", 1, func(w *Writer) { w.I32s([]int32{1, 2, 3}) })
	r, err := NewReader(bytes.NewReader(b), "x")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 2)
	r.I32sInto(dst)
	if err := r.Err(); !errors.Is(err, ErrMismatch) {
		t.Fatalf("want ErrMismatch for wrong destination length, got %v", err)
	}
}

func TestBoolsIntoLengthMismatch(t *testing.T) {
	b := encode(t, "x", 1, func(w *Writer) { w.Bools([]bool{true}) })
	r, err := NewReader(bytes.NewReader(b), "x")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]bool, 4)
	r.BoolsInto(dst)
	if err := r.Err(); !errors.Is(err, ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}
