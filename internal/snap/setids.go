package snap

import "streamcover/internal/setcover"

// SaveSetIDs writes a length-prefixed slice of set identifiers (NoSet
// included) as signed varints.
func SaveSetIDs(w *Writer, v []setcover.SetID) {
	w.U64(uint64(len(v)))
	for _, s := range v {
		w.I64(int64(s))
	}
}

// LoadSetIDsInto reads a slice written by SaveSetIDs into dst, failing
// unless the stored length matches exactly and every value is either NoSet
// or a valid set index in [0, m).
func LoadSetIDsInto(r *Reader, dst []setcover.SetID, m int) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("%w: set-id slice length %d, receiver holds %d", ErrMismatch, n, len(dst))
		return
	}
	for i := range dst {
		s := r.I32()
		if r.err != nil {
			return
		}
		if s != int32(setcover.NoSet) && (s < 0 || int(s) >= m) {
			r.Failf("%w: set id %d out of range [0,%d)", ErrCorrupt, s, m)
			return
		}
		dst[i] = setcover.SetID(s)
	}
}
