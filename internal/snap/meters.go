package snap

import "streamcover/internal/space"

// SaveTracked serializes both space meters of a tracked algorithm: the
// (cur, peak) checkpoint of the state meter, then of the aux meter.
func SaveTracked(w *Writer, t *space.Tracked) {
	cur, peak := t.StateMeter.Checkpoint()
	w.I64(cur)
	w.I64(peak)
	cur, peak = t.AuxMeter.Checkpoint()
	w.I64(cur)
	w.I64(peak)
}

// LoadTracked restores both space meters, validating the pairs before
// touching the meters (Meter.Restore panics on impossible pairs; corrupt
// input must surface as an error instead).
func LoadTracked(r *Reader, t *space.Tracked) {
	var pairs [2][2]int64
	for i := range pairs {
		pairs[i][0] = r.I64()
		pairs[i][1] = r.I64()
	}
	if r.Err() != nil {
		return
	}
	for _, p := range pairs {
		if p[0] < 0 || p[1] < p[0] {
			r.Failf("%w: meter checkpoint (cur=%d peak=%d)", ErrCorrupt, p[0], p[1])
			return
		}
	}
	t.StateMeter.Restore(pairs[0][0], pairs[0][1])
	t.AuxMeter.Restore(pairs[1][0], pairs[1][1])
}
