package core

import (
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// AutoN removes Algorithm 1's assumption that the stream length N is known,
// exactly as the paper argues it away (§4.1): since m/√n ≤ N ≤ m·n, run a
// logarithmic number of copies in parallel, copy g guessing N_g = 2^g·m/√n,
// and keep the answer of the copy whose guess is closest to the true length.
// The space cost is the claimed bound times the O(log(n^1.5)) copy count.
type AutoN struct {
	copies  []*Algorithm
	guesses []int
	seen    int
}

// NewAutoN builds the parallel guessing runs for an instance with n elements
// and m sets.
func NewAutoN(n, m int, p Params, rng *xrand.Rand) *AutoN {
	lo := float64(m) / math.Sqrt(float64(n))
	if lo < 1 {
		lo = 1
	}
	hi := float64(m) * float64(n)
	a := &AutoN{}
	for g := lo; ; g *= 2 {
		guess := int(g)
		if guess < 1 {
			guess = 1
		}
		a.guesses = append(a.guesses, guess)
		a.copies = append(a.copies, New(n, m, guess, p, rng.Split()))
		if g >= hi {
			break
		}
	}
	return a
}

// Copies returns how many parallel guesses are running.
func (a *AutoN) Copies() int { return len(a.copies) }

// Process implements stream.Algorithm by forwarding to every copy.
func (a *AutoN) Process(e stream.Edge) {
	a.seen++
	for _, c := range a.copies {
		c.Process(e)
	}
}

// Finish implements stream.Algorithm: it selects the copy whose guess is
// closest to the observed stream length (on a log scale, matching the
// doubling grid) and returns its cover.
func (a *AutoN) Finish() *setcover.Cover {
	best := 0
	bestDist := math.Inf(1)
	for i, g := range a.guesses {
		d := math.Abs(math.Log2(float64(g)) - math.Log2(float64(max(1, a.seen))))
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	return a.copies[best].Finish()
}

// Space implements space.Reporter: the total over all parallel copies.
func (a *AutoN) Space() space.Usage {
	var total space.Usage
	for _, c := range a.copies {
		u := c.Space()
		total.State += u.State
		total.Aux += u.Aux
	}
	return total
}

var _ stream.Algorithm = (*AutoN)(nil)
var _ space.Reporter = (*AutoN)(nil)
