package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// TestSnapshotResumeEquivalence for Algorithm 1. The cut points are chosen
// to land inside epoch 0, inside the main epoch/subepoch ladder, and at the
// stream boundary, so every phase of the state machine round-trips.
func TestSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(31), 300, 2000, 8, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(9))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()
	N := len(edges)
	p := DefaultParams(n, m)

	ref := New(n, m, N, p, xrand.New(42))
	refRes := stream.RunEdges(ref, edges)

	for _, cut := range []int{0, N / 20, N / 3, N / 2, 3 * N / 4, N - 1, N} {
		a := New(n, m, N, p, xrand.New(42))
		a.ProcessBatch(edges[:cut])
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatalf("cut=%d: Snapshot: %v", cut, err)
		}
		b := New(n, m, N, p, xrand.New(1234))
		if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("cut=%d: Restore: %v", cut, err)
		}
		b.ProcessBatch(edges[cut:])
		got := b.Finish()
		if !refRes.Cover.Equal(got) {
			t.Fatalf("cut=%d: resumed cover differs from uninterrupted run", cut)
		}
		if gs := b.Space(); gs != refRes.Space {
			t.Fatalf("cut=%d: space %+v, want %+v", cut, gs, refRes.Space)
		}
	}
}

// TestRestorePreservesTrace: the diagnostic trace rides along in snapshots,
// so a resumed run reports the same epoch history as an uninterrupted one.
func TestRestorePreservesTrace(t *testing.T) {
	w := workload.Planted(xrand.New(33), 200, 1200, 8, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()
	N := len(edges)
	p := DefaultParams(n, m)

	ref := New(n, m, N, p, xrand.New(7))
	stream.RunEdges(ref, edges)

	cut := N / 2
	a := New(n, m, N, p, xrand.New(7))
	a.ProcessBatch(edges[:cut])
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(n, m, N, p, xrand.New(8))
	if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	b.ProcessBatch(edges[cut:])
	b.Finish()

	want, err := json.Marshal(ref.Trace())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed trace differs:\n got %s\nwant %s", got, want)
	}
}

// TestRestoreRejectsScheduleMismatch: the resolved schedule string is the
// shape fingerprint; an instance with different parameters must refuse.
func TestRestoreRejectsScheduleMismatch(t *testing.T) {
	n, m, N := 100, 500, 2000
	a := New(n, m, N, DefaultParams(n, m), xrand.New(1))
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(n, m, N/2, DefaultParams(n, m), xrand.New(2))
	if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, snap.ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

var _ stream.Snapshotter = (*Algorithm)(nil)
