package core

import (
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// These tests target the optimistic-marking machinery of line 31 — the
// tracked sample Q̃, the per-element tally T, and the epoch-boundary
// threshold — by driving the internals directly.

// newBareAlg builds an Algorithm around a resolved schedule without the
// constructor's sampling (deterministic internals for white-box tests).
func newBareAlg(t *testing.T, n, m, N int, p Params) *Algorithm {
	t.Helper()
	r := p.resolve(n, m, N)
	a := newState(r, xrand.New(99))
	a.trace.Specials = make([][]int, r.K)
	for i := range a.trace.Specials {
		a.trace.Specials[i] = make([]int, r.E)
	}
	a.trace.AddedPerAlg = make([]int, r.K)
	return a
}

func TestTrackedEdgesTallyPerElement(t *testing.T) {
	a := newBareAlg(t, 100, 1000, 10000, DefaultParams(100, 1000))
	a.startAPhase()
	// Force a known tracked set.
	trackedSet := setcover.SetID(777)
	a.qCur.Add(trackedSet)
	for i := 0; i < 4; i++ {
		a.processAlgEdge(setcover.Element(42), trackedSet)
	}
	if got := a.tcounts.Get(42); got != 4 {
		t.Fatalf("tcounts[42] = %d want 4", got)
	}
	// Untracked sets contribute nothing to T. (778 is outside the sampled
	// Q̃ with overwhelming probability at q_0; assert rather than assume.)
	untracked := setcover.SetID(778)
	if a.qCur.Has(untracked) {
		t.Skip("untracked control set landed in the q_0 sample")
	}
	a.processAlgEdge(43, untracked)
	if a.tcounts.Get(43) > 0 && a.batchOf(untracked) != a.sub {
		t.Fatal("untracked set tallied into T")
	}
}

func TestEndOfEpochMarksHeavyTrackedElements(t *testing.T) {
	a := newBareAlg(t, 100, 1000, 10000, DefaultParams(100, 1000))
	a.startAPhase()
	// Plant tallies straddling the threshold: the threshold here is
	// max(2, ...) so an element with a huge tally must be marked and one
	// with a single tracked edge must not.
	for i := 0; i < 1000; i++ {
		a.tcounts.Inc(7)
	}
	a.tcounts.Inc(8)
	a.StateMeter.Add(2 * 2) // two planted entries, as processAlgEdge would charge
	a.qCurProb = 1          // pretend a full tracking sample for the calibration
	a.endOfEpoch()
	if !a.marked.Test(7) {
		t.Fatal("heavily tracked element not marked")
	}
	if a.marked.Test(8) {
		t.Fatal("barely tracked element marked")
	}
	if a.trace.MarkedTracking != 1 {
		t.Fatalf("MarkedTracking = %d want 1", a.trace.MarkedTracking)
	}
	// T reset and Q̃ rotated.
	if a.tcounts.Len() != 0 {
		t.Fatal("T not reset at epoch boundary")
	}
}

func TestEndOfEpochRotatesTrackingSample(t *testing.T) {
	a := newBareAlg(t, 100, 1000, 10000, DefaultParams(100, 1000))
	a.startAPhase()
	a.qNext.Add(55)
	a.StateMeter.Add(1)
	a.endOfEpoch()
	if !a.qCur.Has(55) {
		t.Fatal("Q̃' did not become Q̃")
	}
	if a.qNext.Len() != 0 {
		t.Fatal("Q̃' not reset")
	}
	if a.qCurProb != a.r.qj(a.ej) {
		t.Fatalf("qCurProb %v, want q_j(%d) = %v", a.qCurProb, a.ej, a.r.qj(a.ej))
	}
}

func TestLemma5ViolationsCounting(t *testing.T) {
	tr := &Trace{SpecialSets: [][][]int32{
		{
			{1, 2, 3}, // epoch 1 specials
			{2, 3, 9}, // epoch 2: 9 is new → one violation
			{},        // epoch 3: nothing
		},
	}}
	bad, total := tr.Lemma5Violations()
	if bad != 1 || total != 3 {
		t.Fatalf("violations %d/%d want 1/3", bad, total)
	}
	empty := &Trace{}
	if b, tot := empty.Lemma5Violations(); b != 0 || tot != 0 {
		t.Fatalf("empty trace %d/%d", b, tot)
	}
}

func TestSnapshotTakenOnceAtAEnd(t *testing.T) {
	n, m := 100, 1000
	w := workload.Planted(xrand.New(11), n, m, 5, 0)
	rng := xrand.New(12)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(n, m, len(edges), DefaultParams(n, m), rng.Split())
	res := stream.RunEdges(alg, edges)
	tr := alg.Trace()
	if tr.MarkedAtAEnd == nil {
		t.Skip("A-phase did not complete at this shape")
	}
	if len(tr.MarkedAtAEnd) != n {
		t.Fatalf("snapshot length %d", len(tr.MarkedAtAEnd))
	}
	if len(tr.SolAtAEnd) == 0 {
		t.Fatal("Sol snapshot empty")
	}
	if len(tr.SolAtAEnd) > res.Cover.Size()+tr.Patched {
		t.Fatalf("Sol snapshot %d larger than final cover %d + patched %d",
			len(tr.SolAtAEnd), res.Cover.Size(), tr.Patched)
	}
}
