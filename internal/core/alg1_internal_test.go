package core

import (
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// These tests reach into the state machine: cursor arithmetic, phase
// transitions, and meter refunds — the parts of Algorithm 1 where an
// off-by-one silently breaks the space bound rather than the output.

func TestCursorWalksFullSchedule(t *testing.T) {
	// Build a schedule small enough to trace by hand: force K=2, E=3 and a
	// stream long enough to complete the A-phase.
	n, m := 100, 1000
	p := DefaultParams(n, m)
	p.K = 2
	p.Epochs = 3
	w := workload.Planted(xrand.New(1), n, m, 5, 0)
	rng := xrand.New(2)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(n, m, len(edges), p, rng.Split())

	r := alg.r
	if r.K != 2 || r.E != 3 {
		t.Fatalf("schedule K=%d E=%d", r.K, r.E)
	}
	planned := r.epoch0P
	for i := 1; i <= r.K; i++ {
		planned += r.E * r.B * r.ell[i]
	}
	if planned > len(edges) {
		t.Fatalf("planned prefix %d exceeds stream %d; test instance too small", planned, len(edges))
	}

	for _, e := range edges {
		alg.Process(e)
	}
	if alg.phase != phaseRemainder {
		t.Fatalf("phase = %d, want remainder after full stream", alg.phase)
	}
	tr := alg.Trace()
	if tr.Epoch0Edges != r.epoch0P {
		t.Errorf("epoch-0 consumed %d edges, schedule says %d", tr.Epoch0Edges, r.epoch0P)
	}
	if want := planned - r.epoch0P; tr.APhaseEdges != want {
		t.Errorf("A-phase consumed %d edges, schedule says %d", tr.APhaseEdges, want)
	}
	if tr.RemainderEdges != len(edges)-planned {
		t.Errorf("remainder %d, want %d", tr.RemainderEdges, len(edges)-planned)
	}
	alg.Finish()
}

func TestAPhaseStateFullyRefunded(t *testing.T) {
	// After entering the remainder phase, the only charged state must be
	// Sol (1 word per set): counters, T, Q̃ and Q̃' are all refunded.
	n, m := 100, 2000
	w := workload.Planted(xrand.New(3), n, m, 5, 0)
	rng := xrand.New(4)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(n, m, len(edges), DefaultParams(n, m), rng.Split())
	for _, e := range edges {
		alg.Process(e)
	}
	if alg.phase != phaseRemainder {
		t.Skip("stream too short to finish the A-phase at this shape")
	}
	cur := alg.StateMeter.Current()
	if cur != int64(alg.solCount) {
		t.Fatalf("post-A-phase state %d words, want |Sol| = %d (leak or double refund)",
			cur, alg.solCount)
	}
	alg.Finish()
}

func TestEpoch0AuxRefunded(t *testing.T) {
	n, m := 100, 2000
	w := workload.Planted(xrand.New(5), n, m, 5, 0)
	rng := xrand.New(6)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(n, m, len(edges), DefaultParams(n, m), rng.Split())
	for _, e := range edges {
		alg.Process(e)
	}
	// 3n for first/cert/marked; the epoch-0 counter array's n must be gone.
	if cur := alg.AuxMeter.Current(); cur != 3*int64(n) {
		t.Fatalf("aux %d words, want 3n = %d", cur, 3*n)
	}
	alg.Finish()
}

func TestBatchAssignmentCoversAllSets(t *testing.T) {
	r := DefaultParams(400, 8000).resolve(400, 8000, 100000)
	alg := &Algorithm{r: r}
	counts := make([]int, r.B)
	for s := 0; s < 8000; s++ {
		b := alg.batchOf(setcover.SetID(s))
		if b < 0 || b >= r.B {
			t.Fatalf("set %d assigned to batch %d outside [0,%d)", s, b, r.B)
		}
		counts[b]++
	}
	// Round-robin assignment: batches within one of each other.
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("batch sizes uneven: min %d max %d", lo, hi)
	}
}

func TestSpecialTriggerFiresOnceAtThreshold(t *testing.T) {
	// Drive a synthetic subepoch directly: a set in the current batch whose
	// edges keep arriving must become special exactly when its counter hits
	// the epoch-1 threshold, and only once.
	n, m := 100, 1000
	p := DefaultParams(n, m)
	p.SpecialBase = 3 // threshold 3 in epoch 1
	p.C = 0           // clamped back to default... keep sampling out of the way via seed
	r := p.resolve(n, m, 10000)
	alg := newState(r, xrand.New(7))
	alg.trace.Specials = [][]int{make([]int, r.E)}
	alg.trace.AddedPerAlg = make([]int, 1)
	alg.startAPhase()

	set := setcover.SetID(alg.sub) // a set in the current batch (id ≡ sub mod B)
	for i := 0; i < 5; i++ {
		alg.processAlgEdge(setcover.Element(i), set)
	}
	if got := alg.trace.Specials[0][0]; got != 1 {
		t.Fatalf("special trigger count %d, want exactly 1", got)
	}
	if got := alg.counters.Get(set / setcover.SetID(alg.r.B)); got != 5 {
		t.Fatalf("counter %d want 5", got)
	}

	// A set outside the current batch must accumulate nothing.
	other := setcover.SetID(alg.sub + 1)
	before := alg.counters.Len()
	alg.processAlgEdge(50, other)
	if alg.counters.Len() != before {
		t.Fatal("off-batch set accumulated a counter")
	}
}

func TestMarkedElementsStopCounting(t *testing.T) {
	n, m := 100, 1000
	r := DefaultParams(n, m).resolve(n, m, 10000)
	alg := newState(r, xrand.New(8))
	alg.trace.Specials = [][]int{make([]int, r.E)}
	alg.trace.AddedPerAlg = make([]int, 1)
	alg.startAPhase()

	set := setcover.SetID(alg.sub)
	alg.marked.Set(3)
	alg.Process(stream.Edge{Set: set, Elem: 3})
	if alg.counters.Len() != 0 {
		t.Fatal("edge to marked element incremented a counter (listing line 22)")
	}
}

func TestResolvedStringMentionsSchedule(t *testing.T) {
	r := DefaultParams(100, 1000).resolve(100, 1000, 5000)
	s := r.String()
	for _, frag := range []string{"n=100", "m=1000", "K=", "E="} {
		if !contains(s, frag) {
			t.Fatalf("schedule string %q missing %q", s, frag)
		}
	}
	w := workload.Planted(xrand.New(9), 100, 1000, 5, 0)
	rng := xrand.New(10)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(100, 1000, len(edges), DefaultParams(100, 1000), rng.Split())
	if alg.Resolved() == "" {
		t.Fatal("Resolved empty")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
