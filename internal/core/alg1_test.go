package core

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func runOn(t testing.TB, w workload.Workload, p Params, order stream.Order, seed uint64) (stream.Result, *Algorithm) {
	t.Helper()
	rng := xrand.New(seed)
	edges := stream.Arrange(w.Inst, order, rng.Split())
	alg := New(w.Inst.UniverseSize(), w.Inst.NumSets(), len(edges), p, rng.Split())
	res := stream.RunEdges(alg, edges)
	return res, alg
}

func TestCoverValidOnAllWorkloadsAndOrders(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		p := DefaultParams(w.Inst.UniverseSize(), w.Inst.NumSets())
		for _, o := range stream.Orders() {
			res, _ := runOn(t, w, p, o, 77)
			if err := res.Cover.Verify(w.Inst); err != nil {
				t.Errorf("%s/%v: %v", w.Name, o, err)
			}
		}
	}
}

func TestCoverValidWithFaithfulParams(t *testing.T) {
	w := workload.Planted(xrand.New(2), 400, 8000, 10, 0)
	p := FaithfulParams(400, 8000)
	res, _ := runOn(t, w, p, stream.Random, 3)
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatal(err)
	}
}

func TestApproximationWithinSqrtNBoundRandomOrder(t *testing.T) {
	w := workload.Planted(xrand.New(3), 400, 8000, 10, 0)
	p := DefaultParams(400, 8000)
	bound := 6 * math.Sqrt(400) * math.Log2(8000) * float64(w.PlantedOPT)
	for seed := uint64(0); seed < 3; seed++ {
		res, _ := runOn(t, w, p, stream.Random, seed)
		if float64(res.Cover.Size()) > bound {
			t.Errorf("seed %d: cover %d exceeds Õ(√n)·OPT bound %.0f", seed, res.Cover.Size(), bound)
		}
	}
}

func TestStateSpaceSublinearInM(t *testing.T) {
	// The defining property of Theorem 3: peak working state scales as m/√n,
	// far below the KK-algorithm's m. Verify (a) absolute sublinearity and
	// (b) the growth rate when m quadruples is ~4x (still ∝ m) while the
	// ratio to m stays ≈ constant and ≪ 1.
	n := 400
	for _, m := range []int{8000, 32000} {
		w := workload.Planted(xrand.New(4), n, m, 10, 0)
		p := DefaultParams(n, m)
		res, _ := runOn(t, w, p, stream.Random, 5)
		// Generous polylog allowance over m/√n = m/20.
		budget := int64(float64(m) / math.Sqrt(float64(n)) * 8 * math.Log2(float64(m)))
		if res.Space.State > budget {
			t.Errorf("m=%d: state %d exceeds Õ(m/√n) budget %d", m, res.Space.State, budget)
		}
		if res.Space.State > int64(m)/2 {
			t.Errorf("m=%d: state %d not sublinear in m", m, res.Space.State)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := workload.Planted(xrand.New(5), 400, 8000, 10, 0)
	p := DefaultParams(400, 8000)
	a, _ := runOn(t, w, p, stream.Random, 9)
	b, _ := runOn(t, w, p, stream.Random, 9)
	if a.Cover.Size() != b.Cover.Size() {
		t.Fatalf("nondeterministic: %d vs %d", a.Cover.Size(), b.Cover.Size())
	}
}

func TestTraceAccounting(t *testing.T) {
	w := workload.Planted(xrand.New(6), 400, 8000, 10, 0)
	p := DefaultParams(400, 8000)
	res, alg := runOn(t, w, p, stream.Random, 11)
	tr := alg.Trace()

	if got := tr.Epoch0Edges + tr.APhaseEdges + tr.RemainderEdges; got != res.Edges {
		t.Errorf("phase edge counts sum to %d, stream has %d", got, res.Edges)
	}
	added := tr.AddedEpoch0
	for _, c := range tr.AddedPerAlg {
		added += c
	}
	if added != alg.SampledSets() {
		t.Errorf("trace additions %d != |Sol| %d", added, alg.SampledSets())
	}
	if len(tr.SolAdditions) != added-tr.AddedEpoch0 {
		t.Errorf("SolAdditions len %d, want %d", len(tr.SolAdditions), added-tr.AddedEpoch0)
	}
	for _, sa := range tr.SolAdditions {
		if sa.Pos < 0 || sa.Pos >= res.Edges || sa.Alg < 1 || sa.Alg > len(tr.AddedPerAlg) {
			t.Errorf("implausible SolAddition %+v", sa)
		}
	}
}

func TestHeavyElementsMarkedInEpoch0(t *testing.T) {
	// 5 elements of degree ≈ 0.9·m ≫ 1.1·m/√n: epoch 0's detector must mark
	// them. C is made tiny so the p_0 Sol sample does not cover them first
	// (in a normal run either mechanism suffices — the point of line 6/7);
	// Epoch0Frac keeps the detection window at a tenth of the stream.
	w := workload.HeavyElements(xrand.New(7), 100, 3200, 5, 3)
	p := DefaultParams(100, 3200)
	p.C = 0.01
	p.Epoch0Frac = 0.1
	_, alg := runOn(t, w, p, stream.Random, 13)
	if alg.Trace().MarkedEpoch0 < 3 {
		t.Errorf("epoch 0 marked %d heavy elements, want ≥ 3 of 5", alg.Trace().MarkedEpoch0)
	}
	if alg.Trace().MarkedEpoch0 > 20 {
		t.Errorf("epoch 0 marked %d elements; light elements leaking through", alg.Trace().MarkedEpoch0)
	}
}

func TestSpecialsDecayAcrossEpochs(t *testing.T) {
	// Lemma 8's shape: the per-epoch special-set counts should trend down
	// (the 2^j threshold growth plus marking starves later epochs).
	w := workload.Planted(xrand.New(8), 900, 27000, 10, 0)
	p := DefaultParams(900, 27000)
	_, alg := runOn(t, w, p, stream.Random, 17)
	tot := alg.Trace().SpecialsTotal()
	if len(tot) < 2 {
		t.Skip("not enough epochs to observe decay")
	}
	first, last := tot[0], tot[len(tot)-1]
	if first > 0 && last > first {
		t.Errorf("specials grew across epochs: %v", tot)
	}
}

func TestDegenerateFallbackStillValid(t *testing.T) {
	// Tiny n with large C forces |Sol| ≥ n and the trivial-cover fallback.
	w := workload.Planted(xrand.New(9), 30, 2000, 3, 0)
	p := DefaultParams(30, 2000)
	p.C = 50
	res, alg := runOn(t, w, p, stream.Random, 19)
	if !alg.Trace().Degenerate {
		t.Skip("fallback did not trigger at this seed")
	}
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatalf("degenerate cover invalid: %v", err)
	}
	if res.Cover.Size() > 30 {
		t.Fatalf("trivial fallback produced %d sets > n", res.Cover.Size())
	}
}

func TestFinishTwicePanics(t *testing.T) {
	w := workload.Planted(xrand.New(10), 100, 500, 5, 0)
	_, alg := runOn(t, w, DefaultParams(100, 500), stream.Random, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish did not panic")
		}
	}()
	alg.Finish()
}

func TestShortStreamStillWorks(t *testing.T) {
	// Declare N far larger than the actual stream: phases never complete,
	// Finish must still patch a valid cover.
	w := workload.Planted(xrand.New(11), 100, 500, 5, 0)
	rng := xrand.New(21)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(100, 500, len(edges)*100, DefaultParams(100, 500), rng.Split())
	res := stream.RunEdges(alg, edges)
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatal(err)
	}
}

func TestLongStreamStillWorks(t *testing.T) {
	// Declare N far smaller than actual: the cursor runs off the schedule
	// into the remainder phase and keeps collecting witnesses.
	w := workload.Planted(xrand.New(12), 100, 500, 5, 0)
	rng := xrand.New(22)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	alg := New(100, 500, len(edges)/10+1, DefaultParams(100, 500), rng.Split())
	res := stream.RunEdges(alg, edges)
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatal(err)
	}
}

func TestResolveSchedule(t *testing.T) {
	p := DefaultParams(400, 8000)
	r := p.resolve(400, 8000, 100000)
	if r.B != 20 {
		t.Errorf("B=%d want 20", r.B)
	}
	if r.K < 1 || r.E < 1 {
		t.Errorf("K=%d E=%d", r.K, r.E)
	}
	// ℓ_i doubles.
	for i := 2; i <= r.K; i++ {
		lo, hi := r.ell[i-1], r.ell[i]
		if hi < lo || hi > 2*lo+2 {
			t.Errorf("ell not ~doubling: %v", r.ell[1:])
		}
	}
	// Total A-phase within budget (+1 edge/subepoch rounding slack).
	total := r.epoch0P
	for i := 1; i <= r.K; i++ {
		total += r.E * r.B * r.ell[i]
	}
	if float64(total) > 0.7*100000+float64(r.E*r.B*r.K) {
		t.Errorf("planned prefix %d exceeds budget", total)
	}
	if s := r.String(); s == "" {
		t.Error("empty schedule string")
	}
}

func TestResolveClampsBadParams(t *testing.T) {
	p := Params{C: -1, BudgetFrac: 7, SpecialBase: -2, TrackBoost: -3}
	r := p.resolve(100, 1000, 5000)
	if r.C <= 0 || r.BudgetFrac <= 0 || r.BudgetFrac >= 1 || r.SpecialBase <= 0 || r.TrackBoost <= 0 {
		t.Errorf("clamping failed: %+v", r.Params)
	}
}

func TestResolvePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Params{}.resolve(0, 10, 10)
}

func TestProbabilitySchedules(t *testing.T) {
	r := DefaultParams(400, 8000).resolve(400, 8000, 100000)
	for j := 1; j < 8; j++ {
		if r.pj(j) < r.pj(j-1) {
			t.Errorf("p_j not monotone at %d", j)
		}
		if r.qj(j) < r.qj(j-1) {
			t.Errorf("q_j not monotone at %d", j)
		}
		if r.pj(j) > 1 || r.qj(j) > 1 {
			t.Errorf("probability above 1 at %d", j)
		}
	}
	if r.specialThreshold(1) < 1 {
		t.Error("threshold below 1")
	}
	if r.specialThreshold(3) < r.specialThreshold(1) {
		t.Error("threshold not monotone in epoch")
	}
}

func TestFaithfulParamsSchedule(t *testing.T) {
	p := FaithfulParams(1<<20, 1<<30) // astronomically large shape
	r := p.resolve(1<<20, 1<<30, 1<<40)
	// K = ½·20 − 3·log2(30) − 2 ≈ 10 − 14.7 − 2 < 0 → clamped to 1? No:
	// for n=2^20, m=2^30: ½log n = 10, 3 log log m ≈ 14.7 ⇒ clamp to 1.
	if r.K < 1 {
		t.Errorf("K=%d", r.K)
	}
	if r.SpecialBase < 1000 {
		t.Errorf("faithful SpecialBase %v suspiciously small", r.SpecialBase)
	}
}

func TestSingleElementInstance(t *testing.T) {
	inst := setcover.MustNewInstance(1, [][]setcover.Element{{0}})
	alg := New(1, 1, 1, DefaultParams(1, 1), xrand.New(1))
	res := stream.RunEdges(alg, stream.EdgesOf(inst))
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
}

func TestAutoNMatchesKnownN(t *testing.T) {
	w := workload.Planted(xrand.New(13), 400, 8000, 10, 0)
	rng := xrand.New(23)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	auto := NewAutoN(400, 8000, DefaultParams(400, 8000), rng.Split())
	if auto.Copies() < 2 {
		t.Fatalf("only %d guessing copies", auto.Copies())
	}
	res := stream.RunEdges(auto, edges)
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatal(err)
	}
	// Cover quality should be in the same regime as the known-N run.
	known, _ := runOn(t, w, DefaultParams(400, 8000), stream.Random, 23)
	if res.Cover.Size() > 5*known.Cover.Size()+50 {
		t.Errorf("AutoN cover %d far worse than known-N %d", res.Cover.Size(), known.Cover.Size())
	}
	if res.Space.State == 0 {
		t.Error("AutoN reported zero space")
	}
}

func BenchmarkAlg1Process(b *testing.B) {
	w := workload.Planted(xrand.New(1), 900, 9000, 15, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	p := DefaultParams(900, 9000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := New(900, 9000, len(edges), p, xrand.New(uint64(i)))
		stream.RunEdges(alg, edges)
	}
}
