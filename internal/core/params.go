package core

import (
	"fmt"
	"math"
)

// Params are the tunable constants of Algorithm 1. The paper's analysis
// fixes them asymptotically (e.g. special-set thresholds of j·log⁶m, epoch
// lengths ℓ_i = 2^i·N/(n·log m), K = ½log n − 3·log log m − 2); those values
// are only meaningful at astronomically large m, so DefaultParams provides a
// calibration that preserves the *structure and scaling laws* — the 2^j
// geometric inclusion/tracking schedules, the √n-batch rotation, the
// epoch/subepoch hierarchy — at laptop scale, while FaithfulParams
// reproduces the paper's constants verbatim (see DESIGN.md §3.3 for the
// documented substitution).
type Params struct {
	// C multiplies every inclusion probability: p_0 = C·√n·log₂(m)/m and
	// p_j = 2^j·p_0 (Algorithm 1 lines 6 and 29).
	C float64

	// K is the number of successively longer algorithms A(1..K)
	// (line 9). Zero selects an automatic value.
	K int

	// Epochs is the number of epochs per A(i) (line 12). Zero selects the
	// paper's log₂m − ½log₂n, capped for practicality.
	Epochs int

	// BudgetFrac is the fraction of the stream consumed by epoch 0 plus all
	// A(i); the remainder collects covering witnesses (lines 33–36). The
	// faithful schedule implies ≈ 1/log³m; the practical default is 0.6.
	BudgetFrac float64

	// Epoch0Frac, when positive, fixes the epoch-0 degree-detection prefix
	// (line 7) to this fraction of the stream instead of the C-derived
	// Θ(√n·N·log m/m) length. Useful for isolating the detection mechanism
	// from the sampling constant in tests and ablations.
	Epoch0Frac float64

	// SpecialBase is τ in the special-set counter threshold max(1, ⌈j·τ⌉)
	// for epoch j (line 28, where the paper uses τ = log⁶m).
	SpecialBase float64

	// TrackBoost multiplies the tracking sample rates q_j = 2^j/n (lines 10
	// and 30) and, implicitly, the marking threshold derived from them
	// (line 31). The paper's q_j only produce a statistically visible signal
	// when m = Ω̃(n²·polylog); the default boost of √n restores the signal at
	// moderate m without changing the 2^j schedule.
	TrackBoost float64

	// Faithful selects the paper's exact schedule for K, Epochs, epoch
	// lengths and the epoch-0 prefix, ignoring BudgetFrac.
	Faithful bool

	// TraceSpecialSets records the identity (not just the count) of every
	// special set per epoch in the Trace, enabling the Lemma 5 monotonicity
	// analysis at the cost of O(#specials) extra trace memory. Diagnostics
	// only — the recorded ids are not charged to the space meter.
	TraceSpecialSets bool

	// Component knockouts, for the E-ABL-KNOCK ablation: each removes one
	// mechanism the analysis depends on so its contribution can be
	// measured. Never set in production use.
	//
	// DisableEpoch0Sampling removes line 6's up-front p_0 sample of Sol.
	// DisableEpoch0Detection removes line 7's high-degree marking.
	// DisableTracking removes Q̃/T and line 31's optimistic marking.
	DisableEpoch0Sampling  bool
	DisableEpoch0Detection bool
	DisableTracking        bool
}

// DefaultParams returns the practical calibration for an instance with n
// elements and m sets.
//
// C = 0.5 keeps the epoch-0 sample |Sol| ≈ C·√n·log₂m comfortably below n
// at laptop scale (the |Sol| ≥ n fallback fires otherwise — the paper's
// Õ(√n) sample is only ≪ n asymptotically); elements it occasionally fails
// to cover are patched, which the Õ(√n) guarantee absorbs.
func DefaultParams(n, m int) Params {
	return Params{
		C:           0.5,
		BudgetFrac:  0.6,
		SpecialBase: 1,
		TrackBoost:  math.Sqrt(float64(n)),
	}
}

// FaithfulParams returns the paper's constants: K = ½log₂n − 3·log₂log₂m − 2
// (clamped to ≥ 1), log₂m − ½log₂n epochs, subepoch lengths
// ℓ_i = 2^i·N/(n·log₂m), and special thresholds j·log₂⁶m. At laptop scale
// these thresholds are never reached (log₂⁶m ≈ 3·10⁷ for m = 10⁵), so the
// run degrades to epoch-0 sampling plus patching — exactly what the paper's
// constants prescribe at such sizes. Experiments use DefaultParams.
func FaithfulParams(n, m int) Params {
	logm := math.Log2(float64(m))
	return Params{
		C:           4,
		SpecialBase: math.Pow(logm, 6),
		TrackBoost:  1,
		Faithful:    true,
	}
}

// resolved holds the concrete schedule derived from Params and the instance
// shape (n, m, N).
type resolved struct {
	Params
	n, m, N int
	B       int   // number of batches = round(√n), also subepochs per epoch
	K       int   // algorithms A(1..K)
	E       int   // epochs per algorithm
	ell     []int // ell[i] = subepoch length of A(i), 1-based (ell[0] unused)
	p0      float64
	epoch0P int // epoch-0 detection prefix length (line 7)
}

// resolve computes the schedule. It panics on invalid shapes; Params fields
// outside their domains are clamped.
func (p Params) resolve(n, m, N int) resolved {
	if n <= 0 || m <= 0 || N < 0 {
		panic(fmt.Sprintf("core: invalid shape n=%d m=%d N=%d", n, m, N))
	}
	r := resolved{Params: p, n: n, m: m, N: N}
	r.B = int(math.Max(1, math.Round(math.Sqrt(float64(n)))))
	logn := math.Log2(float64(n) + 1)
	logm := math.Log2(float64(m) + 1)

	if p.C <= 0 {
		r.C = 2
	}
	if p.SpecialBase <= 0 {
		r.SpecialBase = 1
	}
	if p.TrackBoost <= 0 {
		r.TrackBoost = 1
	}
	if p.BudgetFrac <= 0 || p.BudgetFrac >= 1 {
		r.BudgetFrac = 0.6
	}

	// K: line 9's ½log n − 3·log log m − 2 faithfully; practically the
	// deepest level such that 2^K stays a constant fraction of √n.
	switch {
	case p.K > 0:
		r.K = p.K
	case p.Faithful:
		r.K = int(0.5*logn - 3*math.Log2(logm) - 2)
	default:
		r.K = int(math.Log2(math.Sqrt(float64(n))))
		if r.K > 6 {
			r.K = 6
		}
	}
	if r.K < 1 {
		r.K = 1
	}

	// Epochs: line 12's log m − ½ log n, capped in practical mode so each
	// subepoch keeps a usable share of the budget.
	switch {
	case p.Epochs > 0:
		r.E = p.Epochs
	default:
		r.E = int(math.Ceil(logm - 0.5*logn))
		if !p.Faithful && r.E > 10 {
			r.E = 10
		}
	}
	if r.E < 1 {
		r.E = 1
	}

	// p_0 = C·√n·log₂(m)/m (line 6).
	r.p0 = math.Min(1, r.C*math.Sqrt(float64(n))*logm/float64(m))

	// Epoch-0 prefix: Θ(√n·N·log m / m) edges (line 7), clamped to [B, N/8]
	// in practical mode so small streams still get a detection window.
	if p.Epoch0Frac > 0 {
		r.epoch0P = int(math.Min(1, p.Epoch0Frac) * float64(N))
	} else {
		p0len := r.C * math.Sqrt(float64(n)) * float64(N) * logm / float64(m)
		r.epoch0P = int(p0len)
		if !p.Faithful {
			if r.epoch0P < r.B {
				r.epoch0P = r.B
			}
			if r.epoch0P > N/8 {
				r.epoch0P = N / 8
			}
		}
	}
	if r.epoch0P > N {
		r.epoch0P = N
	}
	if r.epoch0P < 0 {
		r.epoch0P = 0
	}

	// Subepoch lengths ℓ_i, doubling in i (line 18). Faithful:
	// ℓ_i = 2^i·N/(n·log m). Practical: stretch the same 2^i schedule so the
	// whole A-phase consumes BudgetFrac of the stream after epoch 0.
	r.ell = make([]int, r.K+1)
	if p.Faithful {
		for i := 1; i <= r.K; i++ {
			r.ell[i] = int(math.Ldexp(float64(N)/(float64(n)*logm), i))
			if r.ell[i] < 1 {
				r.ell[i] = 1
			}
		}
	} else {
		budget := r.BudgetFrac*float64(N) - float64(r.epoch0P)
		if budget < 0 {
			budget = 0
		}
		// Σ_{i=1..K} E·B·ℓ_i with ℓ_i ∝ 2^i ⇒ unit U = budget/(E·B·(2^{K+1}−2)).
		unit := budget / (float64(r.E) * float64(r.B) * (math.Ldexp(1, r.K+1) - 2))
		for i := 1; i <= r.K; i++ {
			r.ell[i] = int(math.Ldexp(unit, i))
			if r.ell[i] < 1 {
				r.ell[i] = 1
			}
		}
	}
	return r
}

// pj returns the epoch-j inclusion probability p_j = min(1, 2^j·p_0)
// (line 29).
func (r *resolved) pj(j int) float64 {
	return math.Min(1, math.Ldexp(r.p0, j))
}

// qj returns the epoch-j tracking sample probability
// q_j = min(1, TrackBoost·2^j/n) (lines 10 and 30; boost = 1 is the paper's
// schedule).
func (r *resolved) qj(j int) float64 {
	return math.Min(1, r.TrackBoost*math.Ldexp(1/float64(r.n), j))
}

// specialThreshold returns the epoch-j special-set counter threshold
// max(1, ⌈j·SpecialBase⌉) (line 28; SpecialBase = log⁶m is the paper's
// value).
func (r *resolved) specialThreshold(j int) int32 {
	t := int32(math.Ceil(float64(j) * r.SpecialBase))
	if t < 1 {
		t = 1
	}
	return t
}

// String summarises the schedule for reports and debugging.
func (r resolved) String() string {
	return fmt.Sprintf("core: n=%d m=%d N=%d B=%d K=%d E=%d epoch0=%d ell=%v p0=%.3g",
		r.n, r.m, r.N, r.B, r.K, r.E, r.epoch0P, r.ell[1:], r.p0)
}
