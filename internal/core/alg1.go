// Package core implements Algorithm 1 of the paper — the main result
// (Theorem 3): a randomized one-pass Õ(√n)-approximation streaming algorithm
// for edge-arrival Set Cover in *random order* streams using only Õ(m/√n)
// space, breaking the Ω̃(m) adversarial-order barrier of Theorem 2.
//
// Structure (paper §4.1, Algorithm 1):
//
//   - The set family is partitioned into √n batches of m/√n sets; at any
//     moment the algorithm maintains counters only for the current batch,
//     which is what brings the space from Õ(m) down to Õ(m/√n).
//   - Epoch 0 samples every set into Sol with probability p_0 and detects
//     elements of degree ≥ 1.1·m/√n from a short stream prefix, marking them
//     as (optimistically) covered.
//   - Algorithms A(1)..A(K) run in sequence; A(i) devotes subepochs of
//     length ℓ_i ∝ 2^i to each batch in rotation, so a set that could cover
//     ≈ n/2^i yet-uncovered elements accumulates a counter signal in its
//     subepoch. Crossing the epoch-j threshold makes the set "special":
//     it joins Sol with probability p_j = 2^j·p_0 and a tracking sample Q̃'
//     with probability q_j = 2^j/n.
//   - Edges from tracked sets to unmarked elements are tallied in T; at each
//     epoch boundary, elements with a heavy tracked signal — those incident
//     to ≥ 1.1·m/(2^j√n) special sets, which the p_j-sampling covers with
//     high probability — are optimistically marked (line 31), which is what
//     keeps the number of special sets halving per epoch (Lemma 8).
//   - The rest of the stream only collects covering witnesses for Sol, and
//     a final patching phase covers anything left with its first-seen set.
//
// The paper's polylog constants are vacuous below astronomical scale; see
// Params for the documented calibration.
//
// Hot-path representation: the paper specifies the working state as
// dictionaries (C, Q̃, Q̃', T, Sol) and the space accounting charges one or
// two words per live entry. The implementation backs those dictionaries with
// dense generation-stamped tables (internal/dense) indexed by set/element
// id: membership tests are array loads, and the epoch/subepoch boundary
// "re-initialise" steps are O(1) generation bumps instead of map
// allocations. The physical arrays live in a pooled scratch (see scratch.go)
// so repeated runs reuse them; space.Tracked still meters the *logical*
// per-entry words of the paper's bounds, entry for entry identical to the
// original map-backed implementation.
package core

import (
	"streamcover/internal/dense"
	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

type phase int

const (
	phaseEpoch0 phase = iota
	phaseAlgs
	phaseRemainder
)

// Algorithm is one run of Algorithm 1. Create with New, feed edges with
// Process (in random order for the guarantees to hold), call Finish once.
type Algorithm struct {
	space.Tracked

	r   resolved
	rng *xrand.Rand

	sink *obs.Sink // decision-event sink; nil (inert) unless a hub is installed

	pos   int
	phase phase

	sc *scratch // pooled dense state; released on Finish

	first        []setcover.SetID // R(u): first set seen containing u (line 4)
	firstFree    int              // elements with no first-set record yet
	cert         []setcover.SetID // covering witness
	coveredCount int              // running count of witnessed elements
	marked       dense.Bits       // marked-as-covered (line 3); may lack a witness
	sol          dense.Bits       // Sol membership over set ids
	solCount     int              // |Sol|

	e0counts []int32 // element occurrence counts in the epoch-0 prefix

	// A-phase cursor: current algorithm ai ∈ [1,K], epoch ej ∈ [1,E],
	// subepoch sub ∈ [0,B), position within the subepoch.
	ai, ej, sub, subPos int

	counters dense.Counts     // C[S] for the current batch, indexed by S/B (line 17)
	qCur     dense.StampedSet // Q̃: tracked sets this epoch
	qNext    dense.StampedSet // Q̃': sampled specials for next epoch
	qCurProb float64          // the (clamped) probability qCur was sampled with
	tcounts  dense.Counts     // T: tracked-edge counts per element

	trace    Trace
	finished bool
}

// New returns an Algorithm 1 run for an instance with n elements, m sets and
// stream length N (the number of edges; line "Require"). The paper shows N
// need not be known exactly — see AutoN for the guessing wrapper.
func New(n, m, N int, p Params, rng *xrand.Rand) *Algorithm {
	r := p.resolve(n, m, N)
	a := newState(r, rng)
	a.AuxMeter.Add(3 * int64(n))

	a.trace.Specials = make([][]int, r.K)
	for i := range a.trace.Specials {
		a.trace.Specials[i] = make([]int, r.E)
	}
	a.trace.AddedPerAlg = make([]int, r.K)
	if r.TraceSpecialSets {
		a.trace.SpecialSets = make([][][]int32, r.K)
		for i := range a.trace.SpecialSets {
			a.trace.SpecialSets[i] = make([][]int32, r.E)
		}
	}

	// Epoch 0, line 6: sample every set into Sol with probability p_0.
	if !r.DisableEpoch0Sampling {
		k := rng.Binomial(m, r.p0)
		for _, s := range rng.SampleK(m, k) {
			a.addToSol(setcover.SetID(s))
		}
	}
	a.trace.AddedEpoch0 = a.solCount

	if r.epoch0P > 0 && !r.DisableEpoch0Detection {
		a.AuxMeter.Add(int64(n))
		a.phase = phaseEpoch0
	} else {
		a.startAPhase()
	}
	return a
}

// newState assembles the dense working state for a resolved schedule,
// drawing the backing arrays from the scratch pool. It performs no sampling
// and sets up no trace, so internal tests can drive the state machine
// directly.
func newState(r resolved, rng *xrand.Rand) *Algorithm {
	sc := getScratch(r.n, r.m, countersCap(r.m, r.B))
	a := &Algorithm{
		r:        r,
		rng:      rng,
		sink:     obs.SinkFor(obs.AlgoAlg1),
		sc:       sc,
		first:    sc.first,
		cert:     make([]setcover.SetID, r.n),
		marked:   sc.marked,
		sol:      sc.sol,
		e0counts: sc.e0counts,
		counters: sc.counters,
		qCur:     sc.qCur,
		qNext:    sc.qNext,
		tcounts:  sc.tcounts,
	}
	for u := 0; u < r.n; u++ {
		a.first[u] = setcover.NoSet
		a.cert[u] = setcover.NoSet
	}
	a.firstFree = r.n
	return a
}

// countersCap is the size of the batch-local counter table: sets are
// assigned to batches by id mod B, so batch b holds ids {b, b+B, b+2B, ...}
// and the in-batch index s/B never exceeds ⌈m/B⌉.
func countersCap(m, b int) int { return (m + b - 1) / b }

// release returns the dense state to the scratch pool. The evolved
// generation counters are copied back so a future reuse can invalidate the
// stamps in O(1).
func (a *Algorithm) release() {
	sc := a.sc
	if sc == nil {
		return
	}
	a.sc = nil
	sc.first = a.first
	sc.marked = a.marked
	sc.sol = a.sol
	sc.e0counts = a.e0counts
	sc.counters = a.counters
	sc.qCur = a.qCur
	sc.qNext = a.qNext
	sc.tcounts = a.tcounts
	putScratch(sc)
}

// Resolved returns the concrete schedule in use, for reports.
func (a *Algorithm) Resolved() string { return a.r.String() }

func (a *Algorithm) addToSol(s setcover.SetID) {
	if a.sol.Test(s) {
		return
	}
	a.sol.Set(s)
	a.solCount++
	a.StateMeter.Add(space.SetEntryWords)
	a.sink.Emit(obs.KindSetSelected, int64(a.pos), int64(s), int64(a.solCount), int64(a.ej))
	if a.solCount >= a.r.n {
		a.trace.Degenerate = true
	}
}

func (a *Algorithm) batchOf(s setcover.SetID) int { return int(s) % a.r.B }

// startAPhase begins A(1): fresh counters and the initial tracking sample
// Q̃ of all sets with probability q_0 (line 10).
func (a *Algorithm) startAPhase() {
	a.sink.Emit(obs.KindPhase, int64(a.pos), int64(phaseAlgs), int64(a.phase), 0)
	a.phase = phaseAlgs
	a.ai, a.ej, a.sub, a.subPos = 1, 1, 0, 0
	a.counters.Clear()
	a.tcounts.Clear()
	a.qNext.Clear()
	a.sampleInitialQ()
}

func (a *Algorithm) sampleInitialQ() {
	a.StateMeter.Sub(int64(a.qCur.Len()) * space.SetEntryWords)
	a.qCur.Clear()
	a.qCurProb = a.r.qj(0)
	if a.r.DisableTracking {
		return
	}
	k := a.rng.Binomial(a.r.m, a.qCurProb)
	for _, s := range a.rng.SampleK(a.r.m, k) {
		a.qCur.Add(setcover.SetID(s))
	}
	a.StateMeter.Add(int64(a.qCur.Len()) * space.SetEntryWords)
}

// Process implements stream.Algorithm.
func (a *Algorithm) Process(e stream.Edge) { a.process(e) }

// ProcessBatch implements stream.BatchProcessor: it consumes a contiguous
// run of edges with one dynamic dispatch, delegating the remainder phase —
// the long witness-collection suffix — to a dedicated tight loop.
func (a *Algorithm) ProcessBatch(edges []stream.Edge) {
	i := 0
	for i < len(edges) {
		if a.phase == phaseRemainder {
			a.processRemainder(edges[i:])
			return
		}
		p := a.phase
		for i < len(edges) && a.phase == p {
			a.process(edges[i])
			i++
		}
	}
}

func (a *Algorithm) process(e stream.Edge) {
	a.pos++
	u, s := e.Elem, e.Set
	if a.first[u] == setcover.NoSet {
		a.first[u] = s
		a.firstFree--
	}
	// Lines 20–21 and 34–36: an edge from a chosen set supplies a covering
	// witness, in every phase.
	solHit := a.sol.Test(s)
	if solHit && a.cert[u] == setcover.NoSet {
		a.cert[u] = s
		a.coveredCount++
		a.marked.Set(u)
		a.sink.Emit(obs.KindCertWrite, int64(a.pos), int64(u), int64(s), -1)
	}

	switch a.phase {
	case phaseEpoch0:
		a.trace.Epoch0Edges++
		a.e0counts[u]++
		if a.pos >= a.r.epoch0P {
			a.finishEpoch0()
		}

	case phaseAlgs:
		a.trace.APhaseEdges++
		if !solHit && !a.marked.Test(u) {
			a.processAlgEdge(u, s)
		}
		a.advanceCursor()

	case phaseRemainder:
		a.trace.RemainderEdges++
	}
}

// processRemainder is the phaseRemainder body of process run in blocks of
// up to dense.KernelBlockEdges edges: only first-set recording and witness
// collection remain (lines 34–36), and in the steady state almost every
// edge does neither. Once every element has a first-set record and a
// certificate, an entire block is skipped with one compare. The inner loop
// stays scalar by measurement, not oversight: a mask formulation (stage set
// ids, gather "set ∈ Sol" into activity words via Bits.TestMask, scan set
// bits) is byte-identical but ~7% slower end to end on the benchmark
// family, because Sol's hit density is a coverage-independent |Sol|/m —
// activity words stay sparse but never empty — while the scalar loop's two
// L1 gathers ride perfectly predicted branches. DESIGN.md §4g records the
// crossover; kk (density-gated) and alg2 (expensive per-edge body) are the
// profitable kernel hosts.
func (a *Algorithm) processRemainder(edges []stream.Edge) {
	for len(edges) > 0 {
		k := len(edges)
		if k > dense.KernelBlockEdges {
			k = dense.KernelBlockEdges
		}
		a.remainderBlock(edges[:k])
		edges = edges[k:]
	}
}

func (a *Algorithm) remainderBlock(edges []stream.Edge) {
	k := len(edges)
	a.trace.RemainderEdges += k
	if a.firstFree == 0 && a.coveredCount == a.r.n {
		a.pos += k
		return
	}
	first, cert := a.first, a.cert
	pos := a.pos
	for _, e := range edges {
		pos++
		u, s := e.Elem, e.Set
		if first[u] == setcover.NoSet {
			first[u] = s
			a.firstFree--
		}
		if cert[u] == setcover.NoSet && a.sol.Test(s) {
			cert[u] = s
			a.coveredCount++
			a.marked.Set(u)
			a.sink.Emit(obs.KindCertWrite, int64(pos), int64(u), int64(s), -1)
		}
	}
	a.pos = pos
}

// processAlgEdge is the body of the subepoch loop (lines 24–30) for an edge
// whose element is unmarked and whose set is outside Sol.
func (a *Algorithm) processAlgEdge(u setcover.Element, s setcover.SetID) {
	if a.qCur.Has(s) {
		if _, firstTouch := a.tcounts.Inc(u); firstTouch {
			a.StateMeter.Add(space.MapEntryWords)
		}
		if a.tcounts.Len() > a.trace.TrackedPeak {
			a.trace.TrackedPeak = a.tcounts.Len()
		}
	}
	if a.batchOf(s) != a.sub {
		return
	}
	c, firstTouch := a.counters.Inc(s / setcover.SetID(a.r.B))
	if firstTouch {
		a.StateMeter.Add(space.MapEntryWords)
	}
	if c != a.r.specialThreshold(a.ej) {
		return
	}
	// S is special (line 28): eligible for Sol and for tracking next epoch.
	a.trace.Specials[a.ai-1][a.ej-1]++
	if a.r.TraceSpecialSets {
		a.trace.SpecialSets[a.ai-1][a.ej-1] = append(a.trace.SpecialSets[a.ai-1][a.ej-1], int32(s))
	}
	if a.rng.Coin(a.r.pj(a.ej)) {
		a.addToSol(s)
		a.trace.AddedPerAlg[a.ai-1]++
		a.trace.SolAdditions = append(a.trace.SolAdditions,
			SolAddition{Pos: a.pos - 1, Set: s, Alg: a.ai, Epoch: a.ej})
		// The triggering edge itself witnesses u — the listing leaves this
		// to later arrivals, but covering it here is strictly better and
		// avoids one guaranteed missed edge.
		if a.cert[u] == setcover.NoSet {
			a.cert[u] = s
			a.coveredCount++
			a.marked.Set(u)
			a.sink.Emit(obs.KindCertWrite, int64(a.pos), int64(u), int64(s), -1)
		}
	} else {
		a.sink.Emit(obs.KindSampleDrop, int64(a.pos), int64(s), int64(a.ej), 0)
	}
	if !a.r.DisableTracking && a.rng.Coin(a.r.qj(a.ej)) {
		if a.qNext.Add(s) {
			a.StateMeter.Add(space.SetEntryWords)
			a.sink.Emit(obs.KindSampleKeep, int64(a.pos), int64(s), int64(a.ej), 0)
		}
	}
}

// advanceCursor moves the subepoch/epoch/algorithm cursor after every
// A-phase edge and fires the boundary work.
func (a *Algorithm) advanceCursor() {
	a.subPos++
	if a.subPos < a.r.ell[a.ai] {
		return
	}
	// Subepoch boundary: drop the batch counters (line 17 re-initialises
	// them for the next batch; a generation bump does it in O(1)).
	a.subPos = 0
	a.StateMeter.Sub(int64(a.counters.Len()) * space.MapEntryWords)
	a.counters.Clear()
	a.sub++
	if a.sub < a.r.B {
		return
	}
	a.sub = 0
	a.endOfEpoch()
	a.ej++
	if a.ej <= a.r.E {
		return
	}
	a.ej = 1
	a.ai++
	if a.ai <= a.r.K {
		// Line 10 runs per A(i): a fresh q_0 sample of all sets.
		a.sampleInitialQ()
		return
	}
	a.enterRemainder()
}

// endOfEpoch performs line 31's optimistic marking and line 32's rotation
// of the tracked sample.
func (a *Algorithm) endOfEpoch() {
	// An element incident to ≥ fdStar = 1.1·m/(2^j·√n) special sets is
	// covered by the p_j-sampling w.h.p.; its expected tracked-edge count
	// this epoch is fdStar·q·(B·ℓ_i/N). Marking at 98.5% of that expectation
	// reproduces the listing's 1.085/1.1 margin while self-calibrating to
	// whatever schedule Params chose.
	fdStar := 1.1 * float64(a.r.m) / (float64(int64(1)<<uint(a.ej)) * float64(a.r.B))
	epochFrac := float64(a.r.B*a.r.ell[a.ai]) / float64(a.r.N)
	thr := 0.985 * fdStar * a.qCurProb * epochFrac
	if thr < 2 {
		thr = 2
	}
	if !a.r.DisableTracking {
		a.tcounts.ForEach(func(u, c int32) {
			if !a.marked.Test(u) && float64(c) >= thr {
				a.marked.Set(u)
				a.trace.MarkedTracking++
			}
		})
	}
	// Rotate Q̃ ← Q̃' (line 32) and reset T.
	a.StateMeter.Sub(int64(a.tcounts.Len()) * space.MapEntryWords)
	a.tcounts.Clear()
	a.StateMeter.Sub(int64(a.qCur.Len()) * space.SetEntryWords)
	a.qCur.Swap(&a.qNext)
	a.qCurProb = a.r.qj(a.ej)
	a.qNext.Clear()
	a.sink.Emit(obs.KindEpoch, int64(a.pos), int64(a.ej), int64(a.solCount), int64(a.ai))
}

// enterRemainder releases all A-phase state; lines 33–36 only need Sol and
// the per-element bookkeeping. It also snapshots the (I1)-relevant state
// for the ablation harness (diagnostics, not charged to the meter).
func (a *Algorithm) enterRemainder() {
	a.sink.Emit(obs.KindPhase, int64(a.pos), int64(phaseRemainder), int64(a.phase), 0)
	a.phase = phaseRemainder
	a.trace.MarkedAtAEnd = a.marked.AppendBools(nil)
	a.sol.ForEach(func(s int32) {
		a.trace.SolAtAEnd = append(a.trace.SolAtAEnd, s)
	})
	a.StateMeter.Sub(int64(a.counters.Len()) * space.MapEntryWords)
	a.StateMeter.Sub(int64(a.tcounts.Len()) * space.MapEntryWords)
	a.StateMeter.Sub(int64(a.qCur.Len()) * space.SetEntryWords)
	a.StateMeter.Sub(int64(a.qNext.Len()) * space.SetEntryWords)
	a.counters.Clear()
	a.tcounts.Clear()
	a.qCur.Clear()
	a.qNext.Clear()
}

// finishEpoch0 marks elements whose prefix occurrence count certifies degree
// ≥ ~1.1·m/√n (line 7, Lemma 6's base case) and starts A(1).
func (a *Algorithm) finishEpoch0() {
	heavyDeg := 1.1 * float64(a.r.m) / float64(a.r.B)
	thr := 0.985 * heavyDeg * float64(a.r.epoch0P) / float64(a.r.N)
	if thr < 3 {
		thr = 3
	}
	for u, c := range a.e0counts {
		if !a.marked.Test(int32(u)) && float64(c) >= thr {
			a.marked.Set(int32(u))
			a.trace.MarkedEpoch0++
		}
	}
	a.AuxMeter.Sub(int64(a.r.n))
	a.startAPhase()
}

// Finish implements stream.Algorithm: the patching phase (line 38) plus the
// |Sol| ≥ n trivial-cover fallback from Theorem 3's space analysis.
func (a *Algorithm) Finish() *setcover.Cover {
	if a.finished {
		panic("core: Finish called twice")
	}
	a.finished = true
	if a.phase == phaseAlgs {
		a.enterRemainder()
	}
	defer a.release()
	if a.trace.Degenerate {
		// |Sol| reached n: report the trivial one-set-per-element cover,
		// which is never larger than n sets.
		chosen := make([]setcover.SetID, 0, a.r.n)
		for u := range a.cert {
			a.cert[u] = a.first[u]
			if a.first[u] != setcover.NoSet {
				chosen = append(chosen, a.first[u])
			}
		}
		return setcover.NewCover(chosen, a.cert)
	}
	chosen := make([]setcover.SetID, 0, a.solCount+16)
	a.sol.ForEach(func(s int32) { chosen = append(chosen, s) })
	for u := range a.cert {
		if a.cert[u] == setcover.NoSet && a.first[u] != setcover.NoSet {
			a.cert[u] = a.first[u]
			chosen = append(chosen, a.first[u])
			a.trace.Patched++
		}
	}
	a.sink.Count(obs.KindPatch, int64(a.trace.Patched))
	return setcover.NewCover(chosen, a.cert)
}

// Trace returns the run's diagnostic counters (see Trace). The pointer stays
// valid for the lifetime of the algorithm.
func (a *Algorithm) Trace() *Trace { return &a.trace }

// SampledSets returns |Sol| (sets chosen by sampling, before patching).
func (a *Algorithm) SampledSets() int { return a.solCount }

// CoveredCount implements stream.CoverageReporter: the number of elements
// currently holding a covering witness (marked-without-witness elements are
// not counted).
func (a *Algorithm) CoveredCount() int { return a.coveredCount }

// SetObs replaces the decision-event sink (tests attach private hubs here;
// nil detaches).
func (a *Algorithm) SetObs(s *obs.Sink) { a.sink = s }

// ObsAlgo implements obs.Identified.
func (a *Algorithm) ObsAlgo() obs.AlgoID { return obs.AlgoAlg1 }

var _ stream.Algorithm = (*Algorithm)(nil)
var _ stream.BatchProcessor = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
