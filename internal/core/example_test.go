package core_test

import (
	"fmt"

	"streamcover/internal/core"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Algorithm 1 end to end: a random-order stream of a planted instance, the
// practical parameter calibration, and the Õ(m/√n) working state visible in
// the space report (the instance has m = 2000 sets, √n = 20).
func Example() {
	rng := xrand.New(3)
	w := workload.Planted(rng.Split(), 400, 2000, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())

	alg := core.New(400, 2000, len(edges), core.DefaultParams(400, 2000), rng.Split())
	res := stream.RunEdges(alg, edges)

	fmt.Println("valid cover:", res.Cover.Verify(w.Inst) == nil)
	fmt.Println("state well below m:", res.Space.State < 1000)
	// Output:
	// valid cover: true
	// state well below m: true
}
