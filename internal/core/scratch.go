package core

import (
	"sync"

	"streamcover/internal/dense"
	"streamcover/internal/setcover"
)

// scratch bundles the physical backing arrays of one Algorithm 1 run. The
// arrays are sized by the id spaces (n, m, ⌈m/B⌉) and recycled through a
// sync.Pool, so repeated runs over the same instance shape — benchmark
// iterations, experiment repetitions — allocate no per-run working state.
// The generation counters inside the stamped tables travel with the scratch,
// which is what makes reuse O(1): a recycled table is invalidated by one
// generation bump, not a wipe. Only the certificate is excluded — it escapes
// into the returned Cover.
type scratch struct {
	n, m, cm int

	first    []setcover.SetID
	e0counts []int32
	marked   dense.Bits
	sol      dense.Bits
	counters dense.Counts
	qCur     dense.StampedSet
	qNext    dense.StampedSet
	tcounts  dense.Counts
}

var scratchPool sync.Pool

// getScratch returns a scratch for the given dimensions, recycling a pooled
// one when the shape matches. All returned state reads as empty: bitsets and
// plain counter arrays are zeroed, stamped tables are generation-bumped.
func getScratch(n, m, cm int) *scratch {
	if v := scratchPool.Get(); v != nil {
		sc := v.(*scratch)
		if sc.n == n && sc.m == m && sc.cm == cm {
			sc.marked.Reset()
			sc.sol.Reset()
			clear(sc.e0counts)
			sc.counters.Clear()
			sc.qCur.Clear()
			sc.qNext.Clear()
			sc.tcounts.Clear()
			return sc
		}
		// Shape mismatch: drop it and build fresh.
	}
	return &scratch{
		n:        n,
		m:        m,
		cm:       cm,
		first:    make([]setcover.SetID, n),
		e0counts: make([]int32, n),
		marked:   dense.NewBits(n),
		sol:      dense.NewBits(m),
		counters: dense.NewCounts(cm),
		qCur:     dense.NewStampedSet(m),
		qNext:    dense.NewStampedSet(m),
		tcounts:  dense.NewCounts(n),
	}
}

// putScratch returns a scratch to the pool.
func putScratch(sc *scratch) { scratchPool.Put(sc) }
