package core

// Trace records the internal counters of one Algorithm 1 run that the
// paper's analysis reasons about, so the E-ABL-A1 ablation can check the
// invariants empirically:
//
//   - (I3) / Lemma 9: sets added per A(i) should be Õ(√n);
//   - Lemma 8: the number of special sets per epoch should decay
//     geometrically in j;
//   - Lemma 6 / epoch 0: high-degree elements are detected and marked
//     optimistically.
type Trace struct {
	// Specials[i-1][j-1] counts sets that crossed the special threshold in
	// epoch j of A(i).
	Specials [][]int
	// AddedPerAlg[i-1] counts sets sampled into Sol during A(i).
	AddedPerAlg []int
	// AddedEpoch0 counts sets sampled into Sol by the up-front p_0 sampling.
	AddedEpoch0 int
	// MarkedEpoch0 counts elements marked by epoch 0's degree detection.
	MarkedEpoch0 int
	// MarkedTracking counts elements marked optimistically via the tracked
	// sample Q̃ (line 31).
	MarkedTracking int
	// Epoch0Edges and APhaseEdges record how much of the stream the
	// detection phases consumed; RemainderEdges is the witness-collection
	// suffix.
	Epoch0Edges    int
	APhaseEdges    int
	RemainderEdges int
	// Patched counts elements covered by the post-processing phase
	// (line 38).
	Patched int
	// Degenerate reports the |Sol| ≥ n trivial-cover fallback from the
	// space analysis of Theorem 3 fired.
	Degenerate bool
	// TrackedPeak is the largest number of tracked-edge counter entries |T|
	// held at once.
	TrackedPeak int
	// SolAdditions records, in order, the stream position of every set
	// added to Sol mid-stream (excluding epoch 0's up-front sample), for
	// missed-edge analysis.
	SolAdditions []SolAddition
	// MarkedAtAEnd is a snapshot of the marked-as-covered bitmap taken when
	// the last A(i) finished — the set U^(K) complement invariant (I1)
	// reasons about. Nil if the A-phase never completed.
	MarkedAtAEnd []bool
	// SolAtAEnd snapshots Sol at the same moment.
	SolAtAEnd []int32
	// SpecialSets, when Params.TraceSpecialSets is set, records the ids of
	// the sets that became special in epoch j of A(i) as
	// SpecialSets[i-1][j-1] — the data behind the Lemma 5 monotonicity
	// check (specials of epoch j should have been special in epoch j−1).
	SpecialSets [][][]int32
}

// Lemma5Violations counts, across all A(i) and epochs j ≥ 2, how many
// special sets of epoch j were NOT special in epoch j−1 of the same A(i),
// along with the total number of epoch-≥2 specials. The paper's Lemma 5
// predicts a vanishing violation rate (under its log⁶m thresholds; the
// practical calibration reports whatever margin it achieves).
func (t *Trace) Lemma5Violations() (violations, total int) {
	for _, alg := range t.SpecialSets {
		for j := 1; j < len(alg); j++ {
			prev := make(map[int32]struct{}, len(alg[j-1]))
			for _, s := range alg[j-1] {
				prev[s] = struct{}{}
			}
			for _, s := range alg[j] {
				total++
				if _, ok := prev[s]; !ok {
					violations++
				}
			}
		}
	}
	return violations, total
}

// SolAddition is one mid-stream inclusion into Sol.
type SolAddition struct {
	Pos   int   // 0-based stream position of the triggering edge
	Set   int32 // the set added
	Alg   int   // which A(i) (1-based)
	Epoch int   // which epoch j (1-based)
}

// SpecialsTotal sums special-set counts over all algorithms per epoch index,
// the series Lemma 8 predicts decays geometrically.
func (t *Trace) SpecialsTotal() []int {
	var out []int
	for _, alg := range t.Specials {
		for j, c := range alg {
			for len(out) <= j {
				out = append(out, 0)
			}
			out[j] += c
		}
	}
	return out
}
