package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
)

// snapVersion is the SCSTATE1 layout version of this package's snapshots.
const snapVersion = 1

// Snapshot implements stream.Snapshotter: the complete mid-stream state of
// Algorithm 1 — phase and subepoch cursor, generator, all five dictionaries
// (Sol, marked, C, Q̃/Q̃', T), the epoch-0 prefix counts, the diagnostic
// trace and the space meters. The resolved schedule string is embedded as
// the shape fingerprint: a snapshot only restores into an instance built
// with parameters that resolve to the identical schedule. Valid only before
// Finish (Finish releases the dense state to the pool).
func (a *Algorithm) Snapshot(wr io.Writer) error {
	if a.finished {
		return errors.New("core: Snapshot after Finish")
	}
	w := snap.NewWriter(wr, "alg1", snapVersion)
	w.String(a.r.String())
	w.Int(a.pos)
	w.Int(int(a.phase))
	a.rng.Save(w)
	snap.SaveSetIDs(w, a.first)
	snap.SaveSetIDs(w, a.cert)
	w.Int(a.coveredCount)
	a.marked.Save(w)
	a.sol.Save(w)
	w.Int(a.solCount)
	w.I32s(a.e0counts)
	w.Int(a.ai)
	w.Int(a.ej)
	w.Int(a.sub)
	w.Int(a.subPos)
	a.counters.Save(w)
	a.qCur.Save(w)
	a.qNext.Save(w)
	w.F64(a.qCurProb)
	a.tcounts.Save(w)
	tr, err := json.Marshal(&a.trace)
	if err != nil {
		w.Fail(fmt.Errorf("core: marshal trace: %w", err))
	} else {
		w.Bytes(tr)
	}
	snap.SaveTracked(w, &a.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance whose parameters resolve to the same schedule; a
// failed restore leaves it in an unspecified state that must be discarded.
func (a *Algorithm) Restore(rd io.Reader) error {
	if a.finished {
		return errors.New("core: Restore after Finish")
	}
	r, err := snap.NewReader(rd, "alg1")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: alg1 snapshot v%d", snap.ErrVersion, v)
	}
	shape := r.StringV()
	if err := r.Err(); err != nil {
		return err
	}
	if got := a.r.String(); shape != got {
		return fmt.Errorf("%w: snapshot schedule %q, receiver resolves to %q",
			snap.ErrMismatch, shape, got)
	}
	a.pos = r.Int()
	ph := r.Int()
	if r.Err() == nil && (ph < int(phaseEpoch0) || ph > int(phaseRemainder)) {
		return fmt.Errorf("%w: phase %d out of range", snap.ErrCorrupt, ph)
	}
	a.phase = phase(ph)
	a.rng.Load(r)
	snap.LoadSetIDsInto(r, a.first, a.r.m)
	snap.LoadSetIDsInto(r, a.cert, a.r.m)
	a.coveredCount = r.Int()
	a.marked.Load(r)
	a.sol.Load(r)
	a.solCount = r.Int()
	r.I32sInto(a.e0counts)
	a.ai = r.Int()
	a.ej = r.Int()
	a.sub = r.Int()
	a.subPos = r.Int()
	a.counters.Load(r)
	a.qCur.Load(r)
	a.qNext.Load(r)
	a.qCurProb = r.F64()
	a.tcounts.Load(r)
	tr := r.Bytes()
	if r.Err() == nil {
		var decoded Trace
		if err := json.Unmarshal(tr, &decoded); err != nil {
			return fmt.Errorf("%w: trace: %v", snap.ErrCorrupt, err)
		}
		a.trace = decoded
	}
	snap.LoadTracked(r, &a.Tracked)
	// firstFree is derived state (the batch kernels' fast-path counter), not
	// part of the SCSTATE1 layout: recompute it from the restored records.
	a.firstFree = 0
	for _, s := range a.first {
		if s == setcover.NoSet {
			a.firstFree++
		}
	}
	return r.Close()
}
