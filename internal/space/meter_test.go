package space

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMeterZeroValue(t *testing.T) {
	var m Meter
	if m.Current() != 0 || m.Peak() != 0 {
		t.Fatalf("zero meter not zero: %v", m.String())
	}
}

func TestMeterAddSub(t *testing.T) {
	var m Meter
	m.Add(10)
	if m.Current() != 10 || m.Peak() != 10 {
		t.Fatalf("after Add(10): %v", m.String())
	}
	m.Sub(4)
	if m.Current() != 6 {
		t.Fatalf("after Sub(4): cur=%d", m.Current())
	}
	if m.Peak() != 10 {
		t.Fatalf("peak dropped: %d", m.Peak())
	}
	m.Add(20)
	if m.Peak() != 26 {
		t.Fatalf("peak not raised: %d", m.Peak())
	}
}

func TestMeterNegativeAddIsRefund(t *testing.T) {
	var m Meter
	m.Add(5)
	m.Add(-3)
	if m.Current() != 2 {
		t.Fatalf("cur=%d", m.Current())
	}
}

func TestMeterPanicsOnNegativeBalance(t *testing.T) {
	var m Meter
	m.Add(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Sub below zero did not panic")
		}
		// The message is part of the contract documented on Add: it names the
		// package and reports the (negative) balance reached.
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		if msg != "space: meter went negative (-3)" {
			t.Fatalf("panic message = %q, want %q", msg, "space: meter went negative (-3)")
		}
	}()
	m.Sub(5) // 2 - 5 = -3
}

func TestMeterCheckpoint(t *testing.T) {
	var m Meter
	m.Add(10)
	m.Sub(4)
	cur, peak := m.Checkpoint()
	if cur != 6 || peak != 10 {
		t.Fatalf("Checkpoint() = (%d, %d), want (6, 10)", cur, peak)
	}
}

func TestTrackedCheckpoint(t *testing.T) {
	var tr Tracked
	tr.StateMeter.Add(40)
	tr.StateMeter.Sub(10)
	tr.AuxMeter.Add(8)
	cur, peak := tr.Checkpoint()
	if cur.State != 30 || peak.State != 40 {
		t.Fatalf("state checkpoint = (%d, %d), want (30, 40)", cur.State, peak.State)
	}
	if cur.Aux != 8 || peak.Aux != 8 {
		t.Fatalf("aux checkpoint = (%d, %d), want (8, 8)", cur.Aux, peak.Aux)
	}
	var _ CheckpointReporter = &tr
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Add(100)
	m.Reset()
	if m.Current() != 0 || m.Peak() != 0 {
		t.Fatalf("after Reset: %v", m.String())
	}
}

func TestMeterString(t *testing.T) {
	var m Meter
	m.Add(3)
	m.Sub(1)
	if got := m.String(); got != "2/3 words" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: peak is the running maximum of the balance under any sequence of
// valid operations.
func TestMeterPeakIsRunningMax(t *testing.T) {
	f := func(deltas []int16) bool {
		var m Meter
		var cur, peak int64
		for _, d := range deltas {
			w := int64(d)
			if cur+w < 0 {
				w = -cur // clamp to keep the op valid
			}
			m.Add(w)
			cur += w
			if cur > peak {
				peak = cur
			}
		}
		return m.Current() == cur && m.Peak() == peak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUsageTotalAndString(t *testing.T) {
	u := Usage{State: 7, Aux: 5}
	if u.Total() != 12 {
		t.Fatalf("Total=%d", u.Total())
	}
	if s := u.String(); !strings.Contains(s, "state=7") || !strings.Contains(s, "total=12") {
		t.Fatalf("String=%q", s)
	}
}

func TestTrackedSpace(t *testing.T) {
	var tr Tracked
	tr.StateMeter.Add(40)
	tr.StateMeter.Sub(10)
	tr.AuxMeter.Add(8)
	u := tr.Space()
	if u.State != 40 {
		t.Fatalf("State=%d want peak 40", u.State)
	}
	if u.Aux != 8 {
		t.Fatalf("Aux=%d", u.Aux)
	}
	var _ Reporter = &tr
}

func TestChargeConstants(t *testing.T) {
	if MapEntryWords != 2 || SetEntryWords != 1 || SliceElemWords != 1 {
		t.Fatal("charge constants changed; experiments compare across algorithms using these")
	}
}

func BenchmarkMeterAdd(b *testing.B) {
	var m Meter
	for i := 0; i < b.N; i++ {
		m.Add(1)
		m.Sub(1)
	}
}
