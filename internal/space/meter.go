// Package space provides word-level space accounting for streaming
// algorithms.
//
// Every space claim in the paper — Õ(m) for the KK-algorithm, Õ(mn/α²) for
// the adversarial-order algorithm, Õ(m/√n) for the random-order algorithm —
// is about the number of machine words of working state, not Go heap bytes
// (which are dominated by map overhead and allocator slack). Algorithms in
// this repository therefore charge and refund an explicit Meter at every
// mutation of their long-lived state, and the experiment harness reads the
// meter's peak to verify the bounds empirically.
//
// The unit is the "word": one element identifier, one set identifier, one
// counter, or one map slot all cost one word each (a map entry of key+value
// costs two). This matches how the streaming literature counts space up to
// constant factors.
package space

import "fmt"

// Meter tracks the current and peak number of words of state held by an
// algorithm. The zero value is ready to use. Meter is not safe for concurrent
// use; streaming algorithms are single-threaded by construction.
type Meter struct {
	cur  int64
	peak int64
}

// Add charges w words. Negative w is a refund (equivalent to Sub(-w)).
//
// Add is the single place the meter's invariant is enforced: if the balance
// would go negative it panics with "space: meter went negative (<balance>)".
// A negative balance always indicates an instrumentation bug — a refund for
// state that was never charged — so failing loudly beats silently reporting
// nonsense peaks. Every other mutating method (Sub in particular) funnels
// through Add and inherits this contract.
func (m *Meter) Add(w int64) {
	m.cur += w
	if m.cur > m.peak {
		m.peak = m.cur
	}
	if m.cur < 0 {
		panic(fmt.Sprintf("space: meter went negative (%d)", m.cur))
	}
}

// Sub refunds w words; it is Add(-w) and shares Add's panic contract.
func (m *Meter) Sub(w int64) { m.Add(-w) }

// Current returns the words currently charged.
func (m *Meter) Current() int64 { return m.cur }

// Peak returns the high-water mark.
func (m *Meter) Peak() int64 { return m.peak }

// Checkpoint returns the current balance and the peak in one call — the pair
// every mid-stream observer (trajectory sampling, the observability layer)
// wants atomically with respect to the algorithm's own mutations.
func (m *Meter) Checkpoint() (cur, peak int64) { return m.cur, m.peak }

// Reset zeroes both the current balance and the peak.
func (m *Meter) Reset() { m.cur, m.peak = 0, 0 }

// Restore overwrites the meter with a previously checkpointed (cur, peak)
// pair — the inverse of Checkpoint, used when deserializing algorithm state.
// It panics on a pair that no sequence of Add calls could have produced
// (cur < 0 or peak < cur), the same loud-failure contract as Add; snapshot
// decoders validate before calling.
func (m *Meter) Restore(cur, peak int64) {
	if cur < 0 || peak < cur {
		panic(fmt.Sprintf("space: invalid meter restore (cur=%d peak=%d)", cur, peak))
	}
	m.cur, m.peak = cur, peak
}

// String formats the meter as "cur/peak words".
func (m *Meter) String() string {
	return fmt.Sprintf("%d/%d words", m.cur, m.peak)
}

// Usage is a point-in-time snapshot of an algorithm's space consumption,
// split the way the paper's Table 1 compares algorithms.
type Usage struct {
	// State is the peak of the algorithm-specific working state — the term
	// that depends on m and distinguishes the regimes (degree counters, level
	// maps, batch counters, tracked samples, the solution itself).
	State int64
	// Aux is the peak of the bookkeeping every one-pass algorithm carries
	// regardless of regime: the first-set map R(u), the covered bitmap, and
	// the cover certificate — the Õ(n) terms of Algorithm 1 lines 3–4 and
	// Algorithm 2 lines 2, 4–5.
	Aux int64
}

// Total returns State + Aux.
func (u Usage) Total() int64 { return u.State + u.Aux }

func (u Usage) String() string {
	return fmt.Sprintf("state=%d aux=%d total=%d words", u.State, u.Aux, u.Total())
}

// Reporter is implemented by algorithms that expose their space usage.
type Reporter interface {
	// Space reports peak usage observed so far. It may be called at any
	// point during or after the stream.
	Space() Usage
}

// Tracked couples the two meters every streaming algorithm in this
// repository embeds. Embedding Tracked provides the Space method.
type Tracked struct {
	// StateMeter charges the m-dependent working state.
	StateMeter Meter
	// AuxMeter charges the n-dependent bookkeeping (R(u), covered set,
	// certificate).
	AuxMeter Meter
}

// Space implements Reporter using the peaks of both meters.
func (t *Tracked) Space() Usage {
	return Usage{State: t.StateMeter.Peak(), Aux: t.AuxMeter.Peak()}
}

// Current returns the instantaneous (not peak) usage. The one-way
// communication simulator reads this at party cut points: the state a
// streaming algorithm carries across a cut is exactly the message the
// corresponding protocol would send (paper §3).
func (t *Tracked) Current() Usage {
	return Usage{State: t.StateMeter.Current(), Aux: t.AuxMeter.Current()}
}

// Checkpoint returns the instantaneous and peak usage of both meters.
func (t *Tracked) Checkpoint() (cur, peak Usage) {
	sc, sp := t.StateMeter.Checkpoint()
	ac, ap := t.AuxMeter.Checkpoint()
	return Usage{State: sc, Aux: ac}, Usage{State: sp, Aux: ap}
}

// CurrentReporter is implemented by algorithms whose instantaneous state
// size can be observed mid-stream.
type CurrentReporter interface {
	Current() Usage
}

// CheckpointReporter is implemented by algorithms that expose instantaneous
// and peak usage together; embedding Tracked provides it.
type CheckpointReporter interface {
	Checkpoint() (cur, peak Usage)
}

// Words for common container mutations, so every algorithm charges the same
// way and experiments compare like with like.
const (
	// MapEntryWords is the charge for one map entry (key + value).
	MapEntryWords = 2
	// SetEntryWords is the charge for one membership-set entry (key only).
	SetEntryWords = 1
	// SliceElemWords is the charge for one element appended to a slice.
	SliceElemWords = 1
)
