package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"streamcover/internal/kk"
	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

const (
	testN, testM, testOpt = 120, 900, 6
	testSeed              = 42
)

// testEdges builds the shared deterministic workload stream.
func testEdges(t testing.TB) []stream.Edge {
	t.Helper()
	w := workload.Planted(xrand.New(11), testN, testM, testOpt, 0)
	return stream.Arrange(w.Inst, stream.Random, xrand.New(23))
}

func testConfig(edges []stream.Edge) Config {
	return Config{Algo: "kk", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed}
}

// startServer runs a server on a loopback port, shut down at test end.
// Tests run dirless on a MemStore unless they ask for a specific backend.
func startServer(t testing.TB, cfg ServerConfig) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Store == nil && cfg.Dir == "" {
		cfg.Store = NewMemStore()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv
}

func dialT(t testing.TB, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.Timeout = 30 * time.Second
	return c
}

// waitIdle polls until the server has released every session.
func waitIdle(t testing.TB, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Manager().Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions still attached", srv.Manager().Active())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeMatchesLocalRun pins the fundamental equivalence: a session fed
// over TCP produces byte-identical output to driving the same algorithm
// locally.
func TestServeMatchesLocalRun(t *testing.T) {
	edges := testEdges(t)
	for _, cfg := range []Config{
		{Algo: "kk", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed},
		{Algo: "alg1", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed},
		{Algo: "alg2", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed, Alpha: 22},
		{Algo: "es", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed, Alpha: 6},
		{Algo: "kk", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed, Copies: 3},
	} {
		name := cfg.Algo
		if cfg.Copies > 1 {
			name += "-ensemble"
		}
		t.Run(name, func(t *testing.T) {
			alg, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			local := stream.RunEdges(alg, edges)

			srv := startServer(t, ServerConfig{})
			c := dialT(t, srv)
			if _, err := c.Hello("", cfg); err != nil {
				t.Fatal(err)
			}
			fd := Feeder{Edges: edges, Batch: 700}
			res, err := fd.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Cover.Equal(local.Cover) {
				t.Fatalf("served cover (%d sets) differs from local (%d sets)",
					len(res.Cover.Sets), len(local.Cover.Sets))
			}
			if res.Edges != local.Edges || res.Space != local.Space {
				t.Fatalf("served edges/space %d/%+v, local %d/%+v",
					res.Edges, res.Space, local.Edges, local.Space)
			}
		})
	}
}

func TestServeFlushReportsProgress(t *testing.T) {
	edges := testEdges(t)
	srv := startServer(t, ServerConfig{})
	c := dialT(t, srv)
	if _, err := c.Hello("", testConfig(edges)); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	const stop = 2048
	if err := fd.RunUntil(c, stop); err != nil {
		t.Fatal(err)
	}
	pos, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if pos != stop {
		t.Fatalf("flushed position %d, want %d", pos, stop)
	}
}

func TestServeDetachAndResume(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	srv := startServer(t, ServerConfig{})

	ref := localReference(t, cfg, edges)

	c := dialT(t, srv)
	if _, err := c.Hello("par", cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	const stop = 3000
	if err := fd.RunUntil(c, stop); err != nil {
		t.Fatal(err)
	}
	pos, err := c.Detach()
	if err != nil {
		t.Fatal(err)
	}
	if pos != stop {
		t.Fatalf("detached at %d, want %d", pos, stop)
	}
	c.Close()
	waitIdle(t, srv)

	c2 := dialT(t, srv)
	got, err := c2.Resume("par", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != stop {
		t.Fatalf("resumed at %d, want %d", got, stop)
	}
	res, err := fd.Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("resumed fingerprint %#x, want uninterrupted %#x", res.Fingerprint(), ref.Fingerprint())
	}
}

// TestServeTraceIdentity pins the session-identity contract of the v2
// handshake: a client-minted trace is adopted and echoed; the trace is
// stamped into the detach checkpoint and wins on resume, even when the
// resuming client proposes a different one; and a zero client trace makes
// the server mint a non-zero identity.
func TestServeTraceIdentity(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	hub := obs.NewHub(64)
	var events strings.Builder
	so := hub.Serve()
	so.SetEventWriter(&events)
	srv := startServer(t, ServerConfig{Obs: so})

	minted := obs.NewTraceID()
	c := dialT(t, srv)
	c.Trace = minted
	if _, err := c.Hello("traced", cfg); err != nil {
		t.Fatal(err)
	}
	if c.Trace != minted {
		t.Fatalf("server replaced the client-minted trace: %v -> %v", minted, c.Trace)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	if err := fd.RunUntil(c, 2048); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitIdle(t, srv)

	// Resume under a DIFFERENT proposed trace: the checkpoint's stamp wins.
	c2 := dialT(t, srv)
	c2.Trace = obs.NewTraceID()
	if _, err := c2.Resume("traced", cfg); err != nil {
		t.Fatal(err)
	}
	if c2.Trace != minted {
		t.Fatalf("resume reports trace %v, want the original %v", c2.Trace, minted)
	}
	if _, err := fd.Run(c2); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, srv)

	// Zero client trace: the server mints one.
	c3 := dialT(t, srv)
	if _, err := c3.Hello("minted-remotely", cfg); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled && c3.Trace.IsZero() {
		t.Fatal("server did not mint a trace for a zero-trace hello")
	}
	if _, err := fd.Run(c3); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, srv)

	if obs.Enabled {
		// The telemetry table kept ONE row for the detach/resume pair (same
		// trace rebinds the slot) and the wide-event log tells the story.
		snap := so.Sessions().Snapshot()
		byToken := map[string]obs.SessionInfo{}
		for _, r := range snap.Sessions {
			byToken[r.Token] = r
		}
		tr, ok := byToken["traced"]
		if !ok || tr.Trace != minted.String() || !tr.Resumed || tr.State != "finished" {
			t.Fatalf("traced session row %+v (present=%v)", tr, ok)
		}
		if tr.Edges != int64(len(edges)) {
			t.Fatalf("traced session row counts %d edges, want %d", tr.Edges, len(edges))
		}
		log := events.String()
		for _, want := range []string{
			`"event":"session_open"`, `"event":"session_detach"`, `"cause":"detach-frame"`,
			`"event":"session_resume"`, `"event":"session_finish"`,
			`"trace":"` + minted.String() + `"`,
		} {
			if !strings.Contains(log, want) {
				t.Errorf("wide-event log missing %s:\n%s", want, log)
			}
		}
	}
}

// localReference runs cfg's algorithm locally over edges.
func localReference(t testing.TB, cfg Config, edges []stream.Edge) Result {
	t.Helper()
	alg, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stream.RunEdges(alg, edges)
	return Result{Edges: r.Edges, Cover: r.Cover, Space: r.Space}
}

// detachWithCheckpoint opens a session under token, feeds stop edges and
// detaches gracefully, leaving a checkpoint behind.
func detachWithCheckpoint(t *testing.T, srv *Server, token string, cfg Config, edges []stream.Edge, stop int) {
	t.Helper()
	c := dialT(t, srv)
	if _, err := c.Hello(token, cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	if err := fd.RunUntil(c, stop); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitIdle(t, srv)
}

// TestServeResumeMismatchIsTyped pins the satellite fix: resuming a
// checkpoint with a different algorithm (or instance shape) must fail with
// the typed mismatch error, not a decode panic or a generic failure.
func TestServeResumeMismatchIsTyped(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	srv := startServer(t, ServerConfig{})
	detachWithCheckpoint(t, srv, "mm", cfg, edges, 3000)

	t.Run("different-algorithm", func(t *testing.T) {
		other := cfg
		other.Algo, other.Alpha = "alg2", 22
		c := dialT(t, srv)
		_, err := c.Resume("mm", other)
		if !errors.Is(err, ErrRemoteMismatch) {
			t.Fatalf("got %v, want ErrRemoteMismatch", err)
		}
	})

	t.Run("different-shape", func(t *testing.T) {
		other := cfg
		other.N, other.M = cfg.N*2, cfg.M*2
		c := dialT(t, srv)
		_, err := c.Resume("mm", other)
		if err == nil {
			t.Fatal("shape-mismatched resume succeeded")
		}
		if !errors.Is(err, ErrRemote) {
			t.Fatalf("got untyped error %v", err)
		}
	})

	// The checkpoint must survive the failed attempts: a correct resume
	// still works.
	t.Run("correct-config-still-resumes", func(t *testing.T) {
		c := dialT(t, srv)
		pos, err := c.Resume("mm", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pos != 3000 {
			t.Fatalf("resumed at %d, want 3000", pos)
		}
	})
}

func TestServeResumeUnknownTokenFails(t *testing.T) {
	edges := testEdges(t)
	srv := startServer(t, ServerConfig{})
	c := dialT(t, srv)
	_, err := c.Resume("never-existed", testConfig(edges))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("got %v, want ErrRemote", err)
	}
	if !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("error %q does not explain the missing checkpoint", err)
	}
}

func TestServeDuplicateTokenRejected(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	srv := startServer(t, ServerConfig{})
	c1 := dialT(t, srv)
	if _, err := c1.Hello("dup", cfg); err != nil {
		t.Fatal(err)
	}
	c2 := dialT(t, srv)
	if _, err := c2.Hello("dup", cfg); !errors.Is(err, ErrRemote) {
		t.Fatalf("second hello for an attached token: got %v, want ErrRemote", err)
	}
}

func TestServeDrainingRejectsNewSessions(t *testing.T) {
	edges := testEdges(t)
	srv := startServer(t, ServerConfig{})
	srv.Manager().Drain()
	c := dialT(t, srv)
	if _, err := c.Hello("", testConfig(edges)); !errors.Is(err, ErrDraining) {
		t.Fatalf("hello on draining server: got %v, want ErrDraining", err)
	}
	c2 := dialT(t, srv)
	if _, err := c2.Resume("any", testConfig(edges)); !errors.Is(err, ErrDraining) {
		t.Fatalf("resume on draining server: got %v, want ErrDraining", err)
	}
}

// TestServeIdleTimeoutDetaches leaves a session silent past the idle
// timeout; the server must detach it with a checkpoint covering every edge
// it had received, so a resume continues seamlessly.
func TestServeIdleTimeoutDetaches(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	srv := startServer(t, ServerConfig{IdleTimeout: 50 * time.Millisecond})
	ref := localReference(t, cfg, edges)

	c := dialT(t, srv)
	if _, err := c.Hello("idle", cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	const stop = 4096
	if err := fd.RunUntil(c, stop); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, srv) // the idle timeout fires and the server detaches

	c2 := dialT(t, srv)
	pos, err := c2.Resume("idle", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pos != stop {
		t.Fatalf("idle-detach checkpointed at %d, want %d", pos, stop)
	}
	res, err := fd.Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("post-idle-timeout fingerprint %#x, want %#x", res.Fingerprint(), ref.Fingerprint())
	}
}

// TestServeBadEdgeDetachesWithCheckpoint sends an edge outside the session
// shape: the server must answer with a typed error frame, and the edges
// accepted before the bad frame must survive in a checkpoint.
func TestServeBadEdgeDetachesWithCheckpoint(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	srv := startServer(t, ServerConfig{})
	c := dialT(t, srv)
	if _, err := c.Hello("bad", cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	const stop = 1024
	if err := fd.RunUntil(c, stop); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch([]stream.Edge{{Set: testM + 7, Elem: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); !errors.Is(err, ErrRemote) {
		t.Fatalf("flush after bad edge: got %v, want ErrRemote", err)
	}
	c.Close()
	waitIdle(t, srv)

	c2 := dialT(t, srv)
	pos, err := c2.Resume("bad", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pos != stop {
		t.Fatalf("checkpoint after bad frame at %d, want %d", pos, stop)
	}
}

// slowAlg is a deliberately slow drop-in used to force ring backpressure.
type slowAlg struct {
	inner stream.Algorithm
	delay time.Duration
}

func (a *slowAlg) Process(e stream.Edge) {
	time.Sleep(a.delay)
	a.inner.Process(e)
}
func (a *slowAlg) Finish() *setcover.Cover { return a.inner.Finish() }

// TestServeBackpressureCountsStalls drives a slow algorithm faster than it
// can consume: the connection reader must block on the full ring (the
// stall counter ticks) and TCP pushes back on the client — yet nothing is
// lost and the session finishes.
func TestServeBackpressureCountsStalls(t *testing.T) {
	edges := testEdges(t)[:4096]
	Register("slowtest", func(cfg Config, rng *xrand.Rand) stream.Algorithm {
		return &slowAlg{inner: kk.New(cfg.N, cfg.M, rng), delay: 30 * time.Microsecond}
	})
	hub := obs.NewHub(1)
	so := hub.Serve()
	srv := startServer(t, ServerConfig{Obs: so})
	c := dialT(t, srv)
	cfg := Config{Algo: "slowtest", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed}
	if _, err := c.Hello("", cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 64}
	res, err := fd.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Fatalf("processed %d edges, want %d", res.Edges, len(edges))
	}
	stalls := metricValue(t, hub, "streamcover_serve_ingest_stalls_total")
	if stalls == 0 {
		t.Fatalf("no ingest stalls recorded while overrunning a slow consumer")
	}
	t.Logf("backpressure: %v stalls over %d batches", stalls, (len(edges)+63)/64)
}

// metricValue reads one counter/gauge from a private hub snapshot.
func metricValue(t testing.TB, hub *obs.Hub, name string) float64 {
	t.Helper()
	for _, p := range hub.Snapshot().Metrics {
		if p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// TestServeManagerRejectsBadConfigs covers the validation edges directly.
func TestServeManagerRejectsBadConfigs(t *testing.T) {
	mgr, err := NewManager(NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},                                     // no algorithm
		{Algo: "kk"},                           // no shape
		{Algo: "nope", N: 10, M: 10},           // unregistered
		{Algo: "kk", N: -1, M: 10},             // negative n
		{Algo: "kk", N: 10, M: 10, Copies: -1}, // negative copies
	}
	for _, cfg := range bad {
		if _, err := mgr.Open("", obs.TraceID{}, cfg); err == nil {
			t.Errorf("Open accepted invalid config %+v", cfg)
		}
	}
	if _, err := mgr.Open("../escape", obs.TraceID{}, Config{Algo: "kk", N: 10, M: 10}); !errors.Is(err, ErrToken) {
		t.Errorf("path-escaping token: got %v, want ErrToken", err)
	}
}

// slowStore delays Put so tests can catch a server mid-detach.
type slowStore struct {
	CheckpointStore
	putDelay time.Duration
}

func (s *slowStore) Put(token string, data []byte) (int, error) {
	time.Sleep(s.putDelay)
	return s.CheckpointStore.Put(token, data)
}

// TestServeShutdownContextCanceled expires the shutdown context while a
// handler is mid-detach: Shutdown must return ctx.Err() promptly, and the
// session must STILL land durably in the store — an abandoned shutdown may
// give up waiting, never give up checkpointing.
func TestServeShutdownContextCanceled(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	mem := NewMemStore()
	slow := &slowStore{CheckpointStore: mem, putDelay: 250 * time.Millisecond}
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Store: slow})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c := dialT(t, srv)
	if _, err := c.Hello("slowckpt", cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 512}
	const stop = 2048
	if err := fd.RunUntil(c, stop); err != nil {
		t.Fatal(err)
	}
	// Flush so the server has provably consumed through stop before the
	// shutdown wake-up discards any unread bytes on the connection.
	if pos, err := c.Flush(); err != nil || pos != stop {
		t.Fatalf("flush: pos=%d err=%v", pos, err)
	}

	// Shutdown wakes the blocked reader, whose handler detaches into the
	// slow store; the context expires long before the Put completes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after shutdown", err)
	}

	// The handler keeps going in the background: the checkpoint must land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if blob, err := mem.Get("slowckpt"); err == nil && len(blob) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never landed in the store after abandoned shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And it must be a complete, resumable checkpoint at the acked position.
	srv2, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Store: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Listen(); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done2; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	c2 := dialT(t, srv2)
	pos, err := c2.Resume("slowckpt", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pos != stop {
		t.Fatalf("resumed at %d, want %d", pos, stop)
	}
}

// TestServeNewServerNeedsStore: a server must be given a store or a
// directory to open one on.
func TestServeNewServerNeedsStore(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("NewServer without Store or Dir succeeded")
	}
}

// TestServeSteadyStateAllocs pins the zero-allocation contract of the
// serving hot path: once a session is warm, an edge-batch round trip —
// client encode, server frame read, decode into the ring, ProcessBatch,
// flush ack — allocates nothing on either side. AllocsPerRun counts
// mallocs process-wide, so the bound covers the server goroutines too.
func TestServeSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short races")
	}
	edges := testEdges(t)
	srv := startServer(t, ServerConfig{})
	c := dialT(t, srv)
	c.Timeout = 0 // deadline bookkeeping may allocate; steady state sets none
	cfg := Config{Algo: "kk", N: testN, M: testM, StreamLen: 1 << 30, Seed: testSeed}
	if _, err := c.Hello("", cfg); err != nil {
		t.Fatal(err)
	}
	batch := edges[:1024]
	send := func() {
		if err := c.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		send() // warm every reusable buffer on both sides
	}
	allocs := testing.AllocsPerRun(100, send)
	if allocs > 0.5 {
		t.Fatalf("steady-state edge batch allocates %.1f objects, want 0", allocs)
	}

	// The coalesced path holds too: a burst of batches queues locally (the
	// 8×~4KiB frames stay under the write threshold), ships as one write at
	// Sync, and the flush round trip drains it — still zero allocations.
	burst := func() {
		for i := 0; i < 8; i++ {
			if err := c.SendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		burst()
	}
	allocs = testing.AllocsPerRun(50, burst)
	if allocs > 0.5 {
		t.Fatalf("steady-state coalesced burst allocates %.1f objects, want 0", allocs)
	}
}

// TestServeConcurrentSessionsRace runs many simultaneous sessions — plain
// and ensemble — through one server under the race detector. Every session
// with the same seed must produce the same bytes.
func TestServeConcurrentSessionsRace(t *testing.T) {
	edges := testEdges(t)
	srv := startServer(t, ServerConfig{})
	const sessions = 16
	cfg := Config{Algo: "kk", N: testN, M: testM, StreamLen: len(edges), Seed: testSeed, Copies: 4}
	want := localReference(t, cfg, edges).Fingerprint()

	var wg sync.WaitGroup
	fps := make([]uint64, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.Timeout = 60 * time.Second
			if _, err := c.Hello(fmt.Sprintf("race-%d", i), cfg); err != nil {
				errs[i] = err
				return
			}
			fd := Feeder{Edges: edges, Batch: 256 + 64*i} // varied batching must not matter
			res, err := fd.Run(c)
			if err != nil {
				errs[i] = err
				return
			}
			fps[i] = res.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if fps[i] != want {
			t.Fatalf("session %d fingerprint %#x, want %#x", i, fps[i], want)
		}
	}
}
