package serve

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/serve/store"
)

// testCluster is an in-process cluster: one shared SCSTOR1 store server,
// n scserve-shaped shards each holding a ClusterStore client for it, and
// a router over the shard set.
type testCluster struct {
	router *Router
	shards map[string]*Server // shard address -> its server
}

func startCluster(t testing.TB, n int) *testCluster {
	t.Helper()
	storeSrv, err := store.NewStoreServer(store.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := storeSrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go storeSrv.Serve()
	t.Cleanup(func() { storeSrv.Close() })

	tc := &testCluster{shards: make(map[string]*Server, n)}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv := startServer(t, ServerConfig{
			Store: store.NewClusterStore(storeSrv.Addr(), 10*time.Second),
		})
		tc.shards[srv.Addr()] = srv
		addrs = append(addrs, srv.Addr())
	}
	r, err := NewRouter(RouterConfig{
		Addr:         "127.0.0.1:0",
		Shards:       addrs,
		DialTimeout:  5 * time.Second,
		DownCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("router serve: %v", err)
		}
	})
	tc.router = r
	return tc
}

// killShard shuts one shard down, checkpointing its sessions into the
// shared store — the in-process equivalent of SIGTERM on an scserve.
func (tc *testCluster) killShard(t testing.TB, addr string) {
	t.Helper()
	srv, ok := tc.shards[addr]
	if !ok {
		t.Fatalf("no shard at %q", addr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("killing shard %s: %v", addr, err)
	}
}

func dialRouter(t testing.TB, tc *testCluster) *Client {
	t.Helper()
	c, err := Dial(tc.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.Timeout = 30 * time.Second
	return c
}

// TestRouterSessionMatchesLocalRun: a session fed through the router is
// byte-identical to a local run — the splice adds nothing and loses
// nothing.
func TestRouterSessionMatchesLocalRun(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	want := localReference(t, cfg, edges)

	tc := startCluster(t, 3)
	c := dialRouter(t, tc)
	if _, err := c.Hello("routed-session", cfg); err != nil {
		t.Fatal(err)
	}
	fd := Feeder{Edges: edges, Batch: 500}
	res, err := fd.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != want.Fingerprint() {
		t.Fatalf("routed fingerprint %016x != local %016x", res.Fingerprint(), want.Fingerprint())
	}
}

// TestRouterMintedTokensSpread: empty-token hellos round-robin across the
// shards (held open concurrently, each of 3 sessions lands on its own
// shard), and the shared store keeps the minted tokens distinct even
// though every shard's counter starts at zero.
func TestRouterMintedTokensSpread(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	tc := startCluster(t, 3)

	tokens := make(map[string]bool)
	for i := 0; i < 3; i++ {
		c := dialRouter(t, tc)
		tok, err := c.Hello("", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tokens[tok] {
			t.Fatalf("router session %d got duplicate minted token %q", i, tok)
		}
		tokens[tok] = true
	}
	for addr, srv := range tc.shards {
		if got := srv.Manager().Active(); got != 1 {
			t.Errorf("shard %s holds %d active sessions, want 1 (round-robin spread)", addr, got)
		}
	}
}

// TestRouterCrossShardAdoption is the tentpole invariant end to end, in
// process: place a session, feed half, kill its shard, resume through the
// router — a survivor adopts the checkpoint from the shared store — and
// the final fingerprint is byte-identical to an uninterrupted run, with
// the trace ID surviving the hop.
func TestRouterCrossShardAdoption(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	want := localReference(t, cfg, edges)

	tc := startCluster(t, 3)
	const token = "adopt-me"
	owner := tc.router.ShardFor(token)
	if owner == "" {
		t.Fatal("ring placed the token nowhere")
	}

	c1 := dialRouter(t, tc)
	if _, err := c1.Hello(token, cfg); err != nil {
		t.Fatal(err)
	}
	trace := c1.Trace
	if trace.IsZero() {
		t.Fatal("hello ack carried no trace")
	}
	half := len(edges) / 2
	fd := Feeder{Edges: edges, Batch: 500}
	if err := fd.RunUntil(c1, half); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill the owner. Shutdown waits for its handlers, so the detach
	// checkpoint is durably in the shared store when this returns.
	tc.killShard(t, owner)

	c2 := dialRouter(t, tc)
	c2.Trace = obs.TraceID{}
	pos, err := c2.Resume(token, cfg)
	if err != nil {
		t.Fatalf("resume after shard kill: %v", err)
	}
	if pos != half {
		t.Fatalf("resume position %d, want %d", pos, half)
	}
	if c2.Trace != trace {
		t.Fatalf("trace did not survive adoption: %s != %s", c2.Trace, trace)
	}
	res, err := fd.Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != want.Fingerprint() {
		t.Fatalf("adopted fingerprint %016x != uninterrupted %016x", res.Fingerprint(), want.Fingerprint())
	}
}

// TestRouterAllShardsDead: with every shard down the router replies with a
// shutdown-class error frame instead of hanging or dropping the
// connection silently.
func TestRouterAllShardsDead(t *testing.T) {
	edges := testEdges(t)
	cfg := testConfig(edges)
	tc := startCluster(t, 2)
	for addr := range tc.shards {
		tc.killShard(t, addr)
	}
	c := dialRouter(t, tc)
	_, err := c.Hello("doomed", cfg)
	if err == nil {
		t.Fatal("hello succeeded with every shard dead")
	}
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("error %v is not the shutdown class", err)
	}
}

// TestRouterRejectsGarbage: a connection that is not SCWIRE1 gets an error
// frame (or a drop), never a splice.
func TestRouterRejectsGarbage(t *testing.T) {
	tc := startCluster(t, 1)
	conn, err := net.Dial("tcp", tc.router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	// Either the router closed the connection (n == 0) or it sent an
	// SCWIRE1 error frame; both are acceptable, a splice is not. An error
	// frame starts with a 4-byte length and frameError type.
	if n >= 5 && buf[4] != frameError {
		t.Fatalf("router replied with non-error frame type 0x%02x to garbage", buf[4])
	}
}

// TestRouterConfigValidation pins constructor errors.
func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("NewRouter with no shards succeeded")
	}
	if _, err := NewRouter(RouterConfig{Shards: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("NewRouter with duplicate shards succeeded")
	}
}
