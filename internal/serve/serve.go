package serve

import (
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/serve/lifecycle"
	"streamcover/internal/serve/store"
	"streamcover/internal/stream"
)

// The serve package is the transport layer of a three-layer stack — see
// the package documentation. The session state machine lives in
// internal/serve/lifecycle and checkpoint persistence in
// internal/serve/store; the aliases below keep this package's surface the
// one-stop API it has always been, so callers (scserve, scfeed, the root
// streamcover exports) import exactly one serving package.

// Config is the shape of one session's algorithm. See lifecycle.Config.
type Config = lifecycle.Config

// Result is a finished session's complete observable output, including
// its golden Fingerprint. See lifecycle.Result.
type Result = lifecycle.Result

// Manager owns the server's multi-tenant session state. See
// lifecycle.Manager.
type Manager = lifecycle.Manager

// Session is one running algorithm instance behind its ingest ring. See
// lifecycle.Session.
type Session = lifecycle.Session

// Factory builds one algorithm copy for a session configuration. See
// lifecycle.Factory.
type Factory = lifecycle.Factory

// CheckpointStore persists detach checkpoints. See store.CheckpointStore.
type CheckpointStore = store.CheckpointStore

// StoreServer serves a CheckpointStore over the SCSTOR1 protocol. See
// store.StoreServer.
type StoreServer = store.StoreServer

// MaxBatch is the largest number of edges one edges frame may carry.
const MaxBatch = lifecycle.MaxBatch

// Typed session-layer errors, re-exported so transport callers keep a
// single import.
var (
	// ErrSessionActive reports a hello or resume naming a token that is
	// currently attached to another connection.
	ErrSessionActive = lifecycle.ErrSessionActive
	// ErrUnknownSession reports a resume naming a token with no checkpoint
	// in the store.
	ErrUnknownSession = lifecycle.ErrUnknownSession
	// ErrToken reports a client-chosen session token outside the
	// filename-safe alphabet.
	ErrToken = lifecycle.ErrToken
	// ErrCheckpointNotFound is the store layer's typed not-found error.
	ErrCheckpointNotFound = store.ErrNotFound
)

// Register adds (or replaces) an algorithm factory under the given name.
func Register(name string, f Factory) { lifecycle.Register(name, f) }

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string { return lifecycle.Algorithms() }

// Build constructs the session algorithm for cfg.
func Build(cfg Config) (stream.Algorithm, error) { return lifecycle.Build(cfg) }

// NewManager creates a session manager persisting detach checkpoints in
// st. so may be nil to disable instrumentation.
func NewManager(st store.CheckpointStore, so *obs.ServeObs) (*Manager, error) {
	return lifecycle.NewManager(st, so)
}

// NewFileStore opens (creating if absent) the atomic-file directory store
// — the durable backend, byte-compatible with the pre-store `<token>.ckpt`
// layout.
func NewFileStore(dir string) (*store.FileStore, error) { return store.NewFileStore(dir) }

// NewMemStore returns the in-process checkpoint store: dirless and fast
// for tests, non-durable across processes.
func NewMemStore() *store.MemStore { return store.NewMemStore() }

// NewClusterStore returns the shared cluster store client: a
// CheckpointStore speaking SCSTOR1 to a store server every shard reaches,
// which is what lets any shard adopt any session's checkpoint. timeout
// bounds each round trip (0 picks store.DefaultStoreTimeout).
func NewClusterStore(addr string, timeout time.Duration) *store.ClusterStore {
	return store.NewClusterStore(addr, timeout)
}

// NewStoreServer wraps a backing store for SCSTOR1 network service — the
// shared-store side of the cluster tier.
func NewStoreServer(backing store.CheckpointStore) (*store.StoreServer, error) {
	return store.NewStoreServer(backing)
}
