package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/serve/ring"
)

// Router is the cluster's front door: it accepts SCWIRE1 connections,
// reads exactly the magic and the opening hello/resume frame, places the
// session on a shard via the consistent-hash ring keyed by its resume
// token, and splices the connection — the shard speaks the rest of the
// protocol with the client directly, byte for byte.
//
// Placement is locality, not correctness: every shard reaches the same
// shared checkpoint store, so when the ring's first choice is dead the
// router fails over to the next owner in ring order and the chosen shard
// adopts the session's checkpoint. A dead shard is remembered for a
// cooldown so a burst of reconnects does not pay a dial timeout each; it
// is re-probed after the cooldown, so a restarted shard rejoins without
// operator action.
//
// Empty-token hellos (the server mints the token) carry nothing to hash,
// and the shared store makes every shard equally able to host them, so
// they round-robin across live shards.
type Router struct {
	cfg  RouterConfig
	robs *obs.RouterObs

	mu     sync.Mutex
	ring   *ring.Ring
	downAt map[string]time.Time // shard -> when its last dial failed
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	rr uint64 // round-robin cursor for empty-token hellos
	wg sync.WaitGroup
}

// RouterConfig shapes one Router.
type RouterConfig struct {
	// Addr is the TCP listen address (":0" picks a free port).
	Addr string
	// Shards are the scserve addresses forming the ring.
	Shards []string
	// Replicas is the ring's virtual-node count per shard (0 picks
	// ring.DefaultReplicas).
	Replicas int
	// DialTimeout bounds each backend dial (0 picks 5s).
	DialTimeout time.Duration
	// DownCooldown is how long a shard that failed a dial is skipped
	// before being re-probed (0 picks 2s).
	DownCooldown time.Duration
	// Obs instruments placements; nil disables instrumentation.
	Obs *obs.RouterObs
	// Log receives connection-level diagnostics; nil discards them.
	Log *log.Logger
}

// NewRouter builds a router over the given shard set.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("serve: router needs at least one shard")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.DownCooldown <= 0 {
		cfg.DownCooldown = 2 * time.Second
	}
	r := ring.New(cfg.Replicas, cfg.Shards...)
	if r.Len() != len(cfg.Shards) {
		return nil, fmt.Errorf("serve: router shard list has duplicates: %v", cfg.Shards)
	}
	return &Router{
		cfg:    cfg,
		robs:   cfg.Obs,
		ring:   r,
		downAt: make(map[string]time.Time),
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Ring exposes the placement ring (tests inspect placement directly).
func (r *Router) Ring() *ring.Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// ShardFor reports where the ring places token — the shard a connection
// for it is routed to when every shard is live. Chaos harnesses use it to
// aim kills at the shard that owns a session.
func (r *Router) ShardFor(token string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.ring.Lookup(token)
	return m
}

// Listen binds the configured address.
func (r *Router) Listen() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	return nil
}

// Addr reports the bound listen address ("" before Listen).
func (r *Router) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Serve accepts and places connections until Shutdown. It returns nil on
// graceful shutdown.
func (r *Router) Serve() error {
	r.mu.Lock()
	if r.ln == nil {
		r.mu.Unlock()
		if err := r.Listen(); err != nil {
			return err
		}
		r.mu.Lock()
	}
	ln := r.ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !r.track(conn) {
			conn.Close()
			return nil
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.untrack(conn)
			r.handle(conn)
		}()
	}
}

// Shutdown closes the listener and severs every splice, waiting (bounded
// by ctx) for handlers to finish. The shards behind the router detach the
// severed sessions with checkpoints — the router holds no session state.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	if r.ln != nil {
		r.ln.Close()
	}
	for conn := range r.conns {
		conn.Close()
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Router) track(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conns[conn] = struct{}{}
	return true
}

func (r *Router) untrack(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		r.cfg.Log.Printf(format, args...)
	}
}

// candidates returns the shard dial order for token: ring order from the
// token's position for named tokens, round-robin over the membership for
// empty ones (a mint hello has nothing to hash, and any shard can host
// it).
func (r *Router) candidates(token string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if token != "" {
		return r.ring.Owners(token, 0)
	}
	members := r.ring.Members()
	if len(members) == 0 {
		return nil
	}
	start := int(atomic.AddUint64(&r.rr, 1)-1) % len(members)
	out := make([]string, 0, len(members))
	for i := 0; i < len(members); i++ {
		out = append(out, members[(start+i)%len(members)])
	}
	return out
}

// skipDown reports whether shard is inside its down cooldown.
func (r *Router) skipDown(shard string, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, down := r.downAt[shard]
	return down && now.Sub(at) < r.cfg.DownCooldown
}

// markDown records a failed dial; markUp clears it after a success.
func (r *Router) markDown(shard string) {
	r.mu.Lock()
	r.downAt[shard] = time.Now()
	r.mu.Unlock()
}

func (r *Router) markUp(shard string) {
	r.mu.Lock()
	delete(r.downAt, shard)
	r.mu.Unlock()
}

// readOpening consumes exactly the magic plus the first frame from conn —
// no over-read, because every byte after it belongs to the shard — and
// returns the raw frame bytes (header, payload, CRC trailer, verbatim for
// replay) plus the session token parsed from the hello/resume.
func readOpening(conn net.Conn) (raw []byte, token string, err error) {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		return nil, "", fmt.Errorf("reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, "", fmt.Errorf("%w: bad magic %q", ErrWire, magic[:])
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, "", fmt.Errorf("reading opening frame: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFramePayload {
		return nil, "", fmt.Errorf("%w: frame payload length %d", ErrWire, n)
	}
	raw = make([]byte, 4+int(n)+4)
	copy(raw, hdr[:])
	if _, err := io.ReadFull(conn, raw[4:]); err != nil {
		return nil, "", fmt.Errorf("%w: truncated opening frame: %v", ErrWire, err)
	}
	payload, trailer := raw[4:4+n], raw[4+n:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, "", fmt.Errorf("%w: opening frame checksum mismatch", ErrWire)
	}
	switch payload[0] {
	case frameHello, frameResume:
		tok, _, _, _, perr := parseHello(payload[1:])
		if perr != nil {
			return nil, "", perr
		}
		return raw, tok, nil
	default:
		return nil, "", fmt.Errorf("%w: connection must open with hello or resume, got frame 0x%02x", ErrWire, payload[0])
	}
}

// handle places one client connection and splices it to its shard.
func (r *Router) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(r.cfg.DialTimeout))
	raw, token, err := readOpening(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		r.logf("router: %s: %v", conn.RemoteAddr(), err)
		if errors.Is(err, ErrWire) {
			f := newFrameIO(conn)
			f.writeError(codeBadFrame, err.Error())
		}
		return
	}

	backend, failedOver, err := r.dialShard(token, raw)
	if err != nil {
		r.logf("router: %s: token %q: %v", conn.RemoteAddr(), token, err)
		r.robs.Reject()
		f := newFrameIO(conn)
		f.writeError(codeShutdown, "router: no live shard: "+err.Error())
		return
	}
	defer backend.Close()
	if !r.track(backend) { // shutdown raced the dial
		return
	}
	defer r.untrack(backend)
	r.robs.Placement(failedOver)
	defer r.robs.SpliceDone()

	// Splice: bytes flow verbatim in both directions until either side
	// closes. Half-close propagates (a client Close reaches the shard as
	// EOF, triggering its detach-with-checkpoint path) and the session
	// result flows back before the shard closes its side.
	var sw sync.WaitGroup
	sw.Add(2)
	go func() {
		defer sw.Done()
		proxyCopy(backend, conn)
	}()
	go func() {
		defer sw.Done()
		proxyCopy(conn, backend)
	}()
	sw.Wait()
}

// dialShard walks token's candidate shards in ring order, skipping shards
// inside their down cooldown, and returns a connected backend with the
// magic and opening frame already replayed to it.
func (r *Router) dialShard(token string, raw []byte) (net.Conn, bool, error) {
	now := time.Now()
	failedOver := false
	var lastErr error
	for _, shard := range r.candidates(token) {
		if r.skipDown(shard, now) {
			failedOver = true
			continue
		}
		backend, err := net.DialTimeout("tcp", shard, r.cfg.DialTimeout)
		if err != nil {
			r.logf("router: shard %s unreachable: %v", shard, err)
			r.markDown(shard)
			failedOver = true
			lastErr = err
			continue
		}
		r.markUp(shard)
		backend.SetWriteDeadline(now.Add(r.cfg.DialTimeout))
		if _, err := backend.Write([]byte(Magic)); err == nil {
			_, err = backend.Write(raw)
		}
		if err != nil {
			backend.Close()
			r.markDown(shard)
			failedOver = true
			lastErr = err
			continue
		}
		backend.SetWriteDeadline(time.Time{})
		return backend, failedOver, nil
	}
	if lastErr == nil {
		lastErr = errors.New("all shards in cooldown")
	}
	return nil, failedOver, lastErr
}

// proxyCopy streams src into dst, then half-closes dst's write side so
// EOF propagates without tearing down the opposite direction.
func proxyCopy(dst, src net.Conn) {
	io.Copy(dst, src)
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		dst.Close()
	}
}
