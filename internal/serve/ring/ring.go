// Package ring is the placement layer of the serving cluster: a
// consistent-hash ring mapping session tokens to shard members so that a
// fixed membership places every token deterministically, load spreads
// evenly across members, and a membership change moves only ~1/n of the
// token space. The router keys the ring by the existing resume token —
// the same identity that keys checkpoints in the shared store — so the
// shard a resume routes to is a pure function of (token, live membership),
// and any shard the ring picks can adopt the session's checkpoint.
//
// The ring is deliberately a value-semantics data structure with no
// locking or I/O: the router owns one under its own mutex, tests drive it
// directly, and the SCRING1 codec snapshots membership for logging,
// diagnostics and cross-process exchange.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// DefaultReplicas is the virtual-node count per member when New is given
// zero. 128 vnodes keeps the max/mean load ratio tight (see the balance
// property test) while the ring stays small enough that rebuilding it on a
// membership change is microseconds.
const DefaultReplicas = 128

// maxMemberLen bounds one member name in the SCRING1 codec, so a corrupt
// length prefix cannot provoke a pathological allocation.
const maxMemberLen = 256

// ErrCodec reports malformed SCRING1 bytes: bad magic, bad CRC, truncated
// or oversized fields.
var ErrCodec = errors.New("ring: bad SCRING1 encoding")

// ringMagic opens every SCRING1 snapshot.
const ringMagic = "SCRING1\n"

// vnode is one virtual point on the ring: a hash position owned by a
// member.
type vnode struct {
	hash  uint64
	owner int // index into members
}

// Ring is a consistent-hash ring over named members (shard addresses).
// Not safe for concurrent use; the router guards its ring with its own
// mutex and tests drive it single-threaded.
type Ring struct {
	replicas int
	members  []string // sorted member names
	vnodes   []vnode  // sorted by hash
}

// New builds a ring with the given virtual-node count per member
// (0 picks DefaultReplicas) and initial membership. Duplicate members
// collapse to one.
func New(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// Replicas reports the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the membership, sorted. The slice is a copy.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Add inserts a member (no-op if present). Placement of tokens not owned
// by the new member is unchanged — the minimal-movement property the
// property tests pin.
func (r *Ring) Add(member string) {
	if member == "" || r.Has(member) {
		return
	}
	r.members = append(r.members, member)
	sort.Strings(r.members)
	r.rebuild()
}

// Remove deletes a member (no-op if absent). Tokens it owned redistribute
// across the survivors; every other token keeps its owner.
func (r *Ring) Remove(member string) {
	i := sort.SearchStrings(r.members, member)
	if i >= len(r.members) || r.members[i] != member {
		return
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	r.rebuild()
}

// rebuild regenerates the vnode table from the member list. Vnode hashes
// depend only on (member, replica index), so the same membership always
// yields the same ring regardless of insertion order.
func (r *Ring) rebuild() {
	r.vnodes = r.vnodes[:0]
	if cap(r.vnodes) < len(r.members)*r.replicas {
		r.vnodes = make([]vnode, 0, len(r.members)*r.replicas)
	}
	for mi, m := range r.members {
		for i := 0; i < r.replicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: vnodeHash(m, i), owner: mi})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		va, vb := r.vnodes[a], r.vnodes[b]
		if va.hash != vb.hash {
			return va.hash < vb.hash
		}
		// Hash ties (astronomically rare) break by owner so placement
		// stays deterministic for a fixed membership.
		return va.owner < vb.owner
	})
}

// Lookup places token on its owning member. ok is false on an empty ring.
func (r *Ring) Lookup(token string) (member string, ok bool) {
	if len(r.vnodes) == 0 {
		return "", false
	}
	i := r.search(tokenHash(token))
	return r.members[r.vnodes[i].owner], true
}

// Owners returns up to n distinct members in ring order starting from
// token's position: the placement target first, then the failover
// sequence a router walks when the target is unreachable. n <= 0 returns
// every member in ring order from the token.
func (r *Ring) Owners(token string, n int) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	start := r.search(tokenHash(token))
	for i := 0; len(out) < n && i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.owner] {
			seen[v.owner] = true
			out = append(out, r.members[v.owner])
		}
	}
	return out
}

// search finds the first vnode at or clockwise-after h (wrapping).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		return 0
	}
	return i
}

// tokenHash maps a session token to its ring position. FNV-1a mixed
// through a splitmix64 finalizer: FNV alone clusters sequential tokens
// (s000001, s000002, ...) into nearby positions; the finalizer spreads
// them uniformly.
func tokenHash(token string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(token); i++ {
		h = (h ^ uint64(token[i])) * 1099511628211
	}
	return mix64(h)
}

// vnodeHash positions replica i of a member on the ring.
func vnodeHash(member string, i int) uint64 {
	h := uint64(14695981039346656037)
	for j := 0; j < len(member); j++ {
		h = (h ^ uint64(member[j])) * 1099511628211
	}
	h = (h ^ uint64(i)) * 1099511628211
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Encode snapshots the ring's membership as SCRING1 bytes: magic, uvarint
// replica count, uvarint member count, length-prefixed members, CRC-32
// trailer over everything after the magic. Decode(Encode(r)) reproduces
// placement exactly — the vnode table is a pure function of what is
// encoded.
func (r *Ring) Encode() []byte {
	b := []byte(ringMagic)
	body := binary.AppendUvarint(nil, uint64(r.replicas))
	body = binary.AppendUvarint(body, uint64(len(r.members)))
	for _, m := range r.members {
		body = binary.AppendUvarint(body, uint64(len(m)))
		body = append(body, m...)
	}
	b = append(b, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(b, crc[:]...)
}

// Decode rebuilds a ring from SCRING1 bytes, rejecting bad magic, a CRC
// mismatch, truncation, trailing bytes, oversized fields and duplicate
// members.
func Decode(b []byte) (*Ring, error) {
	if len(b) < len(ringMagic)+4 || string(b[:len(ringMagic)]) != ringMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	body, trailer := b[len(ringMagic):len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCodec)
	}
	replicas, n := binary.Uvarint(body)
	if n <= 0 || replicas == 0 || replicas > 1<<16 {
		return nil, fmt.Errorf("%w: replica count", ErrCodec)
	}
	body = body[n:]
	count, n := binary.Uvarint(body)
	if n <= 0 || count > 1<<16 {
		return nil, fmt.Errorf("%w: member count", ErrCodec)
	}
	body = body[n:]
	members := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(body)
		if n <= 0 || l == 0 || l > maxMemberLen || l > uint64(len(body)-n) {
			return nil, fmt.Errorf("%w: member %d length", ErrCodec, i)
		}
		body = body[n:]
		members = append(members, string(body[:l]))
		body = body[l:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(body))
	}
	r := New(int(replicas), members...)
	if r.Len() != int(count) {
		return nil, fmt.Errorf("%w: duplicate members", ErrCodec)
	}
	return r, nil
}
