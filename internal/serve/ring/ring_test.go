package ring

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// testTokens generates a deterministic mixed token population: the
// sequential server-minted shapes (s000001...) that FNV alone would
// cluster, plus client-chosen names.
func testTokens(n int) []string {
	toks := make([]string, 0, n)
	for i := 0; len(toks) < n; i++ {
		switch i % 3 {
		case 0:
			toks = append(toks, fmt.Sprintf("s%06d", i))
		case 1:
			toks = append(toks, fmt.Sprintf("cl%04d", i))
		default:
			toks = append(toks, fmt.Sprintf("session-%x", uint64(i)*0x9e3779b97f4a7c15))
		}
	}
	return toks[:n]
}

func shards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 7600+i)
	}
	return out
}

// TestRingBalance pins the load-spread property the cluster's capacity
// planning rests on: across 1–64 shards at the default vnode count, the
// most-loaded shard carries at most twice the mean (empirically ~1.3x;
// the bound leaves slack so the test is not brittle to the hash).
func TestRingBalance(t *testing.T) {
	tokens := testTokens(20000)
	for _, n := range []int{1, 2, 3, 4, 8, 16, 32, 64} {
		r := New(0, shards(n)...)
		counts := make(map[string]int, n)
		for _, tok := range tokens {
			m, ok := r.Lookup(tok)
			if !ok {
				t.Fatalf("n=%d: Lookup failed on a populated ring", n)
			}
			counts[m]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d shards received tokens", n, len(counts))
		}
		mean := float64(len(tokens)) / float64(n)
		for m, c := range counts {
			if ratio := float64(c) / mean; ratio > 2.0 {
				t.Errorf("n=%d: shard %s carries %.2fx the mean load (%d tokens)", n, m, ratio, c)
			}
		}
	}
}

// TestRingDeterministic: placement is a pure function of (token,
// membership) — identical across ring instances, insertion orders and an
// Encode/Decode round trip.
func TestRingDeterministic(t *testing.T) {
	members := shards(5)
	a := New(0, members...)
	b := New(0, members[4], members[2], members[0], members[3], members[1])
	c, err := Decode(a.Encode())
	if err != nil {
		t.Fatalf("Decode(Encode): %v", err)
	}
	for _, tok := range testTokens(2000) {
		ma, _ := a.Lookup(tok)
		mb, _ := b.Lookup(tok)
		mc, _ := c.Lookup(tok)
		if ma != mb || ma != mc {
			t.Fatalf("placement of %q differs: %s / %s (reordered) / %s (decoded)", tok, ma, mb, mc)
		}
	}
}

// TestRingMinimalMovementOnJoin: adding a shard to an n-shard ring moves
// ~1/(n+1) of tokens, and every moved token moves TO the new shard —
// no token shuffles between survivors.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	tokens := testTokens(20000)
	for _, n := range []int{1, 2, 3, 7, 15, 31} {
		r := New(0, shards(n)...)
		before := make(map[string]string, len(tokens))
		for _, tok := range tokens {
			before[tok], _ = r.Lookup(tok)
		}
		joined := fmt.Sprintf("127.0.0.1:%d", 9000+n)
		r.Add(joined)
		moved := 0
		for _, tok := range tokens {
			after, _ := r.Lookup(tok)
			if after != before[tok] {
				moved++
				if after != joined {
					t.Fatalf("n=%d: token %q moved %s -> %s, not to the joining shard", n, tok, before[tok], after)
				}
			}
		}
		expect := float64(len(tokens)) / float64(n+1)
		if f := float64(moved); f < 0.5*expect || f > 2.0*expect {
			t.Errorf("n=%d: join moved %d tokens, want ~%.0f (1/%d of the space)", n, moved, expect, n+1)
		}
	}
}

// TestRingMinimalMovementOnLeave: removing a shard reassigns exactly the
// tokens it owned; every other token keeps its owner. This is the
// property cross-shard drain rests on — a SIGTERM'd shard's sessions
// redistribute, everyone else's placement is untouched.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	tokens := testTokens(20000)
	for _, n := range []int{2, 3, 8, 16} {
		members := shards(n)
		r := New(0, members...)
		before := make(map[string]string, len(tokens))
		for _, tok := range tokens {
			before[tok], _ = r.Lookup(tok)
		}
		gone := members[n/2]
		r.Remove(gone)
		for _, tok := range tokens {
			after, _ := r.Lookup(tok)
			if before[tok] == gone {
				if after == gone {
					t.Fatalf("n=%d: token %q still places on the removed shard", n, tok)
				}
			} else if after != before[tok] {
				t.Fatalf("n=%d: token %q moved %s -> %s though its shard survived", n, tok, before[tok], after)
			}
		}
	}
}

// TestRingOwners: the failover sequence starts with the Lookup placement,
// lists distinct members only, and covers the whole membership.
func TestRingOwners(t *testing.T) {
	r := New(0, shards(5)...)
	for _, tok := range testTokens(200) {
		first, _ := r.Lookup(tok)
		owners := r.Owners(tok, 0)
		if len(owners) != 5 {
			t.Fatalf("Owners(%q) returned %d members, want 5", tok, len(owners))
		}
		if owners[0] != first {
			t.Fatalf("Owners(%q)[0] = %s, Lookup = %s", tok, owners[0], first)
		}
		seen := map[string]bool{}
		for _, m := range owners {
			if seen[m] {
				t.Fatalf("Owners(%q) repeats %s", tok, m)
			}
			seen[m] = true
		}
		if got := r.Owners(tok, 2); len(got) != 2 || got[0] != owners[0] || got[1] != owners[1] {
			t.Fatalf("Owners(%q, 2) = %v, want prefix of %v", tok, got, owners)
		}
	}
}

// TestRingMembership covers the member-set bookkeeping: idempotent Add,
// no-op Remove of absent members, empty-ring Lookup.
func TestRingMembership(t *testing.T) {
	r := New(4)
	if _, ok := r.Lookup("tok"); ok {
		t.Fatal("Lookup succeeded on an empty ring")
	}
	if r.Owners("tok", 3) != nil {
		t.Fatal("Owners returned members on an empty ring")
	}
	r.Add("a")
	r.Add("a")
	r.Add("") // empty member names are ignored
	if got := r.Members(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Members = %v, want [a]", got)
	}
	r.Remove("absent")
	if r.Len() != 1 || !r.Has("a") {
		t.Fatalf("Remove(absent) changed membership: %v", r.Members())
	}
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("ring not empty after removing its only member: %v", r.Members())
	}
}

// TestRingCodecRoundTrip pins the SCRING1 snapshot format: membership and
// replica count survive, and corruption in any byte is rejected.
func TestRingCodecRoundTrip(t *testing.T) {
	r := New(32, "10.0.0.1:7600", "10.0.0.2:7600", "10.0.0.3:7600")
	enc := r.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replicas() != 32 || !reflect.DeepEqual(got.Members(), r.Members()) {
		t.Fatalf("round trip lost state: replicas=%d members=%v", got.Replicas(), got.Members())
	}
	// Any single flipped byte must fail (magic, body, or CRC).
	for i := range enc {
		bad := bytes.Clone(enc)
		bad[i] ^= 0xFF
		if _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted a corrupted snapshot (byte %d flipped)", i)
		}
	}
	for _, truncated := range [][]byte{nil, enc[:4], enc[:len(enc)-1], enc[:len(ringMagic)]} {
		if _, err := Decode(truncated); err == nil {
			t.Fatalf("Decode accepted truncated input of %d bytes", len(truncated))
		}
	}
	if _, err := Decode(append(bytes.Clone(enc), 0)); err == nil {
		t.Fatal("Decode accepted trailing garbage")
	}
}

// FuzzRingCodec hammers Decode with arbitrary bytes (it must never panic
// or over-allocate) and pins that whatever decodes re-encodes to an
// equivalent ring.
func FuzzRingCodec(f *testing.F) {
	f.Add([]byte(ringMagic))
	f.Add(New(0, "a", "b").Encode())
	f.Add(New(1, "127.0.0.1:7600").Encode())
	f.Add(New(512, "x", "y", "z").Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(r.Encode())
		if err != nil {
			t.Fatalf("re-decode of a valid ring failed: %v", err)
		}
		if again.Replicas() != r.Replicas() || !reflect.DeepEqual(again.Members(), r.Members()) {
			t.Fatalf("Encode/Decode not stable: %v/%d vs %v/%d",
				r.Members(), r.Replicas(), again.Members(), again.Replicas())
		}
	})
}
