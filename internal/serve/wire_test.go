package serve

import (
	"bytes"
	"errors"
	"testing"

	"streamcover/internal/obs"
	"streamcover/internal/serve/store"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// roundTrip writes one frame through a frameIO and reads it back, checking
// the declared type.
func roundTrip(t *testing.T, write func(f *frameIO) error, wantType byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	f := newFrameIO(&buf)
	if err := write(f); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	payload, err := f.readFrame()
	if err != nil {
		t.Fatalf("read frame back: %v", err)
	}
	if payload[0] != wantType {
		t.Fatalf("frame type %#02x, want %#02x", payload[0], wantType)
	}
	return payload[1:]
}

func TestWireHelloRoundTrip(t *testing.T) {
	want := Config{Algo: "alg2", N: 300, M: 4000, StreamLen: 60150, Seed: 42, Copies: 8, Alpha: 37.5}
	wantTrace := obs.NewTraceID()
	body := roundTrip(t, func(f *frameIO) error {
		return f.writeHello(frameHello, protoV2, "sess-1", wantTrace, want)
	}, frameHello)
	token, trace, ver, got, err := parseHello(body)
	if err != nil {
		t.Fatalf("parseHello: %v", err)
	}
	if token != "sess-1" || got != want || trace != wantTrace || ver != protoV2 {
		t.Fatalf("got token %q ver %d trace %v cfg %+v, want %q %d %v %+v",
			token, ver, trace, got, "sess-1", protoV2, wantTrace, want)
	}
}

// TestWireHelloVersionNegotiation pins both compatibility directions of the
// v2 handshake: an old client's v1 hello (no trace field) parses on a new
// server, and frames claiming unknown versions are rejected.
func TestWireHelloVersionNegotiation(t *testing.T) {
	want := Config{Algo: "kk", N: 30, M: 40, StreamLen: 100, Seed: 9}

	// Old client: version 1, no trace bytes — exactly what pre-trace
	// binaries put on the wire.
	body := roundTrip(t, func(f *frameIO) error {
		return f.writeHello(frameHello, protoV1, "old-sess", obs.NewTraceID(), want)
	}, frameHello)
	token, trace, ver, got, err := parseHello(body)
	if err != nil {
		t.Fatalf("v1 hello rejected by new server: %v", err)
	}
	if token != "old-sess" || got != want || ver != protoV1 || !trace.IsZero() {
		t.Fatalf("v1 hello parsed as token %q ver %d trace %v cfg %+v", token, ver, trace, got)
	}

	// Unknown versions fail typed, on both ends.
	var f frameIO
	if err := f.writeHello(frameHello, protoV2+1, "x", obs.TraceID{}, want); !errors.Is(err, ErrWire) {
		t.Fatalf("writeHello accepted version %d: %v", protoV2+1, err)
	}
	bad := roundTrip(t, func(f *frameIO) error {
		f.beginFrame(frameHello)
		f.appendU64(uint64(protoV2 + 1))
		f.appendString("x")
		return f.endFrame()
	}, frameHello)
	if _, _, _, _, err := parseHello(bad); !errors.Is(err, ErrWire) {
		t.Fatalf("parseHello accepted version %d: %v", protoV2+1, err)
	}

	// A v2 hello truncated inside the trace field fails typed.
	short := roundTrip(t, func(f *frameIO) error {
		f.beginFrame(frameHello)
		f.appendU64(protoV2)
		f.appendString("x")
		f.out = append(f.out, 0xAB, 0xCD) // 2 of the 16 trace bytes
		return f.endFrame()
	}, frameHello)
	if _, _, _, _, err := parseHello(short); !errors.Is(err, ErrWire) {
		t.Fatalf("truncated trace field accepted: %v", err)
	}
}

// TestWireHelloAckCompat pins the ack formats: a new client parses both the
// old two-field ack and the v2 ack with the trailing trace.
func TestWireHelloAckCompat(t *testing.T) {
	// Old server's ack: token + pos only.
	body := roundTrip(t, func(f *frameIO) error {
		return f.writeHelloAck("tok", 500, obs.TraceID{})
	}, frameHelloAck)
	token, pos, trace, err := parseHelloAck(body, "")
	if err != nil {
		t.Fatalf("old-format ack rejected: %v", err)
	}
	if token != "tok" || pos != 500 || !trace.IsZero() {
		t.Fatalf("old ack parsed as %q/%d/%v", token, pos, trace)
	}

	// New server's ack to a v2 client: trace rides at the end.
	want := obs.NewTraceID()
	body = roundTrip(t, func(f *frameIO) error {
		return f.writeHelloAck("tok", 500, want)
	}, frameHelloAck)
	token, pos, trace, err = parseHelloAck(body, "")
	if err != nil {
		t.Fatalf("v2 ack rejected: %v", err)
	}
	if token != "tok" || pos != 500 || trace != want {
		t.Fatalf("v2 ack parsed as %q/%d/%v, want trace %v", token, pos, trace, want)
	}

	// An ack with a mangled tail (neither 0 nor 16 trailing bytes) fails.
	bad := roundTrip(t, func(f *frameIO) error {
		f.beginFrame(frameHelloAck)
		f.appendString("tok")
		f.appendU64(500)
		f.out = append(f.out, 1, 2, 3)
		return f.endFrame()
	}, frameHelloAck)
	if _, _, _, err := parseHelloAck(bad, ""); !errors.Is(err, ErrWire) {
		t.Fatalf("mangled ack tail accepted: %v", err)
	}
}

func TestWireEdgesRoundTrip(t *testing.T) {
	edges := []stream.Edge{{Set: 0, Elem: 0}, {Set: 3999, Elem: 299}, {Set: 17, Elem: 80}}
	body := roundTrip(t, func(f *frameIO) error { return f.writeEdges(edges) }, frameEdges)
	dst := make([]stream.Edge, MaxBatch)
	n, err := parseEdgesInto(body, dst, 300, 4000)
	if err != nil {
		t.Fatalf("parseEdgesInto: %v", err)
	}
	if n != len(edges) {
		t.Fatalf("decoded %d edges, want %d", n, len(edges))
	}
	for i := range edges {
		if dst[i] != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, dst[i], edges[i])
		}
	}
}

func TestWireEdgesRejectsOutOfShape(t *testing.T) {
	body := roundTrip(t, func(f *frameIO) error {
		return f.writeEdges([]stream.Edge{{Set: 40, Elem: 5}})
	}, frameEdges)
	dst := make([]stream.Edge, MaxBatch)
	// The edge is legal for the sender's shape but not the session's.
	if _, err := parseEdgesInto(body, dst, 300, 40); !errors.Is(err, ErrWire) {
		t.Fatalf("out-of-shape edge: got %v, want ErrWire", err)
	}
	if _, err := parseEdgesInto(body, dst, 5, 4000); !errors.Is(err, ErrWire) {
		t.Fatalf("out-of-universe edge: got %v, want ErrWire", err)
	}
}

func TestWireEdgesRejectsOversizedBatch(t *testing.T) {
	var f frameIO
	if err := f.writeEdges(make([]stream.Edge, MaxBatch+1)); !errors.Is(err, ErrWire) {
		t.Fatalf("oversized batch: got %v, want ErrWire", err)
	}
	if err := f.writeEdges(nil); !errors.Is(err, ErrWire) {
		t.Fatalf("empty batch: got %v, want ErrWire", err)
	}
}

func TestWireResultRoundTrip(t *testing.T) {
	want := Result{
		Edges: 60150,
		Cover: &setcover.Cover{
			Sets: []setcover.SetID{4, 17, 255},
			// NoSet must survive the trip: certificates carry -1 for
			// elements without a witness.
			Certificate: []setcover.SetID{4, setcover.NoSet, 17, 255},
		},
		Space: space.Usage{State: 4000, Aux: 900},
	}
	body := roundTrip(t, func(f *frameIO) error { return f.writeResult(want) }, frameResult)
	got, err := parseResult(body)
	if err != nil {
		t.Fatalf("parseResult: %v", err)
	}
	if got.Edges != want.Edges || got.Space != want.Space || !got.Cover.Equal(want.Cover) {
		t.Fatalf("result round trip: got %+v, want %+v", got, want)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint changed across the wire")
	}
}

func TestWireErrorFramesAreTyped(t *testing.T) {
	cases := []struct {
		code byte
		want error
	}{
		{codeGeneric, ErrRemote},
		{codeMismatch, ErrRemoteMismatch},
		{codeShutdown, ErrDraining},
		{codeBadFrame, ErrRemote},
	}
	for _, tc := range cases {
		body := roundTrip(t, func(f *frameIO) error {
			return f.writeError(tc.code, "boom")
		}, frameError)
		err := parseError(body)
		if !errors.Is(err, tc.want) {
			t.Fatalf("code %d: got %v, want %v", tc.code, err, tc.want)
		}
		// Every typed error is still an ErrRemote.
		if !errors.Is(err, ErrRemote) {
			t.Fatalf("code %d: %v does not wrap ErrRemote", tc.code, err)
		}
	}
}

// TestWireFrameCorruption flips, truncates and oversizes raw frames; every
// damage mode must surface ErrWire, never a panic or a silent success.
func TestWireFrameCorruption(t *testing.T) {
	encode := func() []byte {
		var buf bytes.Buffer
		f := newFrameIO(&buf)
		if err := f.writeHello(frameHello, protoV2, "tok", obs.NewTraceID(), Config{Algo: "kk", N: 3, M: 5, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := encode()

	t.Run("bit-flips", func(t *testing.T) {
		// CRC-32 catches every single-bit flip, and a flipped length prefix
		// turns into a short read or a checksum over the wrong span — so
		// every position must fail, without panicking.
		for i := range base {
			raw := append([]byte(nil), base...)
			raw[i] ^= 0x40
			f := newFrameIO(bytes.NewBuffer(raw))
			if _, err := f.readFrame(); err == nil {
				t.Fatalf("flip at byte %d accepted silently", i)
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		for cut := 1; cut < len(base); cut++ {
			f := newFrameIO(bytes.NewBuffer(base[:cut]))
			if _, err := f.readFrame(); err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
		}
	})

	t.Run("oversized-length", func(t *testing.T) {
		raw := append([]byte(nil), base...)
		raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0xff
		f := newFrameIO(bytes.NewBuffer(raw))
		if _, err := f.readFrame(); !errors.Is(err, ErrWire) {
			t.Fatalf("oversized length: got %v, want ErrWire", err)
		}
	})

	t.Run("zero-length", func(t *testing.T) {
		f := newFrameIO(bytes.NewBuffer([]byte{0, 0, 0, 0}))
		if _, err := f.readFrame(); !errors.Is(err, ErrWire) {
			t.Fatalf("zero length: got %v, want ErrWire", err)
		}
	})
}

func TestWireTrailingBytesRejected(t *testing.T) {
	var buf bytes.Buffer
	f := newFrameIO(&buf)
	f.beginFrame(frameFlush)
	f.out = append(f.out, 0xAA) // stray byte after a body-less frame
	if err := f.endFrame(); err != nil {
		t.Fatal(err)
	}
	payload, err := f.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	c := cursor{b: payload[1:]}
	if err := c.done(); !errors.Is(err, ErrWire) {
		t.Fatalf("trailing bytes: got %v, want ErrWire", err)
	}
}

// TestValidToken pins the token alphabet at the transport boundary; the
// rule itself lives in the store layer (store.ValidToken), where it guards
// every Put/Get/Delete.
func TestValidToken(t *testing.T) {
	good := []string{"a", "s000001", "T-1_x.9", "restart"}
	bad := []string{"", ".hidden", "../escape", "a/b", "a b", "tok\x00", string(make([]byte, 65))}
	for _, tok := range good {
		if !store.ValidToken(tok) {
			t.Errorf("ValidToken(%q) = false, want true", tok)
		}
	}
	for _, tok := range bad {
		if store.ValidToken(tok) {
			t.Errorf("ValidToken(%q) = true, want false", tok)
		}
	}
}
