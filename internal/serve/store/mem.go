package store

import (
	"fmt"
	"sort"
	"sync"
)

// MemStore keeps checkpoints in process memory: the dirless backend the
// serve tests run on, and the seed of the cluster store — a shard that
// hands its MemStore (or a replicated equivalent) to a successor lets the
// successor adopt every detached session without a filesystem in between.
// Checkpoints do not survive the process; scserve -store mem says so at
// startup.
//
// Both Put and Get copy, so a caller mutating its slice after the call —
// the lifecycle layer reuses its serialization buffer — can never corrupt
// a stored checkpoint, and a stored checkpoint handed out twice can never
// alias.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// String names the backend in wide events and banners.
func (s *MemStore) String() string { return "mem" }

// Put stores a copy of data under token and returns the bytes written.
func (s *MemStore) Put(token string, data []byte) (int, error) {
	if err := checkToken(token); err != nil {
		return 0, err
	}
	blob := make([]byte, len(data))
	copy(blob, data)
	s.mu.Lock()
	s.blobs[token] = blob
	s.mu.Unlock()
	return len(blob), nil
}

// Get returns a copy of token's checkpoint, or ErrNotFound.
func (s *MemStore) Get(token string) ([]byte, error) {
	if err := checkToken(token); err != nil {
		return nil, err
	}
	s.mu.RLock()
	blob, ok := s.blobs[token]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, token)
	}
	out := make([]byte, len(blob))
	copy(out, blob)
	return out, nil
}

// Delete removes token's checkpoint, or returns ErrNotFound.
func (s *MemStore) Delete(token string) error {
	if err := checkToken(token); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[token]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, token)
	}
	delete(s.blobs, token)
	return nil
}

// Reserve atomically claims token if nothing is stored under it, by
// storing the mint marker under the write lock — the check and the claim
// are one critical section, so concurrent minters of the same token get
// exactly one winner.
func (s *MemStore) Reserve(token string) (bool, error) {
	if err := checkToken(token); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[token]; ok {
		return false, nil
	}
	s.blobs[token] = MintMarker()
	return true, nil
}

// List returns the tokens holding checkpoints, sorted.
func (s *MemStore) List() ([]string, error) {
	s.mu.RLock()
	tokens := make([]string, 0, len(s.blobs))
	for token := range s.blobs {
		tokens = append(tokens, token)
	}
	s.mu.RUnlock()
	sort.Strings(tokens)
	return tokens, nil
}
