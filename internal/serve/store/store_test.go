package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestStoreConformance runs every backend through the shared contract
// suite: both implementations must be indistinguishable through the
// CheckpointStore interface, because the lifecycle manager (and later the
// cluster tier) treats them interchangeably.
func TestStoreConformance(t *testing.T) {
	backends := []struct {
		name string
		open func(t *testing.T) CheckpointStore
	}{
		{"file", func(t *testing.T) CheckpointStore {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
		{"mem", func(t *testing.T) CheckpointStore { return NewMemStore() }},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			t.Run("put-get-roundtrip", func(t *testing.T) { testPutGetRoundTrip(t, b.open(t)) })
			t.Run("put-reports-bytes", func(t *testing.T) { testPutReportsBytes(t, b.open(t)) })
			t.Run("overwrite", func(t *testing.T) { testOverwrite(t, b.open(t)) })
			t.Run("not-found-typed", func(t *testing.T) { testNotFoundTyped(t, b.open(t)) })
			t.Run("delete", func(t *testing.T) { testDelete(t, b.open(t)) })
			t.Run("list-sorted", func(t *testing.T) { testListSorted(t, b.open(t)) })
			t.Run("no-aliasing", func(t *testing.T) { testNoAliasing(t, b.open(t)) })
			t.Run("rejects-bad-tokens", func(t *testing.T) { testRejectsBadTokens(t, b.open(t)) })
			t.Run("concurrent", func(t *testing.T) { testConcurrent(t, b.open(t)) })
		})
	}
}

func testPutGetRoundTrip(t *testing.T, st CheckpointStore) {
	blob := []byte("SCCKPT1\npayload bytes")
	if _, err := st.Put("tok", blob); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Get returned %q, want %q", got, blob)
	}
}

func testPutReportsBytes(t *testing.T, st CheckpointStore) {
	for _, n := range []int{0, 1, 1024, 70_000} {
		blob := bytes.Repeat([]byte{0xAB}, n)
		written, err := st.Put("sized", blob)
		if err != nil {
			t.Fatal(err)
		}
		if written != n {
			t.Fatalf("Put(%d bytes) reported %d written", n, written)
		}
	}
}

func testOverwrite(t *testing.T, st CheckpointStore) {
	if _, err := st.Put("tok", []byte("first, rather longer, checkpoint")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("tok", []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("after overwrite Get = %q, want %q", got, "second")
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 1 {
		t.Fatalf("overwrite left %d tokens listed: %v", len(tokens), tokens)
	}
}

func testNotFoundTyped(t *testing.T, st CheckpointStore) {
	if _, err := st.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := st.Delete("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent) = %v, want ErrNotFound", err)
	}
}

func testDelete(t *testing.T, st CheckpointStore) {
	if _, err := st.Put("tok", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("tok"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("tok"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if tokens, _ := st.List(); len(tokens) != 0 {
		t.Fatalf("List after Delete = %v, want empty", tokens)
	}
}

func testListSorted(t *testing.T, st CheckpointStore) {
	for _, tok := range []string{"zeta", "alpha", "s000002", "s000001", "Mid"} {
		if _, err := st.Put(tok, []byte(tok)); err != nil {
			t.Fatal(err)
		}
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Mid", "alpha", "s000001", "s000002", "zeta"}
	if !reflect.DeepEqual(tokens, want) {
		t.Fatalf("List = %v, want %v (sorted)", tokens, want)
	}
}

// testNoAliasing pins the copy semantics the lifecycle layer depends on:
// it reuses its serialization buffer after Put, and restores from the Get
// slice while the store may be written concurrently.
func testNoAliasing(t *testing.T, st CheckpointStore) {
	buf := []byte("original")
	if _, err := st.Put("tok", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!") // caller reuses its buffer
	got, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("Put aliased the caller's buffer: stored %q", got)
	}
	got[0] = '!' // caller mutates what Get handed out
	again, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "original" {
		t.Fatalf("Get aliased the stored blob: now %q", again)
	}
}

func testRejectsBadTokens(t *testing.T, st CheckpointStore) {
	for _, tok := range []string{"", ".hidden", "../escape", "a/b", "a b", "tok\x00", strings.Repeat("x", 65)} {
		if _, err := st.Put(tok, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid token %q", tok)
		}
		if _, err := st.Get(tok); err == nil {
			t.Errorf("Get accepted invalid token %q", tok)
		}
		if err := st.Delete(tok); err == nil {
			t.Errorf("Delete accepted invalid token %q", tok)
		}
	}
}

// testConcurrent hammers disjoint tokens from several goroutines; run
// under -race this pins that implementations are safe for the concurrent
// connection handlers that call into them.
func testConcurrent(t *testing.T, st CheckpointStore) {
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tok := fmt.Sprintf("w%03d", w)
			blob := bytes.Repeat([]byte{byte(w)}, 64+w)
			for r := 0; r < rounds; r++ {
				if _, err := st.Put(tok, blob); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				got, err := st.Get(tok)
				if err != nil || !bytes.Equal(got, blob) {
					t.Errorf("worker %d round %d: got %d bytes, err %v", w, r, len(got), err)
					return
				}
				if _, err := st.List(); err != nil {
					t.Errorf("worker %d: list: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFileStoreLayoutCompat pins the on-disk contract: a FileStore writes
// exactly `<token>.ckpt` holding exactly the Put bytes — the layout every
// pre-store scserve wrote — and reads checkpoints left by such a server.
func TestFileStoreLayoutCompat(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("envelope bytes, verbatim")
	if _, err := st.Put("legacy", blob); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "legacy.ckpt"))
	if err != nil {
		t.Fatalf("expected legacy.ckpt in the store directory: %v", err)
	}
	if !bytes.Equal(onDisk, blob) {
		t.Fatalf("on-disk bytes %q differ from Put bytes %q", onDisk, blob)
	}
	// A file dropped in by an older server (plain write, no store) is
	// visible through the interface.
	if err := os.WriteFile(filepath.Join(dir, "older.ckpt"), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("older")
	if err != nil || string(got) != "old" {
		t.Fatalf("Get(older) = %q, %v", got, err)
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tokens, []string{"legacy", "older"}) {
		t.Fatalf("List = %v", tokens)
	}
	// No temp-file droppings after successful Puts.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestFileStoreListIgnoresStrays: junk in the directory must not surface
// as tokens or break List.
func TestFileStoreListIgnoresStrays(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "x.ckpt.tmp123", ".hidden.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.ckpt"), 0o755); err != nil {
		t.Fatal(err)
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tokens, []string{"real"}) {
		t.Fatalf("List = %v, want [real]", tokens)
	}
}

func TestNewFileStoreValidation(t *testing.T) {
	if _, err := NewFileStore(""); err == nil {
		t.Fatal("NewFileStore(\"\") succeeded")
	}
	// Creating over an existing path that is a file must fail loudly.
	f := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(filepath.Join(f, "nested")); err == nil {
		t.Fatal("NewFileStore under a regular file succeeded")
	}
}

// TestStoreStringNames pins the backend names the wide-event `store` field
// and the scserve banner print.
func TestStoreStringNames(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fs.String() != "dir" {
		t.Fatalf("FileStore.String() = %q, want dir", fs.String())
	}
	if NewMemStore().String() != "mem" {
		t.Fatalf("MemStore.String() = %q, want mem", NewMemStore().String())
	}
}
