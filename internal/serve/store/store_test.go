package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreConformance runs every backend through the shared contract
// suite: both implementations must be indistinguishable through the
// CheckpointStore interface, because the lifecycle manager (and later the
// cluster tier) treats them interchangeably.
func TestStoreConformance(t *testing.T) {
	backends := []struct {
		name string
		open func(t *testing.T) CheckpointStore
	}{
		{"file", func(t *testing.T) CheckpointStore {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
		{"mem", func(t *testing.T) CheckpointStore { return NewMemStore() }},
		{"cluster", func(t *testing.T) CheckpointStore { return openClusterStore(t) }},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			t.Run("put-get-roundtrip", func(t *testing.T) { testPutGetRoundTrip(t, b.open(t)) })
			t.Run("put-reports-bytes", func(t *testing.T) { testPutReportsBytes(t, b.open(t)) })
			t.Run("overwrite", func(t *testing.T) { testOverwrite(t, b.open(t)) })
			t.Run("not-found-typed", func(t *testing.T) { testNotFoundTyped(t, b.open(t)) })
			t.Run("delete", func(t *testing.T) { testDelete(t, b.open(t)) })
			t.Run("list-sorted", func(t *testing.T) { testListSorted(t, b.open(t)) })
			t.Run("no-aliasing", func(t *testing.T) { testNoAliasing(t, b.open(t)) })
			t.Run("rejects-bad-tokens", func(t *testing.T) { testRejectsBadTokens(t, b.open(t)) })
			t.Run("concurrent", func(t *testing.T) { testConcurrent(t, b.open(t)) })
			t.Run("adoption-race", func(t *testing.T) { testAdoptionRace(t, b.open(t)) })
			t.Run("reserve", func(t *testing.T) { testReserve(t, b.open(t)) })
			t.Run("reserve-race", func(t *testing.T) { testReserveRace(t, b.open(t)) })
		})
	}
}

// openClusterStore spins up an in-process SCSTOR1 server over a MemStore
// and returns a client for it, so the network-backed store runs the exact
// conformance suite the local backends do.
func openClusterStore(t *testing.T) *ClusterStore {
	t.Helper()
	srv, err := NewStoreServer(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	cs := NewClusterStore(srv.Addr(), 10*time.Second)
	t.Cleanup(func() {
		cs.Close()
		srv.Close()
	})
	return cs
}

func testPutGetRoundTrip(t *testing.T, st CheckpointStore) {
	blob := []byte("SCCKPT1\npayload bytes")
	if _, err := st.Put("tok", blob); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Get returned %q, want %q", got, blob)
	}
}

func testPutReportsBytes(t *testing.T, st CheckpointStore) {
	for _, n := range []int{0, 1, 1024, 70_000} {
		blob := bytes.Repeat([]byte{0xAB}, n)
		written, err := st.Put("sized", blob)
		if err != nil {
			t.Fatal(err)
		}
		if written != n {
			t.Fatalf("Put(%d bytes) reported %d written", n, written)
		}
	}
}

func testOverwrite(t *testing.T, st CheckpointStore) {
	if _, err := st.Put("tok", []byte("first, rather longer, checkpoint")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("tok", []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("after overwrite Get = %q, want %q", got, "second")
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 1 {
		t.Fatalf("overwrite left %d tokens listed: %v", len(tokens), tokens)
	}
}

func testNotFoundTyped(t *testing.T, st CheckpointStore) {
	if _, err := st.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := st.Delete("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent) = %v, want ErrNotFound", err)
	}
}

func testDelete(t *testing.T, st CheckpointStore) {
	if _, err := st.Put("tok", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("tok"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("tok"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if tokens, _ := st.List(); len(tokens) != 0 {
		t.Fatalf("List after Delete = %v, want empty", tokens)
	}
}

func testListSorted(t *testing.T, st CheckpointStore) {
	for _, tok := range []string{"zeta", "alpha", "s000002", "s000001", "Mid"} {
		if _, err := st.Put(tok, []byte(tok)); err != nil {
			t.Fatal(err)
		}
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Mid", "alpha", "s000001", "s000002", "zeta"}
	if !reflect.DeepEqual(tokens, want) {
		t.Fatalf("List = %v, want %v (sorted)", tokens, want)
	}
}

// testNoAliasing pins the copy semantics the lifecycle layer depends on:
// it reuses its serialization buffer after Put, and restores from the Get
// slice while the store may be written concurrently.
func testNoAliasing(t *testing.T, st CheckpointStore) {
	buf := []byte("original")
	if _, err := st.Put("tok", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!") // caller reuses its buffer
	got, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("Put aliased the caller's buffer: stored %q", got)
	}
	got[0] = '!' // caller mutates what Get handed out
	again, err := st.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "original" {
		t.Fatalf("Get aliased the stored blob: now %q", again)
	}
}

func testRejectsBadTokens(t *testing.T, st CheckpointStore) {
	for _, tok := range []string{"", ".hidden", "../escape", "a/b", "a b", "tok\x00", strings.Repeat("x", 65)} {
		if _, err := st.Put(tok, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid token %q", tok)
		}
		if _, err := st.Get(tok); err == nil {
			t.Errorf("Get accepted invalid token %q", tok)
		}
		if err := st.Delete(tok); err == nil {
			t.Errorf("Delete accepted invalid token %q", tok)
		}
	}
}

// testConcurrent hammers disjoint tokens from several goroutines; run
// under -race this pins that implementations are safe for the concurrent
// connection handlers that call into them.
func testConcurrent(t *testing.T, st CheckpointStore) {
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tok := fmt.Sprintf("w%03d", w)
			blob := bytes.Repeat([]byte{byte(w)}, 64+w)
			for r := 0; r < rounds; r++ {
				if _, err := st.Put(tok, blob); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				got, err := st.Get(tok)
				if err != nil || !bytes.Equal(got, blob) {
					t.Errorf("worker %d round %d: got %d bytes, err %v", w, r, len(got), err)
					return
				}
				if _, err := st.List(); err != nil {
					t.Errorf("worker %d: list: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// testAdoptionRace is the cluster-adoption contention pattern: several
// goroutines hammer Put/Get/Delete on the SAME token — the shape of two
// shards checkpointing and adopting one session around a kill. A reader
// must only ever observe ErrNotFound or one complete write: every blob
// carries a CRC-32 trailer over its payload, and a torn read fails it.
func testAdoptionRace(t *testing.T, st CheckpointStore) {
	const writers, readers, rounds = 4, 4, 40
	mkBlob := func(w, r int) []byte {
		payload := bytes.Repeat([]byte{byte(1 + w*16 + r%16)}, 256+w*64+r)
		b := append([]byte(nil), payload...)
		return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	}
	intact := func(b []byte) bool {
		if len(b) < 4 {
			return false
		}
		payload, trailer := b[:len(b)-4], b[len(b)-4:]
		return crc32.ChecksumIEEE(payload) == binary.LittleEndian.Uint32(trailer)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := st.Put("adopt", mkBlob(w, r)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if r%8 == 7 { // a Finish landing amid the checkpoint churn
					if err := st.Delete("adopt"); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("writer %d: delete: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds*2; r++ {
				blob, err := st.Get("adopt")
				if err != nil {
					if !errors.Is(err, ErrNotFound) {
						t.Errorf("reader %d: %v", g, err)
						return
					}
					continue
				}
				if !intact(blob) {
					t.Errorf("reader %d observed a torn blob (%d bytes)", g, len(blob))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// testReserve pins the Reserver contract every backend must carry for the
// cluster mint path: first Reserve wins, the reservation occupies the
// token everywhere (Get, List, later Reserves), a real checkpoint keeps it
// occupied, and Delete frees it.
func testReserve(t *testing.T, st CheckpointStore) {
	r, ok := st.(Reserver)
	if !ok {
		t.Fatalf("%T does not implement Reserver", st)
	}
	won, err := r.Reserve("mint")
	if err != nil || !won {
		t.Fatalf("first Reserve = (%v, %v), want win", won, err)
	}
	if won, err = r.Reserve("mint"); err != nil || won {
		t.Fatalf("second Reserve = (%v, %v), want loss", won, err)
	}
	blob, err := st.Get("mint")
	if err != nil {
		t.Fatalf("Get of a reserved token: %v", err)
	}
	if !IsMintMarker(blob) {
		t.Fatalf("reservation blob = %q, want the mint marker", blob)
	}
	if tokens, _ := st.List(); !reflect.DeepEqual(tokens, []string{"mint"}) {
		t.Fatalf("List after Reserve = %v, want [mint]", tokens)
	}
	// The session checkpoints over its reservation; the token stays taken.
	if _, err := st.Put("mint", []byte("SCCKPT1\nreal checkpoint")); err != nil {
		t.Fatal(err)
	}
	if won, err = r.Reserve("mint"); err != nil || won {
		t.Fatalf("Reserve over a checkpoint = (%v, %v), want loss", won, err)
	}
	// Finish deletes; the token is mintable again.
	if err := st.Delete("mint"); err != nil {
		t.Fatal(err)
	}
	if won, err = r.Reserve("mint"); err != nil || !won {
		t.Fatalf("Reserve after Delete = (%v, %v), want win", won, err)
	}
	if _, err := r.Reserve("../escape"); err == nil {
		t.Fatal("Reserve accepted an invalid token")
	}
}

// testReserveRace is the mint-collision core: concurrent Reserves of one
// token get exactly one winner, every round.
func testReserveRace(t *testing.T, st CheckpointStore) {
	r, ok := st.(Reserver)
	if !ok {
		t.Fatalf("%T does not implement Reserver", st)
	}
	for round := 0; round < 8; round++ {
		tok := fmt.Sprintf("mint%03d", round)
		var wins atomic.Int32
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				won, err := r.Reserve(tok)
				if err != nil {
					t.Errorf("Reserve(%q): %v", tok, err)
					return
				}
				if won {
					wins.Add(1)
				}
			}()
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("round %d: %d Reserve winners, want exactly 1", round, wins.Load())
		}
	}
}

// TestClusterStoreRedial pins the client's transparent-reconnect behavior:
// a pooled connection severed under it (store server restarted on the same
// address) must heal with a single redial, not surface an error.
func TestClusterStoreRedial(t *testing.T) {
	srv, err := NewStoreServer(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	addr := srv.Addr()
	cs := NewClusterStore(addr, 10*time.Second)
	defer cs.Close()
	if _, err := cs.Put("tok", []byte("before restart")); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address; the pooled connection is
	// now dead and the MemStore behind it is fresh.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewStoreServer(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = srv2.Listen(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go srv2.Serve()
	defer srv2.Close()
	if _, err := cs.Put("tok", []byte("after restart")); err != nil {
		t.Fatalf("Put through a severed pooled connection: %v", err)
	}
	got, err := cs.Get("tok")
	if err != nil || string(got) != "after restart" {
		t.Fatalf("Get after redial = %q, %v", got, err)
	}
}

// TestStoreServerRejectsGarbage: a connection that opens with the wrong
// magic or ships a corrupt frame is dropped without wedging the server.
func TestStoreServerRejectsGarbage(t *testing.T) {
	srv, err := NewStoreServer(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	for _, junk := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		append([]byte(StoreMagic), 0xFF, 0xFF, 0xFF, 0x7F),                     // absurd frame length
		append([]byte(StoreMagic), 4, 0, 0, 0, 'j', 'u', 'n', 'k', 0, 0, 0, 0), // bad CRC
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(junk)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		if n, err := conn.Read(buf); err == nil {
			t.Fatalf("server replied %q to garbage instead of dropping the connection", buf[:n])
		}
		conn.Close()
	}
	// The server still serves real clients afterwards.
	cs := NewClusterStore(srv.Addr(), 10*time.Second)
	defer cs.Close()
	if _, err := cs.Put("ok", []byte("fine")); err != nil {
		t.Fatalf("healthy client after garbage connections: %v", err)
	}
}

// TestFileStoreLayoutCompat pins the on-disk contract: a FileStore writes
// exactly `<token>.ckpt` holding exactly the Put bytes — the layout every
// pre-store scserve wrote — and reads checkpoints left by such a server.
func TestFileStoreLayoutCompat(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("envelope bytes, verbatim")
	if _, err := st.Put("legacy", blob); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "legacy.ckpt"))
	if err != nil {
		t.Fatalf("expected legacy.ckpt in the store directory: %v", err)
	}
	if !bytes.Equal(onDisk, blob) {
		t.Fatalf("on-disk bytes %q differ from Put bytes %q", onDisk, blob)
	}
	// A file dropped in by an older server (plain write, no store) is
	// visible through the interface.
	if err := os.WriteFile(filepath.Join(dir, "older.ckpt"), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("older")
	if err != nil || string(got) != "old" {
		t.Fatalf("Get(older) = %q, %v", got, err)
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tokens, []string{"legacy", "older"}) {
		t.Fatalf("List = %v", tokens)
	}
	// No temp-file droppings after successful Puts.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestFileStoreListIgnoresStrays: junk in the directory must not surface
// as tokens or break List.
func TestFileStoreListIgnoresStrays(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "x.ckpt.tmp123", ".hidden.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.ckpt"), 0o755); err != nil {
		t.Fatal(err)
	}
	tokens, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tokens, []string{"real"}) {
		t.Fatalf("List = %v, want [real]", tokens)
	}
}

func TestNewFileStoreValidation(t *testing.T) {
	if _, err := NewFileStore(""); err == nil {
		t.Fatal("NewFileStore(\"\") succeeded")
	}
	// Creating over an existing path that is a file must fail loudly.
	f := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(filepath.Join(f, "nested")); err == nil {
		t.Fatal("NewFileStore under a regular file succeeded")
	}
}

// TestStoreStringNames pins the backend names the wide-event `store` field
// and the scserve banner print.
func TestStoreStringNames(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if fs.String() != "dir" {
		t.Fatalf("FileStore.String() = %q, want dir", fs.String())
	}
	if NewMemStore().String() != "mem" {
		t.Fatalf("MemStore.String() = %q, want mem", NewMemStore().String())
	}
	if cs := NewClusterStore("127.0.0.1:1", 0); cs.String() != "cluster" {
		t.Fatalf("ClusterStore.String() = %q, want cluster", cs.String())
	}
}
