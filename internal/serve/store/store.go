// Package store is the persistence layer of the serving stack: a
// CheckpointStore holds the SCCKPT1 detach checkpoints that carry
// sessions across disconnects, server restarts and — in the cluster tier
// this package seeds — across shard boundaries. The lifecycle layer
// (internal/serve/lifecycle) serializes and restores checkpoints; a store
// only moves opaque bytes keyed by session token, which is exactly what
// lets the same Manager run against a local directory today and a
// replicated cluster store tomorrow.
//
// Two implementations ship here: FileStore, byte-compatible with the
// original `<token>.ckpt` atomic-file directory layout, and MemStore, a
// process-local map used by the serve tests (dirless and fast) and as the
// seed of the in-memory cluster store.
package store

import (
	"errors"
	"fmt"
)

// ErrNotFound reports a Get or Delete naming a token with no checkpoint in
// the store. It is the typed not-found error every implementation must
// return (wrapped or bare), so the lifecycle layer can distinguish "never
// detached here" from real storage failures.
var ErrNotFound = errors.New("store: checkpoint not found")

// errInvalidToken is the typed cause behind every token-validation
// failure, so the cluster protocol can carry the class across the wire.
var errInvalidToken = errors.New("invalid session token")

// CheckpointStore persists one checkpoint blob per session token. The
// contract every implementation must honor (pinned by the shared
// conformance suite in this package's tests):
//
//   - Put stores data under token, atomically replacing any previous
//     checkpoint: a reader never observes a torn write, and a crash
//     mid-Put leaves the previous checkpoint intact. It returns the number
//     of bytes written — the caller's authoritative checkpoint size, so no
//     re-stat is needed (or possible: the bytes may not live on a
//     filesystem at all).
//   - Get returns the stored bytes, or an error wrapping ErrNotFound. The
//     returned slice is the caller's to keep: mutating it must not corrupt
//     the store, and a later Put must not mutate it.
//   - Delete removes the token's checkpoint, or returns an error wrapping
//     ErrNotFound if there is none.
//   - List returns every token currently holding a checkpoint, sorted.
//
// Tokens are validated by ValidToken; implementations must reject anything
// else so a hostile token can never escape a directory or collide with
// internal names. Implementations must be safe for concurrent use: the
// lifecycle manager calls into the store from every connection handler.
type CheckpointStore interface {
	Put(token string, data []byte) (int, error)
	Get(token string) ([]byte, error)
	Delete(token string) error
	List() ([]string, error)
}

// ValidToken accepts filename-safe session tokens only ([A-Za-z0-9._-],
// no leading dot, at most 64 bytes), so a token can never escape a
// FileStore's directory or collide with its temp files. The lifecycle
// layer applies the same rule to client-chosen tokens before they reach
// any store.
func ValidToken(t string) bool {
	if t == "" || len(t) > 64 || t[0] == '.' {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Reserver is the optional store capability the cluster's mint path
// requires: Reserve atomically claims token if and only if the store holds
// nothing under it, returning whether this caller won. Two shards minting
// against a shared store race through Reserve — exactly one wins, so the
// same token can never be handed to two different sessions. The winner's
// reservation is a real stored blob (the mint marker): it occupies the
// token in List, Get and later Reserves until the session either
// checkpoints over it or Finishes (which Deletes it).
//
// All stores in this package implement Reserver. The lifecycle manager
// falls back to its local bookkeeping for a store that does not.
type Reserver interface {
	Reserve(token string) (bool, error)
}

// mintMarker is the blob a Reserve stores to occupy a freshly minted
// token before its first checkpoint. It is deliberately not a valid
// SCCKPT1 envelope: a Resume that Gets it knows the session never
// detached and reports unknown-session instead of feeding garbage to the
// checkpoint decoder.
var mintMarker = []byte("SCMINT1\n")

// MintMarker returns a fresh copy of the mint-reservation blob.
func MintMarker() []byte {
	return append([]byte(nil), mintMarker...)
}

// IsMintMarker reports whether blob is a mint reservation rather than a
// real checkpoint.
func IsMintMarker(blob []byte) bool {
	return len(blob) == len(mintMarker) && string(blob) == string(mintMarker)
}

// checkToken is the shared Put/Get/Delete guard.
func checkToken(token string) error {
	if !ValidToken(token) {
		return fmt.Errorf("store: %w %q", errInvalidToken, token)
	}
	return nil
}
