package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// SCSTOR1 is the cluster checkpoint-store protocol: the same length-
// prefixed CRC-32-guarded framing discipline as SCWIRE1, carrying the four
// CheckpointStore verbs (plus Reserve) over TCP so every shard in a
// cluster reaches one shared store. A connection opens with the magic,
// then strictly alternates request and reply frames:
//
//	frame   := u32le(len(payload)) payload u32le(crc32(payload))
//	request := op token-fields...
//	reply   := repOK body... | repErr code uvarint(len) msg
//
// The blob bytes inside put/get frames are the SCCKPT1 envelope verbatim —
// the store moves opaque bytes, exactly like FileStore and MemStore, which
// is what lets any shard adopt any session's checkpoint: composing the
// store behind the wire changes nothing the lifecycle layer can observe.

// StoreMagic opens every SCSTOR1 connection.
const StoreMagic = "SCSTOR1\n"

// SCSTOR1 request ops and reply types.
const (
	opPut     = 0x01 // token, blob -> repOK uvarint(bytes written)
	opGet     = 0x02 // token -> repOK blob
	opDelete  = 0x03 // token -> repOK
	opList    = 0x04 // -> repOK uvarint(count) tokens...
	opReserve = 0x05 // token -> repOK bool byte (1 = reserved)

	repOK  = 0x81
	repErr = 0x82
)

// SCSTOR1 error codes, so typed errors survive the wire.
const (
	storeErrGeneric  = 1
	storeErrNotFound = 2 // maps back to ErrNotFound
	storeErrToken    = 3 // invalid token
)

// maxStoreFrame bounds one SCSTOR1 frame payload. Checkpoints of
// laptop-scale instances are KiBs; 64 MiB leaves room for very large
// universes while keeping a corrupt length prefix harmless.
const maxStoreFrame = 64 << 20

// ErrStoreWire reports malformed SCSTOR1 traffic: bad magic, bad CRC,
// truncated or oversized frames, unknown ops.
var ErrStoreWire = errors.New("store: cluster wire protocol error")

// readStoreFrame reads one SCSTOR1 frame payload from r into (a possibly
// grown) buf, returning the payload slice.
func readStoreFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err // clean boundary: caller classifies EOF
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxStoreFrame {
		return nil, buf, fmt.Errorf("%w: frame payload length %d", ErrStoreWire, n)
	}
	need := int(n) + 4
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	body := buf[:need]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, fmt.Errorf("%w: truncated frame: %v", ErrStoreWire, err)
	}
	payload, trailer := body[:n], body[n:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, buf, fmt.Errorf("%w: frame checksum mismatch", ErrStoreWire)
	}
	return payload, buf, nil
}

// writeStoreFrame seals payload into a frame and writes it with one Write.
func writeStoreFrame(w io.Writer, scratch, payload []byte) ([]byte, error) {
	need := 4 + len(payload) + 4
	if cap(scratch) < need {
		scratch = make([]byte, 0, need)
	}
	b := scratch[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	_, err := w.Write(b)
	return b, err
}

// appendToken appends a length-prefixed token.
func appendToken(b []byte, token string) []byte {
	b = binary.AppendUvarint(b, uint64(len(token)))
	return append(b, token...)
}

// storeCursor decodes one SCSTOR1 payload, latching the first error.
type storeCursor struct {
	b   []byte
	err error
}

func (c *storeCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *storeCursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail("%w: truncated varint", ErrStoreWire)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *storeCursor) str() string {
	n := c.u64()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.b)) {
		c.fail("%w: string length %d exceeds frame", ErrStoreWire, n)
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

func (c *storeCursor) rest() []byte {
	b := c.b
	c.b = nil
	return b
}

func (c *storeCursor) done() error {
	if c.err == nil && len(c.b) != 0 {
		c.fail("%w: %d trailing bytes in frame", ErrStoreWire, len(c.b))
	}
	return c.err
}

// StoreServer exposes a backing CheckpointStore over SCSTOR1 so every
// shard in a cluster shares it. The server is pure plumbing: requests
// apply verbatim to the backing store (whose own atomicity and
// concurrency contract — pinned by TestStoreConformance — carries the
// cluster's torn-blob guarantees), one goroutine per connection.
type StoreServer struct {
	backing CheckpointStore

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewStoreServer wraps backing for network service.
func NewStoreServer(backing CheckpointStore) (*StoreServer, error) {
	if backing == nil {
		return nil, errors.New("store: cluster server needs a backing store")
	}
	return &StoreServer{backing: backing, conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds addr (":0" picks a free port, readable from Addr).
func (s *StoreServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr reports the bound listen address ("" before Listen).
func (s *StoreServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Close. It returns nil on clean close.
func (s *StoreServer) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("store: cluster server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, severs open connections and waits for handlers.
// In-flight requests against the backing store complete first, so a Put
// the client saw acknowledged is durably in the backing store.
func (s *StoreServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now()) // wake blocked readers
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// handle runs one connection's request loop.
func (s *StoreServer) handle(conn net.Conn) {
	defer conn.Close()
	var magic [len(StoreMagic)]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != StoreMagic {
		return
	}
	var rbuf, wbuf, reply []byte
	for {
		payload, buf, err := readStoreFrame(conn, rbuf)
		rbuf = buf
		if err != nil {
			return // disconnect or corruption: the client redials
		}
		reply = s.apply(reply[:0], payload)
		wbuf, err = writeStoreFrame(conn, wbuf, reply)
		if err != nil {
			return
		}
	}
}

// apply executes one request payload against the backing store, appending
// the reply payload to out.
func (s *StoreServer) apply(out, req []byte) []byte {
	if len(req) == 0 {
		return appendStoreErr(out, storeErrGeneric, "empty request")
	}
	c := storeCursor{b: req[1:]}
	switch req[0] {
	case opPut:
		token := c.str()
		blob := c.rest()
		if c.err != nil {
			return appendStoreErr(out, storeErrGeneric, c.err.Error())
		}
		n, err := s.backing.Put(token, blob)
		if err != nil {
			return appendStoreErrFrom(out, err)
		}
		out = append(out, repOK)
		return binary.AppendUvarint(out, uint64(n))
	case opGet:
		token := c.str()
		if err := c.done(); err != nil {
			return appendStoreErr(out, storeErrGeneric, err.Error())
		}
		blob, err := s.backing.Get(token)
		if err != nil {
			return appendStoreErrFrom(out, err)
		}
		out = append(out, repOK)
		return append(out, blob...)
	case opDelete:
		token := c.str()
		if err := c.done(); err != nil {
			return appendStoreErr(out, storeErrGeneric, err.Error())
		}
		if err := s.backing.Delete(token); err != nil {
			return appendStoreErrFrom(out, err)
		}
		return append(out, repOK)
	case opList:
		if err := c.done(); err != nil {
			return appendStoreErr(out, storeErrGeneric, err.Error())
		}
		tokens, err := s.backing.List()
		if err != nil {
			return appendStoreErrFrom(out, err)
		}
		out = append(out, repOK)
		out = binary.AppendUvarint(out, uint64(len(tokens)))
		for _, t := range tokens {
			out = appendToken(out, t)
		}
		return out
	case opReserve:
		token := c.str()
		if err := c.done(); err != nil {
			return appendStoreErr(out, storeErrGeneric, err.Error())
		}
		ok, err := reserveOn(s.backing, token)
		if err != nil {
			return appendStoreErrFrom(out, err)
		}
		out = append(out, repOK)
		if ok {
			return append(out, 1)
		}
		return append(out, 0)
	default:
		return appendStoreErr(out, storeErrGeneric, fmt.Sprintf("unknown op 0x%02x", req[0]))
	}
}

// reserveOn reserves token on st, preferring its native atomic Reserve.
// A backing without one falls back to Get-then-Put — adequate only
// because the server is then the single writer of that backing.
func reserveOn(st CheckpointStore, token string) (bool, error) {
	if r, ok := st.(Reserver); ok {
		return r.Reserve(token)
	}
	if _, err := st.Get(token); err == nil {
		return false, nil
	} else if !errors.Is(err, ErrNotFound) {
		return false, err
	}
	if _, err := st.Put(token, MintMarker()); err != nil {
		return false, err
	}
	return true, nil
}

// appendStoreErr appends a repErr payload.
func appendStoreErr(out []byte, code byte, msg string) []byte {
	out = append(out, repErr, code)
	return appendToken(out, msg)
}

// appendStoreErrFrom classifies a backing-store error into a wire code so
// the typed errors the lifecycle layer matches on survive the hop.
func appendStoreErrFrom(out []byte, err error) []byte {
	code := byte(storeErrGeneric)
	switch {
	case errors.Is(err, ErrNotFound):
		code = storeErrNotFound
	case errors.Is(err, errInvalidToken):
		code = storeErrToken
	}
	return appendStoreErr(out, code, err.Error())
}

// ClusterStore is the CheckpointStore every shard in a cluster shares: a
// client for a StoreServer. Calls are request/reply over pooled
// connections — concurrent callers each grab an idle connection (or dial
// a fresh one), so the lifecycle manager's concurrent detach/resume
// traffic does not serialize. A call that hits a dead pooled connection
// redials once before failing, so a restarted store server is transparent.
//
// Like every CheckpointStore, it moves opaque blobs: Get hands back a
// fresh slice, Put never retains the caller's, and the torn-blob guarantee
// is inherited from the backing store behind the server plus the per-frame
// CRC on the wire.
type ClusterStore struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	idle []*storeConn
}

// storeConn is one pooled SCSTOR1 connection with its reusable buffers.
type storeConn struct {
	conn net.Conn
	rbuf []byte
	wbuf []byte
	req  []byte
}

// DefaultStoreTimeout bounds each SCSTOR1 round trip when the caller does
// not choose one.
const DefaultStoreTimeout = 30 * time.Second

// maxIdleStoreConns bounds the pool so a detach burst does not pin its
// peak connection count forever.
const maxIdleStoreConns = 16

// NewClusterStore returns a store client for the SCSTOR1 server at addr.
// timeout bounds each round trip (0 picks DefaultStoreTimeout). No
// connection is made until the first call, so a shard may start before
// its store.
func NewClusterStore(addr string, timeout time.Duration) *ClusterStore {
	if timeout <= 0 {
		timeout = DefaultStoreTimeout
	}
	return &ClusterStore{addr: addr, timeout: timeout}
}

// String names the backend in wide events and banners.
func (s *ClusterStore) String() string { return "cluster" }

// Addr reports the store server address this client targets.
func (s *ClusterStore) Addr() string { return s.addr }

// get returns an idle pooled connection or dials a fresh one.
func (s *ClusterStore) get() (*storeConn, error) {
	s.mu.Lock()
	if n := len(s.idle); n > 0 {
		c := s.idle[n-1]
		s.idle[n-1] = nil
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	conn, err := net.DialTimeout("tcp", s.addr, s.timeout)
	if err != nil {
		return nil, fmt.Errorf("store: cluster dial %s: %w", s.addr, err)
	}
	sc := &storeConn{conn: conn}
	if err := conn.SetWriteDeadline(time.Now().Add(s.timeout)); err == nil {
		if _, err := conn.Write([]byte(StoreMagic)); err != nil {
			conn.Close()
			return nil, fmt.Errorf("store: cluster handshake: %w", err)
		}
	}
	return sc, nil
}

// put returns a connection to the idle pool after a clean round trip.
func (s *ClusterStore) put(c *storeConn) {
	s.mu.Lock()
	if len(s.idle) < maxIdleStoreConns {
		s.idle = append(s.idle, c)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	c.conn.Close()
}

// Close drops every pooled connection. Calls after Close dial fresh ones.
func (s *ClusterStore) Close() error {
	s.mu.Lock()
	idle := s.idle
	s.idle = nil
	s.mu.Unlock()
	for _, c := range idle {
		c.conn.Close()
	}
	return nil
}

// roundTrip sends one request payload and decodes the reply, retrying
// once on a fresh connection if a pooled one turned out dead (the server
// restarted, or an idle timeout severed it).
func (s *ClusterStore) roundTrip(build func(req []byte) []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		c, err := s.get()
		if err != nil {
			return nil, err
		}
		reply, err := s.exchange(c, build)
		if err == nil {
			s.put(c)
			return reply, nil
		}
		c.conn.Close()
		lastErr = err
		// A protocol-level failure (bad CRC, oversized frame) will not
		// heal on a redial; only transport errors are retried.
		if errors.Is(err, ErrStoreWire) {
			break
		}
	}
	return nil, fmt.Errorf("store: cluster %s: %w", s.addr, lastErr)
}

// exchange performs one framed request/reply on c.
func (s *ClusterStore) exchange(c *storeConn, build func(req []byte) []byte) ([]byte, error) {
	c.req = build(c.req[:0])
	deadline := time.Now().Add(s.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	var err error
	c.wbuf, err = writeStoreFrame(c.conn, c.wbuf, c.req)
	if err != nil {
		return nil, err
	}
	payload, rbuf, err := readStoreFrame(c.conn, c.rbuf)
	c.rbuf = rbuf
	if err != nil {
		return nil, err
	}
	// The payload aliases the pooled read buffer; callers copy what they
	// keep (Get copies the blob, List copies the strings).
	return payload, nil
}

// decodeReply splits a reply payload into its OK body or a typed error.
func decodeReply(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty reply", ErrStoreWire)
	}
	switch payload[0] {
	case repOK:
		return payload[1:], nil
	case repErr:
		c := storeCursor{b: payload[1:]}
		if len(c.b) < 1 {
			return nil, fmt.Errorf("%w: truncated error reply", ErrStoreWire)
		}
		code := c.b[0]
		c.b = c.b[1:]
		msg := c.str()
		if err := c.done(); err != nil {
			return nil, err
		}
		switch code {
		case storeErrNotFound:
			return nil, fmt.Errorf("%w: %s", ErrNotFound, msg)
		case storeErrToken:
			return nil, fmt.Errorf("store: %s", msg)
		default:
			return nil, fmt.Errorf("store: cluster: %s", msg)
		}
	default:
		return nil, fmt.Errorf("%w: unknown reply 0x%02x", ErrStoreWire, payload[0])
	}
}

// Put stores data under token on the shared store and returns the bytes
// written there.
func (s *ClusterStore) Put(token string, data []byte) (int, error) {
	if err := checkToken(token); err != nil {
		return 0, err
	}
	reply, err := s.roundTrip(func(req []byte) []byte {
		req = append(req, opPut)
		req = appendToken(req, token)
		return append(req, data...)
	})
	if err != nil {
		return 0, err
	}
	body, err := decodeReply(reply)
	if err != nil {
		return 0, err
	}
	n, w := binary.Uvarint(body)
	if w <= 0 || w != len(body) {
		return 0, fmt.Errorf("%w: malformed put reply", ErrStoreWire)
	}
	return int(n), nil
}

// Get returns a copy of token's checkpoint from the shared store, or
// ErrNotFound.
func (s *ClusterStore) Get(token string) ([]byte, error) {
	if err := checkToken(token); err != nil {
		return nil, err
	}
	reply, err := s.roundTrip(func(req []byte) []byte {
		req = append(req, opGet)
		return appendToken(req, token)
	})
	if err != nil {
		return nil, err
	}
	body, err := decodeReply(reply)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(body))
	copy(out, body)
	return out, nil
}

// Delete removes token's checkpoint from the shared store, or returns
// ErrNotFound.
func (s *ClusterStore) Delete(token string) error {
	if err := checkToken(token); err != nil {
		return err
	}
	reply, err := s.roundTrip(func(req []byte) []byte {
		req = append(req, opDelete)
		return appendToken(req, token)
	})
	if err != nil {
		return err
	}
	body, err := decodeReply(reply)
	if err != nil {
		return err
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: malformed delete reply", ErrStoreWire)
	}
	return nil
}

// List returns every token holding a checkpoint on the shared store,
// sorted (the server lists its backing store, which sorts).
func (s *ClusterStore) List() ([]string, error) {
	reply, err := s.roundTrip(func(req []byte) []byte {
		return append(req, opList)
	})
	if err != nil {
		return nil, err
	}
	body, err := decodeReply(reply)
	if err != nil {
		return nil, err
	}
	c := storeCursor{b: body}
	n := c.u64()
	if c.err != nil {
		return nil, c.err
	}
	if n > uint64(len(c.b)) { // every token takes >= 1 byte
		return nil, fmt.Errorf("%w: %d tokens exceed frame", ErrStoreWire, n)
	}
	tokens := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		tokens = append(tokens, c.str())
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return tokens, nil
}

// Reserve atomically claims token on the shared store if no checkpoint
// exists there — the cluster-wide mint guard. Atomicity holds because the
// server applies it on the backing store's native Reserve.
func (s *ClusterStore) Reserve(token string) (bool, error) {
	if err := checkToken(token); err != nil {
		return false, err
	}
	reply, err := s.roundTrip(func(req []byte) []byte {
		req = append(req, opReserve)
		return appendToken(req, token)
	})
	if err != nil {
		return false, err
	}
	body, err := decodeReply(reply)
	if err != nil {
		return false, err
	}
	if len(body) != 1 || body[0] > 1 {
		return false, fmt.Errorf("%w: malformed reserve reply", ErrStoreWire)
	}
	return body[0] == 1, nil
}
