package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ckptExt is the on-disk suffix of one checkpoint, kept byte-compatible
// with the layout the serve package wrote before the store split: a
// FileStore directory is readable by (and from) any earlier scserve.
const ckptExt = ".ckpt"

// FileStore is the atomic-file directory store: one `<token>.ckpt` file
// per checkpoint, written via a same-directory temp file, fsync and
// rename, so a crash mid-Put leaves the previous checkpoint intact and a
// concurrent Get never observes a torn write. It is the durable backend
// scserve runs by default (-store dir).
type FileStore struct {
	dir string
}

// NewFileStore creates (if absent) and opens a checkpoint directory.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, errors.New("store: file store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: checkpoint dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// String names the backend in wide events and banners.
func (s *FileStore) String() string { return "dir" }

// path is where token's checkpoint lives. Tokens are validated before
// they get here, so the join cannot escape the directory.
func (s *FileStore) path(token string) string {
	return filepath.Join(s.dir, token+ckptExt)
}

// Put atomically writes token's checkpoint and returns the bytes written.
func (s *FileStore) Put(token string, data []byte) (int, error) {
	if err := checkToken(token); err != nil {
		return 0, err
	}
	if err := atomicWriteFile(s.path(token), data); err != nil {
		return 0, fmt.Errorf("store: put %q: %w", token, err)
	}
	return len(data), nil
}

// Get returns token's checkpoint bytes, or ErrNotFound.
func (s *FileStore) Get(token string) ([]byte, error) {
	if err := checkToken(token); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.path(token))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, token)
		}
		return nil, fmt.Errorf("store: get %q: %w", token, err)
	}
	return data, nil
}

// Delete removes token's checkpoint, or returns ErrNotFound.
func (s *FileStore) Delete(token string) error {
	if err := checkToken(token); err != nil {
		return err
	}
	if err := os.Remove(s.path(token)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %q", ErrNotFound, token)
		}
		return fmt.Errorf("store: delete %q: %w", token, err)
	}
	return nil
}

// Reserve atomically claims token if no checkpoint file exists: the mint
// marker is staged in a temp file and hard-linked into place — link(2)
// fails with EEXIST when the target exists, which makes the existence
// check and the claim a single atomic filesystem operation even across
// processes sharing the directory.
func (s *FileStore) Reserve(token string) (bool, error) {
	if err := checkToken(token); err != nil {
		return false, err
	}
	f, err := os.CreateTemp(s.dir, token+".mint*")
	if err != nil {
		return false, fmt.Errorf("store: reserve %q: %w", token, err)
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if _, err := f.Write(mintMarker); err != nil {
		f.Close()
		return false, fmt.Errorf("store: reserve %q: %w", token, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("store: reserve %q: %w", token, err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("store: reserve %q: %w", token, err)
	}
	if err := os.Link(tmp, s.path(token)); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, fmt.Errorf("store: reserve %q: %w", token, err)
	}
	return true, nil
}

// List returns the tokens holding checkpoints, sorted. Stray files —
// in-flight temp files, anything not shaped like `<token>.ckpt` — are
// ignored rather than surfaced, so an interrupted Put can never make the
// store unlistable.
func (s *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	tokens := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		token := strings.TrimSuffix(name, ckptExt)
		if ValidToken(token) {
			tokens = append(tokens, token)
		}
	}
	sort.Strings(tokens)
	return tokens, nil
}

// atomicWriteFile writes data to path via a temp file in the same
// directory plus rename, the same discipline as the stream layer's
// checkpoint file writer: readers never observe a partially written file
// and a crash mid-write leaves any previous file intact.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
