package lifecycle

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"streamcover/internal/obs"
	"streamcover/internal/serve/store"
	"streamcover/internal/setcover"
	"streamcover/internal/stream"
)

func testConfig() Config {
	return Config{Algo: "kk", N: 64, M: 16, Seed: 7}
}

// testEdges builds a deterministic edge stream covering the test shape.
func testEdges(cfg Config) []stream.Edge {
	var edges []stream.Edge
	for s := 0; s < cfg.M; s++ {
		for u := 0; u < cfg.N; u++ {
			if (u+s)%3 == 0 {
				edges = append(edges, stream.Edge{Set: setcover.SetID(s), Elem: setcover.Element(u)})
			}
		}
	}
	return edges
}

// feed pushes edges through the Reserve/Enqueue lease API in ring-sized
// batches, exactly as the transport does.
func feed(s *Session, edges []stream.Edge) {
	for off := 0; off < len(edges); {
		buf := s.Reserve()
		n := copy(buf, edges[off:])
		s.Enqueue(n)
		off += n
	}
}

func mustOpen(t *testing.T, m *Manager, token string, cfg Config) *Session {
	t.Helper()
	s, err := m.Open(token, obs.TraceID{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLifecycleDetachResumeRoundTrip runs the full state machine against a
// MemStore: feed half, detach, resume, feed the rest, and the fingerprint
// must match an uninterrupted run with the same config — the same
// invariant the golden serve tests pin over the wire.
func TestLifecycleDetachResumeRoundTrip(t *testing.T) {
	cfg := testConfig()
	edges := testEdges(cfg)

	uMgr, err := NewManager(store.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	uSess := mustOpen(t, uMgr, "straight", cfg)
	feed(uSess, edges)
	want, err := uMgr.Finish(uSess)
	if err != nil {
		t.Fatal(err)
	}

	st := store.NewMemStore()
	mgr, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := mustOpen(t, mgr, "broken", cfg)
	openTrace := sess.Trace()
	if openTrace.IsZero() {
		t.Fatal("Open minted a zero trace")
	}
	half := len(edges) / 2
	feed(sess, edges[:half])
	pos, err := mgr.Detach(sess, "test-detach")
	if err != nil {
		t.Fatal(err)
	}
	if pos != half {
		t.Fatalf("Detach pos = %d, want %d", pos, half)
	}
	if _, err := st.Get("broken"); err != nil {
		t.Fatalf("Detach left no checkpoint in the store: %v", err)
	}
	if mgr.Active() != 0 {
		t.Fatalf("Active = %d after detach", mgr.Active())
	}

	// Resume proposing a different trace: the checkpoint's stamp must win.
	sess2, rpos, err := mgr.Resume("broken", obs.NewTraceID(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rpos != half {
		t.Fatalf("Resume pos = %d, want %d", rpos, half)
	}
	if sess2.Trace() != openTrace {
		t.Fatalf("resume trace %s, want open trace %s", sess2.Trace(), openTrace)
	}
	feed(sess2, edges[rpos:])
	got, err := mgr.Finish(sess2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("resumed fingerprint %016x != uninterrupted %016x", got.Fingerprint(), want.Fingerprint())
	}
	// Finish retires the checkpoint for good.
	if _, err := st.Get("broken"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("checkpoint survived Finish: %v", err)
	}
}

// TestLifecycleMintSkipsStoredTokens is the restart regression: the token
// counter is in-memory and resets with the process, so a fresh manager on
// a store still holding s000001's detach checkpoint must not hand the same
// token to a new session (whose Finish would delete the detached state).
func TestLifecycleMintSkipsStoredTokens(t *testing.T) {
	cfg := testConfig()
	edges := testEdges(cfg)
	st := store.NewMemStore()

	mgrA, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessA := mustOpen(t, mgrA, "", cfg)
	if sessA.Token() != "s000001" {
		t.Fatalf("first minted token = %q, want s000001", sessA.Token())
	}
	feed(sessA, edges[:len(edges)/2])
	if _, err := mgrA.Detach(sessA, "restart-test"); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new manager on the same store, counter back at zero.
	mgrB, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessB := mustOpen(t, mgrB, "", cfg)
	if sessB.Token() == "s000001" {
		t.Fatal("fresh manager re-minted a token holding a detached checkpoint")
	}
	if sessB.Token() != "s000002" {
		t.Fatalf("minted %q, want s000002 (skip held token, take next)", sessB.Token())
	}
	// Finishing the new session must leave the old checkpoint resumable.
	feed(sessB, edges)
	if _, err := mgrB.Finish(sessB); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("s000001"); err != nil {
		t.Fatalf("new session's Finish destroyed the detached checkpoint: %v", err)
	}
	if _, rpos, err := mgrB.Resume("s000001", obs.TraceID{}, cfg); err != nil || rpos != len(edges)/2 {
		t.Fatalf("resume after restart: pos=%d err=%v", rpos, err)
	}
}

// TestLifecycleMintSharedStore is the cluster mint-collision regression:
// two managers (two shards) sharing one store, both with fresh counters
// and neither's first session checkpointed, must not hand out the same
// token. Before the store-side Reserve, both would List an empty store,
// see no local attachment of s000001, and mint it twice.
func TestLifecycleMintSharedStore(t *testing.T) {
	cfg := testConfig()
	st := store.NewMemStore()
	shardA, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	shardB, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa := mustOpen(t, shardA, "", cfg)
	sb := mustOpen(t, shardB, "", cfg)
	if sa.Token() == sb.Token() {
		t.Fatalf("two shards minted the same token %q against a shared store", sa.Token())
	}
}

// TestLifecycleMintSharedStoreRace hammers the same property concurrently:
// every token minted across two shards over a shared store is unique.
func TestLifecycleMintSharedStoreRace(t *testing.T) {
	cfg := testConfig()
	st := store.NewMemStore()
	var mu sync.Mutex
	seen := make(map[string]string)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		mgr, err := NewManager(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		shard := fmt.Sprintf("shard%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				s, err := mgr.Open("", obs.TraceID{}, cfg)
				if err != nil {
					t.Errorf("%s: %v", shard, err)
					return
				}
				mu.Lock()
				if prev, dup := seen[s.Token()]; dup {
					t.Errorf("token %q minted by both %s and %s", s.Token(), prev, shard)
				}
				seen[s.Token()] = shard
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 32 {
		t.Fatalf("minted %d distinct tokens, want 32", len(seen))
	}
}

// TestLifecycleResumeMintMarker: a token whose shard died between mint and
// first checkpoint holds only the reservation marker; resuming it must
// report unknown-session (the client re-hellos from zero), not feed the
// marker to the checkpoint decoder.
func TestLifecycleResumeMintMarker(t *testing.T) {
	cfg := testConfig()
	st := store.NewMemStore()
	if won, err := st.Reserve("s000001"); err != nil || !won {
		t.Fatalf("Reserve = (%v, %v)", won, err)
	}
	mgr, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.Resume("s000001", obs.TraceID{}, cfg); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Resume of a mint marker = %v, want ErrUnknownSession", err)
	}
}

// TestLifecycleAdoptionMetrics: a resume restoring a checkpoint written by
// a different manager counts as an adoption exactly once; a local
// detach/resume cycle on the same token afterwards does not.
func TestLifecycleAdoptionMetrics(t *testing.T) {
	cfg := testConfig()
	edges := testEdges(cfg)
	st := store.NewMemStore()
	shardA, err := NewManager(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.NewHub(1)
	shardB, err := NewManager(st, hub.Serve())
	if err != nil {
		t.Fatal(err)
	}
	shardB.SetShard("shard-b")

	adoptions := func() float64 {
		var v float64
		for _, p := range hub.Snapshot().Metrics {
			if p.Name == "streamcover_serve_adoptions_total" {
				v = p.Value
			}
		}
		return v
	}

	sa := mustOpen(t, shardA, "adoptme", cfg)
	feed(sa, edges[:len(edges)/2])
	if _, err := shardA.Detach(sa, "shard-kill"); err != nil {
		t.Fatal(err)
	}
	sb, pos, err := shardB.Resume("adoptme", obs.TraceID{}, cfg)
	if err != nil || pos != len(edges)/2 {
		t.Fatalf("adopting resume: pos=%d err=%v", pos, err)
	}
	if got := adoptions(); got != 1 {
		t.Fatalf("adoptions_total = %v after a cross-shard resume, want 1", got)
	}
	if _, err := shardB.Detach(sb, "local-cycle"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := shardB.Resume("adoptme", obs.TraceID{}, cfg); err != nil {
		t.Fatal(err)
	}
	if got := adoptions(); got != 1 {
		t.Fatalf("adoptions_total = %v after a local reattach, want still 1", got)
	}
}

// TestLifecycleMintSkipsActiveTokens covers the in-process flavor of the
// same collision: a client-chosen token shaped like a minted one.
func TestLifecycleMintSkipsActiveTokens(t *testing.T) {
	cfg := testConfig()
	mgr, err := NewManager(store.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustOpen(t, mgr, "s000001", cfg)
	minted := mustOpen(t, mgr, "", cfg)
	if minted.Token() == "s000001" {
		t.Fatal("minted a token that is currently attached")
	}
}

// TestLifecycleDetachBytesMatchStore pins the satellite fix: checkpoint
// size comes from the store's Put return, not a filesystem re-stat, and it
// must equal the blob the store actually holds.
func TestLifecycleDetachBytesMatchStore(t *testing.T) {
	cfg := testConfig()
	hub := obs.NewHub(1)
	so := hub.Serve()
	st := store.NewMemStore()
	mgr, err := NewManager(st, so)
	if err != nil {
		t.Fatal(err)
	}
	sess := mustOpen(t, mgr, "sized", cfg)
	feed(sess, testEdges(cfg))
	if _, err := mgr.Detach(sess, "size-check"); err != nil {
		t.Fatal(err)
	}
	blob, err := st.Get("sized")
	if err != nil {
		t.Fatal(err)
	}
	var putBytes float64
	for _, p := range hub.Snapshot().Metrics {
		if p.Name == "streamcover_serve_store_put_bytes_total" {
			putBytes = p.Value
		}
	}
	if int(putBytes) != len(blob) {
		t.Fatalf("store_put_bytes_total = %v, stored blob is %d bytes", putBytes, len(blob))
	}
}

// TestLifecycleRejections covers the typed error surface the transport
// maps to wire codes.
func TestLifecycleRejections(t *testing.T) {
	cfg := testConfig()
	mgr, err := NewManager(store.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open("../escape", obs.TraceID{}, cfg); !errors.Is(err, ErrToken) {
		t.Fatalf("Open(../escape) = %v, want ErrToken", err)
	}
	if _, _, err := mgr.Resume(".hidden", obs.TraceID{}, cfg); !errors.Is(err, ErrToken) {
		t.Fatalf("Resume(.hidden) = %v, want ErrToken", err)
	}
	if _, _, err := mgr.Resume("ghost", obs.TraceID{}, cfg); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Resume(ghost) = %v, want ErrUnknownSession", err)
	}
	sess := mustOpen(t, mgr, "dup", cfg)
	if _, err := mgr.Open("dup", obs.TraceID{}, cfg); !errors.Is(err, ErrSessionActive) {
		t.Fatalf("Open(dup) = %v, want ErrSessionActive", err)
	}
	bad := cfg
	bad.Algo = "no-such-alg"
	if _, err := mgr.Open("", obs.TraceID{}, bad); err == nil {
		t.Fatal("Open with unknown algorithm succeeded")
	}
	mgr.Drain()
	if _, err := mgr.Open("", obs.TraceID{}, cfg); !errors.Is(err, ErrDraining) {
		t.Fatalf("Open while draining = %v, want ErrDraining", err)
	}
	if _, _, err := mgr.Resume("dup", obs.TraceID{}, cfg); !errors.Is(err, ErrDraining) {
		t.Fatalf("Resume while draining = %v, want ErrDraining", err)
	}
	if _, err := mgr.Detach(sess, "cleanup"); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleStoreName pins the backend names stamped on wide events.
func TestLifecycleStoreName(t *testing.T) {
	m, err := NewManager(store.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.StoreName() != "mem" {
		t.Fatalf("StoreName = %q, want mem", m.StoreName())
	}
}
