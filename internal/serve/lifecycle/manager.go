package lifecycle

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/serve/store"
	"streamcover/internal/stream"
)

// ErrSessionActive reports a hello or resume naming a token that is
// currently attached to another connection.
var ErrSessionActive = errors.New("serve: session already attached")

// ErrUnknownSession reports a resume naming a token with no checkpoint in
// the store.
var ErrUnknownSession = errors.New("serve: unknown session")

// ErrDraining reports an open or resume rejected because the manager is
// draining for shutdown. The transport maps it to a shutdown error frame;
// the client package wraps it into its remote-error family.
var ErrDraining = errors.New("server draining")

// ErrToken reports a client-chosen session token outside the
// filename-safe alphabet (store.ValidToken). The transport maps it to a
// bad-frame error code.
var ErrToken = errors.New("serve: invalid session token")

// lockStripes shards the attached-session table so opens, flushes and
// detaches of independent sessions stop serializing on one mutex. Tokens
// hash to stripes; operations on one token only ever touch its stripe.
// Power of two; sized with headroom over the contention knee measured by
// BenchmarkServeSessionsScaling (DESIGN.md §4j).
const lockStripes = 32

// managerStripe is one shard of the attached-session table, padded out to
// a cache line so stripes don't false-share under concurrent opens.
type managerStripe struct {
	mu     sync.Mutex
	active map[string]*Session
	_      [48]byte
}

// Manager owns the server's multi-tenant session state: which tokens are
// attached, and the checkpoint store that carries detached sessions across
// disconnects (and across server restarts — resume is driven purely by the
// stored SCCKPT1 blob, not by in-memory state). The manager serializes
// checkpoints itself and moves only opaque bytes through the store, so the
// same Manager runs against a directory, process memory, or the planned
// cluster store.
//
// The attached-token table is striped by token hash: sessions on different
// tokens attach, flush and detach without sharing a lock. Server-chosen
// token minting stays globally consistent — one mint lock serializes the
// counter and its store consultation — but minting is off the per-frame
// path entirely.
type Manager struct {
	store     store.CheckpointStore
	storeName string
	shard     string // set by SetShard before serving starts
	so        *obs.ServeObs

	draining atomic.Bool

	mintMu sync.Mutex // serializes server-chosen token assignment
	nextID uint64     // guarded by mintMu

	// localCkpt remembers every token this process has checkpointed, so a
	// resume can tell a local reattach from a cross-shard adoption (a
	// checkpoint some other process wrote into the shared store).
	ckptMu    sync.Mutex
	localCkpt map[string]struct{}

	stripes [lockStripes]managerStripe
}

// NewManager creates a manager persisting detach checkpoints in st. so may
// be nil to disable instrumentation.
func NewManager(st store.CheckpointStore, so *obs.ServeObs) (*Manager, error) {
	if st == nil {
		return nil, errors.New("serve: manager needs a checkpoint store")
	}
	name := "custom"
	if named, ok := st.(fmt.Stringer); ok {
		name = named.String()
	}
	m := &Manager{store: st, storeName: name, so: so, localCkpt: make(map[string]struct{})}
	for i := range m.stripes {
		m.stripes[i].active = make(map[string]*Session)
	}
	return m, nil
}

// SetShard names this serving process on every wide event it emits, so a
// fleet's merged event streams stay attributable. Call before the manager
// starts serving connections; the field is read without synchronization
// afterwards.
func (m *Manager) SetShard(shard string) { m.shard = shard }

// Shard reports the shard name ("" for a standalone server).
func (m *Manager) Shard() string { return m.shard }

// Store exposes the manager's checkpoint store (tests and tooling inspect
// it).
func (m *Manager) Store() store.CheckpointStore { return m.store }

// StoreName reports the store backend's name ("dir", "mem", or "custom"),
// as stamped on detach/resume wide events.
func (m *Manager) StoreName() string { return m.storeName }

// stripeFor hashes a token (FNV-1a) to its lock stripe.
func (m *Manager) stripeFor(token string) *managerStripe {
	h := uint32(2166136261)
	for i := 0; i < len(token); i++ {
		h = (h ^ uint32(token[i])) * 16777619
	}
	return &m.stripes[h&(lockStripes-1)]
}

// claim reserves token in its stripe, failing if it is already attached.
// The session pointer may be nil while the session is still being built;
// adopt fills it in.
func (m *Manager) claim(token string, s *Session) error {
	st := m.stripeFor(token)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.active[token]; ok {
		return fmt.Errorf("%w: %q", ErrSessionActive, token)
	}
	st.active[token] = s
	return nil
}

// adopt records the built session under its already-claimed token.
func (m *Manager) adopt(token string, s *Session) {
	st := m.stripeFor(token)
	st.mu.Lock()
	st.active[token] = s
	st.mu.Unlock()
}

// unclaim forgets a claimed token (failed open/resume, or release).
func (m *Manager) unclaim(token string) {
	st := m.stripeFor(token)
	st.mu.Lock()
	delete(st.active, token)
	st.mu.Unlock()
}

// attached reports whether token is currently claimed.
func (m *Manager) attached(token string) bool {
	st := m.stripeFor(token)
	st.mu.Lock()
	_, ok := st.active[token]
	st.mu.Unlock()
	return ok
}

// mintToken assigns the next server-chosen token, skipping tokens that are
// currently attached or already hold a checkpoint in the store — the
// in-memory counter resets on restart, and colliding with a detached
// checkpoint left by the previous process would let Finish delete state a
// client still intends to resume.
//
// The List snapshot alone is not enough once several shards mint against
// one shared store: two shards can List, see the same gap, and both hand
// out the same token. When the store can Reserve (every shipped backend
// can), the candidate is atomically claimed in the store itself before it
// is returned — losing the race just advances to the next candidate.
// reserved reports whether such a store-side reservation is being held;
// the caller owns it (checkpoint over it, or Delete it on failure).
func (m *Manager) mintToken() (tok string, reserved bool, err error) {
	m.mintMu.Lock()
	defer m.mintMu.Unlock()
	held, err := m.store.List()
	if err != nil {
		return "", false, fmt.Errorf("serve: minting token: %w", err)
	}
	taken := make(map[string]struct{}, len(held))
	for _, t := range held {
		taken[t] = struct{}{}
	}
	reserver, canReserve := m.store.(store.Reserver)
	for {
		m.nextID++
		tok := fmt.Sprintf("s%06d", m.nextID)
		if _, holds := taken[tok]; holds {
			continue
		}
		if m.attached(tok) {
			continue
		}
		if !canReserve {
			return tok, false, nil
		}
		won, err := reserver.Reserve(tok)
		if err != nil {
			return "", false, fmt.Errorf("serve: minting token: %w", err)
		}
		if !won {
			// Another shard minted (or a client checkpointed) this token
			// after our List snapshot; keep walking the counter.
			continue
		}
		return tok, true, nil
	}
}

// Open starts a fresh session for cfg. An empty token asks the manager to
// assign one; a client-chosen token must be filename-safe and not
// currently attached. A zero trace asks the manager to mint the session's
// identity (v1 clients never send one); a non-zero trace — minted by the
// client — is adopted as-is.
//
// The token is claimed in its stripe before the algorithm is built, so
// concurrent opens of independent tokens proceed in parallel and a
// duplicate open fails fast; the claim is dropped if the build fails.
func (m *Manager) Open(token string, trace obs.TraceID, cfg Config) (*Session, error) {
	if m.draining.Load() {
		return nil, ErrDraining
	}
	minted := false
	if token == "" {
		for {
			t, reserved, err := m.mintToken()
			if err != nil {
				return nil, err
			}
			if err := m.claim(t, nil); err == nil {
				token, minted = t, reserved
				break
			}
			// An explicit hello raced us to the minted token between mint
			// and claim; drop any store-side reservation and mint the next.
			if reserved {
				m.store.Delete(t)
			}
		}
	} else {
		if !store.ValidToken(token) {
			return nil, fmt.Errorf("%w: %q", ErrToken, token)
		}
		if err := m.claim(token, nil); err != nil {
			return nil, err
		}
	}
	alg, err := Build(cfg)
	if err != nil {
		m.unclaim(token)
		if minted {
			m.store.Delete(token)
		}
		return nil, err
	}
	if trace.IsZero() {
		trace = obs.NewTraceID()
	}
	tslot := m.so.AcquireSession(token, cfg.Algo, trace, false, 0)
	s := newSession(token, trace, cfg, alg, 0, m.so, tslot)
	// A minted token holds a store-side reservation blob; marking the
	// session persisted makes Finish delete it, exactly as it would a real
	// detach checkpoint.
	s.persisted = minted
	m.adopt(token, s)
	m.so.SessionOpened(false)
	if m.so.Eventing() {
		m.so.Event(obs.SessionEvent{
			Event: obs.EventSessionOpen, Token: token, Trace: trace.String(), Algo: cfg.Algo,
			Shard: m.shard,
		})
	}
	return s, nil
}

// Resume reattaches a detached session: it rebuilds the algorithm from cfg
// and restores the token's checkpoint into it, returning the session and
// the stream position the client must resend from. A checkpoint written by
// a different algorithm or instance shape surfaces the snap layer's typed
// mismatch error (snap.ErrMismatch), which the transport maps to a
// mismatch error frame.
// The session's identity comes from the checkpoint when it carries one:
// the trace stamped at the original open wins over whatever the resuming
// client proposes, so one identity follows the session across every
// disconnect. Pre-trace checkpoints fall back to the client's trace, then
// to a fresh mint.
//
// The token is claimed before the store read, so concurrent resumes of the
// same token can't both restore the checkpoint, and resumes of independent
// tokens don't serialize on each other's store I/O.
func (m *Manager) Resume(token string, trace obs.TraceID, cfg Config) (*Session, int, error) {
	if m.draining.Load() {
		return nil, 0, ErrDraining
	}
	if !store.ValidToken(token) {
		return nil, 0, fmt.Errorf("%w: %q", ErrToken, token)
	}
	if err := m.claim(token, nil); err != nil {
		return nil, 0, err
	}
	alg, err := Build(cfg)
	if err != nil {
		m.unclaim(token)
		return nil, 0, err
	}
	t0 := time.Now()
	blob, err := m.store.Get(token)
	if err != nil {
		m.unclaim(token)
		if errors.Is(err, store.ErrNotFound) {
			return nil, 0, fmt.Errorf("%w: %q has no checkpoint", ErrUnknownSession, token)
		}
		return nil, 0, fmt.Errorf("serve: resume %q: %w", token, err)
	}
	if store.IsMintMarker(blob) {
		// The token is a mint reservation that never checkpointed — its
		// shard died before the first detach. There is no state to restore;
		// unknown-session tells the client to re-hello from position zero.
		m.unclaim(token)
		return nil, 0, fmt.Errorf("%w: %q was minted but never checkpointed", ErrUnknownSession, token)
	}
	m.so.StoreGet(len(blob), time.Since(t0).Nanoseconds())
	pos, ckptTrace, err := stream.ReadCheckpointTraced(bytes.NewReader(blob), alg)
	if err != nil {
		m.unclaim(token)
		return nil, 0, fmt.Errorf("serve: resume %q: %w", token, err)
	}
	adopted := !m.checkpointedHere(token)
	if adopted {
		m.so.Adoption(time.Since(t0).Nanoseconds())
	}
	if !ckptTrace.IsZero() {
		trace = ckptTrace
	} else if trace.IsZero() {
		trace = obs.NewTraceID()
	}
	tslot := m.so.AcquireSession(token, cfg.Algo, trace, true, int64(pos))
	s := newSession(token, trace, cfg, alg, pos, m.so, tslot)
	s.persisted = true
	m.adopt(token, s)
	m.so.SessionOpened(true)
	if m.so.Eventing() {
		m.so.Event(obs.SessionEvent{
			Event: obs.EventSessionResume, Token: token, Trace: trace.String(), Algo: cfg.Algo,
			Edges: int64(pos), Store: m.storeName, Shard: m.shard, Adopted: adopted,
		})
	}
	return s, pos, nil
}

// checkpointedHere reports whether this process ever wrote a checkpoint
// for token — false means a resume of it is a cross-shard adoption.
func (m *Manager) checkpointedHere(token string) bool {
	m.ckptMu.Lock()
	_, ok := m.localCkpt[token]
	m.ckptMu.Unlock()
	return ok
}

// putCheckpoint serializes s's state at pos into a trace-stamped SCCKPT1
// envelope and stores it, returning the authoritative byte size straight
// from the store's Put — no re-stat, and no filesystem assumed.
func (m *Manager) putCheckpoint(s *Session, pos int) (int, error) {
	var buf bytes.Buffer
	if err := stream.WriteCheckpointTraced(&buf, pos, s.trace, s.alg); err != nil {
		return 0, err
	}
	t0 := time.Now()
	n, err := m.store.Put(s.token, buf.Bytes())
	if err != nil {
		return 0, err
	}
	m.so.StorePut(n, time.Since(t0).Nanoseconds())
	s.persisted = true
	m.ckptMu.Lock()
	m.localCkpt[s.token] = struct{}{}
	m.ckptMu.Unlock()
	return n, nil
}

// Detach drains s, persists its checkpoint — stamped with the session's
// trace ID — and releases the token. It serves both the graceful detach
// frame and abrupt disconnects, with cause recording which ("detach-frame",
// "disconnect", an error string); the two paths must behave identically for
// disconnect tolerance to hold.
func (m *Manager) Detach(s *Session, cause string) (int, error) {
	pos, err := s.stop()
	if err != nil {
		m.fail(s, cause, err)
		return 0, err
	}
	n, err := m.putCheckpoint(s, pos)
	if err != nil {
		err = fmt.Errorf("serve: checkpoint %q: %w", s.token, err)
		m.fail(s, cause, err)
		return pos, err
	}
	m.so.Checkpoint(n)
	s.tslot.Checkpoint(int64(n))
	s.tslot.SetState(obs.StateDetached)
	m.release(s.token)
	if m.so.Eventing() {
		m.so.Event(obs.SessionEvent{
			Event: obs.EventSessionDetach, Token: s.token, Trace: s.trace.String(), Algo: s.cfg.Algo,
			Edges: int64(pos), IngestStalls: s.tslot.Stalls(), CheckpointBytes: int64(n), Cause: cause,
			Store: m.storeName, Shard: m.shard,
		})
	}
	s.retire()
	return pos, nil
}

// Finish drains s, finishes the algorithm and retires the session for
// good, removing any detach checkpoint left by an earlier disconnect.
func (m *Manager) Finish(s *Session) (Result, error) {
	res, err := s.finish()
	if err != nil {
		m.fail(s, "finish", err)
		return res, err
	}
	s.tslot.SetState(obs.StateFinished)
	m.release(s.token)
	if s.persisted {
		m.store.Delete(s.token) // best-effort: the file may be gone already
	}
	if m.so.Eventing() {
		m.so.Event(obs.SessionEvent{
			Event: obs.EventSessionFinish, Token: s.token, Trace: s.trace.String(), Algo: s.cfg.Algo,
			Edges: int64(res.Edges), IngestStalls: s.tslot.Stalls(), Shard: m.shard,
		})
	}
	s.retire()
	return res, err
}

// fail retires a session whose drain, checkpoint or finish went wrong. The
// ring is not recycled — a session that failed mid-control may not be
// quiescent.
func (m *Manager) fail(s *Session, cause string, err error) {
	s.tslot.SetState(obs.StateFailed)
	m.release(s.token)
	if m.so.Eventing() {
		m.so.Event(obs.SessionEvent{
			Event: obs.EventSessionFail, Token: s.token, Trace: s.trace.String(), Algo: s.cfg.Algo,
			IngestStalls: s.tslot.Stalls(), Cause: cause + ": " + err.Error(), Shard: m.shard,
		})
	}
}

// release forgets an attached token. The caller has already retired the
// session worker.
func (m *Manager) release(token string) {
	m.unclaim(token)
	m.so.SessionClosed()
}

// Drain rejects all future hellos and resumes (a shutdown error frame on
// the wire). Attached sessions keep running until their connections close;
// the server's shutdown path then detaches each with a checkpoint.
func (m *Manager) Drain() {
	if !m.draining.Swap(true) {
		if m.so.Eventing() {
			m.so.Event(obs.SessionEvent{Event: obs.EventServerDrain, Active: int64(m.Active()), Shard: m.shard})
		}
	}
}

// Active reports the number of attached sessions.
func (m *Manager) Active() int {
	n := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		n += len(st.active)
		st.mu.Unlock()
	}
	return n
}
