package lifecycle

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestLifecycleImportsStayNarrow enforces the layering contract from the
// package doc: the lifecycle layer must run anywhere — in a shard with no
// listener, against a store with no filesystem — so its non-test sources
// may import neither the network nor the OS. (The test itself may: test
// files are not part of the package's import graph.)
func TestLifecycleImportsStayNarrow(t *testing.T) {
	banned := map[string]string{
		"net":           "transport owns connections",
		"os":            "store owns persistence",
		"path/filepath": "store owns on-disk layout",
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatal(err)
			}
			if why, bad := banned[path]; bad {
				t.Errorf("%s imports %q — forbidden in the lifecycle layer (%s)", name, path, why)
			}
		}
	}
}
