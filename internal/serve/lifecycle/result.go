package lifecycle

import (
	"hash/fnv"

	"streamcover/internal/setcover"
	"streamcover/internal/space"
)

// Result is a finished session's complete observable output: everything the
// library's Result carries that crosses the wire.
type Result struct {
	// Edges is the number of edges the session processed.
	Edges int
	// Cover is the output cover with its certificate.
	Cover *setcover.Cover
	// Space is the algorithm's peak space report.
	Space space.Usage
}

// Fingerprint folds the session's complete observable output into one
// FNV-64a hash — chosen sets, full certificate, edge count and both space
// meters — using exactly the scheme of the repository's golden regression
// fixtures. Two runs with equal fingerprints produced byte-identical
// output, which is how the kill-and-reconnect smoke test and the serve
// golden tests compare a resumed session against an uninterrupted one.
func (r Result) Fingerprint() uint64 {
	h := fnv.New64a()
	write := func(v int64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	write(int64(len(r.Cover.Sets)))
	for _, s := range r.Cover.Sets {
		write(int64(s))
	}
	write(int64(len(r.Cover.Certificate)))
	for _, s := range r.Cover.Certificate {
		write(int64(s))
	}
	write(int64(r.Edges))
	write(r.Space.State)
	write(r.Space.Aux)
	return h.Sum64()
}
