package lifecycle

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/kk"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Config is the shape of one session's algorithm, carried verbatim in
// hello and resume frames. Two sessions with equal Configs build
// bit-identical algorithm instances, which is what makes server-side runs
// reproducible against local ones and resumes checkable against their
// checkpoints.
type Config struct {
	// Algo names a registered algorithm (kk, alg1, alg2, es by default).
	Algo string
	// N and M are the universe size and set count.
	N, M int
	// StreamLen is the total stream length (alg1's schedule needs it).
	StreamLen int
	// Seed derives every copy's generator deterministically.
	Seed uint64
	// Copies > 1 wraps the algorithm in a stream.Ensemble of independently
	// seeded copies; 0 and 1 both mean a single instance.
	Copies int
	// Alpha is the approximation target for alg2/es; 0 picks 2√n.
	Alpha float64
}

// validate rejects shapes no factory could build.
func (c Config) validate() error {
	if c.Algo == "" {
		return errors.New("serve: config names no algorithm")
	}
	if c.N <= 0 || c.M <= 0 {
		return fmt.Errorf("serve: invalid shape n=%d m=%d", c.N, c.M)
	}
	if c.StreamLen < 0 || c.Copies < 0 {
		return fmt.Errorf("serve: invalid config (streamLen=%d copies=%d)", c.StreamLen, c.Copies)
	}
	return nil
}

// alpha resolves the approximation target, defaulting to 2√n like scrun.
func (c Config) alpha() float64 {
	if c.Alpha > 0 {
		return c.Alpha
	}
	return 2 * math.Sqrt(float64(c.N))
}

// Factory builds one algorithm copy for a session configuration, drawing
// coins from rng (already split per copy).
type Factory func(cfg Config, rng *xrand.Rand) stream.Algorithm

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{
		"kk": func(cfg Config, rng *xrand.Rand) stream.Algorithm {
			return kk.New(cfg.N, cfg.M, rng)
		},
		"alg1": func(cfg Config, rng *xrand.Rand) stream.Algorithm {
			return core.New(cfg.N, cfg.M, cfg.StreamLen, core.DefaultParams(cfg.N, cfg.M), rng)
		},
		"alg2": func(cfg Config, rng *xrand.Rand) stream.Algorithm {
			return adversarial.New(cfg.N, cfg.M, cfg.alpha(), rng)
		},
		"es": func(cfg Config, rng *xrand.Rand) stream.Algorithm {
			return elementsampling.New(cfg.N, cfg.M, cfg.alpha(), rng)
		},
	}
)

// Register adds (or replaces) an algorithm factory under the given name, so
// embedders can serve their own streaming algorithms through the same
// session manager.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("serve: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build constructs the session algorithm for cfg: one copy seeded straight
// from cfg.Seed (so a served single-copy run is bit-identical to a local
// run with the same seed, golden fingerprints included), or an Ensemble of
// cfg.Copies copies each seeded from one Split of the seed generator —
// mirroring scrun's -copies seeding.
func Build(cfg Config) (stream.Algorithm, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	regMu.RLock()
	f, ok := registry[cfg.Algo]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown algorithm %q (registered: %v)", cfg.Algo, Algorithms())
	}
	rng := xrand.New(cfg.Seed)
	if cfg.Copies <= 1 {
		return f(cfg, rng), nil
	}
	copies := make([]stream.Algorithm, cfg.Copies)
	for i := range copies {
		copies[i] = f(cfg, rng.Split())
	}
	return stream.NewEnsemble(copies...), nil
}
