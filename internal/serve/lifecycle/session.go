package lifecycle

import (
	"fmt"

	"streamcover/internal/obs"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// MaxBatch is the largest number of edges one ingest batch may carry. It
// matches stream.BatchSize so a served batch drains through ProcessBatch
// in one call, and keeps a session's ring (ringDepth × MaxBatch edges)
// modest enough to hold hundreds of concurrent sessions. The transport
// enforces the same bound on edges frames.
const MaxBatch = 4096

// ringDepth is the number of reusable edge buffers in a session's inbound
// ring. Depth 4 lets the connection reader decode ahead of the algorithm
// (the same triple-buffering argument as the stream Prefetcher) while
// bounding resident per-session ingest memory at ringDepth × MaxBatch
// edges.
const ringDepth = 4

// ctlKind selects a control action delivered through the session ring, so
// control observes strict FIFO order with respect to edge batches.
type ctlKind uint8

const (
	ctlNone ctlKind = iota
	ctlFlush
	ctlFinish
	ctlStop // park the worker without finishing (detach path)
)

// slot is one unit handed from the ingest side to the session worker: an
// edge buffer index, or a control request.
type slot struct {
	idx int // ring buffer index; -1 for control slots
	n   int
	ctl ctlKind
}

// reply answers a control slot.
type reply struct {
	pos int
	res Result
	err error
}

// Session runs one algorithm instance fed from outside the package. The
// transport leases ring buffers with Reserve, decodes edges into them
// (zero allocations per batch in steady state — the lifecycle never sees
// wire bytes) and commits them with Enqueue; the worker goroutine drains
// them through ProcessBatch — the library's batched hot path. All Session
// methods are called from a single feeding goroutine (the connection
// reader); the worker is the only other goroutine touching the algorithm.
type Session struct {
	token string
	trace obs.TraceID // session identity: minted at open, survives resume
	cfg   Config
	alg   stream.Algorithm

	bufs     [][]stream.Edge
	free     chan int
	full     chan slot
	resCh    chan reply
	reserved int // buffer index leased by Reserve, pending Enqueue/Release

	stopped bool // worker has exited (finish or stop delivered)
	so      *obs.ServeObs
	tslot   *obs.SessionSlot // per-session telemetry row (nil when off)
}

// newSession wraps alg (built for cfg) in a fresh ring and starts the
// worker. pos is the stream position the algorithm state corresponds to
// (0 for new sessions, the checkpoint position for resumed ones).
func newSession(token string, trace obs.TraceID, cfg Config, alg stream.Algorithm, pos int, so *obs.ServeObs, tslot *obs.SessionSlot) *Session {
	s := &Session{
		token:    token,
		trace:    trace,
		cfg:      cfg,
		alg:      alg,
		bufs:     make([][]stream.Edge, ringDepth),
		free:     make(chan int, ringDepth),
		full:     make(chan slot, ringDepth),
		resCh:    make(chan reply, 1),
		reserved: -1,
		so:       so,
		tslot:    tslot,
	}
	for i := range s.bufs {
		s.bufs[i] = make([]stream.Edge, MaxBatch)
		s.free <- i
	}
	go s.worker(pos)
	return s
}

// Token reports the session's token.
func (s *Session) Token() string { return s.token }

// Trace reports the session's identity: minted at open, carried by every
// checkpoint, surviving resume.
func (s *Session) Trace() obs.TraceID { return s.trace }

// Config reports the configuration the session's algorithm was built from.
func (s *Session) Config() Config { return s.cfg }

// worker drains the ring into the algorithm. It owns the algorithm and the
// position counter until a finish or stop control slot retires it; the
// reply channel's happens-before edge publishes the state back to the
// feeding goroutine.
func (s *Session) worker(pos int) {
	bp, isBP := s.alg.(stream.BatchProcessor)
	for sl := range s.full {
		switch sl.ctl {
		case ctlNone:
			batch := s.bufs[sl.idx][:sl.n]
			if isBP {
				bp.ProcessBatch(batch)
			} else {
				for _, e := range batch {
					s.alg.Process(e)
				}
			}
			pos += sl.n
			s.free <- sl.idx
		case ctlFlush:
			s.resCh <- reply{pos: pos}
		case ctlFinish:
			res := Result{Edges: pos, Cover: s.alg.Finish()}
			if rep, ok := s.alg.(space.Reporter); ok {
				res.Space = rep.Space()
			}
			s.resCh <- reply{pos: pos, res: res}
			return
		case ctlStop:
			s.resCh <- reply{pos: pos}
			return
		}
	}
}

// Reserve leases the next free ring buffer (capacity MaxBatch) for the
// caller to decode an edge batch into. When the ring is full the caller
// blocks until the worker frees a buffer — that is the backpressure path,
// counted as an ingest stall. Every Reserve must be paired with exactly
// one Enqueue (to commit) or Release (to abandon).
func (s *Session) Reserve() []stream.Edge {
	var idx int
	select {
	case idx = <-s.free:
	default:
		s.so.IngestStall()
		s.tslot.Stall()
		idx = <-s.free
	}
	s.reserved = idx
	return s.bufs[idx]
}

// Enqueue commits the first n edges of the buffer leased by Reserve,
// queueing them for the worker.
func (s *Session) Enqueue(n int) {
	s.full <- slot{idx: s.reserved, n: n}
	s.reserved = -1
	s.so.Batch(n)
	s.tslot.Batch(n, len(s.full))
}

// Release returns the buffer leased by Reserve untouched (the caller's
// decode failed; nothing reaches the algorithm).
func (s *Session) Release() {
	s.free <- s.reserved
	s.reserved = -1
}

// control queues a control slot and waits for the worker's reply.
func (s *Session) control(k ctlKind) reply {
	if s.stopped {
		return reply{err: fmt.Errorf("serve: session %s already stopped", s.token)}
	}
	s.full <- slot{idx: -1, ctl: k}
	r := <-s.resCh
	if k == ctlFinish || k == ctlStop {
		s.stopped = true
		close(s.full)
	}
	return r
}

// Flush waits until everything queued so far has been processed and
// returns the consumed position.
func (s *Session) Flush() (int, error) {
	r := s.control(ctlFlush)
	return r.pos, r.err
}

// finish drains the ring, finishes the algorithm and returns the result.
// The session is dead afterwards.
func (s *Session) finish() (Result, error) {
	r := s.control(ctlFinish)
	return r.res, r.err
}

// stop drains the ring and parks the worker without finishing, returning
// the consumed position. The algorithm may be snapshotted afterwards (the
// reply established the happens-before edge).
func (s *Session) stop() (int, error) {
	r := s.control(ctlStop)
	return r.pos, r.err
}
