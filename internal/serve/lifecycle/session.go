package lifecycle

import (
	"fmt"
	"sync"

	"streamcover/internal/obs"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// MaxBatch is the largest number of edges one ingest batch may carry. It
// matches stream.BatchSize so a served batch drains through ProcessBatch
// in one call, and keeps a session's ring (ringDepth × MaxBatch edges)
// modest enough to hold hundreds of concurrent sessions. The transport
// enforces the same bound on edges frames.
const MaxBatch = 4096

// ringDepth is the number of reusable edge buffers in a session's inbound
// ring. Depth 4 lets the connection reader decode ahead of the algorithm
// (the same triple-buffering argument as the stream Prefetcher) while
// bounding resident per-session ingest memory at ringDepth × MaxBatch
// edges.
const ringDepth = 4

// ctlKind selects a control action delivered through the session ring, so
// control observes strict FIFO order with respect to edge batches.
type ctlKind uint8

const (
	ctlNone ctlKind = iota
	ctlFlush
	ctlFinish
	ctlStop // park the worker without finishing (detach path)
)

// slot is one unit handed from the ingest side to the session worker: an
// edge buffer index, or a control request.
type slot struct {
	idx int // ring buffer index; -1 for control slots
	n   int
	ctl ctlKind
}

// reply answers a control slot.
type reply struct {
	pos int
	res Result
	err error
}

// ring is a session's reusable ingest machinery: the edge buffers and the
// channels that hand them between the connection reader and the worker.
// It is by far the heaviest per-session allocation (ringDepth × MaxBatch
// edges), so retired sessions return their quiescent rings to a pool and
// fresh opens start with warm buffers.
type ring struct {
	bufs  [][]stream.Edge
	free  chan int
	full  chan slot
	resCh chan reply
}

// ringFree recycles quiescent rings. A plain free-list rather than a
// sync.Pool: rings are the heaviest per-session allocation and a GC cycle
// between sessions would otherwise throw the warm buffers away, turning
// session churn into steady-state allocation. Bounded at maxPooledRings so
// a session spike does not pin its peak working set forever.
var ringFree struct {
	mu sync.Mutex
	xs []*ring
}

const maxPooledRings = 256

func newRing() *ring {
	ringFree.mu.Lock()
	if n := len(ringFree.xs); n > 0 {
		r := ringFree.xs[n-1]
		ringFree.xs[n-1] = nil
		ringFree.xs = ringFree.xs[:n-1]
		ringFree.mu.Unlock()
		return r
	}
	ringFree.mu.Unlock()
	r := &ring{
		bufs:  make([][]stream.Edge, ringDepth),
		free:  make(chan int, ringDepth),
		full:  make(chan slot, ringDepth),
		resCh: make(chan reply, 1),
	}
	for i := range r.bufs {
		r.bufs[i] = make([]stream.Edge, MaxBatch)
		r.free <- i
	}
	return r
}

// quiescent reports whether the ring is back in its pristine state: every
// buffer in free, nothing queued, no unread reply. A cleanly stopped or
// finished worker always leaves the ring this way — the stop/finish reply
// happens strictly after every edge slot was processed and returned.
func (r *ring) quiescent() bool {
	return len(r.free) == ringDepth && len(r.full) == 0 && len(r.resCh) == 0
}

// Session runs one algorithm instance fed from outside the package. The
// transport leases ring buffers with Reserve, decodes edges into them
// (zero allocations per batch in steady state — the lifecycle never sees
// wire bytes) and commits them with Enqueue; the worker goroutine drains
// them through ProcessBatch — the library's batched hot path. All Session
// methods are called from a single feeding goroutine (the connection
// reader); the worker is the only other goroutine touching the algorithm.
type Session struct {
	token string
	trace obs.TraceID // session identity: minted at open, survives resume
	cfg   Config
	alg   stream.Algorithm

	*ring
	reserved int // buffer index leased by Reserve, pending Enqueue/Release

	stopped   bool // worker has exited (finish or stop delivered)
	persisted bool // this session's lifetime wrote or read a store checkpoint
	so        *obs.ServeObs
	tslot     *obs.SessionSlot // per-session telemetry row (nil when off)
}

// newSession wraps alg (built for cfg) in a pooled ring and starts the
// worker. pos is the stream position the algorithm state corresponds to
// (0 for new sessions, the checkpoint position for resumed ones).
func newSession(token string, trace obs.TraceID, cfg Config, alg stream.Algorithm, pos int, so *obs.ServeObs, tslot *obs.SessionSlot) *Session {
	s := &Session{
		token:    token,
		trace:    trace,
		cfg:      cfg,
		alg:      alg,
		ring:     newRing(),
		reserved: -1,
		so:       so,
		tslot:    tslot,
	}
	go s.worker(pos)
	return s
}

// retire recycles a cleanly stopped session's ring. The session keeps its
// stopped flag and loses the ring pointer, so a stale handle held past
// Detach/Finish fails on the stopped guard and can never reach a ring that
// now belongs to another session.
func (s *Session) retire() {
	r := s.ring
	s.ring = nil
	s.alg = nil
	if r != nil && r.quiescent() {
		ringFree.mu.Lock()
		if len(ringFree.xs) < maxPooledRings {
			ringFree.xs = append(ringFree.xs, r)
		}
		ringFree.mu.Unlock()
	}
}

// Token reports the session's token.
func (s *Session) Token() string { return s.token }

// Trace reports the session's identity: minted at open, carried by every
// checkpoint, surviving resume.
func (s *Session) Trace() obs.TraceID { return s.trace }

// Config reports the configuration the session's algorithm was built from.
func (s *Session) Config() Config { return s.cfg }

// worker drains the ring into the algorithm. It owns the algorithm and the
// position counter until a finish or stop control slot retires it; the
// reply channel's happens-before edge publishes the state back to the
// feeding goroutine.
func (s *Session) worker(pos int) {
	bp, isBP := s.alg.(stream.BatchProcessor)
	for sl := range s.full {
		switch sl.ctl {
		case ctlNone:
			batch := s.bufs[sl.idx][:sl.n]
			if isBP {
				bp.ProcessBatch(batch)
			} else {
				for _, e := range batch {
					s.alg.Process(e)
				}
			}
			pos += sl.n
			s.free <- sl.idx
		case ctlFlush:
			s.resCh <- reply{pos: pos}
		case ctlFinish:
			res := Result{Edges: pos, Cover: s.alg.Finish()}
			if rep, ok := s.alg.(space.Reporter); ok {
				res.Space = rep.Space()
			}
			s.resCh <- reply{pos: pos, res: res}
			return
		case ctlStop:
			s.resCh <- reply{pos: pos}
			return
		}
	}
}

// Reserve leases the next free ring buffer (capacity MaxBatch) for the
// caller to decode an edge batch into. When the ring is full the caller
// blocks until the worker frees a buffer — that is the backpressure path,
// counted as an ingest stall. Every Reserve must be paired with exactly
// one Enqueue (to commit) or Release (to abandon).
func (s *Session) Reserve() []stream.Edge {
	var idx int
	select {
	case idx = <-s.free:
	default:
		s.so.IngestStall()
		s.tslot.Stall()
		idx = <-s.free
	}
	s.reserved = idx
	return s.bufs[idx]
}

// Enqueue commits the first n edges of the buffer leased by Reserve,
// queueing them for the worker.
func (s *Session) Enqueue(n int) {
	s.full <- slot{idx: s.reserved, n: n}
	s.reserved = -1
	s.so.Batch(n)
	s.tslot.Batch(n, len(s.full))
}

// Release returns the buffer leased by Reserve untouched (the caller's
// decode failed; nothing reaches the algorithm).
func (s *Session) Release() {
	s.free <- s.reserved
	s.reserved = -1
}

// control queues a control slot and waits for the worker's reply. After a
// finish or stop the stopped flag latches: the worker has exited, the ring
// is quiescent and may be recycled, and any later call fails here without
// touching it.
func (s *Session) control(k ctlKind) reply {
	if s.stopped {
		return reply{err: fmt.Errorf("serve: session %s already stopped", s.token)}
	}
	s.full <- slot{idx: -1, ctl: k}
	r := <-s.resCh
	if k == ctlFinish || k == ctlStop {
		s.stopped = true
	}
	return r
}

// Flush waits until everything queued so far has been processed and
// returns the consumed position.
func (s *Session) Flush() (int, error) {
	r := s.control(ctlFlush)
	return r.pos, r.err
}

// finish drains the ring, finishes the algorithm and returns the result.
// The session is dead afterwards.
func (s *Session) finish() (Result, error) {
	r := s.control(ctlFinish)
	return r.res, r.err
}

// stop drains the ring and parks the worker without finishing, returning
// the consumed position. The algorithm may be snapshotted afterwards (the
// reply established the happens-before edge).
func (s *Session) stop() (int, error) {
	r := s.control(ctlStop)
	return r.pos, r.err
}
