// Package lifecycle is the session layer of the serving stack: the
// open/resume/detach/finish/drain state machine, entirely independent of
// how edges arrive or where checkpoints live. A Manager owns the
// multi-tenant session table; each Session wraps one streaming-algorithm
// instance behind a reusable ring of edge buffers that keeps the
// steady-state ingest path allocation-free.
//
// The layering contract, bottom to top:
//
//   - store (internal/serve/store) persists opaque checkpoint blobs keyed
//     by session token. The lifecycle layer serializes SCCKPT1 envelopes
//     to bytes and hands them to a CheckpointStore; it never touches a
//     filesystem itself — this package imports neither net nor os, pinned
//     by a test, so a cluster tier can run Managers against any store.
//   - lifecycle (this package) decides what sessions exist, builds their
//     algorithms from Configs, drains their rings, and turns detach into
//     a trace-stamped checkpoint Put and resume into a Get plus restore.
//   - transport (internal/serve) speaks SCWIRE1: it decodes edge frames
//     directly into buffers leased from Session.Reserve, commits them
//     with Enqueue, and maps lifecycle's typed errors onto wire error
//     codes. It is the only layer that knows about connections.
//
// The ingest handshake replaces a monolithic "parse this frame" call so
// the lifecycle never sees wire bytes: the transport calls Reserve to
// lease the next free ring buffer (blocking — with an ingest-stall count
// — when the algorithm is behind, which is the backpressure path),
// decodes into it, then either Enqueue(n) to queue n edges for the
// worker or Release to return the buffer untouched on a decode error.
package lifecycle
