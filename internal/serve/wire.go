package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"streamcover/internal/obs"
	"streamcover/internal/serve/lifecycle"
	"streamcover/internal/setcover"
	"streamcover/internal/stream"
)

// Magic opens every SCWIRE1 connection (client→server, once, before the
// first frame).
const Magic = "SCWIRE1\n"

// Protocol versions carried in hello/resume frames. Version 1 is the
// original handshake; version 2 adds a 16-byte session trace ID after the
// token (hello/resume) and after the position (helloAck), so one identity
// follows a session across disconnect, resume and checkpoint files. Servers
// accept both and reply in the version the client spoke — a v1 client never
// sees trace bytes it cannot parse.
const (
	protoV1 = 1
	protoV2 = 2
)

// Frame types. Client→server types are low, server→client types have the
// high bit set; values are part of the wire format and must stay stable.
const (
	frameHello  = 0x01 // open a new session
	frameEdges  = 0x02 // one edge batch
	frameFlush  = 0x03 // request a pos-ack once the queue has drained
	frameFinish = 0x04 // finish the algorithm, expect a result frame
	frameResume = 0x05 // reattach to a detached session
	frameDetach = 0x06 // graceful disconnect: checkpoint and ack first

	frameHelloAck = 0x81 // session token + starting position
	framePosAck   = 0x82 // flush/detach acknowledgement
	frameResult   = 0x83 // edges, cover, certificate, space meters
	frameError    = 0x84 // code byte + message
)

// Wire error codes carried by error frames, so clients can map remote
// failures back to typed errors.
const (
	codeGeneric  = 1 // anything without a more specific classification
	codeMismatch = 2 // checkpoint/algorithm/shape mismatch on resume
	codeBadFrame = 3 // malformed or out-of-protocol frame
	codeShutdown = 4 // server is draining and rejects new work
)

// Wire limits: a frame payload is bounded so a corrupt length prefix cannot
// provoke a pathological allocation. An edges frame is additionally bounded
// by MaxBatch (defined by the lifecycle layer, whose ring buffers are sized
// to it once at session creation and re-exported in serve.go).
//
// maxFramePayload bounds every frame payload. Generous enough for a
// MaxBatch edge frame of worst-case varints and for result frames of
// laptop-scale universes.
const maxFramePayload = 1 << 22

// Coalescing parameters. The read window lets one syscall surface several
// queued frames (a MaxBatch edge frame of planted-workload varints is a few
// KiB, so the server window drains ~a dozen frames per read); the write
// buffer seals frames back-to-back and ships them with one write. Sizes
// are validated by BenchmarkServeSessionsScaling — see DESIGN.md §4j.
const (
	clientReadWindow = 4 << 10  // acks are tiny; results are read once
	serverReadWindow = 64 << 10 // the ingest path: many edge frames per drain

	maxWriteQueueBytes = 64 << 10 // flush the write buffer past this size

	maxPooledBuf = 1 << 20 // pooled frameIOs drop buffers grown past this
)

// ErrWire is the family error for malformed SCWIRE1 traffic: bad magic, bad
// CRC, truncated or oversized frames, unknown frame types.
var ErrWire = errors.New("serve: wire protocol error")

// ErrRemote wraps a failure the server reported in an error frame.
var ErrRemote = errors.New("serve: remote error")

// ErrRemoteMismatch is the typed form of a code-mismatch error frame: the
// resume named a checkpoint written by a different algorithm or instance
// shape. It wraps ErrRemote.
var ErrRemoteMismatch = fmt.Errorf("%w: checkpoint mismatch", ErrRemote)

// ErrDraining is the typed form of a code-shutdown error frame: the server
// is shutting down and refused the session. It wraps both ErrRemote (for
// clients matching the remote-error family) and lifecycle.ErrDraining (the
// sentinel the session layer returns server-side), so errors.Is works on
// either side of the wire.
var ErrDraining = fmt.Errorf("%w: %w", ErrRemote, lifecycle.ErrDraining)

// frameIO reads and writes SCWIRE1 frames over one connection, reusing its
// buffers so steady-state frame traffic allocates nothing. Not safe for
// concurrent use; each endpoint owns one per connection side.
//
// Reads go through a sliding window so one syscall can surface several
// queued frames; writes seal frames back-to-back into one reusable buffer
// and, when coalescing is enabled, accumulate until a size threshold or
// the next read ships them as one write. readFrame always flushes the
// buffer first, so a request and its reply can never deadlock on unsent
// bytes.
type frameIO struct {
	rw io.ReadWriter

	// Read side: rbuf[rpos:rlen] holds bytes received but not yet consumed.
	rbuf    []byte
	rpos    int
	rlen    int
	rsize   int    // initial window size (0 picks clientReadWindow)
	armRead func() // called before each network read (deadline re-arming)

	// Write side: sealed frames accumulate back-to-back in wbuf and ship
	// as one plain write; out aliases wbuf's tail while a frame is under
	// construction (fstart marks where its length prefix begins).
	out      []byte
	wbuf     []byte
	fstart   int
	coalesce bool
	armWrite func() // called before each network write (deadline re-arming)
}

func newFrameIO(rw io.ReadWriter) *frameIO {
	return &frameIO{rw: rw, rsize: clientReadWindow}
}

// frameIOFree recycles frameIOs across connections so the read window and
// sealed-frame buffers survive and a fresh connection's frame traffic
// allocates nothing. It is a plain free-list rather than a sync.Pool: the
// warm buffers are the point, and sync.Pool drops its contents at every GC
// cycle — with session churn that showed up as steady-state allocation in
// the serving benchmarks. Retention is bounded by maxPooledIOs entries.
type frameIOFree struct {
	mu    sync.Mutex
	rsize int
	xs    []*frameIO
}

// maxPooledIOs bounds each free-list, so a connection spike does not pin
// its peak working set forever.
const maxPooledIOs = 256

var (
	serverFrameIOs = frameIOFree{rsize: serverReadWindow}
	clientFrameIOs = frameIOFree{rsize: clientReadWindow}
)

func (l *frameIOFree) get(rw io.ReadWriter) *frameIO {
	l.mu.Lock()
	var f *frameIO
	if n := len(l.xs); n > 0 {
		f = l.xs[n-1]
		l.xs[n-1] = nil
		l.xs = l.xs[:n-1]
	}
	l.mu.Unlock()
	if f == nil {
		f = &frameIO{rsize: l.rsize}
	}
	f.rw = rw
	f.coalesce = true
	return f
}

// put detaches the connection and recycles the buffers. The caller settles
// queued writes first: the server flushes (a pending reply must go out),
// the client drops (Close is the kill path and must not deliver more).
func (l *frameIOFree) put(f *frameIO) {
	f.rw = nil
	f.armRead, f.armWrite = nil, nil
	f.rpos, f.rlen = 0, 0
	f.out = nil
	f.wbuf = f.wbuf[:0]
	f.fstart = 0
	f.coalesce = false
	if cap(f.rbuf) > maxPooledBuf {
		f.rbuf = nil
	}
	if cap(f.wbuf) > maxPooledBuf {
		f.wbuf = nil
	}
	l.mu.Lock()
	if len(l.xs) < maxPooledIOs {
		l.xs = append(l.xs, f)
	}
	l.mu.Unlock()
}

func getFrameIO(rw io.ReadWriter) *frameIO { return serverFrameIOs.get(rw) }

// putFrameIO flushes anything still queued (best-effort: the connection may
// already be gone) and recycles the frameIO.
func putFrameIO(f *frameIO) {
	f.flushWrites()
	serverFrameIOs.put(f)
}

// refill compacts the window and reads more bytes from the connection. One
// refill typically surfaces several queued frames. When the window is full
// but the caller still needs more (a frame larger than the window), it
// grows toward the frame bound.
func (f *frameIO) refill() error {
	if f.rbuf == nil {
		size := f.rsize
		if size <= 0 {
			size = clientReadWindow
		}
		f.rbuf = make([]byte, size)
	}
	if f.rpos > 0 {
		f.rlen = copy(f.rbuf, f.rbuf[f.rpos:f.rlen])
		f.rpos = 0
	}
	if f.rlen == len(f.rbuf) {
		grown := make([]byte, min(2*len(f.rbuf), maxFramePayload+8))
		f.rlen = copy(grown, f.rbuf[:f.rlen])
		f.rbuf = grown
	}
	if f.armRead != nil {
		f.armRead()
	}
	n, err := f.rw.Read(f.rbuf[f.rlen:])
	f.rlen += n
	if n > 0 {
		return nil // surface err, if any, on the next refill
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// readFrame reads one frame and returns its payload (type byte included).
// The returned slice aliases the read window and is only valid until the
// next readFrame call.
func (f *frameIO) readFrame() ([]byte, error) {
	// A reply queued behind coalesced writes must hit the wire before we
	// block on the peer: the read is the flush barrier.
	if err := f.flushWrites(); err != nil {
		return nil, err
	}
	for f.rlen-f.rpos < 4 {
		if err := f.refill(); err != nil {
			if f.rlen == f.rpos {
				return nil, err // clean frame boundary: caller classifies disconnects
			}
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	n := binary.LittleEndian.Uint32(f.rbuf[f.rpos:])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("%w: frame payload length %d", ErrWire, n)
	}
	need := 4 + int(n) + 4 // header + payload + CRC trailer
	for f.rlen-f.rpos < need {
		if err := f.refill(); err != nil {
			return nil, fmt.Errorf("%w: truncated frame: %v", ErrWire, err)
		}
	}
	body := f.rbuf[f.rpos+4 : f.rpos+need]
	f.rpos += need
	payload, trailer := body[:n], body[n:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrWire)
	}
	return payload, nil
}

// beginFrame starts a frame of the given type in the next reusable write
// buffer. Body bytes are appended by the append* helpers; endFrame seals
// (and, unless coalescing, sends) it.
func (f *frameIO) beginFrame(typ byte) {
	f.fstart = len(f.wbuf)
	f.out = append(f.wbuf, 0, 0, 0, 0, typ)
}

// endFrame back-fills the length prefix, appends the CRC trailer and queues
// the sealed frame. Without coalescing — or once the queue crosses its
// size/count thresholds — the queue is flushed immediately.
func (f *frameIO) endFrame() error {
	payload := f.out[f.fstart+4:]
	if len(payload) > maxFramePayload {
		f.out = nil // abandon the frame; wbuf still ends at fstart
		return fmt.Errorf("%w: frame payload %d exceeds limit", ErrWire, len(payload))
	}
	binary.LittleEndian.PutUint32(f.out[f.fstart:], uint32(len(payload)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
	f.wbuf = append(f.out, trailer[:]...)
	f.out = nil
	if !f.coalesce || len(f.wbuf) >= maxWriteQueueBytes {
		return f.flushWrites()
	}
	return nil
}

// queueRaw queues pre-encoded bytes (the connection magic) ahead of the
// next flush, so the magic and the first frame share one write.
func (f *frameIO) queueRaw(b []byte) {
	f.wbuf = append(f.wbuf, b...)
}

// flushWrites ships every sealed frame accumulated in the write buffer as
// one write.
func (f *frameIO) flushWrites() error {
	if len(f.wbuf) == 0 {
		return nil
	}
	if f.armWrite != nil {
		f.armWrite()
	}
	_, err := f.rw.Write(f.wbuf)
	f.wbuf = f.wbuf[:0]
	return err
}

// appendUvarint is binary.AppendUvarint without the per-value stack
// spill: the bulk encoders below call it once per field.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func (f *frameIO) appendU64(v uint64) { f.out = appendUvarint(f.out, v) }

func (f *frameIO) appendI64(v int64) { f.out = binary.AppendVarint(f.out, v) }

func (f *frameIO) appendString(s string) {
	f.appendU64(uint64(len(s)))
	f.out = append(f.out, s...)
}

func (f *frameIO) appendF64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	f.out = append(f.out, b[:]...)
}

// cursor decodes a frame payload in place. Like snap.Reader it latches the
// first error so call sites decode whole frames without per-field plumbing.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail("%w: truncated varint", ErrWire)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) i64() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail("%w: truncated varint", ErrWire)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) str() string { return c.strEcho("") }

// strEcho decodes a length-prefixed string, returning prev — without
// allocating — when the bytes match it. Acks echo a token the peer already
// holds, so the steady-state reattach path decodes it for free.
func (c *cursor) strEcho(prev string) string {
	n := c.u64()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.b)) {
		c.fail("%w: string length %d exceeds frame", ErrWire, n)
		return ""
	}
	b := c.b[:n]
	c.b = c.b[n:]
	if prev != "" && string(b) == prev { // compiles to an alloc-free compare
		return prev
	}
	return string(b)
}

func (c *cursor) f64() float64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.fail("%w: truncated float", ErrWire)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v
}

// raw consumes exactly n bytes of the payload.
func (c *cursor) raw(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.fail("%w: %d raw bytes exceed frame", ErrWire, n)
		return nil
	}
	b := c.b[:n]
	c.b = c.b[n:]
	return b
}

// done fails unless the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err == nil && len(c.b) != 0 {
		c.fail("%w: %d trailing bytes in frame", ErrWire, len(c.b))
	}
	return c.err
}

// writeHello sends a hello (or resume, per typ) frame carrying the session
// token, the client's trace ID (version 2 only) and the full session
// configuration. ver selects the handshake version; the current client
// always speaks protoV2, protoV1 exists for compatibility tests.
func (f *frameIO) writeHello(typ byte, ver int, token string, trace obs.TraceID, cfg Config) error {
	if ver < protoV1 || ver > protoV2 {
		return fmt.Errorf("%w: protocol version %d", ErrWire, ver)
	}
	f.beginFrame(typ)
	f.appendU64(uint64(ver))
	f.appendString(token)
	if ver >= protoV2 {
		f.out = append(f.out, trace[:]...)
	}
	f.appendString(cfg.Algo)
	f.appendU64(uint64(cfg.N))
	f.appendU64(uint64(cfg.M))
	f.appendU64(uint64(cfg.StreamLen))
	f.appendU64(cfg.Seed)
	f.appendU64(uint64(cfg.Copies))
	f.appendF64(cfg.Alpha)
	return f.endFrame()
}

// parseHello decodes a hello/resume body (the type byte already stripped),
// accepting both handshake versions. A v1 body has no trace field and
// reports the zero trace; the returned version tells the server which reply
// format the client understands.
func parseHello(body []byte) (token string, trace obs.TraceID, ver int, cfg Config, err error) {
	c := cursor{b: body}
	v := c.u64()
	if c.err == nil && (v < protoV1 || v > protoV2) {
		return "", trace, 0, Config{}, fmt.Errorf("%w: protocol version %d", ErrWire, v)
	}
	ver = int(v)
	token = c.str()
	if ver >= protoV2 {
		copy(trace[:], c.raw(obs.TraceIDLen))
	}
	cfg.Algo = c.str()
	cfg.N = int(c.u64())
	cfg.M = int(c.u64())
	cfg.StreamLen = int(c.u64())
	cfg.Seed = c.u64()
	cfg.Copies = int(c.u64())
	cfg.Alpha = c.f64()
	return token, trace, ver, cfg, c.done()
}

// writeEdges sends one edge batch using the SCSTRM1 varint edge encoding
// (uvarint set, uvarint elem per edge), encoded in one bulk append pass.
func (f *frameIO) writeEdges(edges []stream.Edge) error {
	if len(edges) == 0 || len(edges) > MaxBatch {
		return fmt.Errorf("%w: edge batch of %d (limit %d)", ErrWire, len(edges), MaxBatch)
	}
	f.beginFrame(frameEdges)
	out := appendUvarint(f.out, uint64(len(edges)))
	for _, e := range edges {
		out = appendUvarint(out, uint64(e.Set))
		out = appendUvarint(out, uint64(e.Elem))
	}
	f.out = out
	return f.endFrame()
}

// parseEdgesInto decodes an edges body into dst, validating the count
// against the ring buffer capacity and every edge against the session
// shape. It returns the number of edges decoded.
//
// The hot loop is a windowed batch decoder in the same shape as
// stream.File's FillBatch: while a worst-case edge (two maximal varints)
// provably fits in the remaining bytes, an unrolled 1–2-byte fast path
// decodes without per-byte bounds checks; the last few edges fall back to
// the generic decoder against the exact window edge. Semantics are pinned
// to the per-edge binary.Uvarint reference by TestParseEdgesMatchesReference.
func parseEdgesInto(body []byte, dst []stream.Edge, n, m int) (int, error) {
	k, sz := binary.Uvarint(body)
	if sz <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrWire)
	}
	if k == 0 || k > uint64(len(dst)) {
		return 0, fmt.Errorf("%w: edge batch of %d (limit %d)", ErrWire, k, len(dst))
	}
	b := body[sz:]
	um, un := uint64(m), uint64(n)
	pos, i := 0, 0
	for fastEnd := len(b) - 2*binary.MaxVarintLen64; i < int(k) && pos <= fastEnd; i++ {
		var s, u uint64
		if c0 := b[pos]; c0 < 0x80 {
			s, pos = uint64(c0), pos+1
		} else if c1 := b[pos+1]; c1 < 0x80 {
			s, pos = uint64(c0&0x7f)|uint64(c1)<<7, pos+2
		} else {
			v, w := binary.Uvarint(b[pos:])
			if w <= 0 {
				return 0, fmt.Errorf("%w: truncated varint", ErrWire)
			}
			s, pos = v, pos+w
		}
		if c0 := b[pos]; c0 < 0x80 {
			u, pos = uint64(c0), pos+1
		} else if c1 := b[pos+1]; c1 < 0x80 {
			u, pos = uint64(c0&0x7f)|uint64(c1)<<7, pos+2
		} else {
			v, w := binary.Uvarint(b[pos:])
			if w <= 0 {
				return 0, fmt.Errorf("%w: truncated varint", ErrWire)
			}
			u, pos = v, pos+w
		}
		if s >= um || u >= un {
			return 0, fmt.Errorf("%w: edge (%d,%d) out of range for n=%d m=%d", ErrWire, s, u, n, m)
		}
		dst[i] = stream.Edge{Set: setcover.SetID(s), Elem: setcover.Element(u)}
	}
	for ; i < int(k); i++ {
		s, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrWire)
		}
		pos += w
		u, w2 := binary.Uvarint(b[pos:])
		if w2 <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrWire)
		}
		pos += w2
		if s >= um || u >= un {
			return 0, fmt.Errorf("%w: edge (%d,%d) out of range for n=%d m=%d", ErrWire, s, u, n, m)
		}
		dst[i] = stream.Edge{Set: setcover.SetID(s), Elem: setcover.Element(u)}
	}
	if pos != len(b) {
		return 0, fmt.Errorf("%w: %d trailing bytes in frame", ErrWire, len(b)-pos)
	}
	return int(k), nil
}

// writeFlush, writeDetach and writeFinish send the body-less control
// frames.
func (f *frameIO) writeFlush() error  { f.beginFrame(frameFlush); return f.endFrame() }
func (f *frameIO) writeDetach() error { f.beginFrame(frameDetach); return f.endFrame() }
func (f *frameIO) writeFinish() error { f.beginFrame(frameFinish); return f.endFrame() }

// writeHelloAck acknowledges a hello/resume with the session token, the
// stream position the client must (re)start from and — when trace is
// non-zero, i.e. the client spoke protoV2 — the session's authoritative
// trace ID. v1 clients get the classic two-field ack; their cursor rejects
// trailing bytes, so the trace must never be sent to them.
func (f *frameIO) writeHelloAck(token string, pos int, trace obs.TraceID) error {
	f.beginFrame(frameHelloAck)
	f.appendString(token)
	f.appendU64(uint64(pos))
	if !trace.IsZero() {
		f.out = append(f.out, trace[:]...)
	}
	return f.endFrame()
}

// parseHelloAck accepts both ack formats: the v1 two-field body and the v2
// body with 16 trailing trace bytes, so a new client interoperates with an
// old server's ack. want is the token the client asked for ("" when the
// server mints one); an echo of it decodes without allocating.
func parseHelloAck(body []byte, want string) (token string, pos int, trace obs.TraceID, err error) {
	c := cursor{b: body}
	token = c.strEcho(want)
	pos = int(c.u64())
	if c.err == nil && len(c.b) == obs.TraceIDLen {
		copy(trace[:], c.raw(obs.TraceIDLen))
	}
	return token, pos, trace, c.done()
}

// writePosAck acknowledges a flush/detach at the given consumed position.
func (f *frameIO) writePosAck(pos int) error {
	f.beginFrame(framePosAck)
	f.appendU64(uint64(pos))
	return f.endFrame()
}

func parsePosAck(body []byte) (int, error) {
	c := cursor{b: body}
	pos := int(c.u64())
	return pos, c.done()
}

// writeResult sends a result frame carrying a lifecycle.Result. Certificate entries use signed varints
// so NoSet (-1) round-trips.
func (f *frameIO) writeResult(res Result) error {
	f.beginFrame(frameResult)
	f.appendU64(uint64(res.Edges))
	f.appendU64(uint64(len(res.Cover.Sets)))
	for _, s := range res.Cover.Sets {
		f.appendI64(int64(s))
	}
	f.appendU64(uint64(len(res.Cover.Certificate)))
	for _, s := range res.Cover.Certificate {
		f.appendI64(int64(s))
	}
	f.appendI64(res.Space.State)
	f.appendI64(res.Space.Aux)
	return f.endFrame()
}

func parseResult(body []byte) (Result, error) {
	c := cursor{b: body}
	var res Result
	res.Edges = int(c.u64())
	ns := c.u64()
	if c.err != nil {
		return res, c.err
	}
	if ns > uint64(len(c.b)) { // every entry takes ≥ 1 byte
		return res, fmt.Errorf("%w: %d cover sets exceed frame", ErrWire, ns)
	}
	sets := make([]setcover.SetID, ns)
	for i := range sets {
		sets[i] = setcover.SetID(c.i64())
	}
	nc := c.u64()
	if c.err != nil {
		return res, c.err
	}
	if nc > uint64(len(c.b)) {
		return res, fmt.Errorf("%w: certificate of %d exceeds frame", ErrWire, nc)
	}
	cert := make([]setcover.SetID, nc)
	for i := range cert {
		cert[i] = setcover.SetID(c.i64())
	}
	res.Cover = &setcover.Cover{Sets: sets, Certificate: cert}
	res.Space.State = c.i64()
	res.Space.Aux = c.i64()
	return res, c.done()
}

// writeError reports a failure to the peer.
func (f *frameIO) writeError(code byte, msg string) error {
	f.beginFrame(frameError)
	f.out = append(f.out, code)
	f.appendString(msg)
	return f.endFrame()
}

// parseError turns an error body into a typed Go error.
func parseError(body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("%w: empty error frame", ErrWire)
	}
	c := cursor{b: body[1:]}
	msg := c.str()
	if err := c.done(); err != nil {
		return err
	}
	switch body[0] {
	case codeMismatch:
		return fmt.Errorf("%w: %s", ErrRemoteMismatch, msg)
	case codeShutdown:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
}
