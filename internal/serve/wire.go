package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"streamcover/internal/obs"
	"streamcover/internal/serve/lifecycle"
	"streamcover/internal/setcover"
	"streamcover/internal/stream"
)

// Magic opens every SCWIRE1 connection (client→server, once, before the
// first frame).
const Magic = "SCWIRE1\n"

// Protocol versions carried in hello/resume frames. Version 1 is the
// original handshake; version 2 adds a 16-byte session trace ID after the
// token (hello/resume) and after the position (helloAck), so one identity
// follows a session across disconnect, resume and checkpoint files. Servers
// accept both and reply in the version the client spoke — a v1 client never
// sees trace bytes it cannot parse.
const (
	protoV1 = 1
	protoV2 = 2
)

// Frame types. Client→server types are low, server→client types have the
// high bit set; values are part of the wire format and must stay stable.
const (
	frameHello  = 0x01 // open a new session
	frameEdges  = 0x02 // one edge batch
	frameFlush  = 0x03 // request a pos-ack once the queue has drained
	frameFinish = 0x04 // finish the algorithm, expect a result frame
	frameResume = 0x05 // reattach to a detached session
	frameDetach = 0x06 // graceful disconnect: checkpoint and ack first

	frameHelloAck = 0x81 // session token + starting position
	framePosAck   = 0x82 // flush/detach acknowledgement
	frameResult   = 0x83 // edges, cover, certificate, space meters
	frameError    = 0x84 // code byte + message
)

// Wire error codes carried by error frames, so clients can map remote
// failures back to typed errors.
const (
	codeGeneric  = 1 // anything without a more specific classification
	codeMismatch = 2 // checkpoint/algorithm/shape mismatch on resume
	codeBadFrame = 3 // malformed or out-of-protocol frame
	codeShutdown = 4 // server is draining and rejects new work
)

// Wire limits: a frame payload is bounded so a corrupt length prefix cannot
// provoke a pathological allocation. An edges frame is additionally bounded
// by MaxBatch (defined by the lifecycle layer, whose ring buffers are sized
// to it once at session creation and re-exported in serve.go).
//
// maxFramePayload bounds every frame payload. Generous enough for a
// MaxBatch edge frame of worst-case varints and for result frames of
// laptop-scale universes.
const maxFramePayload = 1 << 22

// ErrWire is the family error for malformed SCWIRE1 traffic: bad magic, bad
// CRC, truncated or oversized frames, unknown frame types.
var ErrWire = errors.New("serve: wire protocol error")

// ErrRemote wraps a failure the server reported in an error frame.
var ErrRemote = errors.New("serve: remote error")

// ErrRemoteMismatch is the typed form of a code-mismatch error frame: the
// resume named a checkpoint written by a different algorithm or instance
// shape. It wraps ErrRemote.
var ErrRemoteMismatch = fmt.Errorf("%w: checkpoint mismatch", ErrRemote)

// ErrDraining is the typed form of a code-shutdown error frame: the server
// is shutting down and refused the session. It wraps both ErrRemote (for
// clients matching the remote-error family) and lifecycle.ErrDraining (the
// sentinel the session layer returns server-side), so errors.Is works on
// either side of the wire.
var ErrDraining = fmt.Errorf("%w: %w", ErrRemote, lifecycle.ErrDraining)

// frameIO reads and writes SCWIRE1 frames over one connection, reusing its
// buffers so steady-state frame traffic allocates nothing. Not safe for
// concurrent use; each endpoint owns one per connection side.
type frameIO struct {
	rw  io.ReadWriter
	hdr [4]byte
	in  []byte // reusable read buffer (payload + trailer)
	out []byte // reusable write buffer (header + payload + trailer)
}

func newFrameIO(rw io.ReadWriter) *frameIO {
	return &frameIO{rw: rw, in: make([]byte, 0, 4096), out: make([]byte, 0, 4096)}
}

// readFrame reads one frame and returns its payload (type byte included).
// The returned slice aliases the reusable buffer and is only valid until
// the next readFrame call.
func (f *frameIO) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(f.rw, f.hdr[:]); err != nil {
		return nil, err // raw EOF/timeout: the caller classifies disconnects
	}
	n := binary.LittleEndian.Uint32(f.hdr[:])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("%w: frame payload length %d", ErrWire, n)
	}
	need := int(n) + 4 // payload + CRC trailer
	if cap(f.in) < need {
		f.in = make([]byte, need)
	}
	f.in = f.in[:need]
	if _, err := io.ReadFull(f.rw, f.in); err != nil {
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrWire, err)
	}
	payload, trailer := f.in[:n], f.in[n:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrWire)
	}
	return payload, nil
}

// beginFrame starts a frame of the given type in the reusable write buffer.
// Body bytes are appended by the append* helpers; endFrame seals and sends.
func (f *frameIO) beginFrame(typ byte) {
	f.out = append(f.out[:0], 0, 0, 0, 0, typ)
}

// endFrame back-fills the length prefix, appends the CRC trailer and writes
// the frame in one call.
func (f *frameIO) endFrame() error {
	payload := f.out[4:]
	if len(payload) > maxFramePayload {
		return fmt.Errorf("%w: frame payload %d exceeds limit", ErrWire, len(payload))
	}
	binary.LittleEndian.PutUint32(f.out[:4], uint32(len(payload)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
	f.out = append(f.out, trailer[:]...)
	_, err := f.rw.Write(f.out)
	return err
}

func (f *frameIO) appendU64(v uint64) {
	var b [binary.MaxVarintLen64]byte
	f.out = append(f.out, b[:binary.PutUvarint(b[:], v)]...)
}

func (f *frameIO) appendI64(v int64) {
	var b [binary.MaxVarintLen64]byte
	f.out = append(f.out, b[:binary.PutVarint(b[:], v)]...)
}

func (f *frameIO) appendString(s string) {
	f.appendU64(uint64(len(s)))
	f.out = append(f.out, s...)
}

func (f *frameIO) appendF64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	f.out = append(f.out, b[:]...)
}

// cursor decodes a frame payload in place. Like snap.Reader it latches the
// first error so call sites decode whole frames without per-field plumbing.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail("%w: truncated varint", ErrWire)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) i64() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail("%w: truncated varint", ErrWire)
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) str() string {
	n := c.u64()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.b)) {
		c.fail("%w: string length %d exceeds frame", ErrWire, n)
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

func (c *cursor) f64() float64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.fail("%w: truncated float", ErrWire)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v
}

// raw consumes exactly n bytes of the payload.
func (c *cursor) raw(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.fail("%w: %d raw bytes exceed frame", ErrWire, n)
		return nil
	}
	b := c.b[:n]
	c.b = c.b[n:]
	return b
}

// done fails unless the payload was consumed exactly.
func (c *cursor) done() error {
	if c.err == nil && len(c.b) != 0 {
		c.fail("%w: %d trailing bytes in frame", ErrWire, len(c.b))
	}
	return c.err
}

// writeHello sends a hello (or resume, per typ) frame carrying the session
// token, the client's trace ID (version 2 only) and the full session
// configuration. ver selects the handshake version; the current client
// always speaks protoV2, protoV1 exists for compatibility tests.
func (f *frameIO) writeHello(typ byte, ver int, token string, trace obs.TraceID, cfg Config) error {
	if ver < protoV1 || ver > protoV2 {
		return fmt.Errorf("%w: protocol version %d", ErrWire, ver)
	}
	f.beginFrame(typ)
	f.appendU64(uint64(ver))
	f.appendString(token)
	if ver >= protoV2 {
		f.out = append(f.out, trace[:]...)
	}
	f.appendString(cfg.Algo)
	f.appendU64(uint64(cfg.N))
	f.appendU64(uint64(cfg.M))
	f.appendU64(uint64(cfg.StreamLen))
	f.appendU64(cfg.Seed)
	f.appendU64(uint64(cfg.Copies))
	f.appendF64(cfg.Alpha)
	return f.endFrame()
}

// parseHello decodes a hello/resume body (the type byte already stripped),
// accepting both handshake versions. A v1 body has no trace field and
// reports the zero trace; the returned version tells the server which reply
// format the client understands.
func parseHello(body []byte) (token string, trace obs.TraceID, ver int, cfg Config, err error) {
	c := cursor{b: body}
	v := c.u64()
	if c.err == nil && (v < protoV1 || v > protoV2) {
		return "", trace, 0, Config{}, fmt.Errorf("%w: protocol version %d", ErrWire, v)
	}
	ver = int(v)
	token = c.str()
	if ver >= protoV2 {
		copy(trace[:], c.raw(obs.TraceIDLen))
	}
	cfg.Algo = c.str()
	cfg.N = int(c.u64())
	cfg.M = int(c.u64())
	cfg.StreamLen = int(c.u64())
	cfg.Seed = c.u64()
	cfg.Copies = int(c.u64())
	cfg.Alpha = c.f64()
	return token, trace, ver, cfg, c.done()
}

// writeEdges sends one edge batch using the SCSTRM1 varint edge encoding
// (uvarint set, uvarint elem per edge).
func (f *frameIO) writeEdges(edges []stream.Edge) error {
	if len(edges) == 0 || len(edges) > MaxBatch {
		return fmt.Errorf("%w: edge batch of %d (limit %d)", ErrWire, len(edges), MaxBatch)
	}
	f.beginFrame(frameEdges)
	f.appendU64(uint64(len(edges)))
	for _, e := range edges {
		f.appendU64(uint64(e.Set))
		f.appendU64(uint64(e.Elem))
	}
	return f.endFrame()
}

// parseEdgesInto decodes an edges body into dst, validating the count
// against the ring buffer capacity and every edge against the session
// shape. It returns the number of edges decoded.
func parseEdgesInto(body []byte, dst []stream.Edge, n, m int) (int, error) {
	c := cursor{b: body}
	k := c.u64()
	if c.err != nil {
		return 0, c.err
	}
	if k == 0 || k > uint64(len(dst)) {
		return 0, fmt.Errorf("%w: edge batch of %d (limit %d)", ErrWire, k, len(dst))
	}
	for i := 0; i < int(k); i++ {
		s, u := c.u64(), c.u64()
		if c.err != nil {
			return 0, c.err
		}
		if s >= uint64(m) || u >= uint64(n) {
			return 0, fmt.Errorf("%w: edge (%d,%d) out of range for n=%d m=%d", ErrWire, s, u, n, m)
		}
		dst[i] = stream.Edge{Set: setcover.SetID(s), Elem: setcover.Element(u)}
	}
	return int(k), c.done()
}

// writeFlush, writeDetach and writeFinish send the body-less control
// frames.
func (f *frameIO) writeFlush() error  { f.beginFrame(frameFlush); return f.endFrame() }
func (f *frameIO) writeDetach() error { f.beginFrame(frameDetach); return f.endFrame() }
func (f *frameIO) writeFinish() error { f.beginFrame(frameFinish); return f.endFrame() }

// writeHelloAck acknowledges a hello/resume with the session token, the
// stream position the client must (re)start from and — when trace is
// non-zero, i.e. the client spoke protoV2 — the session's authoritative
// trace ID. v1 clients get the classic two-field ack; their cursor rejects
// trailing bytes, so the trace must never be sent to them.
func (f *frameIO) writeHelloAck(token string, pos int, trace obs.TraceID) error {
	f.beginFrame(frameHelloAck)
	f.appendString(token)
	f.appendU64(uint64(pos))
	if !trace.IsZero() {
		f.out = append(f.out, trace[:]...)
	}
	return f.endFrame()
}

// parseHelloAck accepts both ack formats: the v1 two-field body and the v2
// body with 16 trailing trace bytes, so a new client interoperates with an
// old server's ack.
func parseHelloAck(body []byte) (token string, pos int, trace obs.TraceID, err error) {
	c := cursor{b: body}
	token = c.str()
	pos = int(c.u64())
	if c.err == nil && len(c.b) == obs.TraceIDLen {
		copy(trace[:], c.raw(obs.TraceIDLen))
	}
	return token, pos, trace, c.done()
}

// writePosAck acknowledges a flush/detach at the given consumed position.
func (f *frameIO) writePosAck(pos int) error {
	f.beginFrame(framePosAck)
	f.appendU64(uint64(pos))
	return f.endFrame()
}

func parsePosAck(body []byte) (int, error) {
	c := cursor{b: body}
	pos := int(c.u64())
	return pos, c.done()
}

// writeResult sends a result frame carrying a lifecycle.Result. Certificate entries use signed varints
// so NoSet (-1) round-trips.
func (f *frameIO) writeResult(res Result) error {
	f.beginFrame(frameResult)
	f.appendU64(uint64(res.Edges))
	f.appendU64(uint64(len(res.Cover.Sets)))
	for _, s := range res.Cover.Sets {
		f.appendI64(int64(s))
	}
	f.appendU64(uint64(len(res.Cover.Certificate)))
	for _, s := range res.Cover.Certificate {
		f.appendI64(int64(s))
	}
	f.appendI64(res.Space.State)
	f.appendI64(res.Space.Aux)
	return f.endFrame()
}

func parseResult(body []byte) (Result, error) {
	c := cursor{b: body}
	var res Result
	res.Edges = int(c.u64())
	ns := c.u64()
	if c.err != nil {
		return res, c.err
	}
	if ns > uint64(len(c.b)) { // every entry takes ≥ 1 byte
		return res, fmt.Errorf("%w: %d cover sets exceed frame", ErrWire, ns)
	}
	sets := make([]setcover.SetID, ns)
	for i := range sets {
		sets[i] = setcover.SetID(c.i64())
	}
	nc := c.u64()
	if c.err != nil {
		return res, c.err
	}
	if nc > uint64(len(c.b)) {
		return res, fmt.Errorf("%w: certificate of %d exceeds frame", ErrWire, nc)
	}
	cert := make([]setcover.SetID, nc)
	for i := range cert {
		cert[i] = setcover.SetID(c.i64())
	}
	res.Cover = &setcover.Cover{Sets: sets, Certificate: cert}
	res.Space.State = c.i64()
	res.Space.Aux = c.i64()
	return res, c.done()
}

// writeError reports a failure to the peer.
func (f *frameIO) writeError(code byte, msg string) error {
	f.beginFrame(frameError)
	f.out = append(f.out, code)
	f.appendString(msg)
	return f.endFrame()
}

// parseError turns an error body into a typed Go error.
func parseError(body []byte) error {
	if len(body) < 1 {
		return fmt.Errorf("%w: empty error frame", ErrWire)
	}
	c := cursor{b: body[1:]}
	msg := c.str()
	if err := c.done(); err != nil {
		return err
	}
	switch body[0] {
	case codeMismatch:
		return fmt.Errorf("%w: %s", ErrRemoteMismatch, msg)
	case codeShutdown:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
}
