package serve

import (
	"fmt"
	"net"
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/stream"
)

// Client speaks SCWIRE1 over one connection. It is not safe for concurrent
// use; drive one client per goroutine. Methods that await a server reply
// surface error frames as typed errors (ErrRemote, ErrRemoteMismatch,
// ErrDraining).
type Client struct {
	conn net.Conn
	f    *frameIO
	// Timeout bounds each blocking read or write; zero means no limit.
	Timeout time.Duration
	// Trace proposes a session trace ID at Hello (zero asks the server to
	// mint one). After Hello/Resume it holds the session's authoritative
	// identity: the server echoes the adopted trace in its ack — on resume,
	// the one stamped into the checkpoint at the original open — and the
	// field is updated in place. Old servers ack without a trace; the field
	// then keeps whatever the caller set.
	Trace obs.TraceID

	token string
	sent  int // edges handed to the transport, offset by the resume position

	armed time.Time // deadline last armed at (coarse re-arming)
}

var magicBytes = []byte(Magic)

// errRW is the connection stand-in a closed Client's frameIO points at, so
// a stale handle errors like a closed connection instead of touching pooled
// buffers.
type errRW struct{}

func (errRW) Read([]byte) (int, error)  { return 0, net.ErrClosed }
func (errRW) Write([]byte) (int, error) { return 0, net.ErrClosed }

// Dial connects to a server and queues the protocol magic; it rides ahead
// of the first frame in one write. No session is open yet — follow with
// Hello or Resume. Writes coalesce: edge batches seal into a local buffer
// and ship as one write when it fills or a reply is awaited (readFrame
// flushes).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, f: clientFrameIOs.get(conn)}
	c.f.queueRaw(magicBytes)
	return c, nil
}

// Close drops the connection without detaching. The server notices the
// disconnect and checkpoints the session, so a Close mid-stream is
// recoverable via Resume — it is exactly the "killed client" case. Queued
// unflushed frames are dropped, not delivered: a kill is a kill.
func (c *Client) Close() error {
	err := c.conn.Close()
	if f := c.f; f != nil && f.rw != nil {
		c.f = newFrameIO(errRW{})
		clientFrameIOs.put(f)
	}
	return err
}

// Token reports the session token assigned at Hello/Resume.
func (c *Client) Token() string { return c.token }

// Pos reports the next stream position the server expects from this
// client (edges acked as received plus the resume offset).
func (c *Client) Pos() int { return c.sent }

// deadlines arms both connection deadlines, coarsely: once armed, it only
// re-arms after a quarter of the budget (at most a second of wall clock)
// has elapsed, so the saturated send path stops paying two timer updates
// per frame. Every blocking op therefore still has at least 3/4 of Timeout
// in hand.
func (c *Client) deadlines() {
	if c.Timeout <= 0 {
		return
	}
	now := time.Now()
	rearm := c.Timeout / 4
	if rearm > time.Second {
		rearm = time.Second
	}
	if !c.armed.IsZero() && now.Sub(c.armed) < rearm {
		return
	}
	c.armed = now
	t := now.Add(c.Timeout)
	c.conn.SetReadDeadline(t)
	c.conn.SetWriteDeadline(t)
}

// expect reads one frame, decoding error frames into typed errors and
// rejecting any type other than want.
func (c *Client) expect(want byte) ([]byte, error) {
	c.deadlines()
	payload, err := c.f.readFrame()
	if err != nil {
		return nil, err
	}
	switch payload[0] {
	case want:
		return payload[1:], nil
	case frameError:
		return nil, parseError(payload[1:])
	default:
		return nil, fmt.Errorf("%w: expected frame 0x%02x, got 0x%02x", ErrWire, want, payload[0])
	}
}

// Hello opens a fresh session for cfg. An empty token lets the server
// assign one; the assigned token is returned (and kept for Resume).
func (c *Client) Hello(token string, cfg Config) (string, error) {
	c.deadlines()
	if err := c.f.writeHello(frameHello, protoV2, token, c.Trace, cfg); err != nil {
		return "", err
	}
	body, err := c.expect(frameHelloAck)
	if err != nil {
		return "", err
	}
	tok, pos, trace, err := parseHelloAck(body, token)
	if err != nil {
		return "", err
	}
	c.token, c.sent = tok, pos
	if !trace.IsZero() {
		c.Trace = trace
	}
	return tok, nil
}

// Resume reattaches to a detached session. The returned position is where
// the server's checkpoint left off: the client must resend the stream
// from that edge onward (earlier edges are already inside the restored
// state).
func (c *Client) Resume(token string, cfg Config) (int, error) {
	c.deadlines()
	if err := c.f.writeHello(frameResume, protoV2, token, c.Trace, cfg); err != nil {
		return 0, err
	}
	body, err := c.expect(frameHelloAck)
	if err != nil {
		return 0, err
	}
	tok, pos, trace, err := parseHelloAck(body, token)
	if err != nil {
		return 0, err
	}
	c.token, c.sent = tok, pos
	if !trace.IsZero() {
		c.Trace = trace
	}
	return pos, nil
}

// SendBatch queues one edge batch (at most MaxBatch edges). Batches
// coalesce locally and ship as one write once the buffer crosses its
// threshold or the next reply is awaited — call Sync to force delivery
// without waiting for an ack. It never waits for acknowledgement —
// backpressure arrives through TCP when the server's session ring is full.
func (c *Client) SendBatch(edges []stream.Edge) error {
	c.deadlines()
	if err := c.f.writeEdges(edges); err != nil {
		return err
	}
	c.sent += len(edges)
	return nil
}

// Sync forces every queued batch onto the wire without awaiting an ack.
// Methods that read a reply (Flush, Finish, Detach, Hello, Resume) sync
// implicitly.
func (c *Client) Sync() error {
	c.deadlines()
	return c.f.flushWrites()
}

// Flush blocks until the server has processed everything sent so far and
// returns the server's consumed position.
func (c *Client) Flush() (int, error) {
	c.deadlines()
	if err := c.f.writeFlush(); err != nil {
		return 0, err
	}
	body, err := c.expect(framePosAck)
	if err != nil {
		return 0, err
	}
	return parsePosAck(body)
}

// Detach asks the server to checkpoint and park the session, returning
// the checkpointed position. The connection is done afterwards.
func (c *Client) Detach() (int, error) {
	c.deadlines()
	if err := c.f.writeDetach(); err != nil {
		return 0, err
	}
	body, err := c.expect(framePosAck)
	if err != nil {
		return 0, err
	}
	return parsePosAck(body)
}

// Finish completes the session: the server finishes the algorithm and
// returns the cover, certificate and space report.
func (c *Client) Finish() (Result, error) {
	c.deadlines()
	if err := c.f.writeFinish(); err != nil {
		return Result{}, err
	}
	body, err := c.expect(frameResult)
	if err != nil {
		return Result{}, err
	}
	return parseResult(body)
}

// Feeder drives a fixed edge stream through a session deterministically:
// same edges, same batch size, same frames — whether the run is
// uninterrupted or resumed mid-stream. It is the reference load generator
// used by scfeed and the serve tests.
type Feeder struct {
	// Edges is the full stream, in arrival order.
	Edges []stream.Edge
	// Batch is the edges-per-frame granularity (clamped to [1, MaxBatch];
	// 0 picks MaxBatch).
	Batch int
}

func (fd *Feeder) batch() int {
	b := fd.Batch
	if b <= 0 || b > MaxBatch {
		b = MaxBatch
	}
	return b
}

// Run feeds every edge from the client's current position and finishes,
// returning the session result. After a Resume, the already-consumed
// prefix is skipped automatically.
func (fd *Feeder) Run(c *Client) (Result, error) {
	if err := fd.sendRange(c, len(fd.Edges)); err != nil {
		return Result{}, err
	}
	return c.Finish()
}

// RunUntil feeds edges from the client's current position up to (not
// including) stream position stop, then returns without finishing. Tests
// and scfeed use it to simulate a client killed mid-stream.
func (fd *Feeder) RunUntil(c *Client, stop int) error {
	if stop > len(fd.Edges) {
		stop = len(fd.Edges)
	}
	return fd.sendRange(c, stop)
}

func (fd *Feeder) sendRange(c *Client, stop int) error {
	b := fd.batch()
	for pos := c.Pos(); pos < stop; pos = c.Pos() {
		end := pos + b
		if end > stop {
			end = stop
		}
		if err := c.SendBatch(fd.Edges[pos:end]); err != nil {
			return fmt.Errorf("serve: feeding edges [%d,%d): %w", pos, end, err)
		}
	}
	// Everything handed to the feeder is on the wire when it returns: a
	// caller that goes idle (or is killed) afterwards has still delivered
	// every batch, exactly as the uncoalesced client did.
	return c.Sync()
}
