package serve

import (
	"fmt"

	"streamcover/internal/obs"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// ringDepth is the number of reusable edge buffers in a session's inbound
// ring. Depth 4 lets the connection reader decode ahead of the algorithm
// (the same triple-buffering argument as the stream Prefetcher) while
// bounding resident per-session ingest memory at ringDepth × MaxBatch
// edges.
const ringDepth = 4

// ctlKind selects a control action delivered through the session ring, so
// control observes strict FIFO order with respect to edge batches.
type ctlKind uint8

const (
	ctlNone ctlKind = iota
	ctlFlush
	ctlFinish
	ctlStop // park the worker without finishing (detach path)
)

// slot is one unit handed from the connection reader to the session
// worker: an edge buffer index, or a control request.
type slot struct {
	idx int // ring buffer index; -1 for control slots
	n   int
	ctl ctlKind
}

// reply answers a control slot.
type reply struct {
	pos int
	res Result
	err error
}

// session runs one algorithm instance fed over the wire. The connection
// reader decodes edges frames directly into the ring's reusable buffers
// (zero allocations per batch in steady state) and the worker goroutine
// drains them through ProcessBatch — the library's batched hot path. All
// session methods are called from the single connection reader goroutine;
// the worker is the only other goroutine touching the algorithm.
type session struct {
	token string
	trace obs.TraceID // session identity: minted at open, survives resume
	cfg   Config
	alg   stream.Algorithm

	bufs  [][]stream.Edge
	free  chan int
	full  chan slot
	resCh chan reply

	stopped bool // worker has exited (finish or stop delivered)
	so      *obs.ServeObs
	tslot   *obs.SessionSlot // per-session telemetry row (nil when off)
}

// newSession wraps alg (built for cfg) in a fresh ring and starts the
// worker. pos is the stream position the algorithm state corresponds to
// (0 for new sessions, the checkpoint position for resumed ones).
func newSession(token string, trace obs.TraceID, cfg Config, alg stream.Algorithm, pos int, so *obs.ServeObs, tslot *obs.SessionSlot) *session {
	s := &session{
		token: token,
		trace: trace,
		cfg:   cfg,
		alg:   alg,
		bufs:  make([][]stream.Edge, ringDepth),
		free:  make(chan int, ringDepth),
		full:  make(chan slot, ringDepth),
		resCh: make(chan reply, 1),
		so:    so,
		tslot: tslot,
	}
	for i := range s.bufs {
		s.bufs[i] = make([]stream.Edge, MaxBatch)
		s.free <- i
	}
	go s.worker(pos)
	return s
}

// worker drains the ring into the algorithm. It owns the algorithm and the
// position counter until a finish or stop control slot retires it; the
// reply channel's happens-before edge publishes the state back to the
// reader goroutine.
func (s *session) worker(pos int) {
	bp, isBP := s.alg.(stream.BatchProcessor)
	for sl := range s.full {
		switch sl.ctl {
		case ctlNone:
			batch := s.bufs[sl.idx][:sl.n]
			if isBP {
				bp.ProcessBatch(batch)
			} else {
				for _, e := range batch {
					s.alg.Process(e)
				}
			}
			pos += sl.n
			s.free <- sl.idx
		case ctlFlush:
			s.resCh <- reply{pos: pos}
		case ctlFinish:
			res := Result{Edges: pos, Cover: s.alg.Finish()}
			if rep, ok := s.alg.(space.Reporter); ok {
				res.Space = rep.Space()
			}
			s.resCh <- reply{pos: pos, res: res}
			return
		case ctlStop:
			s.resCh <- reply{pos: pos}
			return
		}
	}
}

// ingest decodes one edges frame body into a free ring buffer and queues
// it for the worker. When the ring is full the calling reader blocks —
// that is the backpressure path, counted as an ingest stall.
func (s *session) ingest(body []byte) error {
	var idx int
	select {
	case idx = <-s.free:
	default:
		s.so.IngestStall()
		s.tslot.Stall()
		idx = <-s.free
	}
	n, err := parseEdgesInto(body, s.bufs[idx], s.cfg.N, s.cfg.M)
	if err != nil {
		s.free <- idx
		return err
	}
	s.full <- slot{idx: idx, n: n}
	s.so.Batch(n)
	s.tslot.Batch(n, len(s.full))
	return nil
}

// control queues a control slot and waits for the worker's reply.
func (s *session) control(k ctlKind) reply {
	if s.stopped {
		return reply{err: fmt.Errorf("serve: session %s already stopped", s.token)}
	}
	s.full <- slot{idx: -1, ctl: k}
	r := <-s.resCh
	if k == ctlFinish || k == ctlStop {
		s.stopped = true
		close(s.full)
	}
	return r
}

// flush waits until everything queued so far has been processed and
// returns the consumed position.
func (s *session) flush() (int, error) {
	r := s.control(ctlFlush)
	return r.pos, r.err
}

// finish drains the ring, finishes the algorithm and returns the result.
// The session is dead afterwards.
func (s *session) finish() (Result, error) {
	r := s.control(ctlFinish)
	return r.res, r.err
}

// stop drains the ring and parks the worker without finishing, returning
// the consumed position. The algorithm may be snapshotted afterwards (the
// reply established the happens-before edge).
func (s *session) stop() (int, error) {
	r := s.control(ctlStop)
	return r.pos, r.err
}
