package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"streamcover/internal/obs"
	"streamcover/internal/stream"
)

// ErrSessionActive reports a hello or resume naming a token that is
// currently attached to another connection.
var ErrSessionActive = errors.New("serve: session already attached")

// ErrUnknownSession reports a resume naming a token with no checkpoint on
// disk.
var ErrUnknownSession = errors.New("serve: unknown session")

// Manager owns the server's multi-tenant session state: which tokens are
// attached, and the checkpoint directory that carries detached sessions
// across disconnects (and across server restarts — resume is driven purely
// by the on-disk SCCKPT1 file, not by in-memory state).
type Manager struct {
	dir string
	so  *obs.ServeObs

	mu       sync.Mutex
	active   map[string]*session
	draining bool
	nextID   uint64
}

// NewManager creates a manager persisting detach checkpoints under dir
// (created if absent). so may be nil to disable instrumentation.
func NewManager(dir string, so *obs.ServeObs) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("serve: manager needs a checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	return &Manager{dir: dir, so: so, active: make(map[string]*session)}, nil
}

// ckptPath is where the given session's detach checkpoint lives. Tokens
// are validated against a filename-safe alphabet before they get here.
func (m *Manager) ckptPath(token string) string {
	return filepath.Join(m.dir, token+".ckpt")
}

// validToken accepts filename-safe tokens only, so a token can never
// escape the checkpoint directory or collide with temp files.
func validToken(t string) bool {
	if t == "" || len(t) > 64 || t[0] == '.' {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Open starts a fresh session for cfg. An empty token asks the manager to
// assign one; a client-chosen token must be filename-safe and not
// currently attached. A zero trace asks the manager to mint the session's
// identity (v1 clients never send one); a non-zero trace — minted by the
// client — is adopted as-is.
func (m *Manager) Open(token string, trace obs.TraceID, cfg Config) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if token == "" {
		m.nextID++
		token = fmt.Sprintf("s%06d", m.nextID)
	} else if !validToken(token) {
		return nil, fmt.Errorf("%w: bad session token %q", ErrWire, token)
	}
	if _, ok := m.active[token]; ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionActive, token)
	}
	alg, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	if trace.IsZero() {
		trace = obs.NewTraceID()
	}
	tslot := m.so.AcquireSession(token, cfg.Algo, trace, false, 0)
	s := newSession(token, trace, cfg, alg, 0, m.so, tslot)
	m.active[token] = s
	m.so.SessionOpened(false)
	m.so.Event(obs.SessionEvent{
		Event: obs.EventSessionOpen, Token: token, Trace: trace.String(), Algo: cfg.Algo,
	})
	return s, nil
}

// Resume reattaches a detached session: it rebuilds the algorithm from cfg
// and restores the token's checkpoint into it, returning the session and
// the stream position the client must resend from. A checkpoint written by
// a different algorithm or instance shape surfaces the snap layer's typed
// mismatch error (snap.ErrMismatch), which the server maps to a
// codeMismatch error frame.
// The session's identity comes from the checkpoint when it carries one:
// the trace stamped at the original open wins over whatever the resuming
// client proposes, so one identity follows the session across every
// disconnect. Pre-trace checkpoints fall back to the client's trace, then
// to a fresh mint.
func (m *Manager) Resume(token string, trace obs.TraceID, cfg Config) (*session, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, 0, ErrDraining
	}
	if !validToken(token) {
		return nil, 0, fmt.Errorf("%w: bad session token %q", ErrWire, token)
	}
	if _, ok := m.active[token]; ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrSessionActive, token)
	}
	alg, err := Build(cfg)
	if err != nil {
		return nil, 0, err
	}
	pos, ckptTrace, err := stream.ReadCheckpointFileTraced(m.ckptPath(token), alg)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, fmt.Errorf("%w: %q has no checkpoint", ErrUnknownSession, token)
		}
		return nil, 0, fmt.Errorf("serve: resume %q: %w", token, err)
	}
	if !ckptTrace.IsZero() {
		trace = ckptTrace
	} else if trace.IsZero() {
		trace = obs.NewTraceID()
	}
	tslot := m.so.AcquireSession(token, cfg.Algo, trace, true, int64(pos))
	s := newSession(token, trace, cfg, alg, pos, m.so, tslot)
	m.active[token] = s
	m.so.SessionOpened(true)
	m.so.Event(obs.SessionEvent{
		Event: obs.EventSessionResume, Token: token, Trace: trace.String(), Algo: cfg.Algo,
		Edges: int64(pos),
	})
	return s, pos, nil
}

// Detach drains s, persists its checkpoint — stamped with the session's
// trace ID — and releases the token. It serves both the graceful detach
// frame and abrupt disconnects, with cause recording which ("detach-frame",
// "disconnect", an error string); the two paths must behave identically for
// disconnect tolerance to hold.
func (m *Manager) Detach(s *session, cause string) (int, error) {
	pos, err := s.stop()
	if err != nil {
		m.fail(s, cause, err)
		return 0, err
	}
	path := m.ckptPath(s.token)
	if err := stream.WriteCheckpointFileTraced(path, pos, s.trace, s.alg); err != nil {
		err = fmt.Errorf("serve: checkpoint %q: %w", s.token, err)
		m.fail(s, cause, err)
		return pos, err
	}
	var ckptBytes int64
	if fi, err := os.Stat(path); err == nil {
		ckptBytes = fi.Size()
		m.so.Checkpoint(int(ckptBytes))
	}
	s.tslot.Checkpoint(ckptBytes)
	s.tslot.SetState(obs.StateDetached)
	m.release(s.token)
	m.so.Event(obs.SessionEvent{
		Event: obs.EventSessionDetach, Token: s.token, Trace: s.trace.String(), Algo: s.cfg.Algo,
		Edges: int64(pos), IngestStalls: s.tslot.Stalls(), CheckpointBytes: ckptBytes, Cause: cause,
	})
	return pos, nil
}

// Finish drains s, finishes the algorithm and retires the session for
// good, removing any detach checkpoint left by an earlier disconnect.
func (m *Manager) Finish(s *session) (Result, error) {
	res, err := s.finish()
	if err != nil {
		m.fail(s, "finish", err)
		return res, err
	}
	s.tslot.SetState(obs.StateFinished)
	m.release(s.token)
	os.Remove(m.ckptPath(s.token)) // best-effort: may never have existed
	m.so.Event(obs.SessionEvent{
		Event: obs.EventSessionFinish, Token: s.token, Trace: s.trace.String(), Algo: s.cfg.Algo,
		Edges: int64(res.Edges), IngestStalls: s.tslot.Stalls(),
	})
	return res, err
}

// fail retires a session whose drain, checkpoint or finish went wrong.
func (m *Manager) fail(s *session, cause string, err error) {
	s.tslot.SetState(obs.StateFailed)
	m.release(s.token)
	m.so.Event(obs.SessionEvent{
		Event: obs.EventSessionFail, Token: s.token, Trace: s.trace.String(), Algo: s.cfg.Algo,
		IngestStalls: s.tslot.Stalls(), Cause: cause + ": " + err.Error(),
	})
}

// release forgets an attached token. The caller has already retired the
// session worker.
func (m *Manager) release(token string) {
	m.mu.Lock()
	delete(m.active, token)
	m.mu.Unlock()
	m.so.SessionClosed()
}

// Drain rejects all future hellos and resumes (codeShutdown on the wire).
// Attached sessions keep running until their connections close; the
// server's shutdown path then detaches each with a checkpoint.
func (m *Manager) Drain() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	active := len(m.active)
	m.mu.Unlock()
	if !already {
		m.so.Event(obs.SessionEvent{Event: obs.EventServerDrain, Active: int64(active)})
	}
}

// Active reports the number of attached sessions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
