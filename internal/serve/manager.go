package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"streamcover/internal/obs"
	"streamcover/internal/stream"
)

// ErrSessionActive reports a hello or resume naming a token that is
// currently attached to another connection.
var ErrSessionActive = errors.New("serve: session already attached")

// ErrUnknownSession reports a resume naming a token with no checkpoint on
// disk.
var ErrUnknownSession = errors.New("serve: unknown session")

// Manager owns the server's multi-tenant session state: which tokens are
// attached, and the checkpoint directory that carries detached sessions
// across disconnects (and across server restarts — resume is driven purely
// by the on-disk SCCKPT1 file, not by in-memory state).
type Manager struct {
	dir string
	so  *obs.ServeObs

	mu       sync.Mutex
	active   map[string]*session
	draining bool
	nextID   uint64
}

// NewManager creates a manager persisting detach checkpoints under dir
// (created if absent). so may be nil to disable instrumentation.
func NewManager(dir string, so *obs.ServeObs) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("serve: manager needs a checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	return &Manager{dir: dir, so: so, active: make(map[string]*session)}, nil
}

// ckptPath is where the given session's detach checkpoint lives. Tokens
// are validated against a filename-safe alphabet before they get here.
func (m *Manager) ckptPath(token string) string {
	return filepath.Join(m.dir, token+".ckpt")
}

// validToken accepts filename-safe tokens only, so a token can never
// escape the checkpoint directory or collide with temp files.
func validToken(t string) bool {
	if t == "" || len(t) > 64 || t[0] == '.' {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Open starts a fresh session for cfg. An empty token asks the manager to
// assign one; a client-chosen token must be filename-safe and not
// currently attached.
func (m *Manager) Open(token string, cfg Config) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if token == "" {
		m.nextID++
		token = fmt.Sprintf("s%06d", m.nextID)
	} else if !validToken(token) {
		return nil, fmt.Errorf("%w: bad session token %q", ErrWire, token)
	}
	if _, ok := m.active[token]; ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionActive, token)
	}
	alg, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	s := newSession(token, cfg, alg, 0, m.so)
	m.active[token] = s
	m.so.SessionOpened(false)
	return s, nil
}

// Resume reattaches a detached session: it rebuilds the algorithm from cfg
// and restores the token's checkpoint into it, returning the session and
// the stream position the client must resend from. A checkpoint written by
// a different algorithm or instance shape surfaces the snap layer's typed
// mismatch error (snap.ErrMismatch), which the server maps to a
// codeMismatch error frame.
func (m *Manager) Resume(token string, cfg Config) (*session, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, 0, ErrDraining
	}
	if !validToken(token) {
		return nil, 0, fmt.Errorf("%w: bad session token %q", ErrWire, token)
	}
	if _, ok := m.active[token]; ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrSessionActive, token)
	}
	alg, err := Build(cfg)
	if err != nil {
		return nil, 0, err
	}
	pos, err := stream.ReadCheckpointFile(m.ckptPath(token), alg)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, fmt.Errorf("%w: %q has no checkpoint", ErrUnknownSession, token)
		}
		return nil, 0, fmt.Errorf("serve: resume %q: %w", token, err)
	}
	s := newSession(token, cfg, alg, pos, m.so)
	m.active[token] = s
	m.so.SessionOpened(true)
	return s, pos, nil
}

// Detach drains s, persists its checkpoint and releases the token. It
// serves both the graceful detach frame and abrupt disconnects — the two
// paths must behave identically for disconnect tolerance to hold.
func (m *Manager) Detach(s *session) (int, error) {
	pos, err := s.stop()
	if err != nil {
		m.release(s.token)
		return 0, err
	}
	path := m.ckptPath(s.token)
	if err := stream.WriteCheckpointFile(path, pos, s.alg); err != nil {
		m.release(s.token)
		return pos, fmt.Errorf("serve: checkpoint %q: %w", s.token, err)
	}
	if fi, err := os.Stat(path); err == nil {
		m.so.Checkpoint(int(fi.Size()))
	}
	m.release(s.token)
	return pos, nil
}

// Finish drains s, finishes the algorithm and retires the session for
// good, removing any detach checkpoint left by an earlier disconnect.
func (m *Manager) Finish(s *session) (Result, error) {
	res, err := s.finish()
	m.release(s.token)
	if err == nil {
		os.Remove(m.ckptPath(s.token)) // best-effort: may never have existed
	}
	return res, err
}

// release forgets an attached token. The caller has already retired the
// session worker.
func (m *Manager) release(token string) {
	m.mu.Lock()
	delete(m.active, token)
	m.mu.Unlock()
	m.so.SessionClosed()
}

// Drain rejects all future hellos and resumes (codeShutdown on the wire).
// Attached sessions keep running until their connections close; the
// server's shutdown path then detaches each with a checkpoint.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Active reports the number of attached sessions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
