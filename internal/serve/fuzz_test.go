package serve

// FuzzWireFrame feeds arbitrary bytes through the SCWIRE1 frame reader and
// every body parser. The contract is the one connection handling depends
// on: malformed traffic surfaces a typed error (ErrWire, or the ErrRemote
// family for error frames) — never a panic, never an untyped failure — and
// anything a parser accepts survives a re-encode/re-parse round trip with
// the same meaning. Seeds cover both handshake versions, so the fuzzer
// starts from the v2 trace-carrying frames as well as the classic v1 forms.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"streamcover/internal/obs"
	"streamcover/internal/stream"
)

// fuzzFrame encodes one frame to raw bytes via the production writer.
func fuzzFrame(f *testing.F, write func(fio *frameIO) error) []byte {
	f.Helper()
	var buf bytes.Buffer
	fio := newFrameIO(&buf)
	if err := write(fio); err != nil {
		f.Fatalf("seed frame: %v", err)
	}
	return buf.Bytes()
}

// wireTyped reports whether err is one a wire consumer is allowed to see
// for bad bytes: the ErrWire family, the remote-error family, or a plain
// short read from the framing layer.
func wireTyped(err error) bool {
	return errors.Is(err, ErrWire) || errors.Is(err, ErrRemote) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

func FuzzWireFrame(f *testing.F) {
	cfg := Config{Algo: "kk", N: 30, M: 40, StreamLen: 120, Seed: 7, Copies: 2, Alpha: 1.5}
	trace := obs.TraceID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

	seeds := [][]byte{
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeHello(frameHello, protoV1, "old", trace, cfg) }),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeHello(frameHello, protoV2, "new", trace, cfg) }),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeHello(frameResume, protoV2, "res", trace, cfg) }),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeHelloAck("tok", 99, obs.TraceID{}) }),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeHelloAck("tok", 99, trace) }),
		fuzzFrame(f, func(fio *frameIO) error {
			return fio.writeEdges([]stream.Edge{{Set: 39, Elem: 29}, {Set: 0, Elem: 0}})
		}),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writePosAck(4096) }),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeFlush() }),
		fuzzFrame(f, func(fio *frameIO) error { return fio.writeError(codeMismatch, "boom") }),
	}
	for _, s := range seeds {
		f.Add(s)
		mutated := append([]byte(nil), s...)
		mutated[len(mutated)/2] ^= 0x10
		f.Add(mutated)
		f.Add(s[:len(s)-3]) // truncated trailer
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, frameHello, 0, 0, 0, 0})

	// Coalesced-read seeds: several frames back to back in one input, the
	// shape the windowed reader drains from one buffered refill. The big
	// one crosses the initial read window so refill's compact-and-grow
	// path starts seeded too.
	f.Add(bytes.Join([][]byte{seeds[0], seeds[5], seeds[6], seeds[7]}, nil))
	wide := fuzzFrame(f, func(fio *frameIO) error {
		batch := make([]stream.Edge, 600)
		for i := range batch {
			batch[i] = stream.Edge{Set: 39, Elem: 29} // 1-byte varints
		}
		return fio.writeEdges(batch)
	})
	f.Add(bytes.Join([][]byte{wide, wide, wide, wide, wide, wide, wide, wide}, nil))
	// Batch-decoder seeds: two-byte varints (the unrolled fast path's
	// second case) and a hand-built body with maximal-width varints that
	// exercise the binary.Uvarint fallback and the guarded tail loop.
	f.Add(fuzzFrame(f, func(fio *frameIO) error {
		return fio.writeEdges([]stream.Edge{{Set: 200, Elem: 150}, {Set: 12345, Elem: 4000}})
	}))
	maxVarints := []byte{4, 0, 0, 0, frameEdges, 2} // len, type, k=2
	for i := 0; i < 4; i++ {
		maxVarints = append(maxVarints, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	}
	f.Add(maxVarints)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Drain every frame in the input through one frameIO: multi-frame
		// inputs walk the read window across refills exactly like a
		// coalesced connection drain.
		fio := newFrameIO(bytes.NewBuffer(data))
		for {
			payload, err := fio.readFrame()
			if err != nil {
				if !wireTyped(err) {
					t.Fatalf("untyped framing error: %v", err)
				}
				return
			}
			checkFramePayload(t, payload)
		}
	})
}

// checkFramePayload validates one accepted frame the way the fuzz target
// always has: parsers may reject with typed errors only, and anything
// accepted must survive a re-encode round trip unchanged.
func checkFramePayload(t *testing.T, payload []byte) {
	t.Helper()
	switch payload[0] {
	case frameHello, frameResume:
		token, tr, ver, got, err := parseHello(payload[1:])
		if err != nil {
			if !wireTyped(err) {
				t.Fatalf("untyped hello error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		re := newFrameIO(&buf)
		if err := re.writeHello(payload[0], ver, token, tr, got); err != nil {
			t.Fatalf("re-encode of accepted hello failed: %v", err)
		}
		rp, err := re.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		token2, tr2, ver2, got2, err := parseHello(rp[1:])
		if err != nil || token2 != token || tr2 != tr || ver2 != ver || got2 != got {
			t.Fatalf("hello round trip drifted: %q/%v/%d/%+v -> %q/%v/%d/%+v (%v)",
				token, tr, ver, got, token2, tr2, ver2, got2, err)
		}
	case frameHelloAck:
		token, pos, tr, err := parseHelloAck(payload[1:], "")
		if err != nil {
			if !wireTyped(err) {
				t.Fatalf("untyped helloAck error: %v", err)
			}
			return
		}
		if pos < 0 {
			t.Fatalf("accepted negative ack position %d", pos)
		}
		var buf bytes.Buffer
		re := newFrameIO(&buf)
		if err := re.writeHelloAck(token, pos, tr); err != nil {
			t.Fatal(err)
		}
		rp, err := re.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		token2, pos2, tr2, err := parseHelloAck(rp[1:], "")
		if err != nil || token2 != token || pos2 != pos || tr2 != tr {
			t.Fatalf("helloAck round trip drifted: %q/%d/%v -> %q/%d/%v (%v)",
				token, pos, tr, token2, pos2, tr2, err)
		}
	case frameEdges:
		dst := make([]stream.Edge, MaxBatch)
		if _, err := parseEdgesInto(payload[1:], dst, 30, 40); err != nil && !wireTyped(err) {
			t.Fatalf("untyped edges error: %v", err)
		}
	case framePosAck:
		if _, err := parsePosAck(payload[1:]); err != nil && !wireTyped(err) {
			t.Fatalf("untyped posAck error: %v", err)
		}
	case frameResult:
		if _, err := parseResult(payload[1:]); err != nil && !wireTyped(err) {
			t.Fatalf("untyped result error: %v", err)
		}
	case frameError:
		// parseError always returns an error — the remote family for
		// well-formed frames, ErrWire for mangled ones.
		if err := parseError(payload[1:]); !wireTyped(err) {
			t.Fatalf("untyped error-frame result: %v", err)
		}
	case frameFlush, frameFinish, frameDetach:
		c := cursor{b: payload[1:]}
		if err := c.done(); err != nil && !wireTyped(err) {
			t.Fatalf("untyped control-frame error: %v", err)
		}
	}
}
