// Package serve turns the streaming set cover library into a network
// service: a TCP server that accepts edge-arrival streams over the SCWIRE1
// wire protocol, a multi-tenant session manager that runs one registered
// streaming algorithm per session on the library's zero-allocation batch
// path, and a deterministic client used both by the scfeed CLI and as the
// test/load harness.
//
// # Layering
//
// The serving stack is three packages; this one is the transport:
//
//   - internal/serve/store persists opaque checkpoint blobs keyed by
//     session token behind the CheckpointStore interface (FileStore for
//     the durable `<token>.ckpt` directory, MemStore for dirless runs).
//   - internal/serve/lifecycle owns the session state machine — open,
//     resume, detach, finish, drain — plus the algorithm registry and the
//     ingest ring. It imports neither net nor os.
//   - this package speaks SCWIRE1 over TCP, decoding edge frames straight
//     into ring buffers leased from Session.Reserve and mapping lifecycle
//     errors onto wire error codes. Type aliases in serve.go re-export the
//     lifecycle/store surface so consumers import one package.
//
// The edge-arrival model the paper studies is exactly what a network
// ingestion path looks like — (S, u) tuples arriving one at a time with no
// control over order — and the tight per-session space bounds are what make
// thousands of concurrent low-memory sessions per process feasible.
//
// # Wire protocol (SCWIRE1)
//
// A connection opens with the 8-byte magic "SCWIRE1\n" from the client.
// Everything after the magic is a sequence of frames, each length-prefixed
// and CRC-guarded:
//
//	frame   = u32 LE payload length | payload | u32 LE CRC-32 (IEEE) of payload
//	payload = type byte | body
//
// Client→server frame types: hello (open a new session), edges (one batch
// of uvarint-encoded (set, elem) pairs, the same varint edge encoding as
// the SCSTRM1 file codec), flush (request a position ack once everything
// queued so far has been processed), finish (finish the algorithm and
// return the result), resume (reattach to a detached session from its
// SCCKPT1 checkpoint), and detach (graceful disconnect: checkpoint now and
// acknowledge before the client drops the connection).
//
// Server→client frame types: hello-ack (session token + starting
// position), pos-ack (flush/detach acknowledgement), result (edges
// processed, cover, certificate, space meters), and error (code + message;
// the code distinguishes a checkpoint/shape mismatch from generic
// failures so clients can exit with a typed error).
//
// # Session lifecycle and resume semantics
//
// Each connection owns at most one session. Edge batches flow from the
// connection reader into a bounded ring of reusable buffers (backpressure:
// when the ring is full the reader blocks, which TCP propagates to the
// client; stalls are counted in internal/obs) and a per-session worker
// goroutine drains the ring into the algorithm via ProcessBatch — the same
// zero-allocation batch path as the file driver, so the server's steady
// state allocates nothing per edge batch.
//
// On any disconnect — abrupt drop, read timeout, explicit detach, or
// server drain on SIGTERM — the worker drains what was already queued and
// the session persists an SCCKPT1 checkpoint (internal/snap discipline,
// via stream.WriteCheckpointTraced, serialized to bytes and handed to the
// configured CheckpointStore) at the exact position it consumed. A
// reconnecting client sends a resume frame naming the session; the server
// rebuilds a fresh algorithm from the session's configuration, restores
// the checkpoint, and answers with the position the client must continue
// from. Because the restored state is byte-equivalent to the live state at
// that position, an interrupted-and-resumed session produces a cover,
// certificate, space report and decision-event stream identical to an
// uninterrupted run — pinned against the repository's golden fingerprints
// in the serve tests and by `make serve-smoke`.
package serve
