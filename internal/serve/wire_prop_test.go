package serve

// Property test for the blocked edges-frame decoder: parseEdgesInto's
// unrolled fast path, binary.Uvarint fallback and guarded tail loop must
// agree byte-for-byte with the obvious per-edge reference decoder — same
// accepted edges, same rejections — across every varint width, truncation
// point and range violation. The reference below is the decoder the
// transport shipped with before the blocked rewrite.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// parseEdgesReference is the straightforward one-varint-at-a-time decoder
// parseEdgesInto must match exactly (on accepted input and on the
// typed-error contract for rejected input).
func parseEdgesReference(body []byte, dst []stream.Edge, n, m int) (int, error) {
	k, sz := binary.Uvarint(body)
	if sz <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrWire)
	}
	if k == 0 || k > uint64(len(dst)) {
		return 0, fmt.Errorf("%w: edge batch of %d (limit %d)", ErrWire, k, len(dst))
	}
	b := body[sz:]
	um, un := uint64(m), uint64(n)
	for i := 0; i < int(k); i++ {
		s, w := binary.Uvarint(b)
		if w <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrWire)
		}
		b = b[w:]
		u, w2 := binary.Uvarint(b)
		if w2 <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrWire)
		}
		b = b[w2:]
		if s >= um || u >= un {
			return 0, fmt.Errorf("%w: edge (%d,%d) out of range for n=%d m=%d", ErrWire, s, u, n, m)
		}
		dst[i] = stream.Edge{Set: setcover.SetID(s), Elem: setcover.Element(u)}
	}
	if len(b) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes in frame", ErrWire, len(b))
	}
	return int(k), nil
}

// varintValueOfWidth picks a random value whose unsigned varint encoding
// is exactly w bytes (1..10), so bodies cover every decode path: the
// unrolled 1- and 2-byte cases, the Uvarint fallback, and 10-byte maximal
// encodings.
func varintValueOfWidth(rng *xrand.Rand, w int) uint64 {
	if w == 1 {
		return uint64(rng.IntN(1 << 7))
	}
	lo := uint64(1) << (7 * (w - 1))
	var hi uint64
	if w == 10 {
		hi = math.MaxUint64
	} else {
		hi = uint64(1)<<(7*w) - 1
	}
	span := hi - lo + 1
	if span == 0 { // w == 10: the span wraps; any offset is in range
		return lo + rng.Uint64()
	}
	return lo + rng.Uint64()%span
}

func TestParseEdgesMatchesReference(t *testing.T) {
	rng := xrand.New(20260809)
	dst := make([]stream.Edge, MaxBatch)
	ref := make([]stream.Edge, MaxBatch)

	check := func(tag string, body []byte, n, m int) {
		t.Helper()
		for i := range dst {
			dst[i], ref[i] = stream.Edge{}, stream.Edge{}
		}
		gotK, gotErr := parseEdgesInto(body, dst, n, m)
		refK, refErr := parseEdgesReference(body, ref, n, m)
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("%s: error mismatch: blocked=%v reference=%v", tag, gotErr, refErr)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, ErrWire) || !errors.Is(refErr, ErrWire) {
				t.Fatalf("%s: untyped rejection: blocked=%v reference=%v", tag, gotErr, refErr)
			}
			return
		}
		if gotK != refK {
			t.Fatalf("%s: count mismatch: blocked=%d reference=%d", tag, gotK, refK)
		}
		for i := 0; i < gotK; i++ {
			if dst[i] != ref[i] {
				t.Fatalf("%s: edge %d mismatch: blocked=%+v reference=%+v", tag, i, dst[i], ref[i])
			}
		}
	}

	// encodeBody builds a count-prefixed edges body out of raw (set, elem)
	// varint value pairs, bypassing writeEdges' range clamps so the body
	// can carry values far beyond any session shape.
	encodeBody := func(k uint64, vals []uint64) []byte {
		body := binary.AppendUvarint(nil, k)
		for _, v := range vals {
			body = binary.AppendUvarint(body, v)
		}
		return body
	}

	// Random widths, huge shape: every value valid, so the mixed-width
	// decode paths agree on accepted input. Shapes beyond 2^32 keep the
	// wide varints in range.
	const hugeN, hugeM = math.MaxInt64, math.MaxInt64
	for round := 0; round < 200; round++ {
		k := 1 + rng.IntN(64)
		vals := make([]uint64, 0, 2*k)
		for i := 0; i < 2*k; i++ {
			vals = append(vals, varintValueOfWidth(rng, 1+rng.IntN(9)))
		}
		body := encodeBody(uint64(k), vals)
		check(fmt.Sprintf("mixed-width round %d", round), body, hugeN, hugeM)

		// Every truncation of the same body must also agree (and reject).
		cut := rng.IntN(len(body))
		check(fmt.Sprintf("truncated round %d cut=%d", round, cut), body[:cut], hugeN, hugeM)

		// Trailing garbage after a complete batch must agree too.
		check(fmt.Sprintf("trailing round %d", round), append(body, 0x01), hugeN, hugeM)
	}

	// Out-of-range edges under a small shape: rejection must be identical
	// whether the offending value decodes in the fast path or the tail.
	for round := 0; round < 100; round++ {
		n, m := 1+rng.IntN(300), 1+rng.IntN(4000)
		k := 1 + rng.IntN(32)
		vals := make([]uint64, 0, 2*k)
		for i := 0; i < k; i++ {
			vals = append(vals, rng.Uint64()%(uint64(m)*2), rng.Uint64()%(uint64(n)*2))
		}
		body := encodeBody(uint64(k), vals)
		check(fmt.Sprintf("range round %d n=%d m=%d", round, n, m), body, n, m)
	}

	// Boundary batches: a full MaxBatch body (tail loop reached exactly at
	// the window guard), a single edge, and the malformed empty/oversized
	// counts.
	full := make([]uint64, 2*MaxBatch)
	for i := range full {
		full[i] = varintValueOfWidth(rng, 1+i%2)
	}
	check("max batch", encodeBody(MaxBatch, full), hugeN, hugeM)
	check("single edge", encodeBody(1, []uint64{5, 7}), hugeN, hugeM)
	check("zero count", encodeBody(0, nil), hugeN, hugeM)
	check("oversized count", encodeBody(MaxBatch+1, nil), hugeN, hugeM)
	check("empty body", nil, hugeN, hugeM)
	// A maximal varint with its 10th byte's high bit set overflows: both
	// decoders must reject it the same way wherever it lands.
	overflow := encodeBody(2, []uint64{1})
	overflow = append(overflow, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	check("overflow varint", overflow, hugeN, hugeM)
}
