package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/serve/lifecycle"
	"streamcover/internal/serve/store"
	"streamcover/internal/snap"
)

// ServerConfig shapes one Server.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7600"; ":0" picks a
	// free port, readable from Addr() after Listen).
	Addr string
	// Store persists detach checkpoints. Tests share a MemStore across
	// server restarts; scserve builds it from its -store flag.
	Store store.CheckpointStore
	// Dir is a convenience: when Store is nil and Dir is set, the server
	// opens a FileStore on it — the classic `<token>.ckpt` directory.
	Dir string
	// IdleTimeout bounds how long a connection may sit between frames
	// before the server detaches it with a checkpoint; <= 0 means no limit.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write; <= 0 means no limit.
	WriteTimeout time.Duration
	// Obs instruments the serving layer; nil disables instrumentation.
	Obs *obs.ServeObs
	// Log receives connection-level diagnostics; nil discards them.
	Log *log.Logger
}

// Server accepts SCWIRE1 connections and feeds each session's edges
// through the registered streaming algorithms. One goroutine per
// connection reads frames; one per session drains the ring — see the
// package documentation for the full lifecycle. The server is pure
// transport: session state lives in the lifecycle manager, checkpoints in
// its store.
type Server struct {
	cfg ServerConfig
	mgr *Manager
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server (and its session manager) from cfg, resolving
// the checkpoint store from cfg.Store, falling back to a FileStore on
// cfg.Dir.
func NewServer(cfg ServerConfig) (*Server, error) {
	st := cfg.Store
	if st == nil {
		if cfg.Dir == "" {
			return nil, errors.New("serve: server needs a checkpoint store (Store or Dir)")
		}
		fs, err := store.NewFileStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		st = fs
	}
	mgr, err := lifecycle.NewManager(st, cfg.Obs)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, mgr: mgr, conns: make(map[net.Conn]struct{})}, nil
}

// Manager exposes the session manager (tests and tooling inspect it).
func (s *Server) Manager() *Manager { return s.mgr }

// Listen binds the configured address. It is separate from Serve so
// callers can learn the bound address (":0" listeners) before accepting.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr reports the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// Shutdown drains the server: new sessions are rejected, the listener
// closes, and every open connection is woken (its pending read fails) so
// its handler detaches the session with a checkpoint. It waits for all
// handlers — bounded by ctx — so callers know every session is either
// finished or durably checkpointed when it returns. On ctx expiry it
// returns ctx.Err(); handlers already mid-detach still complete their
// checkpoint Put in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mgr.Drain()
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now()) // wake blocked readers
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// readDeadline arms the idle timeout before the opening magic read; inside
// the frame loop the frameIO's armRead hook re-arms it coarsely.
func (s *Server) readDeadline(conn net.Conn) {
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
}

// armHooks wires the connection's deadline management into f. The idle
// deadline is re-armed coarsely — once per quarter of the timeout (at most
// once per second) rather than per frame — so the saturated ingest path
// stops paying a timer update per frame; the worst case stretches an idle
// detach by a quarter of the configured timeout. The write deadline is
// armed per flush, which is already coalesced.
func (s *Server) armHooks(f *frameIO, conn net.Conn) {
	if s.cfg.IdleTimeout > 0 {
		armEvery := s.cfg.IdleTimeout / 4
		if armEvery > time.Second {
			armEvery = time.Second
		}
		var lastArm time.Time
		f.armRead = func() {
			if now := time.Now(); now.Sub(lastArm) >= armEvery {
				lastArm = now
				conn.SetReadDeadline(now.Add(s.cfg.IdleTimeout))
			}
		}
	}
	if s.cfg.WriteTimeout > 0 {
		f.armWrite = func() {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
	}
}

// errCode classifies a lifecycle- or wire-layer error into a wire error
// code.
func errCode(err error) byte {
	switch {
	case errors.Is(err, snap.ErrMismatch):
		return codeMismatch
	case errors.Is(err, lifecycle.ErrDraining):
		return codeShutdown
	case errors.Is(err, lifecycle.ErrToken):
		return codeBadFrame
	case errors.Is(err, ErrWire):
		return codeBadFrame
	default:
		return codeGeneric
	}
}

// handle runs one connection: magic, hello/resume, then the frame loop.
// On any read failure — disconnect, idle timeout, shutdown wake-up — the
// attached session is detached with a checkpoint so the client can
// resume.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.readDeadline(conn)
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		s.logf("serve: %s: reading magic: %v", conn.RemoteAddr(), err)
		return
	}
	// The frameIO is pooled across connections (read window and sealed
	// write buffers survive) and coalesces: replies queue until the next
	// frame read flushes them — or this deferred flush does, on every
	// return path before the connection closes.
	f := getFrameIO(conn)
	defer putFrameIO(f)
	s.armHooks(f, conn)
	if string(magic[:]) != Magic {
		f.writeError(codeBadFrame, fmt.Sprintf("bad magic %q", magic[:]))
		return
	}

	// The first frame must open a session: hello (fresh) or resume. The
	// session's Config is kept here — the shape validates every edge frame
	// the transport decodes.
	payload, err := f.readFrame()
	if err != nil {
		s.logf("serve: %s: reading opening frame: %v", conn.RemoteAddr(), err)
		return
	}
	helloT0 := time.Now()
	var sess *Session
	var pos int
	var cfg Config
	ver := protoV1 // negotiated handshake version for this connection
	switch payload[0] {
	case frameHello:
		token, trace, v, c, perr := parseHello(payload[1:])
		if perr == nil {
			ver, cfg = v, c
			sess, err = s.mgr.Open(token, trace, cfg)
		} else {
			err = perr
		}
	case frameResume:
		token, trace, v, c, perr := parseHello(payload[1:])
		if perr == nil {
			ver, cfg = v, c
			sess, pos, err = s.mgr.Resume(token, trace, cfg)
		} else {
			err = perr
		}
	default:
		err = fmt.Errorf("%w: connection must open with hello or resume, got frame 0x%02x", ErrWire, payload[0])
	}
	if err != nil {
		s.logf("serve: %s: open: %v", conn.RemoteAddr(), err)
		f.writeError(errCode(err), err.Error())
		return
	}
	// Only v2 clients get the trace echoed: a v1 cursor rejects the extra
	// ack bytes.
	ackTrace := sess.Trace()
	if ver < protoV2 {
		ackTrace = obs.TraceID{}
	}
	if err := f.writeHelloAck(sess.Token(), pos, ackTrace); err != nil {
		s.logf("serve: %s: hello ack: %v", conn.RemoteAddr(), err)
		s.detach(sess, "hello-ack-write: "+err.Error())
		return
	}
	s.cfg.Obs.HelloLatency(time.Since(helloT0).Nanoseconds())

	for {
		payload, err := f.readFrame()
		if err != nil {
			// Disconnect, idle timeout or shutdown: checkpoint and park.
			s.logf("serve: session %s: connection lost (%v), detaching with checkpoint", sess.Token(), err)
			s.detach(sess, "disconnect")
			return
		}
		switch payload[0] {
		case frameEdges:
			// Lease a ring buffer from the session, decode the frame
			// straight into it (no copies, no allocations), and commit.
			// Reserve blocking on a full ring is the backpressure path.
			buf := sess.Reserve()
			n, err := parseEdgesInto(payload[1:], buf, cfg.N, cfg.M)
			if err != nil {
				sess.Release()
				s.logf("serve: session %s: %v", sess.Token(), err)
				f.writeError(errCode(err), err.Error())
				s.detach(sess, "bad-edges: "+err.Error())
				return
			}
			sess.Enqueue(n)
		case frameFlush:
			t0 := time.Now()
			p, err := sess.Flush()
			if err != nil {
				s.fail(f, sess, err)
				return
			}
			if err := f.writePosAck(p); err != nil {
				s.detach(sess, "pos-ack-write: "+err.Error())
				return
			}
			s.cfg.Obs.AckLatency(time.Since(t0).Nanoseconds())
		case frameDetach:
			t0 := time.Now()
			p, err := s.mgr.Detach(sess, "detach-frame")
			if err != nil {
				s.logf("serve: session %s: detach: %v", sess.Token(), err)
				f.writeError(errCode(err), err.Error())
				return
			}
			if f.writePosAck(p) == nil {
				s.cfg.Obs.AckLatency(time.Since(t0).Nanoseconds())
			}
			return
		case frameFinish:
			t0 := time.Now()
			res, err := s.mgr.Finish(sess)
			if err != nil {
				s.logf("serve: session %s: finish: %v", sess.Token(), err)
				f.writeError(errCode(err), err.Error())
				return
			}
			if err := f.writeResult(res); err != nil {
				s.logf("serve: session %s: result write: %v", sess.Token(), err)
			} else {
				s.cfg.Obs.ResultLatency(time.Since(t0).Nanoseconds())
			}
			return
		default:
			err := fmt.Errorf("%w: unexpected frame 0x%02x", ErrWire, payload[0])
			s.fail(f, sess, err)
			return
		}
	}
}

// fail reports err to the client and detaches the session.
func (s *Server) fail(f *frameIO, sess *Session, err error) {
	s.logf("serve: session %s: %v", sess.Token(), err)
	f.writeError(errCode(err), err.Error())
	s.detach(sess, "protocol-error: "+err.Error())
}

// detach checkpoints and releases sess, logging (not propagating) errors:
// the connection is already gone.
func (s *Server) detach(sess *Session, cause string) {
	if _, err := s.mgr.Detach(sess, cause); err != nil {
		s.logf("serve: session %s: detach checkpoint failed: %v", sess.Token(), err)
	}
}
