package cli

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"streamcover/internal/obs"
)

// ObsOptions configures the shared observability opt-in of the CLI tools:
// an HTTP endpoint serving /metrics (Prometheus), /debug/vars (expvar) and
// /debug/pprof (live profiling), and a decision-trace dump written at exit.
type ObsOptions struct {
	// Listen is the address for the observability server (e.g. ":6060" or
	// "127.0.0.1:0" for an ephemeral port). Empty disables the server.
	Listen string
	// TraceOut is a path to write the decision ring to, in the SCTRACE1
	// format cmd/sctrace reads back. Empty disables the dump.
	TraceOut string
	// RingCap overrides the decision-ring capacity (0 = obs.DefaultRingCap).
	RingCap int
	// Hold keeps the server alive this long after Close is called, so an
	// external scraper can observe a run that finishes quickly. Zero closes
	// immediately.
	Hold time.Duration
}

// enabled reports whether any observability surface was requested.
func (o ObsOptions) enabled() bool { return o.Listen != "" || o.TraceOut != "" }

// RegisterObsFlags wires the standard observability flags (-obs-listen,
// -trace-out, -obs-ring) into fs and returns the options they fill.
func RegisterObsFlags(fs *flag.FlagSet) *ObsOptions {
	o := &ObsOptions{}
	fs.StringVar(&o.Listen, "obs-listen", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060); empty disables")
	fs.StringVar(&o.TraceOut, "trace-out", "",
		"write the decision trace (SCTRACE1, readable by sctrace -decisions) to this file on exit")
	fs.IntVar(&o.RingCap, "obs-ring", 0,
		fmt.Sprintf("decision-ring capacity (0 = %d)", obs.DefaultRingCap))
	return o
}

// ObsSession is a started observability surface. The zero of *ObsSession
// (nil) is inert: Close is a no-op, so callers can unconditionally
// defer/invoke it.
type ObsSession struct {
	hub      *obs.Hub
	srv      *http.Server
	ln       net.Listener
	traceOut string
	hold     time.Duration
}

// StartObs installs a process-global obs.Hub according to o and, when
// requested, starts the HTTP server. It returns nil (inert) when o requests
// nothing, so callers need no conditional.
func StartObs(o ObsOptions) (*ObsSession, error) {
	if !o.enabled() {
		return nil, nil
	}
	hub := obs.NewHub(o.RingCap)
	obs.SetGlobal(hub)
	s := &ObsSession{hub: hub, traceOut: o.TraceOut, hold: o.Hold}
	if o.Listen != "" {
		ln, err := net.Listen("tcp", o.Listen)
		if err != nil {
			return nil, fmt.Errorf("obs: listen %s: %w", o.Listen, err)
		}
		s.ln = ln
		s.srv = &http.Server{Handler: hub.Handler()}
		go func() { _ = s.srv.Serve(ln) }()
		// The resolved address goes to stderr so tools (and the obs-smoke
		// harness) can find an ephemeral port without parsing flags.
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", ln.Addr())
	}
	return s, nil
}

// Addr returns the bound address of the HTTP server ("" when not serving).
func (s *ObsSession) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Hub returns the session's hub (nil for an inert session).
func (s *ObsSession) Hub() *obs.Hub {
	if s == nil {
		return nil
	}
	return s.hub
}

// Close writes the trace dump (if configured), honors the hold window, and
// shuts the HTTP server down. Safe on nil and safe to call once after any
// partial start.
func (s *ObsSession) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	if s.traceOut != "" {
		if err := obs.WriteTraceFile(s.traceOut, s.hub.Ring()); err != nil {
			firstErr = fmt.Errorf("obs: trace dump: %w", err)
		} else {
			fmt.Fprintf(os.Stderr, "obs: wrote decision trace to %s (%d events, %d dropped)\n",
				s.traceOut, len(s.hub.Ring().Events()), s.hub.Ring().Dropped())
		}
	}
	if s.srv != nil {
		if s.hold > 0 {
			fmt.Fprintf(os.Stderr, "obs: holding server on %s for %s\n", s.Addr(), s.hold)
			time.Sleep(s.hold)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	obs.SetGlobal(nil)
	return firstErr
}
