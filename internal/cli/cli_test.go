package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func genFixture(t *testing.T, opt GenerateOptions) string {
	t.Helper()
	if opt.Out == "" {
		opt.Out = filepath.Join(t.TempDir(), "s.scs")
	}
	var out bytes.Buffer
	if err := Generate(opt, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("summary %q", out.String())
	}
	return opt.Out
}

func defaultGen() GenerateOptions {
	return GenerateOptions{
		Workload: "planted", N: 120, M: 600, Opt: 6,
		MinSize: 2, MaxSize: 10, Mean: 6, S: 1.1, P: 0.05, Heavy: 3, Factor: 1,
		Order: "random", Seed: 1,
	}
}

func TestGenerateAllWorkloads(t *testing.T) {
	for _, kind := range []string{"planted", "uniform", "zipf", "domset", "heavy", "quadratic"} {
		t.Run(kind, func(t *testing.T) {
			opt := defaultGen()
			opt.Workload = kind
			if kind == "quadratic" {
				opt.N = 30
			}
			genFixture(t, opt)
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	opt := defaultGen()
	opt.Workload = "nonsense"
	opt.Out = filepath.Join(t.TempDir(), "x.scs")
	if err := Generate(opt, &bytes.Buffer{}); err == nil {
		t.Error("unknown workload accepted")
	}

	opt = defaultGen()
	opt.Order = "sideways"
	opt.Out = filepath.Join(t.TempDir(), "x.scs")
	if err := Generate(opt, &bytes.Buffer{}); err == nil {
		t.Error("unknown order accepted")
	}

	opt = defaultGen()
	opt.Opt = 0 // generator panic → error at the tool boundary
	opt.Out = filepath.Join(t.TempDir(), "x.scs")
	if err := Generate(opt, &bytes.Buffer{}); err == nil {
		t.Error("invalid generator parameters accepted")
	}

	opt = defaultGen()
	opt.Out = filepath.Join(t.TempDir(), "missing-dir", "x.scs")
	if err := Generate(opt, &bytes.Buffer{}); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestReplayEveryAlgorithm(t *testing.T) {
	path := genFixture(t, defaultGen())
	for _, algo := range []string{"kk", "alg1", "alg2", "es", "storeall", "multipass", "fractional"} {
		t.Run(algo, func(t *testing.T) {
			var out bytes.Buffer
			err := Replay(ReplayOptions{In: path, Algo: algo, Seed: 3, Budget: 30}, &out)
			if err != nil {
				t.Fatal(err)
			}
			s := out.String()
			for _, frag := range []string{"stream", "cover", "offline greedy"} {
				if !strings.Contains(s, frag) {
					t.Fatalf("output missing %q:\n%s", frag, s)
				}
			}
		})
	}
}

func TestReplayEnsemble(t *testing.T) {
	path := genFixture(t, defaultGen())
	var out bytes.Buffer
	if err := Replay(ReplayOptions{In: path, Algo: "alg2", Seed: 5, Copies: 4}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	if err := Replay(ReplayOptions{In: "/nonexistent", Algo: "kk"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	path := genFixture(t, defaultGen())
	if err := Replay(ReplayOptions{In: path, Algo: "quantum"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestReplayDeterministicOutput(t *testing.T) {
	path := genFixture(t, defaultGen())
	var a, b bytes.Buffer
	if err := Replay(ReplayOptions{In: path, Algo: "kk", Seed: 9}, &a); err != nil {
		t.Fatal(err)
	}
	if err := Replay(ReplayOptions{In: path, Algo: "kk", Seed: 9}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("nondeterministic tool output:\n%s\nvs\n%s", a.String(), b.String())
	}
}
