package cli

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func smallSweep() SweepOptions {
	return SweepOptions{
		Algos:  []string{"kk", "alg1"},
		Ns:     []int{100},
		Ms:     []int{500, 1000},
		Orders: []string{"random", "round-robin"},
		Opt:    5,
		Reps:   2,
		Seed:   1,
	}
}

func TestSweepTableOutput(t *testing.T) {
	var out bytes.Buffer
	if err := Sweep(smallSweep(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// 2 algos × 1 n × 2 m × 2 orders = 8 body rows.
	for _, frag := range []string{"kk", "alg1", "random", "round-robin", "500", "1000"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("output missing %q:\n%s", frag, s)
		}
	}
	lines := strings.Count(strings.TrimRight(s, "\n"), "\n") + 1
	if lines != 3+8 { // title + header + separator + 8 cells
		t.Fatalf("got %d lines, want 11:\n%s", lines, s)
	}
}

func TestSweepCSVOutput(t *testing.T) {
	opt := smallSweep()
	opt.CSV = true
	var out bytes.Buffer
	if err := Sweep(opt, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+8 {
		t.Fatalf("%d CSV records, want 9", len(recs))
	}
	if recs[0][0] != "algo" || len(recs[1]) != 8 {
		t.Fatalf("header/arity wrong: %v", recs[:2])
	}
}

func TestSweepDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Sweep(smallSweep(), &a); err != nil {
		t.Fatal(err)
	}
	if err := Sweep(smallSweep(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sweep not deterministic despite parallel cells:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestSweepErrors(t *testing.T) {
	opt := smallSweep()
	opt.Algos = nil
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("empty grid accepted")
	}
	opt = smallSweep()
	opt.Algos = []string{"quantum"}
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	opt = smallSweep()
	opt.Orders = []string{"sideways"}
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("unknown order accepted")
	}
	opt = smallSweep()
	opt.Opt = 1000 // exceeds n
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("opt > n accepted")
	}
}

func TestSweepDefaults(t *testing.T) {
	opt := smallSweep()
	opt.Reps = 0 // → 1
	opt.Opt = 0  // → 10
	var out bytes.Buffer
	if err := Sweep(opt, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "opt=10") {
		t.Fatalf("defaults not applied:\n%s", out.String())
	}
}
