package cli

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strings"
	"testing"
)

func smallSweep() SweepOptions {
	return SweepOptions{
		Algos:  []string{"kk", "alg1"},
		Ns:     []int{100},
		Ms:     []int{500, 1000},
		Orders: []string{"random", "round-robin"},
		Opt:    5,
		Reps:   2,
		Seed:   1,
	}
}

func TestSweepTableOutput(t *testing.T) {
	var out bytes.Buffer
	if err := Sweep(smallSweep(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// 2 algos × 1 n × 2 m × 2 orders = 8 body rows.
	for _, frag := range []string{"kk", "alg1", "random", "round-robin", "500", "1000"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("output missing %q:\n%s", frag, s)
		}
	}
	lines := strings.Count(strings.TrimRight(s, "\n"), "\n") + 1
	if lines != 3+8 { // title + header + separator + 8 cells
		t.Fatalf("got %d lines, want 11:\n%s", lines, s)
	}
}

func TestSweepCSVOutput(t *testing.T) {
	opt := smallSweep()
	opt.CSV = true
	var out bytes.Buffer
	if err := Sweep(opt, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+8 {
		t.Fatalf("%d CSV records, want 9", len(recs))
	}
	if recs[0][0] != "algo" || len(recs[1]) != 9 {
		t.Fatalf("header/arity wrong: %v", recs[:2])
	}
	if recs[0][7] != "greedy" {
		t.Fatalf("greedy reference column missing from header: %v", recs[0])
	}
}

func TestSweepDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Sweep(smallSweep(), &a); err != nil {
		t.Fatal(err)
	}
	if err := Sweep(smallSweep(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sweep not deterministic despite parallel cells:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestSweepErrors(t *testing.T) {
	opt := smallSweep()
	opt.Algos = nil
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("empty grid accepted")
	}
	opt = smallSweep()
	opt.Algos = []string{"quantum"}
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	opt = smallSweep()
	opt.Orders = []string{"sideways"}
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("unknown order accepted")
	}
	opt = smallSweep()
	opt.Opt = 1000 // exceeds n
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("opt > n accepted")
	}
	opt = smallSweep()
	opt.Reps = 0
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("reps=0 accepted")
	}
	opt = smallSweep()
	opt.Reps = -3
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("negative reps accepted")
	}
	opt = smallSweep()
	opt.Ns = []int{100, 0}
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("n=0 accepted")
	}
	opt = smallSweep()
	opt.Ms = []int{-5}
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("negative m accepted")
	}
	opt = smallSweep()
	opt.SolverWorkers = -1
	if err := Sweep(opt, &bytes.Buffer{}); err == nil {
		t.Error("negative solver workers accepted")
	}
}

func TestSweepDefaults(t *testing.T) {
	opt := smallSweep()
	opt.Opt = 0 // → 10
	var out bytes.Buffer
	if err := Sweep(opt, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "opt=10") {
		t.Fatalf("defaults not applied:\n%s", out.String())
	}
}

func TestSweepWorkersByteIdentical(t *testing.T) {
	// The scheduler determinism contract: every -workers value produces the
	// same bytes, in table and CSV form, because per-rep seeds derive from
	// grid coordinates alone.
	for _, csv := range []bool{false, true} {
		base := smallSweep()
		base.CSV = csv
		base.Workers = 1
		var want bytes.Buffer
		if err := Sweep(base, &want); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 4, 9} {
			opt := base
			opt.Workers = workers
			opt.SolverWorkers = workers // greedy column must be invariant too
			var got bytes.Buffer
			if err := Sweep(opt, &got); err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatalf("csv=%v workers=%d output differs from workers=1:\n%s\nvs\n%s",
					csv, workers, got.String(), want.String())
			}
		}
	}
}

// BenchmarkSweepWorkers measures one small sweep grid at increasing worker
// counts. On multicore hardware the wall clock should shrink near-linearly
// until the core count; the output bytes are identical at every setting
// (TestSweepWorkersByteIdentical), so this benchmark is purely about
// scheduling.
func BenchmarkSweepWorkers(b *testing.B) {
	opt := SweepOptions{
		Algos:  []string{"kk", "alg1", "alg2"},
		Ns:     []int{200},
		Ms:     []int{2000, 4000},
		Orders: []string{"random", "round-robin"},
		Opt:    6,
		Reps:   2,
		Seed:   1,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := opt
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				var out bytes.Buffer
				if err := Sweep(o, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
