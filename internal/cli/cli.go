// Package cli implements the logic behind the command-line tools (scgen,
// scrun) as testable functions: the main packages only parse flags and
// delegate here.
package cli

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/fractional"
	"streamcover/internal/kk"
	"streamcover/internal/multipass"
	"streamcover/internal/setcover"
	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// GenerateOptions configure Generate (one field per scgen flag).
type GenerateOptions struct {
	Workload string // planted|uniform|zipf|domset|heavy|quadratic
	N, M     int
	Opt      int     // planted/quadratic
	Noise    int     // planted (0 = auto)
	MinSize  int     // uniform
	MaxSize  int     // uniform
	Mean     int     // zipf
	S        float64 // zipf exponent
	P        float64 // domset edge probability
	Heavy    int     // heavy element count
	Factor   int     // quadratic m = factor·n²
	Order    string
	Seed     uint64
	Out      string
}

// Generate builds the requested workload, arranges its stream and writes
// the stream file, printing a one-line summary to stdout.
func Generate(opt GenerateOptions, stdout io.Writer) error {
	rng := xrand.New(opt.Seed)
	w, err := buildWorkload(opt, rng)
	if err != nil {
		return err
	}
	order, err := stream.ParseOrder(opt.Order)
	if err != nil {
		return err
	}
	edges := stream.Arrange(w.Inst, order, rng.Split())

	f, err := os.Create(opt.Out)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	defer f.Close()
	hdr := stream.Header{N: w.Inst.UniverseSize(), M: w.Inst.NumSets(), E: len(edges)}
	if err := stream.Encode(f, hdr, edges); err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %s: %s, order=%s", opt.Out, w.Inst.Stats(), order)
	if w.PlantedOPT > 0 {
		fmt.Fprintf(stdout, ", planted OPT=%d", w.PlantedOPT)
	}
	fmt.Fprintln(stdout)
	return nil
}

// buildWorkload dispatches to the generators, converting their
// invalid-parameter panics into errors at the tool boundary.
func buildWorkload(opt GenerateOptions, rng *xrand.Rand) (w workload.Workload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("workload: %v", r)
		}
	}()
	switch opt.Workload {
	case "planted":
		return workload.Planted(rng.Split(), opt.N, opt.M, opt.Opt, opt.Noise), nil
	case "uniform":
		return workload.UniformRandom(rng.Split(), opt.N, opt.M, opt.MinSize, opt.MaxSize), nil
	case "zipf":
		return workload.ZipfSkewed(rng.Split(), opt.N, opt.M, opt.Mean, opt.S), nil
	case "domset":
		return workload.DominatingSet(rng.Split(), opt.N, opt.P), nil
	case "heavy":
		return workload.HeavyElements(rng.Split(), opt.N, opt.M, opt.Heavy, 4), nil
	case "quadratic":
		return workload.QuadraticPlanted(rng.Split(), opt.N, opt.Opt, opt.Factor), nil
	default:
		return workload.Workload{}, fmt.Errorf("unknown workload %q", opt.Workload)
	}
}

// ReplayOptions configure Replay (one field per scrun flag).
type ReplayOptions struct {
	In     string
	Algo   string // kk|alg1|alg2|es|storeall|multipass|fractional
	Alpha  float64
	Seed   uint64
	Budget int // multipass per-round element sample budget
	Copies int // ensemble copies for kk/alg2/es

	// CheckpointEvery > 0 writes a checkpoint of the algorithm state every
	// that many edges (streaming algorithms only — not storeall, multipass
	// or fractional).
	CheckpointEvery int
	// CheckpointPath overrides the checkpoint file (default In + ".ckpt").
	CheckpointPath string
	// Resume restores the algorithm from the checkpoint file and continues
	// the stream from the recorded position.
	Resume bool
	// StopAfter > 0 kills the run after that many edges without finishing —
	// the kill half of a kill-and-resume exercise. Requires CheckpointEvery.
	StopAfter int
}

// checkpointable reports whether Replay can checkpoint/resume opt.Algo.
func (opt ReplayOptions) checkpointable() bool {
	switch opt.Algo {
	case "kk", "alg1", "alg2", "es":
		return true
	}
	return false
}

// Replay decodes a stream file, runs the chosen algorithm, verifies the
// output, and prints the report.
func Replay(opt ReplayOptions, stdout io.Writer) error {
	f, err := os.Open(opt.In)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	hdr, edges, err := stream.Decode(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	inst, err := stream.InstanceFromEdges(hdr, edges)
	if err != nil {
		return fmt.Errorf("rebuild instance: %w", err)
	}
	greedy, err := setcover.GreedySize(inst)
	if err != nil {
		return fmt.Errorf("greedy reference: %w", err)
	}

	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = 2 * math.Sqrt(float64(hdr.N))
	}
	copies := opt.Copies
	if copies < 1 {
		copies = 1
	}
	rng := xrand.New(opt.Seed)
	ensemble := func(mk func(r *xrand.Rand) stream.Algorithm) stream.Algorithm {
		if copies == 1 {
			return mk(rng.Split())
		}
		cs := make([]stream.Algorithm, copies)
		for i := range cs {
			cs[i] = mk(rng.Split())
		}
		return stream.NewEnsemble(cs...)
	}
	header := func(extra string) {
		fmt.Fprintf(stdout, "stream    n=%d m=%d N=%d (%s)\n", hdr.N, hdr.M, hdr.E, opt.In)
		fmt.Fprintf(stdout, "algorithm %s%s\n", opt.Algo, extra)
	}
	report := func(cov *setcover.Cover, extra string) error {
		if err := cov.Verify(inst); err != nil {
			return fmt.Errorf("output cover invalid: %w", err)
		}
		header(extra)
		fmt.Fprintf(stdout, "cover     %d sets (offline greedy: %d, ratio vs greedy: %.2f)\n",
			cov.Size(), greedy, float64(cov.Size())/float64(greedy))
		return nil
	}

	if (opt.CheckpointEvery > 0 || opt.Resume || opt.StopAfter > 0) && !opt.checkpointable() {
		return fmt.Errorf("algorithm %q does not support checkpoint/resume", opt.Algo)
	}
	if opt.StopAfter > 0 && opt.CheckpointEvery <= 0 {
		return fmt.Errorf("-stop-after requires -checkpoint-every (nothing durable would survive the kill)")
	}

	switch opt.Algo {
	case "kk", "alg1", "alg2", "es", "storeall":
		var alg stream.Algorithm
		switch opt.Algo {
		case "kk":
			alg = ensemble(func(r *xrand.Rand) stream.Algorithm { return kk.New(hdr.N, hdr.M, r) })
		case "alg1":
			alg = core.New(hdr.N, hdr.M, hdr.E, core.DefaultParams(hdr.N, hdr.M), rng)
		case "alg2":
			alg = ensemble(func(r *xrand.Rand) stream.Algorithm { return adversarial.New(hdr.N, hdr.M, alpha, r) })
		case "es":
			alg = ensemble(func(r *xrand.Rand) stream.Algorithm { return elementsampling.New(hdr.N, hdr.M, alpha, r) })
		case "storeall":
			alg = stream.NewStoreAll(hdr.N, hdr.M)
		}

		ckPath := opt.CheckpointPath
		if ckPath == "" {
			ckPath = opt.In + ".ckpt"
		}
		policy := stream.CheckpointPolicy{Every: opt.CheckpointEvery, Path: ckPath}

		from := 0
		if opt.Resume {
			from, err = stream.ReadCheckpointFile(ckPath, alg)
			if err != nil {
				// Keep the typed chain intact (callers match snap's
				// sentinels) while making the mismatch case actionable:
				// the usual cause is resuming with different -algo,
				// -copies, -alpha or input than the checkpointing run.
				if errors.Is(err, snap.ErrMismatch) {
					return fmt.Errorf("resume from %s: %w (the checkpoint was written by a different algorithm, copy count or instance shape; rerun with the original -algo/-copies/-alpha and input, or remove the checkpoint to start over)", ckPath, err)
				}
				return fmt.Errorf("resume from %s: %w", ckPath, err)
			}
			fmt.Fprintf(stdout, "resumed   %s at edge %d\n", ckPath, from)
		}

		if opt.StopAfter > 0 {
			pos, err := stream.DrivePartial(alg, stream.NewSlice(edges), policy, opt.StopAfter)
			if err != nil {
				return fmt.Errorf("partial run: %w", err)
			}
			header(fmt.Sprintf(" (alpha=%.0f where applicable, seed=%d)", alpha, opt.Seed))
			fmt.Fprintf(stdout, "stopped   at edge %d of %d; last checkpoint %s at edge %d\n",
				pos, hdr.E, ckPath, pos/opt.CheckpointEvery*opt.CheckpointEvery)
			return nil
		}

		var res stream.Result
		if policy.Every > 0 || from > 0 {
			res, err = stream.RunCheckpointedFrom(alg, stream.NewSlice(edges), policy, from)
			if err != nil {
				return fmt.Errorf("run: %w", err)
			}
		} else {
			res = stream.RunEdges(alg, edges)
		}
		if err := report(res.Cover, fmt.Sprintf(" (alpha=%.0f where applicable, seed=%d)", alpha, opt.Seed)); err != nil {
			return err
		}
		if policy.Every > 0 {
			fmt.Fprintf(stdout, "ckpt      every %d edges -> %s\n", policy.Every, ckPath)
		}
		fmt.Fprintf(stdout, "space     %v\n", res.Space)
		return nil

	case "multipass":
		budget := opt.Budget
		if budget < 1 {
			budget = 64
		}
		mpRes, err := multipass.Run(hdr.N, hdr.M, stream.NewSlice(edges),
			multipass.Options{SampleBudget: budget}, rng)
		if err != nil {
			return fmt.Errorf("multipass: %w", err)
		}
		if err := report(mpRes.Cover, fmt.Sprintf(" (budget=%d): %d passes", budget, mpRes.Passes)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "space     %v\n", mpRes.Space)
		return nil

	case "fractional":
		sol, err := fractional.Solve(hdr.N, hdr.M, stream.NewSlice(edges), fractional.Options{Delta: 0.5})
		if err != nil {
			return fmt.Errorf("fractional: %w", err)
		}
		cov, err := fractional.Round(hdr.N, hdr.M, stream.NewSlice(edges), sol, rng)
		if err != nil {
			return fmt.Errorf("fractional round: %w", err)
		}
		if err := report(cov, fmt.Sprintf(" MWU: LP value %.2f in %d passes", sol.Value, sol.Passes)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "space     %v\n", sol.Space)
		return nil

	default:
		return fmt.Errorf("unknown algorithm %q", opt.Algo)
	}
}
