package cli

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/kk"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// SweepOptions configure Sweep: the full (algorithm × n × m × order) grid
// on planted workloads.
type SweepOptions struct {
	Algos  []string // any of kk|alg1|alg2|es|storeall
	Ns     []int
	Ms     []int
	Orders []string
	Opt    int     // planted optimum per instance
	Alpha  float64 // 0 = 2√n per instance (alg2/es)
	Reps   int
	Seed   uint64
	CSV    bool // emit CSV instead of an aligned table
}

// sweepCell is one aggregated grid cell.
type sweepCell struct {
	algo  string
	n, m  int
	order stream.Order
	cover stats.Summary
	ratio stats.Summary
	state stats.Summary
}

// Sweep runs the grid and writes the results. Cells are computed in
// parallel; the output order is deterministic.
func Sweep(opt SweepOptions, stdout io.Writer) error {
	if len(opt.Algos) == 0 || len(opt.Ns) == 0 || len(opt.Ms) == 0 || len(opt.Orders) == 0 {
		return fmt.Errorf("sweep: empty grid dimension")
	}
	if opt.Reps < 1 {
		opt.Reps = 1
	}
	if opt.Opt < 1 {
		opt.Opt = 10
	}
	for _, a := range opt.Algos {
		switch a {
		case "kk", "alg1", "alg2", "es", "storeall":
		default:
			return fmt.Errorf("sweep: unknown algorithm %q", a)
		}
	}
	orders := make([]stream.Order, len(opt.Orders))
	for i, name := range opt.Orders {
		o, err := stream.ParseOrder(name)
		if err != nil {
			return err
		}
		orders[i] = o
	}

	type job struct {
		idx   int
		algo  string
		n, m  int
		order stream.Order
	}
	var jobs []job
	for _, n := range opt.Ns {
		for _, m := range opt.Ms {
			for _, order := range orders {
				for _, algo := range opt.Algos {
					jobs = append(jobs, job{len(jobs), algo, n, m, order})
				}
			}
		}
	}
	cells := make([]sweepCell, len(jobs))

	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs))
	sem := make(chan struct{}, 8)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cell, err := runSweepCell(opt, j.algo, j.n, j.m, j.order)
			if err != nil {
				errCh <- err
				return
			}
			cells[j.idx] = cell
		}(j)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}

	if opt.CSV {
		w := csv.NewWriter(stdout)
		if err := w.Write([]string{"algo", "n", "m", "order", "cover_mean", "cover_std", "ratio_mean", "state_mean"}); err != nil {
			return err
		}
		for _, c := range cells {
			rec := []string{
				c.algo, strconv.Itoa(c.n), strconv.Itoa(c.m), c.order.String(),
				fmt.Sprintf("%.2f", c.cover.Mean), fmt.Sprintf("%.2f", c.cover.Stddev),
				fmt.Sprintf("%.3f", c.ratio.Mean), fmt.Sprintf("%.1f", c.state.Mean),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}

	tb := texttable.New(
		fmt.Sprintf("Sweep: planted opt=%d, %d reps per cell, seed %d", opt.Opt, opt.Reps, opt.Seed),
		"algo", "n", "m", "order", "cover(mean±std)", "ratio", "state(words)")
	for _, c := range cells {
		tb.AddRow(c.algo, strconv.Itoa(c.n), strconv.Itoa(c.m), c.order.String(),
			fmt.Sprintf("%.0f±%.0f", c.cover.Mean, c.cover.Stddev),
			fmt.Sprintf("%.2f", c.ratio.Mean),
			fmt.Sprintf("%.0f", c.state.Mean))
	}
	_, err := tb.WriteTo(stdout)
	return err
}

func runSweepCell(opt SweepOptions, algo string, n, m int, order stream.Order) (sweepCell, error) {
	if opt.Opt > n {
		return sweepCell{}, fmt.Errorf("sweep: opt=%d exceeds n=%d", opt.Opt, n)
	}
	w := workload.Planted(xrand.New(opt.Seed^uint64(n*31+m)), n, m, opt.Opt, 0)
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = 2 * math.Sqrt(float64(n))
	}
	var covers, ratios, states []float64
	for rep := 0; rep < opt.Reps; rep++ {
		rng := xrand.New(opt.Seed ^ uint64(rep)*0x9e3779b97f4a7c15 ^ uint64(order) ^ hashStr(algo))
		edges := stream.Arrange(w.Inst, order, rng.Split())
		var alg stream.Algorithm
		switch algo {
		case "kk":
			alg = kk.New(n, m, rng.Split())
		case "alg1":
			alg = core.New(n, m, len(edges), core.DefaultParams(n, m), rng.Split())
		case "alg2":
			alg = adversarial.New(n, m, alpha, rng.Split())
		case "es":
			alg = elementsampling.New(n, m, alpha, rng.Split())
		case "storeall":
			alg = stream.NewStoreAll(n, m)
		}
		res := stream.RunEdges(alg, edges)
		if err := res.Cover.Verify(w.Inst); err != nil {
			return sweepCell{}, fmt.Errorf("sweep: %s n=%d m=%d %v: %w", algo, n, m, order, err)
		}
		covers = append(covers, float64(res.Cover.Size()))
		ratios = append(ratios, float64(res.Cover.Size())/float64(opt.Opt))
		states = append(states, float64(res.Space.State))
	}
	return sweepCell{
		algo: algo, n: n, m: m, order: order,
		cover: stats.Summarize(covers),
		ratio: stats.Summarize(ratios),
		state: stats.Summarize(states),
	}, nil
}

func hashStr(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
