package cli

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/kk"
	"streamcover/internal/sched"
	"streamcover/internal/setcover"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// KnownAlgos are the algorithm names Sweep accepts.
var KnownAlgos = []string{"kk", "alg1", "alg2", "es", "storeall"}

// SweepOptions configure Sweep: the full (algorithm × n × m × order) grid
// on planted workloads.
type SweepOptions struct {
	Algos  []string // any of kk|alg1|alg2|es|storeall
	Ns     []int
	Ms     []int
	Orders []string
	Opt    int     // planted optimum per instance
	Alpha  float64 // 0 = 2√n per instance (alg2/es)
	Reps   int
	Seed   uint64
	CSV    bool // emit CSV instead of an aligned table
	// Workers is the scheduler's goroutine count: grid cells are sharded
	// across this many workers (0 = GOMAXPROCS). Cell seeds derive from
	// grid coordinates alone, so the output is byte-identical for every
	// worker count; 1 reproduces the sequential schedule exactly.
	Workers int
	// SolverWorkers is the goroutine count for the offline greedy reference
	// solver each cell runs for its greedy column (0 = GOMAXPROCS,
	// 1 = sequential). The solver's max-gain scan reduces in a fixed order,
	// so the column — and the whole sweep — is byte-identical for every
	// value.
	SolverWorkers int
}

// Validate checks the grid before any work is scheduled, so CLIs can turn
// bad input into a usage error instead of an empty or panicking sweep.
func (opt SweepOptions) Validate() error {
	if len(opt.Algos) == 0 || len(opt.Ns) == 0 || len(opt.Ms) == 0 || len(opt.Orders) == 0 {
		return fmt.Errorf("sweep: empty grid dimension")
	}
	for _, a := range opt.Algos {
		known := false
		for _, k := range KnownAlgos {
			if a == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("sweep: unknown algorithm %q (want one of kk|alg1|alg2|es|storeall)", a)
		}
	}
	for _, n := range opt.Ns {
		if n <= 0 {
			return fmt.Errorf("sweep: -n must be positive, got %d", n)
		}
	}
	for _, m := range opt.Ms {
		if m <= 0 {
			return fmt.Errorf("sweep: -m must be positive, got %d", m)
		}
	}
	if opt.Reps <= 0 {
		return fmt.Errorf("sweep: -reps must be positive, got %d", opt.Reps)
	}
	if opt.SolverWorkers < 0 {
		return fmt.Errorf("sweep: -solver-workers must be >= 0, got %d", opt.SolverWorkers)
	}
	for _, name := range opt.Orders {
		if _, err := stream.ParseOrder(name); err != nil {
			return err
		}
	}
	return nil
}

// sweepCell is one aggregated grid cell.
type sweepCell struct {
	algo   string
	n, m   int
	order  stream.Order
	greedy int // offline greedy reference cover size for the cell's instance
	cover  stats.Summary
	ratio  stats.Summary
	state  stats.Summary
}

// Sweep runs the grid and writes the results. Cells are sharded across
// opt.Workers goroutines (sched.Map); the output order — and, because every
// cell's seed derives only from its grid coordinates, the output bytes —
// are independent of the worker count.
func Sweep(opt SweepOptions, stdout io.Writer) error {
	if err := opt.Validate(); err != nil {
		return err
	}
	if opt.Opt < 1 {
		opt.Opt = 10
	}
	orders := make([]stream.Order, len(opt.Orders))
	for i, name := range opt.Orders {
		o, err := stream.ParseOrder(name)
		if err != nil {
			return err
		}
		orders[i] = o
	}

	type job struct {
		algo  string
		n, m  int
		order stream.Order
	}
	var jobs []job
	for _, n := range opt.Ns {
		for _, m := range opt.Ms {
			for _, order := range orders {
				for _, algo := range opt.Algos {
					jobs = append(jobs, job{algo, n, m, order})
				}
			}
		}
	}
	cells, err := sched.Map(opt.Workers, len(jobs), func(i int) (sweepCell, error) {
		j := jobs[i]
		return runSweepCell(opt, j.algo, j.n, j.m, j.order)
	})
	if err != nil {
		return err
	}

	if opt.CSV {
		w := csv.NewWriter(stdout)
		if err := w.Write([]string{"algo", "n", "m", "order", "cover_mean", "cover_std", "ratio_mean", "greedy", "state_mean"}); err != nil {
			return err
		}
		for _, c := range cells {
			rec := []string{
				c.algo, strconv.Itoa(c.n), strconv.Itoa(c.m), c.order.String(),
				fmt.Sprintf("%.2f", c.cover.Mean), fmt.Sprintf("%.2f", c.cover.Stddev),
				fmt.Sprintf("%.3f", c.ratio.Mean), strconv.Itoa(c.greedy),
				fmt.Sprintf("%.1f", c.state.Mean),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}

	tb := texttable.New(
		fmt.Sprintf("Sweep: planted opt=%d, %d reps per cell, seed %d", opt.Opt, opt.Reps, opt.Seed),
		"algo", "n", "m", "order", "cover(mean±std)", "ratio", "greedy", "state(words)")
	for _, c := range cells {
		tb.AddRow(c.algo, strconv.Itoa(c.n), strconv.Itoa(c.m), c.order.String(),
			fmt.Sprintf("%.0f±%.0f", c.cover.Mean, c.cover.Stddev),
			fmt.Sprintf("%.2f", c.ratio.Mean),
			strconv.Itoa(c.greedy),
			fmt.Sprintf("%.0f", c.state.Mean))
	}
	_, werr := tb.WriteTo(stdout)
	return werr
}

func runSweepCell(opt SweepOptions, algo string, n, m int, order stream.Order) (sweepCell, error) {
	if opt.Opt > n {
		return sweepCell{}, fmt.Errorf("sweep: opt=%d exceeds n=%d", opt.Opt, n)
	}
	w := workload.Planted(xrand.New(cellSeed(opt.Seed, "workload", n, m, 0, 0)), n, m, opt.Opt, 0)
	// Offline greedy ground truth for the cell's instance: the column every
	// streaming cover is read against. The max-gain scan shards across
	// opt.SolverWorkers goroutines with a deterministic lowest-index
	// tie-break, so the reference is identical for every worker count.
	greedy, err := setcover.GreedySizeWorkers(w.Inst, opt.SolverWorkers)
	if err != nil {
		return sweepCell{}, fmt.Errorf("sweep: greedy reference n=%d m=%d: %w", n, m, err)
	}
	alpha := opt.Alpha
	if alpha <= 0 {
		alpha = 2 * math.Sqrt(float64(n))
	}
	var covers, ratios, states []float64
	for rep := 0; rep < opt.Reps; rep++ {
		rng := xrand.New(cellSeed(opt.Seed, algo, n, m, int(order), rep))
		edges := stream.Arrange(w.Inst, order, rng.Split())
		var alg stream.Algorithm
		switch algo {
		case "kk":
			alg = kk.New(n, m, rng.Split())
		case "alg1":
			alg = core.New(n, m, len(edges), core.DefaultParams(n, m), rng.Split())
		case "alg2":
			alg = adversarial.New(n, m, alpha, rng.Split())
		case "es":
			alg = elementsampling.New(n, m, alpha, rng.Split())
		case "storeall":
			alg = stream.NewStoreAll(n, m)
		}
		res := stream.RunEdges(alg, edges)
		if err := res.Cover.Verify(w.Inst); err != nil {
			return sweepCell{}, fmt.Errorf("sweep: %s n=%d m=%d %v: %w", algo, n, m, order, err)
		}
		covers = append(covers, float64(res.Cover.Size()))
		ratios = append(ratios, float64(res.Cover.Size())/float64(opt.Opt))
		states = append(states, float64(res.Space.State))
	}
	return sweepCell{
		algo: algo, n: n, m: m, order: order, greedy: greedy,
		cover: stats.Summarize(covers),
		ratio: stats.Summarize(ratios),
		state: stats.Summarize(states),
	}, nil
}

// cellSeed derives the deterministic base seed for one (algo, n, m, order,
// rep) repetition: a splitmix64-style mix of every grid coordinate, so the
// coins a rep draws are a pure function of its position in the grid — never
// of which worker ran it or in what order. This is the sweep scheduler's
// determinism contract (DESIGN.md §4e): byte-identical output for every
// -workers value. Mixing n and m in also gives every cell independent coins
// (the previous derivation omitted them, so same-algo/order cells shared
// coin sequences across instance sizes).
func cellSeed(base uint64, algo string, n, m, order, rep int) uint64 {
	h := base
	h = mix64(h ^ hashStr(algo))
	h = mix64(h ^ uint64(n))
	h = mix64(h ^ uint64(m))
	h = mix64(h ^ uint64(order))
	h = mix64(h ^ uint64(rep))
	return h
}

// mix64 is the splitmix64 finalizer: an avalanching bijection on uint64.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func hashStr(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
