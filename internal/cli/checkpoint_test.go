package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// coverLine extracts the "cover ..." report line, the part of the output a
// kill-and-resume run must reproduce exactly.
func coverLine(t *testing.T, s string) string {
	t.Helper()
	m := regexp.MustCompile(`(?m)^cover.*$`).FindString(s)
	if m == "" {
		t.Fatalf("no cover line in output:\n%s", s)
	}
	return m
}

// TestReplayKillAndResume is the tool-level kill-and-resume exercise: run to
// completion for reference, then run with -stop-after, then -resume from the
// checkpoint, and the resumed run must report the identical cover.
func TestReplayKillAndResume(t *testing.T) {
	path := genFixture(t, defaultGen())
	for _, algo := range []string{"kk", "alg1", "alg2", "es"} {
		t.Run(algo, func(t *testing.T) {
			ck := filepath.Join(t.TempDir(), "run.ckpt")
			var ref bytes.Buffer
			if err := Replay(ReplayOptions{In: path, Algo: algo, Seed: 7}, &ref); err != nil {
				t.Fatal(err)
			}

			var killed bytes.Buffer
			err := Replay(ReplayOptions{
				In: path, Algo: algo, Seed: 7,
				CheckpointEvery: 200, CheckpointPath: ck, StopAfter: 500,
			}, &killed)
			if err != nil {
				t.Fatalf("killed run: %v", err)
			}
			if !strings.Contains(killed.String(), "stopped") {
				t.Fatalf("killed run did not report stopping:\n%s", killed.String())
			}
			if _, err := os.Stat(ck); err != nil {
				t.Fatalf("no checkpoint on disk: %v", err)
			}

			var resumed bytes.Buffer
			err = Replay(ReplayOptions{
				In: path, Algo: algo, Seed: 7777, // seed must not matter on resume
				CheckpointPath: ck, Resume: true,
			}, &resumed)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !strings.Contains(resumed.String(), "resumed") {
				t.Fatalf("resume did not report the restore:\n%s", resumed.String())
			}
			if got, want := coverLine(t, resumed.String()), coverLine(t, ref.String()); got != want {
				t.Fatalf("resumed cover differs:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// TestReplayKillAndResumeEnsemble: same flow through the concurrent
// ensemble (-copies), whose checkpoint nests one snapshot per copy.
func TestReplayKillAndResumeEnsemble(t *testing.T) {
	path := genFixture(t, defaultGen())
	ck := filepath.Join(t.TempDir(), "ens.ckpt")
	var ref bytes.Buffer
	if err := Replay(ReplayOptions{In: path, Algo: "kk", Seed: 3, Copies: 4}, &ref); err != nil {
		t.Fatal(err)
	}
	err := Replay(ReplayOptions{
		In: path, Algo: "kk", Seed: 3, Copies: 4,
		CheckpointEvery: 150, CheckpointPath: ck, StopAfter: 400,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	err = Replay(ReplayOptions{
		In: path, Algo: "kk", Seed: 99, Copies: 4,
		CheckpointPath: ck, Resume: true,
	}, &resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := coverLine(t, resumed.String()), coverLine(t, ref.String()); got != want {
		t.Fatalf("ensemble resume differs:\n got %q\nwant %q", got, want)
	}
}

func TestReplayCheckpointFlagValidation(t *testing.T) {
	path := genFixture(t, defaultGen())
	// Non-snapshottable algorithms reject checkpoint flags up front.
	for _, algo := range []string{"storeall", "multipass", "fractional"} {
		err := Replay(ReplayOptions{In: path, Algo: algo, CheckpointEvery: 100, Budget: 30}, &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s: checkpointing accepted", algo)
		}
	}
	// StopAfter without an interval would lose all state at the kill.
	if err := Replay(ReplayOptions{In: path, Algo: "kk", StopAfter: 100}, &bytes.Buffer{}); err == nil {
		t.Error("-stop-after without -checkpoint-every accepted")
	}
	// Resume from a missing checkpoint fails loudly.
	err := Replay(ReplayOptions{
		In: path, Algo: "kk", Resume: true,
		CheckpointPath: filepath.Join(t.TempDir(), "absent.ckpt"),
	}, &bytes.Buffer{})
	if err == nil {
		t.Error("resume from missing checkpoint accepted")
	}
}
