package cli

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"streamcover/internal/snap"
)

// coverLine extracts the "cover ..." report line, the part of the output a
// kill-and-resume run must reproduce exactly.
func coverLine(t *testing.T, s string) string {
	t.Helper()
	m := regexp.MustCompile(`(?m)^cover.*$`).FindString(s)
	if m == "" {
		t.Fatalf("no cover line in output:\n%s", s)
	}
	return m
}

// TestReplayKillAndResume is the tool-level kill-and-resume exercise: run to
// completion for reference, then run with -stop-after, then -resume from the
// checkpoint, and the resumed run must report the identical cover.
func TestReplayKillAndResume(t *testing.T) {
	path := genFixture(t, defaultGen())
	for _, algo := range []string{"kk", "alg1", "alg2", "es"} {
		t.Run(algo, func(t *testing.T) {
			ck := filepath.Join(t.TempDir(), "run.ckpt")
			var ref bytes.Buffer
			if err := Replay(ReplayOptions{In: path, Algo: algo, Seed: 7}, &ref); err != nil {
				t.Fatal(err)
			}

			var killed bytes.Buffer
			err := Replay(ReplayOptions{
				In: path, Algo: algo, Seed: 7,
				CheckpointEvery: 200, CheckpointPath: ck, StopAfter: 500,
			}, &killed)
			if err != nil {
				t.Fatalf("killed run: %v", err)
			}
			if !strings.Contains(killed.String(), "stopped") {
				t.Fatalf("killed run did not report stopping:\n%s", killed.String())
			}
			if _, err := os.Stat(ck); err != nil {
				t.Fatalf("no checkpoint on disk: %v", err)
			}

			var resumed bytes.Buffer
			err = Replay(ReplayOptions{
				In: path, Algo: algo, Seed: 7777, // seed must not matter on resume
				CheckpointPath: ck, Resume: true,
			}, &resumed)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !strings.Contains(resumed.String(), "resumed") {
				t.Fatalf("resume did not report the restore:\n%s", resumed.String())
			}
			if got, want := coverLine(t, resumed.String()), coverLine(t, ref.String()); got != want {
				t.Fatalf("resumed cover differs:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// TestReplayKillAndResumeEnsemble: same flow through the concurrent
// ensemble (-copies), whose checkpoint nests one snapshot per copy.
func TestReplayKillAndResumeEnsemble(t *testing.T) {
	path := genFixture(t, defaultGen())
	ck := filepath.Join(t.TempDir(), "ens.ckpt")
	var ref bytes.Buffer
	if err := Replay(ReplayOptions{In: path, Algo: "kk", Seed: 3, Copies: 4}, &ref); err != nil {
		t.Fatal(err)
	}
	err := Replay(ReplayOptions{
		In: path, Algo: "kk", Seed: 3, Copies: 4,
		CheckpointEvery: 150, CheckpointPath: ck, StopAfter: 400,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	err = Replay(ReplayOptions{
		In: path, Algo: "kk", Seed: 99, Copies: 4,
		CheckpointPath: ck, Resume: true,
	}, &resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := coverLine(t, resumed.String()), coverLine(t, ref.String()); got != want {
		t.Fatalf("ensemble resume differs:\n got %q\nwant %q", got, want)
	}
}

func TestReplayCheckpointFlagValidation(t *testing.T) {
	path := genFixture(t, defaultGen())
	// Non-snapshottable algorithms reject checkpoint flags up front.
	for _, algo := range []string{"storeall", "multipass", "fractional"} {
		err := Replay(ReplayOptions{In: path, Algo: algo, CheckpointEvery: 100, Budget: 30}, &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s: checkpointing accepted", algo)
		}
	}
	// StopAfter without an interval would lose all state at the kill.
	if err := Replay(ReplayOptions{In: path, Algo: "kk", StopAfter: 100}, &bytes.Buffer{}); err == nil {
		t.Error("-stop-after without -checkpoint-every accepted")
	}
	// Resume from a missing checkpoint fails loudly.
	err := Replay(ReplayOptions{
		In: path, Algo: "kk", Resume: true,
		CheckpointPath: filepath.Join(t.TempDir(), "absent.ckpt"),
	}, &bytes.Buffer{})
	if err == nil {
		t.Error("resume from missing checkpoint accepted")
	}
}

// TestReplayResumeMismatchIsTyped: resuming from a checkpoint written by a
// different algorithm, copy count or instance shape — or from a corrupted
// file — must fail with snap's typed sentinels surfaced through Replay's
// error (so scrun exits non-zero with a clear message), never panic and
// never silently run.
func TestReplayResumeMismatchIsTyped(t *testing.T) {
	path := genFixture(t, defaultGen())
	ck := filepath.Join(t.TempDir(), "kk.ckpt")
	err := Replay(ReplayOptions{
		In: path, Algo: "kk", Seed: 7,
		CheckpointEvery: 200, CheckpointPath: ck, StopAfter: 500,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}

	otherShape := func() string {
		g := defaultGen()
		g.N, g.M = 60, 300
		g.Out = filepath.Join(t.TempDir(), "small.scs")
		return genFixture(t, g)
	}()
	otherLen := func() string {
		g := defaultGen()
		g.Workload = "uniform"
		g.Out = filepath.Join(t.TempDir(), "uniform.scs")
		return genFixture(t, g)
	}()

	cases := []struct {
		name    string
		opt     ReplayOptions
		wantErr error
	}{
		{
			name:    "different-algorithm",
			opt:     ReplayOptions{In: path, Algo: "alg2", Seed: 7, CheckpointPath: ck, Resume: true},
			wantErr: snap.ErrMismatch,
		},
		{
			name:    "different-copy-count",
			opt:     ReplayOptions{In: path, Algo: "kk", Seed: 7, Copies: 3, CheckpointPath: ck, Resume: true},
			wantErr: snap.ErrMismatch,
		},
		{
			name:    "different-instance-shape",
			opt:     ReplayOptions{In: otherShape, Algo: "kk", Seed: 7, CheckpointPath: ck, Resume: true},
			wantErr: snap.ErrMismatch,
		},
		{
			name:    "different-stream-length-alg1",
			opt:     ReplayOptions{In: otherLen, Algo: "alg1", Seed: 7, CheckpointPath: ck, Resume: true},
			wantErr: snap.ErrMismatch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Replay(tc.opt, &bytes.Buffer{})
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err=%v, want %v", err, tc.wantErr)
			}
			if tc.wantErr == snap.ErrMismatch && !strings.Contains(err.Error(), "rerun with the original") {
				t.Fatalf("mismatch error lacks the actionable hint: %v", err)
			}
		})
	}

	// alg1 checkpoint resumed with alg1 against the length-mismatched
	// stream must also refuse: the phase schedule resolves differently.
	ck1 := filepath.Join(t.TempDir(), "alg1.ckpt")
	err = Replay(ReplayOptions{
		In: path, Algo: "alg1", Seed: 7,
		CheckpointEvery: 200, CheckpointPath: ck1, StopAfter: 500,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	err = Replay(ReplayOptions{In: otherLen, Algo: "alg1", Seed: 7, CheckpointPath: ck1, Resume: true}, &bytes.Buffer{})
	if !errors.Is(err, snap.ErrMismatch) {
		t.Fatalf("alg1 schedule mismatch err=%v, want ErrMismatch", err)
	}

	// Corrupt and truncated checkpoint files fail typed, not with a panic.
	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.ckpt")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	err = Replay(ReplayOptions{In: path, Algo: "kk", Seed: 7, CheckpointPath: trunc, Resume: true}, &bytes.Buffer{})
	if !errors.Is(err, snap.ErrTruncated) {
		t.Fatalf("truncated checkpoint err=%v, want ErrTruncated", err)
	}

	garbage := filepath.Join(t.TempDir(), "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("SCCKPT1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\xffgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = Replay(ReplayOptions{In: path, Algo: "kk", Seed: 7, CheckpointPath: garbage, Resume: true}, &bytes.Buffer{})
	if !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("garbage checkpoint err=%v, want ErrCorrupt", err)
	}
}
