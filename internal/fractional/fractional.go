// Package fractional implements a multi-pass streaming solver for
// *fractional* Set Cover in the edge-arrival model, after Indyk, Mahabadi,
// Rubinfeld, Ullman, Vakilian and Yodpinyanee (APPROX'17, [16] in the
// paper), whose multi-pass fractional algorithm the paper notes "can also
// be implemented in the edge-arrival setting" (§1).
//
// The LP is  min Σ_S x_S  s.t.  Σ_{S∋u} x_S ≥ 1 ∀u,  x ≥ 0. The solver is
// the classical multiplicative-weights scheme adapted to edge arrival:
//
//   - it maintains a weight w(u) per uncovered element (Õ(n) space) and one
//     accumulator per set (Õ(m) space);
//   - each pass computes every set's total weight Σ_{u∈S} w(u) from the
//     edge stream, then adds a δ-sized fractional increment of the heaviest
//     set to the solution;
//   - the chosen set's weights are decayed during the *next* pass, when its
//     edges are seen again (the one-pass-lag trick that makes the update
//     edge-arrival implementable without storing any set);
//   - it stops once every element has accumulated ≥ 1 unit of fractional
//     coverage.
//
// With increment δ, the number of passes is O(OPT_f/δ + 1) and the value is
// within (1 + ln n)-ish of OPT_f in the greedy-like regime measured by the
// tests; the point of the module is the cited *edge-arrival
// implementability* and the LP lower bound LP ≤ OPT it supplies to
// experiments, plus randomized rounding back to an integral cover.
package fractional

import (
	"fmt"
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Solution is a fractional set cover.
type Solution struct {
	// X maps chosen sets to their fractional values (sets with x_S = 0 are
	// absent).
	X map[setcover.SetID]float64
	// Value is Σ x_S.
	Value float64
	// Passes is the number of passes consumed.
	Passes int
	// Coverage[u] is the fractional coverage Σ_{S∋u} x_S accumulated for u.
	Coverage []float64
	// Space is the peak meter reading.
	Space space.Usage
}

// Feasible reports whether every element that appears in the stream has
// coverage ≥ 1 − eps.
func (s *Solution) Feasible(eps float64) bool {
	for _, c := range s.Coverage {
		if c < 1-eps && c > 0 { // c == 0 means the element never appeared
			return false
		}
	}
	return true
}

// Options configure Solve.
type Options struct {
	// Delta is the per-pass fractional increment (default 1).
	Delta float64
	// MaxPasses caps the pass count (0 = 4·n/Delta, hard cap 10_000).
	MaxPasses int
}

// Solve runs the multi-pass fractional solver on a replayable edge stream
// of an instance with n elements and m sets.
func Solve(n, m int, s stream.Stream, opt Options) (*Solution, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("fractional: need n > 0 and m > 0")
	}
	delta := opt.Delta
	if delta <= 0 {
		delta = 1
	}
	maxPasses := opt.MaxPasses
	if maxPasses <= 0 {
		maxPasses = int(4*float64(n)/delta) + 4
	}
	if maxPasses > 10_000 {
		maxPasses = 10_000
	}

	var tracked space.Tracked
	tracked.AuxMeter.Add(2 * int64(n)) // coverage + per-element appearance
	tracked.StateMeter.Add(int64(m))   // per-set weight accumulators

	coverage := make([]float64, n)
	weightAcc := make([]float64, m)
	sol := &Solution{X: map[setcover.SetID]float64{}, Coverage: coverage}

	// lastChosen is the set whose δ-increment from the previous pass still
	// needs its elements' coverage bumped (the one-pass lag).
	lastChosen := setcover.NoSet

	for pass := 0; pass < maxPasses; pass++ {
		sol.Passes++
		for i := range weightAcc {
			weightAcc[i] = 0
		}
		uncovered := false
		anySeen := false

		s.Reset()
		for {
			e, ok := s.Next()
			if !ok {
				break
			}
			u, set := e.Elem, e.Set
			if u < 0 || int(u) >= n || set < 0 || int(set) >= m {
				return nil, fmt.Errorf("fractional: edge %v out of range", e)
			}
			anySeen = true
			if coverage[u] == 0 {
				coverage[u] = math.SmallestNonzeroFloat64 // mark as appearing
			}
			if set == lastChosen {
				coverage[u] += delta
			}
			if coverage[u] < 1 {
				uncovered = true
				// Element weight exp(-coverage): heavily uncovered elements
				// dominate the set scores.
				weightAcc[set] += math.Exp(-coverage[u] * math.Ln2 * 4)
			}
		}
		lastChosen = setcover.NoSet
		if !uncovered || !anySeen {
			break
		}

		// Choose the heaviest set and commit a δ increment; its coverage
		// effect lands during the next pass.
		best := setcover.NoSet
		bestW := 0.0
		for i, w := range weightAcc {
			if w > bestW {
				bestW = w
				best = setcover.SetID(i)
			}
		}
		if best == setcover.NoSet {
			break
		}
		if _, seen := sol.X[best]; !seen {
			tracked.StateMeter.Add(space.MapEntryWords)
		}
		sol.X[best] += delta
		sol.Value += delta
		lastChosen = best
	}

	// Clean the appearance markers back to true zero coverage.
	for u := range coverage {
		if coverage[u] == math.SmallestNonzeroFloat64 {
			coverage[u] = 0
		}
	}
	sol.Space = tracked.Space()
	return sol, nil
}

// DualBound extracts a certified lower bound on the optimal (fractional,
// hence also integral) cover size from a solved instance, using LP duality:
// any assignment y_u ≥ 0 with Σ_{u∈S} y_u ≤ 1 for every set S has value
// Σ_u y_u ≤ OPT_f ≤ OPT.
//
// The candidate duals are the solver's final element weights
// w_u = exp(−c·coverage_u); one extra pass computes every set's load
// Σ_{u∈S} w_u, and scaling by the maximum load makes the assignment
// feasible. Elements that never appear get weight zero. The bound is
// deterministic given the solution and always ≥ 1 on nonempty feasible
// instances (and ≥ n/maxSetSize-grade in practice, since uncovered-leaning
// weights concentrate on hard elements).
func (s *Solution) DualBound(n, m int, st stream.Stream) (float64, error) {
	if len(s.Coverage) != n {
		return 0, fmt.Errorf("fractional: solution for n=%d, got %d", len(s.Coverage), n)
	}
	weights := make([]float64, n)
	seen := make([]bool, n)
	loads := make([]float64, m)
	st.Reset()
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		u, set := e.Elem, e.Set
		if u < 0 || int(u) >= n || set < 0 || int(set) >= m {
			return 0, fmt.Errorf("fractional: edge %v out of range", e)
		}
		if !seen[u] {
			seen[u] = true
			weights[u] = math.Exp(-s.Coverage[u] * math.Ln2 * 4)
		}
	}
	st.Reset()
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		loads[e.Set] += weights[e.Elem]
	}
	maxLoad := 0.0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return 0, nil
	}
	total := 0.0
	for u := 0; u < n; u++ {
		if seen[u] {
			total += weights[u]
		}
	}
	return total / maxLoad, nil
}

// Round converts a fractional solution into an integral cover by randomized
// rounding: every set is chosen independently with probability
// min(1, c·ln(n)·x_S), and any element left uncovered is patched with its
// first stream set (one extra pass collects witnesses and backups). The
// expected integral size is O(log n)·Value.
func Round(n, m int, s stream.Stream, sol *Solution, rng *xrand.Rand) (*setcover.Cover, error) {
	if sol == nil {
		return nil, fmt.Errorf("fractional: Round needs a solution")
	}
	boost := math.Log(float64(n)) + 1
	chosen := make(map[setcover.SetID]struct{})
	for set, x := range sol.X {
		if rng.Coin(math.Min(1, boost*x)) {
			chosen[set] = struct{}{}
		}
	}

	cert := make([]setcover.SetID, n)
	backup := make([]setcover.SetID, n)
	for u := range cert {
		cert[u] = setcover.NoSet
		backup[u] = setcover.NoSet
	}
	s.Reset()
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if backup[e.Elem] == setcover.NoSet {
			backup[e.Elem] = e.Set
		}
		if _, in := chosen[e.Set]; in && cert[e.Elem] == setcover.NoSet {
			cert[e.Elem] = e.Set
		}
	}
	ids := make([]setcover.SetID, 0, len(chosen))
	for set := range chosen {
		ids = append(ids, set)
	}
	for u := 0; u < n; u++ {
		if cert[u] == setcover.NoSet && backup[u] != setcover.NoSet {
			cert[u] = backup[u]
			ids = append(ids, backup[u])
		}
	}
	return setcover.NewCover(ids, cert), nil
}
