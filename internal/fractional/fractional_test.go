package fractional

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func solveOn(t testing.TB, w workload.Workload, opt Options) *Solution {
	t.Helper()
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(7))
	sol, err := Solve(w.Inst.UniverseSize(), w.Inst.NumSets(), stream.NewSlice(edges), opt)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSolveFeasible(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		sol := solveOn(t, w, Options{})
		if !sol.Feasible(1e-9) {
			t.Errorf("%s: infeasible fractional solution", w.Name)
		}
		if sol.Value <= 0 {
			t.Errorf("%s: value %v", w.Name, sol.Value)
		}
	}
}

func TestValueUpperBoundsAreSane(t *testing.T) {
	// LP value ≤ integral greedy; our δ=1 solver is integral-greedy-like,
	// so demand Value within (1+ln n)·greedy and ≥ the LP lower bound
	// N_elems/maxSetSize.
	w := workload.Planted(xrand.New(2), 200, 1000, 10, 0)
	sol := solveOn(t, w, Options{})
	g, err := setcover.GreedySize(w.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value > float64(g)*(1+math.Log(200)) {
		t.Errorf("value %v far above greedy %d", sol.Value, g)
	}
	maxSize := w.Inst.Stats().MaxSetSize
	if sol.Value < float64(200)/float64(maxSize)-1e-9 {
		t.Errorf("value %v below the n/maxSetSize LP bound", sol.Value)
	}
}

func TestSmallDeltaApproachesLP(t *testing.T) {
	// The classic fractional-beats-integral instance: three elements, three
	// sets of two elements each. OPT integral = 2, OPT fractional = 1.5.
	inst := setcover.MustNewInstance(3, [][]setcover.Element{{0, 1}, {1, 2}, {0, 2}})
	edges := stream.EdgesOf(inst)
	sol, err := Solve(3, 3, stream.NewSlice(edges), Options{Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible(1e-9) {
		t.Fatal("infeasible")
	}
	if sol.Value < 1.5-1e-9 {
		t.Fatalf("value %v below the LP optimum 1.5", sol.Value)
	}
	if sol.Value > 2.2 {
		t.Fatalf("value %v should sit between LP 1.5 and integral 2 (+slack)", sol.Value)
	}
}

func TestPassesScaleWithDelta(t *testing.T) {
	w := workload.Planted(xrand.New(3), 100, 500, 5, 0)
	coarse := solveOn(t, w, Options{Delta: 1})
	fine := solveOn(t, w, Options{Delta: 0.25})
	if fine.Passes <= coarse.Passes {
		t.Errorf("finer δ should need more passes: δ=1 %d, δ=.25 %d", coarse.Passes, fine.Passes)
	}
	// Both must be feasible.
	if !coarse.Feasible(1e-9) || !fine.Feasible(1e-9) {
		t.Fatal("infeasible")
	}
}

func TestSpaceLinearInMPlusN(t *testing.T) {
	w := workload.Planted(xrand.New(4), 100, 2000, 5, 0)
	sol := solveOn(t, w, Options{})
	if sol.Space.State < 2000 {
		t.Errorf("state %d below m (weight accumulators must be charged)", sol.Space.State)
	}
	if sol.Space.State > 2*2000+200 {
		t.Errorf("state %d far above O(m)", sol.Space.State)
	}
}

func TestMaxPassesTruncates(t *testing.T) {
	w := workload.Planted(xrand.New(5), 100, 500, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(6))
	sol, err := Solve(100, 500, stream.NewSlice(edges), Options{MaxPasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Passes > 3 {
		t.Fatalf("passes %d > 3", sol.Passes)
	}
}

func TestSolveErrors(t *testing.T) {
	edges := []stream.Edge{{Set: 0, Elem: 0}}
	if _, err := Solve(0, 1, stream.NewSlice(edges), Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Solve(1, 0, stream.NewSlice(edges), Options{}); err == nil {
		t.Error("m=0 accepted")
	}
	bad := []stream.Edge{{Set: 3, Elem: 0}}
	if _, err := Solve(1, 1, stream.NewSlice(bad), Options{}); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestRoundProducesValidCover(t *testing.T) {
	w := workload.Planted(xrand.New(7), 150, 800, 5, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(8))
	sol, err := Solve(150, 800, stream.NewSlice(edges), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cov, err := Round(150, 800, stream.NewSlice(edges), sol, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := cov.Verify(w.Inst); err != nil {
		t.Fatalf("rounded cover invalid: %v", err)
	}
	bound := sol.Value*(math.Log(150)+1)*3 + 20
	if float64(cov.Size()) > bound {
		t.Errorf("rounded cover %d far above O(log n)·LP = %.0f", cov.Size(), bound)
	}
}

func TestDualBoundCertifiesOPT(t *testing.T) {
	// The dual bound must sandwich correctly: 0 < bound ≤ exact OPT.
	rng := xrand.New(21)
	for trial := 0; trial < 10; trial++ {
		w := workload.Planted(rng.Split(), 40, 120, 4, 0)
		edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
		sol, err := Solve(40, 120, stream.NewSlice(edges), Options{})
		if err != nil {
			t.Fatal(err)
		}
		lb, err := sol.DualBound(40, 120, stream.NewSlice(edges))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := setcover.ExactSize(w.Inst)
		if err != nil {
			t.Fatal(err)
		}
		if lb <= 0 {
			t.Fatalf("trial %d: dual bound %v not positive", trial, lb)
		}
		if lb > float64(opt)+1e-9 {
			t.Fatalf("trial %d: dual bound %v exceeds exact OPT %d — duality violated", trial, lb, opt)
		}
	}
}

func TestDualBoundOnTriangle(t *testing.T) {
	// LP OPT = 1.5 on the triangle instance; the dual bound must be ≤ 1.5
	// and clearly above the trivial 1.
	inst := setcover.MustNewInstance(3, [][]setcover.Element{{0, 1}, {1, 2}, {0, 2}})
	edges := stream.EdgesOf(inst)
	sol, err := Solve(3, 3, stream.NewSlice(edges), Options{Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := sol.DualBound(3, 3, stream.NewSlice(edges))
	if err != nil {
		t.Fatal(err)
	}
	if lb > 1.5+1e-9 {
		t.Fatalf("dual bound %v exceeds LP optimum 1.5", lb)
	}
	if lb < 1.0 {
		t.Fatalf("dual bound %v below the trivial bound 1", lb)
	}
}

func TestDualBoundErrors(t *testing.T) {
	sol := &Solution{Coverage: make([]float64, 3)}
	if _, err := sol.DualBound(5, 3, stream.NewSlice(nil)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	bad := []stream.Edge{{Set: 9, Elem: 0}}
	if _, err := sol.DualBound(3, 3, stream.NewSlice(bad)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestRoundNilSolution(t *testing.T) {
	if _, err := Round(1, 1, stream.NewSlice(nil), nil, xrand.New(1)); err == nil {
		t.Fatal("nil solution accepted")
	}
}

func TestDeterministic(t *testing.T) {
	w := workload.Planted(xrand.New(10), 100, 500, 5, 0)
	a := solveOn(t, w, Options{})
	b := solveOn(t, w, Options{})
	if a.Value != b.Value || a.Passes != b.Passes {
		t.Fatal("solver not deterministic")
	}
}

func BenchmarkFractionalSolve(b *testing.B) {
	w := workload.Planted(xrand.New(1), 500, 5000, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(500, 5000, stream.NewSlice(edges), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
