package lowerbound

import (
	"fmt"

	"streamcover/internal/xrand"
)

// Disjointness is a t-party Set-Disjointness promise instance (paper §3,
// Theorem 5): each party i holds Parties[i] ⊆ [0, universe); either the sets
// are pairwise disjoint, or they intersect in exactly one common element
// (and pairwise in exactly that element).
type Disjointness struct {
	Universe int
	// Parties[i] is party i's subset, sorted ascending.
	Parties [][]int
	// Intersecting reports which promise case this instance is in.
	Intersecting bool
	// Witness is the unique common element when Intersecting, else -1.
	Witness int
}

// NewDisjoint draws a pairwise-disjoint instance: the universe is split so
// each of the t parties gets setSize private elements. It panics if
// t·setSize > universe.
func NewDisjoint(rng *xrand.Rand, universe, t, setSize int) *Disjointness {
	if t <= 0 || setSize <= 0 || t*setSize > universe {
		panic(fmt.Sprintf("lowerbound: NewDisjoint universe=%d t=%d setSize=%d infeasible", universe, t, setSize))
	}
	pool := rng.SampleK(universe, t*setSize)
	d := &Disjointness{Universe: universe, Witness: -1, Parties: make([][]int, t)}
	for i := 0; i < t; i++ {
		part := append([]int(nil), pool[i*setSize:(i+1)*setSize]...)
		sortInts(part)
		d.Parties[i] = part
	}
	return d
}

// NewIntersecting draws a uniquely-intersecting instance: one witness
// element is shared by all parties, and the remaining setSize−1 elements of
// each party are private. It panics if t·(setSize−1)+1 > universe or
// setSize < 1.
func NewIntersecting(rng *xrand.Rand, universe, t, setSize int) *Disjointness {
	if t <= 0 || setSize < 1 || t*(setSize-1)+1 > universe {
		panic(fmt.Sprintf("lowerbound: NewIntersecting universe=%d t=%d setSize=%d infeasible", universe, t, setSize))
	}
	pool := rng.SampleK(universe, t*(setSize-1)+1)
	witness := pool[0]
	rest := pool[1:]
	d := &Disjointness{Universe: universe, Intersecting: true, Witness: witness, Parties: make([][]int, t)}
	for i := 0; i < t; i++ {
		part := append([]int(nil), rest[i*(setSize-1):(i+1)*(setSize-1)]...)
		part = append(part, witness)
		sortInts(part)
		d.Parties[i] = part
	}
	return d
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Check verifies the promise structurally: pairwise intersections are empty
// in the disjoint case and exactly {Witness} in the intersecting case. It
// returns an error describing the first violation.
func (d *Disjointness) Check() error {
	for i := 0; i < len(d.Parties); i++ {
		for j := i + 1; j < len(d.Parties); j++ {
			inter := intersect(d.Parties[i], d.Parties[j])
			if d.Intersecting {
				if len(inter) != 1 || inter[0] != d.Witness {
					return fmt.Errorf("lowerbound: parties %d,%d intersect in %v, want {%d}", i, j, inter, d.Witness)
				}
			} else if len(inter) != 0 {
				return fmt.Errorf("lowerbound: parties %d,%d intersect in %v, want ∅", i, j, inter)
			}
		}
	}
	return nil
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
