// Package lowerbound implements the machinery behind the paper's Theorem 2
// space lower bound for adversarial-order edge-arrival Set Cover:
//
//   - the Lemma 1 random set family (m sets of size √(nt), each randomly
//     partitioned into t parts of size √(n/t), with all pairwise
//     part-vs-set intersections of size O(log n));
//   - t-party Set-Disjointness promise instances (Theorem 5, [9]);
//   - the reduction that turns a disjointness instance into per-party
//     edge-arrival Set Cover streams (one parallel run per candidate set,
//     each appending the complement set [n]\T_j);
//   - a one-way communication simulator that drives any streaming algorithm
//     through the party cut points and records the maximum state crossing a
//     cut — the message size a protocol built from the algorithm would
//     need;
//   - the sampling-without-replacement experiments behind the Lemma 2
//     concentration bounds for random-order streams.
//
// A lower bound cannot be "run"; what can be run is the reduction, forward:
// on the hard distribution, an algorithm whose state is much smaller than
// the Ω̃(m·n²/α⁴) bound fails to distinguish the two promise cases, and one
// with enough state succeeds. The E-LB experiment measures exactly that
// trade-off.
package lowerbound

import (
	"fmt"
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

// Family is a Lemma 1 set family: Count sets over the universe [0, n), each
// of size PartSize·T, partitioned into T parts of PartSize elements.
type Family struct {
	N        int // universe size
	T        int // parts per set (= parties)
	PartSize int // √(n/t), rounded
	Count    int // number of sets (the disjointness universe size m)

	// Parts[i][r] is part r of set T_i, sorted. Set T_i is the disjoint
	// union of its parts.
	Parts [][][]setcover.Element
}

// NewFamily draws a random family in the shape of Lemma 1: each T_i is a
// uniform √(n·t)-subset of [n] under a uniform partition into t parts.
// Sizes are rounded so that SetSize = PartSize·t exactly. It panics if the
// rounded set size exceeds n or any parameter is non-positive.
func NewFamily(rng *xrand.Rand, n, count, t int) *Family {
	if n <= 0 || count <= 0 || t <= 0 {
		panic("lowerbound: NewFamily needs positive n, count, t")
	}
	partSize := int(math.Round(math.Sqrt(float64(n) / float64(t))))
	if partSize < 1 {
		partSize = 1
	}
	if partSize*t > n {
		panic(fmt.Sprintf("lowerbound: set size %d·%d exceeds n=%d", partSize, t, n))
	}
	f := &Family{N: n, T: t, PartSize: partSize, Count: count,
		Parts: make([][][]setcover.Element, count)}
	setSize := partSize * t
	for i := 0; i < count; i++ {
		elems := rng.SampleK32(n, setSize) // already in random order
		parts := make([][]setcover.Element, t)
		for r := 0; r < t; r++ {
			part := append([]setcover.Element(nil), elems[r*partSize:(r+1)*partSize]...)
			sortElems(part)
			parts[r] = part
		}
		f.Parts[i] = parts
	}
	return f
}

func sortElems(s []setcover.Element) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SetSize returns |T_i| = PartSize·T.
func (f *Family) SetSize() int { return f.PartSize * f.T }

// Set returns the full set T_i (all parts concatenated, sorted).
func (f *Family) Set(i int) []setcover.Element {
	out := make([]setcover.Element, 0, f.SetSize())
	for _, p := range f.Parts[i] {
		out = append(out, p...)
	}
	sortElems(out)
	return out
}

// Part returns part r of set T_i, sorted.
func (f *Family) Part(i, r int) []setcover.Element { return f.Parts[i][r] }

// Complement returns [n] \ T_i, the set the last party appends in parallel
// run i of the reduction.
func (f *Family) Complement(i int) []setcover.Element {
	in := make([]bool, f.N)
	for _, p := range f.Parts[i] {
		for _, u := range p {
			in[u] = true
		}
	}
	out := make([]setcover.Element, 0, f.N-f.SetSize())
	for u := 0; u < f.N; u++ {
		if !in[u] {
			out = append(out, setcover.Element(u))
		}
	}
	return out
}

// MaxPartIntersection returns max over the checked (i, j, r) triples, i≠j,
// of |T_i^r ∩ T_j| — the quantity Lemma 1 bounds by O(log n). Checking all
// triples is Θ(count²·t) set intersections; maxPairs > 0 bounds the number
// of (i, j) pairs examined, sampled deterministically from rng (pass 0 to
// check every pair).
func (f *Family) MaxPartIntersection(rng *xrand.Rand, maxPairs int) int {
	type pair struct{ i, j int }
	var pairs []pair
	total := f.Count * (f.Count - 1)
	if maxPairs <= 0 || maxPairs >= total {
		for i := 0; i < f.Count; i++ {
			for j := 0; j < f.Count; j++ {
				if i != j {
					pairs = append(pairs, pair{i, j})
				}
			}
		}
	} else {
		for len(pairs) < maxPairs {
			i, j := rng.IntN(f.Count), rng.IntN(f.Count)
			if i != j {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	best := 0
	for _, p := range pairs {
		inJ := make(map[setcover.Element]struct{}, f.SetSize())
		for _, u := range f.Set(p.j) {
			inJ[u] = struct{}{}
		}
		for r := 0; r < f.T; r++ {
			c := 0
			for _, u := range f.Part(p.i, r) {
				if _, ok := inJ[u]; ok {
					c++
				}
			}
			if c > best {
				best = c
			}
		}
	}
	return best
}
