package lowerbound

import (
	"math"

	"streamcover/internal/xrand"
)

// This file implements the sampling experiment behind Lemma 2, the
// concentration result the whole random-order analysis rests on (paper §4.3
// and Appendix A.1): a random-order stream restricted to a fixed index set
// I of size ℓ contains a hypergeometrically distributed number of the edges
// (S, x), x ∈ X, and that count concentrates around ℓ·|X|/N.

// Hypergeometric draws the number of "marked" items obtained when drawing
// l items without replacement from a population of size N containing X
// marked items. It simulates the draw directly in O(l) time.
// It panics if the parameters are out of range.
func Hypergeometric(rng *xrand.Rand, N, X, l int) int {
	if N < 0 || X < 0 || X > N || l < 0 || l > N {
		panic("lowerbound: Hypergeometric parameters out of range")
	}
	marked := 0
	remMarked, remTotal := X, N
	for i := 0; i < l; i++ {
		if rng.Coin(float64(remMarked) / float64(remTotal)) {
			marked++
			remMarked--
		}
		remTotal--
	}
	return marked
}

// Lemma2Stats summarises repeated hypergeometric trials against the bounds
// of one Lemma 2 regime.
type Lemma2Stats struct {
	Trials     int
	Mean       float64 // empirical mean count
	Expected   float64 // ℓ·|X|/N
	Violations int     // trials outside the regime's bounds
}

// CheckRegime1 runs trials of the regime-1 experiment (ℓ ≤ 0.001·N and
// ℓ·|X|/N ≥ C·log m): counts must lie in [0.99, 1.01]·ℓ·|X|/N. It reports
// how many trials violate the two-sided bound.
func CheckRegime1(rng *xrand.Rand, N, X, l, trials int) Lemma2Stats {
	exp := float64(l) * float64(X) / float64(N)
	st := Lemma2Stats{Trials: trials, Expected: exp}
	sum := 0.0
	for i := 0; i < trials; i++ {
		c := Hypergeometric(rng, N, X, l)
		sum += float64(c)
		if float64(c) < 0.99*exp || float64(c) > 1.01*exp {
			st.Violations++
		}
	}
	st.Mean = sum / float64(trials)
	return st
}

// CheckRegime2 runs trials of the regime-2 experiment (ℓ ≤ N/2): counts
// must be at most C·log(m)·max(ℓ·|X|/N, 1) for the given C and m.
func CheckRegime2(rng *xrand.Rand, N, X, l, trials int, c float64, m int) Lemma2Stats {
	exp := float64(l) * float64(X) / float64(N)
	bound := c * math.Log2(float64(m)) * math.Max(exp, 1)
	st := Lemma2Stats{Trials: trials, Expected: exp}
	sum := 0.0
	for i := 0; i < trials; i++ {
		cnt := Hypergeometric(rng, N, X, l)
		sum += float64(cnt)
		if float64(cnt) > bound {
			st.Violations++
		}
	}
	st.Mean = sum / float64(trials)
	return st
}

// CheckRegime3 runs trials of the regime-3 experiment (ℓ ≤ N/√n and
// ℓ·|X|/N ≥ log⁶m): counts must lie within the ±log(m)·√(ℓ·|X|/N)
// two-sided window of Lemma 2(3), up to the (1 ± 1/√n) skews.
func CheckRegime3(rng *xrand.Rand, N, X, l, trials, n, m int) Lemma2Stats {
	exp := float64(l) * float64(X) / float64(N)
	logm := math.Log2(float64(m))
	sq := 1 - 1/math.Sqrt(float64(n))
	lo := exp*sq - logm*math.Sqrt(exp*sq)
	hiBase := exp / sq
	hi := hiBase + logm*math.Sqrt(hiBase)
	st := Lemma2Stats{Trials: trials, Expected: exp}
	sum := 0.0
	for i := 0; i < trials; i++ {
		cnt := Hypergeometric(rng, N, X, l)
		sum += float64(cnt)
		if float64(cnt) < lo || float64(cnt) > hi {
			st.Violations++
		}
	}
	st.Mean = sum / float64(trials)
	return st
}
