package lowerbound

import (
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// CutAlgorithm is a streaming algorithm whose instantaneous state size can
// be observed, so the simulator can measure what crosses each party cut.
// Every algorithm in this repository satisfies it via space.Tracked.
type CutAlgorithm interface {
	stream.Algorithm
	Current() space.Usage
}

// SimResult is the outcome of simulating one parallel run of the one-way
// protocol built from a streaming algorithm.
type SimResult struct {
	// Cover is the algorithm's output for the run.
	Cover *setcover.Cover
	// Uncovered counts certificate entries left at NoSet — elements the run
	// instance cannot cover (possible in the disjoint promise case).
	Uncovered int
	// EffectiveSize is Cover.Size() + Uncovered: the cover-size estimate
	// with each uncoverable element priced at one (absent) set, which is
	// what the last party thresholds against OPT0.
	EffectiveSize int
	// Messages[i] is the state (in words) carried from party i to party
	// i+1 — the length of message M_{i+1} in the protocol. The final entry
	// is the state entering the complement chunk.
	Messages []int64
	// MaxMessage is the largest entry of Messages, the quantity Theorem 5
	// lower-bounds by Ω(m/t²) for any protocol deciding disjointness.
	MaxMessage int64
}

// SimulateRun feeds the chunk sequence to alg in order, recording the state
// size at every chunk boundary, and finishes the algorithm.
//
// The paper's last party forks the algorithm m times, one parallel run per
// candidate set. Forking is simulated by running a fresh, identically-seeded
// algorithm per run: determinism makes every run's prefix behaviour
// identical to the forked original, so the measured cut sizes and outputs
// coincide with the forking construction.
func SimulateRun(alg CutAlgorithm, chunks [][]stream.Edge) SimResult {
	res := SimResult{}
	for i, chunk := range chunks {
		if i > 0 {
			msg := alg.Current().State
			res.Messages = append(res.Messages, msg)
			if msg > res.MaxMessage {
				res.MaxMessage = msg
			}
		}
		for _, e := range chunk {
			alg.Process(e)
		}
	}
	res.Cover = alg.Finish()
	for _, w := range res.Cover.Certificate {
		if w == setcover.NoSet {
			res.Uncovered++
		}
	}
	res.EffectiveSize = res.Cover.Size() + res.Uncovered
	return res
}

// Decision is the last party's output in the reduction.
type Decision struct {
	// Intersecting is true when some parallel run produced a cover small
	// enough (≤ threshold) to certify the uniquely-intersecting case.
	Intersecting bool
	// BestRun is the index of the run with the smallest cover, and BestSize
	// its size.
	BestRun  int
	BestSize int
	// MaxMessage is the largest message over all runs and cuts.
	MaxMessage int64
}

// Decide implements the last party's rule from the proof of Theorem 2:
// report "uniquely intersecting" iff some parallel run's cover size is at
// most threshold (the paper uses OPT0 − 1 where OPT0 = O((s − s/t)/log n)).
// newAlg must return a fresh identically-seeded algorithm per run.
func Decide(r *Reduction, newAlg func(run int) CutAlgorithm, threshold int) Decision {
	d := Decision{BestRun: -1, BestSize: 1 << 30}
	for j := 0; j < r.F.Count; j++ {
		res := SimulateRun(newAlg(j), r.RunChunks(j))
		if res.MaxMessage > d.MaxMessage {
			d.MaxMessage = res.MaxMessage
		}
		if res.EffectiveSize < d.BestSize {
			d.BestSize = res.EffectiveSize
			d.BestRun = j
		}
	}
	d.Intersecting = d.BestSize <= threshold
	return d
}
