package lowerbound

import (
	"fmt"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
)

// Reduction assembles the Theorem 2 construction: given a Lemma 1 family
// T_1..T_count (partitioned into t parts each) and a t-party Set-Disjointness
// instance over universe [count], party p contributes the partial sets
// {T_b^p : b ∈ S_p} to an edge-arrival Set Cover stream, and parallel run j
// of the last party appends the complement set [n] \ T_j.
//
// Set-id scheme: partial set T_b^p has id p·count + b; the complement set of
// the active run always has id t·count, so every parallel run shares the
// same id space of t·count + 1 sets over the universe [0, n).
type Reduction struct {
	F *Family
	D *Disjointness
}

// NewReduction pairs a family with a disjointness instance, validating that
// the disjointness universe matches the family size and the party counts
// agree.
func NewReduction(f *Family, d *Disjointness) (*Reduction, error) {
	if d.Universe != f.Count {
		return nil, fmt.Errorf("lowerbound: disjointness universe %d != family count %d", d.Universe, f.Count)
	}
	if len(d.Parties) != f.T {
		return nil, fmt.Errorf("lowerbound: %d parties != family t=%d", len(d.Parties), f.T)
	}
	return &Reduction{F: f, D: d}, nil
}

// NumSets returns the per-run set-id space size, t·count + 1.
func (r *Reduction) NumSets() int { return r.F.T*r.F.Count + 1 }

// ComplementID returns the set id used by every run's complement set.
func (r *Reduction) ComplementID() setcover.SetID {
	return setcover.SetID(r.F.T * r.F.Count)
}

// partialID returns the global id of partial set T_b^p.
func (r *Reduction) partialID(p, b int) setcover.SetID {
	return setcover.SetID(p*r.F.Count + b)
}

// PartyEdges returns the edge chunk party p feeds to the algorithm: all
// edges of the partial sets selected by p's disjointness set.
func (r *Reduction) PartyEdges(p int) []stream.Edge {
	var edges []stream.Edge
	for _, b := range r.D.Parties[p] {
		id := r.partialID(p, b)
		for _, u := range r.F.Part(b, p) {
			edges = append(edges, stream.Edge{Set: id, Elem: u})
		}
	}
	return edges
}

// ComplementEdges returns the final chunk of parallel run j: the edges of
// the complement set [n] \ T_j.
func (r *Reduction) ComplementEdges(j int) []stream.Edge {
	id := r.ComplementID()
	var edges []stream.Edge
	for _, u := range r.F.Complement(j) {
		edges = append(edges, stream.Edge{Set: id, Elem: u})
	}
	return edges
}

// RunChunks returns the full chunk sequence of parallel run j: one chunk per
// party, then the complement chunk. Concatenated they form the adversarial
// stream the reduction presents to the algorithm; the boundaries are the
// one-way communication cut points.
func (r *Reduction) RunChunks(j int) [][]stream.Edge {
	chunks := make([][]stream.Edge, 0, r.F.T+1)
	for p := 0; p < r.F.T; p++ {
		chunks = append(chunks, r.PartyEdges(p))
	}
	return append(chunks, r.ComplementEdges(j))
}

// Instance materialises parallel run j as a Set Cover instance (for offline
// reference solutions). Sets that the disjointness instance leaves out are
// present but empty. The instance may be infeasible — in the disjoint
// promise case nothing guarantees the present partial sets cover all of
// T_j — so callers should use GreedyLower rather than assuming Validate
// passes.
func (r *Reduction) Instance(j int) (*setcover.Instance, error) {
	b := setcover.NewBuilder(r.F.N)
	b.EnsureSets(r.NumSets())
	for _, chunk := range r.RunChunks(j) {
		for _, e := range chunk {
			if err := b.AddEdge(e.Set, e.Elem); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// GreedyLower computes an offline reference for run j: the greedy cover
// size over coverable elements plus the number of uncoverable elements
// (each of which would need its own absent set — in the disjoint case the
// random partial sets need not cover every element of T_j). The sum is the
// "estimated optimal cover size" the last party thresholds against OPT0
// (paper, proof of Theorem 2).
func (r *Reduction) GreedyLower(j int) (coverSize, uncoverable int, err error) {
	inst, err := r.Instance(j)
	if err != nil {
		return 0, 0, err
	}
	cov, uncoverable, err := setcover.GreedyPartial(inst)
	if err != nil {
		return 0, 0, err
	}
	return cov.Size(), uncoverable, nil
}
