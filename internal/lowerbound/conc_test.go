package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"streamcover/internal/xrand"
)

func TestHypergeometricRange(t *testing.T) {
	rng := xrand.New(1)
	f := func(seed uint16) bool {
		N := int(seed%500) + 10
		X := int(seed) % (N + 1)
		l := int(seed/3) % (N + 1)
		c := Hypergeometric(rng, N, X, l)
		// Count is within [max(0, l+X-N), min(l, X)].
		lo := l + X - N
		if lo < 0 {
			lo = 0
		}
		hi := l
		if X < hi {
			hi = X
		}
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHypergeometricDegenerate(t *testing.T) {
	rng := xrand.New(2)
	if Hypergeometric(rng, 100, 0, 50) != 0 {
		t.Fatal("X=0 must give 0")
	}
	if Hypergeometric(rng, 100, 100, 37) != 37 {
		t.Fatal("X=N must give l")
	}
	if Hypergeometric(rng, 100, 40, 0) != 0 {
		t.Fatal("l=0 must give 0")
	}
	if Hypergeometric(rng, 100, 40, 100) != 40 {
		t.Fatal("l=N must give X")
	}
}

func TestHypergeometricPanics(t *testing.T) {
	rng := xrand.New(3)
	for _, tc := range []struct{ N, X, l int }{
		{-1, 0, 0}, {10, 11, 0}, {10, 5, 11}, {10, -1, 2}, {10, 2, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hypergeometric(%d,%d,%d) did not panic", tc.N, tc.X, tc.l)
				}
			}()
			Hypergeometric(rng, tc.N, tc.X, tc.l)
		}()
	}
}

func TestHypergeometricMean(t *testing.T) {
	rng := xrand.New(4)
	const N, X, l, trials = 10000, 3000, 500, 3000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(Hypergeometric(rng, N, X, l))
	}
	mean := sum / trials
	want := float64(l) * float64(X) / float64(N) // 150
	if math.Abs(mean-want) > 2 {
		t.Fatalf("mean %v, want ≈ %v", mean, want)
	}
}

// Lemma 2 regime 1: ℓ ≤ 0.001·N and ℓ|X|/N ≥ C·log m ⇒ count within 1% of
// expectation with overwhelming probability.
func TestLemma2Regime1(t *testing.T) {
	rng := xrand.New(5)
	// The 1% window is ≈ 3 standard deviations only once the expectation is
	// large (the regime's ℓ|X|/N ≥ C·log m precondition with large C):
	// N = 10^7, ℓ = 10^4 = 0.001·N, X = 0.9·N ⇒ expectation 9000, sd ≈ 30.
	st := CheckRegime1(rng, 10_000_000, 9_000_000, 10_000, 300)
	if float64(st.Violations)/float64(st.Trials) > 0.05 {
		t.Fatalf("regime 1 violated in %d/%d trials (mean %.1f, expected %.1f)",
			st.Violations, st.Trials, st.Mean, st.Expected)
	}
	if math.Abs(st.Mean-st.Expected) > 0.005*st.Expected {
		t.Fatalf("regime 1 mean %.1f far from expected %.1f", st.Mean, st.Expected)
	}
}

// Lemma 2 regime 2: ℓ ≤ N/2 ⇒ count ≤ C·log(m)·max(ℓ|X|/N, 1) w.h.p.
func TestLemma2Regime2(t *testing.T) {
	rng := xrand.New(6)
	// Tiny expectation: ℓ|X|/N = 0.5; the log-factor cap must hold anyway.
	st := CheckRegime2(rng, 100_000, 50, 1000, 2000, 4, 1<<20)
	if st.Violations != 0 {
		t.Fatalf("regime 2 violated %d times (mean %.2f)", st.Violations, st.Mean)
	}
	// Moderate expectation.
	st = CheckRegime2(rng, 100_000, 5000, 2000, 2000, 4, 1<<20)
	if st.Violations != 0 {
		t.Fatalf("regime 2 (moderate) violated %d times", st.Violations)
	}
}

// Lemma 2 regime 3: ℓ ≤ N/√n and ℓ|X|/N ≥ log⁶m ⇒ two-sided
// ±log(m)·√(expectation) window.
func TestLemma2Regime3(t *testing.T) {
	rng := xrand.New(7)
	// n = 400 ⇒ ℓ ≤ N/20; expectation 1000 with log m = 20 gives a window of
	// ±20·√1000 ≈ ±632.
	st := CheckRegime3(rng, 1_000_000, 20_000, 50_000, 500, 400, 1<<20)
	if st.Violations != 0 {
		t.Fatalf("regime 3 violated %d/%d times (mean %.1f expected %.1f)",
			st.Violations, st.Trials, st.Mean, st.Expected)
	}
}

func BenchmarkHypergeometric(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		Hypergeometric(rng, 100000, 30000, 1000)
	}
}
