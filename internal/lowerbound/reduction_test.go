package lowerbound

import (
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// fixtureReduction builds the canonical small Theorem 2 construction used
// across these tests: n = 400, t = 4 parties, 30 candidate sets.
func fixtureReduction(t *testing.T, intersecting bool, seed uint64) *Reduction {
	t.Helper()
	rng := xrand.New(seed)
	f := NewFamily(rng.Split(), 400, 30, 4)
	var d *Disjointness
	if intersecting {
		d = NewIntersecting(rng.Split(), 30, 4, 7)
	} else {
		d = NewDisjoint(rng.Split(), 30, 4, 7)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReduction(f, d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewReductionValidates(t *testing.T) {
	rng := xrand.New(1)
	f := NewFamily(rng.Split(), 100, 20, 4)
	if _, err := NewReduction(f, NewDisjoint(rng.Split(), 21, 4, 3)); err == nil {
		t.Error("universe mismatch accepted")
	}
	if _, err := NewReduction(f, NewDisjoint(rng.Split(), 20, 3, 3)); err == nil {
		t.Error("party-count mismatch accepted")
	}
}

func TestPartyEdgesUseDistinctIDs(t *testing.T) {
	r := fixtureReduction(t, false, 2)
	seen := make(map[setcover.SetID]int)
	for p := 0; p < r.F.T; p++ {
		for _, e := range r.PartyEdges(p) {
			seen[e.Set] = p
			if int(e.Set)/r.F.Count != p {
				t.Fatalf("edge set id %d not in party %d's id block", e.Set, p)
			}
		}
	}
	if len(seen) != r.F.T*7 {
		t.Fatalf("%d distinct partial sets, want t·|S_p| = %d", len(seen), r.F.T*7)
	}
}

func TestRunChunksShape(t *testing.T) {
	r := fixtureReduction(t, true, 3)
	chunks := r.RunChunks(0)
	if len(chunks) != r.F.T+1 {
		t.Fatalf("%d chunks, want t+1 = %d", len(chunks), r.F.T+1)
	}
	last := chunks[len(chunks)-1]
	if len(last) != r.F.N-r.F.SetSize() {
		t.Fatalf("complement chunk has %d edges, want %d", len(last), r.F.N-r.F.SetSize())
	}
	for _, e := range last {
		if e.Set != r.ComplementID() {
			t.Fatalf("complement edge with set id %d", e.Set)
		}
	}
}

func TestInstanceBuilds(t *testing.T) {
	r := fixtureReduction(t, true, 4)
	inst, err := r.Instance(0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumSets() != r.NumSets() {
		t.Fatalf("m=%d want %d", inst.NumSets(), r.NumSets())
	}
	if inst.UniverseSize() != r.F.N {
		t.Fatalf("n=%d", inst.UniverseSize())
	}
}

func TestIntersectingWitnessRunHasTinyCover(t *testing.T) {
	// In the intersecting case, the run for the witness set contains all t
	// parts of T_witness plus the complement: greedy needs at most t+1 sets.
	r := fixtureReduction(t, true, 5)
	j := r.D.Witness
	size, uncoverable, err := r.GreedyLower(j)
	if err != nil {
		t.Fatal(err)
	}
	if uncoverable != 0 {
		t.Fatalf("witness run has %d uncoverable elements", uncoverable)
	}
	if size > r.F.T+1 {
		t.Fatalf("witness run greedy size %d, want ≤ t+1 = %d", size, r.F.T+1)
	}
}

func TestDisjointRunsNeedManySets(t *testing.T) {
	// In the disjoint case every run must cover T_j via O(log n)-sized
	// overlaps: the effective cover is much larger than t+1.
	r := fixtureReduction(t, false, 6)
	for j := 0; j < 5; j++ {
		size, uncoverable, err := r.GreedyLower(j)
		if err != nil {
			t.Fatal(err)
		}
		if size+uncoverable <= r.F.T+1 {
			t.Fatalf("disjoint run %d coverable with %d sets (+%d uncoverable); gap collapsed", j, size, uncoverable)
		}
	}
}

func TestSimulateRunMeasuresCuts(t *testing.T) {
	r := fixtureReduction(t, true, 7)
	alg := stream.NewStoreAll(r.F.N, r.NumSets())
	res := SimulateRun(alg, r.RunChunks(r.D.Witness))
	if len(res.Messages) != r.F.T {
		t.Fatalf("%d messages, want t = %d", len(res.Messages), r.F.T)
	}
	for i := 1; i < len(res.Messages); i++ {
		if res.Messages[i] < res.Messages[i-1] {
			t.Fatalf("StoreAll messages should be nondecreasing: %v", res.Messages)
		}
	}
	if res.MaxMessage != res.Messages[len(res.Messages)-1] {
		t.Fatalf("MaxMessage %d inconsistent with %v", res.MaxMessage, res.Messages)
	}
	if res.EffectiveSize != res.Cover.Size()+res.Uncovered {
		t.Fatal("EffectiveSize inconsistent")
	}
}

func TestDecideSeparatesPromiseCases(t *testing.T) {
	// With the unbounded-space reference algorithm, the last party's rule
	// must answer both promise cases correctly at threshold t+1.
	threshold := 5 // t + 1
	for _, tc := range []struct {
		name         string
		intersecting bool
	}{{"intersecting", true}, {"disjoint", false}} {
		t.Run(tc.name, func(t *testing.T) {
			r := fixtureReduction(t, tc.intersecting, 8)
			dec := Decide(r, func(run int) CutAlgorithm {
				return stream.NewStoreAll(r.F.N, r.NumSets())
			}, threshold)
			if dec.Intersecting != tc.intersecting {
				t.Fatalf("Decide=%v best=%d (run %d)", dec.Intersecting, dec.BestSize, dec.BestRun)
			}
			if tc.intersecting && dec.BestRun != r.D.Witness {
				t.Errorf("best run %d, witness %d", dec.BestRun, r.D.Witness)
			}
			if dec.MaxMessage == 0 {
				t.Error("no message size recorded")
			}
		})
	}
}

func BenchmarkReductionRun(b *testing.B) {
	rng := xrand.New(1)
	f := NewFamily(rng.Split(), 400, 30, 4)
	d := NewIntersecting(rng.Split(), 30, 4, 7)
	r, err := NewReduction(f, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := stream.NewStoreAll(r.F.N, r.NumSets())
		SimulateRun(alg, r.RunChunks(i%r.F.Count))
	}
}
