package lowerbound

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

func TestFamilyShape(t *testing.T) {
	f := NewFamily(xrand.New(1), 400, 50, 4)
	if f.PartSize != 10 {
		t.Fatalf("PartSize=%d want √(400/4)=10", f.PartSize)
	}
	if f.SetSize() != 40 {
		t.Fatalf("SetSize=%d want √(400·4)=40", f.SetSize())
	}
	for i := 0; i < f.Count; i++ {
		if got := len(f.Set(i)); got != 40 {
			t.Fatalf("set %d size %d", i, got)
		}
		for r := 0; r < f.T; r++ {
			if got := len(f.Part(i, r)); got != 10 {
				t.Fatalf("part (%d,%d) size %d", i, r, got)
			}
		}
	}
}

func TestFamilyPartsPartitionSet(t *testing.T) {
	f := NewFamily(xrand.New(2), 100, 20, 4)
	for i := 0; i < f.Count; i++ {
		seen := make(map[setcover.Element]bool)
		for r := 0; r < f.T; r++ {
			for _, u := range f.Part(i, r) {
				if u < 0 || int(u) >= f.N {
					t.Fatalf("element %d out of range", u)
				}
				if seen[u] {
					t.Fatalf("set %d: element %d appears in two parts", i, u)
				}
				seen[u] = true
			}
		}
		if len(seen) != f.SetSize() {
			t.Fatalf("set %d: %d distinct elements, want %d", i, len(seen), f.SetSize())
		}
	}
}

func TestFamilyComplement(t *testing.T) {
	f := NewFamily(xrand.New(3), 100, 10, 4)
	for i := 0; i < f.Count; i++ {
		comp := f.Complement(i)
		if len(comp) != f.N-f.SetSize() {
			t.Fatalf("complement %d size %d", i, len(comp))
		}
		inSet := make(map[setcover.Element]bool)
		for _, u := range f.Set(i) {
			inSet[u] = true
		}
		for _, u := range comp {
			if inSet[u] {
				t.Fatalf("complement %d contains set element %d", i, u)
			}
		}
	}
}

func TestFamilyIntersectionsSmall(t *testing.T) {
	// Lemma 1: |T_i^r ∩ T_j| = O(log n). Expected value is exactly 1 by the
	// paper's calculation; allow a C·log n allowance.
	n := 900
	f := NewFamily(xrand.New(4), n, 60, 4)
	maxInter := f.MaxPartIntersection(xrand.New(5), 0)
	bound := int(3*math.Log2(float64(n))) + 1
	if maxInter > bound {
		t.Fatalf("max part-set intersection %d exceeds O(log n) allowance %d", maxInter, bound)
	}
	if maxInter == 0 {
		t.Fatal("no intersections at all; family degenerate")
	}
}

func TestFamilySampledIntersectionCheck(t *testing.T) {
	f := NewFamily(xrand.New(6), 400, 80, 4)
	full := f.MaxPartIntersection(xrand.New(7), 0)
	sampled := f.MaxPartIntersection(xrand.New(7), 500)
	if sampled > full {
		t.Fatalf("sampled max %d exceeds full max %d", sampled, full)
	}
}

func TestNewFamilyPanics(t *testing.T) {
	cases := []struct{ n, count, t int }{
		{0, 5, 2}, {10, 0, 2}, {10, 5, 0},
		{4, 5, 16}, // partSize·t = 0.5·16 rounds to 8, 8 > 4... ensure panic
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFamily(%d,%d,%d) did not panic", tc.n, tc.count, tc.t)
				}
			}()
			NewFamily(xrand.New(1), tc.n, tc.count, tc.t)
		}()
	}
}

func TestDisjointInstance(t *testing.T) {
	d := NewDisjoint(xrand.New(8), 100, 5, 10)
	if d.Intersecting || d.Witness != -1 {
		t.Fatal("disjoint instance mislabelled")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	for i, p := range d.Parties {
		if len(p) != 10 {
			t.Fatalf("party %d size %d", i, len(p))
		}
	}
}

func TestIntersectingInstance(t *testing.T) {
	d := NewIntersecting(xrand.New(9), 100, 5, 10)
	if !d.Intersecting {
		t.Fatal("mislabelled")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// Witness present in every party.
	for i, p := range d.Parties {
		found := false
		for _, v := range p {
			if v == d.Witness {
				found = true
			}
		}
		if !found {
			t.Fatalf("party %d missing witness", i)
		}
		if len(p) != 10 {
			t.Fatalf("party %d size %d", i, len(p))
		}
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	d := NewDisjoint(xrand.New(10), 50, 3, 5)
	// Corrupt: copy an element of party 0 into party 1.
	d.Parties[1][0] = d.Parties[0][0]
	sortInts(d.Parties[1])
	if err := d.Check(); err == nil {
		t.Fatal("corrupted disjoint instance passed Check")
	}

	di := NewIntersecting(xrand.New(11), 50, 3, 5)
	di.Witness = -42
	if err := di.Check(); err == nil {
		t.Fatal("wrong witness passed Check")
	}
}

func TestDisjointnessPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDisjoint(xrand.New(1), 10, 3, 5) },     // 15 > 10
		func() { NewDisjoint(xrand.New(1), 10, 0, 5) },     //
		func() { NewIntersecting(xrand.New(1), 10, 4, 4) }, // 4·3+1 = 13 > 10
		func() { NewIntersecting(xrand.New(1), 10, 0, 1) }, //
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
