package lowerbound

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func TestSimpleProtocolCoverValid(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
		for _, tParties := range []int{1, 2, 4, 8} {
			res, err := SimpleProtocol(w.Inst.UniverseSize(), SplitEdges(edges, tParties))
			if err != nil {
				t.Fatalf("%s t=%d: %v", w.Name, tParties, err)
			}
			if err := res.Cover.Verify(w.Inst); err != nil {
				t.Errorf("%s t=%d: %v", w.Name, tParties, err)
			}
		}
	}
}

func TestSimpleProtocolApproximation(t *testing.T) {
	// The paper's claim: approximation ≤ 2√(nt) (times OPT).
	w := workload.Planted(xrand.New(2), 400, 4000, 10, 0)
	opt := w.PlantedOPT
	for _, tParties := range []int{2, 4, 16} {
		edges := stream.Arrange(w.Inst, stream.RoundRobin, xrand.New(uint64(tParties)))
		res, err := SimpleProtocol(400, SplitEdges(edges, tParties))
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * math.Sqrt(float64(400*tParties)) * float64(opt)
		// +t·τ slack for ceil effects on tiny thresholds.
		if float64(res.Cover.Size()) > bound+float64(tParties*res.Threshold) {
			t.Errorf("t=%d: cover %d exceeds 2√(nt)·OPT = %.0f", tParties, res.Cover.Size(), bound)
		}
	}
}

func TestSimpleProtocolMessageIndependentOfM(t *testing.T) {
	// Õ(n) messages: growing m must not grow the message size.
	n := 300
	var msgs []int64
	for _, m := range []int{500, 5000} {
		w := workload.Planted(xrand.New(3), n, m, 10, 0)
		edges := stream.Arrange(w.Inst, stream.Random, xrand.New(9))
		res, err := SimpleProtocol(n, SplitEdges(edges, 4))
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, res.MaxMessageWords)
		if res.MaxMessageWords > 3*int64(n) {
			t.Errorf("m=%d: message %d exceeds O(n)", m, res.MaxMessageWords)
		}
	}
	if msgs[1] > msgs[0]+int64(n) {
		t.Errorf("message grew with m: %v", msgs)
	}
}

func TestSimpleProtocolThreshold(t *testing.T) {
	// τ = ⌈√(n/t)⌉.
	w := workload.Planted(xrand.New(4), 100, 400, 5, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(4))
	res, err := SimpleProtocol(100, SplitEdges(edges, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold != 5 {
		t.Fatalf("threshold %d want √(100/4) = 5", res.Threshold)
	}
	if res.ThresholdAdded > 100/5 {
		t.Fatalf("threshold additions %d exceed n/τ = 20", res.ThresholdAdded)
	}
}

func TestSimpleProtocolSinglePartyEqualsThresholdAlg(t *testing.T) {
	// With t = 1 and a set-contiguous stream, the protocol is exactly the
	// set-arrival threshold algorithm (τ = √n): the cover sizes coincide in
	// spirit — both cover everything validly.
	inst := setcover.MustNewInstance(9, [][]setcover.Element{
		{0, 1, 2}, {3, 4, 5}, {6, 7}, {8},
	})
	edges := stream.EdgesOf(inst)
	res, err := SimpleProtocol(9, SplitEdges(edges, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
	// τ = 3: the two 3-element sets are threshold-added; {6,7} and {8} are
	// patched.
	if res.ThresholdAdded != 2 || res.Patched != 3 {
		t.Fatalf("added=%d patched=%d, want 2/3", res.ThresholdAdded, res.Patched)
	}
}

func TestSimpleProtocolErrors(t *testing.T) {
	if _, err := SimpleProtocol(0, [][]stream.Edge{{}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SimpleProtocol(5, nil); err == nil {
		t.Error("zero parties accepted")
	}
	if _, err := SimpleProtocol(5, [][]stream.Edge{{{Set: 0, Elem: 9}}}); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestSplitEdges(t *testing.T) {
	edges := make([]stream.Edge, 10)
	parts := SplitEdges(edges, 3)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 || len(parts) != 3 {
		t.Fatalf("parts %v", parts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SplitEdges(0) did not panic")
		}
	}()
	SplitEdges(edges, 0)
}

func BenchmarkSimpleProtocol(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 10000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	parties := SplitEdges(edges, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimpleProtocol(1000, parties); err != nil {
			b.Fatal(err)
		}
	}
}
