package lowerbound

import (
	"fmt"
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
)

// This file implements the deterministic t-party protocol the paper invokes
// (§3, "In the full version ... a t-party protocol with approximation
// factor α = 2√(nt) and maximum message length Õ(n)"). Its existence is why
// the Theorem 2 lower bound must use t = Ω(α²/n) parties: with fewer
// parties, cheap messages already achieve the target approximation.
//
// Protocol. Fix the threshold τ = √(n/t). Each party p receives the
// running state (covered set C, per-element backup sets R, partial solution
// Sol), groups its own edges by set, and for each of its local sets S (in
// id order) adds S to Sol — covering S's local elements — iff S has at
// least τ elements outside C. The last party patches every still-uncovered
// element with its recorded backup set.
//
// Approximation: every threshold addition covers ≥ τ new elements, so at
// most n/τ = √(nt) sets are added that way; a set of an optimal cover that
// was never added contributed < τ new elements at each of its ≤ t partial
// appearances, so at most OPT·t·τ = OPT·√(nt) elements are patched. Total:
// ≤ √(nt) + OPT·√(nt) ≤ 2√(nt)·OPT.
//
// Message: the covered bitmap (n bits, counted as n words here for
// consistency with the rest of the library's accounting), R (≤ n words) and
// Sol (≤ n ids) — Õ(n) regardless of m.

// ProtocolResult is the outcome of running the deterministic protocol.
type ProtocolResult struct {
	Cover *setcover.Cover
	// ThresholdAdded counts sets added by the τ-rule; Patched counts
	// elements covered by the final backup patching.
	ThresholdAdded, Patched int
	// MaxMessageWords is the largest state forwarded between parties, in
	// words (covered bitmap + backups + solution ids).
	MaxMessageWords int64
	// Threshold is τ = ⌈√(n/t)⌉.
	Threshold int
}

// SimpleProtocol runs the deterministic t-party protocol on an instance
// split into per-party edge lists over universe [0, n). It returns an error
// if an edge is out of range. The cover covers every element that appears
// in some party's input; elements appearing nowhere keep NoSet
// certificates (infeasible input).
func SimpleProtocol(n int, parties [][]stream.Edge) (ProtocolResult, error) {
	t := len(parties)
	if n <= 0 || t == 0 {
		return ProtocolResult{}, fmt.Errorf("lowerbound: SimpleProtocol needs n > 0 and ≥ 1 party")
	}
	tau := int(math.Ceil(math.Sqrt(float64(n) / float64(t))))
	if tau < 1 {
		tau = 1
	}

	covered := make([]bool, n)
	backup := make([]setcover.SetID, n)
	cert := make([]setcover.SetID, n)
	for u := range backup {
		backup[u] = setcover.NoSet
		cert[u] = setcover.NoSet
	}
	solSet := make(map[setcover.SetID]struct{})
	var sol []setcover.SetID
	res := ProtocolResult{Threshold: tau}

	for _, edges := range parties {
		// Group this party's edges by set, preserving first-seen order of
		// elements; iterate sets in ascending id for determinism.
		local := make(map[setcover.SetID][]setcover.Element)
		var ids []setcover.SetID
		for _, e := range edges {
			if e.Elem < 0 || int(e.Elem) >= n || e.Set < 0 {
				return ProtocolResult{}, fmt.Errorf("lowerbound: SimpleProtocol edge %v out of range", e)
			}
			if _, seen := local[e.Set]; !seen {
				ids = append(ids, e.Set)
			}
			local[e.Set] = append(local[e.Set], e.Elem)
			if backup[e.Elem] == setcover.NoSet {
				backup[e.Elem] = e.Set
			}
		}
		sortSetIDs(ids)
		for _, s := range ids {
			elems := local[s]
			if _, in := solSet[s]; in {
				// Already chosen by an earlier party: its local elements are
				// covered for free.
				for _, u := range elems {
					if !covered[u] {
						covered[u] = true
						cert[u] = s
					}
				}
				continue
			}
			gain := 0
			for _, u := range elems {
				if !covered[u] {
					gain++
				}
			}
			if gain < tau {
				continue
			}
			solSet[s] = struct{}{}
			sol = append(sol, s)
			res.ThresholdAdded++
			for _, u := range elems {
				if !covered[u] {
					covered[u] = true
					cert[u] = s
				}
			}
		}
		// The message to the next party: covered bitmap + backups + solution.
		msg := int64(n) + int64(n) + int64(len(sol))
		if msg > res.MaxMessageWords {
			res.MaxMessageWords = msg
		}
	}

	// Last party patches from backups.
	for u := 0; u < n; u++ {
		if !covered[u] && backup[u] != setcover.NoSet {
			cert[u] = backup[u]
			sol = append(sol, backup[u])
			res.Patched++
		}
	}
	res.Cover = setcover.NewCover(sol, cert)
	return res, nil
}

func sortSetIDs(s []setcover.SetID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SplitEdges partitions a stream into t consecutive chunks of (nearly)
// equal size — the canonical way experiments hand an instance to the
// protocol's parties.
func SplitEdges(edges []stream.Edge, t int) [][]stream.Edge {
	if t <= 0 {
		panic("lowerbound: SplitEdges needs t > 0")
	}
	out := make([][]stream.Edge, t)
	for i := 0; i < t; i++ {
		lo := i * len(edges) / t
		hi := (i + 1) * len(edges) / t
		out[i] = edges[lo:hi]
	}
	return out
}
