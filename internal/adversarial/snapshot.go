package adversarial

import (
	"errors"
	"fmt"
	"io"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
)

// snapVersion is the SCSTATE1 layout version of this package's snapshots.
const snapVersion = 1

// Snapshot implements stream.Snapshotter: the complete mid-stream state of
// Algorithm 2 — generator, level dictionary, partial covers, coverage
// bookkeeping and space meters. Valid only before Finish.
func (a *Algorithm) Snapshot(wr io.Writer) error {
	if a.finished {
		return errors.New("adversarial: Snapshot after Finish")
	}
	w := snap.NewWriter(wr, "alg2", snapVersion)
	w.Int(a.n)
	w.Int(a.m)
	w.F64(a.alpha)
	w.I64(a.pos)
	a.rng.Save(w)
	w.I32s(a.levels)
	w.Int(a.promotedCount)
	a.sol.Save(w)
	w.Int(a.solCount)
	w.Ints(a.dCounts)
	w.Bools(a.covered)
	w.Int(a.coveredCount)
	snap.SaveSetIDs(w, a.first)
	snap.SaveSetIDs(w, a.cert)
	w.I64(a.promotions)
	w.Int(a.patched)
	snap.SaveTracked(w, &a.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance with the same (n, m, alpha); a failed restore leaves
// it in an unspecified state that must be discarded.
func (a *Algorithm) Restore(rd io.Reader) error {
	if a.finished {
		return errors.New("adversarial: Restore after Finish")
	}
	r, err := snap.NewReader(rd, "alg2")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: alg2 snapshot v%d", snap.ErrVersion, v)
	}
	n, m := r.Int(), r.Int()
	alpha := r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != a.n || m != a.m || alpha != a.alpha {
		return fmt.Errorf("%w: snapshot shape n=%d m=%d alpha=%g, receiver has n=%d m=%d alpha=%g",
			snap.ErrMismatch, n, m, alpha, a.n, a.m, a.alpha)
	}
	a.pos = r.I64()
	a.rng.Load(r)
	r.I32sInto(a.levels)
	a.promotedCount = r.Int()
	a.sol.Load(r)
	a.solCount = r.Int()
	a.dCounts = r.Ints()
	r.BoolsInto(a.covered)
	a.coveredCount = r.Int()
	snap.LoadSetIDsInto(r, a.first, a.m)
	snap.LoadSetIDsInto(r, a.cert, a.m)
	a.promotions = r.I64()
	a.patched = r.Int()
	snap.LoadTracked(r, &a.Tracked)
	// firstFree is derived state (the batch kernels' fast-path counter), not
	// part of the SCSTATE1 layout: recompute it from the restored records.
	a.firstFree = 0
	for _, s := range a.first {
		if s == setcover.NoSet {
			a.firstFree++
		}
	}
	if err := r.Close(); err != nil {
		return err
	}
	// Cross-field invariants (checked after the checksum, so they catch
	// semantic corruption a CRC-valid but hand-crafted container could
	// smuggle in): every solution set is counted in exactly one level
	// bucket, and a level bucket can only exist if enough promotions
	// happened to reach it.
	total := 0
	for _, c := range a.dCounts {
		if c < 0 {
			return fmt.Errorf("%w: negative level count", snap.ErrCorrupt)
		}
		total += c
	}
	if a.solCount < 0 || a.solCount > a.m || total != a.solCount {
		return fmt.Errorf("%w: level counts sum to %d, solution claims %d of %d sets",
			snap.ErrCorrupt, total, a.solCount, a.m)
	}
	if len(a.dCounts) > 1 && int64(len(a.dCounts)-1) > a.promotions {
		return fmt.Errorf("%w: %d level buckets but only %d promotions",
			snap.ErrCorrupt, len(a.dCounts), a.promotions)
	}
	return nil
}
