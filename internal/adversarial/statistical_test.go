package adversarial

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Statistical validation of Algorithm 2's promotion coin (listing line 17):
// each uncovered-element edge promotes its set with probability exactly
// 1/α, so over E uncovered edges the expected promotion count is E/α.
func TestPromotionRateIsOneOverAlpha(t *testing.T) {
	const (
		n      = 1000
		m      = 1000
		alpha  = 50.0
		trials = 300
	)
	// One edge per element, all distinct sets: no element is covered before
	// its (only) edge, and the up-front D_0 covers a negligible fraction,
	// so essentially every edge flips the 1/α coin.
	var edges []stream.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, stream.Edge{Set: setcover.SetID(u), Elem: setcover.Element(u)})
	}
	var total float64
	for seed := uint64(0); seed < trials; seed++ {
		alg := New(n, m, alpha, xrand.New(seed))
		for _, e := range edges {
			alg.Process(e)
		}
		total += float64(alg.Promotions())
	}
	mean := total / trials
	// Elements covered by D_0's sol-hits skip the coin; |D_0| ≈ α so the
	// shortfall is ≈ α edges. Expected ≈ (n − α)/α = 19.
	want := (float64(n) - alpha) / alpha
	sd := math.Sqrt(want / trials) // Poisson-ish
	if math.Abs(mean-want) > 6*sd+1 {
		t.Fatalf("mean promotions %.2f, want ≈ %.2f", mean, want)
	}
}

// The level-ℓ inclusion schedule p_ℓ = (α²/n)^ℓ·α/m must make multi-level
// promotions increasingly decisive: verify that with α² = 4n a freshly
// promoted level-2 set is included 4× more often than a level-1 set, by
// measuring the empirical ratio of D_1 and D_2 inclusions per promotion.
func TestInclusionScheduleGeometric(t *testing.T) {
	const (
		n      = 100
		m      = 4000
		alpha  = 20.0 // α²/n = 4
		trials = 60
	)
	// Hammer one set with many uncovered elements so it climbs levels.
	var edges []stream.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, stream.Edge{Set: 0, Elem: setcover.Element(u)})
	}
	var d1, d2, promTo1, promTo2 float64
	for seed := uint64(0); seed < trials; seed++ {
		alg := New(n, m, alpha, xrand.New(seed))
		for _, e := range edges {
			prevLvl := alg.levels[0]
			prevIn := alg.solCount
			alg.Process(e)
			if alg.levels[0] > prevLvl {
				switch alg.levels[0] {
				case 1:
					promTo1++
					if alg.solCount > prevIn {
						d1++
					}
				case 2:
					promTo2++
					if alg.solCount > prevIn {
						d2++
					}
				}
			}
		}
	}
	if promTo1 < 30 || promTo2 < 20 {
		t.Skipf("not enough promotions observed (%v, %v)", promTo1, promTo2)
	}
	r1 := d1 / promTo1 // ≈ p_1 = 4·α/m = 0.02
	r2 := d2 / promTo2 // ≈ p_2 = 16·α/m = 0.08
	if r1 > 0.1 {
		t.Fatalf("level-1 inclusion rate %.3f far above p_1 = 0.02", r1)
	}
	if r2 > 0.3 {
		t.Fatalf("level-2 inclusion rate %.3f far above p_2 = 0.08", r2)
	}
}
