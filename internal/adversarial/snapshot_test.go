package adversarial

import (
	"bytes"
	"errors"
	"testing"

	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// TestSnapshotResumeEquivalence: snapshot mid-stream, restore into a fresh
// differently-seeded instance, finish, and the output must match the
// uninterrupted run exactly. Restore must also overwrite the fresh
// instance's D0 pre-sampling (drawn in New) with the snapshot's.
func TestSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(21), 150, 900, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(6))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()
	const alpha = 30

	ref := New(n, m, alpha, xrand.New(42))
	refRes := stream.RunEdges(ref, edges)

	for _, cut := range []int{0, len(edges) / 4, len(edges) / 2, len(edges)} {
		a := New(n, m, alpha, xrand.New(42))
		a.ProcessBatch(edges[:cut])
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatalf("cut=%d: Snapshot: %v", cut, err)
		}
		b := New(n, m, alpha, xrand.New(777))
		if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("cut=%d: Restore: %v", cut, err)
		}
		b.ProcessBatch(edges[cut:])
		got := b.Finish()
		if !refRes.Cover.Equal(got) {
			t.Fatalf("cut=%d: resumed cover differs from uninterrupted run", cut)
		}
		if gs := b.Space(); gs != refRes.Space {
			t.Fatalf("cut=%d: space %+v, want %+v", cut, gs, refRes.Space)
		}
	}
}

func TestRestoreRejectsShapeAndAlphaMismatch(t *testing.T) {
	a := New(40, 80, 10, xrand.New(1))
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range []*Algorithm{
		New(41, 80, 10, xrand.New(2)),
		New(40, 81, 10, xrand.New(2)),
		New(40, 80, 11, xrand.New(2)),
	} {
		if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, snap.ErrMismatch) {
			t.Fatalf("want ErrMismatch, got %v", err)
		}
	}
}

var _ stream.Snapshotter = (*Algorithm)(nil)
