// Package adversarial implements Algorithm 2 of the paper (Theorem 4): a
// randomized one-pass streaming algorithm for edge-arrival Set Cover in
// adversarially ordered streams with expected approximation factor
// O(α·log m) and space Õ(m·n/α²), for any α ≥ 2√n.
//
// The algorithm improves on the KK-algorithm's Θ(m) space by replacing the
// per-set uncovered-degree counters with per-set *levels*, stored only for
// sets whose level is at least 1. Whenever an edge (S, u) with u uncovered
// arrives, S's level increases by one with probability 1/α; on promotion to
// level ℓ the set joins the partial cover D_ℓ with probability
// p_ℓ = α^{2ℓ+1}/(m·n^ℓ) = (α²/n)^ℓ · p_0, where p_0 = α/m (D_0 is sampled
// up front). For α = Ω̃(√n) only Õ(m·n/α²) sets are ever promoted, so the
// level map — the dominant space term — stays within the bound (paper §1.2,
// §5).
package adversarial

import (
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Algorithm is one run of Algorithm 2. Create with New, feed edges with
// Process, call Finish once at the end of the stream.
type Algorithm struct {
	space.Tracked

	n, m  int
	alpha float64
	rng   *xrand.Rand

	levels       map[setcover.SetID]int32    // L: level of every promoted set (≥ 1)
	sol          map[setcover.SetID]struct{} // ∪_ℓ D_ℓ
	dCounts      []int                       // |D_ℓ| per level, for reporting
	covered      []bool                      // U: covered elements
	coveredCount int                         // running |U|
	first        []setcover.SetID            // R(u)
	cert         []setcover.SetID            // C(u)

	promotions int64 // total level increments, for the E-ABL-A2 ablation
	patched    int
}

// New returns an Algorithm 2 run for n elements, m sets and approximation
// target alpha. The paper requires α ≥ 2√n; smaller values are accepted
// (the algorithm still emits a valid cover) but the space bound claimed in
// Theorem 4 no longer applies.
func New(n, m int, alpha float64, rng *xrand.Rand) *Algorithm {
	if n <= 0 || m <= 0 {
		panic("adversarial: need n > 0 and m > 0")
	}
	if alpha < 1 {
		panic("adversarial: need alpha >= 1")
	}
	a := &Algorithm{
		n:       n,
		m:       m,
		alpha:   alpha,
		rng:     rng,
		levels:  make(map[setcover.SetID]int32),
		sol:     make(map[setcover.SetID]struct{}),
		covered: make([]bool, n),
		first:   make([]setcover.SetID, n),
		cert:    make([]setcover.SetID, n),
	}
	for u := range a.first {
		a.first[u] = setcover.NoSet
		a.cert[u] = setcover.NoSet
	}
	a.AuxMeter.Add(3 * int64(n))

	// Line 6: D_0 ⊆ S with inclusion probability p_0 = α/m. Sampling the
	// count and then ids avoids iterating all m sets; the working state never
	// holds more than the chosen sets.
	p0 := alpha / float64(m)
	k := rng.Binomial(m, math.Min(1, p0))
	for _, s := range rng.SampleK(m, k) {
		a.addToSol(setcover.SetID(s), 0)
	}
	return a
}

func (a *Algorithm) addToSol(s setcover.SetID, level int) {
	if _, in := a.sol[s]; in {
		return
	}
	a.sol[s] = struct{}{}
	a.StateMeter.Add(space.SetEntryWords)
	for len(a.dCounts) <= level {
		a.dCounts = append(a.dCounts, 0)
	}
	a.dCounts[level]++
}

// inclusionProb returns p_ℓ = (α²/n)^ℓ · α/m.
func (a *Algorithm) inclusionProb(level int32) float64 {
	return math.Pow(a.alpha*a.alpha/float64(a.n), float64(level)) * a.alpha / float64(a.m)
}

// Process implements stream.Algorithm, mirroring lines 8–24 of the listing.
func (a *Algorithm) Process(e stream.Edge) {
	s, u := e.Set, e.Elem
	if a.first[u] == setcover.NoSet {
		a.first[u] = s
	}
	if a.covered[u] {
		return
	}
	if a.rng.Coin(1 / a.alpha) {
		lvl := a.levels[s] + 1 // absent key reads as level 0
		if lvl == 1 {
			a.StateMeter.Add(space.MapEntryWords)
		}
		a.levels[s] = lvl
		a.promotions++
		if a.rng.Coin(a.inclusionProb(lvl)) {
			a.addToSol(s, int(lvl))
		}
	}
	if _, in := a.sol[s]; in {
		a.covered[u] = true
		a.coveredCount++
		a.cert[u] = s
	}
}

// Finish implements stream.Algorithm: line 25's patching covers every
// still-uncovered element with its stored first set.
func (a *Algorithm) Finish() *setcover.Cover {
	chosen := make([]setcover.SetID, 0, len(a.sol)+16)
	for s := range a.sol {
		chosen = append(chosen, s)
	}
	for u := range a.cert {
		if !a.covered[u] && a.first[u] != setcover.NoSet {
			a.cert[u] = a.first[u]
			chosen = append(chosen, a.first[u])
			a.patched++
		}
	}
	return setcover.NewCover(chosen, a.cert)
}

// PromotedSets returns |L|: the number of sets that reached level ≥ 1. Its
// expectation is the Õ(m·n/α²) term Theorem 4's space bound rests on, and
// the E-ABL-A2 ablation sweeps α to verify the scaling.
func (a *Algorithm) PromotedSets() int { return len(a.levels) }

// Promotions returns the total number of level increments.
func (a *Algorithm) Promotions() int64 { return a.promotions }

// LevelSizes returns |D_ℓ| for each level ℓ (index 0 = the up-front sample).
func (a *Algorithm) LevelSizes() []int { return append([]int(nil), a.dCounts...) }

// SampledSets returns |∪D_ℓ| (excluding patching).
func (a *Algorithm) SampledSets() int { return len(a.sol) }

// Patched returns how many elements the patching phase covered.
func (a *Algorithm) Patched() int { return a.patched }

// CoveredCount implements stream.CoverageReporter: |U|, the number of
// elements currently holding a covering witness.
func (a *Algorithm) CoveredCount() int { return a.coveredCount }

var _ stream.Algorithm = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
