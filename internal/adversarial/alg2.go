// Package adversarial implements Algorithm 2 of the paper (Theorem 4): a
// randomized one-pass streaming algorithm for edge-arrival Set Cover in
// adversarially ordered streams with expected approximation factor
// O(α·log m) and space Õ(m·n/α²), for any α ≥ 2√n.
//
// The algorithm improves on the KK-algorithm's Θ(m) space by replacing the
// per-set uncovered-degree counters with per-set *levels*, stored only for
// sets whose level is at least 1. Whenever an edge (S, u) with u uncovered
// arrives, S's level increases by one with probability 1/α; on promotion to
// level ℓ the set joins the partial cover D_ℓ with probability
// p_ℓ = α^{2ℓ+1}/(m·n^ℓ) = (α²/n)^ℓ · p_0, where p_0 = α/m (D_0 is sampled
// up front). For α = Ω̃(√n) only Õ(m·n/α²) sets are ever promoted, so the
// level map — the dominant space term — stays within the bound (paper §1.2,
// §5).
//
// Hot-path representation: the level dictionary and the solution set are
// backed by dense arrays indexed by set id (recycled through a pool and
// released on Finish), so the per-edge work is array loads plus the 1/α
// coin. The space meter still charges the paper's *logical* accounting —
// two words per promoted set, one per chosen set — not the physical Θ(m)
// backing, which is exactly the distinction the package documents above:
// Theorem 4's bound is about live dictionary entries.
package adversarial

import (
	"math"
	"math/bits"
	"sync"

	"streamcover/internal/dense"
	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Algorithm is one run of Algorithm 2. Create with New, feed edges with
// Process, call Finish once at the end of the stream.
type Algorithm struct {
	space.Tracked

	n, m  int
	alpha float64
	rng   *xrand.Rand

	sink *obs.Sink // decision-event sink; nil (inert) unless a hub is installed
	pos  int64     // edges processed, stamped on emitted events

	sc *a2Scratch

	levels        []int32    // L: level of every set (0 = never promoted)
	promotedCount int        // |L|: sets at level ≥ 1
	sol           dense.Bits // ∪_ℓ D_ℓ membership
	solCount      int
	dCounts       []int            // |D_ℓ| per level, for reporting
	covered       []bool           // U: covered elements
	coveredCount  int              // running |U|
	first         []setcover.SetID // R(u)
	firstFree     int              // elements with no first-set record yet
	cert          []setcover.SetID // C(u)

	promotions int64 // total level increments, for the E-ABL-A2 ablation
	patched    int
	finished   bool
}

// a2Scratch bundles the recyclable per-run arrays (everything but the
// certificate, which escapes into the Cover) plus the batch-kernel staging
// blocks (fixed capacity, fully overwritten each pass — no clearing on
// reuse).
type a2Scratch struct {
	n, m    int
	levels  []int32
	sol     dense.Bits
	covered []bool
	first   []setcover.SetID

	stageElems []int32
	maskC      []uint64 // covered-element gather
	maskF      []uint64 // first-set-needed gather
}

var a2Pool sync.Pool

func getA2Scratch(n, m int) *a2Scratch {
	if v := a2Pool.Get(); v != nil {
		sc := v.(*a2Scratch)
		if sc.n == n && sc.m == m {
			clear(sc.levels)
			sc.sol.Reset()
			clear(sc.covered)
			return sc
		}
	}
	return &a2Scratch{
		n:          n,
		m:          m,
		levels:     make([]int32, m),
		sol:        dense.NewBits(m),
		covered:    make([]bool, n),
		first:      make([]setcover.SetID, n),
		stageElems: make([]int32, dense.KernelBlockEdges),
		maskC:      make([]uint64, dense.MaskWords(dense.KernelBlockEdges)),
		maskF:      make([]uint64, dense.MaskWords(dense.KernelBlockEdges)),
	}
}

// New returns an Algorithm 2 run for n elements, m sets and approximation
// target alpha. The paper requires α ≥ 2√n; smaller values are accepted
// (the algorithm still emits a valid cover) but the space bound claimed in
// Theorem 4 no longer applies.
func New(n, m int, alpha float64, rng *xrand.Rand) *Algorithm {
	if n <= 0 || m <= 0 {
		panic("adversarial: need n > 0 and m > 0")
	}
	if alpha < 1 {
		panic("adversarial: need alpha >= 1")
	}
	sc := getA2Scratch(n, m)
	a := &Algorithm{
		n:       n,
		m:       m,
		alpha:   alpha,
		rng:     rng,
		sc:      sc,
		levels:  sc.levels,
		sol:     sc.sol,
		covered: sc.covered,
		first:   sc.first,
		cert:    make([]setcover.SetID, n),
		sink:    obs.SinkFor(obs.AlgoAlg2),
	}
	for u := range a.first {
		a.first[u] = setcover.NoSet
		a.cert[u] = setcover.NoSet
	}
	a.firstFree = n
	a.AuxMeter.Add(3 * int64(n))

	// Line 6: D_0 ⊆ S with inclusion probability p_0 = α/m. Sampling the
	// count and then ids avoids iterating all m sets; the working state never
	// holds more than the chosen sets.
	p0 := alpha / float64(m)
	k := rng.Binomial(m, math.Min(1, p0))
	for _, s := range rng.SampleK(m, k) {
		a.addToSol(setcover.SetID(s), 0)
	}
	return a
}

func (a *Algorithm) addToSol(s setcover.SetID, level int) {
	if a.sol.Test(s) {
		return
	}
	a.sol.Set(s)
	a.solCount++
	a.StateMeter.Add(space.SetEntryWords)
	for len(a.dCounts) <= level {
		a.dCounts = append(a.dCounts, 0)
	}
	a.dCounts[level]++
	a.sink.Emit(obs.KindSetSelected, a.pos, int64(s), int64(a.solCount), int64(level))
}

// inclusionProb returns p_ℓ = (α²/n)^ℓ · α/m.
func (a *Algorithm) inclusionProb(level int32) float64 {
	return math.Pow(a.alpha*a.alpha/float64(a.n), float64(level)) * a.alpha / float64(a.m)
}

// Process implements stream.Algorithm, mirroring lines 8–24 of the listing.
func (a *Algorithm) Process(e stream.Edge) { a.process(e) }

// ProcessBatch implements stream.BatchProcessor via the word-parallel batch
// kernels (internal/dense). An edge is a guaranteed no-op exactly when its
// element is covered and already has a first-set record — crucially, the
// covered check precedes the 1/α promotion coin in process, so skipping such
// edges draws no coins. Coverage and first records only grow, so stage-time
// masks over-approximate activity; the body re-checks exactly, keeping the
// batched path byte-identical to per-edge Process (same coin flips, same
// event stream). A saturated block is skipped with one compare.
func (a *Algorithm) ProcessBatch(edges []stream.Edge) {
	for len(edges) > 0 {
		k := len(edges)
		if k > dense.KernelBlockEdges {
			k = dense.KernelBlockEdges
		}
		a.processBlock(edges[:k])
		edges = edges[k:]
	}
}

func (a *Algorithm) processBlock(edges []stream.Edge) {
	k := len(edges)
	if a.coveredCount == a.n && a.firstFree == 0 {
		a.pos += int64(k)
		return
	}
	sc := a.sc
	elems := sc.stageElems[:k]
	for i, e := range edges {
		elems[i] = e.Elem
	}
	words := dense.MaskWords(k)
	act := sc.maskC[:words]
	dense.BoolMask(a.covered, elems, act)
	for w := range act {
		act[w] = ^act[w]
	}
	act[words-1] &= dense.TailMask(k)
	if a.firstFree > 0 {
		fneed := sc.maskF[:words]
		dense.EqMask32(a.first, elems, setcover.NoSet, fneed)
		for w := range act {
			act[w] |= fneed[w]
		}
	}

	first, covered, levels := a.first, a.covered, a.levels
	base := a.pos
	for w := 0; w < words; w++ {
		m := act[w]
		for m != 0 {
			i := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			a.pos = base + int64(i) + 1
			u, s := elems[i], edges[i].Set
			if first[u] == setcover.NoSet {
				first[u] = s
				a.firstFree--
			}
			if covered[u] {
				continue
			}
			if a.rng.Coin(1 / a.alpha) {
				lvl := levels[s] + 1
				if lvl == 1 {
					a.promotedCount++
					a.StateMeter.Add(space.MapEntryWords)
				}
				levels[s] = lvl
				a.promotions++
				a.sink.Emit(obs.KindLevelUp, a.pos, int64(s), int64(lvl), int64(lvl-1))
				if a.rng.Coin(a.inclusionProb(lvl)) {
					a.addToSol(s, int(lvl))
				} else {
					a.sink.Emit(obs.KindSampleDrop, a.pos, int64(s), int64(lvl), 0)
				}
			}
			if a.sol.Test(s) {
				covered[u] = true
				a.coveredCount++
				a.cert[u] = s
				a.sink.Emit(obs.KindCertWrite, a.pos, int64(u), int64(s), -1)
			}
		}
	}
	a.pos = base + int64(k)
}

func (a *Algorithm) process(e stream.Edge) {
	a.pos++
	s, u := e.Set, e.Elem
	if a.first[u] == setcover.NoSet {
		a.first[u] = s
		a.firstFree--
	}
	if a.covered[u] {
		return
	}
	if a.rng.Coin(1 / a.alpha) {
		lvl := a.levels[s] + 1 // level 0 = never promoted
		if lvl == 1 {
			a.promotedCount++
			a.StateMeter.Add(space.MapEntryWords)
		}
		a.levels[s] = lvl
		a.promotions++
		a.sink.Emit(obs.KindLevelUp, a.pos, int64(s), int64(lvl), int64(lvl-1))
		if a.rng.Coin(a.inclusionProb(lvl)) {
			a.addToSol(s, int(lvl))
		} else {
			a.sink.Emit(obs.KindSampleDrop, a.pos, int64(s), int64(lvl), 0)
		}
	}
	if a.sol.Test(s) {
		a.covered[u] = true
		a.coveredCount++
		a.cert[u] = s
		a.sink.Emit(obs.KindCertWrite, a.pos, int64(u), int64(s), -1)
	}
}

// Finish implements stream.Algorithm: line 25's patching covers every
// still-uncovered element with its stored first set. It must be called
// exactly once; the recyclable working arrays are released here.
func (a *Algorithm) Finish() *setcover.Cover {
	if a.finished {
		panic("adversarial: Finish called twice")
	}
	a.finished = true
	chosen := make([]setcover.SetID, 0, a.solCount+16)
	a.sol.ForEach(func(s int32) { chosen = append(chosen, s) })
	for u := range a.cert {
		if !a.covered[u] && a.first[u] != setcover.NoSet {
			a.cert[u] = a.first[u]
			chosen = append(chosen, a.first[u])
			a.patched++
		}
	}
	a.sink.Count(obs.KindPatch, int64(a.patched))
	cov := setcover.NewCover(chosen, a.cert)
	sc := a.sc
	a.sc, a.levels, a.covered, a.first = nil, nil, nil, nil
	a.sol = dense.Bits{}
	a2Pool.Put(sc)
	return cov
}

// PromotedSets returns |L|: the number of sets that reached level ≥ 1. Its
// expectation is the Õ(m·n/α²) term Theorem 4's space bound rests on, and
// the E-ABL-A2 ablation sweeps α to verify the scaling.
func (a *Algorithm) PromotedSets() int { return a.promotedCount }

// Promotions returns the total number of level increments.
func (a *Algorithm) Promotions() int64 { return a.promotions }

// LevelSizes returns |D_ℓ| for each level ℓ (index 0 = the up-front sample).
func (a *Algorithm) LevelSizes() []int { return append([]int(nil), a.dCounts...) }

// SampledSets returns |∪D_ℓ| (excluding patching).
func (a *Algorithm) SampledSets() int { return a.solCount }

// Patched returns how many elements the patching phase covered.
func (a *Algorithm) Patched() int { return a.patched }

// CoveredCount implements stream.CoverageReporter: |U|, the number of
// elements currently holding a covering witness.
func (a *Algorithm) CoveredCount() int { return a.coveredCount }

// SetObs replaces the decision-event sink (tests attach private hubs here;
// nil detaches).
func (a *Algorithm) SetObs(s *obs.Sink) { a.sink = s }

// ObsAlgo implements obs.Identified.
func (a *Algorithm) ObsAlgo() obs.AlgoID { return obs.AlgoAlg2 }

var _ stream.Algorithm = (*Algorithm)(nil)
var _ stream.BatchProcessor = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
