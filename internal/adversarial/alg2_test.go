package adversarial

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func runOn(t testing.TB, w workload.Workload, alpha float64, order stream.Order, seed uint64) (stream.Result, *Algorithm) {
	t.Helper()
	rng := xrand.New(seed)
	edges := stream.Arrange(w.Inst, order, rng.Split())
	alg := New(w.Inst.UniverseSize(), w.Inst.NumSets(), alpha, rng.Split())
	res := stream.RunEdges(alg, edges)
	return res, alg
}

func TestCoverValidOnAllWorkloadsAndOrders(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		alpha := 2 * math.Sqrt(float64(w.Inst.UniverseSize()))
		for _, o := range stream.Orders() {
			res, _ := runOn(t, w, alpha, o, 42)
			if err := res.Cover.Verify(w.Inst); err != nil {
				t.Errorf("%s/%v: %v", w.Name, o, err)
			}
		}
	}
}

func TestApproximationScalesWithAlpha(t *testing.T) {
	// Expected approximation is O(α·log m); check cover ≤ slack·α·log m·OPT.
	w := workload.Planted(xrand.New(2), 400, 4000, 10, 0)
	n, m := 400, 4000
	for _, mult := range []float64{1, 2, 4} {
		alpha := mult * 2 * math.Sqrt(float64(n))
		res, _ := runOn(t, w, alpha, stream.RoundRobin, 3)
		bound := 4 * alpha * math.Log2(float64(m)) * float64(w.PlantedOPT)
		if float64(res.Cover.Size()) > bound {
			t.Errorf("alpha=%.0f: cover %d exceeds bound %.0f", alpha, res.Cover.Size(), bound)
		}
	}
}

func TestPromotedSetsScaleInverselyWithAlphaSquared(t *testing.T) {
	// Theorem 4's space term: E|L| = Õ(m·n/α²). Quadrupling α should cut the
	// promoted count by roughly 16; accept anything ≥ 4x to be robust.
	w := workload.Planted(xrand.New(3), 900, 20000, 10, 0)
	n := 900
	loAlpha := 2 * math.Sqrt(float64(n))
	hiAlpha := 4 * loAlpha

	avgPromoted := func(alpha float64) float64 {
		total := 0
		const reps = 5
		for seed := uint64(0); seed < reps; seed++ {
			_, alg := runOn(t, w, alpha, stream.RoundRobin, seed)
			total += alg.PromotedSets()
		}
		return float64(total) / reps
	}
	lo, hi := avgPromoted(loAlpha), avgPromoted(hiAlpha)
	if hi <= 0 {
		hi = 0.5 // avoid div by zero; treat as very small
	}
	if lo/hi < 4 {
		t.Errorf("promoted sets lo(α=%.0f)=%.1f hi(α=%.0f)=%.1f; want ≥4x reduction", loAlpha, lo, hiAlpha, hi)
	}
}

func TestStateSpaceBelowKK(t *testing.T) {
	// At α = 2√n the promoted-level map must stay far below m — the whole
	// point of improving on the KK-algorithm's Θ(m).
	n, m := 400, 20000
	w := workload.Planted(xrand.New(4), n, m, 10, 0)
	res, _ := runOn(t, w, 2*math.Sqrt(float64(n)), stream.RoundRobin, 7)
	if res.Space.State >= int64(m)/2 {
		t.Errorf("state %d not sublinear in m=%d", res.Space.State, m)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := workload.Planted(xrand.New(5), 100, 1000, 10, 0)
	a, _ := runOn(t, w, 25, stream.Random, 9)
	b, _ := runOn(t, w, 25, stream.Random, 9)
	if a.Cover.Size() != b.Cover.Size() {
		t.Fatalf("nondeterministic: %d vs %d", a.Cover.Size(), b.Cover.Size())
	}
}

func TestLevelSizesConsistent(t *testing.T) {
	w := workload.UniformRandom(xrand.New(6), 100, 500, 2, 20)
	_, alg := runOn(t, w, 20, stream.Random, 5)
	total := 0
	for _, c := range alg.LevelSizes() {
		total += c
	}
	if total != alg.SampledSets() {
		t.Fatalf("Σ|D_ℓ| = %d, |sol| = %d", total, alg.SampledSets())
	}
}

func TestInclusionProbSchedule(t *testing.T) {
	a := New(100, 1000, 20, xrand.New(1))
	// p_0 = α/m; p_{ℓ+1}/p_ℓ = α²/n = 4.
	p0 := a.inclusionProb(0)
	if math.Abs(p0-20.0/1000) > 1e-12 {
		t.Fatalf("p_0 = %v", p0)
	}
	for l := int32(0); l < 5; l++ {
		ratio := a.inclusionProb(l+1) / a.inclusionProb(l)
		if math.Abs(ratio-4) > 1e-9 {
			t.Fatalf("p ratio at level %d = %v, want α²/n = 4", l, ratio)
		}
	}
}

func TestHugeAlphaDegradesToPatching(t *testing.T) {
	// With α enormous, promotions almost never happen; nearly everything is
	// patched, and the state stays tiny.
	w := workload.Planted(xrand.New(7), 100, 1000, 10, 0)
	res, alg := runOn(t, w, 1e9, stream.Random, 1)
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatal(err)
	}
	if alg.PromotedSets() > 2 {
		t.Errorf("promoted %d sets despite α=1e9", alg.PromotedSets())
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		n, m  int
		alpha float64
	}{{0, 1, 2}, {1, 0, 2}, {1, 1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%v) did not panic", tc.n, tc.m, tc.alpha)
				}
			}()
			New(tc.n, tc.m, tc.alpha, xrand.New(1))
		}()
	}
}

func TestSingleElement(t *testing.T) {
	inst := setcover.MustNewInstance(1, [][]setcover.Element{{0}})
	alg := New(1, 1, 2, xrand.New(3))
	res := stream.RunEdges(alg, stream.EdgesOf(inst))
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlg2Process(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 10000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.RoundRobin, xrand.New(2))
	alpha := 2 * math.Sqrt(1000.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := New(1000, 10000, alpha, xrand.New(uint64(i)))
		stream.RunEdges(alg, edges)
	}
}
