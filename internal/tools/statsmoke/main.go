// Command statsmoke is the `make stat-smoke` harness: an end-to-end
// exercise of the live fleet-inspection surface over real processes and
// real TCP. It builds scgen, scserve, scfeed and scstat, then for the
// default build and again for an obsoff build of the serving pair:
//
//  1. starts scserve with -obs-listen, -events and -obs-hold, parsing the
//     resolved data and observability addresses from its banners;
//  2. runs an uninterrupted scfeed session for a reference fingerprint;
//  3. opens a second session, kills the connection mid-stream (-kill-after),
//     resumes it, and asserts the printed trace ID survives the kill
//     unchanged while the final fingerprint matches the reference;
//  4. runs `scstat -json` and asserts the health/readiness probes and (in
//     the default build) the per-session rows: the resumed session is
//     finished, carries the original trace, and counted every edge;
//  5. SIGTERMs the server and, during the -obs-hold window, asserts
//     /readyz flips to 503 (scstat reports ready=false) — the drain signal
//     the shard router will probe — then (default build) checks the
//     wide-event log recorded open/detach/resume/finish/drain with the
//     trace.
//
// Trace identity is not telemetry: the obsoff leg still demands trace
// survival and the readiness flip; only the session-table and wide-event
// assertions are waived there.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "stat-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("stat-smoke: PASS")
}

const opTimeout = 60 * time.Second

func run() error {
	dir, err := os.MkdirTemp("", "statsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bins := map[string]string{}
	for _, b := range []struct{ name, pkg, tags string }{
		{"scgen", "./cmd/scgen", ""},
		{"scstat", "./cmd/scstat", ""},
		{"scserve", "./cmd/scserve", ""},
		{"scfeed", "./cmd/scfeed", ""},
		{"scserve-obsoff", "./cmd/scserve", "obsoff"},
		{"scfeed-obsoff", "./cmd/scfeed", "obsoff"},
	} {
		out := filepath.Join(dir, b.name)
		args := []string{"build", "-o", out}
		if b.tags != "" {
			args = append(args, "-tags", b.tags)
		}
		cmd := exec.Command("go", append(args, b.pkg)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build %s: %w", b.name, err)
		}
		bins[b.name] = out
	}

	streamFile := filepath.Join(dir, "stream.scs")
	gen := exec.Command(bins["scgen"], "-workload", "planted", "-n", "300", "-m", "4000",
		"-opt", "8", "-order", "random", "-seed", "1", "-out", streamFile)
	gen.Stdout, gen.Stderr = os.Stdout, os.Stderr
	if err := gen.Run(); err != nil {
		return fmt.Errorf("scgen: %w", err)
	}

	if err := leg(dir, bins, streamFile, bins["scserve"], bins["scfeed"], true); err != nil {
		return fmt.Errorf("default build: %w", err)
	}
	fmt.Println("stat-smoke: default build ok (sessions table, wide events, trace survival, readiness flip)")
	if err := leg(dir, bins, streamFile, bins["scserve-obsoff"], bins["scfeed-obsoff"], false); err != nil {
		return fmt.Errorf("obsoff build: %w", err)
	}
	fmt.Println("stat-smoke: obsoff build ok (trace survival and readiness flip with telemetry compiled out)")
	return nil
}

var (
	listenRe = regexp.MustCompile(`scserve: listening on (\S+)`)
	traceRe  = regexp.MustCompile(`trace=([0-9a-f]{32})`)
	fpRe     = regexp.MustCompile(`fingerprint=(0x[0-9a-f]+)`)
	resumeRe = regexp.MustCompile(`resumed session \S+ at edge (\d+) of (\d+)`)
)

// leg drives one full scenario against one build of the serving pair. full
// marks the default build, where the telemetry surface must be populated.
func leg(dir string, bins map[string]string, streamFile, serveBin, feedBin string, full bool) error {
	ckpt, err := os.MkdirTemp(dir, "ckpt")
	if err != nil {
		return err
	}
	events := filepath.Join(ckpt, "events.jsonl")

	srv := exec.Command(serveBin,
		"-listen", "127.0.0.1:0", "-store", "dir", "-dir", ckpt,
		"-obs-listen", "127.0.0.1:0", "-obs-hold", "45s",
		"-events", events)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	stderr, err := srv.StderrPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return fmt.Errorf("start scserve: %w", err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_ = srv.Wait()
	}()

	dataAddr, err := awaitBanner(stdout, listenRe)
	if err != nil {
		return fmt.Errorf("data address: %w", err)
	}
	obsAddr, err := awaitObsAddr(stderr)
	if err != nil {
		return fmt.Errorf("obs address: %w", err)
	}
	go func() { _, _ = io.Copy(io.Discard, stdout) }()
	go func() { _, _ = io.Copy(io.Discard, stderr) }()

	feed := func(args ...string) (string, error) {
		base := []string{"-addr", dataAddr, "-in", streamFile, "-algo", "kk", "-seed", "7"}
		out, err := exec.Command(feedBin, append(base, args...)...).CombinedOutput()
		return string(out), err
	}

	// Reference: an uninterrupted session.
	refOut, err := feed("-token", "ref")
	if err != nil {
		return fmt.Errorf("reference run: %v\n%s", err, refOut)
	}
	refFP := fpRe.FindStringSubmatch(refOut)
	if refFP == nil {
		return fmt.Errorf("no fingerprint in reference output:\n%s", refOut)
	}

	// Kill mid-stream: the connection drops with no detach frame, the trace
	// the client minted is on the opened-session line.
	killOut, err := feed("-token", "smoke", "-kill-after", "2500")
	if err != nil {
		return fmt.Errorf("kill run: %v\n%s", err, killOut)
	}
	tr := traceRe.FindStringSubmatch(killOut)
	if tr == nil {
		return fmt.Errorf("no trace ID in kill-run output:\n%s", killOut)
	}
	trace := tr[1]

	// Resume (retrying while the server notices the drop): the resumed-at
	// line and the result line must both carry the original trace.
	var resOut string
	deadline := time.Now().Add(opTimeout)
	for {
		resOut, err = feed("-token", "smoke", "-resume")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("resume never succeeded: %v\n%s", err, resOut)
		}
		time.Sleep(100 * time.Millisecond)
	}
	rm := resumeRe.FindStringSubmatch(resOut)
	if rm == nil {
		return fmt.Errorf("no resume position in output:\n%s", resOut)
	}
	if pos, _ := strconv.Atoi(rm[1]); pos <= 0 || pos > 2500 {
		return fmt.Errorf("resume position %s outside (0, 2500]", rm[1])
	}
	for i, m := range traceRe.FindAllStringSubmatch(resOut, -1) {
		if m[1] != trace {
			return fmt.Errorf("trace changed across kill-and-resume (line %d): opened %s, got %s\n%s",
				i, trace, m[1], resOut)
		}
	}
	resFP := fpRe.FindStringSubmatch(resOut)
	if resFP == nil {
		return fmt.Errorf("no fingerprint in resumed output:\n%s", resOut)
	}
	if resFP[1] != refFP[1] {
		return fmt.Errorf("resumed fingerprint %s, reference %s — kill-and-resume changed observable output",
			resFP[1], refFP[1])
	}

	// scstat -json while healthy: probes up, and (default build) the resumed
	// session visible with its original trace, finished, every edge counted.
	st, err := scstatJSON(bins["scstat"], obsAddr)
	if err != nil {
		return err
	}
	if !st.Healthy || !st.Ready {
		return fmt.Errorf("scstat before drain: healthy=%v ready=%v, want both true", st.Healthy, st.Ready)
	}
	if full {
		row := st.findTrace(trace)
		if row == nil {
			return fmt.Errorf("/sessions has no row with trace %s: %+v", trace, st.Sessions.Sessions)
		}
		if row.State != "finished" || !row.Resumed {
			return fmt.Errorf("resumed session row state=%s resumed=%v, want finished/true", row.State, row.Resumed)
		}
		if total, _ := strconv.Atoi(rm[2]); int(row.Edges) != total {
			return fmt.Errorf("session row counted %d edges, stream has %s", row.Edges, rm[2])
		}
	} else if len(st.Sessions.Sessions) != 0 {
		return fmt.Errorf("obsoff build still populates /sessions: %+v", st.Sessions.Sessions)
	}

	// Drain: SIGTERM, then the obs server (held open by -obs-hold) must
	// report not-ready while the process checkpoints and exits.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	deadline = time.Now().Add(opTimeout)
	for {
		st, err = scstatJSON(bins["scstat"], obsAddr)
		if err == nil && !st.Ready {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/readyz never flipped after SIGTERM (last: healthy=%v ready=%v err=%v)",
				st.Healthy, st.Ready, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !st.Healthy {
		return fmt.Errorf("draining server should stay live (healthy), got healthy=false")
	}

	if full {
		if err := checkEvents(events, trace); err != nil {
			return err
		}
	}
	return nil
}

// statJSON mirrors scstat's -json payload shape.
type statJSON struct {
	Healthy  bool `json:"healthy"`
	Ready    bool `json:"ready"`
	Sessions struct {
		Sessions []sessionRow `json:"sessions"`
	} `json:"sessions"`
}

type sessionRow struct {
	Token   string `json:"token"`
	Trace   string `json:"trace"`
	State   string `json:"state"`
	Resumed bool   `json:"resumed"`
	Edges   int64  `json:"edges"`
}

func (s *statJSON) findTrace(trace string) *sessionRow {
	for i := range s.Sessions.Sessions {
		if s.Sessions.Sessions[i].Trace == trace {
			return &s.Sessions.Sessions[i]
		}
	}
	return nil
}

// scstatJSON runs `scstat -json` against addr and decodes the combined
// snapshot.
func scstatJSON(bin, addr string) (*statJSON, error) {
	out, err := exec.Command(bin, "-addr", addr, "-json").Output()
	if err != nil {
		return nil, fmt.Errorf("scstat -json: %w", err)
	}
	st := &statJSON{}
	if err := json.Unmarshal(out, st); err != nil {
		return nil, fmt.Errorf("scstat -json output: %w\n%s", err, out)
	}
	return st, nil
}

// checkEvents asserts the wide-event log recorded the whole lifecycle of
// the killed-and-resumed session, every line carrying its trace.
func checkEvents(path, trace string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wide-event log: %w", err)
	}
	log := string(b)
	for _, want := range []string{
		`"event":"session_open"`,
		`"event":"session_detach"`,
		`"cause":"disconnect"`,
		`"event":"session_resume"`,
		`"event":"session_finish"`,
		`"event":"server_drain"`,
		`"trace":"` + trace + `"`,
	} {
		if !strings.Contains(log, want) {
			return fmt.Errorf("wide-event log is missing %s\n--- log ---\n%s", want, clip(log))
		}
	}
	// Every line must be standalone-parseable JSON (the self-describing
	// wide-event contract).
	for i, line := range strings.Split(strings.TrimSpace(log), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			return fmt.Errorf("wide-event line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
	}
	return nil
}

// awaitBanner reads r until re matches, returning the first capture group.
func awaitBanner(r io.Reader, re *regexp.Regexp) (string, error) {
	buf := make([]byte, 0, 4096)
	tmp := make([]byte, 512)
	deadline := time.Now().Add(opTimeout)
	for time.Now().Before(deadline) {
		n, err := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if m := re.FindSubmatch(buf); m != nil {
			return string(m[1]), nil
		}
		if err != nil {
			return "", fmt.Errorf("scserve exited before its banner: %q", buf)
		}
	}
	return "", fmt.Errorf("timed out waiting for banner %v; output so far: %q", re, buf)
}

// awaitObsAddr extracts ADDR from the "obs: serving metrics on
// http://ADDR/metrics" stderr banner.
func awaitObsAddr(r io.Reader) (string, error) {
	return awaitBanner(r, regexp.MustCompile(`obs: serving metrics on http://(\S+)/metrics`))
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n... (clipped)"
	}
	return s
}
