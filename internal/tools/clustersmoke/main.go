// Command clustersmoke is the `make cluster-smoke` harness: the sharded
// serving tier exercised as real processes over real TCP, with real kills.
//
//  1. Golden leg: a store-only scrouter (shared SCSTOR1 store), one
//     scserve shard, a routing scrouter, and `scfeed -cluster` driving 64
//     sessions to completion undisturbed. The sorted token/fingerprint
//     file it writes is the golden.
//  2. Chaos leg: the same store-first bring-up with three shards, and
//     `scfeed -cluster` with a -kill schedule that SIGTERMs two shards
//     mid-stream. Severed sessions resume through the router and are
//     adopted by survivors from the shared store.
//  3. The two fingerprint files must be byte-identical — kills, failover
//     and adoption must not perturb one byte of observable output.
//  4. `scstat -fleet -json` over the shard obs addresses must report the
//     killed shards down and the survivor healthy — the fleet view stays
//     usable mid-incident.
//
// Pass -race to build every binary with the race detector.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"streamcover/internal/stream"
)

func main() {
	race := flag.Bool("race", false, "build the binaries with -race")
	sessions := flag.Int("sessions", 64, "concurrent sessions per leg")
	flag.Parse()
	if err := run(*race, *sessions); err != nil {
		fmt.Fprintf(os.Stderr, "cluster-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("cluster-smoke: PASS")
}

const opTimeout = 120 * time.Second

var (
	storeRe  = regexp.MustCompile(`scrouter: shared store on (\S+)`)
	routeRe  = regexp.MustCompile(`scrouter: routing on (\S+)`)
	serveRe  = regexp.MustCompile(`scserve: listening on (\S+)`)
	obsRe    = regexp.MustCompile(`obs: serving metrics on http://(\S+)/metrics`)
	killsRe  = regexp.MustCompile(`kills=(\d+)`)
	resumeRe = regexp.MustCompile(`resumes=(\d+)`)
)

func run(race bool, sessions int) error {
	dir, err := os.MkdirTemp("", "clustersmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bins := map[string]string{}
	for _, b := range []struct{ name, pkg string }{
		{"scgen", "./cmd/scgen"},
		{"scserve", "./cmd/scserve"},
		{"scrouter", "./cmd/scrouter"},
		{"scfeed", "./cmd/scfeed"},
		{"scstat", "./cmd/scstat"},
	} {
		out := filepath.Join(dir, b.name)
		args := []string{"build", "-o", out}
		if race {
			args = append(args, "-race")
		}
		cmd := exec.Command("go", append(args, b.pkg)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build %s: %w", b.name, err)
		}
		bins[b.name] = out
	}

	streamFile := filepath.Join(dir, "stream.scs")
	gen := exec.Command(bins["scgen"], "-workload", "planted", "-n", "300", "-m", "4000",
		"-opt", "8", "-order", "random", "-seed", "1", "-out", streamFile)
	gen.Stdout, gen.Stderr = os.Stdout, os.Stderr
	if err := gen.Run(); err != nil {
		return fmt.Errorf("scgen: %w", err)
	}
	// The kill schedule is expressed in aggregate edges sent across every
	// session, so it needs the per-session stream length.
	f, err := os.Open(streamFile)
	if err != nil {
		return err
	}
	hdr, _, err := stream.Decode(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("decoding %s: %w", streamFile, err)
	}
	aggregate := int64(hdr.E) * int64(sessions)

	goldenFile := filepath.Join(dir, "golden.txt")
	if err := leg(bins, streamFile, goldenFile, sessions, 1, 0, aggregate); err != nil {
		return fmt.Errorf("golden leg: %w", err)
	}
	fmt.Printf("cluster-smoke: golden leg ok (%d sessions, 1 shard, no kills)\n", sessions)

	chaosFile := filepath.Join(dir, "chaos.txt")
	if err := leg(bins, streamFile, chaosFile, sessions, 3, 2, aggregate); err != nil {
		return fmt.Errorf("chaos leg: %w", err)
	}
	fmt.Printf("cluster-smoke: chaos leg ok (%d sessions, 3 shards, 2 mid-stream kills)\n", sessions)

	golden, err := os.ReadFile(goldenFile)
	if err != nil {
		return err
	}
	chaos, err := os.ReadFile(chaosFile)
	if err != nil {
		return err
	}
	if len(golden) == 0 {
		return fmt.Errorf("golden fingerprint file is empty")
	}
	if !bytes.Equal(golden, chaos) {
		return fmt.Errorf("chaos fingerprints differ from golden — kills changed observable output\n--- golden ---\n%s--- chaos ---\n%s", golden, chaos)
	}
	fmt.Printf("cluster-smoke: %d fingerprints byte-identical across golden and chaos runs\n", sessions)
	return nil
}

// proc is one managed child process with its parsed banner addresses.
type proc struct {
	cmd    *exec.Cmd
	stdout io.Reader
	stderr io.Reader
}

// start launches bin, wiring pipes for banner parsing.
func start(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", filepath.Base(bin), err)
	}
	return &proc{cmd: cmd, stdout: stdout, stderr: stderr}, nil
}

// drain discards the rest of both pipes so the child never blocks on a
// full pipe buffer.
func (p *proc) drain() {
	go func() { _, _ = io.Copy(io.Discard, p.stdout) }()
	go func() { _, _ = io.Copy(io.Discard, p.stderr) }()
}

func (p *proc) kill() {
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

// leg brings up one cluster (store, shards, router), drives it with
// scfeed -cluster, and — when kills > 0 — SIGTERMs that many shards
// mid-stream and checks the fleet view afterwards.
func leg(bins map[string]string, streamFile, fpFile string, sessions, shards, kills int, aggregate int64) error {
	// 1. Store-only scrouter: the shared checkpoint store comes up first.
	storeProc, err := start(bins["scrouter"], "-store-listen", "127.0.0.1:0", "-store-backend", "mem")
	if err != nil {
		return err
	}
	defer storeProc.kill()
	storeAddr, err := awaitBanner(storeProc.stdout, storeRe)
	if err != nil {
		return fmt.Errorf("store address: %w", err)
	}
	storeProc.drain()

	// 2. Shards: each binds :0 and reports its address; all share the store.
	shardProcs := make([]*proc, shards)
	shardAddrs := make([]string, shards)
	obsAddrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard%d", i+1)
		p, err := start(bins["scserve"],
			"-listen", "127.0.0.1:0",
			"-store", "cluster", "-store-addr", storeAddr,
			"-shard", name,
			"-obs-listen", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer p.kill()
		if shardAddrs[i], err = awaitBanner(p.stdout, serveRe); err != nil {
			return fmt.Errorf("%s address: %w", name, err)
		}
		if obsAddrs[i], err = awaitBanner(p.stderr, obsRe); err != nil {
			return fmt.Errorf("%s obs address: %w", name, err)
		}
		p.drain()
		shardProcs[i] = p
	}

	// 3. Routing scrouter over the resolved shard addresses.
	routerProc, err := start(bins["scrouter"],
		"-listen", "127.0.0.1:0",
		"-shards", joinComma(shardAddrs),
		"-down-cooldown", "250ms")
	if err != nil {
		return err
	}
	defer routerProc.kill()
	routerAddr, err := awaitBanner(routerProc.stdout, routeRe)
	if err != nil {
		return fmt.Errorf("router address: %w", err)
	}
	routerProc.drain()

	// 4. Drive the cluster. The kill schedule SIGTERMs the last `kills`
	// shards at ~20% and ~45% of the aggregate stream — mid-stream by
	// construction, early enough that adopted sessions still have most of
	// their edges ahead of them.
	feedArgs := []string{
		"-cluster", "-addr", routerAddr, "-in", streamFile,
		"-algo", "kk", "-seed", "7",
		"-sessions", strconv.Itoa(sessions),
		"-fingerprints", fpFile,
	}
	if kills > 0 {
		if kills >= len(shardProcs) {
			return fmt.Errorf("cannot kill %d of %d shards and keep a survivor", kills, len(shardProcs))
		}
		spec := ""
		for k := 0; k < kills; k++ {
			at := aggregate * int64(20+25*k) / 100
			victim := shardProcs[len(shardProcs)-1-k]
			if spec != "" {
				spec += ","
			}
			spec += fmt.Sprintf("%d:%d", at, victim.cmd.Process.Pid)
		}
		feedArgs = append(feedArgs, "-kill", spec)
	}
	feed := exec.Command(bins["scfeed"], feedArgs...)
	out, err := feed.CombinedOutput()
	if err != nil {
		return fmt.Errorf("scfeed -cluster: %v\n%s", err, clip(string(out)))
	}
	if kills > 0 {
		km := killsRe.FindSubmatch(out)
		if km == nil || string(km[1]) != strconv.Itoa(kills) {
			return fmt.Errorf("expected kills=%d in scfeed summary:\n%s", kills, clip(string(out)))
		}
		rm := resumeRe.FindSubmatch(out)
		if rm == nil {
			return fmt.Errorf("no resumes= tally in scfeed summary:\n%s", clip(string(out)))
		}
		if n, _ := strconv.Atoi(string(rm[1])); n == 0 {
			return fmt.Errorf("chaos leg finished with zero resumes — the kills missed every session:\n%s", clip(string(out)))
		}

		// 5. Fleet view mid-incident: the killed shards report down, the
		// survivor healthy.
		if err := checkFleet(bins["scstat"], obsAddrs, kills); err != nil {
			return err
		}
	}
	return nil
}

// checkFleet runs scstat -fleet -json over every shard's obs address and
// asserts the kill count is reflected: that many members unreachable, the
// rest healthy.
func checkFleet(scstat string, obsAddrs []string, kills int) error {
	out, err := exec.Command(scstat, "-fleet", "-addr", joinComma(obsAddrs), "-json").Output()
	if err != nil {
		return fmt.Errorf("scstat -fleet: %w", err)
	}
	var sts []struct {
		Healthy bool   `json:"healthy"`
		Err     string `json:"err"`
	}
	if err := json.Unmarshal(out, &sts); err != nil {
		return fmt.Errorf("scstat -fleet output: %w\n%s", err, out)
	}
	if len(sts) != len(obsAddrs) {
		return fmt.Errorf("fleet view has %d members, want %d", len(sts), len(obsAddrs))
	}
	down, up := 0, 0
	for _, st := range sts {
		if st.Err != "" {
			down++
		} else if st.Healthy {
			up++
		}
	}
	if down != kills || up != len(obsAddrs)-kills {
		return fmt.Errorf("fleet view after %d kills: %d down, %d healthy (want %d down, %d healthy)\n%s",
			kills, down, up, kills, len(obsAddrs)-kills, out)
	}
	return nil
}

func joinComma(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += x
	}
	return out
}

// awaitBanner reads r until re matches, returning the first capture group.
func awaitBanner(r io.Reader, re *regexp.Regexp) (string, error) {
	buf := make([]byte, 0, 4096)
	tmp := make([]byte, 512)
	deadline := time.Now().Add(opTimeout)
	for time.Now().Before(deadline) {
		n, err := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if m := re.FindSubmatch(buf); m != nil {
			return string(m[1]), nil
		}
		if err != nil {
			return "", fmt.Errorf("process exited before its banner: %q", buf)
		}
	}
	return "", fmt.Errorf("timed out waiting for banner %v; output so far: %q", re, buf)
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n... (clipped)"
	}
	return s
}
