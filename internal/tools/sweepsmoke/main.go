// Command sweepsmoke is the `make sweep-smoke` harness: an end-to-end proof
// of the sweep scheduler's determinism contract (DESIGN.md §4e). It runs a
// small but non-trivial (algorithm × n × m × order) grid through
// cli.Sweep twice — sequentially (-workers=1, the reference schedule) and
// sharded across 4 workers — in both table and CSV form, and byte-compares
// the outputs. Per-rep seeds derive from grid coordinates alone, so any
// difference means scheduling leaked into the results. Exit status is
// non-zero on divergence.
package main

import (
	"bytes"
	"fmt"
	"os"

	"streamcover/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("sweep-smoke: PASS")
}

func run() error {
	base := cli.SweepOptions{
		Algos:  []string{"kk", "alg1", "alg2", "es", "storeall"},
		Ns:     []int{150, 300},
		Ms:     []int{1000, 2000},
		Orders: []string{"random", "round-robin", "high-degree-last"},
		Opt:    6,
		Reps:   2,
		Seed:   7,
	}
	for _, csv := range []bool{false, true} {
		form := "table"
		if csv {
			form = "csv"
		}
		seq := base
		seq.CSV = csv
		seq.Workers = 1
		var want bytes.Buffer
		if err := cli.Sweep(seq, &want); err != nil {
			return fmt.Errorf("%s workers=1: %w", form, err)
		}
		par := base
		par.CSV = csv
		par.Workers = 4
		var got bytes.Buffer
		if err := cli.Sweep(par, &got); err != nil {
			return fmt.Errorf("%s workers=4: %w", form, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			return fmt.Errorf("%s output differs between workers=1 and workers=4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
				form, want.String(), got.String())
		}
		fmt.Printf("sweep-smoke: %s identical across worker counts (%d bytes, %d cells)\n",
			form, want.Len(), len(base.Algos)*len(base.Ns)*len(base.Ms)*len(base.Orders))
	}
	return nil
}
