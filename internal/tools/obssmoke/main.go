// Command obssmoke is the `make obs-smoke` harness: it builds cmd/scbench,
// runs one quick experiment with -obs-listen on an ephemeral port, scrapes
// /metrics once while the server is held open, and asserts the core series
// of the observability layer are present. It also exercises -trace-out and
// reads the dump back through the obs package, so the whole
// emit→serve→dump→read loop is covered by one self-contained binary with no
// external tooling (no curl, no Prometheus).
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"streamcover/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obs-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "scbench")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scbench")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build scbench: %w", err)
	}

	// E-T1-R2 is the quickest Table-1 row (KK on the random order); -obs-hold
	// keeps the server up after the run so one scrape is race-free. scbench
	// prints the resolved ephemeral address on stderr.
	trace := filepath.Join(dir, "run.sctrace")
	cmd := exec.Command(bin,
		"-config", "quick", "-id", "E-T1-R2",
		"-obs-listen", "127.0.0.1:0", "-obs-hold", "30s",
		"-trace-out", trace)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start scbench: %w", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	addr, rest, err := awaitAddr(stderr)
	if err != nil {
		return err
	}
	// Keep draining stderr so scbench never blocks on a full pipe.
	go func() { _, _ = io.Copy(io.Discard, rest) }()

	body, err := scrapeWhenHeld(addr)
	if err != nil {
		return err
	}

	for _, series := range []string{
		"streamcover_edges_processed_total",
		"streamcover_edges_per_second",
		"streamcover_state_words",
		"streamcover_decision_events_total",
		"streamcover_batch_duration_ns",
	} {
		if !strings.Contains(body, series) {
			return fmt.Errorf("/metrics is missing series %q\n--- scrape ---\n%s", series, clip(body))
		}
	}
	fmt.Printf("obs-smoke: scraped %d bytes from http://%s/metrics, all core series present\n",
		len(body), addr)

	// The run has finished (the hold phase began before we scraped), so the
	// trace file exists once the process exits; kill ends the hold early but
	// the dump is written before the hold. Wait for it briefly.
	if err := awaitFile(trace, 10*time.Second); err != nil {
		return err
	}
	events, err := obs.ReadTraceFile(trace)
	if err != nil {
		return fmt.Errorf("read back %s: %w", trace, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("decision trace %s is empty", trace)
	}
	fmt.Printf("obs-smoke: decision trace read back: %d events (first kind %s)\n",
		len(events), events[0].Kind)
	return nil
}

// awaitAddr reads stderr lines until the "obs: serving metrics on
// http://ADDR/metrics" banner appears and returns ADDR plus the remaining
// reader.
func awaitAddr(r io.Reader) (string, io.Reader, error) {
	buf := make([]byte, 0, 4096)
	tmp := make([]byte, 512)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		n, err := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if i := strings.Index(string(buf), "http://"); i >= 0 {
			rest := string(buf)[i+len("http://"):]
			if j := strings.Index(rest, "/metrics"); j >= 0 {
				return rest[:j], r, nil
			}
		}
		if err != nil {
			return "", nil, fmt.Errorf("scbench exited before announcing an address: %q", buf)
		}
	}
	return "", nil, fmt.Errorf("timed out waiting for the obs address banner; stderr so far: %q", buf)
}

// scrapeWhenHeld polls /metrics until the run has processed edges (the hold
// phase guarantees the server outlives the run), returning the first scrape
// whose edges-processed counter is nonzero.
func scrapeWhenHeld(addr string) (string, error) {
	url := "http://" + addr + "/metrics"
	deadline := time.Now().Add(60 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				last = string(b)
				if strings.Contains(last, "streamcover_edges_processed_total") &&
					!strings.Contains(last, "streamcover_edges_processed_total{algo=\"kk\"} 0\n") {
					return last, nil
				}
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for a scrape with nonzero edge counts; last scrape:\n%s", clip(last))
}

func awaitFile(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("trace file %s never appeared", path)
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n... (clipped)"
	}
	return s
}
