// Command resumesmoke is the `make resume-smoke` harness: a self-contained
// kill-and-resume exercise of the checkpoint stack over an on-disk stream
// file. It plants a workload, encodes it as a stream file, runs each
// snapshottable algorithm (and a parallel KK ensemble) to completion for
// reference, then replays the run with periodic file checkpoints and kills it
// mid-stream (DrivePartial — no finish, no extra checkpoint, exactly like a
// crash between checkpoints). A *differently seeded* fresh instance is then
// restored from the last durable checkpoint and driven over the rest of the
// file; the resumed cover, certificate and space report must be identical to
// the uninterrupted run. Exit status is non-zero on any divergence.
//
// The Makefile runs it twice — default build and `-tags obsoff` — so the
// resume path is proven with and without the observability layer compiled
// in.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/kk"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "resume-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("resume-smoke: PASS")
}

// smokeCase is one algorithm under the kill-and-resume exercise. mk must
// return a deterministic instance for a given seed; the resume leg
// deliberately uses a different seed than the reference leg, since Restore
// must overwrite every coin the constructor drew.
type smokeCase struct {
	name string
	mk   func(seed uint64) stream.Algorithm
}

func run() error {
	dir, err := os.MkdirTemp("", "resumesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Plant a workload with a known optimum and put its edges on disk in a
	// shuffled order — the file path is the point: resume must fast-forward
	// through the encoded stream, not an in-memory slice.
	const n, m, opt = 500, 8000, 10
	w := workload.Planted(xrand.New(101), n, m, opt, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(102))
	path := filepath.Join(dir, "stream.scs")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := stream.Encode(f, stream.Header{N: n, M: m, E: len(edges)}, edges); err != nil {
		f.Close()
		return fmt.Errorf("encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}

	streamLen := len(edges)
	cases := []smokeCase{
		{"kk", func(seed uint64) stream.Algorithm { return kk.New(n, m, xrand.New(seed)) }},
		{"alg1", func(seed uint64) stream.Algorithm {
			return core.New(n, m, streamLen, core.DefaultParams(n, m), xrand.New(seed))
		}},
		{"alg2", func(seed uint64) stream.Algorithm { return adversarial.New(n, m, 45, xrand.New(seed)) }},
		{"es", func(seed uint64) stream.Algorithm { return elementsampling.New(n, m, 8, xrand.New(seed)) }},
		{"kk-ensemble", func(seed uint64) stream.Algorithm {
			copies := make([]stream.Algorithm, 4)
			for i := range copies {
				copies[i] = kk.New(n, m, xrand.New(seed+uint64(i)))
			}
			return stream.NewEnsemble(copies...)
		}},
	}

	kill := streamLen * 3 / 5
	every := streamLen / 10
	for _, c := range cases {
		if err := killAndResume(c, path, kill, every, dir); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Printf("resume-smoke: %s ok (killed at edge %d of %d, checkpoint every %d)\n",
			c.name, kill, streamLen, every)
	}
	return nil
}

func killAndResume(c smokeCase, path string, kill, every int, dir string) error {
	open := func() (*stream.File, error) { return stream.OpenFile(path) }

	// Reference: the uninterrupted run.
	fs, err := open()
	if err != nil {
		return err
	}
	ref := stream.Run(c.mk(7), fs)
	fs.Close()

	// Kill: same seed, periodic checkpoints to disk, stopped mid-stream with
	// no finish — the last durable state is the checkpoint before the kill.
	ck := filepath.Join(dir, c.name+".ckpt")
	fs, err = open()
	if err != nil {
		return err
	}
	pos, err := stream.DrivePartial(c.mk(7), fs, stream.CheckpointPolicy{Every: every, Path: ck}, kill)
	fs.Close()
	if err != nil {
		return fmt.Errorf("killed run: %w", err)
	}
	if pos != kill {
		return fmt.Errorf("killed run stopped at %d, want %d", pos, kill)
	}

	// Resume: a fresh instance with different coins, restored from the file.
	resumedAlg := c.mk(987654321)
	from, err := stream.ReadCheckpointFile(ck, resumedAlg)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if want := kill / every * every; from != want {
		return fmt.Errorf("checkpoint at edge %d, want last durable %d", from, want)
	}
	fs, err = open()
	if err != nil {
		return err
	}
	res, err := stream.RunCheckpointedFrom(resumedAlg, fs, stream.CheckpointPolicy{}, from)
	fs.Close()
	if err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}

	if !ref.Cover.Equal(res.Cover) {
		return fmt.Errorf("resumed cover differs: %d sets vs %d sets", res.Cover.Size(), ref.Cover.Size())
	}
	if ref.Space != res.Space {
		return fmt.Errorf("resumed space differs: %+v vs %+v", res.Space, ref.Space)
	}
	if ref.Edges != res.Edges {
		return fmt.Errorf("resumed edge count differs: %d vs %d", res.Edges, ref.Edges)
	}
	return nil
}
