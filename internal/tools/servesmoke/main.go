// Command servesmoke is the `make serve-smoke` harness: a self-contained
// kill-and-reconnect exercise of the scserve/scfeed stack over real TCP.
// It starts the SCWIRE1 server used by scserve, then for each registered
// algorithm (plus a KK ensemble):
//
//  1. feeds an uninterrupted session with the scfeed client for reference;
//  2. feeds a second session with the same seed and drops the connection
//     mid-stream with no detach frame — the server must notice and persist
//     a checkpoint;
//  3. reconnects with a resume frame, resends only the suffix the server
//     asks for, and finishes.
//
// The resumed result must match the reference byte for byte (cover,
// certificate, edge count, space meters — compared via the golden
// fingerprint scheme). A final leg drains the server mid-session
// (Shutdown, as scserve does on SIGTERM), restarts it on the same
// checkpoint store, and resumes across the restart. Exit status is
// non-zero on any divergence.
//
// -store selects the checkpoint backend under test: "dir" exercises the
// durable FileStore (checkpoints in a temp directory), "mem" the
// in-process MemStore (the restart leg hands the same store instance to
// the new server, as a cluster shard adopting a peer's store would).
// `make serve-smoke` runs both.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"streamcover/internal/serve"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func main() {
	storeKind := flag.String("store", "dir", "checkpoint store backend to exercise: dir or mem")
	contend := flag.Int("contend", 0,
		"run the lock-stripe contention leg instead: this many concurrent sessions on one server, results cross-checked")
	flag.Parse()
	if *contend > 0 {
		if err := runContend(*storeKind, *contend); err != nil {
			fmt.Fprintf(os.Stderr, "serve-smoke[%s,contend=%d]: FAIL: %v\n", *storeKind, *contend, err)
			os.Exit(1)
		}
		fmt.Printf("serve-smoke[%s,contend=%d]: PASS\n", *storeKind, *contend)
		return
	}
	if err := run(*storeKind); err != nil {
		fmt.Fprintf(os.Stderr, "serve-smoke[%s]: FAIL: %v\n", *storeKind, err)
		os.Exit(1)
	}
	fmt.Printf("serve-smoke[%s]: PASS\n", *storeKind)
}

const dialTimeout = 30 * time.Second

func run(storeKind string) error {
	var st serve.CheckpointStore
	switch storeKind {
	case "dir":
		dir, err := os.MkdirTemp("", "servesmoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fs, err := serve.NewFileStore(dir)
		if err != nil {
			return err
		}
		st = fs
	case "mem":
		st = serve.NewMemStore()
	default:
		return fmt.Errorf("unknown -store %q (want dir or mem)", storeKind)
	}

	const n, m, opt = 400, 6000, 10
	w := workload.Planted(xrand.New(101), n, m, opt, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(102))

	srv, err := serve.NewServer(serve.ServerConfig{Addr: "127.0.0.1:0", Store: st})
	if err != nil {
		return err
	}
	if err := srv.Listen(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	base := serve.Config{N: n, M: m, StreamLen: len(edges)}
	cases := []serve.Config{
		{Algo: "kk", Seed: 7},
		{Algo: "alg1", Seed: 7},
		{Algo: "alg2", Seed: 7, Alpha: 45},
		{Algo: "es", Seed: 7, Alpha: 8},
		{Algo: "kk", Seed: 7, Copies: 4},
	}
	kill := len(edges) * 3 / 5
	for _, c := range cases {
		cfg := base
		cfg.Algo, cfg.Seed, cfg.Alpha, cfg.Copies = c.Algo, c.Seed, c.Alpha, c.Copies
		name := cfg.Algo
		if cfg.Copies > 1 {
			name = fmt.Sprintf("%s-x%d", cfg.Algo, cfg.Copies)
		}
		if err := killAndReconnect(srv, cfg, edges, kill, name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("serve-smoke: %s ok (killed at edge ~%d of %d, resumed byte-identical)\n",
			name, kill, len(edges))
	}

	if err := drainAndRestart(srv, done, st, base, edges, kill); err != nil {
		return fmt.Errorf("drain-restart: %w", err)
	}
	fmt.Printf("serve-smoke: drain-restart ok (resumed across a server restart)\n")
	return nil
}

// runContend hammers one server with many concurrent sessions on the same
// deterministic workload: every open/close crosses the lifecycle manager's
// lock stripes and the frameIO/ring free-lists at once, so under `go run
// -race` this leg is the striped manager's data-race probe. Every session
// must produce the byte-identical reference fingerprint.
func runContend(storeKind string, sessions int) error {
	var st serve.CheckpointStore
	switch storeKind {
	case "dir":
		dir, err := os.MkdirTemp("", "servesmoke-contend")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fs, err := serve.NewFileStore(dir)
		if err != nil {
			return err
		}
		st = fs
	case "mem":
		st = serve.NewMemStore()
	default:
		return fmt.Errorf("unknown -store %q (want dir or mem)", storeKind)
	}

	const n, m, opt = 300, 4000, 8
	w := workload.Planted(xrand.New(101), n, m, opt, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(102))
	cfg := serve.Config{Algo: "kk", N: n, M: m, StreamLen: len(edges), Seed: 7}

	srv, err := serve.NewServer(serve.ServerConfig{Addr: "127.0.0.1:0", Store: st})
	if err != nil {
		return err
	}
	if err := srv.Listen(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()

	ref, err := reference(srv.Addr(), cfg, edges)
	if err != nil {
		return fmt.Errorf("reference session: %w", err)
	}

	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := reference(srv.Addr(), cfg, edges)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = compare(ref, res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("session %d of %d: %w", i, sessions, err)
		}
	}
	return nil
}

// reference runs an uninterrupted session and returns its result.
func reference(addr string, cfg serve.Config, edges []stream.Edge) (serve.Result, error) {
	c, err := serve.Dial(addr)
	if err != nil {
		return serve.Result{}, err
	}
	defer c.Close()
	c.Timeout = dialTimeout
	if _, err := c.Hello("", cfg); err != nil {
		return serve.Result{}, err
	}
	fd := serve.Feeder{Edges: edges, Batch: 512}
	return fd.Run(c)
}

// killAndReconnect compares an abruptly killed and resumed session against
// the uninterrupted reference.
func killAndReconnect(srv *serve.Server, cfg serve.Config, edges []stream.Edge, kill int, token string) error {
	ref, err := reference(srv.Addr(), cfg, edges)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	// Kill: same seed, same stream, connection dropped mid-flight with no
	// detach frame — exactly a crashed client.
	c, err := serve.Dial(srv.Addr())
	if err != nil {
		return err
	}
	c.Timeout = dialTimeout
	if _, err := c.Hello(token, cfg); err != nil {
		c.Close()
		return err
	}
	fd := serve.Feeder{Edges: edges, Batch: 512}
	if err := fd.RunUntil(c, kill); err != nil {
		c.Close()
		return fmt.Errorf("partial feed: %w", err)
	}
	c.Close()

	// The server detaches asynchronously once the read fails; wait for the
	// token to free up.
	if err := waitDetached(srv, token); err != nil {
		return err
	}

	// Resume: the server tells us where its checkpoint left off; resend
	// only the suffix.
	c, err = serve.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer c.Close()
	c.Timeout = dialTimeout
	pos, err := c.Resume(token, cfg)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	if pos <= 0 || pos > kill {
		return fmt.Errorf("resume position %d outside (0, %d]", pos, kill)
	}
	res, err := fd.Run(c)
	if err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}
	return compare(ref, res)
}

// drainAndRestart kills the server (graceful Shutdown, as SIGTERM does)
// while a session is attached mid-stream, restarts it on the same
// checkpoint store, and resumes there. With the dir backend this is a true
// process-style restart (state only on disk); with mem it models a cluster
// shard handing its store to a successor.
func drainAndRestart(srv *serve.Server, done chan error, st serve.CheckpointStore, base serve.Config, edges []stream.Edge, kill int) error {
	cfg := base
	cfg.Algo, cfg.Seed = "kk", 7
	ref, err := reference(srv.Addr(), cfg, edges)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	const token = "restart"
	c, err := serve.Dial(srv.Addr())
	if err != nil {
		return err
	}
	c.Timeout = dialTimeout
	if _, err := c.Hello(token, cfg); err != nil {
		c.Close()
		return err
	}
	fd := serve.Feeder{Edges: edges, Batch: 512}
	if err := fd.RunUntil(c, kill); err != nil {
		c.Close()
		return fmt.Errorf("partial feed: %w", err)
	}
	// Make sure the server has consumed what we sent, then drain it with
	// the session still attached: Shutdown must checkpoint it.
	if _, err := c.Flush(); err != nil {
		c.Close()
		return fmt.Errorf("flush: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		c.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	c.Close()
	if err := <-done; err != nil {
		return fmt.Errorf("server exit: %w", err)
	}

	srv2, err := serve.NewServer(serve.ServerConfig{Addr: "127.0.0.1:0", Store: st})
	if err != nil {
		return err
	}
	if err := srv2.Listen(); err != nil {
		return err
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
		defer cancel()
		srv2.Shutdown(ctx)
		<-done2
	}()

	c, err = serve.Dial(srv2.Addr())
	if err != nil {
		return err
	}
	defer c.Close()
	c.Timeout = dialTimeout
	pos, err := c.Resume(token, cfg)
	if err != nil {
		return fmt.Errorf("resume after restart: %w", err)
	}
	if pos != kill {
		return fmt.Errorf("resume position %d after flushed drain, want %d", pos, kill)
	}
	res, err := fd.Run(c)
	if err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}
	return compare(ref, res)
}

// waitDetached polls until the server has noticed the dropped connection
// and released the token.
func waitDetached(srv *serve.Server, token string) error {
	deadline := time.Now().Add(dialTimeout)
	for srv.Manager().Active() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("session %q still attached after dropped connection", token)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// compare demands byte-identical observable output.
func compare(ref, res serve.Result) error {
	if ref.Fingerprint() != res.Fingerprint() {
		return fmt.Errorf("fingerprint %#x after resume, want %#x (cover %d vs %d sets, space %+v vs %+v, edges %d vs %d)",
			res.Fingerprint(), ref.Fingerprint(),
			len(res.Cover.Sets), len(ref.Cover.Sets), res.Space, ref.Space, res.Edges, ref.Edges)
	}
	if !ref.Cover.Equal(res.Cover) {
		return fmt.Errorf("fingerprints match but covers differ — fingerprint scheme broken")
	}
	return nil
}
