// Command kernelsmoke is the `make kernel-smoke` harness: a one-iteration
// equivalence proof for the intra-instance compute layer (DESIGN.md §4g).
//
// It checks the two properties the layer must never trade for speed:
//
//  1. Offline solvers — the sharded greedy max-gain scan and the parallel
//     branch-and-bound exploration return byte-identical covers at every
//     worker count. Greedy runs on a sweep-sized planted instance, exact on
//     a small instance, both at workers=1 (the reference schedule) and
//     workers=8, with Sets and Certificate compared element for element.
//  2. Batch kernels — driving kk/alg1/alg2 through the word-parallel
//     ProcessBatch path is observably identical to the per-edge Process
//     path: covers, certificates, edge counts and space reports match.
//
// Wall-clock for the solver runs is printed for the record, but never
// asserted: on a single-core machine the parallel schedule legitimately
// costs what the sequential one does. Exit status is non-zero on any
// divergence.
package main

import (
	"fmt"
	"os"
	"slices"
	"time"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/kk"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "kernel-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("kernel-smoke: PASS")
}

func run() error {
	if err := solverEquivalence(); err != nil {
		return err
	}
	return batchEquivalence()
}

// coversEqual compares the full observable output of a solver run.
func coversEqual(a, b *setcover.Cover) bool {
	return slices.Equal(a.Sets, b.Sets) && slices.Equal(a.Certificate, b.Certificate)
}

func solverEquivalence() error {
	// Sweep-sized greedy: the instance shape BenchmarkScaling and the
	// experiment ground truth run at.
	w := workload.Planted(xrand.New(31), 900, 18000, 15, 0)
	start := time.Now()
	seq, err := setcover.GreedyWorkers(w.Inst, 1)
	if err != nil {
		return fmt.Errorf("greedy workers=1: %w", err)
	}
	seqT := time.Since(start)
	start = time.Now()
	par, err := setcover.GreedyWorkers(w.Inst, 8)
	if err != nil {
		return fmt.Errorf("greedy workers=8: %w", err)
	}
	parT := time.Since(start)
	if !coversEqual(seq, par) {
		return fmt.Errorf("greedy covers diverge: workers=1 %v, workers=8 %v", seq.Sets, par.Sets)
	}
	if err := par.Verify(w.Inst); err != nil {
		return fmt.Errorf("greedy cover invalid: %w", err)
	}
	fmt.Printf("kernel-smoke: greedy n=900 m=18000 identical at workers=1 (%v) and workers=8 (%v), %d sets\n",
		seqT.Round(time.Millisecond), parT.Round(time.Millisecond), len(par.Sets))

	// Exact on a branch-and-bound-sized instance (universe ≤ 64).
	we := workload.Planted(xrand.New(33), 22, 40, 5, 0)
	start = time.Now()
	seqE, err := setcover.ExactWorkers(we.Inst, 1)
	if err != nil {
		return fmt.Errorf("exact workers=1: %w", err)
	}
	seqET := time.Since(start)
	start = time.Now()
	parE, err := setcover.ExactWorkers(we.Inst, 8)
	if err != nil {
		return fmt.Errorf("exact workers=8: %w", err)
	}
	parET := time.Since(start)
	if !coversEqual(seqE, parE) {
		return fmt.Errorf("exact covers diverge: workers=1 %v, workers=8 %v", seqE.Sets, parE.Sets)
	}
	fmt.Printf("kernel-smoke: exact n=22 m=40 identical at workers=1 (%v) and workers=8 (%v), optimum %d\n",
		seqET.Round(time.Millisecond), parET.Round(time.Millisecond), len(parE.Sets))
	return nil
}

// perEdgeOnly hides ProcessBatch from the driver, forcing the run down the
// per-edge Process path while keeping the space report visible.
type perEdgeOnly struct {
	stream.Algorithm
	space.Reporter
}

func batchEquivalence() error {
	const n, m, opt = 300, 4000, 8
	w := workload.Planted(xrand.New(11), n, m, opt, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(23))
	mk := func(name string) stream.Algorithm {
		switch name {
		case "kk":
			return kk.New(n, m, xrand.New(42))
		case "alg1":
			return core.New(n, m, len(edges), core.DefaultParams(n, m), xrand.New(42))
		default:
			return adversarial.New(n, m, 40, xrand.New(42))
		}
	}
	for _, name := range []string{"kk", "alg1", "alg2"} {
		batchedAlg := mk(name)
		if _, ok := batchedAlg.(stream.BatchProcessor); !ok {
			return fmt.Errorf("%s does not implement stream.BatchProcessor", name)
		}
		batched := stream.RunEdges(batchedAlg, edges)

		perEdgeAlg := mk(name)
		perEdge := stream.RunEdges(perEdgeOnly{perEdgeAlg, perEdgeAlg.(space.Reporter)}, edges)

		if !slices.Equal(batched.Cover.Sets, perEdge.Cover.Sets) ||
			!slices.Equal(batched.Cover.Certificate, perEdge.Cover.Certificate) {
			return fmt.Errorf("%s: batched cover differs from per-edge", name)
		}
		if batched.Edges != perEdge.Edges || batched.Space != perEdge.Space {
			return fmt.Errorf("%s: batched run shape differs: edges %d vs %d, space %+v vs %+v",
				name, batched.Edges, perEdge.Edges, batched.Space, perEdge.Space)
		}
		fmt.Printf("kernel-smoke: %s batched == per-edge over %d edges (%d sets)\n",
			name, batched.Edges, batched.Cover.Size())
	}
	return nil
}
