//go:build !obsoff

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestHandlerExpvarReflectsReceiverHub is the regression test for the
// published "streamcover" expvar: it must reflect the hub whose Handler is
// serving /debug/vars (last Handler wins), not unconditionally Global().
func TestHandlerExpvarReflectsReceiverHub(t *testing.T) {
	// A distinctly-named global hub that would shadow the private one under
	// the old behavior.
	globalHub := NewHub(8)
	globalHub.Registry().Counter("expvar_probe_global_total", "probe").Add(3)
	SetGlobal(globalHub)
	defer SetGlobal(nil)

	private := NewHub(8)
	private.Registry().Counter("expvar_probe_private_total", "probe").Add(7)
	srv := httptest.NewServer(private.Handler())
	defer srv.Close()

	var vars struct {
		Streamcover Snapshot `json:"streamcover"`
	}
	if code := getJSON(t, srv.URL+"/debug/vars", &vars); code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	names := map[string]float64{}
	for _, p := range vars.Streamcover.Metrics {
		names[p.Name] = p.Value
	}
	if v, ok := names["expvar_probe_private_total"]; !ok || v != 7 {
		t.Fatalf("expvar snapshot missing the receiver hub's series (got %v) — Handler() still reads Global()", names)
	}
	if _, ok := names["expvar_probe_global_total"]; ok {
		t.Fatalf("expvar snapshot leaked the global hub's series: %v", names)
	}
}

func TestHandlerSessionsEndpoint(t *testing.T) {
	h := NewHub(8)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	tr := NewTraceID()
	slot := h.Serve().AcquireSession("sess-1", "alg1", tr, false, 0)
	slot.Batch(4096, 2)
	slot.Stall()

	var snap SessionsSnapshot
	if code := getJSON(t, srv.URL+"/sessions", &snap); code != http.StatusOK {
		t.Fatalf("/sessions status %d", code)
	}
	if snap.Active != 1 || len(snap.Sessions) != 1 {
		t.Fatalf("sessions snapshot %+v", snap)
	}
	row := snap.Sessions[0]
	if row.Token != "sess-1" || row.Trace != tr.String() || row.Algo != "alg1" ||
		row.State != "active" || row.Edges != 4096 || row.IngestStalls != 1 {
		t.Fatalf("row %+v", row)
	}
}

func TestHandlerHealthAndReadiness(t *testing.T) {
	h := NewHub(8)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz status %d before drain, want 200", code)
	}
	h.SetReady(false)
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d during drain, want 503", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz status %d during drain — liveness must not flip", code)
	}
	h.SetReady(true)
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz status %d after un-drain, want 200", code)
	}
}
