//go:build !obsoff

package obs

import "testing"

// The package's core contract: once handles exist, emitting is
// allocation-free. Registration (NewHub, Sink, RunObs) may allocate;
// Emit/Count/Inc/Set/Observe/Batch/StateWords must not.
func TestEmitPathsDoNotAllocate(t *testing.T) {
	h := NewHub(1024)
	s := h.Sink(AlgoKK)
	ro := h.RunObs(AlgoKK)
	c := h.Registry().Counter("alloc_probe_total", "probe")
	g := h.Registry().Gauge("alloc_probe", "probe")
	hist := h.Registry().Histogram("alloc_probe_ns", "probe")

	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, n)
		}
	}
	check("Counter.Inc", func() { c.Inc() })
	check("Counter.Add", func() { c.Add(3) })
	check("Gauge.Set", func() { g.Set(7) })
	check("Histogram.Observe", func() { hist.Observe(12345) })
	check("Sink.Emit", func() { s.Emit(KindSetSelected, 1, 2, 3, 4) })
	check("Sink.Emit(wrap)", func() { s.Emit(KindCertWrite, 9, 9, 9, 9) }) // ring is full by now
	check("Sink.Count", func() { s.Count(KindSampleDrop, 10) })
	check("RunObs.Batch", func() { ro.Batch(4096, 1000) })
	check("RunObs.StateWords", func() { ro.StateWords(0, 10, 20) })
	check("RunObs.Covered", func() { ro.Covered(5) })
	check("RunObs.RunDone", func() { ro.RunDone(1000, 500) })

	var ns *Sink
	var nro *RunObs
	check("nil Sink.Emit", func() { ns.Emit(KindPatch, 0, 0, 0, 0) })
	check("nil RunObs.Batch", func() { nro.Batch(1, 1) })
}
