//go:build !obsoff

package obs

import "testing"

// The package's core contract: once handles exist, emitting is
// allocation-free. Registration (NewHub, Sink, RunObs) may allocate;
// Emit/Count/Inc/Set/Observe/Batch/StateWords must not.
func TestEmitPathsDoNotAllocate(t *testing.T) {
	h := NewHub(1024)
	s := h.Sink(AlgoKK)
	ro := h.RunObs(AlgoKK)
	c := h.Registry().Counter("alloc_probe_total", "probe")
	g := h.Registry().Gauge("alloc_probe", "probe")
	hist := h.Registry().Histogram("alloc_probe_ns", "probe")

	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, n)
		}
	}
	check("Counter.Inc", func() { c.Inc() })
	check("Counter.Add", func() { c.Add(3) })
	check("Gauge.Set", func() { g.Set(7) })
	check("Histogram.Observe", func() { hist.Observe(12345) })
	check("Sink.Emit", func() { s.Emit(KindSetSelected, 1, 2, 3, 4) })
	check("Sink.Emit(wrap)", func() { s.Emit(KindCertWrite, 9, 9, 9, 9) }) // ring is full by now
	check("Sink.Count", func() { s.Count(KindSampleDrop, 10) })
	check("RunObs.Batch", func() { ro.Batch(4096, 1000) })
	check("RunObs.StateWords", func() { ro.StateWords(0, 10, 20) })
	check("RunObs.Covered", func() { ro.Covered(5) })
	check("RunObs.RunDone", func() { ro.RunDone(1000, 500) })

	// The serving layer's steady-state paths: per-batch session-slot
	// updates, stall accounting and the frame latency histograms must all
	// be allocation-free once the session is bound.
	so := h.Serve()
	slot := so.AcquireSession("alloc-probe", "kk", NewTraceID(), false, 0)
	if slot == nil {
		t.Fatal("AcquireSession returned nil with obs enabled")
	}
	check("SessionSlot.Batch", func() { slot.Batch(4096, 2) })
	check("SessionSlot.Stall", func() { slot.Stall() })
	check("SessionSlot.Checkpoint", func() { slot.Checkpoint(1 << 16) })
	check("ServeObs.Batch", func() { so.Batch(4096) })
	check("ServeObs.IngestStall", func() { so.IngestStall() })
	check("ServeObs.HelloLatency", func() { so.HelloLatency(1500) })
	check("ServeObs.AckLatency", func() { so.AckLatency(1500) })
	check("ServeObs.ResultLatency", func() { so.ResultLatency(1500) })

	var ns *Sink
	var nro *RunObs
	var nslot *SessionSlot
	var nso *ServeObs
	check("nil Sink.Emit", func() { ns.Emit(KindPatch, 0, 0, 0, 0) })
	check("nil RunObs.Batch", func() { nro.Batch(1, 1) })
	check("nil SessionSlot.Batch", func() { nslot.Batch(1, 1) })
	check("nil ServeObs.HelloLatency", func() { nso.HelloLatency(1) })
	check("nil ServeObs.Event", func() { nso.Event(SessionEvent{}) })
}
