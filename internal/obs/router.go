package obs

// RouterObs instruments the cluster router: ring placements, failovers
// past dead shards, and rejected connections. Nil-safe like every handle
// in this package — a nil receiver ignores every update.
type RouterObs struct {
	placements  *Counter
	failovers   *Counter
	rejects     *Counter
	connsActive *Gauge
}

// NewRouterObs registers the router series on reg.
func NewRouterObs(reg *Registry) *RouterObs {
	if reg == nil {
		return nil
	}
	return &RouterObs{
		placements: reg.Counter("streamcover_router_placements_total",
			"Connections placed on a shard via the consistent-hash ring."),
		failovers: reg.Counter("streamcover_router_failovers_total",
			"Placements that skipped one or more unreachable shards."),
		rejects: reg.Counter("streamcover_router_rejects_total",
			"Connections rejected because no live shard could be dialed."),
		connsActive: reg.Gauge("streamcover_router_conns_active",
			"Client connections currently spliced to a shard."),
	}
}

// Placement records one successful shard placement; failedOver reports
// whether any dead shard had to be skipped to reach it.
func (r *RouterObs) Placement(failedOver bool) {
	if !Enabled || r == nil {
		return
	}
	r.placements.Inc()
	if failedOver {
		r.failovers.Inc()
	}
	r.connsActive.Add(1)
}

// Reject records a connection with no live shard to go to.
func (r *RouterObs) Reject() {
	if !Enabled || r == nil {
		return
	}
	r.rejects.Inc()
}

// SpliceDone records a placed connection ending.
func (r *RouterObs) SpliceDone() {
	if !Enabled || r == nil {
		return
	}
	r.connsActive.Add(-1)
}
