package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingCap is the decision-ring capacity used by NewHub callers that
// have no reason to pick another size (CLIs expose a flag to override it).
const DefaultRingCap = 16384

// Hub owns one observability surface: a metric registry, the shared decision
// ring, and the per-algorithm Sink/RunObs caches. Constructors reach the
// process-global hub through SinkFor/RunObsFor; tests build private hubs and
// attach sinks explicitly.
type Hub struct {
	reg   *Registry
	ring  *Ring
	start time.Time

	// notReady is the inverted readiness flag served by /readyz, so the
	// zero value means "ready" and every existing NewHub caller starts
	// ready. SetReady(false) flips it during drain — the probe the shard
	// router watches. Readiness is operational state, not telemetry: it is
	// NOT gated by obsoff.
	notReady atomic.Bool

	mu       sync.Mutex
	sinks    [numAlgos]*Sink
	runObs   [numAlgos]*RunObs
	prefetch *PrefetchObs
	serve    *ServeObs
	router   *RouterObs
	sessions *SessionTable
}

// NewHub returns a hub with a decision ring of the given capacity
// (ringCap < 1 uses DefaultRingCap).
func NewHub(ringCap int) *Hub {
	if ringCap < 1 {
		ringCap = DefaultRingCap
	}
	return &Hub{
		reg:   NewRegistry(),
		ring:  NewRing(ringCap),
		start: time.Now(),
	}
}

// SetReady flips the hub's readiness, served by /readyz. Nil-safe.
func (h *Hub) SetReady(ready bool) {
	if h == nil {
		return
	}
	h.notReady.Store(!ready)
}

// Ready reports the hub's readiness (a nil hub is not ready).
func (h *Hub) Ready() bool {
	if h == nil {
		return false
	}
	return !h.notReady.Load()
}

// Sessions returns the hub's per-session telemetry table, creating it at
// DefaultSessionCap on first use.
func (h *Hub) Sessions() *SessionTable {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sessions == nil {
		h.sessions = NewSessionTable(DefaultSessionCap)
	}
	return h.sessions
}

// Registry exposes the hub's metric registry for callers that register
// series beyond the built-in Sink/RunObs set.
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Ring exposes the hub's decision ring (for trace export).
func (h *Hub) Ring() *Ring {
	if h == nil {
		return nil
	}
	return h.ring
}

// Sink returns the hub's shared sink for the given algorithm, creating it on
// first use. Sinks are cached per AlgoID so the metric cardinality stays
// fixed no matter how many algorithm instances are constructed.
func (h *Hub) Sink(algo AlgoID) *Sink {
	if h == nil || algo == AlgoUnknown || algo >= numAlgos {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sinks[algo] == nil {
		h.sinks[algo] = newSink(algo, h.reg, h.ring)
	}
	return h.sinks[algo]
}

// RunObs returns the hub's shared run-level handle for the given algorithm,
// creating it on first use.
func (h *Hub) RunObs(algo AlgoID) *RunObs {
	if h == nil || algo == AlgoUnknown || algo >= numAlgos {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.runObs[algo] == nil {
		h.runObs[algo] = newRunObs(algo, h.reg)
	}
	return h.runObs[algo]
}

// Prefetch returns the hub's prefetch-pipeline handle, creating it on first
// use. Like sinks it is a singleton per hub: every Prefetcher in the process
// feeds the same series.
func (h *Hub) Prefetch() *PrefetchObs {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.prefetch == nil {
		h.prefetch = NewPrefetchObs(h.reg)
	}
	return h.prefetch
}

// PrefetchObsFor returns the global hub's prefetch handle, or nil when no
// hub is installed.
func PrefetchObsFor() *PrefetchObs {
	return Global().Prefetch()
}

// Serve returns the hub's serving-layer handle, creating it on first use.
// Like sinks it is a singleton per hub: every session feeds the same
// series.
func (h *Hub) Serve() *ServeObs {
	if h == nil {
		return nil
	}
	sessions := h.Sessions()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.serve == nil {
		h.serve = NewServeObs(h.reg, sessions)
	}
	return h.serve
}

// ServeObsFor returns the global hub's serving handle, or nil when no hub
// is installed.
func ServeObsFor() *ServeObs {
	return Global().Serve()
}

// Router returns the hub's cluster-router handle, creating it on first
// use.
func (h *Hub) Router() *RouterObs {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.router == nil {
		h.router = NewRouterObs(h.reg)
	}
	return h.router
}

// RouterObsFor returns the global hub's router handle, or nil when no hub
// is installed.
func RouterObsFor() *RouterObs {
	return Global().Router()
}

// Snapshot captures the full observability surface.
func (h *Hub) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{TakenAt: time.Now()}
	}
	return Snapshot{
		TakenAt:       time.Now(),
		UptimeSeconds: time.Since(h.start).Seconds(),
		Metrics:       h.reg.Snapshot(),
		Trace: TraceInfo{
			Capacity: h.ring.Capacity(),
			Recorded: h.ring.Recorded(),
			Dropped:  h.ring.Dropped(),
		},
	}
}

// global is the process-wide hub consulted by algorithm constructors.
var global atomic.Pointer[Hub]

// SetGlobal installs h as the process-global hub (nil uninstalls). Under the
// obsoff build tag this is a no-op.
func SetGlobal(h *Hub) {
	if !Enabled {
		return
	}
	global.Store(h)
}

// Global returns the process-global hub, or nil when none is installed.
func Global() *Hub {
	if !Enabled {
		return nil
	}
	return global.Load()
}

// SinkFor returns the global hub's sink for algo, or nil when no hub is
// installed. Algorithm constructors call this so instrumentation follows a
// single CLI-level opt-in.
func SinkFor(algo AlgoID) *Sink {
	return Global().Sink(algo)
}

// RunObsFor returns the global hub's run-level handle for algo, or nil when
// no hub is installed.
func RunObsFor(algo AlgoID) *RunObs {
	return Global().RunObs(algo)
}

// Identified is implemented by algorithms that know their AlgoID; the stream
// driver uses it to label run metrics without import cycles.
type Identified interface {
	ObsAlgo() AlgoID
}

// AlgoOf returns the AlgoID of v if it implements Identified, else
// AlgoUnknown.
func AlgoOf(v any) AlgoID {
	if id, ok := v.(Identified); ok {
		return id.ObsAlgo()
	}
	return AlgoUnknown
}
