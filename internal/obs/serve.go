package obs

import (
	"io"
	"sync/atomic"
)

// ServeObs instruments the network serving layer (internal/serve): session
// lifecycle counts, ingested traffic, ring backpressure stalls, and the
// checkpoint/resume cycle behind disconnect tolerance. Like Sink/RunObs it
// is nil-safe — a nil receiver ignores every update — so sessions carry one
// pointer and the hot ingest path pays only an inlined nil check.
//
// Reading the stalls: an ingest stall means a connection reader blocked
// because its session ring was full — the algorithm is the bottleneck and
// backpressure is propagating to the client through TCP, which is the
// intended behavior, not an error.
type ServeObs struct {
	sessionsActive  *Gauge
	sessionsTotal   *Counter
	resumesTotal    *Counter
	adoptionsTotal  *Counter
	adoptionNs      *Histogram
	batches         *Counter
	edges           *Counter
	ingestStalls    *Counter
	checkpoints     *Counter
	checkpointBytes *Histogram
	batchEdges      *Histogram

	// Frame-level latency for the three request/reply pairs of SCWIRE1.
	helloNs  *Histogram
	ackNs    *Histogram
	resultNs *Histogram

	// Checkpoint-store traffic: one put per detach, one get per resume,
	// whatever the backend. Latency histograms catch a slow store (the
	// durable backend fsyncs on the detach path); byte counters size the
	// checkpoint traffic a cluster store would replicate.
	storePutNs    *Histogram
	storeGetNs    *Histogram
	storePutBytes *Counter
	storeGetBytes *Counter

	// sessions is the hub's per-session telemetry table; events is the
	// wide-event lifecycle log (off until SetEventWriter installs one).
	sessions *SessionTable
	events   atomic.Pointer[WideEventLog]
}

// NewServeObs registers the serving series on reg. sessions may be nil
// (per-session telemetry off; the aggregate series still work).
func NewServeObs(reg *Registry, sessions *SessionTable) *ServeObs {
	if reg == nil {
		return nil
	}
	return &ServeObs{
		sessions: sessions,
		sessionsActive: reg.Gauge("streamcover_serve_sessions_active",
			"Sessions currently attached to a connection."),
		sessionsTotal: reg.Counter("streamcover_serve_sessions_total",
			"Sessions ever opened (hello frames accepted)."),
		resumesTotal: reg.Counter("streamcover_serve_resumes_total",
			"Sessions resumed from a checkpoint after a disconnect."),
		adoptionsTotal: reg.Counter("streamcover_serve_adoptions_total",
			"Resumes that adopted a checkpoint written by another shard."),
		adoptionNs: reg.Histogram("streamcover_serve_adoption_ns",
			"Cross-shard adoption latency, nanoseconds (store Get + checkpoint restore)."),
		batches: reg.Counter("streamcover_serve_batches_total",
			"Edge batches ingested over the wire."),
		edges: reg.Counter("streamcover_serve_edges_total",
			"Edges ingested over the wire."),
		ingestStalls: reg.Counter("streamcover_serve_ingest_stalls_total",
			"Times a connection reader blocked on a full session ring (backpressure)."),
		checkpoints: reg.Counter("streamcover_serve_checkpoints_total",
			"Detach checkpoints persisted for disconnected sessions."),
		checkpointBytes: reg.Histogram("streamcover_serve_checkpoint_bytes",
			"Size of each persisted detach checkpoint, in bytes."),
		batchEdges: reg.Histogram("streamcover_serve_batch_edges",
			"Edges per ingested wire batch."),
		helloNs: reg.Histogram("streamcover_serve_hello_ns",
			"hello|resume -> helloAck latency, nanoseconds (session open/rebuild cost)."),
		ackNs: reg.Histogram("streamcover_serve_ack_ns",
			"flush|detach -> posAck latency, nanoseconds (queue-drain cost when edges are acked)."),
		resultNs: reg.Histogram("streamcover_serve_result_ns",
			"finish -> result latency, nanoseconds (drain + Finish + result framing)."),
		storePutNs: reg.Histogram("streamcover_serve_store_put_ns",
			"Checkpoint-store Put latency, nanoseconds (one per detach)."),
		storeGetNs: reg.Histogram("streamcover_serve_store_get_ns",
			"Checkpoint-store Get latency, nanoseconds (one per resume)."),
		storePutBytes: reg.Counter("streamcover_serve_store_put_bytes_total",
			"Checkpoint bytes written to the store."),
		storeGetBytes: reg.Counter("streamcover_serve_store_get_bytes_total",
			"Checkpoint bytes read from the store."),
	}
}

// Sessions exposes the per-session telemetry table (nil when disabled).
func (s *ServeObs) Sessions() *SessionTable {
	if s == nil {
		return nil
	}
	return s.sessions
}

// SetEventWriter installs w as the wide-event destination (nil turns the
// log off). Safe to call at any time; emission picks the writer up
// atomically.
func (s *ServeObs) SetEventWriter(w io.Writer) {
	if !Enabled || s == nil {
		return
	}
	s.events.Store(NewWideEventLog(w))
}

// Eventing reports whether Event would do anything at all, so callers can
// skip building the event — and the trace-ID hex rendering inside it — on
// the nil/compiled-out fast path.
func (s *ServeObs) Eventing() bool {
	return Enabled && s != nil
}

// Event emits one session lifecycle wide event (no-op until SetEventWriter
// installs a destination).
func (s *ServeObs) Event(ev SessionEvent) {
	if !Enabled || s == nil {
		return
	}
	s.events.Load().Emit(ev)
}

// AcquireSession binds a session-table slot (nil-safe at every layer; the
// returned handle is nil when per-session telemetry is off).
func (s *ServeObs) AcquireSession(token, algo string, trace TraceID, resumed bool, startEdges int64) *SessionSlot {
	if !Enabled || s == nil {
		return nil
	}
	return s.sessions.Acquire(token, algo, trace, resumed, startEdges)
}

// HelloLatency records one hello|resume -> helloAck round trip.
func (s *ServeObs) HelloLatency(ns int64) {
	if !Enabled || s == nil {
		return
	}
	s.helloNs.Observe(ns)
}

// AckLatency records one flush|detach -> posAck round trip.
func (s *ServeObs) AckLatency(ns int64) {
	if !Enabled || s == nil {
		return
	}
	s.ackNs.Observe(ns)
}

// ResultLatency records one finish -> result round trip.
func (s *ServeObs) ResultLatency(ns int64) {
	if !Enabled || s == nil {
		return
	}
	s.resultNs.Observe(ns)
}

// SessionOpened records a new session (resumed reports whether it was
// restored from a checkpoint rather than started fresh).
func (s *ServeObs) SessionOpened(resumed bool) {
	if !Enabled || s == nil {
		return
	}
	s.sessionsActive.Add(1)
	s.sessionsTotal.Inc()
	if resumed {
		s.resumesTotal.Inc()
	}
}

// SessionClosed records a session leaving the attached state (finish or
// detach).
func (s *ServeObs) SessionClosed() {
	if !Enabled || s == nil {
		return
	}
	s.sessionsActive.Add(-1)
}

// Adoption records one cross-shard checkpoint adoption: a resume restoring
// a checkpoint this process never wrote, ns covering store fetch plus
// restore.
func (s *ServeObs) Adoption(ns int64) {
	if !Enabled || s == nil {
		return
	}
	s.adoptionsTotal.Inc()
	s.adoptionNs.Observe(ns)
}

// Batch records one ingested edge batch.
func (s *ServeObs) Batch(edges int) {
	if !Enabled || s == nil {
		return
	}
	s.batches.Inc()
	s.edges.Add(int64(edges))
	s.batchEdges.Observe(int64(edges))
}

// IngestStall records a connection reader blocking on a full ring.
func (s *ServeObs) IngestStall() {
	if !Enabled || s == nil {
		return
	}
	s.ingestStalls.Inc()
}

// StorePut records one checkpoint-store Put of the given size and
// duration.
func (s *ServeObs) StorePut(bytes int, ns int64) {
	if !Enabled || s == nil {
		return
	}
	s.storePutNs.Observe(ns)
	s.storePutBytes.Add(int64(bytes))
}

// StoreGet records one checkpoint-store Get of the given size and
// duration.
func (s *ServeObs) StoreGet(bytes int, ns int64) {
	if !Enabled || s == nil {
		return
	}
	s.storeGetNs.Observe(ns)
	s.storeGetBytes.Add(int64(bytes))
}

// Checkpoint records one persisted detach checkpoint.
func (s *ServeObs) Checkpoint(bytes int) {
	if !Enabled || s == nil {
		return
	}
	s.checkpoints.Inc()
	s.checkpointBytes.Observe(int64(bytes))
}
