package obs

// ServeObs instruments the network serving layer (internal/serve): session
// lifecycle counts, ingested traffic, ring backpressure stalls, and the
// checkpoint/resume cycle behind disconnect tolerance. Like Sink/RunObs it
// is nil-safe — a nil receiver ignores every update — so sessions carry one
// pointer and the hot ingest path pays only an inlined nil check.
//
// Reading the stalls: an ingest stall means a connection reader blocked
// because its session ring was full — the algorithm is the bottleneck and
// backpressure is propagating to the client through TCP, which is the
// intended behavior, not an error.
type ServeObs struct {
	sessionsActive  *Gauge
	sessionsTotal   *Counter
	resumesTotal    *Counter
	batches         *Counter
	edges           *Counter
	ingestStalls    *Counter
	checkpoints     *Counter
	checkpointBytes *Histogram
	batchEdges      *Histogram
}

// NewServeObs registers the serving series on reg.
func NewServeObs(reg *Registry) *ServeObs {
	if reg == nil {
		return nil
	}
	return &ServeObs{
		sessionsActive: reg.Gauge("streamcover_serve_sessions_active",
			"Sessions currently attached to a connection."),
		sessionsTotal: reg.Counter("streamcover_serve_sessions_total",
			"Sessions ever opened (hello frames accepted)."),
		resumesTotal: reg.Counter("streamcover_serve_resumes_total",
			"Sessions resumed from a checkpoint after a disconnect."),
		batches: reg.Counter("streamcover_serve_batches_total",
			"Edge batches ingested over the wire."),
		edges: reg.Counter("streamcover_serve_edges_total",
			"Edges ingested over the wire."),
		ingestStalls: reg.Counter("streamcover_serve_ingest_stalls_total",
			"Times a connection reader blocked on a full session ring (backpressure)."),
		checkpoints: reg.Counter("streamcover_serve_checkpoints_total",
			"Detach checkpoints persisted for disconnected sessions."),
		checkpointBytes: reg.Histogram("streamcover_serve_checkpoint_bytes",
			"Size of each persisted detach checkpoint, in bytes."),
		batchEdges: reg.Histogram("streamcover_serve_batch_edges",
			"Edges per ingested wire batch."),
	}
}

// SessionOpened records a new session (resumed reports whether it was
// restored from a checkpoint rather than started fresh).
func (s *ServeObs) SessionOpened(resumed bool) {
	if !Enabled || s == nil {
		return
	}
	s.sessionsActive.Add(1)
	s.sessionsTotal.Inc()
	if resumed {
		s.resumesTotal.Inc()
	}
}

// SessionClosed records a session leaving the attached state (finish or
// detach).
func (s *ServeObs) SessionClosed() {
	if !Enabled || s == nil {
		return
	}
	s.sessionsActive.Add(-1)
}

// Batch records one ingested edge batch.
func (s *ServeObs) Batch(edges int) {
	if !Enabled || s == nil {
		return
	}
	s.batches.Inc()
	s.edges.Add(int64(edges))
	s.batchEdges.Observe(int64(edges))
}

// IngestStall records a connection reader blocking on a full ring.
func (s *ServeObs) IngestStall() {
	if !Enabled || s == nil {
		return
	}
	s.ingestStalls.Inc()
}

// Checkpoint records one persisted detach checkpoint.
func (s *ServeObs) Checkpoint(bytes int) {
	if !Enabled || s == nil {
		return
	}
	s.checkpoints.Inc()
	s.checkpointBytes.Observe(int64(bytes))
}
