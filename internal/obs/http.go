package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// publishExpvar registers the "streamcover" expvar exactly once per process
// (the expvar package forbids re-publishing a name). The published Func
// reads expvarHub — the hub that most recently built a Handler — at call
// time, falling back to the global hub, so /debug/vars reflects the hub
// actually serving the surface rather than unconditionally reading
// Global(). Last Handler wins when several hubs build handlers in one
// process; tests that build private hubs see their own snapshot.
var (
	publishExpvar sync.Once
	expvarHub     atomic.Pointer[Hub]
)

// Handler returns the hub's HTTP surface:
//
//	/            index listing the endpoints
//	/metrics     Prometheus text exposition of every registered series
//	/snapshot    the full Snapshot as JSON
//	/sessions    live per-session telemetry table (JSON)
//	/healthz     process liveness (always 200 while serving)
//	/readyz      readiness: 200, or 503 after SetReady(false) (drain)
//	/debug/vars  expvar JSON (includes the "streamcover" snapshot var)
//	/debug/pprof net/http/pprof profiles
//
// The handlers are mounted on a private mux (not http.DefaultServeMux) so a
// library user can place them under any server without inheriting globally
// registered debug handlers.
func (h *Hub) Handler() http.Handler {
	expvarHub.Store(h)
	publishExpvar.Do(func() {
		expvar.Publish("streamcover", expvar.Func(func() any {
			hub := expvarHub.Load()
			if hub == nil {
				hub = Global()
			}
			return hub.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "streamcover observability\n\n"+
			"  /metrics      Prometheus text exposition\n"+
			"  /snapshot     full snapshot (JSON)\n"+
			"  /sessions     live per-session telemetry (JSON)\n"+
			"  /healthz      liveness probe\n"+
			"  /readyz       readiness probe (503 while draining)\n"+
			"  /debug/vars   expvar JSON\n"+
			"  /debug/pprof  live profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, h.reg.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Snapshot())
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Sessions().Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
