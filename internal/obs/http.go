package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishExpvar registers the "streamcover" expvar exactly once per process.
// The published Func reads the global hub at call time, so /debug/vars always
// reflects whichever hub is currently installed.
var publishExpvar sync.Once

// Handler returns the hub's HTTP surface:
//
//	/            index listing the endpoints
//	/metrics     Prometheus text exposition of every registered series
//	/snapshot    the full Snapshot as JSON
//	/debug/vars  expvar JSON (includes the "streamcover" snapshot var)
//	/debug/pprof net/http/pprof profiles
//
// The handlers are mounted on a private mux (not http.DefaultServeMux) so a
// library user can place them under any server without inheriting globally
// registered debug handlers.
func (h *Hub) Handler() http.Handler {
	publishExpvar.Do(func() {
		expvar.Publish("streamcover", expvar.Func(func() any {
			return Global().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "streamcover observability\n\n"+
			"  /metrics      Prometheus text exposition\n"+
			"  /snapshot     full snapshot (JSON)\n"+
			"  /debug/vars   expvar JSON\n"+
			"  /debug/pprof  live profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, h.reg.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
