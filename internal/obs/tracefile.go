package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// SCTRACE1 binary layout (all integers little-endian):
//
//	magic   8 bytes  "SCTRACE1"
//	count   u64      number of records
//	records count × 48 bytes:
//	          seq u64 | pos i64 | a i64 | b i64 | c i64 | algo u8 | kind u8 | pad[6]
//	crc     u32      IEEE CRC-32 of everything before it (magic..records)
//
// cmd/sctrace -decisions reads this back into CSV.

const traceMagic = "SCTRACE1"

const traceRecordSize = 48

// WriteTrace serializes events to w in the SCTRACE1 format.
func WriteTrace(w io.Writer, events []Event) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var rec [traceRecordSize]byte
	binary.LittleEndian.PutUint64(rec[:8], uint64(len(events)))
	if _, err := bw.Write(rec[:8]); err != nil {
		return err
	}
	for _, e := range events {
		binary.LittleEndian.PutUint64(rec[0:], e.Seq)
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.Pos))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.A))
		binary.LittleEndian.PutUint64(rec[24:], uint64(e.B))
		binary.LittleEndian.PutUint64(rec[32:], uint64(e.C))
		rec[40] = byte(e.Algo)
		rec[41] = byte(e.Kind)
		rec[42], rec[43], rec[44], rec[45], rec[46], rec[47] = 0, 0, 0, 0, 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	// The CRC covers everything buffered so far; flush into the hasher before
	// reading its sum, then append the trailer directly.
	if err := bw.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// ReadTrace parses an SCTRACE1 stream, verifying magic and checksum.
func ReadTrace(r io.Reader) ([]Event, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	// Header and records are teed into the hasher; the trailer is read from
	// br directly so it stays outside its own checksum.
	tr := io.TeeReader(br, crc)

	var head [8 + 8]byte
	if _, err := io.ReadFull(tr, head[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:8]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", head[:8], traceMagic)
	}
	count := binary.LittleEndian.Uint64(head[8:])
	const maxRecords = 1 << 28 // 12 GiB of records; anything past this is corrupt
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	events := make([]Event, 0, count)
	var rec [traceRecordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(tr, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: short record %d/%d: %w", i, count, err)
		}
		events = append(events, Event{
			Seq:  binary.LittleEndian.Uint64(rec[0:]),
			Pos:  int64(binary.LittleEndian.Uint64(rec[8:])),
			A:    int64(binary.LittleEndian.Uint64(rec[16:])),
			B:    int64(binary.LittleEndian.Uint64(rec[24:])),
			C:    int64(binary.LittleEndian.Uint64(rec[32:])),
			Algo: AlgoID(rec[40]),
			Kind: Kind(rec[41]),
		})
	}
	sum := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("trace: missing checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != sum {
		return nil, fmt.Errorf("trace: checksum mismatch: file %08x, computed %08x", got, sum)
	}
	return events, nil
}

// WriteTraceFile dumps the ring's retained events to path.
func WriteTraceFile(path string, ring *Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, ring.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile parses the SCTRACE1 file at path.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
