package obs

// PrefetchObs instruments the stream prefetcher: how many batches/edges the
// decode goroutine produced, how long each batch took to decode, how full
// the ring was when the consumer fetched, and how often either side stalled
// waiting for the other. Like Sink/RunObs it is nil-safe — a nil receiver
// ignores every update — so the prefetcher carries one pointer and no
// branches beyond the nil check the calls inline.
//
// Reading the stalls: a consumer stall means the algorithm outran the
// decoder (the pipeline is decode-bound); a producer stall means the ring
// was full when the decoder finished a batch (compute-bound — the healthy
// state, decode is free). Ring occupancy near the ring depth tells the same
// story from the buffer's point of view.
type PrefetchObs struct {
	batches        *Counter
	edges          *Counter
	consumerStalls *Counter
	producerStalls *Counter
	occupancy      *Histogram
	decodeNS       *Histogram
}

// NewPrefetchObs registers the prefetch series on reg.
func NewPrefetchObs(reg *Registry) *PrefetchObs {
	if reg == nil {
		return nil
	}
	return &PrefetchObs{
		batches: reg.Counter("streamcover_prefetch_batches_total",
			"Batches decoded by the stream prefetcher's background goroutine."),
		edges: reg.Counter("streamcover_prefetch_edges_total",
			"Edges decoded by the stream prefetcher's background goroutine."),
		consumerStalls: reg.Counter("streamcover_prefetch_stalls_total",
			"Times one side of the prefetch pipeline blocked on the other.",
			Label{"side", "consumer"}),
		producerStalls: reg.Counter("streamcover_prefetch_stalls_total",
			"Times one side of the prefetch pipeline blocked on the other.",
			Label{"side", "producer"}),
		occupancy: reg.Histogram("streamcover_prefetch_ring_occupancy",
			"Filled ring slots observed at each consumer fetch."),
		decodeNS: reg.Histogram("streamcover_prefetch_decode_ns",
			"Wall time to decode one prefetch batch, in nanoseconds."),
	}
}

// Decode records one produced batch.
func (p *PrefetchObs) Decode(edges int, ns int64) {
	if !Enabled || p == nil {
		return
	}
	p.batches.Inc()
	p.edges.Add(int64(edges))
	p.decodeNS.Observe(ns)
}

// ConsumerStall records the consumer blocking on an empty ring.
func (p *PrefetchObs) ConsumerStall() {
	if !Enabled || p == nil {
		return
	}
	p.consumerStalls.Inc()
}

// ProducerStall records the decoder blocking on a full ring.
func (p *PrefetchObs) ProducerStall() {
	if !Enabled || p == nil {
		return
	}
	p.producerStalls.Inc()
}

// Occupancy records how many filled slots were queued at a consumer fetch.
func (p *PrefetchObs) Occupancy(n int64) {
	if !Enabled || p == nil {
		return
	}
	p.occupancy.Observe(n)
}
