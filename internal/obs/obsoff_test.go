//go:build obsoff

package obs

import "testing"

// TestCompiledOut pins the obsoff contract: every emit path is a no-op and
// the global hub can never be installed, so instrumented code runs with the
// layer fully compiled out.
func TestCompiledOut(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false under the obsoff tag")
	}
	hub := NewHub(4)
	SetGlobal(hub)
	if Global() != nil {
		t.Fatal("SetGlobal must be a no-op under obsoff")
	}

	sink := hub.Sink(AlgoKK)
	sink.Emit(KindSetSelected, 1, 2, 3, 4)
	sink.Count(KindPatch, 7)
	if got := sink.EventCount(KindSetSelected); got != 0 {
		t.Fatalf("Emit recorded %d events despite obsoff", got)
	}
	if got := hub.Ring().Recorded(); got != 0 {
		t.Fatalf("ring recorded %d events despite obsoff", got)
	}

	ro := hub.RunObs(AlgoKK)
	ro.Batch(100, 1000)
	ro.RunDone(100, 1000)
	if got := ro.EdgesProcessed(); got != 0 {
		t.Fatalf("RunObs counted %d edges despite obsoff", got)
	}

	// The session telemetry surface is compiled out too: no slot is ever
	// bound, updates land nowhere, wide events are swallowed.
	so := hub.Serve()
	if slot := so.AcquireSession("t", "kk", NewTraceID(), false, 0); slot != nil {
		t.Fatal("AcquireSession bound a slot despite obsoff")
	}
	so.HelloLatency(10)
	so.Event(SessionEvent{Event: EventSessionOpen, Token: "t"})
	if got := hub.Sessions().Snapshot(); len(got.Sessions) != 0 || got.SessionsTotal != 0 {
		t.Fatalf("session table recorded %+v despite obsoff", got)
	}

	// Trace IDs are identity, not telemetry: minting and parsing must keep
	// working with the layer compiled out (the wire and checkpoint formats
	// cannot depend on the build configuration).
	tr := NewTraceID()
	if tr.IsZero() {
		t.Fatal("NewTraceID returned the zero ID under obsoff")
	}
	if back, err := ParseTraceID(tr.String()); err != nil || back != tr {
		t.Fatalf("trace round trip broke under obsoff: %v %v", back, err)
	}

	// Readiness is operational state, not telemetry: /readyz semantics hold
	// under obsoff too.
	if !hub.Ready() {
		t.Fatal("fresh hub not ready")
	}
	hub.SetReady(false)
	if hub.Ready() {
		t.Fatal("SetReady(false) ignored under obsoff")
	}
}
