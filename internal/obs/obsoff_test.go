//go:build obsoff

package obs

import "testing"

// TestCompiledOut pins the obsoff contract: every emit path is a no-op and
// the global hub can never be installed, so instrumented code runs with the
// layer fully compiled out.
func TestCompiledOut(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false under the obsoff tag")
	}
	hub := NewHub(4)
	SetGlobal(hub)
	if Global() != nil {
		t.Fatal("SetGlobal must be a no-op under obsoff")
	}

	sink := hub.Sink(AlgoKK)
	sink.Emit(KindSetSelected, 1, 2, 3, 4)
	sink.Count(KindPatch, 7)
	if got := sink.EventCount(KindSetSelected); got != 0 {
		t.Fatalf("Emit recorded %d events despite obsoff", got)
	}
	if got := hub.Ring().Recorded(); got != 0 {
		t.Fatalf("ring recorded %d events despite obsoff", got)
	}

	ro := hub.RunObs(AlgoKK)
	ro.Batch(100, 1000)
	ro.RunDone(100, 1000)
	if got := ro.EdgesProcessed(); got != 0 {
		t.Fatalf("RunObs counted %d edges despite obsoff", got)
	}
}
