package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSessionCap is the session-table capacity used when the hub's
// creator has no reason to pick another size. At ~200 bytes per slot the
// default costs ~200 KiB — negligible next to the sessions themselves.
const DefaultSessionCap = 1024

// SessionState is a session's lifecycle position as the telemetry layer
// sees it. States only ever move forward within one occupancy of a slot;
// a resume binds a fresh occupancy (same trace ID) in StateActive.
type SessionState uint32

const (
	// StateIdle marks a free slot; it never appears in snapshots.
	StateIdle SessionState = iota
	// StateActive is an attached session processing edges.
	StateActive
	// StateDetached is a parked session whose checkpoint is durable; it may
	// be adopted by a resume (possibly on another shard).
	StateDetached
	// StateFinished is a completed session (result delivered).
	StateFinished
	// StateFailed is a session retired by a protocol or algorithm error.
	StateFailed
)

var stateNames = [...]string{
	StateIdle:     "idle",
	StateActive:   "active",
	StateDetached: "detached",
	StateFinished: "finished",
	StateFailed:   "failed",
}

func (s SessionState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// sessSlot is one fixed slot of the table. Metadata (token, algo, trace,
// opened time) is written under the table lock at bind time; the per-batch
// counters are plain atomics so the ingest hot path never takes a lock or
// allocates — the same discipline as the decision ring and the fixed-slot
// metrics.
type sessSlot struct {
	gen atomic.Uint64 // occupancy generation; bumped at every bind

	// Bind-time metadata, guarded by SessionTable.mu.
	token    string
	algo     string
	trace    TraceID
	resumed  bool
	openedNs int64

	// Hot counters, atomically updated through SessionSlot handles.
	state     atomic.Uint32
	edges     atomic.Int64
	batches   atomic.Int64
	stalls    atomic.Int64
	ringOcc   atomic.Int64
	ckptBytes atomic.Int64
	lastNs    atomic.Int64
}

// SessionTable is the hub's fixed-size per-session telemetry surface:
// Acquire binds a slot at session open/resume (lock + a small handle
// allocation — the session-open path, not the hot path), per-batch updates
// go through the returned SessionSlot handle with three or four atomic
// stores and zero allocations, and Snapshot renders the live table for
// /sessions and scstat.
//
// Retired sessions (finished, failed, detached) keep their slot — and stay
// visible in snapshots — until capacity pressure reuses it, preferring free
// and retired slots over live ones. When every slot is active the oldest
// active session is evicted from the table (counted in EvictedActive); the
// session itself is unaffected, it merely stops being observable.
type SessionTable struct {
	mu    sync.Mutex
	slots []sessSlot

	evictedActive atomic.Int64
	binds         atomic.Int64
}

// NewSessionTable returns a table with the given slot capacity
// (cap < 1 uses DefaultSessionCap).
func NewSessionTable(cap int) *SessionTable {
	if cap < 1 {
		cap = DefaultSessionCap
	}
	return &SessionTable{slots: make([]sessSlot, cap)}
}

// SessionSlot is the handle a session holds into its table slot. It is
// nil-safe — a nil handle ignores every update — and generation-checked, so
// a handle left over from an evicted occupancy can never corrupt the slot's
// next tenant.
type SessionSlot struct {
	t   *SessionTable
	idx int
	gen uint64
}

// Acquire binds a slot for a session and returns its handle. startEdges
// seeds the edge counter (the checkpoint position, for resumed sessions) so
// a session's edge count is cumulative across its whole identity. A resume
// whose trace ID matches a detached slot rebinds that slot in place, so the
// session appears as one row across its disconnect.
func (t *SessionTable) Acquire(token, algo string, trace TraceID, resumed bool, startEdges int64) *SessionSlot {
	if !Enabled || t == nil {
		return nil
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := t.pick(trace)
	s := &t.slots[idx]
	gen := s.gen.Add(1)
	s.token, s.algo, s.trace, s.resumed = token, algo, trace, resumed
	s.openedNs = now
	s.state.Store(uint32(StateActive))
	s.edges.Store(startEdges)
	s.batches.Store(0)
	s.stalls.Store(0)
	s.ringOcc.Store(0)
	s.ckptBytes.Store(0)
	s.lastNs.Store(now)
	t.binds.Add(1)
	return &SessionSlot{t: t, idx: idx, gen: gen}
}

// pick chooses the slot to bind, under t.mu: a detached slot with the same
// trace (resume continuity), else a free slot, else the oldest retired
// slot, else the oldest active one (evicting it).
func (t *SessionTable) pick(trace TraceID) int {
	freeIdx, retiredIdx, activeIdx := -1, -1, -1
	var retiredNs, activeNs int64
	for i := range t.slots {
		s := &t.slots[i]
		switch SessionState(s.state.Load()) {
		case StateIdle:
			if freeIdx < 0 {
				freeIdx = i
			}
		case StateDetached:
			if !trace.IsZero() && s.trace == trace {
				return i
			}
			if retiredIdx < 0 || s.openedNs < retiredNs {
				retiredIdx, retiredNs = i, s.openedNs
			}
		case StateFinished, StateFailed:
			if retiredIdx < 0 || s.openedNs < retiredNs {
				retiredIdx, retiredNs = i, s.openedNs
			}
		case StateActive:
			if activeIdx < 0 || s.openedNs < activeNs {
				activeIdx, activeNs = i, s.openedNs
			}
		}
	}
	switch {
	case freeIdx >= 0:
		return freeIdx
	case retiredIdx >= 0:
		return retiredIdx
	default:
		t.evictedActive.Add(1)
		return activeIdx
	}
}

// slot resolves the handle against the current occupancy, or nil when the
// slot has been rebound since the handle was issued.
func (h *SessionSlot) slot() *sessSlot {
	if !Enabled || h == nil {
		return nil
	}
	s := &h.t.slots[h.idx]
	if s.gen.Load() != h.gen {
		return nil
	}
	return s
}

// Batch records one ingested edge batch and the ring occupancy observed
// right after it was queued. Three atomic adds and two atomic stores; no
// locks, no allocation.
func (h *SessionSlot) Batch(edges, ringOccupancy int) {
	s := h.slot()
	if s == nil {
		return
	}
	s.edges.Add(int64(edges))
	s.batches.Add(1)
	s.ringOcc.Store(int64(ringOccupancy))
	s.lastNs.Store(time.Now().UnixNano())
}

// Stall records the session's connection reader blocking on a full ring.
func (h *SessionSlot) Stall() {
	s := h.slot()
	if s == nil {
		return
	}
	s.stalls.Add(1)
}

// Checkpoint records the size of the session's latest durable checkpoint.
func (h *SessionSlot) Checkpoint(bytes int64) {
	s := h.slot()
	if s == nil {
		return
	}
	s.ckptBytes.Store(bytes)
	s.lastNs.Store(time.Now().UnixNano())
}

// SetState moves the session's lifecycle state (detached, finished,
// failed). The slot stays visible in snapshots until reused.
func (h *SessionSlot) SetState(st SessionState) {
	s := h.slot()
	if s == nil {
		return
	}
	s.state.Store(uint32(st))
	s.lastNs.Store(time.Now().UnixNano())
}

// Stalls reads the session's stall count (wide-event emission reads the
// counters back at lifecycle transitions).
func (h *SessionSlot) Stalls() int64 {
	s := h.slot()
	if s == nil {
		return 0
	}
	return s.stalls.Load()
}

// Edges reads the session's cumulative edge count.
func (h *SessionSlot) Edges() int64 {
	s := h.slot()
	if s == nil {
		return 0
	}
	return s.edges.Load()
}

// SessionInfo is one row of the /sessions surface: everything scstat needs
// to render a session without a second request.
type SessionInfo struct {
	Token   string `json:"token"`
	Trace   string `json:"trace"`
	Algo    string `json:"algo"`
	State   string `json:"state"`
	Resumed bool   `json:"resumed,omitempty"`

	Edges           int64 `json:"edges"`
	Batches         int64 `json:"batches"`
	IngestStalls    int64 `json:"ingest_stalls"`
	RingOccupancy   int64 `json:"ring_occupancy"`
	CheckpointBytes int64 `json:"checkpoint_bytes,omitempty"`

	OpenedUnixNs       int64 `json:"opened_unix_ns"`
	LastActivityUnixNs int64 `json:"last_activity_unix_ns"`

	// AgeSeconds and IdleSeconds are derived at snapshot time; EdgesPerSec
	// is the lifetime average rate (pollers derive instantaneous rates by
	// diffing successive snapshots on Edges).
	AgeSeconds  float64 `json:"age_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
	EdgesPerSec float64 `json:"edges_per_sec"`
}

// SessionsSnapshot is the full /sessions payload.
type SessionsSnapshot struct {
	TakenAtUnixNs int64 `json:"taken_at_unix_ns"`
	Capacity      int   `json:"capacity"`
	Active        int   `json:"active"`
	// SessionsTotal counts slot binds (opens + resumes) over the process
	// lifetime; EvictedActive counts live sessions pushed out of the table
	// by capacity pressure (the sessions themselves are unaffected).
	SessionsTotal int64         `json:"sessions_total"`
	EvictedActive int64         `json:"evicted_active"`
	Sessions      []SessionInfo `json:"sessions"`
}

// Snapshot renders every occupied slot, newest-opened first. It allocates;
// it is an export-path call, never a hot-path one.
func (t *SessionTable) Snapshot() SessionsSnapshot {
	now := time.Now().UnixNano()
	snap := SessionsSnapshot{TakenAtUnixNs: now}
	if t == nil {
		return snap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap.Capacity = len(t.slots)
	snap.SessionsTotal = t.binds.Load()
	snap.EvictedActive = t.evictedActive.Load()
	for i := range t.slots {
		s := &t.slots[i]
		st := SessionState(s.state.Load())
		if st == StateIdle {
			continue
		}
		if st == StateActive {
			snap.Active++
		}
		info := SessionInfo{
			Token:              s.token,
			Trace:              s.trace.String(),
			Algo:               s.algo,
			State:              st.String(),
			Resumed:            s.resumed,
			Edges:              s.edges.Load(),
			Batches:            s.batches.Load(),
			IngestStalls:       s.stalls.Load(),
			RingOccupancy:      s.ringOcc.Load(),
			CheckpointBytes:    s.ckptBytes.Load(),
			OpenedUnixNs:       s.openedNs,
			LastActivityUnixNs: s.lastNs.Load(),
		}
		info.AgeSeconds = float64(now-info.OpenedUnixNs) / 1e9
		info.IdleSeconds = float64(now-info.LastActivityUnixNs) / 1e9
		if info.AgeSeconds > 0 {
			info.EdgesPerSec = float64(info.Edges) / info.AgeSeconds
		}
		snap.Sessions = append(snap.Sessions, info)
	}
	sortSessions(snap.Sessions)
	return snap
}

// sortSessions orders rows newest-opened first, ties broken by token so
// snapshots are deterministic for a fixed table state.
func sortSessions(rows []SessionInfo) {
	// Insertion sort: tables are small (≤ capacity) and mostly ordered.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0; j-- {
			a, b := &rows[j-1], &rows[j]
			if a.OpenedUnixNs > b.OpenedUnixNs ||
				(a.OpenedUnixNs == b.OpenedUnixNs && a.Token <= b.Token) {
				break
			}
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
}
