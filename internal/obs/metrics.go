package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to a metric at registration
// time. Labels are fixed for the lifetime of the metric — there is no
// dynamic label lookup on the update path, which is what keeps updates
// allocation-free.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing fixed-slot metric. The zero value is
// usable but unregistered; obtain registered counters from a Registry. All
// methods are safe for concurrent use and nil-safe (a nil Counter ignores
// updates and reads as 0).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if !Enabled || c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if !Enabled || c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a fixed-slot instantaneous value. Same slot discipline and
// nil-safety as Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !Enabled || g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d to the current value.
func (g *Gauge) Add(d int64) {
	if !Enabled || g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every Histogram: upper bounds
// 2^0 .. 2^(histBuckets-2) plus a final +Inf bucket. 48 buckets cover one
// nanosecond to ~39 hours, which spans every duration the harness times.
const histBuckets = 48

// Histogram is a fixed-slot histogram with power-of-two bucket boundaries:
// an observation v lands in the bucket with the smallest upper bound
// 2^i ≥ v (v ≤ 1 lands in bucket 0, v > 2^46 in the +Inf bucket). Observing
// is three atomic adds; no allocation, safe for concurrent use, nil-safe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf returns the bucket index for v: the smallest i with v ≤ 2^i,
// clamped to the +Inf bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if b > histBuckets-1 {
		return histBuckets - 1
	}
	return b
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if !Enabled || h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metricType discriminates the registry's metric records.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered series: a name, constant labels, and exactly one
// live slot.
type metric struct {
	name   string
	help   string
	typ    metricType
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is the set of registered metrics. Registration (construction
// time) takes a lock and allocates; updates go straight to the returned
// fixed slots and never touch the Registry again. Registering the same
// (name, labels) twice returns the same slot, so per-algorithm handles can
// be re-derived freely.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// seriesKey is the dedup key: name plus rendered label set.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the existing metric for (name, labels) or records a new
// one. It panics when the same series is re-registered as a different type —
// always a programming error.
func (r *Registry) register(name, help string, typ metricType, labels []Label) *metric {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: series %s re-registered as %s, was %s", key, typ, m.typ))
		}
		return m
	}
	m := &metric{name: name, help: help, typ: typ, labels: append([]Label(nil), labels...)}
	switch typ {
	case typeCounter:
		m.counter = &Counter{}
	case typeGauge:
		m.gauge = &Gauge{}
	case typeHistogram:
		m.hist = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter registers (or retrieves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, typeCounter, labels).counter
}

// Gauge registers (or retrieves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, typeGauge, labels).gauge
}

// Histogram registers (or retrieves) a histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, typeHistogram, labels).hist
}

// Snapshot captures every registered series as a point-in-time MetricPoint,
// sorted by name then label set so exposition output is stable.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	points := make([]MetricPoint, 0, len(metrics))
	for _, m := range metrics {
		p := MetricPoint{
			Name: m.name,
			Help: m.help,
			Type: m.typ.String(),
		}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch m.typ {
		case typeCounter:
			p.Value = float64(m.counter.Value())
		case typeGauge:
			p.Value = float64(m.gauge.Value())
		case typeHistogram:
			p.Count = m.hist.Count()
			p.Sum = m.hist.Sum()
			cum := int64(0)
			for i := 0; i < histBuckets; i++ {
				c := m.hist.buckets[i].Load()
				if c == 0 && i < histBuckets-1 {
					continue
				}
				cum += c
				le := "+Inf"
				if i < histBuckets-1 {
					le = fmt.Sprintf("%d", int64(1)<<uint(i))
				}
				p.Buckets = append(p.Buckets, BucketPoint{LE: le, Count: cum})
			}
		}
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		return points[i].labelKey() < points[j].labelKey()
	})
	return points
}
