//go:build !obsoff

package obs

// Enabled reports whether the observability layer is compiled in. It is a
// constant, so when the `obsoff` build tag sets it to false the compiler
// eliminates every emission body behind it.
const Enabled = true
