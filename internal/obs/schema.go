package obs

// AlgoID identifies an algorithm family for metric labelling and decision
// tracing. IDs are stable across runs (they are serialized into trace files)
// so new entries must be appended, never reordered.
type AlgoID uint8

const (
	AlgoUnknown    AlgoID = iota
	AlgoAlg1              // core.Alg1 (Algorithm 1, random-order edge arrival)
	AlgoKK                // kk.KK (Korman-Kutten style baseline)
	AlgoAlg2              // adversarial.Alg2 (adversarial-order edge arrival)
	AlgoES                // elementsampling.ES (element-sampling lower-space regime)
	AlgoMultipass         // multipass.Run (multi-pass sampling schedule)
	AlgoSetArrival        // setarrival greedy baseline
	AlgoEnsemble          // stream.Ensemble fan-out wrapper

	numAlgos
)

var algoNames = [numAlgos]string{
	AlgoUnknown:    "unknown",
	AlgoAlg1:       "alg1",
	AlgoKK:         "kk",
	AlgoAlg2:       "alg2",
	AlgoES:         "es",
	AlgoMultipass:  "multipass",
	AlgoSetArrival: "setarrival",
	AlgoEnsemble:   "ensemble",
}

func (a AlgoID) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return "unknown"
}

// Kind classifies a decision event. The operand meaning of Event.A/B/C is
// per-kind, documented below; unused operands are zero. Like AlgoID, values
// are serialized into trace files and must stay append-only.
type Kind uint8

const (
	KindUnknown Kind = iota

	// KindSetSelected: a set entered the solution.
	// A = set index, B = solution size after insertion, C = algorithm-specific
	// context (Alg1: current epoch; KK/Alg2: level; ES/multipass: pass or 0).
	KindSetSelected

	// KindPhase: the algorithm moved between phases.
	// A = new phase, B = old phase, C = epoch/pass index when meaningful.
	KindPhase

	// KindEpoch: an epoch (Alg1) or pass (multipass) boundary was crossed.
	// A = new epoch/pass index, B = sets selected so far, C = elements still
	// uncovered when known (else 0).
	KindEpoch

	// KindLevelUp: a set was promoted one level (KK degree-doubling, Alg2
	// geometric promotion). A = set index, B = new level, C = old level.
	KindLevelUp

	// KindSampleKeep: a subsampling coin kept an item.
	// A = item index (set or element), B = sampling context (epoch, level or
	// pass), C = 0.
	KindSampleKeep

	// KindSampleDrop: a subsampling coin dropped an item; operands as for
	// KindSampleKeep. High-volume per-element coins are aggregated through
	// Sink.Count instead of ringing an event apiece.
	KindSampleDrop

	// KindCertWrite: a certificate slot was (re)written.
	// A = element index, B = set index written, C = previous set (or -1).
	KindCertWrite

	// KindPatch: finish-time patching covered an element missed by the
	// streaming phase. A = element index, B = patch set index, C = 0.
	KindPatch

	numKinds
)

var kindNames = [numKinds]string{
	KindUnknown:     "unknown",
	KindSetSelected: "set_selected",
	KindPhase:       "phase",
	KindEpoch:       "epoch",
	KindLevelUp:     "level_up",
	KindSampleKeep:  "sample_keep",
	KindSampleDrop:  "sample_drop",
	KindCertWrite:   "cert_write",
	KindPatch:       "patch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds returns every known event kind, for consumers that pre-register
// per-kind counters or render legends.
func Kinds() []Kind {
	ks := make([]Kind, 0, numKinds-1)
	for k := Kind(1); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Algos returns every known algorithm ID except AlgoUnknown.
func Algos() []AlgoID {
	as := make([]AlgoID, 0, numAlgos-1)
	for a := AlgoID(1); a < numAlgos; a++ {
		as = append(as, a)
	}
	return as
}
