package obs

// Sink is what an algorithm holds to emit decisions. One Sink is shared by
// every concurrent run of the same AlgoID (counters aggregate; the ring
// interleaves, with Pos disambiguating). A nil *Sink is fully inert, so
// algorithms call these methods unconditionally.
type Sink struct {
	algo AlgoID
	ring *Ring

	// events[k] counts decisions of Kind k; fixed slots registered at Sink
	// construction so the emit path is one atomic add.
	events [numKinds]*Counter
}

// newSink builds the sink for one algorithm: per-kind counters registered up
// front (registration is the only allocation) plus the hub's shared ring.
func newSink(algo AlgoID, reg *Registry, ring *Ring) *Sink {
	s := &Sink{algo: algo, ring: ring}
	lAlgo := Label{Key: "algo", Value: algo.String()}
	for k := Kind(1); k < numKinds; k++ {
		s.events[k] = reg.Counter(
			"streamcover_decision_events_total",
			"Decision events emitted by streaming algorithms, by kind.",
			lAlgo, Label{Key: "kind", Value: k.String()},
		)
	}
	return s
}

// Algo returns the algorithm this sink belongs to (AlgoUnknown for nil).
func (s *Sink) Algo() AlgoID {
	if s == nil {
		return AlgoUnknown
	}
	return s.algo
}

// Emit records one decision: bumps the per-kind counter and appends the
// event to the ring. pos is the stream position (edges processed so far);
// pass -1 when the position is not meaningful at the call site.
func (s *Sink) Emit(kind Kind, pos, a, b, c int64) {
	if !Enabled || s == nil {
		return
	}
	s.events[kind].Inc()
	s.ring.record(Event{Pos: pos, A: a, B: b, C: c, Algo: s.algo, Kind: kind})
}

// Count bumps the per-kind counter by n without ringing an event. Use it for
// high-volume decisions (per-element subsampling coins) where a ring entry
// per decision would flood the trace window.
func (s *Sink) Count(kind Kind, n int64) {
	if !Enabled || s == nil {
		return
	}
	s.events[kind].Add(n)
}

// EventCount returns how many decisions of the given kind this sink has
// recorded (via Emit or Count).
func (s *Sink) EventCount(kind Kind) int64 {
	if s == nil || int(kind) >= len(s.events) {
		return 0
	}
	return s.events[kind].Value()
}

// RunObs is what the stream driver holds to stamp run- and batch-level
// metrics for one algorithm. Like Sink, one RunObs is shared per AlgoID and
// a nil *RunObs is inert.
type RunObs struct {
	algo AlgoID

	edges       *Counter   // streamcover_edges_processed_total
	batches     *Counter   // streamcover_batches_processed_total
	runs        *Counter   // streamcover_runs_total
	edgesPerSec *Gauge     // streamcover_edges_per_second (last completed run)
	covered     *Gauge     // streamcover_covered_elements (last checkpoint)
	batchNs     *Histogram // streamcover_batch_duration_ns
	runNs       *Histogram // streamcover_run_duration_ns

	checkpoints   *Counter   // streamcover_checkpoints_total
	snapshotBytes *Histogram // streamcover_snapshot_bytes
	checkpointNs  *Histogram // streamcover_checkpoint_duration_ns

	// stateWords[meter][stat]: meter 0=state 1=aux, stat 0=current 1=peak.
	stateWords [2][2]*Gauge
}

func newRunObs(algo AlgoID, reg *Registry) *RunObs {
	lAlgo := Label{Key: "algo", Value: algo.String()}
	ro := &RunObs{
		algo: algo,
		edges: reg.Counter("streamcover_edges_processed_total",
			"Edges consumed from the stream.", lAlgo),
		batches: reg.Counter("streamcover_batches_processed_total",
			"Batches dispatched by the stream driver.", lAlgo),
		runs: reg.Counter("streamcover_runs_total",
			"Completed streaming runs.", lAlgo),
		edgesPerSec: reg.Gauge("streamcover_edges_per_second",
			"Throughput of the most recently completed run.", lAlgo),
		covered: reg.Gauge("streamcover_covered_elements",
			"Covered elements at the latest checkpoint.", lAlgo),
		batchNs: reg.Histogram("streamcover_batch_duration_ns",
			"Wall time per dispatched batch, in nanoseconds.", lAlgo),
		runNs: reg.Histogram("streamcover_run_duration_ns",
			"Wall time per completed run, in nanoseconds.", lAlgo),
		checkpoints: reg.Counter("streamcover_checkpoints_total",
			"Checkpoints written during streaming runs.", lAlgo),
		snapshotBytes: reg.Histogram("streamcover_snapshot_bytes",
			"Serialized size per checkpoint, in bytes.", lAlgo),
		checkpointNs: reg.Histogram("streamcover_checkpoint_duration_ns",
			"Wall time per checkpoint (snapshot + write), in nanoseconds.", lAlgo),
	}
	meters := [2]string{"state", "aux"}
	stats := [2]string{"current", "peak"}
	for mi, meter := range meters {
		for si, stat := range stats {
			ro.stateWords[mi][si] = reg.Gauge("streamcover_state_words",
				"Space-meter word balance at the latest checkpoint.",
				lAlgo, Label{Key: "meter", Value: meter}, Label{Key: "stat", Value: stat})
		}
	}
	return ro
}

// Algo returns the algorithm this handle belongs to.
func (ro *RunObs) Algo() AlgoID {
	if ro == nil {
		return AlgoUnknown
	}
	return ro.algo
}

// Batch records one dispatched batch of n edges taking ns nanoseconds.
func (ro *RunObs) Batch(n int, ns int64) {
	if !Enabled || ro == nil {
		return
	}
	ro.edges.Add(int64(n))
	ro.batches.Inc()
	ro.batchNs.Observe(ns)
}

// StateWords stamps a space-meter checkpoint. meter is 0 for the state
// meter, 1 for the aux meter.
func (ro *RunObs) StateWords(meter int, cur, peak int64) {
	if !Enabled || ro == nil || meter < 0 || meter > 1 {
		return
	}
	ro.stateWords[meter][0].Set(cur)
	ro.stateWords[meter][1].Set(peak)
}

// Covered stamps the covered-element count at a checkpoint.
func (ro *RunObs) Covered(n int) {
	if !Enabled || ro == nil {
		return
	}
	ro.covered.Set(int64(n))
}

// Checkpoint records one written checkpoint: serialized size in bytes and
// wall time (snapshot + durable write) in nanoseconds.
func (ro *RunObs) Checkpoint(bytes, ns int64) {
	if !Enabled || ro == nil {
		return
	}
	ro.checkpoints.Inc()
	ro.snapshotBytes.Observe(bytes)
	ro.checkpointNs.Observe(ns)
}

// RunDone records a completed run of edges total edges taking ns
// nanoseconds, updating the throughput gauge.
func (ro *RunObs) RunDone(edges int, ns int64) {
	if !Enabled || ro == nil {
		return
	}
	ro.runs.Inc()
	ro.runNs.Observe(ns)
	if ns > 0 {
		ro.edgesPerSec.Set(int64(float64(edges) * 1e9 / float64(ns)))
	}
}

// EdgesProcessed returns the cumulative edge count (test/inspection helper).
func (ro *RunObs) EdgesProcessed() int64 {
	if ro == nil {
		return 0
	}
	return ro.edges.Value()
}
