//go:build !obsoff

package obs

import (
	"strings"
	"testing"
)

func TestTraceIDMintParseRoundTrip(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("minted trace IDs must be non-zero")
	}
	if a == b {
		t.Fatal("two minted trace IDs collided")
	}
	s := a.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Fatalf("round trip %q != original %q", back, a)
	}
	var zero TraceID
	if zero.String() != "" {
		t.Fatalf("zero trace renders %q, want empty", zero.String())
	}
	if z, err := ParseTraceID(""); err != nil || !z.IsZero() {
		t.Fatalf("ParseTraceID(\"\") = %v, %v; want zero, nil", z, err)
	}
	for _, bad := range []string{"xyz", strings.Repeat("0", 31), strings.Repeat("g", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestSessionTableLifecycle(t *testing.T) {
	tab := NewSessionTable(4)
	tr := NewTraceID()
	h := tab.Acquire("s1", "kk", tr, false, 0)
	if h == nil {
		t.Fatal("Acquire returned nil with obs enabled")
	}
	h.Batch(100, 2)
	h.Batch(28, 1)
	h.Stall()
	h.Checkpoint(4096)

	snap := tab.Snapshot()
	if snap.Active != 1 || len(snap.Sessions) != 1 || snap.Capacity != 4 {
		t.Fatalf("snapshot active=%d rows=%d cap=%d, want 1/1/4", snap.Active, len(snap.Sessions), snap.Capacity)
	}
	row := snap.Sessions[0]
	if row.Token != "s1" || row.Algo != "kk" || row.Trace != tr.String() || row.State != "active" {
		t.Fatalf("row %+v", row)
	}
	if row.Edges != 128 || row.Batches != 2 || row.IngestStalls != 1 || row.RingOccupancy != 1 || row.CheckpointBytes != 4096 {
		t.Fatalf("counters %+v", row)
	}
	if row.OpenedUnixNs == 0 || row.LastActivityUnixNs < row.OpenedUnixNs {
		t.Fatalf("timestamps %+v", row)
	}

	h.SetState(StateDetached)
	if got := tab.Snapshot(); got.Active != 0 || got.Sessions[0].State != "detached" {
		t.Fatalf("after detach: %+v", got.Sessions[0])
	}

	// A resume with the same trace must rebind the detached slot in place —
	// one row for one session identity — seeding edges from the checkpoint.
	h2 := tab.Acquire("s1", "kk", tr, true, 128)
	h2.Batch(72, 0)
	snap = tab.Snapshot()
	if len(snap.Sessions) != 1 {
		t.Fatalf("resume grew the table to %d rows, want rebind", len(snap.Sessions))
	}
	row = snap.Sessions[0]
	if !row.Resumed || row.State != "active" || row.Edges != 200 {
		t.Fatalf("resumed row %+v", row)
	}

	// The pre-resume handle is a stale generation: its updates must land
	// nowhere.
	h.Batch(1000, 3)
	h.SetState(StateFailed)
	row = tab.Snapshot().Sessions[0]
	if row.Edges != 200 || row.State != "active" {
		t.Fatalf("stale handle mutated the rebound slot: %+v", row)
	}

	h2.SetState(StateFinished)
	if got := tab.Snapshot().Sessions[0].State; got != "finished" {
		t.Fatalf("state %q, want finished", got)
	}
}

func TestSessionTableEvictionOrder(t *testing.T) {
	tab := NewSessionTable(2)
	a := tab.Acquire("a", "kk", NewTraceID(), false, 0)
	tab.Acquire("b", "kk", NewTraceID(), false, 0)
	a.SetState(StateFinished)

	// Third session: the retired slot (a) must be reused before any active
	// one is evicted.
	tab.Acquire("c", "kk", NewTraceID(), false, 0)
	snap := tab.Snapshot()
	if snap.EvictedActive != 0 {
		t.Fatalf("evicted %d live sessions with a retired slot available", snap.EvictedActive)
	}
	tokens := map[string]bool{}
	for _, r := range snap.Sessions {
		tokens[r.Token] = true
	}
	if !tokens["b"] || !tokens["c"] || tokens["a"] {
		t.Fatalf("tokens after reuse: %v", tokens)
	}

	// Fourth session with both slots active: the oldest active session is
	// evicted and counted.
	tab.Acquire("d", "kk", NewTraceID(), false, 0)
	snap = tab.Snapshot()
	if snap.EvictedActive != 1 {
		t.Fatalf("evicted_active = %d, want 1", snap.EvictedActive)
	}
	if len(snap.Sessions) != 2 {
		t.Fatalf("%d rows in a 2-slot table", len(snap.Sessions))
	}
	if snap.SessionsTotal != 4 {
		t.Fatalf("sessions_total = %d, want 4", snap.SessionsTotal)
	}
}

func TestSessionTableNilSafety(t *testing.T) {
	var tab *SessionTable
	if h := tab.Acquire("x", "kk", NewTraceID(), false, 0); h != nil {
		t.Fatal("nil table returned a handle")
	}
	var h *SessionSlot
	h.Batch(1, 1)
	h.Stall()
	h.Checkpoint(1)
	h.SetState(StateFinished)
	if h.Edges() != 0 || h.Stalls() != 0 {
		t.Fatal("nil handle reads nonzero")
	}
	if s := tab.Snapshot(); len(s.Sessions) != 0 {
		t.Fatal("nil table snapshot has rows")
	}
}

func TestSessionSnapshotOrder(t *testing.T) {
	tab := NewSessionTable(8)
	for _, tok := range []string{"t1", "t2", "t3"} {
		tab.Acquire(tok, "kk", NewTraceID(), false, 0)
	}
	rows := tab.Snapshot().Sessions
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.OpenedUnixNs < b.OpenedUnixNs {
			t.Fatalf("rows not newest-first: %q(%d) before %q(%d)", a.Token, a.OpenedUnixNs, b.Token, b.OpenedUnixNs)
		}
	}
}

func TestWideEventLog(t *testing.T) {
	var buf strings.Builder
	l := NewWideEventLog(&buf)
	tr := NewTraceID()
	l.Emit(SessionEvent{Event: EventSessionOpen, Token: "s1", Trace: tr.String(), Algo: "kk"})
	l.Emit(SessionEvent{Event: EventSessionDetach, Token: "s1", Trace: tr.String(), Algo: "kk",
		Edges: 512, IngestStalls: 3, CheckpointBytes: 9000, Cause: "disconnect"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, want := range []string{`"event":"session_open"`, `"token":"s1"`, `"trace":"` + tr.String() + `"`, `"ts_unix_ns":`} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("open line missing %s: %s", want, lines[0])
		}
	}
	for _, want := range []string{`"event":"session_detach"`, `"edges":512`, `"ingest_stalls":3`, `"checkpoint_bytes":9000`, `"cause":"disconnect"`} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("detach line missing %s: %s", want, lines[1])
		}
	}

	// Nil log and nil writer are inert.
	var nl *WideEventLog
	nl.Emit(SessionEvent{Event: EventSessionOpen})
	if l2 := NewWideEventLog(nil); l2 != nil {
		t.Fatal("NewWideEventLog(nil) must return a nil (inert) log")
	}
}
