package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit session identity. It is minted once by the client
// that opens a session (scfeed), propagated in SCWIRE1 hello/resume frames,
// stamped into SCCKPT1 checkpoint envelopes, and echoed in every telemetry
// surface — so one session keeps one identity across disconnects, resumes,
// and (eventually) cross-shard adoption.
//
// TraceID is identity, not telemetry: it is NOT gated by the obsoff build
// tag. A server compiled with observability off still propagates and
// persists trace IDs, because the wire and checkpoint formats cannot depend
// on the build configuration of either endpoint.
type TraceID [16]byte

// TraceIDLen is the wire length of a trace ID in SCWIRE1 and SCCKPT1.
const TraceIDLen = 16

// mintFallback de-duplicates time-derived trace IDs when the system's
// entropy source is unavailable (it never is in practice).
var mintFallback atomic.Uint64

// NewTraceID mints a random 128-bit trace ID. It never returns the zero
// ID, which protocol layers reserve for "no trace assigned yet".
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		// Entropy failure: fall back to wall clock + process counter. Still
		// unique within the process, still non-zero.
		binary.LittleEndian.PutUint64(t[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(t[8:], mintFallback.Add(1))
	}
	if t.IsZero() {
		t[0] = 1
	}
	return t
}

// IsZero reports whether t is the reserved all-zero "no trace" ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders t as 32 lowercase hex digits (the zero ID renders as an
// empty string so log lines and tables stay clean).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// ParseTraceID decodes the 32-hex-digit form produced by String. An empty
// string parses to the zero ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if s == "" {
		return t, nil
	}
	if len(s) != 2*TraceIDLen {
		return t, fmt.Errorf("obs: trace ID %q: want %d hex digits, have %d", s, 2*TraceIDLen, len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("obs: trace ID %q: %v", s, err)
	}
	return t, nil
}
