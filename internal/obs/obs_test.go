// The functional tests require the layer to be live; under the obsoff tag
// every emit is compiled out (see obsoff_test.go for that contract).
//go:build !obsoff

package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Same (name, labels) returns the same slot.
	if c2 := r.Counter("c_total", "help"); c2 != c {
		t.Fatal("re-registration returned a different slot")
	}
	// Nil receivers are inert.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil metrics should read zero")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("dup", "help")
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 10, 10}, {1<<10 + 1, 11}, {1 << 46, 46}, {1<<46 + 1, 47}, {1 << 62, 47},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0 // Observe clamps; bucketOf is only called with the clamp applied
		}
		if got := bucketOf(v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, c.want)
		}
	}

	h := NewRegistry().Histogram("h_ns", "help")
	h.Observe(1)
	h.Observe(3)
	h.Observe(-9) // clamps to 0 → bucket 0
	if h.Count() != 3 || h.Sum() != 4 {
		t.Fatalf("count=%d sum=%d, want 3 and 4", h.Count(), h.Sum())
	}
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("edges_total", "Edges.", Label{Key: "algo", Value: "kk"}).Add(12)
	r.Counter("edges_total", "Edges.", Label{Key: "algo", Value: "alg1"}).Add(7)
	r.Gauge("words", "Words.").Set(42)
	h := r.Histogram("dur_ns", "Durations.")
	h.Observe(1)
	h.Observe(5) // bucket 3 (le=8)
	h.Observe(5)

	points := r.Snapshot()
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	// Sorted by name then labels: dur_ns, edges{alg1}, edges{kk}, words.
	if points[0].Name != "dur_ns" || points[1].Labels["algo"] != "alg1" ||
		points[2].Labels["algo"] != "kk" || points[3].Name != "words" {
		t.Fatalf("unexpected order: %+v", points)
	}
	hp := points[0]
	if hp.Count != 3 || hp.Sum != 11 {
		t.Fatalf("histogram point count=%d sum=%d", hp.Count, hp.Sum)
	}
	// Buckets are cumulative and end at +Inf.
	last := hp.Buckets[len(hp.Buckets)-1]
	if last.LE != "+Inf" || last.Count != 3 {
		t.Fatalf("last bucket = %+v, want +Inf/3", last)
	}
	var sawLE8 bool
	for _, b := range hp.Buckets {
		if b.LE == "8" {
			sawLE8 = true
			if b.Count != 3 {
				t.Fatalf("le=8 cumulative count = %d, want 3", b.Count)
			}
		}
	}
	if !sawLE8 {
		t.Fatal("no le=8 bucket in snapshot")
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, points); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE dur_ns histogram",
		`dur_ns_bucket{le="+Inf"} 3`,
		"dur_ns_sum 11",
		"dur_ns_count 3",
		"# HELP edges_total Edges.",
		"# TYPE edges_total counter",
		`edges_total{algo="alg1"} 7`,
		`edges_total{algo="kk"} 12`,
		"# TYPE words gauge",
		"words 42",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE block per name, not per series.
	if strings.Count(text, "# TYPE edges_total counter") != 1 {
		t.Errorf("duplicate TYPE block:\n%s", text)
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.record(Event{Pos: int64(i), Kind: KindSetSelected})
	}
	if r.Recorded() != 6 || r.Dropped() != 2 || r.Capacity() != 4 {
		t.Fatalf("recorded=%d dropped=%d cap=%d", r.Recorded(), r.Dropped(), r.Capacity())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantPos := int64(i + 3) // oldest retained is pos 3
		wantSeq := uint64(i + 3)
		if e.Pos != wantPos || e.Seq != wantSeq {
			t.Fatalf("event %d = {Seq:%d Pos:%d}, want {%d %d}", i, e.Seq, e.Pos, wantSeq, wantPos)
		}
	}
	r.Reset()
	if r.Recorded() != 0 || len(r.Events()) != 0 || r.Capacity() != 4 {
		t.Fatal("reset should clear contents but keep capacity")
	}
}

func TestRingPartialOrder(t *testing.T) {
	r := NewRing(8)
	r.record(Event{Pos: 1})
	r.record(Event{Pos: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Pos != 1 || evs[1].Pos != 2 {
		t.Fatalf("partial ring order wrong: %+v", evs)
	}
}

func TestSinkEmitAndCount(t *testing.T) {
	h := NewHub(16)
	s := h.Sink(AlgoKK)
	if s == nil {
		t.Fatal("nil sink from live hub")
	}
	if s2 := h.Sink(AlgoKK); s2 != s {
		t.Fatal("sinks must be cached per algorithm")
	}
	s.Emit(KindSetSelected, 10, 3, 1, 0)
	s.Emit(KindLevelUp, 11, 3, 2, 1)
	s.Count(KindSampleDrop, 40)
	if got := s.EventCount(KindSetSelected); got != 1 {
		t.Fatalf("set_selected count = %d", got)
	}
	if got := s.EventCount(KindSampleDrop); got != 40 {
		t.Fatalf("sample_drop count = %d", got)
	}
	evs := h.Ring().Events()
	if len(evs) != 2 {
		t.Fatalf("ring has %d events, want 2 (Count must not ring)", len(evs))
	}
	if evs[0].Algo != AlgoKK || evs[0].Kind != KindSetSelected || evs[0].Pos != 10 {
		t.Fatalf("bad first event: %+v", evs[0])
	}

	// Nil sink and nil hub paths are inert.
	var ns *Sink
	ns.Emit(KindPatch, 0, 0, 0, 0)
	ns.Count(KindPatch, 5)
	var nh *Hub
	if nh.Sink(AlgoKK) != nil || nh.RunObs(AlgoKK) != nil {
		t.Fatal("nil hub should hand out nil handles")
	}
	if h.Sink(AlgoUnknown) != nil {
		t.Fatal("AlgoUnknown must not get a sink")
	}
}

func TestRunObsMetrics(t *testing.T) {
	h := NewHub(16)
	ro := h.RunObs(AlgoAlg1)
	ro.Batch(4096, 1000)
	ro.Batch(904, 500)
	ro.StateWords(0, 100, 120)
	ro.StateWords(1, 7, 9)
	ro.Covered(250)
	ro.RunDone(5000, 2_000_000) // 5000 edges in 2ms → 2.5M edges/s
	if ro.EdgesProcessed() != 5000 {
		t.Fatalf("edges = %d", ro.EdgesProcessed())
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, h.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`streamcover_edges_processed_total{algo="alg1"} 5000`,
		`streamcover_batches_processed_total{algo="alg1"} 2`,
		`streamcover_runs_total{algo="alg1"} 1`,
		`streamcover_edges_per_second{algo="alg1"} 2500000`,
		`streamcover_state_words{algo="alg1",meter="state",stat="current"} 100`,
		`streamcover_state_words{algo="alg1",meter="state",stat="peak"} 120`,
		`streamcover_state_words{algo="alg1",meter="aux",stat="peak"} 9`,
		`streamcover_covered_elements{algo="alg1"} 250`,
		`streamcover_batch_duration_ns_count{algo="alg1"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestGlobalHubLifecycle(t *testing.T) {
	old := Global()
	defer SetGlobal(old)

	SetGlobal(nil)
	if SinkFor(AlgoKK) != nil || RunObsFor(AlgoKK) != nil {
		t.Fatal("no hub installed: handles must be nil")
	}
	h := NewHub(16)
	SetGlobal(h)
	if !Enabled {
		t.Skip("obsoff build")
	}
	if SinkFor(AlgoKK) != h.Sink(AlgoKK) {
		t.Fatal("SinkFor should consult the installed hub")
	}
	if RunObsFor(AlgoAlg2) != h.RunObs(AlgoAlg2) {
		t.Fatal("RunObsFor should consult the installed hub")
	}
}

type fakeIdentified struct{}

func (fakeIdentified) ObsAlgo() AlgoID { return AlgoES }

func TestAlgoOf(t *testing.T) {
	if got := AlgoOf(fakeIdentified{}); got != AlgoES {
		t.Fatalf("AlgoOf = %v", got)
	}
	if got := AlgoOf(42); got != AlgoUnknown {
		t.Fatalf("AlgoOf(non-identified) = %v", got)
	}
}

func TestNames(t *testing.T) {
	for _, a := range Algos() {
		if a.String() == "unknown" {
			t.Errorf("algo %d has no name", a)
		}
	}
	for _, k := range Kinds() {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if AlgoID(200).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("out-of-range ids should read unknown")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Pos: 10, A: 3, B: 1, C: 0, Algo: AlgoKK, Kind: KindSetSelected},
		{Seq: 2, Pos: -1, A: -7, B: 2, C: 1, Algo: AlgoAlg1, Kind: KindLevelUp},
		{Seq: 3, Pos: 1 << 40, A: 1<<50 + 3, B: 0, C: -1, Algo: AlgoAlg2, Kind: KindCertWrite},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}

	// Corruption is detected.
	raw := buf.Bytes()
	raw[len(raw)-10] ^= 0xFF
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted trace should fail the checksum")
	}
	if _, err := ReadTrace(strings.NewReader("NOTATRACE-----")); err == nil {
		t.Fatal("bad magic should be rejected")
	}
}

func TestTraceFileFromRing(t *testing.T) {
	h := NewHub(8)
	s := h.Sink(AlgoMultipass)
	s.Emit(KindEpoch, 100, 1, 4, 0)
	s.Emit(KindSetSelected, 120, 9, 1, 1)

	path := filepath.Join(t.TempDir(), "run.sctrace")
	if err := WriteTraceFile(path, h.Ring()); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].A != 9 || events[1].Algo != AlgoMultipass {
		t.Fatalf("round-tripped events wrong: %+v", events)
	}
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "missing")); !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v", err)
	}
}

func TestSnapshotJSONAndHTTP(t *testing.T) {
	h := NewHub(8)
	h.Sink(AlgoKK).Emit(KindSetSelected, 1, 2, 1, 0)
	h.RunObs(AlgoKK).Batch(100, 50)

	snap := h.Snapshot()
	if snap.Trace.Capacity != 8 || snap.Trace.Recorded != 1 {
		t.Fatalf("trace info = %+v", snap.Trace)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace.Recorded != 1 || len(back.Metrics) == 0 {
		t.Fatalf("snapshot did not round-trip: %+v", back)
	}

	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `streamcover_edges_processed_total{algo="kk"} 100`) {
		t.Fatalf("/metrics: code=%d body=%s", code, body)
	}
	if code, body := get("/snapshot"); code != 200 || !strings.Contains(body, `"trace"`) {
		t.Fatalf("/snapshot: code=%d body=%s", code, body)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index: code=%d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: code=%d", code)
	}
}

func TestConcurrentEmit(t *testing.T) {
	h := NewHub(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := h.Sink(AlgoAlg1)
			ro := h.RunObs(AlgoAlg1)
			for i := 0; i < 500; i++ {
				s.Emit(KindCertWrite, int64(i), 1, 2, 3)
				s.Count(KindSampleKeep, 2)
				ro.Batch(10, 5)
			}
		}()
	}
	wg.Wait()
	if got := h.Sink(AlgoAlg1).EventCount(KindCertWrite); got != 8*500 {
		t.Fatalf("cert writes = %d, want %d", got, 8*500)
	}
	if got := h.RunObs(AlgoAlg1).EdgesProcessed(); got != 8*500*10 {
		t.Fatalf("edges = %d", got)
	}
	if h.Ring().Recorded() != 8*500 {
		t.Fatalf("ring recorded = %d", h.Ring().Recorded())
	}
}
