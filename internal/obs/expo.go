package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricPoint is one series of a Snapshot, ready for JSON or Prometheus
// rendering. Counters and gauges carry Value; histograms carry Count, Sum
// and cumulative Buckets.
type MetricPoint struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`

	Value float64 `json:"value"`

	Count   int64         `json:"count,omitempty"`
	Sum     int64         `json:"sum,omitempty"`
	Buckets []BucketPoint `json:"buckets,omitempty"`
}

// BucketPoint is one cumulative histogram bucket; LE is the upper bound
// rendered as Prometheus renders it ("1", "2", ..., "+Inf").
type BucketPoint struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// labelKey renders the label set in sorted order, for stable sorting and
// for the Prometheus series suffix.
func (p MetricPoint) labelKey() string {
	if len(p.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p.Labels))
	for k := range p.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, p.Labels[k])
	}
	return b.String()
}

// promSeries renders name{labels} with an optional extra label appended
// (used for the histogram "le" label).
func promSeries(name, labelKey, extra string) string {
	switch {
	case labelKey == "" && extra == "":
		return name
	case labelKey == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labelKey + "}"
	default:
		return name + "{" + labelKey + "," + extra + "}"
	}
}

// promValue formats a sample value the way Prometheus expects (integers
// without exponent noise).
func promValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the points in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE block per metric name, then every
// series of that name. Points must be sorted by name (Registry.Snapshot
// returns them sorted).
func WritePrometheus(w io.Writer, points []MetricPoint) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, p := range points {
		if p.Name != lastName {
			if p.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", p.Name, p.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", p.Name, p.Type)
			lastName = p.Name
		}
		lk := p.labelKey()
		switch p.Type {
		case "histogram":
			for _, b := range p.Buckets {
				fmt.Fprintf(bw, "%s %d\n", promSeries(p.Name+"_bucket", lk, fmt.Sprintf("le=%q", b.LE)), b.Count)
			}
			fmt.Fprintf(bw, "%s %d\n", promSeries(p.Name+"_sum", lk, ""), p.Sum)
			fmt.Fprintf(bw, "%s %d\n", promSeries(p.Name+"_count", lk, ""), p.Count)
		default:
			fmt.Fprintf(bw, "%s %s\n", promSeries(p.Name, lk, ""), promValue(p.Value))
		}
	}
	return bw.Flush()
}

// Snapshot is a run-scoped, point-in-time capture of the whole observability
// surface: every metric series plus the decision-ring bookkeeping. It
// marshals directly to JSON (and is what the expvar integration publishes at
// /debug/vars); WritePrometheus renders the Metrics half as text exposition.
type Snapshot struct {
	TakenAt       time.Time     `json:"taken_at"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Metrics       []MetricPoint `json:"metrics"`
	Trace         TraceInfo     `json:"trace"`
}

// TraceInfo summarizes the decision ring at snapshot time.
type TraceInfo struct {
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}
