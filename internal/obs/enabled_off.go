//go:build obsoff

package obs

// Enabled is false under the `obsoff` build tag: SinkFor/RunObsFor return
// nil, SetGlobal is a no-op, and every metric/trace emission compiles to
// dead code.
const Enabled = false
