package obs

import "sync"

// Event is one recorded decision. It is a 48-byte value type so the ring is
// a flat array: recording copies the struct, no pointers, no allocation.
// The meaning of A/B/C depends on Kind (see the Kind constants).
type Event struct {
	Seq  uint64 // global record sequence number, starting at 1
	Pos  int64  // stream position (edges processed) when emitted; -1 if unknown
	A    int64
	B    int64
	C    int64
	Algo AlgoID
	Kind Kind
}

// Ring is a fixed-capacity overwrite-oldest buffer of Events shared by every
// sink of a Hub. Recording takes a mutex (the hot paths batch work between
// decision points, so contention is low) and never allocates after
// construction.
type Ring struct {
	mu       sync.Mutex
	buf      []Event
	next     int    // index of the slot the next record will use
	recorded uint64 // total events ever recorded
}

// NewRing returns a ring holding up to cap events (cap < 1 is clamped to 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// record stamps the sequence number and stores the event, overwriting the
// oldest entry when full.
func (r *Ring) record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recorded++
	e.Seq = r.recorded
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next++
	if r.next == cap(r.buf) {
		r.next = 0
	}
	r.mu.Unlock()
}

// Capacity returns the ring's fixed capacity.
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Recorded returns the total number of events ever recorded.
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Dropped returns how many recorded events have been overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded - uint64(len(r.buf))
}

// Events returns the retained events in record order (oldest first). It
// allocates the returned slice; call it from snapshot/export paths only.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		// Buffer not yet full: record order is insertion order.
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Reset clears the ring without shrinking its capacity.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.recorded = 0
	r.mu.Unlock()
}
