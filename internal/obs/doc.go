// Package obs is the runtime observability core for the streaming harness:
// metrics, decision tracing and run snapshots, engineered so that a fully
// instrumented streaming hot path performs zero heap allocations per edge.
//
// The paper's claims are resource claims — Õ(m), Õ(mn/α²), Õ(m/√n) words of
// state in one pass — so the system's primary observables are the same
// quantities the analysis reasons about: edges processed, throughput, the
// current/peak word balance of every space meter, and the discrete
// *decisions* each algorithm takes (set selections, level promotions,
// subsample keep/drop coins, phase transitions, certificate writes). This
// package gives each of those a first-class runtime surface without
// disturbing the zero-allocation hot path built in the performance pass
// (DESIGN.md §4b):
//
//   - Metrics are fixed slots registered once, at algorithm construction
//     time: Counter and Gauge are single atomic words, Histogram is a fixed
//     power-of-two bucket array. Updating any of them is an atomic add —
//     no maps, no interfaces, no allocation (see the AllocsPerRun guards in
//     the package tests and in the repository root's perf_test.go).
//   - The decision trace is a fixed-capacity Ring of value-type Events
//     (48 bytes each). Recording overwrites the oldest entry when full and
//     never allocates; the drop count is tracked so consumers know when the
//     window is partial.
//   - Snapshots (Hub.Snapshot) serialize the whole metric surface to JSON
//     (also published through expvar at /debug/vars) and to the Prometheus
//     text exposition format at /metrics; Hub.Handler additionally mounts
//     net/http/pprof at /debug/pprof/ for live profiling.
//   - The decision ring serializes to the SCTRACE1 binary format
//     (WriteTraceFile/ReadTraceFile) which cmd/sctrace can read back.
//
// # Enabling
//
// Algorithms hold a *Sink and the stream driver holds a *RunObs; both are
// nil by default, and every method on them is nil-safe, so the uninstrumented
// cost is a single predictable branch at each decision site (never per edge).
// CLIs opt in by installing a process-global Hub (SetGlobal), which
// constructors consult via SinkFor/RunObsFor; tests attach explicit sinks
// with the algorithms' SetObs methods instead. Building with the `obsoff`
// tag compiles the whole layer out: Enabled becomes a false constant, every
// emission body is dead code, and SinkFor/RunObsFor return nil.
//
// # Concurrency
//
// Streaming algorithms are single-threaded, but the experiment harness runs
// repetitions concurrently and the HTTP endpoints scrape from their own
// goroutines, so every mutable slot is an atomic and the ring is
// mutex-guarded. Sinks and RunObs handles are shared per AlgoID across all
// concurrent runs of the same algorithm: counters aggregate, gauges hold the
// latest checkpoint.
package obs
