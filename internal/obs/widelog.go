package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SessionEvent is one wide event: a self-describing record of a session
// lifecycle transition carrying everything a log pipeline needs to
// reconstruct the session's story without joining other streams. One JSON
// line per event; field names are the schema.
type SessionEvent struct {
	// TimeUnixNs is stamped by Emit when zero.
	TimeUnixNs int64 `json:"ts_unix_ns"`
	// Event is the transition: session_open, session_resume,
	// session_detach, session_finish, session_fail, server_drain.
	Event string `json:"event"`

	Token string `json:"token,omitempty"`
	Trace string `json:"trace,omitempty"`
	Algo  string `json:"algo,omitempty"`

	Edges           int64 `json:"edges,omitempty"`
	IngestStalls    int64 `json:"ingest_stalls,omitempty"`
	CheckpointBytes int64 `json:"checkpoint_bytes,omitempty"`
	// Active rides on server_drain: sessions still attached at drain start.
	Active int64 `json:"active,omitempty"`

	// Cause says why a detach or failure happened ("detach-frame",
	// "disconnect", "drain", or an error string).
	Cause string `json:"cause,omitempty"`

	// Store names the checkpoint-store backend ("dir", "mem", "cluster")
	// on detach/resume events — the events whose durability depends on it.
	Store string `json:"store,omitempty"`

	// Shard names the serving process that emitted the event (scserve
	// -shard), so a fleet's merged event streams stay attributable.
	Shard string `json:"shard,omitempty"`
	// Adopted rides on session_resume: true when the checkpoint was
	// written by a different process — a cross-shard adoption.
	Adopted bool `json:"adopted,omitempty"`
}

// Lifecycle event names, so emitters and tests share one spelling.
const (
	EventSessionOpen   = "session_open"
	EventSessionResume = "session_resume"
	EventSessionDetach = "session_detach"
	EventSessionFinish = "session_finish"
	EventSessionFail   = "session_fail"
	EventServerDrain   = "server_drain"
)

// WideEventLog writes session lifecycle transitions as one JSON object per
// line. It follows the package's nil-safe/obsoff contract: a nil log (or an
// obsoff build) ignores every Emit, so the serving layer carries one
// pointer and pays an inlined nil check when the log is off. Lifecycle
// transitions are session-rate, not edge-rate, so Emit may allocate.
type WideEventLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWideEventLog returns a log writing to w (nil w returns a nil, inert
// log). The writer is serialized by the log's lock; it need not be
// concurrency-safe itself.
func NewWideEventLog(w io.Writer) *WideEventLog {
	if w == nil {
		return nil
	}
	return &WideEventLog{w: w}
}

// Emit writes one event line. Write errors are swallowed — observability
// must never take the serving path down.
func (l *WideEventLog) Emit(ev SessionEvent) {
	if !Enabled || l == nil {
		return
	}
	if ev.TimeUnixNs == 0 {
		ev.TimeUnixNs = time.Now().UnixNano()
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
}
