package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}

	// Splitting must not perturb the parent stream.
	p1 := New(7)
	p2 := New(7)
	_ = p2.Split()
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatalf("Split perturbed parent stream at draw %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(99).Split()
	b := New(99).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestCoinClamping(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Coin(0) {
			t.Fatal("Coin(0) fired")
		}
		if r.Coin(-1) {
			t.Fatal("Coin(-1) fired")
		}
		if !r.Coin(1) {
			t.Fatal("Coin(1) missed")
		}
		if !r.Coin(2.5) {
			t.Fatal("Coin(2.5) missed")
		}
	}
}

func TestCoinBias(t *testing.T) {
	r := New(5)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Coin(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Coin(%v) empirical rate %v", p, got)
		}
	}
}

func TestIntNRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := r.IntN(17)
		if v < 0 || v >= 17 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleKProperties(t *testing.T) {
	r := New(9)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]struct{}, k)
		for _, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKSparseAndDense(t *testing.T) {
	r := New(10)
	// Sparse path: k*8 < n.
	s := r.SampleK(10000, 5)
	if len(s) != 5 {
		t.Fatalf("sparse sample len %d", len(s))
	}
	// Dense path: k == n must return all values.
	s = r.SampleK(50, 50)
	seen := make([]bool, 50)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("dense sample missing %d", i)
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	r := New(11)
	for _, tc := range []struct{ n, k int }{{5, 6}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleK(%d,%d) did not panic", tc.n, tc.k)
				}
			}()
			r.SampleK(tc.n, tc.k)
		}()
	}
}

func TestSampleK32Matches(t *testing.T) {
	s := New(12).SampleK32(100, 10)
	if len(s) != 10 {
		t.Fatalf("len %d", len(s))
	}
	for _, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range %d", v)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(13)
	const trials = 20000
	for _, tc := range []struct {
		n int
		p float64
	}{{100, 0.1}, {1000, 0.01}, {100000, 0.3}} {
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := r.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial out of range: %d", v)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(want * (1 - tc.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%v) mean %v want ~%v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(14)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0, .5) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("Binomial(10, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(10, 1) != 10")
	}
	if r.Binomial(10, -0.5) != 0 {
		t.Error("Binomial(10, -0.5) != 0")
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(15)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if counts[0] == 50000 {
		t.Error("Zipf degenerate: all mass at 0")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Errorf("Zipf(s=0) bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(17)
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-3, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(r, tc.n, tc.s)
		}()
	}
}

func BenchmarkCoin(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Coin(0.25)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1<<16, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}
