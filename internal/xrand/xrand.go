// Package xrand provides deterministic, seedable randomness for every
// randomized component in streamcover.
//
// All algorithms in the paper are randomized; reproducible experiments need
// every coin flip to derive from an explicit seed. xrand wraps math/rand/v2's
// PCG generator and adds the sampling primitives the algorithms use: biased
// coins, without-replacement samples, bounded Zipf variates, and stream
// splitting so that independent components of one experiment draw from
// independent generators.
package xrand

import (
	"fmt"
	"math"
	"math/rand/v2"

	"streamcover/internal/snap"
)

// Rand is a deterministic pseudo-random generator. It is NOT safe for
// concurrent use; derive per-goroutine generators with Split.
type Rand struct {
	src *rand.Rand
	// pcg is the concrete source behind src, retained so Save/Load can
	// serialize the generator state (rand.Rand keeps no state of its own).
	pcg *rand.PCG
	// seed material retained so Split can derive independent children.
	hi, lo uint64
	splits uint64
}

// New returns a generator seeded from seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	// Run the seed through splitmix64 twice to decorrelate small seeds
	// (0, 1, 2, ...) that experiments commonly use.
	hi := splitmix64(&seed)
	lo := splitmix64(&seed)
	return newFrom(hi, lo)
}

func newFrom(hi, lo uint64) *Rand {
	pcg := rand.NewPCG(hi, lo)
	return &Rand{src: rand.New(pcg), pcg: pcg, hi: hi, lo: lo}
}

// splitmix64 advances *x and returns the next splitmix64 output. It is the
// standard seed-expansion function from Steele, Lea & Flood (OOPSLA 2014).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new generator statistically independent of the parent.
// Successive Split calls on the same parent yield distinct children, and the
// parent's own stream is unaffected.
func (r *Rand) Split() *Rand {
	r.splits++
	s := r.hi ^ (r.lo * 0x9e3779b97f4a7c15) ^ r.splits
	hi := splitmix64(&s)
	lo := splitmix64(&s)
	return newFrom(hi, lo)
}

// Save serializes the complete generator state — the PCG position (via its
// binary marshaling) plus the seed material and split counter — so a loaded
// generator continues the exact coin-flip sequence, including future Splits.
func (r *Rand) Save(w *snap.Writer) {
	w.U64(r.hi)
	w.U64(r.lo)
	w.U64(r.splits)
	state, err := r.pcg.MarshalBinary()
	if err != nil {
		w.Fail(fmt.Errorf("xrand: marshal pcg: %w", err))
		return
	}
	w.Bytes(state)
}

// Load restores state written by Save into this generator.
func (r *Rand) Load(sr *snap.Reader) {
	hi := sr.U64()
	lo := sr.U64()
	splits := sr.U64()
	state := sr.Bytes()
	if sr.Err() != nil {
		return
	}
	if err := r.pcg.UnmarshalBinary(state); err != nil {
		sr.Failf("%w: pcg state: %v", snap.ErrCorrupt, err)
		return
	}
	r.hi, r.lo, r.splits = hi, lo, splits
}

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Int32N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int32N(n int32) int32 { return r.src.Int32N(n) }

// Coin returns true with probability p. Probabilities outside [0, 1] are
// clamped: p <= 0 never fires, p >= 1 always fires (the paper's sampling
// probabilities such as min{2^j/n, 1} rely on this clamping).
func (r *Rand) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Perm returns a uniform permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// SampleK returns k distinct values from [0, n) in random order.
// It panics if k > n or k < 0.
//
// For k much smaller than n it uses rejection from a set; otherwise it uses a
// partial Fisher-Yates pass, so both tiny and dense samples are cheap.
func (r *Rand) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleK out of range")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		out := make([]int, 0, k)
		seen := make(map[int]struct{}, k)
		for len(out) < k {
			v := r.src.IntN(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.src.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// SampleK32 is SampleK returning int32 values, matching the element and set
// identifier width used throughout the library.
func (r *Rand) SampleK32(n, k int) []int32 {
	s := r.SampleK(n, k)
	out := make([]int32, len(s))
	for i, v := range s {
		out[i] = int32(v)
	}
	return out
}

// Binomial returns a sample from Binomial(n, p) by inversion for small n·p
// and by normal approximation beyond that. Experiments use it only for
// workload sizing, where the approximation is irrelevant.
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 64 && n < 1<<20 {
		// Direct simulation by counting geometric skips: expected work O(n·p).
		count := 0
		i := 0
		logq := math.Log1p(-p)
		for {
			skip := int(math.Floor(math.Log(1-r.Float64()) / logq))
			i += skip + 1
			if i > n {
				break
			}
			count++
		}
		return count
	}
	sd := math.Sqrt(mean * (1 - p))
	v := int(math.Round(mean + sd*r.src.NormFloat64()))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

// Zipf draws values in [0, n) following an (approximate) Zipf law with
// exponent s >= 0: P(i) proportional to 1/(i+1)^s. The sampler precomputes
// the CDF once, so construction is O(n) and each draw is O(log n).
type Zipf struct {
	cdf []float64
	rng *Rand
}

// NewZipf constructs a bounded Zipf sampler over [0, n) with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(rng *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf needs n > 0")
	}
	if s < 0 {
		panic("xrand: NewZipf needs s >= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf variate in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
