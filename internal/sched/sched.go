// Package sched is the worker-pool scheduler shared by the evaluation
// harnesses (the scsweep grid, the scbench experiment registry, the
// per-cell repetition loops): it shards independent, seed-deterministic
// work items across a fixed number of goroutines and collects the results
// in item order.
//
// The determinism contract: callers derive every random seed from the item
// index (never from scheduling order), so the results — and therefore any
// table rendered from them — are byte-identical for every worker count.
// workers = 1 degenerates to a plain sequential loop in item order, which
// is exactly the schedule the harnesses ran before parallelization.
package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a -workers flag value: n > 0 is used as-is, anything
// else (the flag default 0) means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on Workers(workers) goroutines and returns the
// results in index order. Items are claimed in ascending index order.
// Every item runs regardless of other items' failures (an evaluation grid
// should report all broken cells, not just the first); the per-item errors
// are joined with errors.Join, so errors.Is still matches each one. A
// panicking fn crashes the process, exactly as it would in a plain loop.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// ForEach is Map for item-processing without a result value.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
