package sched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 5, 64} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapJoinsAllErrors(t *testing.T) {
	wantErrs := map[int]bool{3: true, 17: true, 41: true}
	_, err := Map(4, 50, func(i int) (int, error) {
		if wantErrs[i] {
			return 0, fmt.Errorf("item %d broke", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("errors dropped")
	}
	for i := range wantErrs {
		if !contains(err, fmt.Sprintf("item %d broke", i)) {
			t.Errorf("joined error missing item %d: %v", i, err)
		}
	}
}

func TestMapSequentialWhenSingleWorker(t *testing.T) {
	// workers=1 must visit the items strictly in index order.
	var last atomic.Int64
	last.Store(-1)
	_, err := Map(1, 200, func(i int) (int, error) {
		if prev := last.Swap(int64(i)); prev != int64(i)-1 {
			return 0, fmt.Errorf("item %d ran after %d", i, prev)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapEmptyAndErrorIdentity(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(3, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := ForEach(3, 10, func(i int) error {
		if i == 7 {
			return errors.New("seven")
		}
		return nil
	}); err == nil {
		t.Fatal("error dropped")
	}
}

func contains(err error, substr string) bool {
	return err != nil && strings.Contains(err.Error(), substr)
}
