package domset

import (
	"testing"

	"streamcover/internal/core"
	"streamcover/internal/kk"
	"streamcover/internal/xrand"
)

// randomGraph draws an Erdős–Rényi graph and returns its edges plus an
// adjacency oracle.
func randomGraph(rng *xrand.Rand, n int, p float64) ([]GraphEdge, func(u, v int32) bool) {
	adj := make(map[[2]int32]struct{})
	var edges []GraphEdge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Coin(p) {
				edges = append(edges, GraphEdge{int32(u), int32(v)})
				adj[[2]int32{int32(u), int32(v)}] = struct{}{}
			}
		}
	}
	oracle := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		_, ok := adj[[2]int32{a, b}]
		return ok
	}
	return edges, oracle
}

func TestAdapterWithKK(t *testing.T) {
	const n = 200
	rng := xrand.New(1)
	edges, adj := randomGraph(rng.Split(), n, 0.05)

	a := NewAdapter(n, kk.New(n, n, rng.Split()))
	for _, e := range edges {
		if err := a.ProcessEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if a.GraphEdges() != len(edges) {
		t.Fatalf("processed %d edges, fed %d", a.GraphEdges(), len(edges))
	}
	res := a.Finish()
	if err := res.Verify(n, adj); err != nil {
		t.Fatal(err)
	}
	if res.Size() < 1 || res.Size() > n {
		t.Fatalf("dominating set size %d", res.Size())
	}
}

func TestAdapterWithAlg1(t *testing.T) {
	const n = 200
	rng := xrand.New(2)
	edges, adj := randomGraph(rng.Split(), n, 0.08)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	// Stream length for alg1: n self loops + 2 tuples per graph edge.
	streamLen := n + 2*len(edges)
	alg := core.New(n, n, streamLen, core.DefaultParams(n, n), rng.Split())
	a := NewAdapter(n, alg)
	for _, e := range edges {
		if err := a.ProcessEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	res := a.Finish()
	if err := res.Verify(n, adj); err != nil {
		t.Fatal(err)
	}
}

func TestAdapterDeduplicatesAndSkipsLoops(t *testing.T) {
	a := NewAdapter(4, kk.New(4, 4, xrand.New(3)))
	for _, e := range []GraphEdge{{0, 1}, {1, 0}, {0, 1}, {2, 2}} {
		if err := a.ProcessEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if a.GraphEdges() != 1 {
		t.Fatalf("counted %d distinct edges, want 1", a.GraphEdges())
	}
}

func TestAdapterRejectsOutOfRange(t *testing.T) {
	a := NewAdapter(3, kk.New(3, 3, xrand.New(4)))
	if err := a.ProcessEdge(GraphEdge{0, 3}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := a.ProcessEdge(GraphEdge{-1, 0}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestIsolatedVerticesDominateThemselves(t *testing.T) {
	// No edges at all: every vertex must dominate itself via the self-loop
	// feed; the dominating set is all of V.
	const n = 10
	a := NewAdapter(n, kk.New(n, n, xrand.New(5)))
	res := a.Finish()
	if err := res.Verify(n, func(u, v int32) bool { return false }); err != nil {
		t.Fatal(err)
	}
	for v, d := range res.Dominator {
		if d != int32(v) {
			t.Fatalf("isolated vertex %d dominated by %d", v, d)
		}
	}
}

func TestVerifyCatchesBadResults(t *testing.T) {
	adj := func(u, v int32) bool { return false }
	bad := Result{Dominators: []int32{0}, Dominator: []int32{0, 0}}
	if err := bad.Verify(2, adj); err == nil {
		t.Fatal("non-adjacent dominator accepted")
	}
	bad = Result{Dominators: []int32{0}, Dominator: []int32{0, -1}}
	if err := bad.Verify(2, adj); err == nil {
		t.Fatal("undominated vertex accepted")
	}
	bad = Result{Dominators: []int32{0}, Dominator: []int32{0, 1}}
	if err := bad.Verify(2, adj); err == nil {
		t.Fatal("unchosen dominator accepted")
	}
}

func TestNewAdapterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdapter(0, nil)
}
