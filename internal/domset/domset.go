// Package domset adapts graph streams to edge-arrival Set Cover, realizing
// the paper's observation that streaming Dominating Set is the m = n
// special case ([19], §1): vertex i's set is its closed neighbourhood N[i],
// so one undirected graph edge {u, v} arriving in the stream corresponds to
// the two Set Cover tuples (N[u], v) and (N[v], u), and each vertex's
// self-loop tuple (N[v], v) is emitted once up front (every vertex
// dominates itself).
//
// The adapter lets any streaming Set Cover algorithm in this library run
// directly on a graph edge stream and emit a dominating set with a
// dominator certificate.
package domset

import (
	"fmt"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
)

// GraphEdge is one undirected edge {U, V} of the graph stream.
type GraphEdge struct {
	U, V int32
}

// Adapter feeds a streaming Set Cover algorithm from a graph edge stream.
type Adapter struct {
	n     int
	alg   stream.Algorithm
	seen  map[GraphEdge]struct{}
	edges int
}

// NewAdapter wraps alg (built for n elements and m = n sets) for a graph of
// n vertices. The n self-loop tuples are fed immediately — they correspond
// to no stream edge and are known a priori.
func NewAdapter(n int, alg stream.Algorithm) *Adapter {
	if n <= 0 {
		panic("domset: need n > 0")
	}
	a := &Adapter{n: n, alg: alg, seen: make(map[GraphEdge]struct{})}
	for v := 0; v < n; v++ {
		alg.Process(stream.Edge{Set: setcover.SetID(v), Elem: setcover.Element(v)})
	}
	return a
}

// ProcessEdge feeds one undirected graph edge, translating it into its two
// Set Cover tuples. Self-loops and duplicate edges are ignored (closed
// neighbourhoods are sets); out-of-range endpoints are an error.
func (a *Adapter) ProcessEdge(e GraphEdge) error {
	if e.U < 0 || int(e.U) >= a.n || e.V < 0 || int(e.V) >= a.n {
		return fmt.Errorf("domset: edge {%d,%d} out of range [0,%d)", e.U, e.V, a.n)
	}
	if e.U == e.V {
		return nil
	}
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	if _, dup := a.seen[e]; dup {
		return nil
	}
	a.seen[e] = struct{}{}
	a.edges++
	a.alg.Process(stream.Edge{Set: setcover.SetID(e.U), Elem: setcover.Element(e.V)})
	a.alg.Process(stream.Edge{Set: setcover.SetID(e.V), Elem: setcover.Element(e.U)})
	return nil
}

// GraphEdges returns how many distinct undirected edges were processed.
func (a *Adapter) GraphEdges() int { return a.edges }

// Finish returns the dominating set: Result.Dominators lists the chosen
// vertices and Dominator[v] names a chosen vertex dominating v.
func (a *Adapter) Finish() Result {
	cov := a.alg.Finish()
	res := Result{Dominator: make([]int32, a.n)}
	for _, s := range cov.Sets {
		res.Dominators = append(res.Dominators, int32(s))
	}
	for v := 0; v < a.n; v++ {
		res.Dominator[v] = int32(cov.Certificate[v])
	}
	return res
}

// Result is a dominating set with its certificate.
type Result struct {
	// Dominators are the chosen vertices, ascending.
	Dominators []int32
	// Dominator[v] is a chosen vertex dominating v (v itself or a
	// neighbour), or -1 if v was never dominated (disconnected input fed to
	// an algorithm that missed it — impossible with the self-loop feed).
	Dominator []int32
}

// Size returns the dominating set's cardinality.
func (r Result) Size() int { return len(r.Dominators) }

// Verify checks the result against the graph's adjacency: every vertex's
// dominator must be chosen and must be the vertex itself or a neighbour.
func (r Result) Verify(n int, adj func(u, v int32) bool) error {
	chosen := make(map[int32]struct{}, len(r.Dominators))
	for _, d := range r.Dominators {
		chosen[d] = struct{}{}
	}
	for v := 0; v < n; v++ {
		d := r.Dominator[v]
		if d < 0 {
			return fmt.Errorf("domset: vertex %d undominated", v)
		}
		if _, in := chosen[d]; !in {
			return fmt.Errorf("domset: dominator %d of vertex %d not chosen", d, v)
		}
		if d != int32(v) && !adj(d, int32(v)) {
			return fmt.Errorf("domset: %d does not dominate %d", d, v)
		}
	}
	return nil
}
