package orlib

import (
	"bytes"
	"strings"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

const tiny = `
4 3
2 5 1
1 1
2 1 2
2 2 3
1 3
`

func TestParseTiny(t *testing.T) {
	got, err := Parse(strings.NewReader(tiny))
	if err != nil {
		t.Fatal(err)
	}
	inst := got.Inst
	if inst.UniverseSize() != 4 || inst.NumSets() != 3 {
		t.Fatalf("shape %d×%d", inst.UniverseSize(), inst.NumSets())
	}
	if len(got.Costs) != 3 || got.Costs[1] != 5 {
		t.Fatalf("costs %v", got.Costs)
	}
	// Column 1 (set 0) covers rows 1 and 2 (elements 0, 1).
	wantSets := map[int][]setcover.Element{
		0: {0, 1},
		1: {1, 2},
		2: {2, 3},
	}
	for s, want := range wantSets {
		gotElems := inst.Set(setcover.SetID(s))
		if len(gotElems) != len(want) {
			t.Fatalf("set %d = %v want %v", s, gotElems, want)
		}
		for i := range want {
			if gotElems[i] != want[i] {
				t.Fatalf("set %d = %v want %v", s, gotElems, want)
			}
		}
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		frag  string
	}{
		{"empty", "", "unexpected end"},
		{"bad dims", "0 3\n", "invalid dimensions"},
		{"non integer", "2 2\n1 x\n", "not an integer"},
		{"negative cost", "2 2\n1 -1\n1 1\n1 2\n", "negative cost"},
		{"missing costs", "2 2\n1\n", "unexpected end"},
		{"row covered by zero", "2 2\n1 1\n0\n1 1\n", "infeasible"},
		{"column out of range", "2 2\n1 1\n1 3\n1 1\n", "outside"},
		{"column zero", "2 2\n1 1\n1 0\n1 1\n", "outside"},
		{"truncated row", "2 2\n1 1\n2 1\n", "unexpected end"},
		{"trailing garbage", "1 1\n1\n1 1\n99\n", "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q missing %q", err, tc.frag)
			}
		})
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	w := workload.Planted(xrand.New(1), 60, 120, 6, 0)
	var buf bytes.Buffer
	if err := Write(&buf, w.Inst, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Inst.Equal(w.Inst) {
		t.Fatalf("round trip changed the instance: %v vs %v", got.Inst.Stats(), w.Inst.Stats())
	}
	for _, c := range got.Costs {
		if c != 1 {
			t.Fatalf("unit costs expected, got %v", got.Costs)
		}
	}
}

func TestWriteCustomCosts(t *testing.T) {
	inst := setcover.MustNewInstance(2, [][]setcover.Element{{0}, {1}})
	var buf bytes.Buffer
	if err := Write(&buf, inst, []int{7, 9}); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Costs[0] != 7 || got.Costs[1] != 9 {
		t.Fatalf("costs %v", got.Costs)
	}
	if err := Write(&buf, inst, []int{1}); err == nil {
		t.Fatal("cost-count mismatch accepted")
	}
}

func TestParsedInstanceRunsThroughGreedy(t *testing.T) {
	got, err := Parse(strings.NewReader(tiny))
	if err != nil {
		t.Fatal(err)
	}
	cov, err := setcover.Greedy(got.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := cov.Verify(got.Inst); err != nil {
		t.Fatal(err)
	}
	// {col1, col3} = sets {0,2} cover everything: greedy finds 2.
	if cov.Size() != 2 {
		t.Fatalf("greedy %d want 2", cov.Size())
	}
}
