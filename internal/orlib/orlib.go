// Package orlib reads Set Cover instances in the OR-Library SCP format —
// the standard benchmark format (Beasley's scp4x/scp5x/rail files) used by
// the practical set cover literature the paper cites in §1.3 ([5], [11],
// [21]). Parsing it lets the streaming algorithms run on the classical
// benchmark instances alongside the synthetic workloads.
//
// Format (whitespace-separated integers):
//
//	rows cols                 (rows = elements, cols = sets)
//	cost_1 ... cost_cols      (column costs; this library solves the
//	                           unweighted problem and reports costs only)
//	for each row r:
//	    k_r  col ... col      (the k_r columns covering row r, 1-based)
//
// The parser is strict: counts must match, indices must be in range, and
// trailing garbage is an error.
package orlib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"streamcover/internal/setcover"
)

// Instance is a parsed OR-Library SCP instance.
type Instance struct {
	// Inst is the unweighted Set Cover instance: elements are the rows,
	// sets are the columns (both zero-based).
	Inst *setcover.Instance
	// Costs are the column costs from the file, index-aligned with set ids.
	Costs []int
}

// Parse reads one instance from r.
func Parse(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	sc.Split(bufio.ScanWords)
	next := func(what string) (int, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return 0, fmt.Errorf("orlib: reading %s: %w", what, err)
			}
			return 0, fmt.Errorf("orlib: unexpected end of input reading %s", what)
		}
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			return 0, fmt.Errorf("orlib: %s: %q is not an integer", what, sc.Text())
		}
		return v, nil
	}

	rows, err := next("row count")
	if err != nil {
		return nil, err
	}
	cols, err := next("column count")
	if err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("orlib: invalid dimensions %d×%d", rows, cols)
	}

	costs := make([]int, cols)
	for j := range costs {
		c, err := next(fmt.Sprintf("cost of column %d", j+1))
		if err != nil {
			return nil, err
		}
		if c < 0 {
			return nil, fmt.Errorf("orlib: negative cost %d for column %d", c, j+1)
		}
		costs[j] = c
	}

	b := setcover.NewBuilder(rows)
	b.EnsureSets(cols)
	for row := 0; row < rows; row++ {
		k, err := next(fmt.Sprintf("cover count of row %d", row+1))
		if err != nil {
			return nil, err
		}
		if k < 1 {
			return nil, fmt.Errorf("orlib: row %d covered by %d columns; instance infeasible", row+1, k)
		}
		for i := 0; i < k; i++ {
			col, err := next(fmt.Sprintf("column %d/%d of row %d", i+1, k, row+1))
			if err != nil {
				return nil, err
			}
			if col < 1 || col > cols {
				return nil, fmt.Errorf("orlib: row %d references column %d outside [1,%d]", row+1, col, cols)
			}
			if err := b.AddEdge(setcover.SetID(col-1), setcover.Element(row)); err != nil {
				return nil, fmt.Errorf("orlib: %w", err)
			}
		}
	}
	if sc.Scan() {
		return nil, fmt.Errorf("orlib: trailing data %q after instance", sc.Text())
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("orlib: %w", err)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("orlib: %w", err)
	}
	return &Instance{Inst: inst, Costs: costs}, nil
}

// Write emits inst in the OR-Library format (the inverse of Parse), using
// unit costs when costs is nil.
func Write(w io.Writer, inst *setcover.Instance, costs []int) error {
	rows, cols := inst.UniverseSize(), inst.NumSets()
	if costs != nil && len(costs) != cols {
		return fmt.Errorf("orlib: %d costs for %d columns", len(costs), cols)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", rows, cols)
	for j := 0; j < cols; j++ {
		c := 1
		if costs != nil {
			c = costs[j]
		}
		if j > 0 {
			bw.WriteByte(' ')
		}
		fmt.Fprintf(bw, "%d", c)
	}
	bw.WriteByte('\n')

	// Invert the set→elements structure into row→columns.
	byRow := make([][]int, rows)
	for j := 0; j < cols; j++ {
		for _, u := range inst.Set(setcover.SetID(j)) {
			byRow[u] = append(byRow[u], j+1)
		}
	}
	for row := 0; row < rows; row++ {
		fmt.Fprintf(bw, "%d\n", len(byRow[row]))
		for i, col := range byRow[row] {
			if i > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", col)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
