package orlib

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks that the OR-Library parser never panics on arbitrary
// text and that anything it accepts survives a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(tiny)
	f.Add("")
	f.Add("1 1\n1\n1 1\n")
	f.Add("2 2\n1 1\n1 1\n1 2\n")
	f.Add("999999999 999999999\n")
	f.Add("4 3\n2 5 1\n1 1\n2 1 2\n2 2 3\n1 0")

	f.Fuzz(func(t *testing.T, input string) {
		got, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent and feasible.
		if err := got.Inst.Validate(); err != nil {
			t.Fatalf("accepted infeasible instance: %v", err)
		}
		if len(got.Costs) != got.Inst.NumSets() {
			t.Fatalf("cost count %d for %d sets", len(got.Costs), got.Inst.NumSets())
		}
		var buf bytes.Buffer
		if err := Write(&buf, got.Inst, got.Costs); err != nil {
			t.Fatalf("re-write of accepted instance failed: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Inst.NumEdges() != got.Inst.NumEdges() ||
			again.Inst.NumSets() != got.Inst.NumSets() ||
			again.Inst.UniverseSize() != got.Inst.UniverseSize() {
			t.Fatal("round trip changed the instance shape")
		}
	})
}
