package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/adversarial"
	"streamcover/internal/lowerbound"
	"streamcover/internal/multipass"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Protocol reproduces the deterministic t-party protocol the paper invokes
// in §3 (approximation 2√(nt) with Õ(n) messages) — the construction that
// forces the Theorem 2 lower bound to use t = Ω(α²/n) parties. Expected
// shape: message size stays O(n) for every t while the realized cover
// degrades no worse than the 2√(nt)·OPT budget.
func Protocol(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+71), cfg.N, cfg.M, cfg.OPT, 0)
	opt := w.PlantedOPT
	tb := texttable.New(
		fmt.Sprintf("Deterministic t-party protocol (n=%d m=%d opt=%d)", cfg.N, cfg.M, cfg.OPT),
		"t", "threshold", "cover", "2*sqrt(nt)*OPT", "max message(words)", "message/n")
	worstHeadroom := 0.0
	var maxMsg float64
	for _, t := range []int{2, 4, 8, 16} {
		edges := stream.Arrange(w.Inst, stream.RoundRobin, xrand.New(cfg.Seed+uint64(t)))
		res, err := lowerbound.SimpleProtocol(cfg.N, lowerbound.SplitEdges(edges, t))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		bound := 2 * math.Sqrt(float64(cfg.N*t)) * float64(opt)
		tb.AddRow(fi(t), fi(res.Threshold), fi(res.Cover.Size()), f0(bound),
			f64i(res.MaxMessageWords), f2(float64(res.MaxMessageWords)/float64(cfg.N)))
		if head := float64(res.Cover.Size()) / bound; head > worstHeadroom {
			worstHeadroom = head
		}
		if float64(res.MaxMessageWords) > maxMsg {
			maxMsg = float64(res.MaxMessageWords)
		}
	}
	rep := newReport("E-PROTO", "Deterministic t-party protocol (paper §3, full version)", tb)
	rep.Findings["worst_cover_over_bound"] = worstHeadroom
	rep.Findings["max_message_over_n"] = maxMsg / float64(cfg.N)
	rep.Notes = append(rep.Notes,
		"paper: approximation ≤ 2√(nt)·OPT with Õ(n) messages — the reason Theorem 2 needs t = Ω(α²/n) parties")
	return rep, nil
}

// MultiPassTradeoff reproduces the pass/space/quality trade-off of the
// multi-pass sample-and-prune baseline ([6], §1): larger per-set sketches
// buy fewer passes and better covers at more space — the regime the paper's
// one-pass algorithms deliberately leave.
func MultiPassTradeoff(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+81), cfg.N, cfg.M, cfg.OPT, 0)
	opt := w.PlantedOPT
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(cfg.Seed+82))
	tb := texttable.New(
		fmt.Sprintf("Multi-pass sample-and-prune ([6]-style) on n=%d m=%d opt=%d", cfg.N, cfg.M, cfg.OPT),
		"budget B", "passes", "cover", "ratio", "sketch state(words)")
	var budgets, passes []float64
	for _, b := range []int{2 * opt, 8 * opt, 32 * opt, cfg.N} {
		res, err := multipass.Run(cfg.N, cfg.M, stream.NewSlice(edges),
			multipass.Options{SampleBudget: b}, xrand.New(cfg.Seed+83))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		tb.AddRow(fi(b), fi(res.Passes), fi(res.Cover.Size()),
			f2(float64(res.Cover.Size())/float64(opt)), f64i(res.Space.State))
		budgets = append(budgets, float64(b))
		passes = append(passes, float64(res.Passes))
	}
	rep := newReport("E-EXT-MP", "Multi-pass baseline trade-off (passes vs space)", tb)
	rep.Findings["passes_at_small_budget"] = passes[0]
	rep.Findings["passes_at_full_budget"] = passes[len(passes)-1]
	rep.Findings["passes_vs_budget_slope"] = stats.GeometricFitSlope(budgets, passes)
	rep.Notes = append(rep.Notes,
		"multi-pass literature ([6],[10],[1],[15]): more passes ⇒ less space/better covers; one-pass is the paper's regime")
	return rep, nil
}

// EnsembleBoost reproduces the paper's boosting remarks (after Theorems 2
// and 4): running O(log m) independent copies and keeping the smallest
// cover turns Algorithm 2's expected guarantee into a high-probability one
// at a proportional space cost.
func EnsembleBoost(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+91), cfg.N, cfg.M, cfg.OPT, 0)
	opt := w.PlantedOPT
	alpha := 2 * sqrtf(cfg.N)
	tb := texttable.New(
		fmt.Sprintf("Ensemble boosting of Algorithm 2 (n=%d m=%d α=%.0f)", cfg.N, cfg.M, alpha),
		"copies", "cover(mean)", "ratio", "state(words)")
	var single, boosted float64
	for _, k := range []int{1, 4, int(math.Ceil(math.Log2(float64(cfg.M))))} {
		var covers, states []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := xrand.New(cfg.Seed ^ uint64(k*1009) ^ uint64(rep)*31)
			edges := stream.Arrange(w.Inst, stream.RoundRobin, rng.Split())
			copies := make([]stream.Algorithm, k)
			for i := range copies {
				copies[i] = adversarial.New(cfg.N, cfg.M, alpha, rng.Split())
			}
			ens := stream.NewEnsemble(copies...)
			res := stream.RunEdges(ens, edges)
			covers = append(covers, float64(res.Cover.Size()))
			states = append(states, float64(res.Space.State))
		}
		cs, ss := stats.Summarize(covers), stats.Summarize(states)
		tb.AddRow(fi(k), f0(cs.Mean), f2(cs.Mean/float64(opt)), f0(ss.Mean))
		if k == 1 {
			single = cs.Mean
		}
		boosted = cs.Mean
	}
	rep := newReport("E-ENS", "High-probability boosting via parallel copies (paper remarks)", tb)
	rep.Findings["boost_improvement"] = single / boosted
	rep.Notes = append(rep.Notes,
		"min over O(log m) copies ⇒ high-probability guarantee at a log m space factor")
	return rep, nil
}
