package experiments

import (
	"strings"
	"testing"
)

// Every experiment's paper-predicted shape is encoded once, in the registry
// Check functions; this test executes all of them at the quick
// configuration — the executable form of EXPERIMENTS.md's paper-vs-measured
// table (cmd/scbench -check runs the identical assertions for users).
func TestEveryExperimentMatchesPaperShape(t *testing.T) {
	cfg := Quick()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %s, registry id %s", rep.ID, e.ID)
			}
			if rep.Table == nil || rep.Table.NumRows() == 0 {
				t.Fatal("empty table")
			}
			for _, fail := range e.Check(rep) {
				t.Errorf("%s: %s\n%s", e.Paper, fail, rep.Table)
			}
		})
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	reports, err := All(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Registry()) {
		t.Fatalf("All returned %d reports for %d registry entries", len(reports), len(Registry()))
	}
	seen := map[string]bool{}
	for i, r := range reports {
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.ID != Registry()[i].ID {
			t.Errorf("report %d has id %s, registry says %s", i, r.ID, Registry()[i].ID)
		}
		out := r.String()
		if !strings.Contains(out, r.ID) {
			t.Errorf("report text missing id: %q", out[:60])
		}
	}
}

func TestRegistryFind(t *testing.T) {
	if _, ok := Find("E-T1-R4"); !ok {
		t.Fatal("E-T1-R4 missing from registry")
	}
	if _, ok := Find("E-NOPE"); ok {
		t.Fatal("Find accepted unknown id")
	}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Paper == "" || e.Run == nil || e.Check == nil {
			t.Fatalf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate registry id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestCheckReportsMissingFindings(t *testing.T) {
	// A Check against an empty report must flag missing findings rather
	// than panic or silently pass.
	e, ok := Find("E-T1-R2")
	if !ok {
		t.Fatal("entry missing")
	}
	empty := newReport("E-T1-R2", "x", nil)
	fails := e.Check(empty)
	if len(fails) == 0 {
		t.Fatal("empty report passed its checks")
	}
	if !strings.Contains(fails[0], "missing") {
		t.Fatalf("unexpected failure message %q", fails[0])
	}
}

func TestReportDeterministic(t *testing.T) {
	ra, err := Table1Row2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Table1Row2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if ra.String() != rb.String() {
		t.Fatal("experiment not reproducible for a fixed config")
	}
}

// TestAllWorkerCountsAgree pins the scheduler determinism contract for the
// registry: the rendered reports are identical no matter how many workers
// shard the experiments.
func TestAllWorkerCountsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the registry twice")
	}
	cfg := Quick()
	cfg.Workers = 1
	want, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	got, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].String() != got[i].String() {
			t.Errorf("%s differs between workers=1 and workers=4", want[i].ID)
		}
	}
}

// Deeper one-off assertions that go beyond the registry's shape checks.

func TestLowerBoundDecisionDetails(t *testing.T) {
	rep, err := LowerBound(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Findings["bounded_detects_intersecting"] == 1 {
		t.Logf("note: starved algorithm detected the intersecting case at this seed\n%s", rep.Table)
	}
}

func TestSeparationReportsEveryOrder(t *testing.T) {
	rep, err := Separation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table.NumRows() != 6 {
		t.Fatalf("separation table has %d rows, want one per order", rep.Table.NumRows())
	}
}

func TestAblationAlg1ReportsInvariantRows(t *testing.T) {
	rep, err := AblationAlg1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Table.String()
	for _, frag := range []string{"(I1)", "(I2)", "(I3)", "Lemma 5", "Lemma 8"} {
		if !strings.Contains(s, frag) {
			t.Errorf("ablation table missing %s:\n%s", frag, s)
		}
	}
}
