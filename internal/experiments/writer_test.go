package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// mustRun fails the test if an experiment cannot be evaluated.
func mustRun(t *testing.T, run func(Config) (*Report, error), cfg Config) *Report {
	t.Helper()
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWriteMarkdownReport(t *testing.T) {
	cfg := Quick()
	reports := []*Report{
		mustRun(t, Table1Row2, cfg),
		mustRun(t, Concentration, cfg),
	}
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, cfg, reports); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{
		"# streamcover evaluation report",
		"## E-T1-R2",
		"## E-CONC",
		"CHECK PASSED",
		"## Summary",
		"2/2 experiments match",
	} {
		if !strings.Contains(s, frag) {
			t.Fatalf("report missing %q:\n%s", frag, s[:min(len(s), 400)])
		}
	}
}

func TestWriteMarkdownReportFlagsFailures(t *testing.T) {
	cfg := Quick()
	// A doctored report that violates its own check.
	rep := mustRun(t, Table1Row2, cfg)
	rep.Findings["space_vs_m_slope"] = 0 // far outside [0.8, 1.2]
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, cfg, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "CHECK FAILED") {
		t.Fatalf("failure not flagged:\n%s", s)
	}
	if !strings.Contains(s, "0/1 experiments match") {
		t.Fatalf("summary wrong:\n%s", s)
	}
}

func TestWriteMarkdownReportDeterministic(t *testing.T) {
	cfg := Quick()
	reports := []*Report{mustRun(t, Concentration, cfg)}
	var a, b bytes.Buffer
	if err := WriteMarkdownReport(&a, cfg, reports); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdownReport(&b, cfg, reports); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("report rendering not deterministic")
	}
}

func TestWriteMarkdownReportUnknownID(t *testing.T) {
	// Reports without a registry entry render without a check block.
	rep := newReport("E-CUSTOM", "custom", mustRun(t, Concentration, Quick()).Table)
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, Quick(), []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "CHECK") {
		t.Fatal("unregistered report got a check verdict")
	}
}
