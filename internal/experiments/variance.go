package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/kk"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Variance quantifies run-to-run stability: every algorithm is randomized
// (coins) and Algorithm 1 additionally depends on the random arrival order,
// so the evaluation's mean-based tables are only meaningful if the spread
// is modest. Twenty independent (order, coins) draws per algorithm on one
// fixed instance; report mean, standard deviation, and the relative spread
// (std/mean) of the cover size.
func Variance(cfg Config) (*Report, error) {
	n, m := cfg.N, cfg.M/2
	w := workload.Planted(xrand.New(cfg.Seed+161), n, m, cfg.OPT, 0)
	opt, _ := w.OptEstimate()
	const draws = 20

	tb := texttable.New(
		fmt.Sprintf("Run-to-run variance over %d (order, coin) draws (n=%d m=%d opt=%d)", draws, n, m, cfg.OPT),
		"algo", "cover mean", "std", "rel. spread", "min", "max", "ratio(mean)")

	rep := newReport("E-VAR", "Run-to-run variance of the randomized algorithms", tb)
	for _, tc := range []struct {
		name string
		mk   func(streamLen int, rng *xrand.Rand) stream.Algorithm
	}{
		{"kk", func(_ int, rng *xrand.Rand) stream.Algorithm { return kk.New(n, m, rng) }},
		{"alg1", func(sl int, rng *xrand.Rand) stream.Algorithm {
			return core.New(n, m, sl, core.DefaultParams(n, m), rng)
		}},
		{"alg2", func(_ int, rng *xrand.Rand) stream.Algorithm {
			return adversarial.New(n, m, 2*math.Sqrt(float64(n)), rng)
		}},
	} {
		var covers []float64
		for d := 0; d < draws; d++ {
			rng := xrand.New(cfg.Seed ^ uint64(d)*0x9e3779b97f4a7c15 ^ hashName(tc.name))
			edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
			res := stream.RunEdges(tc.mk(len(edges), rng.Split()), edges)
			if err := res.Cover.Verify(w.Inst); err != nil {
				panic("experiments: " + err.Error())
			}
			covers = append(covers, float64(res.Cover.Size()))
		}
		s := stats.Summarize(covers)
		rel := 0.0
		if s.Mean > 0 {
			rel = s.Stddev / s.Mean
		}
		tb.AddRow(tc.name, f2(s.Mean), f2(s.Stddev), f2(rel), f0(s.Min), f0(s.Max), f2(s.Mean/float64(opt)))
		rep.Findings["rel_spread_"+tc.name] = rel
	}
	rep.Notes = append(rep.Notes,
		"modest relative spreads justify the mean-based comparisons in the other experiments")
	return rep, nil
}
