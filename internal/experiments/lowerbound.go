package experiments

import (
	"fmt"

	"streamcover/internal/adversarial"
	"streamcover/internal/lowerbound"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/xrand"
)

// LowerBound reproduces the Theorem 2 construction end-to-end: the Lemma 1
// family, both Set-Disjointness promise cases, the per-party reduction
// streams and the last party's decision rule, executed (a) by the
// unbounded-state reference algorithm and (b) by a deliberately space-starved
// streaming algorithm. The paper predicts (a) distinguishes the cases while
// carrying Ω(input)-sized messages, and (b)'s small messages cannot: its
// cover estimates no longer separate 2·α from OPT0.
func LowerBound(cfg Config) (*Report, error) {
	const (
		t       = 4
		count   = 30 // disjointness universe (= family size)
		partySz = 7
	)
	n := cfg.N
	if n > 900 {
		n = 900 // the reduction replays count streams; keep runs snappy
	}
	threshold := t + 1

	tb := texttable.New(
		fmt.Sprintf("Theorem 2 reduction (n=%d, t=%d, %d candidate sets, decision threshold %d)", n, t, count, threshold),
		"case", "algorithm", "decided", "correct", "best est.", "max message(words)")

	rep := newReport("E-LB", "Adversarial-order lower bound construction (Theorem 2)", tb)

	famIntersect := 0.0
	for _, tc := range []struct {
		name         string
		intersecting bool
	}{{"intersecting", true}, {"disjoint", false}} {
		rng := xrand.New(cfg.Seed + 101)
		fam := lowerbound.NewFamily(rng.Split(), n, count, t)
		if famIntersect == 0 {
			famIntersect = float64(fam.MaxPartIntersection(rng.Split(), 2000))
		}
		var d *lowerbound.Disjointness
		if tc.intersecting {
			d = lowerbound.NewIntersecting(rng.Split(), count, t, partySz)
		} else {
			d = lowerbound.NewDisjoint(rng.Split(), count, t, partySz)
		}
		red, err := lowerbound.NewReduction(fam, d)
		if err != nil {
			panic("experiments: " + err.Error())
		}

		// (a) Unbounded state: store everything, solve exactly at the end.
		decA := lowerbound.Decide(red, func(run int) lowerbound.CutAlgorithm {
			return stream.NewStoreAll(fam.N, red.NumSets())
		}, threshold)
		tb.AddRow(tc.name, "store-all", fmt.Sprint(decA.Intersecting),
			fmt.Sprint(decA.Intersecting == tc.intersecting), fi(decA.BestSize), f64i(decA.MaxMessage))

		// (b) Space-starved: Algorithm 2 with α = n promotes almost nothing,
		// so its state (and messages) stay tiny.
		decB := lowerbound.Decide(red, func(run int) lowerbound.CutAlgorithm {
			return adversarial.New(fam.N, red.NumSets(), float64(fam.N), xrand.New(cfg.Seed+7))
		}, threshold)
		tb.AddRow(tc.name, "alg2(α=n)", fmt.Sprint(decB.Intersecting),
			fmt.Sprint(decB.Intersecting == tc.intersecting), fi(decB.BestSize), f64i(decB.MaxMessage))

		key := tc.name
		if decA.Intersecting == tc.intersecting {
			rep.Findings["storeall_correct_"+key] = 1
		} else {
			rep.Findings["storeall_correct_"+key] = 0
		}
		rep.Findings["storeall_msg_"+key] = float64(decA.MaxMessage)
		rep.Findings["bounded_msg_"+key] = float64(decB.MaxMessage)
		if tc.intersecting {
			if decB.Intersecting {
				rep.Findings["bounded_detects_intersecting"] = 1
			} else {
				rep.Findings["bounded_detects_intersecting"] = 0
			}
		}
	}
	rep.Findings["lemma1_max_part_intersection"] = famIntersect
	rep.Notes = append(rep.Notes,
		"paper: distinguishing requires Ω̃(m·n²/α⁴)-sized messages; the starved algorithm's messages are orders of magnitude smaller and its estimates cannot certify a size-2 cover",
		"Lemma 1 predicts max part-vs-set intersection O(log n)")
	return rep, nil
}

// Concentration reproduces the Lemma 2 sampling experiments (the
// concentration result behind every random-order argument): each regime's
// bound is checked over repeated hypergeometric draws.
func Concentration(cfg Config) (*Report, error) {
	rng := xrand.New(cfg.Seed + 55)
	trials := 100 * cfg.Reps

	tb := texttable.New("Lemma 2 concentration (sampling without replacement)",
		"regime", "N", "|X|", "l", "expected", "mean", "violations", "trials")

	r1 := lowerbound.CheckRegime1(rng, 10_000_000, 9_000_000, 10_000, trials)
	tb.AddRow("1: ±1% two-sided", "1e7", "9e6", "1e4", f0(r1.Expected), f2(r1.Mean), fi(r1.Violations), fi(r1.Trials))

	r2 := lowerbound.CheckRegime2(rng, 100_000, 50, 1000, trials, 4, 1<<20)
	tb.AddRow("2: ≤ C·log m cap", "1e5", "50", "1e3", f2(r2.Expected), f2(r2.Mean), fi(r2.Violations), fi(r2.Trials))

	r3 := lowerbound.CheckRegime3(rng, 1_000_000, 20_000, 50_000, trials, cfg.N, 1<<20)
	tb.AddRow("3: ±log m·√E window", "1e6", "2e4", "5e4", f0(r3.Expected), f2(r3.Mean), fi(r3.Violations), fi(r3.Trials))

	rep := newReport("E-CONC", "Lemma 2 concentration regimes", tb)
	rep.Findings["regime1_violation_rate"] = float64(r1.Violations) / float64(r1.Trials)
	rep.Findings["regime2_violation_rate"] = float64(r2.Violations) / float64(r2.Trials)
	rep.Findings["regime3_violation_rate"] = float64(r3.Violations) / float64(r3.Trials)
	rep.Notes = append(rep.Notes, "paper: each bound holds with probability ≥ 1 − 1/m²⁰")
	return rep, nil
}
