package experiments

import (
	"strings"
	"testing"
)

// TestRunCellWithResumeCheck drives the Table-1 regime experiment with
// in-memory checkpointing plus the resume check: every snapshottable rep is
// checkpointed, restored into a fresh instance and replayed, and runCell
// reports an error on any divergence — so a clean pass is the assertion.
func TestRunCellWithResumeCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint+resume doubles every rep")
	}
	cfg := Quick()
	cfg.Reps = 2
	cfg.CheckpointEvery = 5000
	cfg.ResumeCheck = true

	e, ok := Find("E-T1-R1")
	if !ok {
		t.Fatal("E-T1-R1 not registered")
	}
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Table == nil {
		t.Fatal("no report")
	}
	if !strings.Contains(rep.Table.String(), "alpha") {
		t.Fatalf("unexpected table:\n%s", rep.Table.String())
	}
}
