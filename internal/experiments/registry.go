package experiments

import "fmt"

// Entry describes one registered experiment together with its
// paper-predicted expectations.
type Entry struct {
	// ID is the identifier from DESIGN.md's per-experiment index.
	ID string
	// Paper names the artifact being reproduced.
	Paper string
	// Run executes the experiment. It returns an error — not a panic — when
	// a cell cannot be evaluated (all failed repetitions joined).
	Run func(Config) (*Report, error)
	// Check evaluates the report against the paper's predicted shape and
	// returns one message per failed expectation (empty = everything
	// holds). The same checks back the unit tests and scbench's -check
	// mode, so "paper vs measured" has a single executable definition.
	Check func(*Report) []string
}

// failf collects formatted failures.
type failures []string

func (f *failures) addf(format string, args ...any) {
	*f = append(*f, fmt.Sprintf(format, args...))
}

// expectRange appends a failure unless lo ≤ value ≤ hi.
func (f *failures) expectRange(rep *Report, key string, lo, hi float64) {
	v, ok := rep.Findings[key]
	if !ok {
		f.addf("finding %q missing", key)
		return
	}
	if v < lo || v > hi {
		f.addf("%s = %.3g outside expected [%.3g, %.3g]", key, v, lo, hi)
	}
}

// Registry lists every experiment in presentation order — the single source
// of truth shared by All, cmd/scbench and the root benchmarks.
func Registry() []Entry {
	return []Entry{
		{
			ID: "E-T1-R1", Paper: "Table 1 row 1 (α = o(√n), element sampling)",
			Run: Table1Row1,
			Check: func(r *Report) []string {
				var f failures
				// Paper: space ∝ mn/α ⇒ slope ≈ −1 (the log m/α clamp
				// flattens the smallest α, hence the asymmetric window).
				f.expectRange(r, "space_vs_alpha_slope", -1.6, -0.4)
				return f
			},
		},
		{
			ID: "E-T1-R2", Paper: "Table 1 row 2 (KK-algorithm, Õ(m))",
			Run: Table1Row2,
			Check: func(r *Report) []string {
				var f failures
				// Paper: space Θ(m) ⇒ slope ≈ 1.
				f.expectRange(r, "space_vs_m_slope", 0.8, 1.2)
				return f
			},
		},
		{
			ID: "E-T1-R3", Paper: "Table 1 row 3 (Algorithm 2, Õ(mn/α²))",
			Run: Table1Row3,
			Check: func(r *Report) []string {
				var f failures
				// Paper: promoted level map ∝ mn/α² ⇒ slope ≈ −2.
				f.expectRange(r, "promoted_vs_alpha_slope", -2.8, -1.2)
				return f
			},
		},
		{
			ID: "E-T1-R4", Paper: "Table 1 row 4 (Algorithm 1, Õ(m/√n), main result)",
			Run: Table1Row4,
			Check: func(r *Report) []string {
				var f failures
				// Paper: space ∝ m (slope 1) at a √n factor below KK.
				f.expectRange(r, "space_vs_m_slope", 0.6, 1.4)
				f.expectRange(r, "kk_to_alg1_space_ratio", 3, 1e9)
				return f
			},
		},
		{
			ID: "E-SEP", Paper: "Adversarial vs random separation (Thm 2 vs Thm 3)",
			Run: Separation,
			Check: func(r *Report) []string {
				var f failures
				// Random order must not be worse than the worst adversarial.
				f.expectRange(r, "adversarial_to_random_cover_ratio", 1.0, 1e9)
				return f
			},
		},
		{
			ID: "E-LB", Paper: "Theorem 2 lower-bound construction",
			Run: LowerBound,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "storeall_correct_intersecting", 1, 1)
				f.expectRange(r, "storeall_correct_disjoint", 1, 1)
				// Lemma 1: O(log n) part-vs-set intersections.
				f.expectRange(r, "lemma1_max_part_intersection", 1, 30)
				// The starved algorithm's messages must be much smaller.
				if r.Findings["bounded_msg_intersecting"] >= r.Findings["storeall_msg_intersecting"] {
					f.addf("space-starved messages (%.0f) not below store-all (%.0f)",
						r.Findings["bounded_msg_intersecting"], r.Findings["storeall_msg_intersecting"])
				}
				return f
			},
		},
		{
			ID: "E-CONC", Paper: "Lemma 2 concentration",
			Run: Concentration,
			Check: func(r *Report) []string {
				var f failures
				for _, k := range []string{"regime1_violation_rate", "regime2_violation_rate", "regime3_violation_rate"} {
					f.expectRange(r, k, 0, 0.05)
				}
				return f
			},
		},
		{
			ID: "E-ABL-KK", Paper: "KK level decay ([19])",
			Run: AblationKKLevels,
			Check: func(r *Report) []string {
				var f failures
				// E|S_i| ≤ ½·E|S_{i−1}| from level 2 on (with slack).
				f.expectRange(r, "worst_decay_ratio_from_level2", 0, 1.0)
				return f
			},
		},
		{
			ID: "E-ABL-A2", Paper: "Algorithm 2 promoted-set scaling",
			Run: AblationPromoted,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "promoted_vs_alpha_slope", -2.8, -1.2)
				return f
			},
		},
		{
			ID: "E-ABL-A1", Paper: "Algorithm 1 invariants (I1)–(I3), Lemmas 5/8",
			Run: AblationAlg1,
			Check: func(r *Report) []string {
				var f failures
				// (I3): Õ(√n) additions per A(i); generous constant.
				f.expectRange(r, "max_added_per_alg", 0, 400)
				// (I1): Õ(√n·polylog) uncovered coverage outside Sol.
				f.expectRange(r, "i1_max_unmarked_coverage", 0, 400)
				return f
			},
		},
		{
			ID: "E-SETARR", Paper: "Arrival-model contrast (§1)",
			Run: SetArrivalContrast,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "edge_to_set_space_ratio", 2, 1e9)
				return f
			},
		},
		{
			ID: "E-PROTO", Paper: "Deterministic t-party protocol (§3)",
			Run: Protocol,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "worst_cover_over_bound", 0, 1.1)
				f.expectRange(r, "max_message_over_n", 0, 3)
				return f
			},
		},
		{
			ID: "E-EXT-MP", Paper: "Multi-pass sample-and-prune ([6])",
			Run: MultiPassTradeoff,
			Check: func(r *Report) []string {
				var f failures
				if r.Findings["passes_at_full_budget"] > r.Findings["passes_at_small_budget"] {
					f.addf("bigger budgets needed more passes (%.0f > %.0f)",
						r.Findings["passes_at_full_budget"], r.Findings["passes_at_small_budget"])
				}
				f.expectRange(r, "passes_vs_budget_slope", -10, 0.01)
				return f
			},
		},
		{
			ID: "E-ENS", Paper: "High-probability boosting (remarks)",
			Run: EnsembleBoost,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "boost_improvement", 0.95, 1e9)
				return f
			},
		},
		{
			ID: "E-FRAC", Paper: "Fractional Set Cover ([16])",
			Run: Fractional,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "lp_monotone_in_delta", 1, 1)
				f.expectRange(r, "lp_over_opt", 0.3, 8)
				// LP duality: the certified bound cannot exceed OPT.
				f.expectRange(r, "dual_lb_over_opt", 0, 1.000001)
				return f
			},
		},
		{
			ID: "E-EXT-CW", Paper: "Chakrabarti–Wirth p-pass ladder ([10])",
			Run: CWPasses,
			Check: func(r *Report) []string {
				var f failures
				// [10]'s guarantee is per-p: cover ≤ O(p·n^{1/(p+1)})·OPT
				// (the budget itself is not monotone in p).
				f.expectRange(r, "worst_cover_over_budget", 0, 1.5)
				f.expectRange(r, "max_space_over_n", 0, 5)
				return f
			},
		},
		{
			ID: "E-CURVE", Paper: "Coverage/state trajectories",
			Run: CoverageCurves,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "final_covered_frac_alg1", 0.5, 1)
				f.expectRange(r, "final_covered_frac_alg2", 0.5, 1)
				f.expectRange(r, "final_covered_frac_kk", 0, 1)
				f.expectRange(r, "kk_to_alg1_state", 3, 1e9)
				return f
			},
		},
		{
			ID: "E-ROBUST", Paper: "Partial-randomness robustness",
			Run: Robustness,
			Check: func(r *Report) []string {
				var f failures
				f.expectRange(r, "adversarial_to_random", 0.95, 1e9)
				return f
			},
		},
		{
			ID: "E-VAR", Paper: "Run-to-run variance of the randomized algorithms",
			Run: Variance,
			Check: func(r *Report) []string {
				var f failures
				for _, alg := range []string{"kk", "alg1", "alg2"} {
					f.expectRange(r, "rel_spread_"+alg, 0, 0.35)
				}
				return f
			},
		},
		{
			ID: "E-ABL-KNOCK", Paper: "Algorithm 1 component knockouts",
			Run: Knockout,
			Check: func(r *Report) []string {
				var f failures
				// No knockout may *improve* the cover beyond noise, and the
				// bare variant must be at least as bad as the full one.
				f.expectRange(r, "patch_only_to_full", 0.9, 1e9)
				if r.Findings["no_sample_cover"] < 0.8*r.Findings["full_cover"] {
					f.addf("removing the epoch-0 sample improved the cover (%.0f < %.0f)",
						r.Findings["no_sample_cover"], r.Findings["full_cover"])
				}
				return f
			},
		},
	}
}

// Find returns the entry with the given id (case-sensitive) or false.
func Find(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}
