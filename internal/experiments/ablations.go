package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/kk"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// AblationKKLevels verifies the invariant driving the KK-algorithm's
// analysis ([19], recounted in §1.2): the number of level-i sets — those
// with final uncovered-degree in [i√n, (i+1)√n) — decays geometrically,
// E|S_i| ≤ ½·E|S_{i−1}|, which is why the probabilistic inclusion adds only
// Õ(√n) sets per level.
func AblationKKLevels(cfg Config) (*Report, error) {
	n := cfg.N / 2
	w := workload.DominatingSet(xrand.New(cfg.Seed+31), n, 0.2)

	// Average level histograms across repetitions.
	var hist []float64
	for rep := 0; rep < cfg.Reps; rep++ {
		rng := xrand.New(cfg.Seed + 31 + uint64(rep))
		edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
		alg := kk.New(n, w.Inst.NumSets(), rng.Split())
		stream.RunEdges(alg, edges)
		for lvl, c := range alg.LevelCounts() {
			for len(hist) <= lvl {
				hist = append(hist, 0)
			}
			hist[lvl] += float64(c) / float64(cfg.Reps)
		}
	}
	tb := texttable.New(
		fmt.Sprintf("KK level decay on %s (mean over %d runs)", w.Name, cfg.Reps),
		"level i", "E|S_i|", "ratio to previous")
	worstRatio := 0.0
	for i, c := range hist {
		ratio := ""
		if i > 0 && hist[i-1] > 0 {
			r := c / hist[i-1]
			ratio = f2(r)
			if i >= 2 && r > worstRatio { // level 1/level 0 is not predicted to halve
				worstRatio = r
			}
		}
		tb.AddRow(fi(i), f2(c), ratio)
	}
	rep := newReport("E-ABL-KK", "KK-algorithm level decay (E|S_i| ≤ ½·E|S_{i−1}|)", tb)
	rep.Findings["worst_decay_ratio_from_level2"] = worstRatio
	rep.Notes = append(rep.Notes, "paper predicts ratios ≤ ~0.5 from the first sampled level on")
	return rep, nil
}

// AblationPromoted verifies Theorem 4's space mechanism: the number of sets
// Algorithm 2 ever promotes to level ≥ 1 — the size of its level map L —
// scales as mn/α², i.e. slope ≈ −2 in an α-sweep.
func AblationPromoted(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+41), cfg.N, cfg.M, cfg.OPT, 0)
	sq := sqrtf(cfg.N)
	tb := texttable.New(
		fmt.Sprintf("Algorithm 2 promoted sets vs α (n=%d m=%d)", cfg.N, cfg.M),
		"alpha", "promoted(mean)", "predicted N_edges/alpha", "promotions(mean)")
	var alphas, promoted []float64
	for _, mult := range []float64{2, 4, 8, 16} {
		alpha := mult * sq
		var proms, promotions []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := xrand.New(cfg.Seed ^ uint64(mult*1000) ^ uint64(rep)*977)
			edges := stream.Arrange(w.Inst, stream.RoundRobin, rng.Split())
			alg := adversarial.New(cfg.N, cfg.M, alpha, rng.Split())
			stream.RunEdges(alg, edges)
			proms = append(proms, float64(alg.PromotedSets()))
			promotions = append(promotions, float64(alg.Promotions()))
		}
		p := stats.Summarize(proms)
		tb.AddRow(f0(alpha), f2(p.Mean),
			f0(float64(w.Inst.NumEdges())/alpha), f2(stats.Summarize(promotions).Mean))
		alphas = append(alphas, alpha)
		promoted = append(promoted, math.Max(p.Mean, 0.1))
	}
	rep := newReport("E-ABL-A2", "Algorithm 2 promoted-set scaling (Õ(mn/α²))", tb)
	rep.Findings["promoted_vs_alpha_slope"] = stats.GeometricFitSlope(alphas, promoted)
	rep.Notes = append(rep.Notes,
		"promoted count ≈ (#uncovered-edge arrivals)/α, itself shrinking with α ⇒ paper predicts slope ≈ −2 for α = Ω̃(√n)")
	return rep, nil
}

// AblationAlg1 verifies the Algorithm 1 invariants on a random-order run:
// (I3)/Lemma 9 — only Õ(√n) sets are added per A(i); Lemma 8 — per-epoch
// special-set counts decay; and (I2) — each mid-stream inclusion has few
// "pre-inclusion" edges (the budget from which missed edges come).
func AblationAlg1(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+61), cfg.N, cfg.M, cfg.OPT, 0)
	n, m := cfg.N, cfg.M
	rng := xrand.New(cfg.Seed + 61)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	params := core.DefaultParams(n, m)
	params.TraceSpecialSets = true
	alg := core.New(n, m, len(edges), params, rng.Split())
	res := stream.RunEdges(alg, edges)
	tr := alg.Trace()

	// (I2) proxy: for every mid-stream inclusion, count the set's edges that
	// had already passed — the pool missed edges are drawn from.
	preEdges := map[int32]int{}
	addedAt := map[int32]int{}
	for _, sa := range tr.SolAdditions {
		addedAt[sa.Set] = sa.Pos
	}
	for pos, e := range edges {
		if at, ok := addedAt[e.Set]; ok && pos < at {
			preEdges[e.Set]++
		}
	}
	var pre []float64
	for _, sa := range tr.SolAdditions {
		pre = append(pre, float64(preEdges[sa.Set]))
	}
	preSum := stats.Summarize(pre)

	tb := texttable.New(
		fmt.Sprintf("Algorithm 1 invariants on %s, random order (cover=%d, state=%d words)",
			w.Name, res.Cover.Size(), res.Space.State),
		"invariant", "measured", "paper bound (shape)")
	sq := sqrtf(n)
	maxPerAlg := 0
	for _, c := range tr.AddedPerAlg {
		if c > maxPerAlg {
			maxPerAlg = c
		}
	}
	tb.AddRow("(I3) max sets added per A(i)", fi(maxPerAlg), fmt.Sprintf("Õ(√n) = Õ(%.0f)", sq))
	tb.AddRow("epoch-0 sample |Sol|", fi(tr.AddedEpoch0), fmt.Sprintf("≈ C·√n·log m = %.0f", 2*sq*math.Log2(float64(m))))
	specials := tr.SpecialsTotal()
	tb.AddRow("specials per epoch (Lemma 8)", fmt.Sprint(specials), "geometrically decaying")
	tb.AddRow("(I2) pre-inclusion edges mean/max", fmt.Sprintf("%.1f / %.0f", preSum.Mean, preSum.Max), fmt.Sprintf("Õ(√n) = Õ(%.0f)", sq))
	tb.AddRow("elements marked by tracking", fi(tr.MarkedTracking), "—")
	tb.AddRow("elements marked in epoch 0", fi(tr.MarkedEpoch0), "deg ≥ 1.1·m/√n detected")
	tb.AddRow("patched at end", fi(tr.Patched), "≤ Õ(√n)·OPT")

	// (I1): when A(K) finished, no set outside Sol should still be able to
	// cover more than Õ(√n)-scale unmarked elements.
	i1Max := 0
	if tr.MarkedAtAEnd != nil {
		inSol := make(map[int32]struct{}, len(tr.SolAtAEnd))
		for _, s := range tr.SolAtAEnd {
			inSol[s] = struct{}{}
		}
		for s := 0; s < m; s++ {
			if _, in := inSol[int32(s)]; in {
				continue
			}
			c := 0
			for _, u := range w.Inst.Set(int32(s)) {
				if !tr.MarkedAtAEnd[u] {
					c++
				}
			}
			if c > i1Max {
				i1Max = c
			}
		}
		tb.AddRow("(I1) max unmarked coverable by S∉Sol at A-end", fi(i1Max),
			fmt.Sprintf("Õ(√n·polylog) = Õ(%.0f)", sq))
	}

	// Lemma 5: specials of epoch j should have been special in epoch j−1.
	l5bad, l5total := tr.Lemma5Violations()
	l5 := "no epoch-≥2 specials"
	if l5total > 0 {
		l5 = fmt.Sprintf("%d/%d violate", l5bad, l5total)
	}
	tb.AddRow("Lemma 5 monotonicity of specials", l5, "violations vanish (w.h.p. at paper constants)")

	rep := newReport("E-ABL-A1", "Algorithm 1 invariants (I1)–(I3), Lemmas 5 and 8", tb)
	rep.Findings["max_added_per_alg"] = float64(maxPerAlg)
	rep.Findings["pre_inclusion_edges_max"] = preSum.Max
	rep.Findings["patched"] = float64(tr.Patched)
	rep.Findings["i1_max_unmarked_coverage"] = float64(i1Max)
	if l5total > 0 {
		rep.Findings["lemma5_violation_rate"] = float64(l5bad) / float64(l5total)
	}
	if len(specials) > 0 {
		rep.Findings["specials_first_epoch"] = float64(specials[0])
		rep.Findings["specials_last_epoch"] = float64(specials[len(specials)-1])
	}
	return rep, nil
}
