package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/fractional"
	"streamcover/internal/setarrival"
	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Fractional reproduces the fractional Set Cover direction the paper cites
// ([16], §1: "their multi-pass streaming algorithm for fractional Set Cover
// can also be implemented in the edge-arrival setting"): the multiplicative-
// weights solver's LP value must sit between the n/maxSetSize LP bound and
// the integral optimum's greedy neighbourhood, shrink as the increment δ
// refines, and round back to a valid integral cover within an O(log n)
// factor.
func Fractional(cfg Config) (*Report, error) {
	n := cfg.N / 4
	m := cfg.M / 16
	w := workload.Planted(xrand.New(cfg.Seed+111), n, m, cfg.OPT, 0)
	opt := w.PlantedOPT
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(cfg.Seed+112))

	tb := texttable.New(
		fmt.Sprintf("Fractional edge-arrival Set Cover ([16]-style MWU) on n=%d m=%d opt=%d", n, m, opt),
		"delta", "LP value", "value/OPT", "dual LB", "passes", "rounded cover", "rounded/OPT")
	var values []float64
	worstDual := 0.0
	for _, delta := range []float64{1, 0.5, 0.25} {
		sol, err := fractional.Solve(n, m, stream.NewSlice(edges), fractional.Options{Delta: delta})
		if err != nil {
			panic("experiments: " + err.Error())
		}
		lb, err := sol.DualBound(n, m, stream.NewSlice(edges))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		cov, err := fractional.Round(n, m, stream.NewSlice(edges), sol, xrand.New(cfg.Seed+113))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		if err := cov.Verify(w.Inst); err != nil {
			panic("experiments: rounded cover invalid: " + err.Error())
		}
		tb.AddRow(f2(delta), f2(sol.Value), f2(sol.Value/float64(opt)), f2(lb), fi(sol.Passes),
			fi(cov.Size()), f2(float64(cov.Size())/float64(opt)))
		values = append(values, sol.Value)
		if lb > worstDual {
			worstDual = lb
		}
	}
	rep := newReport("E-FRAC", "Fractional Set Cover in edge arrival ([16], cited in §1)", tb)
	rep.Findings["lp_over_opt"] = values[len(values)-1] / float64(opt)
	rep.Findings["lp_monotone_in_delta"] = boolToF(values[len(values)-1] <= values[0]+1e-9)
	rep.Findings["dual_lb_over_opt"] = worstDual / float64(opt)
	rep.Notes = append(rep.Notes,
		"LP ≤ OPT ≤ (ln n)·LP; finer δ tightens the fractional value",
		"dual LB is a certified lower bound on OPT extracted from the final weights (LP duality)")
	return rep, nil
}

// CWPasses reproduces the Chakrabarti–Wirth pass/approximation trade-off
// ([10], recounted in §1.3): p passes of the θ_j = n^{(p+1−j)/(p+1)}
// threshold schedule give an O(p·n^{1/(p+1)})-approximation in O(n) words —
// the set-arrival ladder the paper's one-pass edge-arrival results are
// measured against.
func CWPasses(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+121), cfg.N, cfg.M/4, cfg.OPT, 0)
	opt := w.PlantedOPT
	g, err := setcover.GreedySizeWorkers(w.Inst, cfg.SolverWorkers)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, xrand.New(cfg.Seed+122))

	tb := texttable.New(
		fmt.Sprintf("Chakrabarti–Wirth p-pass set-arrival ladder (n=%d m=%d opt=%d greedy=%d)", cfg.N, cfg.M/4, opt, g),
		"passes p", "thresholds", "cover", "ratio", "budget p·n^(1/(p+1))·OPT", "space(words)")
	worstOverBudget := 0.0
	maxSpaceOverN := 0.0
	for _, p := range []int{1, 2, 3, 4} {
		alg := setarrival.NewMultiPassThreshold(cfg.N, p)
		cov, err := setarrival.RunMultiPassSetArrival(alg, stream.NewSlice(edges))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		// The [10] guarantee: cover ≤ O(p·n^{1/(p+1)})·OPT. The budget is
		// NOT monotone in p (a high first threshold can waste a pass while
		// a lower later one admits small sets), so the check is against the
		// per-p budget, not across p.
		budget := float64(p) * math.Pow(float64(cfg.N), 1/float64(p+1)) * float64(opt)
		if head := float64(cov.Size()) / budget; head > worstOverBudget {
			worstOverBudget = head
		}
		if r := float64(alg.Space().Total()) / float64(cfg.N); r > maxSpaceOverN {
			maxSpaceOverN = r
		}
		tb.AddRow(fi(p), fmt.Sprint(alg.Thresholds()), fi(cov.Size()),
			f2(float64(cov.Size())/float64(opt)),
			f0(budget),
			f64i(alg.Space().Total()))
	}
	rep := newReport("E-EXT-CW", "p-pass set-arrival trade-off ([10], §1.3)", tb)
	rep.Findings["worst_cover_over_budget"] = worstOverBudget
	rep.Findings["max_space_over_n"] = maxSpaceOverN
	rep.Notes = append(rep.Notes, "[10]: approximation O(p·n^{1/(p+1)}) with Õ(n) space, optimal for constant p")
	return rep, nil
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
