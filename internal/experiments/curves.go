package experiments

import (
	"fmt"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/kk"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// CoverageCurves records, at checkpoints along a random-order stream, how
// many elements each regime's algorithm has already witnessed and how much
// working state it holds — the closest thing to a "figure" a theory paper's
// dynamics admit. The expected shapes:
//
//   - the KK-algorithm's state is flat at m from the first edge (the degree
//     array) while its coverage climbs with the probabilistic inclusions;
//   - Algorithm 1's state stays near m/√n throughout, with coverage jumps
//     at the epoch-0 sample and as A(i) detections land;
//   - Algorithm 2's state grows only as sets get promoted.
func CoverageCurves(cfg Config) (*Report, error) {
	n := cfg.N
	m := cfg.M / 2
	w := workload.Planted(xrand.New(cfg.Seed+131), n, m, cfg.OPT, 0)
	rng := xrand.New(cfg.Seed + 132)
	edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
	every := len(edges) / 8
	if every < 1 {
		every = 1
	}

	type curve struct {
		name string
		traj []stream.TrajectoryPoint
	}
	var curves []curve
	run := func(name string, alg stream.Algorithm) {
		res, traj := stream.RunInstrumented(alg, stream.NewSlice(edges), every)
		if err := res.Cover.Verify(w.Inst); err != nil {
			panic("experiments: " + err.Error())
		}
		curves = append(curves, curve{name, traj})
	}
	run("kk", kk.New(n, m, rng.Split()))
	run("alg1", core.New(n, m, len(edges), core.DefaultParams(n, m), rng.Split()))
	run("alg2", adversarial.New(n, m, 2*sqrtf(n), rng.Split()))

	tb := texttable.New(
		fmt.Sprintf("Coverage and state along a random-order stream (n=%d m=%d, checkpoints every %d edges)", n, m, every),
		"stream pos", "algo", "covered", "covered/n", "state(words)")
	for _, c := range curves {
		for _, p := range c.traj {
			tb.AddRow(fi(p.Pos), c.name, fi(p.Covered),
				f2(float64(p.Covered)/float64(n)), f64i(p.StateWords))
		}
	}
	rep := newReport("E-CURVE", "Coverage/state trajectories per regime", tb)
	// Findings: final coverage fractions and the state plateau ratio.
	for _, c := range curves {
		last := c.traj[len(c.traj)-1]
		rep.Findings["final_covered_frac_"+c.name] = float64(last.Covered) / float64(n)
		rep.Findings["final_state_"+c.name] = float64(last.StateWords)
	}
	rep.Findings["kk_to_alg1_state"] =
		rep.Findings["final_state_kk"] / rep.Findings["final_state_alg1"]
	rep.Notes = append(rep.Notes,
		"KK holds m words from edge one; Algorithm 1 plateaus near m/√n; Algorithm 2 grows with promotions")
	return rep, nil
}
