package experiments

import (
	"fmt"

	"streamcover/internal/core"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Robustness charts how much arrival randomness Algorithm 1 actually needs:
// an adversarial base order (set-major, the order that starves the batch
// counters hardest) is shuffled within windows of growing size, sweeping
// from fully adversarial (window 1) to fully random (window ≥ N). The paper
// proves the two endpoints (Theorems 2 and 3); the interpolation shows
// where between them the statistical signal returns.
func Robustness(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed+141), cfg.N, cfg.M, cfg.OPT, 0)
	opt, _ := w.OptEstimate()
	n, m := cfg.N, cfg.M
	base := stream.Arrange(w.Inst, stream.SetMajor, nil)
	N := len(base)

	tb := texttable.New(
		fmt.Sprintf("Algorithm 1 under window-shuffled set-major order (n=%d m=%d opt=%d N=%d)", n, m, cfg.OPT, N),
		"window", "cover(mean)", "ratio", "sampled sets(mean)")
	windows := []int{1, N / 1000, N / 100, N / 10, N}
	var covers []float64
	for _, win := range windows {
		if win < 1 {
			win = 1
		}
		var sizes, sampled []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := xrand.New(cfg.Seed ^ uint64(win*31+rep*7) ^ 0xabcdef)
			edges := stream.WindowShuffled(base, win, rng.Split())
			alg := core.New(n, m, N, core.DefaultParams(n, m), rng.Split())
			res := stream.RunEdges(alg, edges)
			if err := res.Cover.Verify(w.Inst); err != nil {
				panic("experiments: " + err.Error())
			}
			sizes = append(sizes, float64(res.Cover.Size()))
			sampled = append(sampled, float64(alg.SampledSets()))
		}
		cs := stats.Summarize(sizes)
		tb.AddRow(fi(win), f0(cs.Mean), f2(cs.Mean/float64(opt)), f0(stats.Summarize(sampled).Mean))
		covers = append(covers, cs.Mean)
	}
	rep := newReport("E-ROBUST", "Partial-randomness robustness of Algorithm 1", tb)
	rep.Findings["adversarial_cover"] = covers[0]
	rep.Findings["random_cover"] = covers[len(covers)-1]
	rep.Findings["adversarial_to_random"] = covers[0] / covers[len(covers)-1]
	rep.Notes = append(rep.Notes,
		"window 1 = pure adversarial base order (Theorem 2's regime), window N = Theorem 3's random order")
	return rep, nil
}
