// Package experiments reproduces the paper's evaluation artifacts: the four
// regimes of Table 1, the adversarial-vs-random separation, the Theorem 2
// lower-bound construction, the Lemma 2 concentration bounds, and the
// ablations on the invariants behind each algorithm ((I1)–(I3), Lemma 8, KK
// level decay).
//
// The paper is a theory paper: it reports no testbed numbers, only
// asymptotic space/approximation trade-offs. "Reproducing" an artifact
// therefore means measuring the *shape* — who wins in which regime, how
// peak space scales with m, n and α, where the planted optimum sits
// relative to the streamed covers — on synthetic workloads with known OPT.
// Every experiment returns a Report with a rendered table plus named
// findings (fitted slopes, ratios) that EXPERIMENTS.md records against the
// paper's predictions; the corresponding testing.B benchmarks live in the
// repository root's bench_test.go.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"streamcover/internal/sched"
	"streamcover/internal/setcover"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Config scales an experiment run.
type Config struct {
	// Seed drives every random choice; identical configs reproduce
	// identical reports.
	Seed uint64
	// Reps is the number of randomized repetitions averaged per cell.
	Reps int
	// N is the universe size of the main planted workloads; M the base
	// family size; OPT the planted optimum.
	N, M, OPT int
	// CheckpointEvery > 0 drives every snapshottable run through the
	// checkpointing driver with an in-memory sink at that interval, so the
	// experiments double as a checkpoint-overhead and correctness harness.
	CheckpointEvery int
	// ResumeCheck additionally restores the last checkpoint of each run into
	// a fresh instance, replays the suffix, and fails the experiment if the
	// resumed cover differs from the uninterrupted one. Requires
	// CheckpointEvery > 0.
	ResumeCheck bool
	// Workers is the scheduler's goroutine count for All: registry
	// experiments are sharded across this many workers (0 = GOMAXPROCS,
	// 1 = the sequential registry order). Reports are independent of the
	// worker count — every random choice derives from Seed and position,
	// never from scheduling.
	Workers int
	// SolverWorkers is the goroutine count for the offline greedy/exact
	// ground-truth solvers (0 = GOMAXPROCS, 1 = sequential). The solvers
	// reduce in a fixed order, so the reference covers — and therefore the
	// reports — are byte-identical for every value.
	SolverWorkers int
}

// Quick returns a configuration sized for unit tests and smoke runs
// (sub-second per experiment).
func Quick() Config {
	return Config{Seed: 1, Reps: 3, N: 400, M: 8000, OPT: 10}
}

// Full returns the configuration used to generate EXPERIMENTS.md
// (seconds-to-a-minute per experiment).
func Full() Config {
	return Config{Seed: 1, Reps: 5, N: 2500, M: 50000, OPT: 25}
}

// Report is one experiment's rendered outcome.
type Report struct {
	// ID is the experiment identifier from DESIGN.md's per-experiment
	// index (e.g. "E-T1-R2").
	ID string
	// Title is a human-readable one-liner.
	Title string
	// Table is the regenerated table.
	Table *texttable.Table
	// Findings are named scalar results (fitted slopes, worst ratios, ...)
	// that tests and EXPERIMENTS.md assert against the paper's predictions.
	Findings map[string]float64
	// Notes carries free-form observations.
	Notes []string
}

func newReport(id, title string, table *texttable.Table) *Report {
	return &Report{ID: id, Title: title, Table: table, Findings: map[string]float64{}}
}

// String renders the report for terminal output.
func (r *Report) String() string {
	table := r.Table.String()
	var b strings.Builder
	b.Grow(len(table) + 64 + 32*(len(r.Findings)+len(r.Notes)))
	fmt.Fprintf(&b, "=== %s — %s ===\n%s", r.ID, r.Title, table)
	if len(r.Findings) > 0 {
		b.WriteString("findings:")
		for _, k := range sortedKeys(r.Findings) {
			fmt.Fprintf(&b, " %s=%.3g", k, r.Findings[k])
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// maker builds a fresh streaming algorithm for a workload instance.
type maker func(w workload.Workload, streamLen int, rng *xrand.Rand) stream.Algorithm

// cell aggregates repeated randomized runs of one (workload, order,
// algorithm) combination.
type cell struct {
	CoverSize stats.Summary
	State     stats.Summary
	Aux       stats.Summary
	Ratio     stats.Summary // cover size / OPT estimate
}

// runCell performs cfg.Reps independent runs with fresh stream orders and
// algorithm coins. Repetitions run in parallel — every rep derives its own
// generator from (seed, salt, rep), so the aggregate is identical to a
// sequential run regardless of scheduling. All rep failures are collected
// (errors.Join), not just the first: a broken cell reports every broken
// repetition up through All and the CLIs instead of panicking inside
// library code.
func runCell(cfg Config, w workload.Workload, order stream.Order, mk maker, salt uint64) (cell, error) {
	opt, err := w.OptEstimate()
	if err != nil {
		return cell{}, fmt.Errorf("experiments: OPT estimate for %s: %v", w.Name, err)
	}
	sizes := make([]float64, cfg.Reps)
	states := make([]float64, cfg.Reps)
	auxes := make([]float64, cfg.Reps)
	ratios := make([]float64, cfg.Reps)
	errs := make([]error, cfg.Reps)

	var wg sync.WaitGroup
	for rep := 0; rep < cfg.Reps; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			rng := xrand.New(cfg.Seed ^ salt ^ (uint64(rep) * 0x9e37_79b9_7f4a_7c15))
			edges := stream.Arrange(w.Inst, order, rng.Split())
			alg := mk(w, len(edges), rng.Split())
			res, err := runMaybeCheckpointed(cfg, alg, edges, func() stream.Algorithm {
				return mk(w, len(edges), rng.Split())
			})
			if err != nil {
				errs[rep] = fmt.Errorf("experiments: %s/%v rep %d: %v", w.Name, order, rep, err)
				return
			}
			if err := res.Cover.Verify(w.Inst); err != nil {
				errs[rep] = fmt.Errorf("experiments: invalid cover from %s/%v rep %d: %v", w.Name, order, rep, err)
				return
			}
			sizes[rep] = float64(res.Cover.Size())
			states[rep] = float64(res.Space.State)
			auxes[rep] = float64(res.Space.Aux)
			ratios[rep] = float64(res.Cover.Size()) / float64(opt)
		}(rep)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return cell{}, err
	}
	return cell{
		CoverSize: stats.Summarize(sizes),
		State:     stats.Summarize(states),
		Aux:       stats.Summarize(auxes),
		Ratio:     stats.Summarize(ratios),
	}, nil
}

// runMaybeCheckpointed drives one rep. With cfg.CheckpointEvery set and a
// snapshottable algorithm it checkpoints into an in-memory sink; with
// cfg.ResumeCheck it then restores the last checkpoint into a fresh instance
// (from mkFresh), replays the suffix, and fails unless the resumed cover is
// identical. Non-snapshottable algorithms fall back to the plain driver.
func runMaybeCheckpointed(cfg Config, alg stream.Algorithm, edges []stream.Edge, mkFresh func() stream.Algorithm) (stream.Result, error) {
	if cfg.CheckpointEvery <= 0 {
		return stream.RunEdges(alg, edges), nil
	}
	if _, ok := alg.(stream.Snapshotter); !ok {
		return stream.RunEdges(alg, edges), nil
	}
	var last []byte
	p := stream.CheckpointPolicy{Every: cfg.CheckpointEvery, Sink: func(pos int, ck []byte) error {
		last = append(last[:0], ck...)
		return nil
	}}
	res, err := stream.RunCheckpointed(alg, stream.NewSlice(edges), p)
	if err != nil {
		return res, fmt.Errorf("checkpointed run: %w", err)
	}
	if cfg.ResumeCheck && last != nil {
		fresh := mkFresh()
		from, err := stream.ReadCheckpoint(bytes.NewReader(last), fresh)
		if err != nil {
			return res, fmt.Errorf("resume check: restore: %w", err)
		}
		resumed, err := stream.RunCheckpointedFrom(fresh, stream.NewSlice(edges), stream.CheckpointPolicy{}, from)
		if err != nil {
			return res, fmt.Errorf("resume check: replay from %d: %w", from, err)
		}
		if !res.Cover.Equal(resumed.Cover) {
			return res, fmt.Errorf("resume check: cover diverged after restore at edge %d", from)
		}
		if res.Space != resumed.Space {
			return res, fmt.Errorf("resume check: space diverged after restore at edge %d: %v vs %v", from, res.Space, resumed.Space)
		}
	}
	return res, nil
}

// greedyRef computes the greedy reference cover size for a workload,
// sharding the max-gain scan across cfg.SolverWorkers goroutines (the
// result is byte-identical for every worker count).
func greedyRef(cfg Config, w workload.Workload) int {
	g, err := setcover.GreedySizeWorkers(w.Inst, cfg.SolverWorkers)
	if err != nil {
		panic(fmt.Sprintf("experiments: greedy on %s: %v", w.Name, err))
	}
	return g
}

// All runs every registered experiment at the given configuration and
// returns the reports in the order of DESIGN.md's per-experiment index,
// sharding the experiments across cfg.Workers goroutines. Failed
// experiments leave a nil slot in the returned slice; their errors are
// joined.
func All(cfg Config) ([]*Report, error) {
	entries := Registry()
	return sched.Map(cfg.Workers, len(entries), func(i int) (*Report, error) {
		return entries[i].Run(cfg)
	})
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
func f64i(v int64) string { return fmt.Sprintf("%d", v) }
func sqrtf(n int) float64 { return math.Sqrt(float64(n)) }
