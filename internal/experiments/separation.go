package experiments

import (
	"fmt"

	"streamcover/internal/core"
	"streamcover/internal/kk"
	"streamcover/internal/setarrival"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Separation reproduces the paper's headline qualitative claim (Theorem 2
// vs Theorem 3): at the Õ(m/√n) space budget, random arrival order lets
// Algorithm 1 extract a statistical signal that adversarial orders destroy.
// The identical instance is streamed to the identical algorithm in every
// order; on random order the sampling phases cover most elements (few
// patches), while set-contiguous and degree-skewed orders starve the
// counters and force the run toward the trivial patched cover.
func Separation(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed), cfg.N, cfg.M, cfg.OPT, 0)
	n, m := cfg.N, cfg.M

	tb := texttable.New(
		fmt.Sprintf("Adversarial vs random order at the Õ(m/√n) budget (n=%d m=%d opt=%d)", n, m, cfg.OPT),
		"order", "cover(mean)", "ratio", "patched(mean)", "state(words)")

	var randomCover, worstAdvCover float64
	orders := append([]stream.Order{stream.Random}, stream.AdversarialOrders()...)
	for _, order := range orders {
		var covers, patched, states []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := xrand.New(cfg.Seed ^ (uint64(rep)+3)*0x9e3779b97f4a7c15 ^ uint64(order))
			edges := stream.Arrange(w.Inst, order, rng.Split())
			alg := core.New(n, m, len(edges), core.DefaultParams(n, m), rng.Split())
			res := stream.RunEdges(alg, edges)
			covers = append(covers, float64(res.Cover.Size()))
			patched = append(patched, float64(alg.Trace().Patched))
			states = append(states, float64(res.Space.State))
		}
		cs, ps, ss := stats.Summarize(covers), stats.Summarize(patched), stats.Summarize(states)
		opt, _ := w.OptEstimate()
		tb.AddRow(order.String(), f0(cs.Mean), f2(cs.Mean/float64(opt)), f0(ps.Mean), f0(ss.Mean))
		if order == stream.Random {
			randomCover = cs.Mean
		} else if cs.Mean > worstAdvCover {
			worstAdvCover = cs.Mean
		}
	}
	rep := newReport("E-SEP", "Random-order advantage of Algorithm 1 at fixed space", tb)
	rep.Findings["adversarial_to_random_cover_ratio"] = worstAdvCover / randomCover
	rep.Notes = append(rep.Notes,
		"paper predicts random order strictly easier at this budget (Theorem 3 vs the Ω̃(m) bound of Theorem 2)")
	return rep, nil
}

// SetArrivalContrast reproduces the §1 contrast between arrival models at
// α = Θ(√n): in the set-arrival model the threshold algorithm achieves the
// approximation with O(n) words, while edge arrival needs the KK-algorithm's
// Θ(m) words (Theorem 2 proves the Ω̃(m) necessity). Total space (state +
// aux) is compared so the n-sized bookkeeping is visible on both sides.
func SetArrivalContrast(cfg Config) (*Report, error) {
	tb := texttable.New(
		fmt.Sprintf("Set-arrival vs edge-arrival at α = Θ(√n) (n=%d opt=%d)", cfg.N, cfg.OPT),
		"m", "model", "cover", "total space(words)", "space/n", "space/m")
	n := cfg.N
	var lastEdgeSpace, lastSetSpace float64
	for _, m := range []int{cfg.M / 4, cfg.M} {
		w := workload.Planted(xrand.New(cfg.Seed+uint64(m)), n, m, cfg.OPT, 0)
		rng := xrand.New(cfg.Seed + 7)
		edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, rng.Split())

		thr := setarrival.NewThreshold(n)
		covSA, err := setarrival.RunSetArrival(thr, stream.NewSlice(edges))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		saSpace := float64(thr.Space().Total())

		alg := kk.New(n, m, rng.Split())
		resKK := stream.RunEdges(alg, edges)
		kkSpace := float64(resKK.Space.State + resKK.Space.Aux)

		tb.AddRow(fi(m), "set-arrival(threshold)", fi(covSA.Size()),
			f0(saSpace), f2(saSpace/float64(n)), f2(saSpace/float64(m)))
		tb.AddRow(fi(m), "edge-arrival(kk)", fi(resKK.Cover.Size()),
			f0(kkSpace), f2(kkSpace/float64(n)), f2(kkSpace/float64(m)))
		lastEdgeSpace, lastSetSpace = kkSpace, saSpace
	}
	rep := newReport("E-SETARR", "Arrival-model contrast at α = Θ(√n)", tb)
	rep.Findings["edge_to_set_space_ratio"] = lastEdgeSpace / lastSetSpace
	rep.Notes = append(rep.Notes,
		"paper: set-arrival needs Θ̃(n) space here, edge-arrival provably Ω̃(m) (Theorem 2)")
	return rep, nil
}
