package experiments

import (
	"fmt"

	"streamcover/internal/core"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Knockout removes Algorithm 1's mechanisms one at a time and measures what
// each contributes — the component ablation for the design choices the
// analysis leans on:
//
//   - the epoch-0 p₀-sample of Sol (line 6) is what covers high-degree
//     elements;
//   - epoch-0 degree detection (line 7) marks those elements *before*
//     their witnesses arrive, stopping them from feeding set counters;
//   - the tracked sample Q̃/T with optimistic marking (lines 10, 24–25,
//     30–32) is what keeps later epochs' special-set counts decaying
//     (Lemma 8).
//
// The workload plants heavy elements so the knocked-out mechanisms have
// something to miss. Expected shape: removing epoch-0 sampling inflates the
// cover (heavy elements get covered late or patched); removing detection
// and tracking inflates the special-set counts that the marking machinery
// exists to suppress.
func Knockout(cfg Config) (*Report, error) {
	n := cfg.N
	m := cfg.M
	w := workload.HeavyElements(xrand.New(cfg.Seed+151), n, m, n/20, 4)
	g := greedyRef(cfg, w)

	variants := []struct {
		name   string
		mutate func(*core.Params)
	}{
		{"full algorithm", func(*core.Params) {}},
		{"no epoch-0 sample", func(p *core.Params) { p.DisableEpoch0Sampling = true }},
		{"no epoch-0 detection", func(p *core.Params) { p.DisableEpoch0Detection = true }},
		{"no tracking/marking", func(p *core.Params) { p.DisableTracking = true }},
		{"nothing (patch only)", func(p *core.Params) {
			p.DisableEpoch0Sampling = true
			p.DisableEpoch0Detection = true
			p.DisableTracking = true
		}},
	}

	tb := texttable.New(
		fmt.Sprintf("Algorithm 1 component knockouts on %s (greedy=%d)", w.Name, g),
		"variant", "cover(mean)", "specials(Σ)", "marked e0", "marked track", "patched", "state(words)")
	covers := map[string]float64{}
	for _, v := range variants {
		var sizes, specials, m0, mt, patched, states []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := xrand.New(cfg.Seed ^ uint64(rep)*131 ^ hashName(v.name))
			edges := stream.Arrange(w.Inst, stream.Random, rng.Split())
			p := core.DefaultParams(n, m)
			v.mutate(&p)
			alg := core.New(n, m, len(edges), p, rng.Split())
			res := stream.RunEdges(alg, edges)
			if err := res.Cover.Verify(w.Inst); err != nil {
				panic("experiments: " + err.Error())
			}
			tr := alg.Trace()
			total := 0
			for _, c := range tr.SpecialsTotal() {
				total += c
			}
			sizes = append(sizes, float64(res.Cover.Size()))
			specials = append(specials, float64(total))
			m0 = append(m0, float64(tr.MarkedEpoch0))
			mt = append(mt, float64(tr.MarkedTracking))
			patched = append(patched, float64(tr.Patched))
			states = append(states, float64(res.Space.State))
		}
		tb.AddRow(v.name,
			f0(stats.Summarize(sizes).Mean),
			f0(stats.Summarize(specials).Mean),
			f0(stats.Summarize(m0).Mean),
			f0(stats.Summarize(mt).Mean),
			f0(stats.Summarize(patched).Mean),
			f0(stats.Summarize(states).Mean))
		covers[v.name] = stats.Summarize(sizes).Mean
	}

	rep := newReport("E-ABL-KNOCK", "Algorithm 1 component knockouts", tb)
	rep.Findings["full_cover"] = covers["full algorithm"]
	rep.Findings["no_sample_cover"] = covers["no epoch-0 sample"]
	rep.Findings["patch_only_cover"] = covers["nothing (patch only)"]
	rep.Findings["patch_only_to_full"] = covers["nothing (patch only)"] / covers["full algorithm"]
	rep.Notes = append(rep.Notes,
		"each mechanism's removal must not improve the cover; the bare variant degrades toward first-set patching")
	return rep, nil
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
