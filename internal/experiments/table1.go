package experiments

import (
	"fmt"
	"math"

	"streamcover/internal/adversarial"
	"streamcover/internal/core"
	"streamcover/internal/elementsampling"
	"streamcover/internal/kk"
	"streamcover/internal/stats"
	"streamcover/internal/stream"
	"streamcover/internal/texttable"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// Table1Row1 reproduces row 1 of Table 1 — the α = o(√n) regime: the
// element-sampling algorithm at Θ̃(mn/α) space, swept over α. Expected
// shape: peak state shrinks ~1/α (fitted slope ≈ −1 once α ≫ log m) and
// the approximation ratio stays O(α + log n).
func Table1Row1(cfg Config) (*Report, error) {
	// A dense instance so both sampling knobs (ρ = log m/α projections and
	// the k = m·log n/α incidence cap) actually bite; see the package docs
	// of internal/elementsampling.
	n := cfg.N / 4
	m := cfg.M / 16
	w := workload.UniformRandom(xrand.New(cfg.Seed), n, m, n/4, n/2)

	tb := texttable.New(
		fmt.Sprintf("Table 1 row 1: element sampling, adversarial order (n=%d m=%d greedy=%d)", n, m, greedyRef(cfg, w)),
		"alpha", "cover(mean)", "ratio", "state(words)", "mn/alpha")
	var alphas, states []float64
	for _, alpha := range []float64{16, 32, 64, 128} {
		c, err := runCell(cfg, w, stream.RoundRobin, func(w workload.Workload, _ int, rng *xrand.Rand) stream.Algorithm {
			return elementsampling.New(w.Inst.UniverseSize(), w.Inst.NumSets(), alpha, rng)
		}, uint64(alpha))
		if err != nil {
			return nil, err
		}
		tb.AddRow(f0(alpha), f0(c.CoverSize.Mean), f2(c.Ratio.Mean), f0(c.State.Mean),
			f0(float64(m)*float64(n)/alpha))
		alphas = append(alphas, alpha)
		states = append(states, c.State.Mean)
	}
	rep := newReport("E-T1-R1", "α = o(√n): Õ(mn/α) space (element sampling)", tb)
	rep.Findings["space_vs_alpha_slope"] = stats.GeometricFitSlope(alphas, states)
	rep.Notes = append(rep.Notes, "paper predicts slope ≈ −1 (space ∝ mn/α)")
	return rep, nil
}

// Table1Row2 reproduces row 2 — the KK-algorithm at α = Θ̃(√n) in
// adversarial order with Õ(m) space. Expected shape: peak state ≈ m words
// (slope ≈ 1 in an m-sweep) and cover ≤ Õ(√n)·OPT on every adversarial
// order.
func Table1Row2(cfg Config) (*Report, error) {
	tb := texttable.New(
		fmt.Sprintf("Table 1 row 2: KK-algorithm, adversarial order (n=%d opt=%d)", cfg.N, cfg.OPT),
		"m", "order", "cover(mean)", "ratio", "state(words)", "state/m")
	var ms, states []float64
	for _, m := range []int{cfg.M / 4, cfg.M / 2, cfg.M} {
		w := workload.Planted(xrand.New(cfg.Seed+uint64(m)), cfg.N, m, cfg.OPT, 0)
		for _, order := range []stream.Order{stream.RoundRobin, stream.HighDegreeLast} {
			c, err := runCell(cfg, w, order, func(w workload.Workload, _ int, rng *xrand.Rand) stream.Algorithm {
				return kk.New(w.Inst.UniverseSize(), w.Inst.NumSets(), rng)
			}, uint64(m))
			if err != nil {
				return nil, err
			}
			tb.AddRow(fi(m), order.String(), f0(c.CoverSize.Mean), f2(c.Ratio.Mean),
				f0(c.State.Mean), f2(c.State.Mean/float64(m)))
			if order == stream.RoundRobin {
				ms = append(ms, float64(m))
				states = append(states, c.State.Mean)
			}
		}
	}
	rep := newReport("E-T1-R2", "α = Θ̃(√n): Õ(m) space, adversarial (KK-algorithm)", tb)
	rep.Findings["space_vs_m_slope"] = stats.GeometricFitSlope(ms, states)
	rep.Notes = append(rep.Notes, "paper predicts slope ≈ 1 (space ∝ m, the bound Theorem 2 proves optimal)")
	return rep, nil
}

// Table1Row3 reproduces row 3 — Algorithm 2 in adversarial order, swept
// over α = Ω̃(√n). Expected shape: the promoted-level map — the space term
// Theorem 4's Õ(mn/α²) bound is about — shrinks with slope ≈ −2 in α. The
// total state additionally carries the |D_0| ≈ α up-front sample and the
// growing patch-free solution, which floors it once α³ ≳ mn; both columns
// are reported.
func Table1Row3(cfg Config) (*Report, error) {
	w := workload.Planted(xrand.New(cfg.Seed), cfg.N, cfg.M, cfg.OPT, 0)
	opt, _ := w.OptEstimate()
	sq := sqrtf(cfg.N)
	tb := texttable.New(
		fmt.Sprintf("Table 1 row 3: Algorithm 2, adversarial order (n=%d m=%d opt=%d)", cfg.N, cfg.M, cfg.OPT),
		"alpha", "cover(mean)", "ratio", "state(words)", "promoted |L|", "mn/alpha^2")
	var alphas, promoted []float64
	for _, mult := range []float64{2, 4, 8, 16} {
		alpha := mult * sq
		var covers, states, proms []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := xrand.New(cfg.Seed ^ uint64(mult*131) ^ uint64(rep)*0x9e3779b97f4a7c15)
			edges := stream.Arrange(w.Inst, stream.RoundRobin, rng.Split())
			alg := adversarial.New(cfg.N, cfg.M, alpha, rng.Split())
			res := stream.RunEdges(alg, edges)
			covers = append(covers, float64(res.Cover.Size()))
			states = append(states, float64(res.Space.State))
			proms = append(proms, float64(alg.PromotedSets()))
		}
		cs, ss, ps := stats.Summarize(covers), stats.Summarize(states), stats.Summarize(proms)
		tb.AddRow(f0(alpha), f0(cs.Mean), f2(cs.Mean/float64(opt)), f0(ss.Mean), f2(ps.Mean),
			f0(float64(cfg.M)*float64(cfg.N)/(alpha*alpha)))
		alphas = append(alphas, alpha)
		promoted = append(promoted, math.Max(ps.Mean, 0.1))
	}
	rep := newReport("E-T1-R3", "α = Ω̃(√n): Õ(mn/α²) space, adversarial (Algorithm 2)", tb)
	rep.Findings["promoted_vs_alpha_slope"] = stats.GeometricFitSlope(alphas, promoted)
	rep.Notes = append(rep.Notes, "paper predicts the level map to scale as mn/α² (slope ≈ −2, Theorem 4)")
	return rep, nil
}

// Table1Row4 reproduces row 4 — Algorithm 1 in random order at Õ(m/√n)
// space, the paper's main result. Expected shape: at fixed n, peak state
// grows linearly in m but sits a ≈√n factor below the KK-algorithm's on the
// identical instance, while the cover stays within Õ(√n)·OPT.
func Table1Row4(cfg Config) (*Report, error) {
	// Theorem 3 assumes m = Ω̃(n²); outside that regime the Õ(√n·polylog)
	// and Õ(n) additive terms mask the m/√n scaling. Hold n modest and
	// sweep m from n² up.
	n := cfg.N / 4
	if n > 150 {
		n = 150
	}
	opt := cfg.OPT
	if opt > n/4 {
		opt = n / 4
	}
	tb := texttable.New(
		fmt.Sprintf("Table 1 row 4: Algorithm 1, random order (n=%d opt=%d, m = Ω(n²) regime)", n, opt),
		"m", "algo", "cover(mean)", "ratio", "state(words)", "state*sqrt(n)/m")
	var ms, states []float64
	var kkStates []float64
	for _, m := range []int{n * n, 2 * n * n, 4 * n * n} {
		w := workload.Planted(xrand.New(cfg.Seed+uint64(m)), n, m, opt, 0)
		cAlg1, err := runCell(cfg, w, stream.Random, func(w workload.Workload, streamLen int, rng *xrand.Rand) stream.Algorithm {
			n, mm := w.Inst.UniverseSize(), w.Inst.NumSets()
			return core.New(n, mm, streamLen, core.DefaultParams(n, mm), rng)
		}, uint64(m))
		if err != nil {
			return nil, err
		}
		cKK, err := runCell(cfg, w, stream.Random, func(w workload.Workload, _ int, rng *xrand.Rand) stream.Algorithm {
			return kk.New(w.Inst.UniverseSize(), w.Inst.NumSets(), rng)
		}, uint64(m)+1)
		if err != nil {
			return nil, err
		}
		norm := cAlg1.State.Mean * sqrtf(n) / float64(m)
		tb.AddRow(fi(m), "alg1", f0(cAlg1.CoverSize.Mean), f2(cAlg1.Ratio.Mean), f0(cAlg1.State.Mean), f2(norm))
		tb.AddRow(fi(m), "kk", f0(cKK.CoverSize.Mean), f2(cKK.Ratio.Mean), f0(cKK.State.Mean), f2(cKK.State.Mean*sqrtf(n)/float64(m)))
		ms = append(ms, float64(m))
		states = append(states, cAlg1.State.Mean)
		kkStates = append(kkStates, cKK.State.Mean)
	}
	rep := newReport("E-T1-R4", "α = Θ̃(√n): Õ(m/√n) space, random order (Algorithm 1)", tb)
	rep.Findings["space_vs_m_slope"] = stats.GeometricFitSlope(ms, states)
	rep.Findings["kk_to_alg1_space_ratio"] = kkStates[len(kkStates)-1] / states[len(states)-1]
	rep.Notes = append(rep.Notes,
		"paper predicts slope ≈ 1 with a ≈√n-factor gap below the KK-algorithm at the same m",
		fmt.Sprintf("√n = %.0f", sqrtf(n)))
	return rep, nil
}
