package elementsampling

import (
	"fmt"
	"io"
	"slices"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
)

// snapVersion is the SCSTATE1 layout version of this package's snapshots.
const snapVersion = 1

// Snapshot implements stream.Snapshotter. The map-backed sketches (the set
// projections and D0) are written with sorted keys, so the encoding is
// deterministic even though map iteration order is not; projection element
// lists keep their arrival order, which greedy tie-breaking depends on.
func (a *Algorithm) Snapshot(wr io.Writer) error {
	w := snap.NewWriter(wr, "es", snapVersion)
	w.Int(a.n)
	w.Int(a.m)
	w.F64(a.alpha)
	w.I64(a.pos)
	a.rng.Save(w)
	w.Bools(a.sampled)

	projIDs := make([]setcover.SetID, 0, len(a.proj))
	for s := range a.proj {
		projIDs = append(projIDs, s)
	}
	slices.Sort(projIDs)
	w.U64(uint64(len(projIDs)))
	for _, s := range projIDs {
		w.I64(int64(s))
		elems := a.proj[s]
		w.U64(uint64(len(elems)))
		for _, u := range elems {
			w.I64(int64(u))
		}
	}

	w.U64(uint64(len(a.inc)))
	for _, sets := range a.inc {
		snap.SaveSetIDs(w, sets)
	}

	d0IDs := make([]setcover.SetID, 0, len(a.d0))
	for s := range a.d0 {
		d0IDs = append(d0IDs, s)
	}
	slices.Sort(d0IDs)
	snap.SaveSetIDs(w, d0IDs)

	snap.SaveSetIDs(w, a.first)
	w.Int(a.patched)
	snap.SaveTracked(w, &a.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance with the same (n, m, alpha); a failed restore leaves
// it in an unspecified state that must be discarded.
func (a *Algorithm) Restore(rd io.Reader) error {
	r, err := snap.NewReader(rd, "es")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: es snapshot v%d", snap.ErrVersion, v)
	}
	n, m := r.Int(), r.Int()
	alpha := r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != a.n || m != a.m || alpha != a.alpha {
		return fmt.Errorf("%w: snapshot shape n=%d m=%d alpha=%g, receiver has n=%d m=%d alpha=%g",
			snap.ErrMismatch, n, m, alpha, a.n, a.m, a.alpha)
	}
	a.pos = r.I64()
	a.rng.Load(r)
	r.BoolsInto(a.sampled)

	nProj := r.Len()
	proj := make(map[setcover.SetID][]setcover.Element, nProj)
	for i := 0; i < nProj; i++ {
		s := r.I32()
		ne := r.Len()
		if r.Err() != nil {
			return r.Err()
		}
		if s < 0 || int(s) >= a.m {
			return fmt.Errorf("%w: projection set %d out of range [0,%d)", snap.ErrCorrupt, s, a.m)
		}
		elems := make([]setcover.Element, ne)
		for j := range elems {
			u := r.I32()
			if r.Err() != nil {
				return r.Err()
			}
			if u < 0 || int(u) >= a.n {
				return fmt.Errorf("%w: projection element %d out of range [0,%d)", snap.ErrCorrupt, u, a.n)
			}
			elems[j] = setcover.Element(u)
		}
		proj[setcover.SetID(s)] = elems
	}

	nInc := r.Len()
	if r.Err() == nil && nInc != len(a.inc) {
		return fmt.Errorf("%w: %d incidence lists, receiver holds %d", snap.ErrMismatch, nInc, len(a.inc))
	}
	inc := make([][]setcover.SetID, len(a.inc))
	for u := range inc {
		k := r.Len()
		if r.Err() != nil {
			return r.Err()
		}
		if k > a.k {
			return fmt.Errorf("%w: incidence list of %d exceeds cap %d", snap.ErrCorrupt, k, a.k)
		}
		if k == 0 {
			continue
		}
		sets := make([]setcover.SetID, k)
		for j := range sets {
			s := r.I32()
			if r.Err() != nil {
				return r.Err()
			}
			if s < 0 || int(s) >= a.m {
				return fmt.Errorf("%w: incident set %d out of range [0,%d)", snap.ErrCorrupt, s, a.m)
			}
			sets[j] = setcover.SetID(s)
		}
		inc[u] = sets
	}

	nD0 := r.Len()
	d0 := make(map[setcover.SetID]struct{}, nD0)
	for i := 0; i < nD0; i++ {
		s := r.I32()
		if r.Err() != nil {
			return r.Err()
		}
		if s < 0 || int(s) >= a.m {
			return fmt.Errorf("%w: D0 set %d out of range [0,%d)", snap.ErrCorrupt, s, a.m)
		}
		d0[setcover.SetID(s)] = struct{}{}
	}

	snap.LoadSetIDsInto(r, a.first, a.m)
	a.patched = r.Int()
	snap.LoadTracked(r, &a.Tracked)
	if err := r.Close(); err != nil {
		return err
	}
	a.proj, a.inc, a.d0 = proj, inc, d0
	return nil
}
