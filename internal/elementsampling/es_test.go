package elementsampling

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func runOn(t testing.TB, w workload.Workload, alpha float64, order stream.Order, seed uint64) (stream.Result, *Algorithm) {
	t.Helper()
	rng := xrand.New(seed)
	edges := stream.Arrange(w.Inst, order, rng.Split())
	alg := New(w.Inst.UniverseSize(), w.Inst.NumSets(), alpha, rng.Split())
	res := stream.RunEdges(alg, edges)
	return res, alg
}

func TestCoverValidOnAllWorkloadsAndOrders(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		for _, o := range stream.Orders() {
			res, _ := runOn(t, w, 4, o, 55)
			if err := res.Cover.Verify(w.Inst); err != nil {
				t.Errorf("%s/%v: %v", w.Name, o, err)
			}
		}
	}
}

func TestApproximationWithinAlphaLogBound(t *testing.T) {
	w := workload.Planted(xrand.New(2), 400, 2000, 10, 0)
	for _, alpha := range []float64{2, 4, 8} {
		res, _ := runOn(t, w, alpha, stream.RoundRobin, 3)
		bound := 4 * (alpha + math.Log(400)) * math.Log2(2000) * float64(w.PlantedOPT)
		if float64(res.Cover.Size()) > bound {
			t.Errorf("alpha=%v: cover %d exceeds bound %.0f", alpha, res.Cover.Size(), bound)
		}
	}
}

func TestSpaceScalesInverselyWithAlpha(t *testing.T) {
	// Õ(mn/α): growing α shrinks both the ρ = log m/α universe sample (and
	// with it the projections) and the k = m·log n/α incidence cap. The
	// effect only shows once ρ < 1 and k < typical element degree, so use a
	// dense instance and α well above log m.
	w := workload.UniformRandom(xrand.New(3), 100, 1000, 50, 80)
	var peaks []int64
	for _, alpha := range []float64{16, 64} {
		res, _ := runOn(t, w, alpha, stream.RoundRobin, 5)
		peaks = append(peaks, res.Space.State)
	}
	if ratio := float64(peaks[0]) / float64(peaks[1]); ratio < 2 {
		t.Errorf("α 16→64 should shrink state ≈4x; peaks %v (ratio %.2f)", peaks, ratio)
	}
}

func TestSmallAlphaApproachesGreedy(t *testing.T) {
	// With α close to 1 the sample is the whole universe and the run reduces
	// to offline greedy plus D0 noise; the cover should be near greedy size.
	w := workload.Planted(xrand.New(4), 200, 800, 10, 0)
	res, _ := runOn(t, w, 1, stream.Random, 7)
	g, err := setcover.GreedySize(w.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Size() > 5*g+int(2*math.Log2(800)) {
		t.Errorf("α=1 cover %d far above greedy %d", res.Cover.Size(), g)
	}
}

func TestIncidenceCapRespected(t *testing.T) {
	w := workload.HeavyElements(xrand.New(5), 50, 2000, 3, 2)
	_, alg := runOn(t, w, 100, stream.Random, 9)
	for u, sets := range alg.inc {
		if len(sets) > alg.IncidenceCap() {
			t.Fatalf("element %d stored %d incident sets, cap %d", u, len(sets), alg.IncidenceCap())
		}
	}
}

func TestD0SizeNearExpectation(t *testing.T) {
	a := New(1000, 100000, 16, xrand.New(6))
	want := 16 * math.Log2(100000)
	if got := float64(a.D0Size()); got < want/3 || got > want*3 {
		t.Errorf("|D0| = %v, want ≈ α·log m = %.0f", got, want)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := workload.UniformRandom(xrand.New(7), 100, 400, 2, 15)
	a, _ := runOn(t, w, 4, stream.Random, 11)
	b, _ := runOn(t, w, 4, stream.Random, 11)
	if a.Cover.Size() != b.Cover.Size() {
		t.Fatalf("nondeterministic: %d vs %d", a.Cover.Size(), b.Cover.Size())
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		n, m  int
		alpha float64
	}{{0, 1, 2}, {1, 0, 2}, {5, 5, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%v) did not panic", tc.n, tc.m, tc.alpha)
				}
			}()
			New(tc.n, tc.m, tc.alpha, xrand.New(1))
		}()
	}
}

func TestSingleElement(t *testing.T) {
	inst := setcover.MustNewInstance(1, [][]setcover.Element{{0}})
	alg := New(1, 1, 1, xrand.New(2))
	res := stream.RunEdges(alg, stream.EdgesOf(inst))
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkElementSampling(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 5000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.RoundRobin, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := New(1000, 5000, 8, xrand.New(uint64(i)))
		stream.RunEdges(alg, edges)
	}
}
