// Package elementsampling implements the α = o(√n) regime of Table 1: a
// one-pass edge-arrival α-approximation (up to log factors) using Õ(m·n/α)
// space, the element-sampling scheme of Assadi, Khanna and Li [4] (building
// on Demaine et al. [12]), which the paper notes is implementable in the
// edge-arrival setting (appendix of [19]).
//
// The scheme keeps three sketches, all edge-filterable and together Õ(mn/α)
// words:
//
//  1. a universe sample U' (each element kept with probability
//     ρ = c·log m/α) together with the projection of every set onto U' —
//     expected ρ·N = Õ(mn/α) words — on which a cover C1 of the sampled
//     elements is computed offline at stream end;
//  2. an up-front random collection D0 of Θ(α·log m) sets, which w.h.p.
//     covers every element of degree ≥ m·log n/α;
//  3. for every element, its first k = Θ(m·log n/α) incident sets — n·k =
//     Õ(mn/α) words — from which covering witnesses are drawn at the end.
//
// The classical sampling lemma gives that any collection covering U' leaves
// at most ≈ α·|C1| elements of the full universe uncovered w.h.p.; those are
// patched one set per element, for an O(α·log) approximation overall.
package elementsampling

import (
	"math"
	"slices"

	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Algorithm is one run of the element-sampling algorithm. Create with New,
// feed edges with Process, call Finish once.
type Algorithm struct {
	space.Tracked

	n, m  int
	alpha float64
	k     int // per-element incident-set cap

	sampled []bool                                // u ∈ U'
	proj    map[setcover.SetID][]setcover.Element // set projections onto U'
	inc     [][]setcover.SetID                    // first k incident sets per element
	d0      map[setcover.SetID]struct{}           // up-front random collection
	first   []setcover.SetID                      // R(u)

	patched int
	pos     int64     // edges processed, stamped on emitted events
	sink    *obs.Sink // decision-event sink; nil (inert) unless a hub is installed
	rng     *xrand.Rand
}

// New returns an element-sampling run targeting approximation factor alpha
// (the paper's regime of interest is 1 ≤ α = o(√n); larger values are
// accepted and simply store less).
func New(n, m int, alpha float64, rng *xrand.Rand) *Algorithm {
	if n <= 0 || m <= 0 {
		panic("elementsampling: need n > 0 and m > 0")
	}
	if alpha < 1 {
		panic("elementsampling: need alpha >= 1")
	}
	logm := math.Log2(float64(m) + 1)
	logn := math.Log2(float64(n) + 1)

	a := &Algorithm{
		n:       n,
		m:       m,
		alpha:   alpha,
		k:       int(math.Ceil(float64(m) * logn / alpha)),
		sampled: make([]bool, n),
		proj:    make(map[setcover.SetID][]setcover.Element),
		inc:     make([][]setcover.SetID, n),
		d0:      make(map[setcover.SetID]struct{}),
		first:   make([]setcover.SetID, n),
		sink:    obs.SinkFor(obs.AlgoES),
		rng:     rng,
	}
	for u := range a.first {
		a.first[u] = setcover.NoSet
	}
	a.AuxMeter.Add(int64(n)) // R(u)

	// The per-element U' coins are high-volume (n of them at construction),
	// so they are aggregated into the keep/drop counters rather than ringing
	// one trace event apiece.
	rho := math.Min(1, logm/alpha)
	kept := int64(0)
	for u := 0; u < n; u++ {
		if rng.Coin(rho) {
			a.sampled[u] = true
			kept++
		}
	}
	a.sink.Count(obs.KindSampleKeep, kept)
	a.sink.Count(obs.KindSampleDrop, int64(n)-kept)
	a.AuxMeter.Add(int64(n)) // the U' bitmap

	p0 := math.Min(1, alpha*logm/float64(m))
	cnt := rng.Binomial(m, p0)
	for _, s := range rng.SampleK(m, cnt) {
		a.d0[setcover.SetID(s)] = struct{}{}
		a.StateMeter.Add(space.SetEntryWords)
		a.sink.Emit(obs.KindSetSelected, 0, int64(s), int64(len(a.d0)), 0)
	}
	return a
}

// Process implements stream.Algorithm.
func (a *Algorithm) Process(e stream.Edge) {
	a.pos++
	s, u := e.Set, e.Elem
	if a.first[u] == setcover.NoSet {
		a.first[u] = s
	}
	if a.sampled[u] {
		if _, seen := a.proj[s]; !seen {
			a.StateMeter.Add(space.MapEntryWords)
		}
		a.proj[s] = append(a.proj[s], u)
		a.StateMeter.Add(space.SliceElemWords)
	}
	if len(a.inc[u]) < a.k {
		a.inc[u] = append(a.inc[u], s)
		a.StateMeter.Add(space.SliceElemWords)
	}
}

// Finish implements stream.Algorithm: solve the projected instance with
// greedy, merge with D0, certify elements from their stored incident sets,
// and patch the remainder with R(u).
func (a *Algorithm) Finish() *setcover.Cover {
	chosenSet := make(map[setcover.SetID]struct{}, len(a.d0))
	for s := range a.d0 {
		chosenSet[s] = struct{}{}
	}
	for _, s := range a.coverSample() {
		if _, in := chosenSet[s]; !in {
			a.sink.Emit(obs.KindSetSelected, a.pos, int64(s), int64(len(chosenSet)+1), 1)
		}
		chosenSet[s] = struct{}{}
	}

	cert := make([]setcover.SetID, a.n)
	chosen := make([]setcover.SetID, 0, len(chosenSet)+16)
	for s := range chosenSet {
		chosen = append(chosen, s)
	}
	for u := 0; u < a.n; u++ {
		cert[u] = setcover.NoSet
		for _, s := range a.inc[u] {
			if _, in := chosenSet[s]; in {
				cert[u] = s
				break
			}
		}
		if cert[u] == setcover.NoSet && a.first[u] != setcover.NoSet {
			cert[u] = a.first[u]
			chosen = append(chosen, a.first[u])
			a.patched++
		}
	}
	a.sink.Count(obs.KindPatch, int64(a.patched))
	return setcover.NewCover(chosen, cert)
}

// coverSample runs greedy over the stored projections to cover every
// sampled element that appeared in the stream, returning original set ids.
func (a *Algorithm) coverSample() []setcover.SetID {
	// Iterate sets in id order: map iteration order would leak into greedy
	// tie-breaking and make runs nondeterministic for a fixed seed.
	ids := make([]setcover.SetID, 0, len(a.proj))
	for s := range a.proj {
		ids = append(ids, s)
	}
	slices.Sort(ids)

	// Remap sampled-and-seen elements to a compact range.
	remap := make(map[setcover.Element]setcover.Element)
	for _, s := range ids {
		for _, u := range a.proj[s] {
			if _, ok := remap[u]; !ok {
				remap[u] = setcover.Element(len(remap))
			}
		}
	}
	if len(remap) == 0 {
		return nil
	}
	sets := make([][]setcover.Element, 0, len(ids))
	for _, s := range ids {
		elems := a.proj[s]
		mapped := make([]setcover.Element, len(elems))
		for i, u := range elems {
			mapped[i] = remap[u]
		}
		sets = append(sets, mapped)
	}
	inst, err := setcover.NewInstance(len(remap), sets)
	if err != nil {
		// Projections are valid by construction; failure means a bug.
		panic("elementsampling: projected instance: " + err.Error())
	}
	cov, err := setcover.Greedy(inst)
	if err != nil {
		panic("elementsampling: projected greedy: " + err.Error())
	}
	out := make([]setcover.SetID, len(cov.Sets))
	for i, s := range cov.Sets {
		out[i] = ids[s]
	}
	return out
}

// Patched returns how many elements the final patching covered.
func (a *Algorithm) Patched() int { return a.patched }

// D0Size returns |D0|, the up-front random collection size.
func (a *Algorithm) D0Size() int { return len(a.d0) }

// IncidenceCap returns the per-element incident-set cap k.
func (a *Algorithm) IncidenceCap() int { return a.k }

// SetObs replaces the decision-event sink (tests attach private hubs here;
// nil detaches).
func (a *Algorithm) SetObs(s *obs.Sink) { a.sink = s }

// ObsAlgo implements obs.Identified.
func (a *Algorithm) ObsAlgo() obs.AlgoID { return obs.AlgoES }

var _ stream.Algorithm = (*Algorithm)(nil)
var _ space.Reporter = (*Algorithm)(nil)
