package elementsampling

import (
	"bytes"
	"errors"
	"testing"

	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// TestSnapshotResumeEquivalence: the projection sketch, incidence-list cache
// and D0 sample must all round-trip so that a resumed run finishes with the
// same cover and space as an uninterrupted one.
func TestSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(41), 120, 600, 8, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(3))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()
	const alpha = 5

	ref := New(n, m, alpha, xrand.New(42))
	refRes := stream.RunEdges(ref, edges)

	for _, cut := range []int{0, len(edges) / 4, len(edges) / 2, len(edges)} {
		a := New(n, m, alpha, xrand.New(42))
		for _, e := range edges[:cut] {
			a.Process(e)
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatalf("cut=%d: Snapshot: %v", cut, err)
		}
		b := New(n, m, alpha, xrand.New(4242))
		if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("cut=%d: Restore: %v", cut, err)
		}
		for _, e := range edges[cut:] {
			b.Process(e)
		}
		got := b.Finish()
		if !refRes.Cover.Equal(got) {
			t.Fatalf("cut=%d: resumed cover differs from uninterrupted run", cut)
		}
		if gs := b.Space(); gs != refRes.Space {
			t.Fatalf("cut=%d: space %+v, want %+v", cut, gs, refRes.Space)
		}
	}
}

func TestRestoreLeavesReceiverIntactOnCorruptInput(t *testing.T) {
	// A failed restore must not have half-replaced the receiver's sketches:
	// proj/inc/d0 are committed only after the checksum verifies.
	w := workload.Planted(xrand.New(43), 80, 400, 6, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(5))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()

	a := New(n, m, 4, xrand.New(9))
	for _, e := range edges[:len(edges)/2] {
		a.Process(e)
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	flipped := bytes.Clone(raw)
	flipped[len(flipped)-2] ^= 0x01 // trailer corruption: fails at Close

	b := New(n, m, 4, xrand.New(10))
	before := len(b.proj)
	if err := b.Restore(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
	if len(b.proj) != before {
		t.Fatal("failed restore replaced the receiver's projection sketch")
	}
}

func TestRestoreRejectsWrongAlpha(t *testing.T) {
	a := New(30, 60, 3, xrand.New(1))
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(30, 60, 4, xrand.New(2))
	if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, snap.ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

var _ stream.Snapshotter = (*Algorithm)(nil)
