package multipass

import (
	"errors"
	"fmt"
	"io"
	"slices"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
)

// snapVersion is the SCSTATE1 layout version of this package's snapshots.
const snapVersion = 1

// Snapshot implements stream.Snapshotter for the multi-pass state machine.
// It is valid between passes and in the middle of one (the live projection
// sketch is included, with sorted keys for a deterministic encoding). Valid
// only before Finish.
func (a *Algorithm) Snapshot(wr io.Writer) error {
	if a.finished {
		return errors.New("multipass: Snapshot after Finish")
	}
	w := snap.NewWriter(wr, "multipass", snapVersion)
	w.Int(a.n)
	w.Int(a.m)
	w.Int(a.opt.SampleBudget)
	w.Int(a.opt.MaxPasses)
	a.rng.Save(w)
	w.I64(a.pos)
	w.Bools(a.covered)
	snap.SaveSetIDs(w, a.backup)
	snap.SaveSetIDs(w, a.cert)
	w.Bools(a.sampled)
	snap.SaveSetIDs(w, a.sol)
	w.Int(a.uncovered)
	w.Bool(a.inPass)
	w.Bool(a.sawUncovered)
	w.Int(a.nSampled)
	w.I64(a.projWords)

	projIDs := make([]setcover.SetID, 0, len(a.proj))
	for s := range a.proj {
		projIDs = append(projIDs, s)
	}
	slices.Sort(projIDs)
	w.U64(uint64(len(projIDs)))
	for _, s := range projIDs {
		w.I64(int64(s))
		elems := a.proj[s]
		w.U64(uint64(len(elems)))
		for _, u := range elems {
			w.I64(int64(u))
		}
	}

	w.Int(a.res.Passes)
	w.Ints(a.res.Added)
	w.Ints(a.res.Sampled)
	w.Int(a.res.Patched)
	w.Bool(a.done)
	snap.SaveTracked(w, &a.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance with the same (n, m, Options); a failed restore
// leaves it in an unspecified state that must be discarded.
func (a *Algorithm) Restore(rd io.Reader) error {
	if a.finished {
		return errors.New("multipass: Restore after Finish")
	}
	r, err := snap.NewReader(rd, "multipass")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: multipass snapshot v%d", snap.ErrVersion, v)
	}
	n, m := r.Int(), r.Int()
	budget, maxP := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != a.n || m != a.m || budget != a.opt.SampleBudget || maxP != a.opt.MaxPasses {
		return fmt.Errorf("%w: snapshot shape n=%d m=%d B=%d p=%d, receiver has n=%d m=%d B=%d p=%d",
			snap.ErrMismatch, n, m, budget, maxP, a.n, a.m, a.opt.SampleBudget, a.opt.MaxPasses)
	}
	a.rng.Load(r)
	a.pos = r.I64()
	r.BoolsInto(a.covered)
	snap.LoadSetIDsInto(r, a.backup, a.m)
	snap.LoadSetIDsInto(r, a.cert, a.m)
	r.BoolsInto(a.sampled)
	a.sol = loadSol(r, a.m)
	a.uncovered = r.Int()
	a.inPass = r.Bool()
	a.sawUncovered = r.Bool()
	a.nSampled = r.Int()
	a.projWords = r.I64()

	nProj := r.Len()
	proj := make(map[setcover.SetID][]setcover.Element, nProj)
	for i := 0; i < nProj; i++ {
		s := r.I32()
		ne := r.Len()
		if r.Err() != nil {
			return r.Err()
		}
		if s < 0 || int(s) >= a.m {
			return fmt.Errorf("%w: projection set %d out of range [0,%d)", snap.ErrCorrupt, s, a.m)
		}
		elems := make([]setcover.Element, ne)
		for j := range elems {
			u := r.I32()
			if r.Err() != nil {
				return r.Err()
			}
			if u < 0 || int(u) >= a.n {
				return fmt.Errorf("%w: projection element %d out of range [0,%d)", snap.ErrCorrupt, u, a.n)
			}
			elems[j] = setcover.Element(u)
		}
		proj[setcover.SetID(s)] = elems
	}

	a.res.Passes = r.Int()
	a.res.Added = r.Ints()
	a.res.Sampled = r.Ints()
	a.res.Patched = r.Int()
	a.done = r.Bool()
	snap.LoadTracked(r, &a.Tracked)
	if err := r.Close(); err != nil {
		return err
	}
	if a.inPass {
		a.proj = proj
	} else {
		a.proj = nil
	}
	solSet := make(map[setcover.SetID]struct{}, len(a.sol))
	for _, s := range a.sol {
		solSet[s] = struct{}{}
	}
	a.solSet = solSet
	return nil
}

// loadSol reads the committed-solution list, range-checking each id.
func loadSol(r *snap.Reader, m int) []setcover.SetID {
	n := r.Len()
	if r.Err() != nil || n == 0 {
		return nil
	}
	sol := make([]setcover.SetID, n)
	for i := range sol {
		s := r.I32()
		if r.Err() != nil {
			return nil
		}
		if s < 0 || int(s) >= m {
			r.Failf("%w: solution set id %d out of range [0,%d)", snap.ErrCorrupt, s, m)
			return nil
		}
		sol[i] = setcover.SetID(s)
	}
	return sol
}
