package multipass

import (
	"bytes"
	"errors"
	"slices"
	"testing"

	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// driveFrom feeds the state machine from a mid-pass position: the remainder
// of the interrupted pass (when inPass), then whole passes to completion.
func driveFrom(t *testing.T, a *Algorithm, edges []stream.Edge, skip int) Result {
	t.Helper()
	if a.inPass {
		for _, e := range edges[skip:] {
			if err := a.ProcessEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		a.EndPass()
	}
	for a.BeginPass() {
		for _, e := range edges {
			if err := a.ProcessEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		a.EndPass()
	}
	return a.Finish()
}

// TestSnapshotResumeEquivalence interrupts the run in the middle of a pass
// (sketch live) and between passes, restores into a fresh machine, and the
// final result must match the uninterrupted Run in every field.
func TestSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(61), 150, 700, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(8))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()
	opt := Options{SampleBudget: 25, MaxPasses: 6}

	want, err := Run(n, m, stream.NewSlice(edges), opt, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}

	cuts := []struct {
		name    string
		passes  int // full passes to run before the interrupted one
		midPass int // edges of the next pass to feed before snapshotting (-1: between passes)
	}{
		{"mid-first-pass", 0, len(edges) / 2},
		{"start-of-pass", 0, 0},
		{"between-passes", 1, -1},
		{"mid-second-pass", 1, len(edges) / 3},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			a, err := New(n, m, opt, xrand.New(42))
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < c.passes; p++ {
				if !a.BeginPass() {
					t.Skip("run completed before reaching the cut")
				}
				for _, e := range edges {
					if err := a.ProcessEdge(e); err != nil {
						t.Fatal(err)
					}
				}
				a.EndPass()
			}
			skip := 0
			if c.midPass >= 0 {
				if !a.BeginPass() {
					t.Skip("run completed before reaching the cut")
				}
				for _, e := range edges[:c.midPass] {
					if err := a.ProcessEdge(e); err != nil {
						t.Fatal(err)
					}
				}
				skip = c.midPass
			}

			var buf bytes.Buffer
			if err := a.Snapshot(&buf); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			b, err := New(n, m, opt, xrand.New(7777))
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			got := driveFrom(t, b, edges, skip)

			if !want.Cover.Equal(got.Cover) {
				t.Fatal("resumed cover differs from uninterrupted run")
			}
			if got.Passes != want.Passes || got.Patched != want.Patched {
				t.Fatalf("passes/patched %d/%d, want %d/%d", got.Passes, got.Patched, want.Passes, want.Patched)
			}
			if !slices.Equal(got.Added, want.Added) || !slices.Equal(got.Sampled, want.Sampled) {
				t.Fatalf("per-round stats differ: %v/%v vs %v/%v", got.Added, got.Sampled, want.Added, want.Sampled)
			}
			if got.Space != want.Space {
				t.Fatalf("space %+v, want %+v", got.Space, want.Space)
			}
		})
	}
}

// TestRunMatchesStateMachine: the Run wrapper and a hand-driven state
// machine must produce identical results (Run is just a driver).
func TestRunMatchesStateMachine(t *testing.T) {
	w := workload.Planted(xrand.New(63), 90, 350, 7, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	n, m := w.Inst.UniverseSize(), w.Inst.NumSets()
	opt := Options{SampleBudget: 15}

	want, err := Run(n, m, stream.NewSlice(edges), opt, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(n, m, opt, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for a.BeginPass() {
		for _, e := range edges {
			if err := a.ProcessEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		a.EndPass()
	}
	got := a.Finish()
	if !want.Cover.Equal(got.Cover) || got.Passes != want.Passes {
		t.Fatal("hand-driven state machine diverged from Run")
	}
}

func TestProcessEdgeOutsidePassFails(t *testing.T) {
	a, err := New(10, 10, Options{SampleBudget: 5}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ProcessEdge(stream.Edge{Set: 0, Elem: 0}); err == nil {
		t.Fatal("ProcessEdge outside a pass must fail")
	}
}

func TestRestoreRejectsOptionMismatch(t *testing.T) {
	a, err := New(20, 30, Options{SampleBudget: 5}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := New(20, 30, Options{SampleBudget: 6}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, snap.ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

var _ stream.Snapshotter = (*Algorithm)(nil)
