package multipass

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func TestCoverValidAllWorkloadsAndOrders(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		for _, o := range stream.Orders() {
			edges := stream.Arrange(w.Inst, o, rng.Split())
			res, err := Run(w.Inst.UniverseSize(), w.Inst.NumSets(),
				stream.NewSlice(edges), Options{SampleBudget: 16}, rng.Split())
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, o, err)
			}
			if err := res.Cover.Verify(w.Inst); err != nil {
				t.Errorf("%s/%v: %v", w.Name, o, err)
			}
		}
	}
}

func TestFullBudgetMatchesOfflineGreedyRegime(t *testing.T) {
	// With B ≥ n, the first round samples every element and the algorithm
	// reduces to offline greedy: a couple of passes and a near-greedy cover.
	w := workload.Planted(xrand.New(2), 100, 500, 5, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(3))
	res, err := Run(100, 500, stream.NewSlice(edges), Options{SampleBudget: 100}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := setcover.GreedySize(w.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes > 2 {
		t.Errorf("full budget needed %d passes, want ≤ 2", res.Passes)
	}
	if res.Cover.Size() > 2*g {
		t.Errorf("full-budget cover %d far above greedy %d", res.Cover.Size(), g)
	}
}

func TestSmallBudgetUsesMorePassesLessSpace(t *testing.T) {
	w := workload.Planted(xrand.New(4), 400, 2000, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(5))

	small, err := Run(400, 2000, stream.NewSlice(edges), Options{SampleBudget: 10}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(400, 2000, stream.NewSlice(edges), Options{SampleBudget: 400}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if small.Passes <= big.Passes {
		t.Errorf("smaller budget should need more passes: B=10 %d, B=400 %d", small.Passes, big.Passes)
	}
	if small.Space.State > big.Space.State {
		t.Errorf("smaller budget should use ≤ sketch space: B=10 %d, B=400 %d", small.Space.State, big.Space.State)
	}
}

func TestPassesLogarithmicInPractice(t *testing.T) {
	// Sample-and-prune shape: a budget a few times OPT converges in few
	// rounds.
	w := workload.Planted(xrand.New(6), 400, 4000, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(7))
	res, err := Run(400, 4000, stream.NewSlice(edges), Options{SampleBudget: 80}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes > 4*int(math.Log2(400)) {
		t.Errorf("%d passes; sample-and-prune should converge in O(log n)-ish rounds", res.Passes)
	}
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPassesTruncationStillValid(t *testing.T) {
	w := workload.Planted(xrand.New(8), 200, 1000, 10, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(9))
	res, err := Run(200, 1000, stream.NewSlice(edges), Options{SampleBudget: 5, MaxPasses: 1}, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Fatalf("passes %d", res.Passes)
	}
	if err := res.Cover.Verify(w.Inst); err != nil {
		t.Fatalf("truncated run invalid: %v", err)
	}
	if res.Patched == 0 {
		t.Error("a one-pass tiny-budget run should have needed patching")
	}
}

func TestBookkeepingConsistent(t *testing.T) {
	w := workload.UniformRandom(xrand.New(10), 100, 400, 2, 12)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(11))
	res, err := Run(100, 400, stream.NewSlice(edges), Options{SampleBudget: 20}, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) > res.Passes || len(res.Sampled) > res.Passes {
		t.Fatalf("per-round records exceed passes: %d added, %d sampled, %d passes",
			len(res.Added), len(res.Sampled), res.Passes)
	}
	total := res.Patched
	for _, a := range res.Added {
		total += a
	}
	if res.Cover.Size() > total {
		t.Fatalf("cover %d > additions %d", res.Cover.Size(), total)
	}
}

func TestRunErrors(t *testing.T) {
	edges := []stream.Edge{{Set: 0, Elem: 0}}
	rng := xrand.New(1)
	if _, err := Run(0, 1, stream.NewSlice(edges), Options{SampleBudget: 1}, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(1, 0, stream.NewSlice(edges), Options{SampleBudget: 1}, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Run(1, 1, stream.NewSlice(edges), Options{}, rng); err == nil {
		t.Error("budget 0 accepted")
	}
	bad := []stream.Edge{{Set: 5, Elem: 0}}
	if _, err := Run(1, 1, stream.NewSlice(bad), Options{SampleBudget: 1}, rng); err == nil {
		t.Error("out-of-range set accepted")
	}
}

func TestDeterministic(t *testing.T) {
	w := workload.Planted(xrand.New(12), 100, 500, 5, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(13))
	a, _ := Run(100, 500, stream.NewSlice(edges), Options{SampleBudget: 30}, xrand.New(14))
	b, _ := Run(100, 500, stream.NewSlice(edges), Options{SampleBudget: 30}, xrand.New(14))
	if a.Cover.Size() != b.Cover.Size() || a.Passes != b.Passes {
		t.Fatal("multipass not deterministic")
	}
}

func BenchmarkMultipass(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 10000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.Random, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(1000, 10000, stream.NewSlice(edges), Options{SampleBudget: 100}, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
