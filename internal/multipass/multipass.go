// Package multipass implements the multi-pass edge-arrival Set Cover
// algorithm of Bateni, Esfandiari and Mirrokni (SPAA'17, [6] in the paper)
// in its sample-and-prune form — the p-pass baseline the paper's
// introduction contrasts with its one-pass results.
//
// Each round makes one pass over the stream. At the start of a round every
// yet-uncovered element is put in a sample with probability
// p = min(1, B/|U|), where B is the element-sample budget and |U| the
// current uncovered count; during the pass the algorithm stores the
// projection of every set onto the sampled elements (the round's sketch)
// and, at the end, adds an offline greedy cover of the sampled elements to
// the solution. Elements covered by the growing solution are pruned as
// their edges arrive in later passes. Larger budgets mean denser samples,
// fewer rounds and better covers at more space — exactly the passes/space
// trade-off of the multi-pass literature ([6], [10], [1], [15]).
//
// The run is factored into an explicit state machine (Algorithm with
// BeginPass/ProcessEdge/EndPass/Finish) so that a multi-pass run can be
// snapshotted between — or in the middle of — passes and resumed later; Run
// drives the state machine over a replayable stream and is behaviorally
// identical to the original closed-loop implementation, coin flip for coin
// flip.
package multipass

import (
	"fmt"

	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Result reports a multi-pass run.
type Result struct {
	Cover *setcover.Cover
	// Passes is the number of full passes over the stream.
	Passes int
	// Added[r] is how many sets round r added; Sampled[r] how many
	// elements round r's sample contained.
	Added, Sampled []int
	// Patched counts elements covered by the final backup patching (only
	// possible when MaxPasses truncated the run).
	Patched int
	// Space is the peak sketch space (state) and bookkeeping (aux).
	Space space.Usage
}

// Options configure Run.
type Options struct {
	// SampleBudget is B, the expected number of uncovered elements sampled
	// per round. Must be ≥ 1. B ≥ n degenerates to offline greedy in one
	// round.
	SampleBudget int
	// MaxPasses caps the number of passes (0 means until done, with a hard
	// safety cap of 64).
	MaxPasses int
}

// maxPassCap is the hard safety cap on passes.
const maxPassCap = 64

// Algorithm is the multi-pass state machine. Create with New; for each pass
// call BeginPass (false means the run is complete), feed every edge of the
// stream to ProcessEdge, and call EndPass; Finish assembles the result.
type Algorithm struct {
	space.Tracked

	n, m      int
	opt       Options
	maxPasses int
	rng       *xrand.Rand
	sink      *obs.Sink

	pos int64 // cumulative edges observed across passes

	covered   []bool
	backup    []setcover.SetID
	cert      []setcover.SetID
	sampled   []bool
	solSet    map[setcover.SetID]struct{}
	sol       []setcover.SetID
	uncovered int

	// Per-pass sketch, live between BeginPass and EndPass.
	inPass       bool
	proj         map[setcover.SetID][]setcover.Element
	projWords    int64
	sawUncovered bool
	nSampled     int

	res      Result
	done     bool // no further passes will run
	finished bool
}

// New returns a multi-pass state machine for an instance with n elements
// and m sets, drawing sampling coins from rng.
func New(n, m int, opt Options, rng *xrand.Rand) (*Algorithm, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("multipass: need n > 0 and m > 0")
	}
	if opt.SampleBudget < 1 {
		return nil, fmt.Errorf("multipass: SampleBudget must be ≥ 1, got %d", opt.SampleBudget)
	}
	maxPasses := opt.MaxPasses
	if maxPasses <= 0 || maxPasses > maxPassCap {
		maxPasses = maxPassCap
	}
	a := &Algorithm{
		n:         n,
		m:         m,
		opt:       opt,
		maxPasses: maxPasses,
		rng:       rng,
		sink:      obs.SinkFor(obs.AlgoMultipass),
		covered:   make([]bool, n),
		backup:    make([]setcover.SetID, n),
		cert:      make([]setcover.SetID, n),
		sampled:   make([]bool, n),
		solSet:    make(map[setcover.SetID]struct{}),
		uncovered: n,
	}
	for u := range a.backup {
		a.backup[u] = setcover.NoSet
		a.cert[u] = setcover.NoSet
	}
	a.AuxMeter.Add(4 * int64(n)) // covered, backup, certificate, sample flags
	return a, nil
}

// BeginPass starts the next round: it draws the round's element sample and
// opens a fresh projection sketch. It returns false — drawing no coins —
// when the run is complete (everything covered, a pass saw no uncovered
// edge, or the pass cap is exhausted).
func (a *Algorithm) BeginPass() bool {
	if a.done || a.finished || a.inPass || a.res.Passes >= a.maxPasses || a.uncovered <= 0 {
		return false
	}
	a.res.Passes++

	// Round sample: every uncovered element independently with probability
	// B/|U|. (covered[] may lag behind the true coverage of sol — that only
	// makes the sample denser than needed.)
	p := 1.0
	if a.uncovered > a.opt.SampleBudget {
		p = float64(a.opt.SampleBudget) / float64(a.uncovered)
	}
	a.nSampled = 0
	coins := int64(0)
	for u := 0; u < a.n; u++ {
		if !a.covered[u] {
			coins++
		}
		a.sampled[u] = !a.covered[u] && a.rng.Coin(p)
		if a.sampled[u] {
			a.nSampled++
		}
	}
	a.res.Sampled = append(a.res.Sampled, a.nSampled)
	// Per-element sample coins are high-volume: aggregate, don't ring.
	a.sink.Count(obs.KindSampleKeep, int64(a.nSampled))
	a.sink.Count(obs.KindSampleDrop, coins-int64(a.nSampled))

	a.proj = make(map[setcover.SetID][]setcover.Element)
	a.projWords = 0
	a.sawUncovered = false
	a.inPass = true
	return true
}

// ProcessEdge observes one edge of the current pass.
func (a *Algorithm) ProcessEdge(e stream.Edge) error {
	if !a.inPass {
		return fmt.Errorf("multipass: ProcessEdge outside a pass")
	}
	a.pos++
	u, set := e.Elem, e.Set
	if u < 0 || int(u) >= a.n || set < 0 || int(set) >= a.m {
		return fmt.Errorf("multipass: edge %v out of range", e)
	}
	if a.backup[u] == setcover.NoSet {
		a.backup[u] = set
	}
	if _, in := a.solSet[set]; in {
		if a.cert[u] == setcover.NoSet {
			a.cert[u] = set
			if !a.covered[u] {
				a.covered[u] = true
				a.uncovered--
			}
		}
		return nil
	}
	if a.covered[u] {
		return nil
	}
	a.sawUncovered = true
	if !a.sampled[u] {
		return nil
	}
	if _, seen := a.proj[set]; !seen {
		a.projWords += space.MapEntryWords
		a.StateMeter.Add(space.MapEntryWords)
	}
	a.proj[set] = append(a.proj[set], u)
	a.projWords += space.SliceElemWords
	a.StateMeter.Add(space.SliceElemWords)
	return nil
}

// EndPass closes the current round: if the pass saw an uncovered edge, the
// round's sampled elements are covered offline by greedy and the chosen
// sets committed; otherwise the run is complete. Either way the round's
// sketch is released.
func (a *Algorithm) EndPass() {
	if !a.inPass {
		return
	}
	a.inPass = false
	if !a.sawUncovered {
		a.StateMeter.Sub(a.projWords)
		a.proj, a.projWords = nil, 0
		a.done = true
		return
	}
	added := coverSample(a.sink, a.pos, a.proj, a.covered, a.cert, a.solSet, &a.sol, &a.uncovered)
	a.res.Added = append(a.res.Added, added)
	a.StateMeter.Sub(a.projWords)
	a.sink.Emit(obs.KindEpoch, a.pos, int64(a.res.Passes), int64(added), int64(a.nSampled))
	a.proj, a.projWords = nil, 0
}

// Finish patches every element that never got a certificate (possible when
// MaxPasses ran out, or when a chosen set's remaining edges never
// re-appeared after the final pass) and assembles the result. Call it once,
// after BeginPass has returned false.
func (a *Algorithm) Finish() Result {
	if a.finished {
		panic("multipass: Finish called twice")
	}
	a.finished = true
	for u := 0; u < a.n; u++ {
		if a.cert[u] == setcover.NoSet && a.backup[u] != setcover.NoSet {
			a.cert[u] = a.backup[u]
			a.sol = append(a.sol, a.backup[u])
			a.res.Patched++
		}
	}
	a.sink.Count(obs.KindPatch, int64(a.res.Patched))
	a.res.Cover = setcover.NewCover(a.sol, a.cert)
	a.res.Space = a.Space()
	return a.res
}

// Passes returns how many passes have started so far.
func (a *Algorithm) Passes() int { return a.res.Passes }

// Uncovered returns the current uncovered-element count.
func (a *Algorithm) Uncovered() int { return a.uncovered }

// Run executes the multi-pass algorithm over a replayable stream of an
// instance with n elements and m sets, drawing sampling coins from rng.
func Run(n, m int, s stream.Stream, opt Options, rng *xrand.Rand) (Result, error) {
	a, err := New(n, m, opt, rng)
	if err != nil {
		return Result{}, err
	}
	for a.BeginPass() {
		s.Reset()
		for {
			e, ok := s.Next()
			if !ok {
				break
			}
			if err := a.ProcessEdge(e); err != nil {
				return Result{}, err
			}
		}
		a.EndPass()
	}
	return a.Finish(), nil
}

// coverSample greedily covers every projected (sampled, uncovered) element
// and commits the chosen sets. Returns how many new sets were added.
func coverSample(sink *obs.Sink, pos int64, proj map[setcover.SetID][]setcover.Element,
	covered []bool, cert []setcover.SetID,
	solSet map[setcover.SetID]struct{}, sol *[]setcover.SetID, uncovered *int) int {

	if len(proj) == 0 {
		return 0
	}
	ids := make([]setcover.SetID, 0, len(proj))
	for s := range proj {
		ids = append(ids, s)
	}
	sortIDs(ids)

	added := 0
	for {
		best := setcover.NoSet
		bestGain := 0
		for _, s := range ids {
			gain := 0
			for _, u := range proj[s] {
				if !covered[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				best = s
			}
		}
		if best == setcover.NoSet {
			return added
		}
		solSet[best] = struct{}{}
		*sol = append(*sol, best)
		added++
		sink.Emit(obs.KindSetSelected, pos, int64(best), int64(len(*sol)), int64(bestGain))
		for _, u := range proj[best] {
			if !covered[u] {
				covered[u] = true
				cert[u] = best
				*uncovered--
			}
		}
	}
}

func sortIDs(s []setcover.SetID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
