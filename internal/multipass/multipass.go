// Package multipass implements the multi-pass edge-arrival Set Cover
// algorithm of Bateni, Esfandiari and Mirrokni (SPAA'17, [6] in the paper)
// in its sample-and-prune form — the p-pass baseline the paper's
// introduction contrasts with its one-pass results.
//
// Each round makes one pass over the stream. At the start of a round every
// yet-uncovered element is put in a sample with probability
// p = min(1, B/|U|), where B is the element-sample budget and |U| the
// current uncovered count; during the pass the algorithm stores the
// projection of every set onto the sampled elements (the round's sketch)
// and, at the end, adds an offline greedy cover of the sampled elements to
// the solution. Elements covered by the growing solution are pruned as
// their edges arrive in later passes. Larger budgets mean denser samples,
// fewer rounds and better covers at more space — exactly the passes/space
// trade-off of the multi-pass literature ([6], [10], [1], [15]).
package multipass

import (
	"fmt"

	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
	"streamcover/internal/xrand"
)

// Result reports a multi-pass run.
type Result struct {
	Cover *setcover.Cover
	// Passes is the number of full passes over the stream.
	Passes int
	// Added[r] is how many sets round r added; Sampled[r] how many
	// elements round r's sample contained.
	Added, Sampled []int
	// Patched counts elements covered by the final backup patching (only
	// possible when MaxPasses truncated the run).
	Patched int
	// Space is the peak sketch space (state) and bookkeeping (aux).
	Space space.Usage
}

// Options configure Run.
type Options struct {
	// SampleBudget is B, the expected number of uncovered elements sampled
	// per round. Must be ≥ 1. B ≥ n degenerates to offline greedy in one
	// round.
	SampleBudget int
	// MaxPasses caps the number of passes (0 means until done, with a hard
	// safety cap of 64).
	MaxPasses int
}

// Run executes the multi-pass algorithm over a replayable stream of an
// instance with n elements and m sets, drawing sampling coins from rng.
func Run(n, m int, s stream.Stream, opt Options, rng *xrand.Rand) (Result, error) {
	if n <= 0 || m <= 0 {
		return Result{}, fmt.Errorf("multipass: need n > 0 and m > 0")
	}
	if opt.SampleBudget < 1 {
		return Result{}, fmt.Errorf("multipass: SampleBudget must be ≥ 1, got %d", opt.SampleBudget)
	}
	maxPasses := opt.MaxPasses
	if maxPasses <= 0 || maxPasses > 64 {
		maxPasses = 64
	}

	var tracked space.Tracked
	tracked.AuxMeter.Add(4 * int64(n)) // covered, backup, certificate, sample flags

	sink := obs.SinkFor(obs.AlgoMultipass)
	pos := int64(0) // cumulative edges observed across passes

	covered := make([]bool, n)
	backup := make([]setcover.SetID, n)
	cert := make([]setcover.SetID, n)
	sampled := make([]bool, n)
	for u := range backup {
		backup[u] = setcover.NoSet
		cert[u] = setcover.NoSet
	}
	solSet := make(map[setcover.SetID]struct{})
	var sol []setcover.SetID
	res := Result{}
	uncovered := n

	for pass := 0; pass < maxPasses && uncovered > 0; pass++ {
		res.Passes++

		// Round sample: every uncovered element independently with
		// probability B/|U|. (covered[] may lag behind the true coverage of
		// sol — that only makes the sample denser than needed.)
		p := 1.0
		if uncovered > opt.SampleBudget {
			p = float64(opt.SampleBudget) / float64(uncovered)
		}
		nSampled := 0
		coins := int64(0)
		for u := 0; u < n; u++ {
			if !covered[u] {
				coins++
			}
			sampled[u] = !covered[u] && rng.Coin(p)
			if sampled[u] {
				nSampled++
			}
		}
		res.Sampled = append(res.Sampled, nSampled)
		// Per-element sample coins are high-volume: aggregate, don't ring.
		sink.Count(obs.KindSampleKeep, int64(nSampled))
		sink.Count(obs.KindSampleDrop, coins-int64(nSampled))

		proj := make(map[setcover.SetID][]setcover.Element)
		projWords := int64(0)
		sawUncovered := false

		s.Reset()
		for {
			e, ok := s.Next()
			if !ok {
				break
			}
			pos++
			u, set := e.Elem, e.Set
			if u < 0 || int(u) >= n || set < 0 || int(set) >= m {
				return Result{}, fmt.Errorf("multipass: edge %v out of range", e)
			}
			if backup[u] == setcover.NoSet {
				backup[u] = set
			}
			if _, in := solSet[set]; in {
				if cert[u] == setcover.NoSet {
					cert[u] = set
					if !covered[u] {
						covered[u] = true
						uncovered--
					}
				}
				continue
			}
			if covered[u] {
				continue
			}
			sawUncovered = true
			if !sampled[u] {
				continue
			}
			if _, seen := proj[set]; !seen {
				projWords += space.MapEntryWords
				tracked.StateMeter.Add(space.MapEntryWords)
			}
			proj[set] = append(proj[set], u)
			projWords += space.SliceElemWords
			tracked.StateMeter.Add(space.SliceElemWords)
		}

		if !sawUncovered {
			tracked.StateMeter.Sub(projWords)
			break
		}

		added := coverSample(sink, pos, proj, covered, cert, solSet, &sol, &uncovered)
		res.Added = append(res.Added, added)
		tracked.StateMeter.Sub(projWords)
		sink.Emit(obs.KindEpoch, pos, int64(res.Passes), int64(added), int64(nSampled))
		if added == 0 && nSampled == 0 {
			// Nothing uncovered was sampled (can happen when covered[] lags
			// sol's true coverage); the next pass's sol-hits will prune.
			continue
		}
	}

	// Patch whatever never got a certificate (possible when MaxPasses ran
	// out, or when a chosen set's remaining edges never re-appeared after
	// the final pass).
	for u := 0; u < n; u++ {
		if cert[u] == setcover.NoSet && backup[u] != setcover.NoSet {
			cert[u] = backup[u]
			sol = append(sol, backup[u])
			res.Patched++
		}
	}
	sink.Count(obs.KindPatch, int64(res.Patched))
	res.Cover = setcover.NewCover(sol, cert)
	res.Space = tracked.Space()
	return res, nil
}

// coverSample greedily covers every projected (sampled, uncovered) element
// and commits the chosen sets. Returns how many new sets were added.
func coverSample(sink *obs.Sink, pos int64, proj map[setcover.SetID][]setcover.Element,
	covered []bool, cert []setcover.SetID,
	solSet map[setcover.SetID]struct{}, sol *[]setcover.SetID, uncovered *int) int {

	if len(proj) == 0 {
		return 0
	}
	ids := make([]setcover.SetID, 0, len(proj))
	for s := range proj {
		ids = append(ids, s)
	}
	sortIDs(ids)

	added := 0
	for {
		best := setcover.NoSet
		bestGain := 0
		for _, s := range ids {
			gain := 0
			for _, u := range proj[s] {
				if !covered[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				best = s
			}
		}
		if best == setcover.NoSet {
			return added
		}
		solSet[best] = struct{}{}
		*sol = append(*sol, best)
		added++
		sink.Emit(obs.KindSetSelected, pos, int64(best), int64(len(*sol)), int64(bestGain))
		for _, u := range proj[best] {
			if !covered[u] {
				covered[u] = true
				cert[u] = best
				*uncovered--
			}
		}
	}
}

func sortIDs(s []setcover.SetID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
