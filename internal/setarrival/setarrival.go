// Package setarrival implements one-pass baselines for the classical
// *set-arrival* streaming model, where entire sets arrive with all their
// elements (paper §1). The paper contrasts this model with edge arrival:
// here a Θ(√n)-approximation needs only Θ̃(n) space (Emek–Rosén [13],
// Chakrabarti–Wirth [10]), whereas edge arrival requires Ω̃(m) space at the
// same approximation factor (Theorem 2). The E-SETARR experiment
// demonstrates exactly this contrast.
package setarrival

import (
	"fmt"
	"math"

	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// Threshold is the classical one-pass set-arrival algorithm: an arriving
// set is added to the solution iff it covers at least √n yet-uncovered
// elements; at stream end, every still-uncovered element is patched with an
// arbitrary stored set containing it (one set per element).
//
// Approximation: the threshold stage adds ≤ n/√n = √n sets; at the end each
// remaining element lies only in sets that covered < √n new elements when
// they arrived, so an optimal cover's sets leave < OPT·√n of them, and
// patching adds at most that many. Total ≤ √n + √n·OPT = O(√n)·OPT.
//
// Space: a covered bitmap, one backup set id per element and the solution —
// O(n) words, with no dependence on m.
type Threshold struct {
	space.Tracked

	n         int
	threshold int
	covered   []bool
	backup    []setcover.SetID // first arrived set containing u
	cert      []setcover.SetID
	sol       []setcover.SetID
	patched   int
	arrived   int64     // sets observed, stamped on emitted events as Pos
	sink      *obs.Sink // decision-event sink; nil (inert) unless a hub is installed
}

// NewThreshold returns a threshold run for a universe of n elements. The
// threshold is ⌈√n⌉.
func NewThreshold(n int) *Threshold {
	if n <= 0 {
		panic("setarrival: need n > 0")
	}
	t := &Threshold{
		n:         n,
		threshold: int(math.Ceil(math.Sqrt(float64(n)))),
		covered:   make([]bool, n),
		backup:    make([]setcover.SetID, n),
		cert:      make([]setcover.SetID, n),
		sink:      obs.SinkFor(obs.AlgoSetArrival),
	}
	for u := range t.backup {
		t.backup[u] = setcover.NoSet
		t.cert[u] = setcover.NoSet
	}
	t.AuxMeter.Add(3 * int64(n))
	return t
}

// ProcessSet observes the next arriving set with its full element list.
func (t *Threshold) ProcessSet(id setcover.SetID, elems []setcover.Element) {
	t.arrived++
	newCount := 0
	for _, u := range elems {
		if t.backup[u] == setcover.NoSet {
			t.backup[u] = id
		}
		if !t.covered[u] {
			newCount++
		}
	}
	if newCount < t.threshold {
		return
	}
	t.sol = append(t.sol, id)
	t.StateMeter.Add(space.SliceElemWords)
	t.sink.Emit(obs.KindSetSelected, t.arrived, int64(id), int64(len(t.sol)), int64(newCount))
	for _, u := range elems {
		if !t.covered[u] {
			t.covered[u] = true
			t.cert[u] = id
		}
	}
}

// Finish patches the uncovered elements and returns the cover.
func (t *Threshold) Finish() *setcover.Cover {
	chosen := append([]setcover.SetID(nil), t.sol...)
	for u := range t.cert {
		if t.cert[u] == setcover.NoSet && t.backup[u] != setcover.NoSet {
			t.cert[u] = t.backup[u]
			chosen = append(chosen, t.backup[u])
			t.patched++
		}
	}
	t.sink.Count(obs.KindPatch, int64(t.patched))
	return setcover.NewCover(chosen, t.cert)
}

// SetObs replaces the decision-event sink (tests attach private hubs here;
// nil detaches).
func (t *Threshold) SetObs(s *obs.Sink) { t.sink = s }

// ObsAlgo implements obs.Identified.
func (t *Threshold) ObsAlgo() obs.AlgoID { return obs.AlgoSetArrival }

// Patched returns how many elements were patched, available after Finish.
func (t *Threshold) Patched() int { return t.patched }

// ThresholdValue returns the √n add threshold in use.
func (t *Threshold) ThresholdValue() int { return t.threshold }

// RunSetArrival drives a set-arrival algorithm over an edge-arrival stream
// that is in a set-contiguous order (stream.SetMajor or
// stream.SetMajorShuffled): it groups each maximal run of edges with the
// same set id into one set arrival. It returns an error if the stream is
// not set-contiguous (a set id recurring after a different set intervened),
// since silently feeding such a stream would not be the set-arrival model.
func RunSetArrival(t *Threshold, s stream.Stream) (*setcover.Cover, error) {
	s.Reset()
	seen := make(map[setcover.SetID]bool)
	cur := setcover.SetID(-1)
	var elems []setcover.Element
	flush := func() {
		if cur >= 0 {
			t.ProcessSet(cur, elems)
			elems = elems[:0]
		}
	}
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if e.Set != cur {
			if seen[e.Set] {
				return nil, fmt.Errorf("setarrival: stream not set-contiguous: set %d recurs", e.Set)
			}
			flush()
			cur = e.Set
			seen[cur] = true
		}
		elems = append(elems, e.Elem)
	}
	flush()
	return t.Finish(), nil
}
