package setarrival

import (
	"bytes"
	"errors"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

// sets materialises the instance as (id, elems) pairs, the set-arrival feed.
func setsOf(w workload.Workload) [][]setcover.Element {
	m := w.Inst.NumSets()
	out := make([][]setcover.Element, m)
	for s := 0; s < m; s++ {
		out[s] = w.Inst.Set(setcover.SetID(s))
	}
	return out
}

func TestThresholdSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(51), 100, 400, 8, 0)
	n := w.Inst.UniverseSize()
	sets := setsOf(w)

	ref := NewThreshold(n)
	for id, elems := range sets {
		ref.ProcessSet(setcover.SetID(id), elems)
	}
	want := ref.Finish()

	for _, cut := range []int{0, 1, len(sets) / 2, len(sets)} {
		a := NewThreshold(n)
		for id := 0; id < cut; id++ {
			a.ProcessSet(setcover.SetID(id), sets[id])
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatalf("cut=%d: Snapshot: %v", cut, err)
		}
		b := NewThreshold(n)
		if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("cut=%d: Restore: %v", cut, err)
		}
		for id := cut; id < len(sets); id++ {
			b.ProcessSet(setcover.SetID(id), sets[id])
		}
		if got := b.Finish(); !want.Equal(got) {
			t.Fatalf("cut=%d: resumed cover differs from uninterrupted run", cut)
		}
	}
}

func TestMultiPassSnapshotResumeEquivalence(t *testing.T) {
	w := workload.Planted(xrand.New(53), 120, 500, 8, 0)
	n := w.Inst.UniverseSize()
	sets := setsOf(w)
	const p = 3

	run := func(t0 *MultiPassThreshold, startPass, startSet int) *setcover.Cover {
		for pass := startPass; pass < p; pass++ {
			from := 0
			if pass == startPass {
				from = startSet
			}
			for id := from; id < len(sets); id++ {
				t0.ProcessSet(setcover.SetID(id), sets[id])
			}
			if pass < p-1 {
				if err := t0.NextPass(); err != nil {
					t.Fatalf("NextPass: %v", err)
				}
			}
		}
		return t0.Finish()
	}

	want := run(NewMultiPassThreshold(n, p), 0, 0)

	// Interrupt in the middle of pass 1 (the second rung of the ladder).
	a := NewMultiPassThreshold(n, p)
	for id := range sets {
		a.ProcessSet(setcover.SetID(id), sets[id])
	}
	if err := a.NextPass(); err != nil {
		t.Fatal(err)
	}
	mid := len(sets) / 3
	for id := 0; id < mid; id++ {
		a.ProcessSet(setcover.SetID(id), sets[id])
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewMultiPassThreshold(n, p)
	if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := run(b, 1, mid); !want.Equal(got) {
		t.Fatal("resumed multi-pass cover differs from uninterrupted run")
	}
}

func TestMultiPassRestoreRejectsPassCountMismatch(t *testing.T) {
	a := NewMultiPassThreshold(50, 2)
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewMultiPassThreshold(50, 3)
	if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, snap.ErrMismatch) {
		t.Fatalf("want ErrMismatch, got %v", err)
	}
}

var _ stream.Snapshotter = (*Threshold)(nil)
var _ stream.Snapshotter = (*MultiPassThreshold)(nil)
