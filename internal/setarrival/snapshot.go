package setarrival

import (
	"fmt"
	"io"
	"math"
	"slices"

	"streamcover/internal/setcover"
	"streamcover/internal/snap"
)

// snapVersion is the SCSTATE1 layout version of this package's snapshots.
const snapVersion = 1

// The set-arrival baselines carry no generator and no pooled scratch, so
// their snapshots are the plain bookkeeping arrays. Set ids in a set-arrival
// stream are not bounded by a stored m, so loads only range-check against
// the id type's own domain.
const anySetBound = math.MaxInt32

// Snapshot implements stream.Snapshotter for the one-pass threshold
// baseline.
func (t *Threshold) Snapshot(wr io.Writer) error {
	w := snap.NewWriter(wr, "setarrival", snapVersion)
	w.Int(t.n)
	w.Int(t.threshold)
	w.Bools(t.covered)
	snap.SaveSetIDs(w, t.backup)
	snap.SaveSetIDs(w, t.cert)
	snap.SaveSetIDs(w, t.sol)
	w.Int(t.patched)
	w.I64(t.arrived)
	snap.SaveTracked(w, &t.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance with the same n.
func (t *Threshold) Restore(rd io.Reader) error {
	r, err := snap.NewReader(rd, "setarrival")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: setarrival snapshot v%d", snap.ErrVersion, v)
	}
	n, thr := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != t.n || thr != t.threshold {
		return fmt.Errorf("%w: snapshot shape n=%d threshold=%d, receiver has n=%d threshold=%d",
			snap.ErrMismatch, n, thr, t.n, t.threshold)
	}
	r.BoolsInto(t.covered)
	snap.LoadSetIDsInto(r, t.backup, anySetBound)
	snap.LoadSetIDsInto(r, t.cert, anySetBound)
	t.sol = loadSolution(r)
	t.patched = r.Int()
	t.arrived = r.I64()
	snap.LoadTracked(r, &t.Tracked)
	return r.Close()
}

// loadSolution reads a variable-length chosen-set list written with
// snap.SaveSetIDs, range-checking each id.
func loadSolution(r *snap.Reader) []setcover.SetID {
	n := r.Len()
	if r.Err() != nil || n == 0 {
		return nil
	}
	sol := make([]setcover.SetID, n)
	for i := range sol {
		s := r.I32()
		if r.Err() != nil {
			return nil
		}
		if s < 0 {
			r.Failf("%w: solution set id %d negative", snap.ErrCorrupt, s)
			return nil
		}
		sol[i] = setcover.SetID(s)
	}
	return sol
}

// Snapshot implements stream.Snapshotter for the p-pass ladder, capturing
// the pass cursor so a run interrupted between passes resumes in the right
// rung.
func (t *MultiPassThreshold) Snapshot(wr io.Writer) error {
	w := snap.NewWriter(wr, "setarrival-multipass", snapVersion)
	w.Int(t.n)
	w.Int(t.passes)
	w.Ints(t.thresholds)
	w.Int(t.pass)
	w.Bools(t.covered)
	snap.SaveSetIDs(w, t.backup)
	snap.SaveSetIDs(w, t.cert)
	snap.SaveSetIDs(w, t.sol)
	w.Int(t.patched)
	snap.SaveTracked(w, &t.Tracked)
	return w.Close()
}

// Restore implements stream.Snapshotter. The receiver must be a freshly
// constructed instance with the same (n, p).
func (t *MultiPassThreshold) Restore(rd io.Reader) error {
	r, err := snap.NewReader(rd, "setarrival-multipass")
	if err != nil {
		return err
	}
	if v := r.Version(); v != snapVersion {
		return fmt.Errorf("%w: setarrival-multipass snapshot v%d", snap.ErrVersion, v)
	}
	n, passes := r.Int(), r.Int()
	thresholds := r.Ints()
	pass := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != t.n || passes != t.passes || !slices.Equal(thresholds, t.thresholds) {
		return fmt.Errorf("%w: snapshot shape n=%d p=%d θ=%v, receiver has n=%d p=%d θ=%v",
			snap.ErrMismatch, n, passes, thresholds, t.n, t.passes, t.thresholds)
	}
	if pass < 0 || pass >= passes {
		return fmt.Errorf("%w: pass %d out of range [0,%d)", snap.ErrCorrupt, pass, passes)
	}
	t.pass = pass
	r.BoolsInto(t.covered)
	snap.LoadSetIDsInto(r, t.backup, anySetBound)
	snap.LoadSetIDsInto(r, t.cert, anySetBound)
	t.sol = loadSolution(r)
	t.patched = r.Int()
	snap.LoadTracked(r, &t.Tracked)
	return r.Close()
}
