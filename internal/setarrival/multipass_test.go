package setarrival

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func runMP(t testing.TB, w workload.Workload, p int, seed uint64) (*setcover.Cover, *MultiPassThreshold) {
	t.Helper()
	edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, xrand.New(seed))
	alg := NewMultiPassThreshold(w.Inst.UniverseSize(), p)
	cov, err := RunMultiPassSetArrival(alg, stream.NewSlice(edges))
	if err != nil {
		t.Fatal(err)
	}
	return cov, alg
}

func TestMultiPassCoverValid(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		for _, p := range []int{1, 2, 3} {
			cov, _ := runMP(t, w, p, 5)
			if err := cov.Verify(w.Inst); err != nil {
				t.Errorf("%s p=%d: %v", w.Name, p, err)
			}
		}
	}
}

func TestThresholdSchedule(t *testing.T) {
	alg := NewMultiPassThreshold(256, 3)
	th := alg.Thresholds()
	// θ_j = 256^{(4-j)/4} = 64, 16, 4.
	want := []int{64, 16, 4}
	for i := range want {
		if th[i] != want[i] {
			t.Fatalf("thresholds %v want %v", th, want)
		}
	}
	// Strictly decreasing always.
	for i := 1; i < len(th); i++ {
		if th[i] >= th[i-1] {
			t.Fatalf("thresholds not decreasing: %v", th)
		}
	}
}

func TestOnePassMatchesThresholdAlgorithm(t *testing.T) {
	// p = 1 ⇒ θ_1 = √n: same rule as Threshold, same stream, same cover.
	w := workload.Planted(xrand.New(2), 100, 500, 5, 0)
	edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, xrand.New(3))

	mp := NewMultiPassThreshold(100, 1)
	covMP, err := RunMultiPassSetArrival(mp, stream.NewSlice(edges))
	if err != nil {
		t.Fatal(err)
	}
	single := NewThreshold(100)
	covS, err := RunSetArrival(single, stream.NewSlice(edges))
	if err != nil {
		t.Fatal(err)
	}
	if covMP.Size() != covS.Size() {
		t.Fatalf("p=1 multipass %d != single-pass threshold %d", covMP.Size(), covS.Size())
	}
}

func TestMorePassesImproveApproximation(t *testing.T) {
	// More passes ⇒ lower final threshold ⇒ fewer patched elements and (on
	// planted instances) covers closer to greedy.
	w := workload.Planted(xrand.New(4), 400, 2000, 10, 0)
	var sizes []int
	for _, p := range []int{1, 2, 4} {
		cov, _ := runMP(t, w, p, 7)
		sizes = append(sizes, cov.Size())
	}
	if sizes[2] > sizes[0] {
		t.Errorf("4 passes (%d) worse than 1 pass (%d)", sizes[2], sizes[0])
	}
	// The p-pass bound O(p·n^{1/(p+1)})·OPT with slack.
	for i, p := range []int{1, 2, 4} {
		bound := 4 * float64(p) * math.Pow(400, 1/float64(p+1)) * float64(w.PlantedOPT)
		if float64(sizes[i]) > bound {
			t.Errorf("p=%d: cover %d exceeds O(p·n^{1/(p+1)})·OPT = %.0f", p, sizes[i], bound)
		}
	}
}

func TestSpaceStaysLinearInN(t *testing.T) {
	n := 300
	w := workload.Planted(xrand.New(5), n, 3000, 10, 0)
	_, alg := runMP(t, w, 3, 9)
	if total := alg.Space().Total(); total > 5*int64(n) {
		t.Errorf("space %d exceeds O(n)", total)
	}
}

func TestNextPassExhaustion(t *testing.T) {
	alg := NewMultiPassThreshold(16, 2)
	if err := alg.NextPass(); err != nil {
		t.Fatal(err)
	}
	if err := alg.NextPass(); err == nil {
		t.Fatal("pass overflow accepted")
	}
}

func TestMultiPassRejectsNonContiguous(t *testing.T) {
	inst := setcover.MustNewInstance(4, [][]setcover.Element{{0, 1}, {2, 3}})
	edges := stream.Arrange(inst, stream.RoundRobin, nil)
	if _, err := RunMultiPassSetArrival(NewMultiPassThreshold(4, 2), stream.NewSlice(edges)); err == nil {
		t.Fatal("interleaved stream accepted")
	}
}

func TestNewMultiPassPanics(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{0, 1}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMultiPassThreshold(%d,%d) did not panic", tc.n, tc.p)
				}
			}()
			NewMultiPassThreshold(tc.n, tc.p)
		}()
	}
}

func BenchmarkMultiPassThreshold(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 5000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMultiPassSetArrival(NewMultiPassThreshold(1000, 3), stream.NewSlice(edges)); err != nil {
			b.Fatal(err)
		}
	}
}
