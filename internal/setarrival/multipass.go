package setarrival

import (
	"fmt"
	"math"

	"streamcover/internal/setcover"
	"streamcover/internal/space"
	"streamcover/internal/stream"
)

// MultiPassThreshold is the p-pass set-arrival algorithm of Chakrabarti and
// Wirth (SODA'16, [10] in the paper): pass j admits any arriving set that
// covers at least θ_j = n^{(p+1-j)/(p+1)} yet-uncovered elements, and after
// the p-th pass (θ_p = n^{1/(p+1)}) every remaining element is patched with
// one stored set. The result is an O(p·n^{1/(p+1)})-approximation with O(n)
// words — the semi-streaming pass/approximation trade-off the paper's §1.3
// recounts (and which [10] prove optimal for constant p).
//
// p = 1 coincides with the single-pass √n-threshold algorithm (Threshold).
type MultiPassThreshold struct {
	space.Tracked

	n, passes  int
	thresholds []int
	pass       int // current pass (0-based)

	covered []bool
	backup  []setcover.SetID
	cert    []setcover.SetID
	sol     []setcover.SetID
	patched int
}

// NewMultiPassThreshold returns a p-pass run over a universe of n elements.
// It panics unless n > 0 and p ≥ 1.
func NewMultiPassThreshold(n, p int) *MultiPassThreshold {
	if n <= 0 || p < 1 {
		panic("setarrival: NewMultiPassThreshold needs n > 0 and p ≥ 1")
	}
	t := &MultiPassThreshold{
		n:       n,
		passes:  p,
		covered: make([]bool, n),
		backup:  make([]setcover.SetID, n),
		cert:    make([]setcover.SetID, n),
	}
	for u := range t.backup {
		t.backup[u] = setcover.NoSet
		t.cert[u] = setcover.NoSet
	}
	t.AuxMeter.Add(3 * int64(n))
	t.thresholds = make([]int, p)
	for j := 1; j <= p; j++ {
		exp := float64(p+1-j) / float64(p+1)
		th := int(math.Ceil(math.Pow(float64(n), exp)))
		if th < 1 {
			th = 1
		}
		t.thresholds[j-1] = th
	}
	return t
}

// Thresholds returns θ_1..θ_p.
func (t *MultiPassThreshold) Thresholds() []int {
	return append([]int(nil), t.thresholds...)
}

// ProcessSet observes the next arriving set of the current pass.
func (t *MultiPassThreshold) ProcessSet(id setcover.SetID, elems []setcover.Element) {
	newCount := 0
	for _, u := range elems {
		if t.backup[u] == setcover.NoSet {
			t.backup[u] = id
		}
		if !t.covered[u] {
			newCount++
		}
	}
	if newCount < t.thresholds[t.pass] {
		return
	}
	t.sol = append(t.sol, id)
	t.StateMeter.Add(space.SliceElemWords)
	for _, u := range elems {
		if !t.covered[u] {
			t.covered[u] = true
			t.cert[u] = id
		}
	}
}

// NextPass advances to the following pass. It returns an error if all p
// passes have already run.
func (t *MultiPassThreshold) NextPass() error {
	if t.pass+1 >= t.passes {
		return fmt.Errorf("setarrival: all %d passes consumed", t.passes)
	}
	t.pass++
	return nil
}

// Finish patches the uncovered elements and returns the cover.
func (t *MultiPassThreshold) Finish() *setcover.Cover {
	chosen := append([]setcover.SetID(nil), t.sol...)
	for u := range t.cert {
		if t.cert[u] == setcover.NoSet && t.backup[u] != setcover.NoSet {
			t.cert[u] = t.backup[u]
			chosen = append(chosen, t.backup[u])
			t.patched++
		}
	}
	return setcover.NewCover(chosen, t.cert)
}

// Patched returns how many elements were patched, available after Finish.
func (t *MultiPassThreshold) Patched() int { return t.patched }

// RunMultiPassSetArrival drives all p passes of t over a set-contiguous
// edge-arrival stream (see RunSetArrival for the contiguity requirement).
func RunMultiPassSetArrival(t *MultiPassThreshold, s stream.Stream) (*setcover.Cover, error) {
	for pass := 0; ; pass++ {
		s.Reset()
		seen := make(map[setcover.SetID]bool)
		cur := setcover.SetID(-1)
		var elems []setcover.Element
		flush := func() {
			if cur >= 0 {
				t.ProcessSet(cur, elems)
				elems = elems[:0]
			}
		}
		for {
			e, ok := s.Next()
			if !ok {
				break
			}
			if e.Set != cur {
				if seen[e.Set] {
					return nil, fmt.Errorf("setarrival: stream not set-contiguous: set %d recurs", e.Set)
				}
				flush()
				cur = e.Set
				seen[cur] = true
			}
			elems = append(elems, e.Elem)
		}
		flush()
		if err := t.NextPass(); err != nil {
			break // that was the final pass
		}
	}
	return t.Finish(), nil
}
