package setarrival

import (
	"math"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
	"streamcover/internal/xrand"
)

func runOn(t testing.TB, w workload.Workload, seed uint64) (*setcover.Cover, *Threshold) {
	t.Helper()
	rng := xrand.New(seed)
	edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, rng)
	alg := NewThreshold(w.Inst.UniverseSize())
	cov, err := RunSetArrival(alg, stream.NewSlice(edges))
	if err != nil {
		t.Fatal(err)
	}
	return cov, alg
}

func TestCoverValidOnAllWorkloads(t *testing.T) {
	rng := xrand.New(1)
	for _, w := range workload.Catalog(rng) {
		cov, _ := runOn(t, w, 33)
		if err := cov.Verify(w.Inst); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestApproximationWithinSqrtN(t *testing.T) {
	w := workload.Planted(xrand.New(2), 400, 2000, 10, 0)
	cov, _ := runOn(t, w, 3)
	// The deterministic bound: |cover| ≤ √n + √n·OPT.
	bound := math.Sqrt(400) * float64(1+w.PlantedOPT)
	if float64(cov.Size()) > bound {
		t.Errorf("cover %d exceeds √n·(OPT+1) = %.0f", cov.Size(), bound)
	}
}

func TestSpaceIndependentOfM(t *testing.T) {
	// O(n) words regardless of m — the set-arrival contrast to Theorem 2.
	n := 300
	var peaks []int64
	for _, m := range []int{500, 5000} {
		w := workload.Planted(xrand.New(3), n, m, 10, 0)
		_, alg := runOn(t, w, 5)
		u := alg.Space()
		peaks = append(peaks, u.Total())
		if u.Total() > 5*int64(n) {
			t.Errorf("m=%d: space %d exceeds O(n)", m, u.Total())
		}
	}
	if float64(peaks[1]) > 1.5*float64(peaks[0]) {
		t.Errorf("space grew with m: %v", peaks)
	}
}

func TestThresholdRule(t *testing.T) {
	// n = 16 → threshold 4. A set with 4 new elements is taken; 3 is not.
	alg := NewThreshold(16)
	if alg.ThresholdValue() != 4 {
		t.Fatalf("threshold %d", alg.ThresholdValue())
	}
	alg.ProcessSet(0, []setcover.Element{0, 1, 2})
	if len(alg.sol) != 0 {
		t.Fatal("3-element set accepted")
	}
	alg.ProcessSet(1, []setcover.Element{0, 1, 2, 3})
	if len(alg.sol) != 1 {
		t.Fatal("4-new-element set rejected")
	}
	// Overlapping set: 4 elements but only 2 new → rejected.
	alg.ProcessSet(2, []setcover.Element{2, 3, 4, 5})
	if len(alg.sol) != 1 {
		t.Fatal("set with 2 new elements accepted")
	}
}

func TestPatchingCoversRemainder(t *testing.T) {
	// All sets below threshold: everything is patched via backups.
	inst := setcover.MustNewInstance(9, [][]setcover.Element{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8}})
	alg := NewThreshold(9) // threshold 3 > every set size
	cov, err := RunSetArrival(alg, stream.NewSlice(stream.EdgesOf(inst)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cov.Verify(inst); err != nil {
		t.Fatal(err)
	}
	if alg.Patched() != 9 {
		t.Fatalf("patched %d, want all 9", alg.Patched())
	}
}

func TestRunSetArrivalRejectsNonContiguous(t *testing.T) {
	inst := setcover.MustNewInstance(4, [][]setcover.Element{{0, 1}, {2, 3}})
	edges := stream.Arrange(inst, stream.RoundRobin, nil) // interleaved
	_, err := RunSetArrival(NewThreshold(4), stream.NewSlice(edges))
	if err == nil {
		t.Fatal("interleaved stream accepted as set-arrival")
	}
}

func TestNewThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewThreshold(0)
}

func BenchmarkThreshold(b *testing.B) {
	w := workload.Planted(xrand.New(1), 1000, 5000, 20, 0)
	edges := stream.Arrange(w.Inst, stream.SetMajorShuffled, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSetArrival(NewThreshold(1000), stream.NewSlice(edges)); err != nil {
			b.Fatal(err)
		}
	}
}
