package dense

// Word-parallel batch kernels.
//
// The streaming hot paths consume edges in batches (stream.BatchSize = 4096
// edges per dispatch). In the steady state most edges are no-ops: the
// element already has a first-set record and a covering witness, so the
// per-edge body only burns a branch chain deciding to do nothing. These
// kernels turn that decision into data parallelism: a batch is staged into
// per-element / per-set id blocks, and one pass over the blocks packs a
// per-edge predicate into mask words — 64 edges per word. The algorithm then
// iterates only the set bits (the edges that still have an effect), or skips
// a whole word — 64 edges — with a single compare when the mask is zero.
//
// Correctness contract: masks are computed against the state at stage time
// while the per-edge bodies mutate state as they run, so every predicate a
// kernel packs MUST be monotone — once an edge becomes a no-op it stays a
// no-op (coverage and first-set records only grow, solution sets are only
// added). Stale mask bits therefore over-approximate activity, never
// under-approximate it, and each active-edge body re-checks the exact
// condition before acting. This keeps the batched path observably identical
// to the per-edge path: same writes, same coin flips, same event stream.

// KernelBlockEdges is the staging capacity of the batch kernels, matching
// stream.BatchSize so a driver dispatch needs no re-chunking; longer slices
// handed directly to ProcessBatch are split into blocks of this size.
const KernelBlockEdges = 4096

// MaskWords returns the number of mask words covering k edge slots.
func MaskWords(k int) int { return (k + 63) / 64 }

// TailMask returns the valid-bit mask of the last mask word for k edge
// slots: low k%64 bits set, or all bits when k is a multiple of 64 (k > 0).
func TailMask(k int) uint64 {
	if r := uint(k) & 63; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// EqMask32 packs the predicate vals[ids[i]] == want: bit i%64 of
// out[i/64] is set iff it holds. Tail bits past len(ids) are zero. out must
// have at least MaskWords(len(ids)) words.
func EqMask32(vals []int32, ids []int32, want int32, out []uint64) {
	for w := 0; len(ids) > 0; w++ {
		blk := ids
		if len(blk) > 64 {
			blk = blk[:64]
		}
		var m uint64
		for i, id := range blk {
			var bit uint64
			if vals[id] == want {
				bit = 1
			}
			m |= bit << uint(i)
		}
		out[w] = m
		ids = ids[len(blk):]
	}
}

// BoolMask packs the predicate vals[ids[i]]: bit i%64 of out[i/64] is set
// iff vals[ids[i]] is true. Tail bits past len(ids) are zero.
func BoolMask(vals []bool, ids []int32, out []uint64) {
	for w := 0; len(ids) > 0; w++ {
		blk := ids
		if len(blk) > 64 {
			blk = blk[:64]
		}
		var m uint64
		for i, id := range blk {
			var bit uint64
			if vals[id] {
				bit = 1
			}
			m |= bit << uint(i)
		}
		out[w] = m
		ids = ids[len(blk):]
	}
}

// TestMask packs 64 bitset membership tests per word: bit i%64 of out[i/64]
// is set iff b.Test(ids[i]). Tail bits past len(ids) are zero.
func (b Bits) TestMask(ids []int32, out []uint64) {
	words := b.words
	for w := 0; len(ids) > 0; w++ {
		blk := ids
		if len(blk) > 64 {
			blk = blk[:64]
		}
		var m uint64
		for i, id := range blk {
			m |= (words[uint32(id)>>6] >> (uint32(id) & 63) & 1) << uint(i)
		}
		out[w] = m
		ids = ids[len(blk):]
	}
}
