package dense

import (
	"math/rand/v2"
	"testing"
)

func maskBit(out []uint64, i int) bool { return out[i/64]&(1<<(uint(i)%64)) != 0 }

func TestMaskWordsAndTailMask(t *testing.T) {
	cases := []struct {
		k     int
		words int
		tail  uint64
	}{
		{1, 1, 1},
		{63, 1, 1<<63 - 1},
		{64, 1, ^uint64(0)},
		{65, 2, 1},
		{4096, 64, ^uint64(0)},
	}
	for _, tc := range cases {
		if got := MaskWords(tc.k); got != tc.words {
			t.Errorf("MaskWords(%d) = %d, want %d", tc.k, got, tc.words)
		}
		if got := TailMask(tc.k); got != tc.tail {
			t.Errorf("TailMask(%d) = %#x, want %#x", tc.k, got, tc.tail)
		}
	}
}

func TestEqMask32(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n, sentinel = 300, int32(-1)
	vals := make([]int32, n)
	for i := range vals {
		if rng.IntN(3) == 0 {
			vals[i] = sentinel
		} else {
			vals[i] = int32(rng.IntN(100))
		}
	}
	for _, k := range []int{0, 1, 63, 64, 65, 130, 500} {
		ids := make([]int32, k)
		for i := range ids {
			ids[i] = int32(rng.IntN(n))
		}
		out := make([]uint64, MaskWords(k)+1)
		out[len(out)-1] = 0xdead // guard word, must stay untouched
		EqMask32(vals, ids, sentinel, out)
		for i := 0; i < k; i++ {
			want := vals[ids[i]] == sentinel
			if maskBit(out, i) != want {
				t.Fatalf("k=%d bit %d = %v, want %v", k, i, maskBit(out, i), want)
			}
		}
		for i := k; i < 64*MaskWords(k); i++ {
			if maskBit(out, i) {
				t.Fatalf("k=%d tail bit %d set", k, i)
			}
		}
		if out[len(out)-1] != 0xdead {
			t.Fatalf("k=%d guard word clobbered", k)
		}
	}
}

func TestBoolMask(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	const n = 200
	vals := make([]bool, n)
	for i := range vals {
		vals[i] = rng.IntN(2) == 0
	}
	for _, k := range []int{1, 64, 100, 257} {
		ids := make([]int32, k)
		for i := range ids {
			ids[i] = int32(rng.IntN(n))
		}
		out := make([]uint64, MaskWords(k))
		BoolMask(vals, ids, out)
		for i := 0; i < k; i++ {
			if maskBit(out, i) != vals[ids[i]] {
				t.Fatalf("k=%d bit %d = %v, want %v", k, i, maskBit(out, i), vals[ids[i]])
			}
		}
		for i := k; i < 64*len(out); i++ {
			if maskBit(out, i) {
				t.Fatalf("k=%d tail bit %d set", k, i)
			}
		}
	}
}

func TestBitsTestMask(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 500
	b := NewBits(n)
	for i := 0; i < n; i++ {
		if rng.IntN(4) == 0 {
			b.Set(int32(i))
		}
	}
	for _, k := range []int{1, 64, 65, 192, 1000} {
		ids := make([]int32, k)
		for i := range ids {
			ids[i] = int32(rng.IntN(n))
		}
		out := make([]uint64, MaskWords(k))
		b.TestMask(ids, out)
		for i := 0; i < k; i++ {
			if maskBit(out, i) != b.Test(ids[i]) {
				t.Fatalf("k=%d bit %d = %v, want %v", k, i, maskBit(out, i), b.Test(ids[i]))
			}
		}
		for i := k; i < 64*len(out); i++ {
			if maskBit(out, i) {
				t.Fatalf("k=%d tail bit %d set", k, i)
			}
		}
	}
}

// The kernels must be allocation-free: they run once per 4096-edge block on
// the streaming hot path, and the steady-state 0 allocs/edge guards in the
// repository root (TestSteadyStateProcessBatchAllocs) rely on it.
func TestKernelsAllocFree(t *testing.T) {
	const n, k = 1000, KernelBlockEdges
	vals32 := make([]int32, n)
	valsB := make([]bool, n)
	b := NewBits(n)
	ids := make([]int32, k)
	for i := range ids {
		ids[i] = int32(i % n)
	}
	out := make([]uint64, MaskWords(k))
	if avg := testing.AllocsPerRun(10, func() {
		EqMask32(vals32, ids, -1, out)
		BoolMask(valsB, ids, out)
		b.TestMask(ids, out)
	}); avg != 0 {
		t.Fatalf("kernels allocated %.1f times per run, want 0", avg)
	}
}
