// Package dense provides the allocation-free data structures behind the
// streaming hot paths: a flat bitset and generation-stamped counter/set
// tables.
//
// The streaming algorithms (internal/core, internal/kk,
// internal/adversarial) are specified over abstract dictionaries — the paper
// charges one word per live entry — but implementing those dictionaries with
// Go maps costs a hashed lookup per edge and an allocation per epoch
// boundary. The structures here replace them with dense arrays indexed by
// set/element id. Clearing is O(1): each slot carries a generation stamp,
// and bumping the table's generation invalidates every slot at once, so a
// subepoch boundary that used to allocate a fresh map now increments one
// integer. The physical backing arrays are sized by the id space (n or m);
// the *logical* space the paper's bounds count is still charged explicitly
// to space.Meter by the algorithms, entry by entry, exactly as the map
// implementations did.
package dense

import "math/bits"

// Bits is a fixed-capacity bitset over [0, n).
type Bits struct {
	words []uint64
	n     int
}

// NewBits returns a bitset with capacity n, all bits clear.
func NewBits(n int) Bits {
	return Bits{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity n.
func (b Bits) Len() int { return b.n }

// Test reports whether bit i is set.
func (b Bits) Test(i int32) bool {
	return b.words[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0
}

// Set sets bit i.
func (b Bits) Set(i int32) {
	b.words[uint32(i)>>6] |= 1 << (uint32(i) & 63)
}

// Reset clears every bit.
func (b Bits) Reset() {
	clear(b.words)
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (b Bits) ForEach(fn func(i int32)) {
	for wi, w := range b.words {
		for w != 0 {
			fn(int32(wi<<6 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// AppendBools appends the bitset expanded to []bool, for snapshots that
// existing diagnostics (core.Trace.MarkedAtAEnd) expose in boolean form.
func (b Bits) AppendBools(dst []bool) []bool {
	for i := 0; i < b.n; i++ {
		dst = append(dst, b.Test(int32(i)))
	}
	return dst
}

// StampedSet is a membership set over [0, n) with O(1) Clear, backed by a
// generation-stamp array.
type StampedSet struct {
	stamp []uint32
	gen   uint32
	count int
}

// NewStampedSet returns an empty set with capacity n.
func NewStampedSet(n int) StampedSet {
	return StampedSet{stamp: make([]uint32, n), gen: 1}
}

// Clear empties the set in O(1) by advancing the generation. On the (2³²-th)
// generation wrap it falls back to zeroing the stamps so stale stamps can
// never read as live.
func (s *StampedSet) Clear() {
	s.gen++
	if s.gen == 0 {
		clear(s.stamp)
		s.gen = 1
	}
	s.count = 0
}

// Add inserts i, reporting whether it was absent.
func (s *StampedSet) Add(i int32) bool {
	if s.stamp[i] == s.gen {
		return false
	}
	s.stamp[i] = s.gen
	s.count++
	return true
}

// Has reports membership of i.
func (s *StampedSet) Has(i int32) bool { return s.stamp[i] == s.gen }

// Len returns the number of members.
func (s *StampedSet) Len() int { return s.count }

// Swap exchanges the contents of s and t in O(1) — the Q̃ ← Q̃' rotation.
func (s *StampedSet) Swap(t *StampedSet) { *s, *t = *t, *s }

// Counts is a counter table over [0, n) with O(1) Clear and iteration over
// the touched slots only.
type Counts struct {
	counts  []int32
	stamp   []uint32
	gen     uint32
	touched []int32
}

// NewCounts returns a zeroed counter table with capacity n.
func NewCounts(n int) Counts {
	return Counts{
		counts:  make([]int32, n),
		stamp:   make([]uint32, n),
		gen:     1,
		touched: make([]int32, 0, 64),
	}
}

// Clear zeroes every counter in O(1) by advancing the generation.
func (c *Counts) Clear() {
	c.gen++
	if c.gen == 0 {
		clear(c.stamp)
		c.gen = 1
	}
	c.touched = c.touched[:0]
}

// Inc increments slot i, returning the new count and whether this was the
// slot's first touch since Clear.
func (c *Counts) Inc(i int32) (count int32, first bool) {
	if c.stamp[i] != c.gen {
		c.stamp[i] = c.gen
		c.counts[i] = 1
		c.touched = append(c.touched, i)
		return 1, true
	}
	c.counts[i]++
	return c.counts[i], false
}

// Get returns slot i's count (0 if untouched since Clear).
func (c *Counts) Get(i int32) int32 {
	if c.stamp[i] != c.gen {
		return 0
	}
	return c.counts[i]
}

// Len returns the number of touched slots.
func (c *Counts) Len() int { return len(c.touched) }

// ForEach calls fn for every touched slot in touch order.
func (c *Counts) ForEach(fn func(i, count int32)) {
	for _, i := range c.touched {
		fn(i, c.counts[i])
	}
}
