package dense

import "streamcover/internal/snap"

// Save/Load serialize the dense primitives into a snap container. The
// encodings are logical, not physical: a StampedSet writes its member list
// and Counts writes its touched slots in touch order, so the generation
// stamps — an O(1)-Clear implementation trick — never leak into the format,
// and a loaded table is observably identical (including ForEach order) to
// the one that was saved.

// Save writes the bitset: capacity for shape validation, then the raw words.
func (b Bits) Save(w *snap.Writer) {
	w.Int(b.n)
	for _, word := range b.words {
		w.U64Fixed(word)
	}
}

// Load restores a bitset saved with Save into b, which must have the same
// capacity.
func (b Bits) Load(r *snap.Reader) {
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != b.n {
		r.Failf("%w: bitset capacity %d, receiver holds %d", snap.ErrMismatch, n, b.n)
		return
	}
	for i := range b.words {
		b.words[i] = r.U64Fixed()
	}
	// Bits past n must stay clear (Count/ForEach trust them).
	if r.Err() == nil && b.n%64 != 0 && len(b.words) > 0 {
		last := b.words[len(b.words)-1]
		if last>>(uint(b.n)%64) != 0 {
			r.Failf("%w: bitset has bits set past capacity %d", snap.ErrCorrupt, b.n)
		}
	}
}

// Save writes the set: capacity, then the member list in ascending order.
func (s *StampedSet) Save(w *snap.Writer) {
	w.Int(len(s.stamp))
	w.Int(s.count)
	for i, st := range s.stamp {
		if st == s.gen {
			w.I64(int64(i))
		}
	}
}

// Load restores a set saved with Save into s, which must have the same
// capacity. The receiver's previous contents are discarded.
func (s *StampedSet) Load(r *snap.Reader) {
	n := r.Int()
	k := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(s.stamp) {
		r.Failf("%w: set capacity %d, receiver holds %d", snap.ErrMismatch, n, len(s.stamp))
		return
	}
	if k < 0 || k > n {
		r.Failf("%w: set size %d of capacity %d", snap.ErrCorrupt, k, n)
		return
	}
	s.Clear()
	for j := 0; j < k; j++ {
		i := r.I32()
		if r.Err() != nil {
			return
		}
		if i < 0 || int(i) >= n {
			r.Failf("%w: set member %d out of range [0,%d)", snap.ErrCorrupt, i, n)
			return
		}
		s.Add(i)
	}
}

// Save writes the counter table: capacity, then (slot, count) pairs in touch
// order.
func (c *Counts) Save(w *snap.Writer) {
	w.Int(len(c.counts))
	w.Int(len(c.touched))
	for _, i := range c.touched {
		w.I64(int64(i))
		w.I64(int64(c.counts[i]))
	}
}

// Load restores a table saved with Save into c, which must have the same
// capacity. Touch order — and therefore ForEach order — is preserved.
func (c *Counts) Load(r *snap.Reader) {
	n := r.Int()
	k := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(c.counts) {
		r.Failf("%w: counter capacity %d, receiver holds %d", snap.ErrMismatch, n, len(c.counts))
		return
	}
	if k < 0 || k > n {
		r.Failf("%w: %d touched slots of capacity %d", snap.ErrCorrupt, k, n)
		return
	}
	c.Clear()
	for j := 0; j < k; j++ {
		i := r.I32()
		v := r.I32()
		if r.Err() != nil {
			return
		}
		if i < 0 || int(i) >= n {
			r.Failf("%w: counter slot %d out of range [0,%d)", snap.ErrCorrupt, i, n)
			return
		}
		if c.stamp[i] == c.gen {
			r.Failf("%w: counter slot %d repeated", snap.ErrCorrupt, i)
			return
		}
		c.stamp[i] = c.gen
		c.counts[i] = v
		c.touched = append(c.touched, i)
	}
}
