package dense

import (
	"testing"
)

func TestBits(t *testing.T) {
	b := NewBits(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int32{0, 63, 64, 65, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set on fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	var got []int32
	b.ForEach(func(i int32) { got = append(got, i) })
	want := []int32{0, 63, 64, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v (ascending)", got, want)
		}
	}
	bools := b.AppendBools(nil)
	if len(bools) != 130 || !bools[64] || bools[66] {
		t.Fatalf("AppendBools wrong: len=%d", len(bools))
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
}

func TestStampedSet(t *testing.T) {
	s := NewStampedSet(10)
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add(3) twice should report true then false")
	}
	s.Add(7)
	if s.Len() != 2 || !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Fatalf("membership wrong: len=%d", s.Len())
	}
	s.Clear()
	if s.Len() != 0 || s.Has(3) {
		t.Fatal("Clear did not empty the set")
	}
	if !s.Add(3) {
		t.Fatal("Add after Clear should report newly added")
	}

	o := NewStampedSet(10)
	o.Add(9)
	s.Swap(&o)
	if !s.Has(9) || s.Has(3) || !o.Has(3) {
		t.Fatal("Swap did not exchange contents")
	}
}

func TestStampedSetGenerationWrap(t *testing.T) {
	s := NewStampedSet(4)
	s.Add(1)
	s.gen = ^uint32(0) // force the next Clear to wrap
	s.Clear()
	if s.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", s.gen)
	}
	if s.Has(1) {
		t.Fatal("stale stamp survived generation wrap")
	}
}

func TestCounts(t *testing.T) {
	c := NewCounts(8)
	if v, first := c.Inc(5); v != 1 || !first {
		t.Fatalf("first Inc = (%d,%v)", v, first)
	}
	if v, first := c.Inc(5); v != 2 || first {
		t.Fatalf("second Inc = (%d,%v)", v, first)
	}
	c.Inc(2)
	if c.Get(5) != 2 || c.Get(2) != 1 || c.Get(0) != 0 {
		t.Fatal("Get wrong")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	var sum int32
	c.ForEach(func(i, count int32) { sum += count })
	if sum != 3 {
		t.Fatalf("ForEach sum = %d, want 3", sum)
	}
	c.Clear()
	if c.Len() != 0 || c.Get(5) != 0 {
		t.Fatal("Clear did not zero the table")
	}
	if v, first := c.Inc(5); v != 1 || !first {
		t.Fatalf("Inc after Clear = (%d,%v)", v, first)
	}
}

func TestCountsGenerationWrap(t *testing.T) {
	c := NewCounts(4)
	c.Inc(1)
	c.gen = ^uint32(0)
	c.Clear()
	if c.Get(1) != 0 {
		t.Fatal("stale count survived generation wrap")
	}
}
