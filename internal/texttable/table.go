// Package texttable renders aligned plain-text tables for the benchmark
// harness output — the rows of the paper's Table 1 and the experiment
// reports in EXPERIMENTS.md.
package texttable

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprintf("%v", c)
	}
	t.AddRow(s...)
}

// NumRows returns how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table. It always returns a nil error unless the
// underlying writer fails.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	var out strings.Builder
	if t.title != "" {
		out.WriteString(t.title + "\n")
	}
	out.WriteString(line(t.headers) + "\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	out.WriteString(line(sep) + "\n")
	for _, row := range t.rows {
		out.WriteString(line(row) + "\n")
	}
	n, err := io.WriteString(w, out.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table (used
// when regenerating EXPERIMENTS.md sections).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
