package texttable

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("Demo", "algo", "space", "ratio")
	tb.AddRow("kk", "12345", "1.5")
	tb.AddRow("alg1-random", "99", "20.25")
	out := tb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title line %q", lines[0])
	}
	// Column 2 ("space") must start at the same offset in every body line.
	hIdx := strings.Index(lines[1], "space")
	r1Idx := strings.Index(lines[3], "12345")
	r2Idx := strings.Index(lines[4], "99")
	if hIdx != r1Idx || hIdx != r2Idx {
		t.Fatalf("columns misaligned (%d, %d, %d):\n%s", hIdx, r1Idx, r2Idx, out)
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("1", "2")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Fatalf("leading blank line:\n%q", out)
	}
	if !strings.HasPrefix(out, "a") {
		t.Fatalf("missing header:\n%q", out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")              // short row padded
	tb.AddRow("x", "y", "dropped") // long row truncated
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows=%d", tb.NumRows())
	}
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("extra cell not dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("", "n", "ratio")
	tb.AddRowf(400, 1.25)
	if !strings.Contains(tb.String(), "400") || !strings.Contains(tb.String(), "1.25") {
		t.Fatalf("formatted row missing:\n%s", tb.String())
	}
}

func TestNoTrailingSpaces(t *testing.T) {
	tb := New("T", "col", "c")
	tb.AddRow("longvalue", "x")
	tb.AddRow("s", "x")
	for _, line := range strings.Split(tb.String(), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Fatalf("trailing space in %q", line)
		}
	}
}

func TestMultiByteCellsAlign(t *testing.T) {
	tb := New("", "value", "note")
	tb.AddRow("90±6", "x")
	tb.AddRow("1900±55", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// The "note" column must start at the same rune offset on every line.
	col := -1
	for _, line := range lines[2:] {
		runes := []rune(line)
		idx := -1
		for i, r := range runes {
			if r == 'x' || r == 'y' {
				idx = i
				break
			}
		}
		if col == -1 {
			col = idx
		} else if idx != col {
			t.Fatalf("multi-byte cells misaligned (%d vs %d):\n%s", idx, col, tb.String())
		}
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("Title", "a", "b")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"**Title**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
