package stream

import (
	"bytes"
	"testing"

	"streamcover/internal/setcover"
)

// FuzzDecode checks that Decode never panics and never returns structurally
// invalid data on arbitrary byte inputs, and that anything it accepts
// re-encodes to a file it accepts again.
func FuzzDecode(f *testing.F) {
	// Seed with a valid file and a few mutations.
	inst := setcover.MustNewInstance(5, [][]setcover.Element{{0, 1, 2}, {3, 4}})
	edges := EdgesOf(inst)
	var buf bytes.Buffer
	if err := Encode(&buf, Header{N: 5, M: 2, E: len(edges)}, edges); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("SCSTRM1\n"))
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, decoded, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: structure must be internally consistent.
		if hdr.N <= 0 || hdr.M <= 0 || hdr.E != len(decoded) {
			t.Fatalf("accepted inconsistent header %+v with %d edges", hdr, len(decoded))
		}
		for _, e := range decoded {
			if e.Set < 0 || int(e.Set) >= hdr.M || e.Elem < 0 || int(e.Elem) >= hdr.N {
				t.Fatalf("accepted out-of-range edge %v", e)
			}
		}
		// Round trip: re-encoding must produce a decodable file with the
		// same content.
		var out bytes.Buffer
		if err := Encode(&out, hdr, decoded); err != nil {
			t.Fatalf("re-encode of accepted data failed: %v", err)
		}
		hdr2, decoded2, err := Decode(&out)
		if err != nil || hdr2 != hdr || len(decoded2) != len(decoded) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzValidate checks that Validate never panics on arbitrary edge lists.
func FuzzValidate(f *testing.F) {
	f.Add(int16(3), int16(2), []byte{0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, nRaw, mRaw int16, raw []byte) {
		n := int(nRaw%64) + 1
		m := int(mRaw%64) + 1
		sets := make([][]setcover.Element, m)
		inst, err := setcover.NewInstance(n, sets)
		if err != nil {
			return
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				Set:  setcover.SetID(int(raw[i]) % (m + 2)),
				Elem: setcover.Element(int(raw[i+1]) % (n + 2)),
			})
		}
		_ = Validate(inst, edges) // must not panic
	})
}
