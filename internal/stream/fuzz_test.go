package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/setcover"
)

// FuzzDecode checks that Decode never panics and never returns structurally
// invalid data on arbitrary byte inputs, and that anything it accepts
// re-encodes to a file it accepts again.
func FuzzDecode(f *testing.F) {
	// Seed with a valid file and a few mutations.
	inst := setcover.MustNewInstance(5, [][]setcover.Element{{0, 1, 2}, {3, 4}})
	edges := EdgesOf(inst)
	var buf bytes.Buffer
	if err := Encode(&buf, Header{N: 5, M: 2, E: len(edges)}, edges); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("SCSTRM1\n"))
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, decoded, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: structure must be internally consistent.
		if hdr.N <= 0 || hdr.M <= 0 || hdr.E != len(decoded) {
			t.Fatalf("accepted inconsistent header %+v with %d edges", hdr, len(decoded))
		}
		for _, e := range decoded {
			if e.Set < 0 || int(e.Set) >= hdr.M || e.Elem < 0 || int(e.Elem) >= hdr.N {
				t.Fatalf("accepted out-of-range edge %v", e)
			}
		}
		// Round trip: re-encoding must produce a decodable file with the
		// same content.
		var out bytes.Buffer
		if err := Encode(&out, hdr, decoded); err != nil {
			t.Fatalf("re-encode of accepted data failed: %v", err)
		}
		hdr2, decoded2, err := Decode(&out)
		if err != nil || hdr2 != hdr || len(decoded2) != len(decoded) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzPrefetchedFile pushes arbitrary bytes through the full on-disk
// pipeline — lazily-verified File, background Prefetcher — and checks it
// against a direct in-memory Decode of the same bytes: when Decode accepts,
// the prefetched replay must yield the identical edge sequence with no
// error; when Decode rejects, the pipeline must either fail at open or
// surface a sticky error (never panic, hang, or silently truncate a pass it
// claims completed).
func FuzzPrefetchedFile(f *testing.F) {
	inst := setcover.MustNewInstance(5, [][]setcover.Element{{0, 1, 2}, {3, 4}})
	edges := EdgesOf(inst)
	var buf bytes.Buffer
	if err := Encode(&buf, Header{N: 5, M: 2, E: len(edges)}, edges); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("SCSTRM1\n"))
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)
	trailing := append(append([]byte(nil), valid...), 0)
	f.Add(trailing)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, want, decodeErr := Decode(bytes.NewReader(data))

		path := filepath.Join(t.TempDir(), "fuzz.scstrm")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFile(path)
		if err != nil {
			if decodeErr == nil {
				t.Fatalf("open rejected a Decode-accepted file: %v", err)
			}
			return
		}
		defer fs.Close()
		pf := NewPrefetcherSized(fs, 2, 7) // tiny batches exercise ring wrap
		defer pf.Close()

		var got []Edge
		for {
			b := pf.NextBatch(5)
			if len(b) == 0 {
				break
			}
			got = append(got, b...)
		}
		passErr := pf.Err()

		if decodeErr == nil {
			if passErr != nil {
				t.Fatalf("prefetched pass failed on a Decode-accepted file: %v", passErr)
			}
			if len(got) != len(want) {
				t.Fatalf("prefetched %d edges, Decode saw %d (header %+v)", len(got), len(want), hdr)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("edge %d: prefetched %v, Decode %v", i, got[i], want[i])
				}
			}
			return
		}
		// Decode rejected the bytes but the file opened: the lazy pass must
		// report a sticky corruption-family error by its end.
		if passErr == nil {
			t.Fatalf("Decode rejected (%v) but the prefetched pass completed cleanly with %d edges", decodeErr, len(got))
		}
		if !errors.Is(passErr, ErrCorrupt) && !errors.Is(passErr, ErrShortStream) {
			t.Fatalf("pass error %v is outside the corruption family", passErr)
		}
	})
}

// FuzzValidate checks that Validate never panics on arbitrary edge lists.
func FuzzValidate(f *testing.F) {
	f.Add(int16(3), int16(2), []byte{0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, nRaw, mRaw int16, raw []byte) {
		// Mask rather than mod: % keeps the sign on negative int16 inputs,
		// which would make the slice length below negative.
		n := int(nRaw&63) + 1
		m := int(mRaw&63) + 1
		sets := make([][]setcover.Element, m)
		inst, err := setcover.NewInstance(n, sets)
		if err != nil {
			return
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// The -1 shift puts negative IDs in the fuzzed domain alongside
			// in-range and past-the-end ones.
			edges = append(edges, Edge{
				Set:  setcover.SetID(int(raw[i])%(m+2) - 1),
				Elem: setcover.Element(int(raw[i+1])%(n+2) - 1),
			})
		}
		_ = Validate(inst, edges) // must not panic
	})
}
