package stream

import (
	"streamcover/internal/setcover"
	"streamcover/internal/space"
)

// CoverageReporter is implemented by algorithms that can report, mid-stream,
// how many elements they currently consider covered (i.e. hold a witness
// for). The instrumented runner uses it to record coverage curves — how
// quickly each regime's algorithm accumulates its cover along the stream.
type CoverageReporter interface {
	CoveredCount() int
}

// TrajectoryPoint is one checkpoint of an instrumented run.
type TrajectoryPoint struct {
	// Pos is the number of edges processed so far (checkpoint taken after
	// processing edge Pos-1).
	Pos int
	// StateWords is the instantaneous working-state size, -1 when the
	// algorithm does not expose it.
	StateWords int64
	// Covered is the algorithm's current witnessed-element count, -1 when
	// the algorithm does not expose it.
	Covered int
}

// RunInstrumented drives alg over s like Run, additionally recording a
// trajectory checkpoint every `every` edges (and one final checkpoint at
// stream end). every < 1 is treated as 1.
func RunInstrumented(alg Algorithm, s Stream, every int) (Result, []TrajectoryPoint) {
	if every < 1 {
		every = 1
	}
	s.Reset()
	var traj []TrajectoryPoint
	sample := func(pos int) {
		p := TrajectoryPoint{Pos: pos, StateWords: -1, Covered: -1}
		if cr, ok := alg.(space.CurrentReporter); ok {
			p.StateWords = cr.Current().State
		}
		if cc, ok := alg.(CoverageReporter); ok {
			p.Covered = cc.CoveredCount()
		}
		traj = append(traj, p)
	}

	n := 0
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		alg.Process(e)
		n++
		if n%every == 0 {
			sample(n)
		}
	}
	if len(traj) == 0 || traj[len(traj)-1].Pos != n {
		sample(n)
	}
	res := Result{Cover: alg.Finish(), Edges: n}
	if rep, ok := alg.(space.Reporter); ok {
		res.Space = rep.Space()
	}
	return res, traj
}

// CoveredOf counts the witnessed elements of a certificate — the post-hoc
// equivalent of CoveredCount for algorithms that do not implement it.
func CoveredOf(cert []setcover.SetID) int {
	c := 0
	for _, w := range cert {
		if w != setcover.NoSet {
			c++
		}
	}
	return c
}
