package stream

import (
	"time"

	"streamcover/internal/obs"
	"streamcover/internal/setcover"
	"streamcover/internal/space"
)

// CoverageReporter is implemented by algorithms that can report, mid-stream,
// how many elements they currently consider covered (i.e. hold a witness
// for). The instrumented runner uses it to record coverage curves — how
// quickly each regime's algorithm accumulates its cover along the stream.
type CoverageReporter interface {
	CoveredCount() int
}

// TrajectoryPoint is one checkpoint of an instrumented run.
type TrajectoryPoint struct {
	// Pos is the number of edges processed so far (checkpoint taken after
	// processing edge Pos-1).
	Pos int
	// StateWords is the instantaneous working-state size, -1 when the
	// algorithm does not expose it.
	StateWords int64
	// Covered is the algorithm's current witnessed-element count, -1 when
	// the algorithm does not expose it.
	Covered int
}

// RunInstrumented drives alg over s like Run, additionally recording a
// trajectory checkpoint every `every` edges (and one final checkpoint at
// stream end). every < 1 is treated as 1.
//
// The drive is batched exactly like Run: the driver clips each batch at the
// next checkpoint boundary, so every checkpoint observes the algorithm with
// precisely Pos edges applied — identical to a per-edge drive, including for
// BatchProcessor algorithms. Checkpoints are also stamped on the global
// observability hub (space-meter words, covered count) when one is
// installed.
func RunInstrumented(alg Algorithm, s Stream, every int) (Result, []TrajectoryPoint) {
	if every < 1 {
		every = 1
	}
	ro := obs.RunObsFor(obs.AlgoOf(alg))
	var start time.Time
	if ro != nil {
		start = time.Now()
	}

	var traj []TrajectoryPoint
	sample := func(pos int) error {
		p := TrajectoryPoint{Pos: pos, StateWords: -1, Covered: -1}
		if cp, ok := alg.(space.CheckpointReporter); ok {
			cur, peak := cp.Checkpoint()
			p.StateWords = cur.State
			ro.StateWords(0, cur.State, peak.State)
			ro.StateWords(1, cur.Aux, peak.Aux)
		} else if cr, ok := alg.(space.CurrentReporter); ok {
			p.StateWords = cr.Current().State
		}
		if cc, ok := alg.(CoverageReporter); ok {
			p.Covered = cc.CoveredCount()
			ro.Covered(p.Covered)
		}
		traj = append(traj, p)
		return nil
	}

	n, _ := driveStream(alg, s, ro, 0, every, 0, sample) // sample never errors
	if len(traj) == 0 || traj[len(traj)-1].Pos != n {
		sample(n)
	}
	res := Result{Cover: alg.Finish(), Edges: n}
	if rep, ok := alg.(space.Reporter); ok {
		res.Space = rep.Space()
	}
	if ro != nil {
		ro.RunDone(n, time.Since(start).Nanoseconds())
	}
	return res, traj
}

// CoveredOf counts the witnessed elements of a certificate — the post-hoc
// equivalent of CoveredCount for algorithms that do not implement it.
func CoveredOf(cert []setcover.SetID) int {
	c := 0
	for _, w := range cert {
		if w != setcover.NoSet {
			c++
		}
	}
	return c
}
