package stream

import (
	"testing"

	"streamcover/internal/setcover"
)

// coverageAlg implements both reporters for the instrumentation tests.
type coverageAlg struct {
	*firstSetAlg
	count int
}

func (a *coverageAlg) Process(e Edge) {
	if a.cert[e.Elem] == setcover.NoSet {
		a.count++
	}
	a.firstSetAlg.Process(e)
}

func (a *coverageAlg) CoveredCount() int { return a.count }

func TestRunInstrumentedCheckpoints(t *testing.T) {
	inst := fixture(t)
	edges := EdgesOf(inst)
	alg := &coverageAlg{firstSetAlg: newFirstSetAlg(inst.UniverseSize())}
	res, traj := RunInstrumented(alg, NewSlice(edges), 3)

	if res.Edges != len(edges) {
		t.Fatalf("Edges=%d", res.Edges)
	}
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
	// Checkpoints at 3, 6, ... plus the final one.
	want := len(edges)/3 + boolToInt(len(edges)%3 != 0)
	if len(traj) != want {
		t.Fatalf("%d checkpoints, want %d (N=%d)", len(traj), want, len(edges))
	}
	if traj[len(traj)-1].Pos != len(edges) {
		t.Fatalf("last checkpoint at %d, want stream end %d", traj[len(traj)-1].Pos, len(edges))
	}
	// Coverage and positions are nondecreasing; coverage is reported.
	for i := 1; i < len(traj); i++ {
		if traj[i].Pos <= traj[i-1].Pos {
			t.Fatal("positions not increasing")
		}
		if traj[i].Covered < traj[i-1].Covered {
			t.Fatal("coverage decreased")
		}
	}
	if traj[len(traj)-1].Covered != inst.UniverseSize() {
		t.Fatalf("final coverage %d, want n", traj[len(traj)-1].Covered)
	}
	if traj[0].StateWords < 0 {
		t.Fatal("state not reported despite space.Tracked")
	}
}

// batchedCoverageAlg is coverageAlg with a batch hot path, recording every
// batch length it is handed so tests can assert checkpoint clipping.
type batchedCoverageAlg struct {
	coverageAlg
	batchLens []int
}

func (a *batchedCoverageAlg) ProcessBatch(edges []Edge) {
	a.batchLens = append(a.batchLens, len(edges))
	for _, e := range edges {
		a.coverageAlg.Process(e)
	}
}

func TestRunInstrumentedBatchedCheckpoints(t *testing.T) {
	inst := fixture(t)
	edges := EdgesOf(inst)
	const every = 7 // deliberately not a divisor of BatchSize

	// Reference: per-edge instrumented run.
	perEdge := &coverageAlg{firstSetAlg: newFirstSetAlg(inst.UniverseSize())}
	_, want := RunInstrumented(perEdge, NewSlice(edges), every)

	// Batched run over a Batcher stream: the driver must clip batches at
	// checkpoint boundaries so every checkpoint observes exactly Pos edges.
	batched := &batchedCoverageAlg{coverageAlg: coverageAlg{firstSetAlg: newFirstSetAlg(inst.UniverseSize())}}
	res, got := RunInstrumented(batched, NewSlice(edges), every)

	if res.Edges != len(edges) {
		t.Fatalf("Edges=%d, want %d", res.Edges, len(edges))
	}
	if len(batched.batchLens) == 0 {
		t.Fatal("ProcessBatch was never used")
	}
	// Each batch ends on a checkpoint boundary or at stream end.
	pos := 0
	for i, k := range batched.batchLens {
		pos += k
		if pos%every != 0 && pos != len(edges) {
			t.Fatalf("batch %d ends at pos %d: not a checkpoint multiple of %d nor stream end", i, pos, every)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d checkpoints batched vs %d per-edge", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("checkpoint %d differs: batched %+v, per-edge %+v", i, got[i], want[i])
		}
	}
}

func TestRunInstrumentedWithoutReporters(t *testing.T) {
	inst := fixture(t)
	res, traj := RunInstrumented(&nonReportingAlg{n: inst.UniverseSize()}, NewSlice(EdgesOf(inst)), 0)
	if res.Edges != inst.NumEdges() {
		t.Fatal("stream not consumed")
	}
	for _, p := range traj {
		if p.StateWords != -1 || p.Covered != -1 {
			t.Fatalf("missing reporters should yield -1, got %+v", p)
		}
	}
}

func TestCoveredOf(t *testing.T) {
	cert := []setcover.SetID{0, setcover.NoSet, 3, setcover.NoSet}
	if got := CoveredOf(cert); got != 2 {
		t.Fatalf("CoveredOf=%d", got)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
