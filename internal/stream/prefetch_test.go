package stream

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

// randomEdges builds a deterministic pseudo-random edge list over n elements
// and m sets. It is NOT a valid set-cover stream (duplicates allowed) — fine
// for transport-equivalence tests, which only care about byte ordering.
func randomEdges(rng *xrand.Rand, n, m, count int) []Edge {
	edges := make([]Edge, count)
	for i := range edges {
		edges[i] = Edge{
			Set:  setcover.SetID(rng.IntN(m)),
			Elem: setcover.Element(rng.IntN(n)),
		}
	}
	return edges
}

// prefetchBackends yields each stream backend under test for the given edge
// list: an in-memory Slice and an on-disk File (lazily verified, so the
// prefetch path also exercises CRC-on-replay).
func prefetchBackends(t *testing.T, edges []Edge, n, m int) map[string]func() Stream {
	t.Helper()
	file := writeEdgesFile(t, edges, n, m)
	return map[string]func() Stream{
		"slice": func() Stream { return NewSlice(edges) },
		"file": func() Stream {
			fs, err := OpenFile(file)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fs.Close() })
			return fs
		},
	}
}

func writeEdgesFile(t *testing.T, edges []Edge, n, m int) string {
	t.Helper()
	maxSet, maxElem := 0, 0
	for _, e := range edges {
		if int(e.Set) > maxSet {
			maxSet = int(e.Set)
		}
		if int(e.Elem) > maxElem {
			maxElem = int(e.Elem)
		}
	}
	if n <= maxElem {
		n = maxElem + 1
	}
	if m <= maxSet {
		m = maxSet + 1
	}
	var buf bytes.Buffer
	if err := Encode(&buf, Header{N: n, M: m, E: len(edges)}, edges); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pf.scs")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPrefetcherMatchesDirectRandomized(t *testing.T) {
	rng := xrand.New(0x5eed)
	for trial := 0; trial < 12; trial++ {
		n, m := 1+rng.IntN(40), 1+rng.IntN(30)
		count := rng.IntN(3000)
		edges := randomEdges(rng, n, m, count)
		depth := 2 + rng.IntN(3)
		batchLen := 1 + rng.IntN(700)
		for name, mk := range prefetchBackends(t, edges, n, m) {
			src := mk()
			p := NewPrefetcherSized(src, depth, batchLen)

			// Pass 1: mixed Next/NextBatch consumption with random request
			// sizes must reproduce the edge sequence exactly.
			var got []Edge
			for {
				if rng.Coin(0.3) {
					e, ok := p.Next()
					if !ok {
						break
					}
					got = append(got, e)
				} else {
					b := p.NextBatch(1 + rng.IntN(2*batchLen))
					if len(b) == 0 {
						break
					}
					got = append(got, b...)
				}
			}
			if len(got) != len(edges) {
				t.Fatalf("trial %d %s: got %d edges want %d", trial, name, len(got), len(edges))
			}
			for i := range got {
				if got[i] != edges[i] {
					t.Fatalf("trial %d %s: edge %d = %v want %v", trial, name, i, got[i], edges[i])
				}
			}
			if err := p.Err(); err != nil {
				t.Fatalf("trial %d %s: Err=%v", trial, name, err)
			}

			// Pass 2 (after Reset): drive an order-sensitive algorithm and
			// compare its rolling-hash cover against a direct run.
			p.Reset()
			want := RunEdges(newHashAlg(n), edges)
			gotRes := Run(newHashAlg(n), p)
			if gotRes.Err != nil {
				t.Fatalf("trial %d %s: run err %v", trial, name, gotRes.Err)
			}
			if gotRes.Cover.Certificate[0] != want.Cover.Certificate[0] || gotRes.Edges != want.Edges {
				t.Fatalf("trial %d %s: prefetched run diverged", trial, name)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPrefetcherResetMidStream(t *testing.T) {
	rng := xrand.New(7)
	edges := randomEdges(rng, 20, 20, 5000)
	for name, mk := range prefetchBackends(t, edges, 20, 20) {
		p := NewPrefetcherSized(mk(), 3, 256)
		// Abandon passes at assorted depths — including 0 (immediate Reset),
		// mid-buffer, and exactly the full length — then verify a clean pass.
		for _, stop := range []int{0, 1, 100, 256, 257, 2048, len(edges)} {
			for i := 0; i < stop; i++ {
				if _, ok := p.Next(); !ok {
					t.Fatalf("%s: stream ended at %d mid-prefix", name, i)
				}
			}
			p.Reset()
		}
		got := 0
		for {
			b := p.NextBatch(BatchSize)
			if len(b) == 0 {
				break
			}
			for _, e := range b {
				if e != edges[got] {
					t.Fatalf("%s: edge %d mismatch after resets", name, got)
				}
				got++
			}
		}
		if got != len(edges) || p.Err() != nil {
			t.Fatalf("%s: replay after resets got %d edges, err=%v", name, got, p.Err())
		}
		p.Close()
	}
}

func TestPrefetcherEarlyClose(t *testing.T) {
	edges := randomEdges(xrand.New(3), 10, 10, 4000)
	for name, mk := range prefetchBackends(t, edges, 10, 10) {
		p := NewPrefetcher(mk())
		p.Next() // consume a little, leaving the worker mid-pass
		if err := p.Close(); err != nil {
			t.Fatalf("%s: close mid-pass: %v", name, err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("%s: double close: %v", name, err)
		}
	}
}

func TestPrefetcherPropagatesCorruptFile(t *testing.T) {
	path, hdr, _ := writeStreamFile(t, t.TempDir(), func(b []byte) []byte {
		b[len(b)/2] ^= 0x10
		return b
	})
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p := NewPrefetcher(fs)
	defer p.Close()

	res := Run(newHashAlg(hdr.N), p)
	if !errors.Is(res.Err, ErrCorrupt) {
		t.Fatalf("Result.Err=%v want ErrCorrupt", res.Err)
	}
	if !errors.Is(p.Err(), ErrCorrupt) {
		t.Fatalf("sticky Err=%v want ErrCorrupt", p.Err())
	}
	// Reset clears the sticky error and the next pass re-detects it.
	p.Reset()
	if p.Err() != nil {
		t.Fatalf("Err after Reset = %v", p.Err())
	}
	for {
		if len(p.NextBatch(BatchSize)) == 0 {
			break
		}
	}
	if !errors.Is(p.Err(), ErrCorrupt) {
		t.Fatalf("second pass Err=%v want ErrCorrupt", p.Err())
	}
}

func TestPrefetcherSkipTo(t *testing.T) {
	rng := xrand.New(11)
	edges := randomEdges(rng, 15, 15, 3000)
	for name, mk := range prefetchBackends(t, edges, 15, 15) {
		p := NewPrefetcherSized(mk(), 2, 128)
		for _, skip := range []int{0, 1, 127, 128, 1000, len(edges)} {
			p.Reset()
			if err := p.SkipTo(skip); err != nil {
				t.Fatalf("%s: SkipTo(%d): %v", name, skip, err)
			}
			if skip < len(edges) {
				e, ok := p.Next()
				if !ok || e != edges[skip] {
					t.Fatalf("%s: after SkipTo(%d) got %v ok=%v want %v", name, skip, e, ok, edges[skip])
				}
			}
		}
		p.Reset()
		if err := p.SkipTo(len(edges) + 1); !errors.Is(err, ErrShortStream) {
			t.Fatalf("%s: SkipTo past end err=%v want ErrShortStream", name, err)
		}
		p.Close()
	}
}

func TestPrefetcherComposesWithCheckpointResume(t *testing.T) {
	// Kill-and-resume through the prefetcher must match an uninterrupted
	// direct run edge-for-edge: DrivePartial's batch clipping and the
	// Skipper fast-forward both cross the prefetch boundary.
	const n, m = 25, 25
	edges := randomEdges(xrand.New(99), n, m, 2500)
	path := writeEdgesFile(t, edges, n, m)
	want := RunEdges(newHashAlg(n), edges)

	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p := NewPrefetcherSized(fs, 3, 64)
	defer p.Close()

	var lastPos int
	var lastCkpt []byte
	pol := CheckpointPolicy{
		Every: 37,
		Sink: func(pos int, ck []byte) error {
			lastPos = pos
			lastCkpt = append(lastCkpt[:0], ck...)
			return nil
		},
	}
	limit := len(edges)/2 + 5
	if _, err := DrivePartial(newHashAlg(n), p, pol, limit); err != nil {
		t.Fatal(err)
	}
	if lastCkpt == nil {
		t.Fatal("no checkpoint taken")
	}

	resumed := newHashAlg(n)
	pos, err := ReadCheckpoint(bytes.NewReader(lastCkpt), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if pos != lastPos {
		t.Fatalf("checkpoint pos %d want %d", pos, lastPos)
	}
	res, err := RunCheckpointedFrom(resumed, p, pol, pos)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Certificate[0] != want.Cover.Certificate[0] {
		t.Fatal("resumed prefetched run diverged from direct run")
	}
}

// benchEdgesFile writes count pseudo-random edges to a stream file under the
// benchmark's temp dir.
func benchEdgesFile(b *testing.B, n, m, count int) string {
	b.Helper()
	edges := randomEdges(xrand.New(3), n, m, count)
	var buf bytes.Buffer
	if err := Encode(&buf, Header{N: n, M: m, E: len(edges)}, edges); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.scstrm")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		b.Fatal(err)
	}
	return path
}

// drainBatches replays the stream once through NextBatch, simulating a
// consumer that spends work ns-ish per edge (a small arithmetic loop), and
// returns a checksum so the work is not optimized away.
func drainBatches(b *testing.B, s Stream, work int) uint64 {
	var sum uint64
	batcher := s.(Batcher)
	s.Reset()
	for {
		batch := batcher.NextBatch(BatchSize)
		if len(batch) == 0 {
			break
		}
		for _, e := range batch {
			sum += uint64(e.Set)
			for k := 0; k < work; k++ {
				sum = sum*0x9e3779b97f4a7c15 + uint64(e.Elem)
			}
		}
	}
	if err := StreamErr(s); err != nil {
		b.Fatal(err)
	}
	return sum
}

// BenchmarkPrefetch compares one full file-replay pass consumed directly
// against the same pass through the background Prefetcher, at two consumer
// costs: work=0 (decode-bound; prefetch can only add hand-off overhead) and
// work=8 (compute-bound; decode should hide behind the consumer).
func BenchmarkPrefetch(b *testing.B) {
	const n, m, count = 1000, 20000, 500000
	path := benchEdgesFile(b, n, m, count)
	for _, work := range []int{0, 8} {
		b.Run(fmt.Sprintf("direct/work=%d", work), func(b *testing.B) {
			fs, err := OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainBatches(b, fs, work)
			}
			b.ReportMetric(float64(count), "edges/op")
		})
		b.Run(fmt.Sprintf("prefetched/work=%d", work), func(b *testing.B) {
			fs, err := OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close()
			pf := NewPrefetcher(fs)
			defer pf.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainBatches(b, pf, work)
			}
			b.ReportMetric(float64(count), "edges/op")
		})
	}
}
