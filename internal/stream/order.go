package stream

import (
	"fmt"
	"slices"
	"sort"

	"streamcover/internal/setcover"
	"streamcover/internal/xrand"
)

// Order identifies an arrival order for the edges of an instance.
//
// The paper distinguishes adversarially ordered streams (Theorems 1, 2, 4)
// from uniformly random ones (Theorem 3). An actual worst-case adversary is
// algorithm-specific; the experiments instead use a family of structured
// orders that exercise the behaviours the analysis worries about — sets
// spread across the whole stream (RoundRobin), sets arriving contiguously
// (SetMajor, the set-arrival special case), elements arriving grouped
// (ElementMajor), and high-degree elements arriving last (HighDegreeLast,
// which starves degree-based signals for as long as possible).
type Order int

const (
	// SetMajor emits each set's edges contiguously, sets in id order. This
	// makes an edge-arrival stream equivalent to a set-arrival one.
	SetMajor Order = iota
	// SetMajorShuffled emits each set's edges contiguously, sets in random
	// order — the standard set-arrival model.
	SetMajorShuffled
	// ElementMajor groups edges by element, elements in id order.
	ElementMajor
	// RoundRobin deals one edge per set in rotation, maximally spreading
	// every set across the stream — the hard case motivating uncovered-degree
	// counters (paper §1.2).
	RoundRobin
	// HighDegreeLast emits edges of low-degree elements first and edges of
	// the highest-degree elements at the very end, starving the degree
	// signal Algorithm 1's epoch 0 relies on.
	HighDegreeLast
	// Random is a uniformly random permutation — the random-order model of
	// Theorem 3.
	Random
)

// Orders lists every defined order, for sweep experiments.
func Orders() []Order {
	return []Order{SetMajor, SetMajorShuffled, ElementMajor, RoundRobin, HighDegreeLast, Random}
}

// AdversarialOrders lists the structured (non-random) orders.
func AdversarialOrders() []Order {
	return []Order{SetMajor, SetMajorShuffled, ElementMajor, RoundRobin, HighDegreeLast}
}

func (o Order) String() string {
	switch o {
	case SetMajor:
		return "set-major"
	case SetMajorShuffled:
		return "set-major-shuffled"
	case ElementMajor:
		return "element-major"
	case RoundRobin:
		return "round-robin"
	case HighDegreeLast:
		return "high-degree-last"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// ParseOrder maps an order name (as produced by String) back to its Order.
func ParseOrder(s string) (Order, error) {
	for _, o := range Orders() {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("stream: unknown order %q", s)
}

// Arrange materialises the edges of inst in the given order. Orders with a
// random component (SetMajorShuffled, Random) draw from rng; the others
// ignore it (rng may be nil for deterministic orders).
func Arrange(inst *setcover.Instance, o Order, rng *xrand.Rand) []Edge {
	switch o {
	case SetMajor:
		return EdgesOf(inst)

	case SetMajorShuffled:
		perm := rng.Perm(inst.NumSets())
		edges := make([]Edge, 0, inst.NumEdges())
		for _, s := range perm {
			for _, u := range inst.Set(setcover.SetID(s)) {
				edges = append(edges, Edge{Set: setcover.SetID(s), Elem: u})
			}
		}
		return edges

	case ElementMajor:
		edges := EdgesOf(inst)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Elem != edges[j].Elem {
				return edges[i].Elem < edges[j].Elem
			}
			return edges[i].Set < edges[j].Set
		})
		return edges

	case RoundRobin:
		// Deal one edge per still-unexhausted set per round, sets in id
		// order. The worklist holds the active sets and is compacted in
		// place as sets run dry, so total work is Θ(N + m) rather than
		// rounds·m — the naive rescan is quadratic when one large set
		// outlives many small ones.
		m := inst.NumSets()
		pos := make([]int, m)
		active := make([]setcover.SetID, 0, m)
		for s := 0; s < m; s++ {
			if len(inst.Set(setcover.SetID(s))) > 0 {
				active = append(active, setcover.SetID(s))
			}
		}
		edges := make([]Edge, 0, inst.NumEdges())
		for len(active) > 0 {
			live := active[:0]
			for _, s := range active {
				set := inst.Set(s)
				edges = append(edges, Edge{Set: s, Elem: set[pos[s]]})
				pos[s]++
				if pos[s] < len(set) {
					live = append(live, s)
				}
			}
			active = live
		}
		return edges

	case HighDegreeLast:
		deg := inst.ElementDegrees()
		edges := EdgesOf(inst)
		sort.SliceStable(edges, func(i, j int) bool {
			di, dj := deg[edges[i].Elem], deg[edges[j].Elem]
			if di != dj {
				return di < dj
			}
			if edges[i].Elem != edges[j].Elem {
				return edges[i].Elem < edges[j].Elem
			}
			return edges[i].Set < edges[j].Set
		})
		return edges

	case Random:
		edges := EdgesOf(inst)
		rng.Shuffle(len(edges), func(i, j int) {
			edges[i], edges[j] = edges[j], edges[i]
		})
		return edges

	default:
		panic(fmt.Sprintf("stream: unknown order %d", int(o)))
	}
}

// Shuffled returns a fresh uniformly random permutation of edges without
// modifying the input — used when the same instance is streamed repeatedly
// with independent random orders.
func Shuffled(edges []Edge, rng *xrand.Rand) []Edge {
	out := slices.Clone(edges)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// WindowShuffled interpolates between an adversarial base order and the
// uniform random order: the input sequence is cut into consecutive windows
// of the given size and each window is shuffled internally, so the
// adversary keeps control at granularity `window` while local order is
// random. window ≤ 1 returns the base order unchanged; window ≥ len(edges)
// is a full uniform shuffle. The E-ROBUST experiment sweeps the window to
// chart how much local randomness Algorithm 1's signal detection needs.
func WindowShuffled(edges []Edge, window int, rng *xrand.Rand) []Edge {
	out := slices.Clone(edges)
	if window <= 1 {
		return out
	}
	for lo := 0; lo < len(out); lo += window {
		hi := lo + window
		if hi > len(out) {
			hi = len(out)
		}
		win := out[lo:hi]
		rng.Shuffle(len(win), func(i, j int) { win[i], win[j] = win[j], win[i] })
	}
	return out
}
