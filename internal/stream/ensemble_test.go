package stream

import (
	"testing"

	"streamcover/internal/setcover"
)

// constAlg returns a fixed-size valid-ish cover, for ensemble selection
// tests.
type constAlg struct {
	n    int
	sets []setcover.SetID
}

func (a *constAlg) Process(Edge) {}
func (a *constAlg) Finish() *setcover.Cover {
	cert := make([]setcover.SetID, a.n)
	for u := range cert {
		cert[u] = a.sets[0]
	}
	return setcover.NewCover(a.sets, cert)
}

func TestEnsemblePicksSmallest(t *testing.T) {
	e := NewEnsemble(
		&constAlg{n: 2, sets: []setcover.SetID{0, 1, 2}},
		&constAlg{n: 2, sets: []setcover.SetID{0}},
		&constAlg{n: 2, sets: []setcover.SetID{0, 1}},
	)
	if e.Copies() != 3 {
		t.Fatalf("Copies=%d", e.Copies())
	}
	cov := e.Finish()
	if cov.Size() != 1 {
		t.Fatalf("picked size %d, want 1", cov.Size())
	}
	if e.BestIndex != 1 {
		t.Fatalf("BestIndex=%d want 1", e.BestIndex)
	}
}

func TestEnsembleTieBreaksEarliest(t *testing.T) {
	e := NewEnsemble(
		&constAlg{n: 1, sets: []setcover.SetID{4}},
		&constAlg{n: 1, sets: []setcover.SetID{9}},
	)
	e.Finish()
	if e.BestIndex != 0 {
		t.Fatalf("BestIndex=%d want 0", e.BestIndex)
	}
}

func TestEnsembleForwardsEdgesAndSpace(t *testing.T) {
	inst := setcover.MustNewInstance(3, [][]setcover.Element{{0, 1, 2}})
	a1 := newFirstSetAlg(3)
	a2 := newFirstSetAlg(3)
	e := NewEnsemble(a1, a2)
	res := RunEdges(e, EdgesOf(inst))
	if err := res.Cover.Verify(inst); err != nil {
		t.Fatal(err)
	}
	// Both copies saw every edge; space sums across copies.
	if res.Space.State != 2*3 || res.Space.Aux != 2*3 {
		t.Fatalf("space %v, want doubled", res.Space)
	}
}

func TestEnsemblePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEnsemble()
}
